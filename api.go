// Package tag is a Go implementation of Table-Augmented Generation (TAG),
// the unified model for answering natural-language questions over
// databases proposed in "Text2SQL is Not Enough: Unifying AI and Databases
// with TAG" (CIDR 2025).
//
// A TAG system answers a request R in three steps:
//
//	syn(R)     -> Q    query synthesis    (LM turns the question into SQL)
//	exec(Q)    -> T    query execution    (database computes the table)
//	gen(R, T)  -> A    answer generation  (LM writes the answer from R, T)
//
// The package bundles everything a TAG system needs, implemented from
// scratch on the standard library: an embedded SQL engine, a deterministic
// simulated LM (stand-in for Llama-3.1-70B + vLLM), an embedding model and
// vector index (stand-ins for E5 + FAISS), LOTUS-style semantic operators,
// the five methods of the paper's evaluation, and the 80-query TAG-Bench
// benchmark with its harness.
//
// Quick start:
//
//	sys, _ := tag.Open("movies")
//	resp, _ := sys.Ask(ctx, "Summarize the review of the reviews whose genre is 'Romance'.")
//	fmt.Println(resp.Answer)
//
// The embedded engine exposes two query surfaces. Query materialises a
// *Result; QueryRows returns a streaming, context-aware *Rows cursor that
// produces rows one at a time, so LIMIT-style consumption reads only what
// it needs and cancelling the context stops an in-flight scan:
//
//	rows, err := sys.DB().QueryRows(ctx, "SELECT title FROM movies WHERE revenue > ?", 1e8)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		var title string
//		_ = rows.Scan(&title)
//	}
//
// Engine errors are typed: every error is an errors.As-matchable *Error
// with a stable Code (ErrParse, ErrNoTable, ErrNoColumn, ErrType, ...),
// and Stats() exposes the observability counters (queries served,
// plan-cache hits, rows scanned/emitted, index vs full scans, open
// cursors) a production deployment watches under heavy traffic. Per-query
// accounting closes the loop: Rows.Stats reports what one cursor's
// execution did, and ExplainAnalyze runs a statement and renders its
// operator tree annotated with real per-operator counts.
//
// See the examples/ directory for complete programs.
package tag

import (
	"context"
	"fmt"

	"tag/internal/core"
	"tag/internal/llm"
	"tag/internal/sem"
	"tag/internal/server/pgwire"
	"tag/internal/sqldb"
	"tag/internal/tagbench"
	"tag/internal/tagbench/domains"
	"tag/internal/world"
)

// Re-exported building blocks. The aliases give downstream users the full
// method sets of the internal implementations through a stable import path.
type (
	// Database is the embedded SQL engine (the exec substrate).
	Database = sqldb.Database
	// Stmt is a prepared SELECT statement: parsed once via Database.Prepare,
	// executable many times. Database.Query also consults an internal LRU
	// plan cache, so hot query strings are parsed only once either way.
	Stmt = sqldb.Stmt
	// Result is a materialised query result (Rows.Collect).
	Result = sqldb.Result
	// Rows is a streaming, context-aware query cursor (Database.QueryRows).
	Rows = sqldb.Rows
	// Error is the engine's typed error; match with errors.As and branch
	// on Code.
	Error = sqldb.Error
	// ErrorCode classifies an engine Error (sqldb.ErrParse, ...).
	ErrorCode = sqldb.ErrorCode
	// Stats is a snapshot of the engine's observability counters.
	Stats = sqldb.Stats
	// QueryStats is one query's own execution counters (Rows.Stats,
	// ExplainAnalyze) — the per-statement slice of Stats.
	QueryStats = sqldb.QueryStats
	// AnalyzedQuery is an executed plan annotated with real per-operator
	// counts (Database.ExplainAnalyze / System.ExplainAnalyze).
	AnalyzedQuery = sqldb.AnalyzedQuery
	// Value is a dynamically typed SQL value.
	Value = sqldb.Value
	// DurabilityOptions configures the embedded engine's durability layer
	// (fsync policy, checkpoint threshold) for OpenDatabase.
	DurabilityOptions = sqldb.DurabilityOptions
	// SyncPolicy selects when the write-ahead log is fsynced
	// (SyncAlways, SyncInterval, SyncOff).
	SyncPolicy = sqldb.SyncPolicy
	// DataFrame is the semantic-operator frame (LOTUS substitute).
	DataFrame = sem.DataFrame
	// Model is the language-model inference interface.
	Model = llm.Model
	// Profile configures the simulated LM's fallibility.
	Profile = llm.Profile
	// Report aggregates benchmark outcomes (Table 1 / Table 2 printers).
	Report = core.Report
	// Method is a question-answering strategy under evaluation.
	Method = core.Method
	// Query is one TAG-Bench query.
	Query = tagbench.Query
	// WireServer serves a Database over the Postgres v3 wire protocol, so
	// any Postgres client or driver can query it across the network
	// (cmd/tagserve is the packaged binary).
	WireServer = pgwire.Server
	// WireServerOptions configures a WireServer (connection limit,
	// cleartext password auth).
	WireServerOptions = pgwire.Options
)

// Sync policies for DurabilityOptions.Sync.
const (
	// SyncAlways fsyncs the WAL on every commit (full durability).
	SyncAlways = sqldb.SyncAlways
	// SyncInterval fsyncs on a background ticker (bounded data loss).
	SyncInterval = sqldb.SyncInterval
	// SyncOff never fsyncs explicitly (durability up to the OS).
	SyncOff = sqldb.SyncOff
)

// NewDatabase returns an empty embedded database.
func NewDatabase() *Database { return sqldb.NewDatabase() }

// NewWireServer wraps a database in a Postgres wire-protocol server.
// Start it with Serve or ListenAndServe; stop it with Shutdown (graceful
// drain) or Close.
func NewWireServer(db *Database, opts WireServerOptions) *WireServer {
	return pgwire.NewServer(db, opts)
}

// OpenDatabase opens a durable embedded database backed by a write-ahead
// log in dir, replaying any committed work a previous process left there.
// With no options it uses sqldb.DefaultDurabilityOptions (fsync on every
// commit). In-memory use is NewDatabase; this constructor is the crash-safe
// variant.
func OpenDatabase(dir string, opts ...DurabilityOptions) (*Database, error) {
	o := sqldb.DefaultDurabilityOptions()
	if len(opts) > 0 {
		o = opts[0]
	}
	return sqldb.Open(dir, sqldb.WithDurability("", o))
}

// DefaultProfile is the calibrated 70B-like model profile used by the
// benchmark.
func DefaultProfile() Profile { return llm.DefaultProfile() }

// OracleProfile is a perfect model (no noise, unbounded context) for
// debugging pipelines.
func OracleProfile() Profile { return llm.OracleProfile() }

// Domains lists the built-in benchmark domains plus "movies".
func Domains() []string { return append(domains.Names(), "movies") }

// BenchmarkQueries returns the 80 TAG-Bench queries.
func BenchmarkQueries() []*Query { return tagbench.Queries() }

// System is a ready-to-query TAG system: a database plus a language model
// wired through the TAG pipeline and the semantic-operator runtime. The
// model is wrapped with bounded jittered retry (llm.WithRetry), so
// transient inference failures are absorbed instead of failing the
// request; retry traffic shows up in the model's Stats.
type System struct {
	env      *core.Env
	model    *llm.SimLM      // the simulated model at the core (clock, view)
	lm       *llm.RetryModel // the retry-wrapped surface the pipeline calls
	pipeline *core.Pipeline
}

// Option configures a System.
type Option func(*options)

type options struct {
	profile *Profile
	lmUDFs  bool
}

// WithProfile selects the LM fallibility profile (default: DefaultProfile).
func WithProfile(p Profile) Option {
	return func(o *options) { o.profile = &p }
}

// WithLMUDFs enables LM user-defined functions inside SQL (LLM_FILTER,
// LLM_SCORE, LLM_MAP), letting synthesised queries run semantic predicates
// during exec — the §2.1 design point.
func WithLMUDFs() Option {
	return func(o *options) { o.lmUDFs = true }
}

// Open builds a System over one of the built-in generated domains
// (Domains() lists them).
func Open(domain string, opts ...Option) (*System, error) {
	db, err := domains.Build(domain)
	if err != nil {
		return nil, err
	}
	return New(domain, db, opts...), nil
}

// New builds a System over a caller-provided database.
func New(name string, db *Database, opts ...Option) *System {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	profile := llm.DefaultProfile()
	if o.profile != nil {
		profile = *o.profile
	}
	model := llm.NewSimLM(world.Default(), profile, llm.NewClock(), llm.DefaultCostModel())
	lm := llm.WithRetry(model, llm.DefaultRetryOptions())
	sys := &System{
		env:   core.NewEnv(name, db),
		model: model,
		lm:    lm,
		pipeline: &core.Pipeline{
			Model:     lm,
			UseLMUDFs: o.lmUDFs,
		},
	}
	if o.lmUDFs {
		core.RegisterLMUDFs(context.Background(), db, lm)
	}
	return sys
}

// DB exposes the underlying database.
func (s *System) DB() *Database { return s.env.DB }

// Model exposes the underlying language model (retry-wrapped; use
// llm.AsSimLM to reach the simulated core).
func (s *System) Model() Model { return s.lm }

// LMSeconds reports the simulated LM time consumed so far.
func (s *System) LMSeconds() float64 { return s.model.Clock().Now() }

// Response is the result of one TAG pipeline run, exposing every
// intermediate artefact (Figure 1's three stages).
type Response struct {
	Question string
	SQL      string  // syn(R)
	Table    *Result // exec(Q)
	Answer   string  // gen(R, T)
}

// Ask answers a natural-language question with the full TAG pipeline
// (automatic query synthesis). Questions follow the controlled grammar of
// the benchmark; see the examples.
func (s *System) Ask(ctx context.Context, question string) (*Response, error) {
	res, err := s.pipeline.Run(ctx, s.env, question)
	if err != nil {
		return nil, err
	}
	return &Response{
		Question: res.Question,
		SQL:      res.SQL,
		Table:    res.Table,
		Answer:   res.Answer,
	}, nil
}

// Frame loads a table as a DataFrame for hand-written pipelines mixing
// relational and semantic operators.
func (s *System) Frame(table string) (*DataFrame, error) {
	return sem.FromTable(s.env.DB, table)
}

// Prepare parses a SELECT once for repeated execution against the system's
// database — the low-latency path for hot queries under heavy traffic.
func (s *System) Prepare(sql string) (*Stmt, error) {
	return s.env.DB.Prepare(sql)
}

// QueryRows runs SQL against the system's database and returns a
// streaming cursor (see Database.QueryRows). Close it.
func (s *System) QueryRows(ctx context.Context, sql string, params ...any) (*Rows, error) {
	return s.env.DB.QueryRows(ctx, sql, params...)
}

// Stats reports the engine's observability counters: queries served,
// plan-cache hits/misses, rows scanned and emitted, index vs full scans,
// and open cursors. The aggregate is the sum of per-query recorders —
// each statement's own numbers are available from Rows.Stats and
// ExplainAnalyze.
func (s *System) Stats() Stats { return s.env.DB.Stats() }

// ExplainAnalyze executes a SELECT against the system's database and
// returns its operator tree annotated with what each operator really did
// (rows, loops, wall time, rows scanned per access path, subplan probe
// and cache counts), plus the query's per-execution totals.
func (s *System) ExplainAnalyze(ctx context.Context, sql string, params ...any) (*AnalyzedQuery, error) {
	return s.env.DB.ExplainAnalyze(ctx, sql, params...)
}

// FrameQuery runs SQL and wraps the result as a DataFrame, streaming rows
// straight into the frame.
func (s *System) FrameQuery(sql string, params ...any) (*DataFrame, error) {
	rows, err := s.env.DB.QueryRows(context.Background(), sql, params...)
	if err != nil {
		return nil, err
	}
	return sem.FromRows(rows)
}

// SemFilter, SemTopK, SemAgg entry points are methods on DataFrame; the
// System provides the model to pass in:
//
//	df, _ := sys.Frame("schools")
//	sv, _ := df.SemFilter(ctx, sys.Model(), "{City} is a city in the Silicon Valley region")

// RunBenchmark evaluates the paper's five methods on TAG-Bench and returns
// the report (Table1/Table2/SpeedupLine printers).
func RunBenchmark(ctx context.Context, profile Profile) (*Report, error) {
	envs, err := core.BuildEnvs()
	if err != nil {
		return nil, err
	}
	return core.RunBenchmark(ctx, envs, core.NewDefaultMethods(profile), nil)
}

// Figure2 renders the paper's qualitative aggregation comparison.
func Figure2(ctx context.Context, profile Profile) (string, error) {
	envs, err := core.BuildEnvs()
	if err != nil {
		return "", err
	}
	return core.Figure2(ctx, envs, profile)
}

// ExplainPipeline prints the hand-written TAG operator chain for a
// benchmark query id.
func ExplainPipeline(queryID string) (string, error) {
	for _, q := range tagbench.Queries() {
		if q.ID == queryID {
			return core.PipelineFor(q.Spec), nil
		}
	}
	return "", fmt.Errorf("tag: no benchmark query %q", queryID)
}
