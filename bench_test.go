// Benchmarks regenerating every table and figure of the TAG paper's
// evaluation (§4.3), plus ablations over the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Accuracy and simulated execution time are attached as custom metrics
// (exact_match, sim_ET_s) so `-bench` output reads like the paper's
// tables. Absolute wall-clock ns/op measures this Go implementation, not
// the paper's GPUs.
package tag

import (
	"context"
	"fmt"
	"testing"

	"tag/internal/core"
	"tag/internal/embed"
	"tag/internal/llm"
	"tag/internal/nlq"
	"tag/internal/sem"
	"tag/internal/tagbench"
	"tag/internal/tagbench/domains"
	"tag/internal/vector"
	"tag/internal/world"
)

// benchState caches the environments across benchmarks (read-only).
var benchState struct {
	envs map[string]*core.Env
}

func benchEnvs(b *testing.B) map[string]*core.Env {
	b.Helper()
	if benchState.envs == nil {
		envs, err := core.BuildEnvs()
		if err != nil {
			b.Fatal(err)
		}
		benchState.envs = envs
	}
	return benchState.envs
}

// runMethodOverBenchmark evaluates one method over all 80 queries and
// reports paper-style metrics.
func runMethodOverBenchmark(b *testing.B, makeMethod func() core.Method) {
	envs := benchEnvs(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		m := makeMethod()
		rep, err := core.RunBenchmark(ctx, envs, []core.Method{m}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 { // metrics from the final run
			cell := rep.CellFor(m.Name(), func(core.Outcome) bool { return true })
			b.ReportMetric(cell.Exact, "exact_match")
			b.ReportMetric(cell.Seconds, "sim_ET_s")
		}
	}
}

func newModel() *llm.SimLM {
	return llm.NewSimLM(world.Default(), llm.DefaultProfile(), llm.NewClock(), llm.DefaultCostModel())
}

// --- Table 1: one benchmark per method row ---------------------------------

func BenchmarkTable1_Text2SQL(b *testing.B) {
	runMethodOverBenchmark(b, func() core.Method { return &core.Text2SQL{Model: newModel()} })
}

func BenchmarkTable1_RAG(b *testing.B) {
	runMethodOverBenchmark(b, func() core.Method { return &core.RAG{Model: newModel(), TopK: 10} })
}

func BenchmarkTable1_RetrievalLMRank(b *testing.B) {
	runMethodOverBenchmark(b, func() core.Method {
		return &core.RetrievalLMRank{Model: newModel(), Candidates: 30, TopK: 10}
	})
}

func BenchmarkTable1_Text2SQLLM(b *testing.B) {
	runMethodOverBenchmark(b, func() core.Method { return &core.Text2SQLLM{Model: newModel()} })
}

func BenchmarkTable1_HandwrittenTAG(b *testing.B) {
	runMethodOverBenchmark(b, func() core.Method { return &core.HandwrittenTAG{Model: newModel()} })
}

// --- Table 2: knowledge vs reasoning splits --------------------------------

func benchmarkCategory(b *testing.B, cat nlq.Category) {
	envs := benchEnvs(b)
	ctx := context.Background()
	var queries []*tagbench.Query
	for _, q := range tagbench.Queries() {
		if q.Spec.Category == cat {
			queries = append(queries, q)
		}
	}
	for i := 0; i < b.N; i++ {
		methods := core.NewDefaultMethods(llm.DefaultProfile())
		rep, err := core.RunBenchmark(ctx, envs, methods, queries)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			tagCell := rep.CellFor("Hand-written TAG", func(core.Outcome) bool { return true })
			b.ReportMetric(tagCell.Exact, "tag_exact_match")
			b.ReportMetric(tagCell.Seconds, "tag_sim_ET_s")
		}
	}
}

func BenchmarkTable2_Knowledge(b *testing.B) { benchmarkCategory(b, nlq.Knowledge) }
func BenchmarkTable2_Reasoning(b *testing.B) { benchmarkCategory(b, nlq.Reasoning) }

// --- Figure 1: the movies worked example -----------------------------------

func BenchmarkFigure1_MoviePipeline(b *testing.B) {
	db, err := domains.Build("movies")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		model := llm.NewSimLM(world.Default(), llm.OracleProfile(), llm.NewClock(), llm.DefaultCostModel())
		res, err := db.Query("SELECT id, title, revenue FROM movies WHERE genre = 'Romance' ORDER BY revenue DESC")
		if err != nil {
			b.Fatal(err)
		}
		df := sem.FromResult(res)
		classics, err := df.SemFilter(ctx, model, "{title} is a movie widely considered a classic")
		if err != nil {
			b.Fatal(err)
		}
		top := classics.Head(1)
		if top.Len() == 0 || top.Value(0, "title").AsText() != "Titanic" {
			b.Fatalf("Figure 1 pipeline should find Titanic, got %v", top.Columns())
		}
		reviews, err := db.Query("SELECT body FROM reviews WHERE movie_id = ?", top.Value(0, "id").AsInt())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sem.FromResult(reviews).SemAgg(ctx, model, "Summarize the reviews", "body"); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(model.Clock().Now(), "sim_ET_s")
		}
	}
}

// --- Figure 2: the Sepang aggregation comparison ---------------------------

func BenchmarkFigure2_SepangAggregation(b *testing.B) {
	envs := benchEnvs(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		fig, err := core.Figure2(ctx, envs, llm.DefaultProfile())
		if err != nil {
			b.Fatal(err)
		}
		if len(fig) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblation_OracleLM reruns hand-written TAG with a perfect model:
// the gap to the calibrated profile isolates modelled LM fallibility from
// pipeline behaviour.
func BenchmarkAblation_OracleLM(b *testing.B) {
	runMethodOverBenchmark(b, func() core.Method {
		return &core.HandwrittenTAG{
			Model: llm.NewSimLM(world.Default(), llm.OracleProfile(), llm.NewClock(), llm.DefaultCostModel()),
		}
	})
}

// BenchmarkAblation_AutoSynTAG runs the full TAG pipeline with automatic
// query synthesis instead of expert pipelines — the gap to hand-written
// TAG measures what expert schema knowledge buys (§4.2 motivates
// hand-written pipelines this way).
func BenchmarkAblation_AutoSynTAG(b *testing.B) {
	runMethodOverBenchmark(b, func() core.Method {
		return &core.TAGPipelineMethod{Pipeline: core.Pipeline{Model: newModel(), UseLMUDFs: true}}
	})
}

// BenchmarkAblation_AgenticTAG measures the paper's §5 future-work
// extension: the TAG pipeline wrapped in a bounded repair loop (SQL
// repair, hand-written fallback). Compare exact_match and sim_ET_s with
// BenchmarkAblation_AutoSynTAG to see what the retries buy and cost.
func BenchmarkAblation_AgenticTAG(b *testing.B) {
	runMethodOverBenchmark(b, func() core.Method {
		return &core.AgenticTAG{Model: newModel(), MaxHops: 3, UseLMUDFs: true}
	})
}

// BenchmarkAblation_SequentialLMCalls disables batch amortisation by
// running each semantic claim as its own call — quantifying §4.3's
// "efficient batched inference" claim.
func BenchmarkAblation_SequentialLMCalls(b *testing.B) {
	ctx := context.Background()
	envs := benchEnvs(b)
	res, err := envs["california_schools"].DB.Query("SELECT DISTINCT City FROM schools")
	if err != nil {
		b.Fatal(err)
	}
	df := sem.FromResult(res)
	for i := 0; i < b.N; i++ {
		batched := newModel()
		if _, err := df.SemFilter(ctx, batched, "{City} is a city in the Bay Area region"); err != nil {
			b.Fatal(err)
		}
		sequential := newModel()
		cities, _ := df.Strings("City")
		for _, c := range cities {
			if _, err := sequential.Complete(ctx, llm.SemFilterPrompt(c+" is a city in the Bay Area region")); err != nil {
				b.Fatal(err)
			}
		}
		if i == b.N-1 {
			b.ReportMetric(batched.Clock().Now(), "batched_sim_s")
			b.ReportMetric(sequential.Clock().Now(), "sequential_sim_s")
			b.ReportMetric(sequential.Clock().Now()/batched.Clock().Now(), "speedup_x")
		}
	}
}

// BenchmarkAblation_RAGTopK sweeps the RAG retrieval depth: more rows in
// context never fixes aggregation-scale questions but does inflate cost.
func BenchmarkAblation_RAGTopK(b *testing.B) {
	for _, k := range []int{5, 10, 20, 40} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			runMethodOverBenchmark(b, func() core.Method {
				return &core.RAG{Model: newModel(), TopK: k}
			})
		})
	}
}

// --- Substrate micro-benchmarks ---------------------------------------------

func BenchmarkSQLPointLookup(b *testing.B) {
	env := benchEnvs(b)["california_schools"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.DB.Query("SELECT School FROM schools WHERE CDSCode = 'CA1000100'"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLJoinAggregate(b *testing.B) {
	env := benchEnvs(b)["codebase_community"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.DB.Query(`SELECT p.Title, COUNT(c.Id) FROM posts p
			JOIN comments c ON c.PostId = p.Id GROUP BY p.Title ORDER BY 2 DESC LIMIT 5`); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbedRow(b *testing.B) {
	e := embed.New(0)
	row := "- School: Palo Alto High School\n- City: Palo Alto\n- AvgScrMath: 612\n"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Embed(row)
	}
}

func BenchmarkVectorSearchFlat(b *testing.B) {
	e := embed.New(0)
	idx := vector.NewFlat(e.Dim(), vector.Cosine)
	for i := 0; i < 2000; i++ {
		idx.Add(i, e.Embed(fmt.Sprintf("row %d with some content about schools and scores", i)))
	}
	q := e.Embed("schools with high scores")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.Search(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSemFilter50Claims(b *testing.B) {
	env := benchEnvs(b)["california_schools"]
	res, err := env.DB.Query("SELECT DISTINCT City FROM schools")
	if err != nil {
		b.Fatal(err)
	}
	df := sem.FromResult(res)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := newModel()
		if _, err := df.SemFilter(ctx, m, "{City} is a city in the Bay Area region"); err != nil {
			b.Fatal(err)
		}
	}
}
