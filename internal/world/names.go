package world

import "strings"

// PersonNames are full names of (fictional but person-shaped) historical
// figures that institutions in the generated data may be named after.
// The benchmark's "named after a person" reasoning queries resolve against
// this list; the simulated LM judges the same question from surface form,
// with noise.
var PersonNames = []string{
	"Abraham Lincoln", "Cesar Chavez", "John Muir", "Rosa Parks",
	"Thomas Edison", "Amelia Earhart", "Mark Twain", "Benjamin Franklin",
	"Harriet Tubman", "Theodore Roosevelt", "Susan Anthony", "George Washington",
	"Eleanor Roosevelt", "Martin Luther King", "Clara Barton", "Booker Washington",
	"Frederick Douglass", "Helen Keller", "Jane Addams", "Walt Whitman",
}

// loweredPersonNames and personSurnames are derived from PersonNames once
// for allocation-free matching ("Lincoln Elementary" is still named after
// a person).
var loweredPersonNames = func() []string {
	out := make([]string, len(PersonNames))
	for i, n := range PersonNames {
		out[i] = strings.ToLower(n)
	}
	return out
}()

var personSurnames = func() map[string]bool {
	m := make(map[string]bool, len(PersonNames))
	for _, n := range PersonNames {
		parts := strings.Fields(n)
		m[strings.ToLower(parts[len(parts)-1])] = true
	}
	return m
}()

// IsNamedAfterPerson reports whether an institution name (e.g. a school)
// is named after a person: it begins with a known person's full name or
// surname. This is ground truth; the LM view answers the same question
// with configurable noise. Lookups intern the lowered name (lower, not
// norm: trimming would change the predicate for whitespace-padded names).
func IsNamedAfterPerson(name string) bool {
	low := lower(name)
	for _, p := range loweredPersonNames {
		if strings.HasPrefix(low, p) {
			return true
		}
	}
	fields := strings.Fields(low)
	if len(fields) == 0 {
		return false
	}
	return personSurnames[fields[0]]
}

// premiumMarkers are the lexical cues of a premium product description.
var premiumMarkers = []string{
	"premium", "deluxe", "platinum", "ultra", "gold class", "signature",
	"top shelf", "executive",
}

// IsPremiumProduct reports whether a product description sounds premium.
func IsPremiumProduct(desc string) bool {
	low := strings.ToLower(desc)
	for _, m := range premiumMarkers {
		if strings.Contains(low, m) {
			return true
		}
	}
	return false
}

// CACities is the pool of California cities the schools generator draws
// from: every Silicon Valley city, a sample of other Bay Area cities, and
// non-Bay-Area distractors. The LM view's false-positive channel draws
// from this same pool, so its hallucinated region members are plausible.
var CACities = []string{
	// Silicon Valley.
	"San Jose", "Palo Alto", "Mountain View", "Sunnyvale", "Santa Clara",
	"Cupertino", "Menlo Park", "Redwood City", "Milpitas", "Campbell",
	"Los Gatos", "Saratoga", "Los Altos", "Morgan Hill", "Gilroy",
	"East Palo Alto", "Foster City", "San Carlos", "Belmont", "San Mateo",
	// Bay Area, outside Silicon Valley.
	"San Francisco", "Oakland", "Berkeley", "Fremont", "Hayward",
	"Richmond", "Concord", "Vallejo", "Santa Rosa", "Napa",
	"San Rafael", "Daly City", "San Leandro", "Alameda", "Walnut Creek",
	"Pleasanton", "Livermore", "Dublin", "Union City", "Novato",
	// Distractors elsewhere in California.
	"Los Angeles", "San Diego", "Sacramento", "Fresno", "Bakersfield",
	"Long Beach", "Anaheim", "Riverside", "Stockton", "Modesto",
	"Irvine", "Chula Vista", "Santa Barbara", "Monterey", "Eureka",
	"Redding", "Chico", "Visalia", "Santa Cruz", "San Luis Obispo",
}

// CACounties pairs each generator city with its county; Bay Area counties
// are ground truth for county-region queries.
var CACounties = map[string]string{
	"San Jose": "Santa Clara", "Palo Alto": "Santa Clara", "Mountain View": "Santa Clara",
	"Sunnyvale": "Santa Clara", "Santa Clara": "Santa Clara", "Cupertino": "Santa Clara",
	"Milpitas": "Santa Clara", "Campbell": "Santa Clara", "Los Gatos": "Santa Clara",
	"Saratoga": "Santa Clara", "Los Altos": "Santa Clara", "Morgan Hill": "Santa Clara",
	"Gilroy":     "Santa Clara",
	"Menlo Park": "San Mateo", "Redwood City": "San Mateo", "East Palo Alto": "San Mateo",
	"Foster City": "San Mateo", "San Carlos": "San Mateo", "Belmont": "San Mateo",
	"San Mateo": "San Mateo", "Daly City": "San Mateo",
	"San Francisco": "San Francisco",
	"Oakland":       "Alameda", "Berkeley": "Alameda", "Fremont": "Alameda",
	"Hayward": "Alameda", "San Leandro": "Alameda", "Alameda": "Alameda",
	"Pleasanton": "Alameda", "Livermore": "Alameda", "Dublin": "Alameda",
	"Union City": "Alameda",
	"Richmond":   "Contra Costa", "Concord": "Contra Costa", "Walnut Creek": "Contra Costa",
	"Vallejo":    "Solano",
	"Santa Rosa": "Sonoma", "Petaluma": "Sonoma",
	"Napa":       "Napa",
	"San Rafael": "Marin", "Novato": "Marin",
	"Los Angeles": "Los Angeles", "Long Beach": "Los Angeles",
	"San Diego": "San Diego", "Chula Vista": "San Diego",
	"Sacramento": "Sacramento", "Fresno": "Fresno", "Bakersfield": "Kern",
	"Anaheim": "Orange", "Irvine": "Orange", "Riverside": "Riverside",
	"Stockton": "San Joaquin", "Modesto": "Stanislaus",
	"Santa Barbara": "Santa Barbara", "Monterey": "Monterey",
	"Eureka": "Humboldt", "Redding": "Shasta", "Chico": "Butte",
	"Visalia": "Tulare", "Santa Cruz": "Santa Cruz",
	"San Luis Obispo": "San Luis Obispo",
}

// EuropeanCountries is the country pool for gas stations and football
// teams: EU members plus non-EU distractors.
var EuropeanCountries = []string{
	// EU members (subset).
	"Austria", "Belgium", "Czech Republic", "Denmark", "Finland", "France",
	"Germany", "Greece", "Hungary", "Ireland", "Italy", "Netherlands",
	"Poland", "Portugal", "Slovakia", "Spain", "Sweden", "Croatia",
	// Non-EU.
	"Switzerland", "Norway", "UK", "Serbia", "Ukraine", "Turkey",
	"Iceland", "Albania", "Bosnia", "Moldova",
}
