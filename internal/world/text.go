package world

import (
	"strings"
)

// Traits are the latent semantic attributes of a piece of text that the
// benchmark's reasoning queries ask about. All values are in [0, 1].
type Traits struct {
	Sentiment    float64 // 0 = very negative, 1 = very positive
	Technicality float64 // 0 = casual, 1 = deeply technical
	Sarcasm      float64 // 0 = sincere, 1 = dripping sarcasm
}

// Phrase is a text fragment with known latent traits. The benchmark's data
// generators compose free-text fields (reviews, comments, post bodies) from
// these fragments, which makes every generated text's true traits exactly
// computable — that is what ground-truth labelling uses. The simulated LM
// recovers traits from the text via TextTraits plus noise, the way a real
// LM estimates sentiment from words.
type Phrase struct {
	Text   string
	Traits Traits
}

// Phrases is the master fragment lexicon. Sentiment spans the full range,
// technicality and sarcasm have dedicated high/low fragments so generators
// can dial any trait combination.
var Phrases = []Phrase{
	// Strongly positive.
	{"an absolute masterpiece from start to finish", Traits{0.98, 0.2, 0.02}},
	{"still the best thing I have ever watched", Traits{0.95, 0.1, 0.05}},
	{"flawless pacing and unforgettable characters", Traits{0.93, 0.35, 0.02}},
	{"I was moved to tears, wonderful in every way", Traits{0.92, 0.05, 0.03}},
	{"a triumph that rewards repeat viewing", Traits{0.9, 0.3, 0.05}},
	// Mildly positive.
	{"solid and dependable, worth your time", Traits{0.72, 0.25, 0.05}},
	{"better than I expected, pleasantly surprised", Traits{0.7, 0.15, 0.08}},
	{"a guilty pleasure I keep coming back to", Traits{0.68, 0.1, 0.12}},
	{"charming in places even if uneven", Traits{0.62, 0.2, 0.08}},
	{"decent effort with a few bright moments", Traits{0.6, 0.2, 0.05}},
	// Neutral.
	{"it exists and it is fine I suppose", Traits{0.5, 0.05, 0.25}},
	{"middle of the road in every respect", Traits{0.5, 0.15, 0.1}},
	{"hard to feel strongly about either way", Traits{0.48, 0.1, 0.08}},
	// Mildly negative.
	{"overlong and frequently dull", Traits{0.32, 0.15, 0.05}},
	{"a disappointing retread of better work", Traits{0.3, 0.25, 0.08}},
	{"the middle act drags badly", Traits{0.35, 0.3, 0.04}},
	{"forgettable despite a strong premise", Traits{0.33, 0.2, 0.05}},
	// Strongly negative.
	{"an incoherent mess with nothing to say", Traits{0.08, 0.2, 0.1}},
	{"I want those hours of my life back", Traits{0.05, 0.05, 0.3}},
	{"astonishingly bad on every level", Traits{0.03, 0.1, 0.08}},
	{"a complete waste of talent and budget", Traits{0.06, 0.15, 0.05}},
	// Highly technical (for post titles / technical comments).
	{"the gradient boosting residuals are reweighted per iteration", Traits{0.55, 0.97, 0.02}},
	{"derive the closed form of the regularized loss", Traits{0.5, 0.95, 0.02}},
	{"eigenvalue decomposition of the covariance matrix", Traits{0.5, 0.93, 0.01}},
	{"stochastic gradient descent with momentum term", Traits{0.52, 0.9, 0.02}},
	{"the bias variance tradeoff under k fold cross validation", Traits{0.5, 0.88, 0.02}},
	{"marginal likelihood of the hierarchical prior", Traits{0.5, 0.92, 0.01}},
	{"asymptotic convergence of the estimator", Traits{0.5, 0.9, 0.01}},
	{"backpropagation through the softmax layer", Traits{0.52, 0.87, 0.02}},
	// Moderately technical.
	{"how to normalize features before clustering", Traits{0.5, 0.65, 0.02}},
	{"choosing k in k means without overfitting", Traits{0.5, 0.68, 0.03}},
	{"interpreting p values in a regression output", Traits{0.5, 0.6, 0.03}},
	{"when to prefer median over mean", Traits{0.5, 0.5, 0.02}},
	// Non-technical.
	{"which laptop should I buy for studying", Traits{0.5, 0.15, 0.02}},
	{"favorite statistics jokes to share with students", Traits{0.6, 0.1, 0.15}},
	{"how do I stay motivated while learning", Traits{0.55, 0.08, 0.02}},
	{"what music do you listen to while working", Traits{0.55, 0.05, 0.02}},
	// Sarcastic.
	{"oh fantastic, yet another groundbreaking insight nobody asked for", Traits{0.25, 0.2, 0.97}},
	{"sure, because that worked so well the last hundred times", Traits{0.25, 0.15, 0.95}},
	{"truly the pinnacle of human achievement right here", Traits{0.3, 0.1, 0.93}},
	{"wow what a shocker, who could possibly have predicted this", Traits{0.28, 0.1, 0.9}},
	{"slow clap for this revolutionary discovery", Traits{0.25, 0.12, 0.92}},
	{"ah yes the classic solution of ignoring the problem entirely", Traits{0.3, 0.2, 0.88}},
	// Sincere counterparts.
	{"thanks, this genuinely helped me understand", Traits{0.85, 0.3, 0.02}},
	{"great explanation, clear and well sourced", Traits{0.88, 0.45, 0.02}},
	{"could you expand on the second step please", Traits{0.6, 0.4, 0.02}},
	{"adding a reference for anyone reading later", Traits{0.65, 0.5, 0.01}},
}

// loweredPhrases holds each phrase's text lower-cased once, so scoring a
// text does not re-lower the whole lexicon per call (it used to, and was
// the benchmark's dominant allocator).
var loweredPhrases []string

// init perturbs every phrase's traits by a tiny index-dependent epsilon so
// that no two phrases share an exact trait value. Ranking queries then have
// a unique correct order (mirroring unambiguous human-labelled ground
// truth), while the epsilons (< 0.002) are far below the LM's score noise.
// It also freezes the lower-cased lexicon for TextTraits.
func init() {
	for i := range Phrases {
		eps := float64(i+1) * 0.00004
		t := &Phrases[i].Traits
		t.Sentiment = clamp01(t.Sentiment + eps)
		t.Technicality = clamp01(t.Technicality + 2*eps)
		t.Sarcasm = clamp01(t.Sarcasm + 3*eps)
	}
	loweredPhrases = make([]string, len(Phrases))
	for i, p := range Phrases {
		loweredPhrases[i] = strings.ToLower(p.Text)
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 0.9999 {
		return 0.9999
	}
	return x
}

// positiveWords and negativeWords back the fallback heuristic for text not
// composed from the phrase lexicon (e.g. user-supplied strings in examples).
var positiveWords = []string{
	"great", "good", "excellent", "wonderful", "best", "love", "amazing",
	"masterpiece", "charming", "triumph", "beautiful", "perfect", "enjoyed",
	"helpful", "thanks", "fantastic",
}

var negativeWords = []string{
	"bad", "awful", "terrible", "worst", "boring", "dull", "mess", "waste",
	"disappointing", "hate", "poor", "incoherent", "forgettable",
}

var technicalWords = []string{
	"gradient", "regression", "eigenvalue", "covariance", "stochastic",
	"estimator", "likelihood", "softmax", "backpropagation", "regularized",
	"convergence", "algorithm", "boosting", "variance", "hyperparameter",
}

var sarcasmMarkers = []string{
	"oh fantastic", "sure,", "truly the pinnacle", "what a shocker",
	"slow clap", "ah yes", "yeah right", "oh great",
}

// traitCache memoises TextTraits per input text. TextTraits is pure, and
// the benchmark re-scores the same generated texts across queries and
// methods, so the cache turns the hot path into one map load.
var traitCache internMap

// TextTraits computes the latent traits of a text. Text composed from the
// Phrases lexicon (as all generated benchmark text is) is scored exactly by
// averaging the traits of the fragments found; other text falls back to
// keyword heuristics. The result is deterministic (and memoised).
func TextTraits(s string) Traits {
	if v, ok := traitCache.load(s); ok {
		return v.(Traits)
	}
	t := computeTraits(s)
	traitCache.store(s, t)
	return t
}

func computeTraits(s string) Traits {
	low := strings.ToLower(s)
	var sum Traits
	n := 0
	for i, lp := range loweredPhrases {
		if strings.Contains(low, lp) {
			t := Phrases[i].Traits
			sum.Sentiment += t.Sentiment
			sum.Technicality += t.Technicality
			sum.Sarcasm += t.Sarcasm
			n++
		}
	}
	if n > 0 {
		return Traits{
			Sentiment:    sum.Sentiment / float64(n),
			Technicality: sum.Technicality / float64(n),
			Sarcasm:      sum.Sarcasm / float64(n),
		}
	}
	return heuristicTraits(low)
}

func heuristicTraits(low string) Traits {
	t := Traits{Sentiment: 0.5, Technicality: 0.1, Sarcasm: 0.05}
	pos, neg := 0, 0
	for _, w := range positiveWords {
		if strings.Contains(low, w) {
			pos++
		}
	}
	for _, w := range negativeWords {
		if strings.Contains(low, w) {
			neg++
		}
	}
	if pos+neg > 0 {
		t.Sentiment = float64(pos) / float64(pos+neg)
	}
	tech := 0
	for _, w := range technicalWords {
		if strings.Contains(low, w) {
			tech++
		}
	}
	if tech > 0 {
		t.Technicality = 0.5 + 0.45*minF(float64(tech)/3, 1)
	}
	for _, m := range sarcasmMarkers {
		if strings.Contains(low, m) {
			t.Sarcasm = 0.9
			break
		}
	}
	return t
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// PhrasesWhere returns the phrases whose traits satisfy the predicate —
// the generators' fragment-selection helper.
func PhrasesWhere(pred func(Traits) bool) []Phrase {
	var out []Phrase
	for _, p := range Phrases {
		if pred(p.Traits) {
			out = append(out, p)
		}
	}
	return out
}
