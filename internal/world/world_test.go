package world

import (
	"strings"
	"testing"
)

func TestRegions(t *testing.T) {
	w := Default()
	if !w.InRegion("Palo Alto", RegionSiliconValley) {
		t.Error("Palo Alto should be in Silicon Valley")
	}
	if !w.InRegion("palo alto", "silicon valley") {
		t.Error("region lookup should be case-insensitive")
	}
	if w.InRegion("Fresno", RegionSiliconValley) || w.InRegion("Fresno", RegionBayArea) {
		t.Error("Fresno is not in the Bay Area")
	}
	if !w.InRegion("Oakland", RegionBayArea) {
		t.Error("Oakland is in the Bay Area")
	}
	if w.InRegion("Oakland", RegionSiliconValley) {
		t.Error("Oakland is not in Silicon Valley")
	}
	// Silicon Valley ⊂ Bay Area.
	for _, c := range w.RegionCities(RegionSiliconValley) {
		if !w.InRegion(c, RegionBayArea) {
			t.Errorf("%s in Silicon Valley but not Bay Area", c)
		}
	}
	if w.InRegion("Palo Alto", "Atlantis") {
		t.Error("unknown regions must be empty")
	}
}

func TestCounties(t *testing.T) {
	w := Default()
	if !w.CountyInBayArea("Santa Clara") || !w.CountyInBayArea("alameda") {
		t.Error("Bay Area county lookup failed")
	}
	if w.CountyInBayArea("Fresno") {
		t.Error("Fresno county is not Bay Area")
	}
	// Every generator city has a county assignment.
	for _, c := range CACities {
		if _, ok := CACounties[c]; !ok {
			t.Errorf("city %s missing county", c)
		}
	}
}

func TestAthletes(t *testing.T) {
	w := Default()
	h, ok := w.AthleteHeightCM("Stephen Curry")
	if !ok || h != 188 {
		t.Errorf("Curry height = %v ok=%v", h, ok)
	}
	if _, ok := w.AthleteHeightCM("Nobody Inparticular"); ok {
		t.Error("unknown athlete should not resolve")
	}
}

func TestClassicsAndEU(t *testing.T) {
	w := Default()
	if !w.IsClassicMovie("Titanic") || !w.IsClassicMovie("casablanca") {
		t.Error("classic lookup failed")
	}
	if w.IsClassicMovie("Shang-Chi") {
		t.Error("Shang-Chi is not a classic")
	}
	if !w.IsEUCountry("Germany") || w.IsEUCountry("Switzerland") || w.IsEUCountry("UK") {
		t.Error("EU membership wrong")
	}
}

func TestCircuits(t *testing.T) {
	w := Default()
	c, ok := w.Circuit("Sepang International Circuit")
	if !ok || c.City != "Kuala Lumpur" || c.FirstGPYear != 1999 || c.LastGPYear != 2017 {
		t.Errorf("Sepang fact = %+v ok=%v", c, ok)
	}
}

func TestTextTraitsExactOnPhrases(t *testing.T) {
	for _, p := range Phrases {
		got := TextTraits("Honestly, " + p.Text + ".")
		if got != p.Traits {
			t.Errorf("TextTraits(%q) = %+v, want %+v", p.Text, got, p.Traits)
		}
	}
}

func TestTextTraitsAveragesFragments(t *testing.T) {
	a, b := Phrases[0], Phrases[17] // strongly positive + strongly negative
	got := TextTraits(a.Text + ", but " + b.Text)
	wantSent := (a.Traits.Sentiment + b.Traits.Sentiment) / 2
	if diff := got.Sentiment - wantSent; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("blended sentiment = %v, want %v", got.Sentiment, wantSent)
	}
}

func TestTextTraitsHeuristicFallback(t *testing.T) {
	pos := TextTraits("this was a great and wonderful experience")
	if pos.Sentiment <= 0.5 {
		t.Errorf("heuristic positive sentiment = %v", pos.Sentiment)
	}
	neg := TextTraits("an awful, boring waste")
	if neg.Sentiment >= 0.5 {
		t.Errorf("heuristic negative sentiment = %v", neg.Sentiment)
	}
	tech := TextTraits("we ran gradient descent on the regression")
	if tech.Technicality <= 0.5 {
		t.Errorf("heuristic technicality = %v", tech.Technicality)
	}
	sarc := TextTraits("oh great, yeah right, as if")
	if sarc.Sarcasm < 0.5 {
		t.Errorf("heuristic sarcasm = %v", sarc.Sarcasm)
	}
	neutral := TextTraits("the quick brown fox")
	if neutral.Sentiment != 0.5 {
		t.Errorf("neutral sentiment = %v", neutral.Sentiment)
	}
}

func TestPersonNames(t *testing.T) {
	if !IsNamedAfterPerson("Abraham Lincoln Elementary School") {
		t.Error("full-name school should match")
	}
	if !IsNamedAfterPerson("Lincoln High School") {
		t.Error("surname-first school should match")
	}
	if IsNamedAfterPerson("Palo Alto High School") {
		t.Error("city-named school should not match")
	}
	if IsNamedAfterPerson("") {
		t.Error("empty name")
	}
}

func TestPremiumProducts(t *testing.T) {
	if !IsPremiumProduct("Premium Synthetic Motor Oil") {
		t.Error("premium marker missed")
	}
	if IsPremiumProduct("Standard Diesel Fuel") {
		t.Error("standard product flagged premium")
	}
}

func TestPhrasesWhere(t *testing.T) {
	sarcs := PhrasesWhere(func(tr Traits) bool { return tr.Sarcasm > 0.8 })
	if len(sarcs) < 4 {
		t.Fatalf("want several sarcastic phrases, got %d", len(sarcs))
	}
	for _, p := range sarcs {
		if p.Traits.Sarcasm <= 0.8 {
			t.Errorf("phrase %q not sarcastic", p.Text)
		}
	}
}

func TestEntities(t *testing.T) {
	w := Default()
	sv := w.Entities("silicon_valley_city")
	if len(sv) != 20 {
		t.Errorf("silicon valley cities = %d, want 20", len(sv))
	}
	for i := 1; i < len(sv); i++ {
		if strings.Compare(sv[i-1], sv[i]) >= 0 {
			t.Error("entities must be sorted and unique")
		}
	}
	if w.Entities("nonexistent_relation") != nil {
		t.Error("unknown relation should be nil")
	}
}
