// Package world is the single source of truth for "reality" in the TAG
// reproduction: the world knowledge the paper's benchmark queries require
// (geography, athlete heights, classic films, EU membership, Formula 1
// facts) and the latent semantic traits of generated text (sentiment,
// technicality, sarcasm).
//
// Three parties consume it with different fidelity:
//
//   - the benchmark data generators use it directly (reality),
//   - ground-truth computation uses it directly (reality),
//   - the simulated LM sees it only through a lossy View (parametric
//     knowledge: mostly right, sometimes missing, occasionally wrong),
//     mirroring the relationship between the real world and a pre-trained
//     model's weights.
package world

import (
	"sort"
)

// World holds the canonical facts. It is immutable after construction and
// safe for concurrent use.
type World struct {
	bayAreaCities       map[string]bool
	siliconValleyCities map[string]bool
	bayAreaCounties     map[string]bool
	athleteHeightCM     map[string]float64
	classicMovies       map[string]bool
	euCountries         map[string]bool
	f1Circuits          map[string]CircuitFact
	famousDrivers       map[string]DriverFact
}

// CircuitFact records world knowledge about a Formula 1 circuit.
type CircuitFact struct {
	Name        string
	City        string
	Country     string
	FirstGPYear int
	LastGPYear  int
}

// DriverFact records world knowledge about a famous F1 driver.
type DriverFact struct {
	Name        string
	Nationality string
	Titles      int
}

// Default returns the canonical world used by the benchmark, the examples
// and the simulated LM. The fact tables are intentionally modest in size —
// they cover everything the 80 benchmark queries touch, plus distractors.
func Default() *World {
	w := &World{
		bayAreaCities:       make(map[string]bool),
		siliconValleyCities: make(map[string]bool),
		bayAreaCounties:     make(map[string]bool),
		athleteHeightCM:     make(map[string]float64),
		classicMovies:       make(map[string]bool),
		euCountries:         make(map[string]bool),
		f1Circuits:          make(map[string]CircuitFact),
		famousDrivers:       make(map[string]DriverFact),
	}

	// --- California geography -------------------------------------------
	// Bay Area counties (the canonical nine-county definition).
	for _, c := range []string{
		"Alameda", "Contra Costa", "Marin", "Napa", "San Francisco",
		"San Mateo", "Santa Clara", "Solano", "Sonoma",
	} {
		w.bayAreaCounties[norm(c)] = true
	}
	// Cities in the Bay Area. A superset of the Silicon Valley list.
	bayArea := []string{
		"San Francisco", "Oakland", "Berkeley", "Fremont", "Hayward",
		"Richmond", "Concord", "Vallejo", "Santa Rosa", "Napa",
		"San Rafael", "Daly City", "San Leandro", "Alameda", "Walnut Creek",
		"Pleasanton", "Livermore", "Dublin", "Union City", "Novato",
		"San Bruno", "Pacifica", "Millbrae", "Burlingame", "Petaluma",
		"Fairfield", "Antioch", "Pittsburg", "Martinez", "Benicia",
	}
	siliconValley := []string{
		"San Jose", "Palo Alto", "Mountain View", "Sunnyvale",
		"Santa Clara", "Cupertino", "Menlo Park", "Redwood City",
		"Milpitas", "Campbell", "Los Gatos", "Saratoga", "Los Altos",
		"Morgan Hill", "Gilroy", "East Palo Alto", "Foster City",
		"San Carlos", "Belmont", "San Mateo",
	}
	for _, c := range bayArea {
		w.bayAreaCities[norm(c)] = true
	}
	for _, c := range siliconValley {
		w.siliconValleyCities[norm(c)] = true
		w.bayAreaCities[norm(c)] = true // Silicon Valley ⊂ Bay Area
	}

	// --- Athletes ---------------------------------------------------------
	for name, cm := range map[string]float64{
		"Stephen Curry":      188,
		"LeBron James":       206,
		"Lionel Messi":       170,
		"Cristiano Ronaldo":  187,
		"Kevin Durant":       208,
		"Peter Crouch":       201,
		"Zlatan Ibrahimovic": 195,
		"Kylian Mbappe":      178,
		"Usain Bolt":         195,
		"Michael Jordan":     198,
	} {
		w.athleteHeightCM[norm(name)] = cm
	}

	// --- Classic movies ----------------------------------------------------
	for _, m := range []string{
		"Titanic", "Casablanca", "Gone with the Wind", "The Godfather",
		"Roman Holiday", "Breakfast at Tiffany's", "Ghost",
		"When Harry Met Sally", "Sleepless in Seattle", "An Affair to Remember",
		"Doctor Zhivago", "West Side Story", "Out of Africa",
		"The Way We Were", "Love Story",
	} {
		w.classicMovies[norm(m)] = true
	}

	// --- EU membership ------------------------------------------------------
	for _, c := range []string{
		"Austria", "Belgium", "Bulgaria", "Croatia", "Cyprus", "Czech Republic",
		"Denmark", "Estonia", "Finland", "France", "Germany", "Greece",
		"Hungary", "Ireland", "Italy", "Latvia", "Lithuania", "Luxembourg",
		"Malta", "Netherlands", "Poland", "Portugal", "Romania", "Slovakia",
		"Slovenia", "Spain", "Sweden",
	} {
		w.euCountries[norm(c)] = true
	}

	// --- Formula 1 -----------------------------------------------------------
	for _, c := range []CircuitFact{
		{Name: "Sepang International Circuit", City: "Kuala Lumpur", Country: "Malaysia", FirstGPYear: 1999, LastGPYear: 2017},
		{Name: "Circuit de Monaco", City: "Monte Carlo", Country: "Monaco", FirstGPYear: 1950, LastGPYear: 2023},
		{Name: "Silverstone Circuit", City: "Silverstone", Country: "UK", FirstGPYear: 1950, LastGPYear: 2023},
		{Name: "Autodromo Nazionale Monza", City: "Monza", Country: "Italy", FirstGPYear: 1950, LastGPYear: 2023},
		{Name: "Suzuka Circuit", City: "Suzuka", Country: "Japan", FirstGPYear: 1987, LastGPYear: 2023},
		{Name: "Interlagos", City: "Sao Paulo", Country: "Brazil", FirstGPYear: 1973, LastGPYear: 2023},
		{Name: "Circuit Gilles Villeneuve", City: "Montreal", Country: "Canada", FirstGPYear: 1978, LastGPYear: 2023},
		{Name: "Hungaroring", City: "Budapest", Country: "Hungary", FirstGPYear: 1986, LastGPYear: 2023},
		{Name: "Circuit de Spa-Francorchamps", City: "Spa", Country: "Belgium", FirstGPYear: 1950, LastGPYear: 2023},
		{Name: "Shanghai International Circuit", City: "Shanghai", Country: "China", FirstGPYear: 2004, LastGPYear: 2019},
	} {
		w.f1Circuits[norm(c.Name)] = c
	}
	for _, d := range []DriverFact{
		{Name: "Lewis Hamilton", Nationality: "British", Titles: 7},
		{Name: "Michael Schumacher", Nationality: "German", Titles: 7},
		{Name: "Sebastian Vettel", Nationality: "German", Titles: 4},
		{Name: "Fernando Alonso", Nationality: "Spanish", Titles: 2},
		{Name: "Kimi Raikkonen", Nationality: "Finnish", Titles: 1},
		{Name: "Max Verstappen", Nationality: "Dutch", Titles: 3},
		{Name: "Ayrton Senna", Nationality: "Brazilian", Titles: 3},
	} {
		w.famousDrivers[norm(d.Name)] = d
	}
	return w
}

// Region names understood by InRegion.
const (
	RegionBayArea       = "Bay Area"
	RegionSiliconValley = "Silicon Valley"
)

// InRegion reports whether the city belongs to the named region.
// Unknown regions are false for every city.
func (w *World) InRegion(city, region string) bool {
	switch norm(region) {
	case norm(RegionBayArea):
		return w.bayAreaCities[norm(city)]
	case norm(RegionSiliconValley):
		return w.siliconValleyCities[norm(city)]
	default:
		return false
	}
}

// RegionCities lists the cities of a region in sorted order.
func (w *World) RegionCities(region string) []string {
	var m map[string]bool
	switch norm(region) {
	case norm(RegionBayArea):
		m = w.bayAreaCities
	case norm(RegionSiliconValley):
		m = w.siliconValleyCities
	default:
		return nil
	}
	out := make([]string, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// CountyInBayArea reports whether a county is one of the nine Bay Area
// counties.
func (w *World) CountyInBayArea(county string) bool {
	return w.bayAreaCounties[norm(county)]
}

// AthleteHeightCM returns an athlete's height in centimetres.
func (w *World) AthleteHeightCM(name string) (float64, bool) {
	h, ok := w.athleteHeightCM[norm(name)]
	return h, ok
}

// IsClassicMovie reports whether the title is widely considered a classic.
func (w *World) IsClassicMovie(title string) bool {
	return w.classicMovies[norm(title)]
}

// IsEUCountry reports whether the country is an EU member state.
func (w *World) IsEUCountry(country string) bool {
	return w.euCountries[norm(country)]
}

// Circuit returns world knowledge about the named circuit.
func (w *World) Circuit(name string) (CircuitFact, bool) {
	c, ok := w.f1Circuits[norm(name)]
	return c, ok
}

// Driver returns world knowledge about a famous driver.
func (w *World) Driver(name string) (DriverFact, bool) {
	d, ok := w.famousDrivers[norm(name)]
	return d, ok
}

// Entities enumerates every entity name the world knows for a relation,
// sorted. Used by tests and by the LM view's coverage accounting.
func (w *World) Entities(relation string) []string {
	var m map[string]bool
	switch relation {
	case "bay_area_city":
		m = w.bayAreaCities
	case "silicon_valley_city":
		m = w.siliconValleyCities
	case "classic_movie":
		m = w.classicMovies
	case "eu_country":
		m = w.euCountries
	default:
		return nil
	}
	out := make([]string, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}
