package world

import "testing"

// Benchmarks for the trait-lookup hot path the simulated LM hammers during
// the benchmark. They use only the package's public API so the same file
// runs against the pre-interning implementation for before/after numbers.

func BenchmarkTextTraits(b *testing.B) {
	texts := []string{
		"an absolute masterpiece from start to finish, truly the pinnacle of human achievement right here",
		"overlong and frequently dull but charming in places even if uneven",
		"the gradient boosting residuals are reweighted per iteration",
		"Some user supplied text that matches no phrase but mentions a great algorithm.",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TextTraits(texts[i%len(texts)])
	}
}

func BenchmarkEntityLookups(b *testing.B) {
	w := Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.InRegion("Palo Alto", "Silicon Valley")
		w.IsClassicMovie("Roman Holiday")
		w.IsEUCountry("France")
		IsNamedAfterPerson("Lincoln Elementary School")
	}
}
