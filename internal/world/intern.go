package world

import (
	"strings"
	"sync"
	"sync/atomic"
)

// This file implements the interning layer behind the world's lookups.
// Every fact table is keyed by normalised (lower-cased, trimmed) entity
// names, and every trait computation lower-cases its input, so under the
// benchmark the simulated LM's trait lookups used to be the system's
// dominant allocator: the same handful of entity names and generated
// texts were re-lowered on every call. The caches below normalise each
// distinct string once. They are size-capped so adversarial or unbounded
// input (a production system's user traffic) degrades to the allocating
// path instead of growing without bound.

// internCap bounds each cache. The benchmark's working set (entity names,
// generated fragments and composed texts) is a few thousand strings;
// 64k leaves an order of magnitude of headroom.
const internCap = 1 << 16

// internMap is a size-capped concurrent string-keyed cache.
type internMap struct {
	m    sync.Map
	size atomic.Int64
}

func (c *internMap) load(k string) (any, bool) { return c.m.Load(k) }

// store caches v under a private copy of k (so a short key never pins a
// caller's large backing array) unless the cache is full.
func (c *internMap) store(k string, v any) {
	if c.size.Load() >= internCap {
		return
	}
	if _, loaded := c.m.LoadOrStore(strings.Clone(k), v); !loaded {
		c.size.Add(1)
	}
}

var normCache internMap
var lowerCache internMap

// norm canonicalises an entity name for lookup. Already-canonical strings
// (the common case: fact-table keys are stored normalised) return without
// allocating; other strings are normalised once and interned.
func norm(s string) string {
	if isNormalized(s) {
		return s
	}
	if v, ok := normCache.load(s); ok {
		return v.(string)
	}
	n := strings.ToLower(strings.TrimSpace(s))
	normCache.store(s, n)
	return n
}

// lower returns strings.ToLower(s), interned. Unlike norm it does not
// trim, so predicates that are sensitive to surrounding whitespace keep
// their exact semantics.
func lower(s string) string {
	if isLowerASCII(s) {
		return s
	}
	if v, ok := lowerCache.load(s); ok {
		return v.(string)
	}
	n := strings.ToLower(s)
	lowerCache.store(s, n)
	return n
}

// isLowerASCII reports whether strings.ToLower(s) == s without
// allocating: ASCII with no upper-case letters.
func isLowerASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b >= 0x80 || (b >= 'A' && b <= 'Z') {
			return false
		}
	}
	return true
}

// isNormalized reports whether norm(s) == s without allocating: ASCII,
// no upper-case letters, no leading/trailing space.
func isNormalized(s string) bool {
	if len(s) == 0 {
		return true
	}
	if isSpaceByte(s[0]) || isSpaceByte(s[len(s)-1]) {
		return false
	}
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b >= 0x80 || (b >= 'A' && b <= 'Z') {
			return false
		}
	}
	return true
}

func isSpaceByte(b byte) bool {
	switch b {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}
