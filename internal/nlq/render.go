package nlq

import (
	"fmt"
	"strings"
)

// Render produces the English question for a spec. The surface forms follow
// the TAG paper's Appendix A examples ("What is the grade span offered in
// the school with the highest longitude in cities that are part of the
// 'Silicon Valley' region?", "Of the 5 posts with highest popularity, list
// their titles in order of most technical to least technical.", ...).
func Render(s *Spec) string {
	switch s.Type {
	case Match:
		return renderMatch(s)
	case Comparison:
		return renderComparison(s)
	case Ranking:
		return renderRanking(s)
	case Aggregation:
		return renderAggregation(s)
	default:
		return ""
	}
}

func renderMatch(s *Spec) string {
	sing, _ := nounFor(s.Domain, s.Table)
	var b strings.Builder
	b.WriteString("What is the ")
	b.WriteString(labelFor(s.Domain, s.Target))
	b.WriteString(" of the ")
	b.WriteString(sing)
	if s.OrderBy != "" {
		b.WriteString(" with the ")
		b.WriteString(direction(s.OrderDesc))
		b.WriteString(" ")
		b.WriteString(labelFor(s.Domain, s.OrderBy))
	}
	b.WriteString(renderFilters(s))
	b.WriteString(renderAugClause(s))
	b.WriteString("?")
	return b.String()
}

func renderComparison(s *Spec) string {
	_, plur := nounFor(s.Domain, s.Table)
	var b strings.Builder
	b.WriteString("Among the ")
	b.WriteString(plur)
	b.WriteString(renderFilters(s))
	b.WriteString(", how many of them ")
	b.WriteString(renderAugPredicate(s))
	b.WriteString("?")
	return b.String()
}

func renderRanking(s *Spec) string {
	_, plur := nounFor(s.Domain, s.Table)
	target := labelFor(s.Domain, s.Target)
	a := s.Aug
	if a != nil && isTraitKind(a.Kind) && s.OrderBy != "" {
		// Paper style: re-rank the top-K of a relational ordering.
		return fmt.Sprintf("Of the %d %s with the %s %s%s, list their %s in order of most %s to least %s.",
			s.Limit, plur, direction(s.OrderDesc), labelFor(s.Domain, s.OrderBy),
			renderFilters(s), target, traitWord(a.Kind), traitWord(a.Kind))
	}
	if a != nil && isTraitKind(a.Kind) {
		// Direct trait top-K.
		return fmt.Sprintf("List the %s of the %d most %s %s%s.",
			target, a.K, traitWord(a.Kind), plur, renderFilters(s))
	}
	// Knowledge-augmented relational ranking.
	return fmt.Sprintf("List the %s of the %d %s with the %s %s%s%s.",
		target, s.Limit, plur, direction(s.OrderDesc), labelFor(s.Domain, s.OrderBy),
		renderFilters(s), renderAugClause(s))
}

func renderAggregation(s *Spec) string {
	_, plur := nounFor(s.Domain, s.Table)
	if s.Aug != nil && s.Aug.Kind == AugCircuitInfo {
		return fmt.Sprintf("Provide information about the races held on %s.", s.Aug.Arg)
	}
	if s.Aug != nil && s.Aug.Kind == AugSummarize {
		return fmt.Sprintf("Summarize the %s of the %s%s.",
			labelFor(s.Domain, s.Target), plur, renderFilters(s))
	}
	// Knowledge aggregation: gather information about an augmented subset.
	return fmt.Sprintf("Provide information about the %s%s%s.",
		plur, renderFilters(s), renderAugClause(s))
}

func direction(desc bool) string {
	if desc {
		return "highest"
	}
	return "lowest"
}

// renderFilters renders the spec's relational filters as attached clauses.
// Filters on the primary table read "whose X is over N"; filters on a
// joined table read "belonging to the <noun> whose X is 'v'".
func renderFilters(s *Spec) string {
	var b strings.Builder
	for i, f := range s.Filters {
		if i == 0 {
			b.WriteString(" ")
		} else {
			b.WriteString(" and ")
		}
		// Column labels are unique within a domain, so cross-table filters
		// read the same as local ones; the parser re-derives the join.
		b.WriteString("whose ")
		b.WriteString(labelFor(s.Domain, f.Column))
		b.WriteString(" is ")
		b.WriteString(opPhrase(f))
	}
	return b.String()
}

func opPhrase(f Filter) string {
	val := f.Value
	if !f.Num {
		val = "'" + f.Value + "'"
	}
	switch f.Op {
	case ">":
		return "over " + val
	case "<":
		return "under " + val
	case ">=":
		return "at least " + val
	case "<=":
		return "at most " + val
	case "!=":
		return "not " + val
	default: // "="
		if f.Num {
			return "exactly " + val
		}
		return val
	}
}

// renderAugClause renders the augment as a trailing participial clause
// (match / ranking / aggregation frames).
func renderAugClause(s *Spec) string {
	if s.Aug == nil {
		return ""
	}
	switch s.Aug.Kind {
	case AugCityRegion:
		return fmt.Sprintf(" located in a city that is part of the '%s' region", s.Aug.Arg)
	case AugCountyRegion:
		return fmt.Sprintf(" located in a county that is part of the '%s' region", s.Aug.Arg)
	case AugEUCountry:
		return " located in a country that is a member of the European Union"
	case AugTallerThan:
		return fmt.Sprintf(" who are taller than %s", s.Aug.Arg)
	case AugClassic:
		return " that are considered a 'classic'"
	case AugNamedAfterPerson:
		return " that are named after a person"
	case AugPositive:
		return " that are positive in sentiment"
	case AugNegative:
		return " that are negative in sentiment"
	case AugPremium:
		return " whose description sounds premium"
	case AugSarcastic:
		return " that are sarcastic in tone"
	case AugTechnical:
		return " that are technical in nature"
	default:
		return ""
	}
}

// renderAugPredicate renders the augment as a verb phrase for the
// comparison frame ("how many of them ...").
func renderAugPredicate(s *Spec) string {
	if s.Aug == nil {
		return "exist"
	}
	switch s.Aug.Kind {
	case AugCityRegion:
		return fmt.Sprintf("are located in a city that is part of the '%s' region", s.Aug.Arg)
	case AugCountyRegion:
		return fmt.Sprintf("are located in a county that is part of the '%s' region", s.Aug.Arg)
	case AugEUCountry:
		return "are located in a country that is a member of the European Union"
	case AugTallerThan:
		return fmt.Sprintf("are taller than %s", s.Aug.Arg)
	case AugClassic:
		return "are considered a 'classic'"
	case AugNamedAfterPerson:
		return "are named after a person"
	case AugPositive:
		return "are positive in sentiment"
	case AugNegative:
		return "are negative in sentiment"
	case AugPremium:
		return "have a description that sounds premium"
	case AugSarcastic:
		return "are sarcastic in tone"
	case AugTechnical:
		return "are technical in nature"
	default:
		return "exist"
	}
}

// isTraitKind reports whether the kind is a trait-ranking augment.
func isTraitKind(k AugKind) bool {
	return k == AugTopSarcastic || k == AugTopTechnical || k == AugTopPositive
}

// traitWord is the English adjective for a trait-ranking augment.
func traitWord(k AugKind) string {
	switch k {
	case AugTopSarcastic:
		return "sarcastic"
	case AugTopTechnical:
		return "technical"
	case AugTopPositive:
		return "positive"
	default:
		return ""
	}
}

// traitKindFor reverses traitWord.
func traitKindFor(word string) (AugKind, bool) {
	switch word {
	case "sarcastic":
		return AugTopSarcastic, true
	case "technical":
		return AugTopTechnical, true
	case "positive":
		return AugTopPositive, true
	default:
		return AugNone, false
	}
}
