package nlq

import (
	"sort"
	"strings"
)

// This file is the shared English lexicon: entity nouns, column labels,
// filter phrase overrides and foreign-key hints. Render and Parse both read
// these tables, which is what guarantees round-tripping.

// entityNoun maps (domain, table) to singular/plural English nouns.
type entityNoun struct {
	domain, table    string
	singular, plural string
}

var entityNouns = []entityNoun{
	{"california_schools", "schools", "school", "schools"},
	{"california_schools", "satscores", "SAT score record", "SAT score records"},
	{"european_football_2", "Player", "player", "players"},
	{"european_football_2", "Team", "team", "teams"},
	{"codebase_community", "posts", "post", "posts"},
	{"codebase_community", "comments", "comment", "comments"},
	{"codebase_community", "users", "user", "users"},
	{"debit_card_specializing", "gasstations", "gas station", "gas stations"},
	{"debit_card_specializing", "transactions_1k", "transaction", "transactions"},
	{"debit_card_specializing", "products", "product", "products"},
	{"debit_card_specializing", "customers", "customer", "customers"},
	{"formula_1", "races", "race", "races"},
	{"formula_1", "drivers", "driver", "drivers"},
	{"formula_1", "circuits", "circuit", "circuits"},
	// The movies domain backs Figure 1 and the examples.
	{"movies", "movies", "movie", "movies"},
	{"movies", "reviews", "review", "reviews"},
}

// nounFor returns the nouns for a (domain, table).
func nounFor(domain, table string) (string, string) {
	for _, e := range entityNouns {
		if e.domain == domain && e.table == table {
			return e.singular, e.plural
		}
	}
	return table, table
}

// colLabels maps "domain/table.column" to the English noun phrase used in
// questions. Labels must be unique within a domain (Parse relies on it).
var colLabels = map[string]string{
	// california_schools
	"california_schools/schools.School":        "school name",
	"california_schools/schools.District":      "district",
	"california_schools/schools.City":          "city",
	"california_schools/schools.County":        "county",
	"california_schools/schools.Longitude":     "longitude",
	"california_schools/schools.Latitude":      "latitude",
	"california_schools/schools.GSoffered":     "grade span offered",
	"california_schools/schools.Charter":       "charter status",
	"california_schools/satscores.AvgScrMath":  "average math score in the SAT test",
	"california_schools/satscores.AvgScrRead":  "average reading score in the SAT test",
	"california_schools/satscores.AvgScrWrite": "average writing score in the SAT test",
	"california_schools/satscores.NumTstTakr":  "number of test takers",
	"california_schools/frpm.Enrollment":       "enrollment",
	"california_schools/frpm.FRPMCount":        "free or reduced price meal count",

	// european_football_2
	"european_football_2/Player.player_name":    "name",
	"european_football_2/Player.height":         "height",
	"european_football_2/Player.weight":         "weight",
	"european_football_2/Player.birthday":       "birthday",
	"european_football_2/Player.overall_rating": "overall rating",
	"european_football_2/Player.volleys":        "volley score",
	"european_football_2/Player.dribbling":      "dribbling score",
	"european_football_2/Player.finishing":      "finishing score",
	"european_football_2/Team.team_long_name":   "team name",
	"european_football_2/Team.country":          "country",

	// codebase_community
	"codebase_community/posts.Title":       "title",
	"codebase_community/posts.Body":        "body",
	"codebase_community/posts.ViewCount":   "view count",
	"codebase_community/posts.Score":       "score",
	"codebase_community/comments.Text":     "text",
	"codebase_community/comments.Score":    "comment score",
	"codebase_community/users.DisplayName": "display name",
	"codebase_community/users.Reputation":  "reputation",

	// debit_card_specializing
	"debit_card_specializing/gasstations.Country":    "country",
	"debit_card_specializing/gasstations.Segment":    "segment",
	"debit_card_specializing/gasstations.ChainID":    "chain id",
	"debit_card_specializing/transactions_1k.Amount": "amount",
	"debit_card_specializing/transactions_1k.Price":  "price",
	"debit_card_specializing/transactions_1k.Date":   "date",
	"debit_card_specializing/products.Description":   "description",
	"debit_card_specializing/products.ProductID":     "product id",
	"debit_card_specializing/customers.Segment":      "customer segment",
	"debit_card_specializing/customers.Currency":     "currency",

	// formula_1
	"formula_1/races.name":          "race name",
	"formula_1/races.year":          "year",
	"formula_1/races.round":         "round",
	"formula_1/races.date":          "date",
	"formula_1/circuits.name":       "circuit name",
	"formula_1/circuits.location":   "location",
	"formula_1/circuits.country":    "country",
	"formula_1/drivers.surname":     "surname",
	"formula_1/drivers.forename":    "forename",
	"formula_1/drivers.nationality": "nationality",
	"formula_1/results.position":    "finishing position",
	"formula_1/results.points":      "points",

	// movies (examples / Figure 1)
	"movies/movies.title":   "title",
	"movies/movies.genre":   "genre",
	"movies/movies.revenue": "revenue",
	"movies/movies.year":    "release year",
	"movies/reviews.body":   "review",
	"movies/reviews.stars":  "star rating",
}

// labelFor returns the English label of a qualified column in a domain.
func labelFor(domain, qcol string) string {
	if l, ok := colLabels[domain+"/"+qcol]; ok {
		return l
	}
	// Fall back to the bare column name.
	if i := strings.IndexByte(qcol, '.'); i >= 0 {
		return qcol[i+1:]
	}
	return qcol
}

// columnForLabel resolves an English label back to a qualified column
// within a domain. The search prefers the longest label match (labels are
// unique per domain so ties cannot occur).
func columnForLabel(domain, label string) (string, bool) {
	want := strings.TrimSpace(strings.ToLower(label))
	prefix := domain + "/"
	for key, l := range colLabels {
		if strings.HasPrefix(key, prefix) && strings.ToLower(l) == want {
			return strings.TrimPrefix(key, prefix), true
		}
	}
	return "", false
}

// domainLabels returns the labels of a domain sorted longest-first, used by
// Parse to find the longest label occurring at a position.
func domainLabels(domain string) []string {
	prefix := domain + "/"
	var out []string
	for key, l := range colLabels {
		if strings.HasPrefix(key, prefix) {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i] < out[j]
	})
	return out
}

// foreignKeys lists the joins the schema makes available per domain. The
// simulated LM consults this when a parsed question references columns from
// two tables — exactly the "schema understanding" a Text2SQL prompt conveys.
var foreignKeys = map[string][]Join{
	"california_schools": {
		{Table: "satscores", Left: "schools.CDSCode", Right: "satscores.cds"},
		{Table: "frpm", Left: "schools.CDSCode", Right: "frpm.CDSCode"},
	},
	"codebase_community": {
		{Table: "posts", Left: "comments.PostId", Right: "posts.Id"},
		{Table: "users", Left: "comments.UserId", Right: "users.Id"},
	},
	"debit_card_specializing": {
		{Table: "gasstations", Left: "transactions_1k.GasStationID", Right: "gasstations.GasStationID"},
		{Table: "products", Left: "transactions_1k.ProductID", Right: "products.ProductID"},
		{Table: "customers", Left: "transactions_1k.CustomerID", Right: "customers.CustomerID"},
	},
	"formula_1": {
		{Table: "circuits", Left: "races.circuitId", Right: "circuits.circuitId"},
		{Table: "results", Left: "races.raceId", Right: "results.raceId"},
		{Table: "drivers", Left: "results.driverId", Right: "drivers.driverId"},
	},
	"movies": {
		{Table: "reviews", Left: "movies.id", Right: "reviews.movie_id"},
		{Table: "movies", Left: "reviews.movie_id", Right: "movies.id"},
	},
	"european_football_2": nil,
}

// JoinFor returns the join connecting the primary table to the table owning
// qcol, or nil when qcol lives in the primary table. ok=false means no
// foreign key connects them.
func JoinFor(domain, primary, qcol string) (*Join, bool) {
	tbl := qcol
	if i := strings.IndexByte(qcol, '.'); i >= 0 {
		tbl = qcol[:i]
	}
	if tbl == primary {
		return nil, true
	}
	for _, j := range foreignKeys[domain] {
		if j.Table == tbl && strings.HasPrefix(j.Left, primary+".") {
			jj := j
			return &jj, true
		}
		// Reverse orientation: FK declared from the secondary side.
		if strings.HasPrefix(j.Left, tbl+".") && j.Table == tbl {
			jj := j
			return &jj, true
		}
	}
	// Search FKs declared with the secondary table as origin.
	for _, j := range foreignKeys[domain] {
		if strings.HasPrefix(j.Left, primary+".") && j.Table == tbl {
			jj := j
			return &jj, true
		}
	}
	return nil, false
}

// tableOf extracts the table part of a qualified column.
func tableOf(qcol string) string {
	if i := strings.IndexByte(qcol, '.'); i >= 0 {
		return qcol[:i]
	}
	return qcol
}
