// Package nlq defines the controlled natural-language layer shared by the
// benchmark generator and the simulated language model.
//
// A Spec is the formal meaning of a benchmark question: a relational
// skeleton (table, join, filters, ordering, projection) plus at most one
// *augment* — the world-knowledge or semantic-reasoning requirement that
// BIRD queries were modified with in the TAG paper (§4.1).
//
// Render turns a Spec into an English question; Parse turns an English
// question back into a Spec. The benchmark generator renders, the simulated
// LM parses. Because both directions share one lexicon, Parse∘Render is the
// identity on every benchmark query (property-tested), which pins the
// simulated LM's *language understanding* at "reliable" and leaves its
// failure modes where the paper locates them: parametric knowledge,
// semantic scoring, and in-context computation.
package nlq

import "fmt"

// QueryType is the BIRD query taxonomy used by TAG-Bench.
type QueryType uint8

// Query types (Table 1 columns).
const (
	Match QueryType = iota
	Comparison
	Ranking
	Aggregation
)

// String returns the paper's name for the query type.
func (t QueryType) String() string {
	switch t {
	case Match:
		return "Match-based"
	case Comparison:
		return "Comparison"
	case Ranking:
		return "Ranking"
	case Aggregation:
		return "Aggregation"
	default:
		return fmt.Sprintf("QueryType(%d)", uint8(t))
	}
}

// Category splits queries by the capability they demand (Table 2 rows).
type Category uint8

// Query categories.
const (
	Knowledge Category = iota
	Reasoning
)

// String returns the paper's name for the category.
func (c Category) String() string {
	if c == Knowledge {
		return "Knowledge"
	}
	return "Reasoning"
}

// AugKind enumerates the knowledge/reasoning augmentations applied to the
// relational skeletons.
type AugKind uint8

// Augment kinds. Knowledge kinds require facts outside the database;
// reasoning kinds require semantic judgement over a text column.
const (
	AugNone AugKind = iota

	// Knowledge.
	AugCityRegion   // Column is a city; Arg is a region ("Silicon Valley")
	AugCountyRegion // Column is a county; Arg is a region ("Bay Area")
	AugEUCountry    // Column is a country; keep EU members
	AugTallerThan   // Column is a height in cm; Arg is a famous person
	AugClassic      // Column is a movie title; keep widely-acknowledged classics
	AugCircuitInfo  // Arg is a circuit name (aggregation: "provide information")

	// Reasoning.
	AugPositive         // Column is text; keep positive-sentiment rows
	AugNegative         // Column is text; keep negative-sentiment rows
	AugSarcastic        // Column is text; keep sarcastic rows
	AugTechnical        // Column is text; keep technical rows
	AugNamedAfterPerson // Column is an institution name; keep person-named rows
	AugPremium          // Column is a product description; keep premium-sounding rows
	AugTopSarcastic     // rank rows by sarcasm of Column
	AugTopTechnical     // rank rows by technicality of Column
	AugTopPositive      // rank rows by positivity of Column
	AugSummarize        // aggregate: summarise Column
)

// IsKnowledge reports whether the kind draws on world knowledge (vs
// semantic reasoning over text).
func (k AugKind) IsKnowledge() bool {
	switch k {
	case AugCityRegion, AugCountyRegion, AugEUCountry, AugTallerThan, AugClassic, AugCircuitInfo:
		return true
	default:
		return false
	}
}

// Augment is the single knowledge/reasoning requirement of a query.
type Augment struct {
	Kind   AugKind
	Column string // fully qualified "table.column" the augment applies to
	Arg    string // region / person / circuit name, where applicable
	K      int    // result size for ranking augments
}

// Filter is one relational predicate. Column is fully qualified
// "table.column"; Op is one of = != < <= > >=.
type Filter struct {
	Column string
	Op     string
	Value  string
	Num    bool // Value is numeric (render and compare as a number)
}

// Join names a secondary table reachable from the primary table via a
// foreign key. Left and Right are fully qualified columns.
type Join struct {
	Table string
	Left  string
	Right string
}

// Spec is the formal meaning of a benchmark question.
type Spec struct {
	Domain   string
	Type     QueryType
	Category Category

	Table   string // primary table
	Join    *Join  // optional second table
	Filters []Filter

	Target    string // projected column, fully qualified (match/ranking/agg)
	OrderBy   string // relational order column, fully qualified
	OrderDesc bool
	Limit     int // top-K for ranking; 1 for match

	Aug *Augment
}

// Clone returns a deep copy of the spec.
func (s *Spec) Clone() *Spec {
	out := *s
	if s.Join != nil {
		j := *s.Join
		out.Join = &j
	}
	if s.Aug != nil {
		a := *s.Aug
		out.Aug = &a
	}
	out.Filters = append([]Filter(nil), s.Filters...)
	return &out
}

// Equal reports deep equality of two specs.
func (s *Spec) Equal(o *Spec) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Domain != o.Domain || s.Type != o.Type || s.Category != o.Category ||
		s.Table != o.Table || s.Target != o.Target || s.OrderBy != o.OrderBy ||
		s.OrderDesc != o.OrderDesc || s.Limit != o.Limit {
		return false
	}
	if (s.Join == nil) != (o.Join == nil) || (s.Join != nil && *s.Join != *o.Join) {
		return false
	}
	if (s.Aug == nil) != (o.Aug == nil) || (s.Aug != nil && *s.Aug != *o.Aug) {
		return false
	}
	if len(s.Filters) != len(o.Filters) {
		return false
	}
	for i := range s.Filters {
		if s.Filters[i] != o.Filters[i] {
			return false
		}
	}
	return true
}
