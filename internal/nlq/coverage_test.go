package nlq

import (
	"math/rand"
	"testing"
)

// TestEveryAugKindRoundTrips builds one spec per augment kind per legal
// frame and asserts Render/Parse round-trips, so new kinds cannot be added
// without surface forms.
func TestEveryAugKindRoundTrips(t *testing.T) {
	specs := []*Spec{
		// Filter kinds in the comparison frame.
		{Domain: "california_schools", Type: Comparison, Table: "schools",
			Aug: &Augment{Kind: AugCityRegion, Column: "schools.City", Arg: "Bay Area"}},
		{Domain: "california_schools", Type: Comparison, Table: "schools",
			Aug: &Augment{Kind: AugCountyRegion, Column: "schools.County", Arg: "Bay Area"}},
		{Domain: "debit_card_specializing", Type: Comparison, Table: "gasstations",
			Aug: &Augment{Kind: AugEUCountry, Column: "gasstations.Country"}},
		{Domain: "european_football_2", Type: Comparison, Table: "Player",
			Aug: &Augment{Kind: AugTallerThan, Column: "Player.height", Arg: "Usain Bolt"}},
		{Domain: "movies", Type: Comparison, Table: "movies",
			Aug: &Augment{Kind: AugClassic, Column: "movies.title"}},
		{Domain: "california_schools", Type: Comparison, Table: "schools",
			Aug: &Augment{Kind: AugNamedAfterPerson, Column: "schools.School"}},
		{Domain: "debit_card_specializing", Type: Comparison, Table: "products",
			Aug: &Augment{Kind: AugPremium, Column: "products.Description"}},
		{Domain: "codebase_community", Type: Comparison, Table: "comments",
			Aug: &Augment{Kind: AugPositive, Column: "comments.Text"}},
		{Domain: "codebase_community", Type: Comparison, Table: "comments",
			Aug: &Augment{Kind: AugNegative, Column: "comments.Text"}},
		{Domain: "codebase_community", Type: Comparison, Table: "comments",
			Aug: &Augment{Kind: AugSarcastic, Column: "comments.Text"}},
		{Domain: "codebase_community", Type: Comparison, Table: "posts",
			Aug: &Augment{Kind: AugTechnical, Column: "posts.Title"}},
		// Trait rankings in both ranking frames.
		{Domain: "codebase_community", Type: Ranking, Table: "posts",
			Target: "posts.Title", OrderBy: "posts.ViewCount", OrderDesc: true, Limit: 4,
			Aug: &Augment{Kind: AugTopSarcastic, Column: "posts.Title", K: 4}},
		{Domain: "codebase_community", Type: Ranking, Table: "comments",
			Target: "comments.Text", Limit: 2,
			Aug: &Augment{Kind: AugTopPositive, Column: "comments.Text", K: 2}},
		// Aggregations.
		{Domain: "codebase_community", Type: Aggregation, Table: "comments",
			Target: "comments.Text",
			Aug:    &Augment{Kind: AugSummarize, Column: "comments.Text"}},
		{Domain: "formula_1", Type: Aggregation, Table: "races",
			Join: &Join{Table: "circuits", Left: "races.circuitId", Right: "circuits.circuitId"},
			Aug:  &Augment{Kind: AugCircuitInfo, Column: "circuits.name", Arg: "Suzuka Circuit"}},
	}
	for _, s := range specs {
		if s.Aug.Kind.IsKnowledge() {
			s.Category = Knowledge
		} else {
			s.Category = Reasoning
		}
		q := Render(s)
		got, err := Parse(q)
		if err != nil {
			t.Errorf("kind %d: Parse(%q): %v", s.Aug.Kind, q, err)
			continue
		}
		if !got.Equal(s) {
			t.Errorf("kind %d round trip:\n  NL: %s\n got: %+v (%+v)\nwant: %+v (%+v)",
				s.Aug.Kind, q, got, got.Aug, s, s.Aug)
		}
	}
}

func TestSpecCloneIsDeep(t *testing.T) {
	s := &Spec{
		Domain: "movies", Type: Match, Table: "movies",
		Join:    &Join{Table: "reviews", Left: "movies.id", Right: "reviews.movie_id"},
		Filters: []Filter{{Column: "movies.genre", Op: "=", Value: "Romance"}},
		Aug:     &Augment{Kind: AugClassic, Column: "movies.title"},
	}
	c := s.Clone()
	c.Join.Table = "other"
	c.Filters[0].Value = "Action"
	c.Aug.Arg = "changed"
	if s.Join.Table != "reviews" || s.Filters[0].Value != "Romance" || s.Aug.Arg != "" {
		t.Error("Clone shares storage with the original")
	}
	if !s.Equal(s.Clone()) {
		t.Error("Clone must compare equal to the original")
	}
}

func TestSpecEqualDistinguishes(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Domain: "movies", Type: Match, Table: "movies", Target: "movies.title",
			Limit: 1, Aug: &Augment{Kind: AugClassic, Column: "movies.title"},
		}
	}
	mutations := []func(*Spec){
		func(s *Spec) { s.Domain = "x" },
		func(s *Spec) { s.Type = Ranking },
		func(s *Spec) { s.Table = "reviews" },
		func(s *Spec) { s.Target = "movies.genre" },
		func(s *Spec) { s.Limit = 2 },
		func(s *Spec) { s.OrderDesc = true },
		func(s *Spec) { s.Aug = nil },
		func(s *Spec) { s.Aug.Kind = AugPositive },
		func(s *Spec) { s.Filters = []Filter{{Column: "movies.genre", Op: "=", Value: "x"}} },
		func(s *Spec) { s.Join = &Join{Table: "reviews", Left: "a", Right: "b"} },
	}
	for i, mutate := range mutations {
		a, b := base(), base()
		mutate(b)
		if a.Equal(b) {
			t.Errorf("mutation %d not detected by Equal", i)
		}
	}
	var nilSpec *Spec
	if nilSpec.Equal(base()) || !nilSpec.Equal(nil) {
		t.Error("nil handling")
	}
}

func TestRenderDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	regions := []string{"Bay Area", "Silicon Valley"}
	for i := 0; i < 200; i++ {
		s := &Spec{
			Domain: "california_schools", Type: Comparison, Table: "schools",
			Aug: &Augment{Kind: AugCityRegion, Column: "schools.City", Arg: regions[r.Intn(2)]},
		}
		if Render(s) != Render(s) {
			t.Fatal("Render must be deterministic")
		}
	}
}

func TestQueryTypeAndCategoryStrings(t *testing.T) {
	if Match.String() != "Match-based" || Aggregation.String() != "Aggregation" {
		t.Error("QueryType.String")
	}
	if Knowledge.String() != "Knowledge" || Reasoning.String() != "Reasoning" {
		t.Error("Category.String")
	}
	if QueryType(99).String() == "" {
		t.Error("unknown type should still render")
	}
}
