package nlq

import (
	"strings"
	"testing"
)

// roundTripSpecs is a representative sample covering every frame, augment
// kind and domain. The full 80-query round-trip is asserted again in
// tagbench's tests.
func roundTripSpecs() []*Spec {
	return []*Spec{
		// Match + knowledge (the paper's Appendix A example).
		{
			Domain: "california_schools", Type: Match, Category: Knowledge,
			Table: "schools", Target: "schools.GSoffered",
			OrderBy: "schools.Longitude", OrderDesc: true, Limit: 1,
			Aug: &Augment{Kind: AugCityRegion, Column: "schools.City", Arg: "Silicon Valley"},
		},
		// Match + order + filter + join.
		{
			Domain: "california_schools", Type: Match, Category: Knowledge,
			Table: "schools", Target: "schools.School",
			Join:    &Join{Table: "satscores", Left: "schools.CDSCode", Right: "satscores.cds"},
			Filters: []Filter{{Column: "satscores.AvgScrMath", Op: ">", Value: "560", Num: true}},
			OrderBy: "satscores.AvgScrRead", OrderDesc: true, Limit: 1,
			Aug: &Augment{Kind: AugCountyRegion, Column: "schools.County", Arg: "Bay Area"},
		},
		// Comparison + knowledge (paper's Stephen Curry example).
		{
			Domain: "european_football_2", Type: Comparison, Category: Knowledge,
			Table: "Player",
			Filters: []Filter{
				{Column: "Player.height", Op: ">", Value: "180", Num: true},
				{Column: "Player.volleys", Op: ">", Value: "70", Num: true},
			},
			Aug: &Augment{Kind: AugTallerThan, Column: "Player.height", Arg: "Stephen Curry"},
		},
		// Comparison + reasoning with cross-table filter.
		{
			Domain: "codebase_community", Type: Comparison, Category: Reasoning,
			Table: "comments",
			Join:  &Join{Table: "posts", Left: "comments.PostId", Right: "posts.Id"},
			Filters: []Filter{
				{Column: "posts.Title", Op: "=", Value: "How does gentle boosting differ from AdaBoost?"},
			},
			Aug: &Augment{Kind: AugSarcastic, Column: "comments.Text"},
		},
		// Ranking + reasoning, paper's re-rank style.
		{
			Domain: "codebase_community", Type: Ranking, Category: Reasoning,
			Table: "posts", Target: "posts.Title",
			OrderBy: "posts.ViewCount", OrderDesc: true, Limit: 5,
			Aug: &Augment{Kind: AugTopTechnical, Column: "posts.Title", K: 5},
		},
		// Ranking + reasoning, direct trait top-K with join filter.
		{
			Domain: "codebase_community", Type: Ranking, Category: Reasoning,
			Table: "comments", Target: "comments.Text",
			Join: &Join{Table: "posts", Left: "comments.PostId", Right: "posts.Id"},
			Filters: []Filter{
				{Column: "posts.Title", Op: "=", Value: "Choosing k in k means"},
			},
			Limit: 3,
			Aug:   &Augment{Kind: AugTopSarcastic, Column: "comments.Text", K: 3},
		},
		// Ranking + knowledge.
		{
			Domain: "california_schools", Type: Ranking, Category: Knowledge,
			Table: "schools", Target: "schools.School",
			Join:    &Join{Table: "satscores", Left: "schools.CDSCode", Right: "satscores.cds"},
			OrderBy: "satscores.AvgScrMath", OrderDesc: true, Limit: 5,
			Aug: &Augment{Kind: AugCityRegion, Column: "schools.City", Arg: "Bay Area"},
		},
		// Aggregation + reasoning (paper's summarize example).
		{
			Domain: "codebase_community", Type: Aggregation, Category: Reasoning,
			Table: "comments", Target: "comments.Text",
			Join: &Join{Table: "posts", Left: "comments.PostId", Right: "posts.Id"},
			Filters: []Filter{
				{Column: "posts.Title", Op: "=", Value: "How does gentle boosting differ from AdaBoost?"},
			},
			Aug: &Augment{Kind: AugSummarize, Column: "comments.Text"},
		},
		// Aggregation + knowledge (Figure 2's Sepang query).
		{
			Domain: "formula_1", Type: Aggregation, Category: Knowledge,
			Table: "races",
			Join:  &Join{Table: "circuits", Left: "races.circuitId", Right: "circuits.circuitId"},
			Aug:   &Augment{Kind: AugCircuitInfo, Column: "circuits.name", Arg: "Sepang International Circuit"},
		},
		// Knowledge aggregation via provide-information frame.
		{
			Domain: "debit_card_specializing", Type: Aggregation, Category: Knowledge,
			Table: "gasstations",
			Aug:   &Augment{Kind: AugEUCountry, Column: "gasstations.Country"},
		},
		// Match + reasoning on products.
		{
			Domain: "debit_card_specializing", Type: Match, Category: Reasoning,
			Table: "products", Target: "products.Description",
			OrderBy: "products.ProductID", OrderDesc: false, Limit: 1,
			Aug: &Augment{Kind: AugPremium, Column: "products.Description"},
		},
		// Movies (Figure 1 / examples domain).
		{
			Domain: "movies", Type: Aggregation, Category: Knowledge,
			Table: "reviews", Target: "reviews.body",
			Join: &Join{Table: "movies", Left: "reviews.movie_id", Right: "movies.id"},
			Filters: []Filter{
				{Column: "movies.genre", Op: "=", Value: "Romance"},
			},
			Aug: &Augment{Kind: AugSummarize, Column: "reviews.body"},
		},
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	for _, spec := range roundTripSpecs() {
		q := Render(spec)
		if q == "" {
			t.Fatalf("Render produced empty question for %+v", spec)
		}
		got, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		// Summarize/CircuitInfo parses don't carry Category for AugSummarize
		// (it is reasoning) — Parse derives it; normalise before compare.
		want := spec.Clone()
		if want.Aug != nil && !want.Aug.Kind.IsKnowledge() {
			want.Category = Reasoning
		} else if want.Aug != nil {
			want.Category = Knowledge
		}
		if !got.Equal(want) {
			t.Errorf("round trip mismatch for %q:\n got: %+v (aug %+v, join %+v)\nwant: %+v (aug %+v, join %+v)",
				q, got, got.Aug, got.Join, want, want.Aug, want.Join)
		}
	}
}

func TestRenderReadableSurfaceForms(t *testing.T) {
	spec := roundTripSpecs()[0]
	q := Render(spec)
	want := "What is the grade span offered of the school with the highest longitude located in a city that is part of the 'Silicon Valley' region?"
	if q != want {
		t.Errorf("surface form drifted:\n got: %s\nwant: %s", q, want)
	}
	spec = roundTripSpecs()[4]
	q = Render(spec)
	want = "Of the 5 posts with the highest view count, list their title in order of most technical to least technical."
	if q != want {
		t.Errorf("rerank surface form drifted:\n got: %s\nwant: %s", q, want)
	}
}

func TestParseRejectsUnknownForms(t *testing.T) {
	bad := []string{
		"",
		"Tell me everything.",
		"What is the fizzbuzz of the gadget with the highest sprocket?",
		"Among the unicorns, how many of them fly?",
		"List the title of the five most melodic posts.",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		}
	}
}

func TestCutNounPrefersLongestMatch(t *testing.T) {
	d, tbl, rest, err := cutNoun("gas stations whose country is 'Italy'")
	if err != nil || d != "debit_card_specializing" || tbl != "gasstations" {
		t.Fatalf("cutNoun: %s %s %q %v", d, tbl, rest, err)
	}
	if !strings.HasPrefix(rest, " whose") {
		t.Errorf("rest = %q", rest)
	}
}

func TestJoinFor(t *testing.T) {
	j, ok := JoinFor("california_schools", "schools", "satscores.AvgScrMath")
	if !ok || j == nil || j.Table != "satscores" {
		t.Fatalf("JoinFor satscores: %+v ok=%v", j, ok)
	}
	// Same-table column needs no join.
	j, ok = JoinFor("california_schools", "schools", "schools.City")
	if !ok || j != nil {
		t.Fatalf("JoinFor same table: %+v ok=%v", j, ok)
	}
	// Unknown relationship.
	if _, ok := JoinFor("california_schools", "schools", "nosuch.col"); ok {
		t.Error("JoinFor should fail for unknown table")
	}
}

func TestFilterPhrases(t *testing.T) {
	s := &Spec{
		Domain: "european_football_2", Table: "Player", Type: Comparison,
		Filters: []Filter{
			{Column: "Player.height", Op: ">", Value: "180", Num: true},
			{Column: "Player.volleys", Op: ">=", Value: "70", Num: true},
			{Column: "Player.player_name", Op: "!=", Value: "Nobody"},
		},
		Aug: &Augment{Kind: AugTallerThan, Column: "Player.height", Arg: "Stephen Curry"},
	}
	q := Render(s)
	for _, frag := range []string{"whose height is over 180", "whose volley score is at least 70", "whose name is not 'Nobody'"} {
		if !strings.Contains(q, frag) {
			t.Errorf("rendered question %q missing %q", q, frag)
		}
	}
	got, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Filters) != 3 || got.Filters[2].Op != "!=" {
		t.Errorf("filters parsed = %+v", got.Filters)
	}
}
