package nlq

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse recovers the Spec from an English question rendered by Render.
// It is the simulated LM's language-understanding head: pattern-directed,
// lexicon-backed, and deliberately limited to the controlled grammar the
// benchmark and examples use. Parse never consults world knowledge — the
// augment it returns still has to be *resolved* (by the LM's noisy
// knowledge view or by semantic operators), which is where the paper's
// failure modes live.
func Parse(q string) (*Spec, error) {
	q = strings.TrimSpace(q)
	switch {
	case strings.HasPrefix(q, "What is the "):
		return parseMatch(q)
	case strings.HasPrefix(q, "Among the "):
		return parseComparison(q)
	case strings.HasPrefix(q, "List the "):
		return parseRankingList(q)
	case strings.HasPrefix(q, "Of the "):
		return parseRankingRerank(q)
	case strings.HasPrefix(q, "Summarize the "):
		return parseSummarize(q)
	case strings.HasPrefix(q, "Provide information about the "):
		return parseProvideInfo(q)
	default:
		return nil, fmt.Errorf("nlq: unrecognised question form: %q", q)
	}
}

// augMarkers are the surface cues that introduce an augment clause, shared
// by every frame. Order matters only for scanning; all markers are
// mutually exclusive prefixes.
var augMarkers = []string{
	" located in a city that is part of the '",
	" located in a county that is part of the '",
	" located in a country that is a member of the European Union",
	" who are taller than ",
	" that are considered a 'classic'",
	" that are named after a person",
	" that are positive in sentiment",
	" that are negative in sentiment",
	" that are sarcastic in tone",
	" that are technical in nature",
	" whose description sounds premium",
}

// splitAug finds the augment clause in the tail of a sentence, returning
// the text before it and the parsed augment (nil if none present).
func splitAug(domain, table, s string) (string, *Augment, error) {
	for _, m := range augMarkers {
		i := strings.Index(s, m)
		if i < 0 {
			continue
		}
		rest := s[i+len(m):]
		var a Augment
		switch m {
		case " located in a city that is part of the '":
			arg, _, ok := strings.Cut(rest, "' region")
			if !ok {
				return "", nil, fmt.Errorf("nlq: malformed region clause in %q", s)
			}
			a = Augment{Kind: AugCityRegion, Arg: arg}
		case " located in a county that is part of the '":
			arg, _, ok := strings.Cut(rest, "' region")
			if !ok {
				return "", nil, fmt.Errorf("nlq: malformed region clause in %q", s)
			}
			a = Augment{Kind: AugCountyRegion, Arg: arg}
		case " located in a country that is a member of the European Union":
			a = Augment{Kind: AugEUCountry}
		case " who are taller than ":
			a = Augment{Kind: AugTallerThan, Arg: strings.TrimRight(rest, "?.")}
		case " that are considered a 'classic'":
			a = Augment{Kind: AugClassic}
		case " that are named after a person":
			a = Augment{Kind: AugNamedAfterPerson}
		case " that are positive in sentiment":
			a = Augment{Kind: AugPositive}
		case " that are negative in sentiment":
			a = Augment{Kind: AugNegative}
		case " that are sarcastic in tone":
			a = Augment{Kind: AugSarcastic}
		case " that are technical in nature":
			a = Augment{Kind: AugTechnical}
		case " whose description sounds premium":
			a = Augment{Kind: AugPremium}
		}
		a.Column = augDefaultColumn(domain, table, a.Kind)
		return s[:i], &a, nil
	}
	return s, nil, nil
}

// augDefaultColumn resolves which column an augment applies to — schema
// knowledge the LM derives from the prompt's CREATE TABLE block.
func augDefaultColumn(domain, table string, k AugKind) string {
	find := func(label string) string {
		if c, ok := columnForLabel(domain, label); ok {
			return c
		}
		return ""
	}
	switch k {
	case AugCityRegion:
		return find("city")
	case AugCountyRegion:
		return find("county")
	case AugEUCountry:
		return find("country")
	case AugTallerThan:
		return find("height")
	case AugClassic:
		return find("title")
	case AugNamedAfterPerson:
		return find("school name")
	case AugPremium:
		return find("description")
	case AugPositive, AugNegative, AugSarcastic, AugTechnical,
		AugTopSarcastic, AugTopTechnical, AugTopPositive, AugSummarize:
		// Trait augments apply to the table's free-text column.
		return textColumnFor(domain, table)
	default:
		return ""
	}
}

// textColumnFor names the free-text column of a table (the one semantic
// reasoning operates on).
func textColumnFor(domain, table string) string {
	switch domain + "/" + table {
	case "codebase_community/comments":
		return "comments.Text"
	case "codebase_community/posts":
		return "posts.Title"
	case "movies/reviews":
		return "reviews.body"
	case "movies/movies":
		return "movies.title"
	case "debit_card_specializing/products":
		return "products.Description"
	default:
		return ""
	}
}

// parseFilters parses the filter clause produced by renderFilters.
// The clause may be empty.
func parseFilters(domain, table, s string) ([]Filter, error) {
	s = strings.TrimSpace(s)
	var out []Filter
	for s != "" {
		s = strings.TrimPrefix(s, "and ")
		if !strings.HasPrefix(s, "whose ") {
			return nil, fmt.Errorf("nlq: expected filter clause, found %q", s)
		}
		s = s[len("whose "):]
		// Longest-label match at the head; labels are unique per domain,
		// so the label alone identifies the (possibly joined) column.
		var label, col string
		for _, l := range domainLabels(domain) {
			if strings.HasPrefix(s, l+" is ") {
				col, _ = columnForLabel(domain, l)
				label = l
				break
			}
		}
		if label == "" {
			return nil, fmt.Errorf("nlq: no column label recognised at %q", s)
		}
		s = s[len(label)+len(" is "):]
		f := Filter{Column: col}
		switch {
		case strings.HasPrefix(s, "over "):
			f.Op, f.Num, s = ">", true, s[len("over "):]
		case strings.HasPrefix(s, "under "):
			f.Op, f.Num, s = "<", true, s[len("under "):]
		case strings.HasPrefix(s, "at least "):
			f.Op, f.Num, s = ">=", true, s[len("at least "):]
		case strings.HasPrefix(s, "at most "):
			f.Op, f.Num, s = "<=", true, s[len("at most "):]
		case strings.HasPrefix(s, "exactly "):
			f.Op, f.Num, s = "=", true, s[len("exactly "):]
		case strings.HasPrefix(s, "not '"):
			f.Op, s = "!=", s[len("not "):]
		default:
			f.Op = "="
		}
		if strings.HasPrefix(s, "'") {
			end := strings.Index(s[1:], "'")
			if end < 0 {
				return nil, fmt.Errorf("nlq: unterminated quoted value in filter")
			}
			f.Value = s[1 : 1+end]
			s = s[2+end:]
		} else {
			// Numeric value: read to the next space or end.
			j := strings.IndexByte(s, ' ')
			if j < 0 {
				f.Value = s
				s = ""
			} else {
				f.Value = s[:j]
				s = s[j:]
			}
			f.Num = true
		}
		out = append(out, f)
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// resolveJoins fills in Spec.Join when any referenced column lives outside
// the primary table.
func resolveJoins(s *Spec) error {
	check := func(qcol string) error {
		if qcol == "" || tableOf(qcol) == s.Table {
			return nil
		}
		j, ok := JoinFor(s.Domain, s.Table, qcol)
		if !ok {
			return fmt.Errorf("nlq: no foreign key from %s to %s in %s", s.Table, tableOf(qcol), s.Domain)
		}
		if j != nil && s.Join == nil {
			s.Join = j
		}
		return nil
	}
	if err := check(s.Target); err != nil {
		return err
	}
	if err := check(s.OrderBy); err != nil {
		return err
	}
	for _, f := range s.Filters {
		if err := check(f.Column); err != nil {
			return err
		}
	}
	if s.Aug != nil {
		if err := check(s.Aug.Column); err != nil {
			return err
		}
	}
	return nil
}

// finishSpec derives Category and resolves joins.
func finishSpec(s *Spec) (*Spec, error) {
	if s.Aug != nil {
		if s.Aug.Kind.IsKnowledge() {
			s.Category = Knowledge
		} else {
			s.Category = Reasoning
		}
	}
	if err := resolveJoins(s); err != nil {
		return nil, err
	}
	return s, nil
}

func parseMatch(q string) (*Spec, error) {
	body := strings.TrimSuffix(strings.TrimPrefix(q, "What is the "), "?")
	target, rest, ok := strings.Cut(body, " of the ")
	if !ok {
		return nil, fmt.Errorf("nlq: match frame missing ' of the ': %q", q)
	}
	// Entity noun is the longest known singular noun prefix of rest.
	domain, table, tail, err := cutNoun(rest)
	if err != nil {
		return nil, err
	}
	s := &Spec{Domain: domain, Type: Match, Table: table, Limit: 1}
	if c, ok := columnForLabel(domain, target); ok {
		s.Target = c
	} else {
		return nil, fmt.Errorf("nlq: unknown target label %q", target)
	}
	tail, aug, err := splitAug(domain, table, tail)
	if err != nil {
		return nil, err
	}
	s.Aug = aug
	tail = strings.TrimSpace(tail)
	if strings.HasPrefix(tail, "with the highest ") || strings.HasPrefix(tail, "with the lowest ") {
		s.OrderDesc = strings.HasPrefix(tail, "with the highest ")
		tail = strings.TrimPrefix(strings.TrimPrefix(tail, "with the highest "), "with the lowest ")
		// The order label runs until the filter clause (or end).
		label, filterPart := cutLabel(domain, tail)
		if label == "" {
			return nil, fmt.Errorf("nlq: unknown order label at %q", tail)
		}
		col, _ := columnForLabel(domain, label)
		s.OrderBy = col
		tail = filterPart
	}
	fs, err := parseFilters(domain, table, tail)
	if err != nil {
		return nil, err
	}
	s.Filters = fs
	return finishSpec(s)
}

func parseComparison(q string) (*Spec, error) {
	body := strings.TrimSuffix(strings.TrimPrefix(q, "Among the "), "?")
	head, pred, ok := strings.Cut(body, ", how many of them ")
	if !ok {
		return nil, fmt.Errorf("nlq: comparison frame missing count clause: %q", q)
	}
	domain, table, tail, err := cutNoun(head)
	if err != nil {
		return nil, err
	}
	s := &Spec{Domain: domain, Type: Comparison, Table: table}
	fs, err := parseFilters(domain, table, tail)
	if err != nil {
		return nil, err
	}
	s.Filters = fs
	aug, err := parsePredicate(domain, table, pred)
	if err != nil {
		return nil, err
	}
	s.Aug = aug
	return finishSpec(s)
}

// parsePredicate maps a comparison verb phrase back to an augment.
func parsePredicate(domain, table, pred string) (*Augment, error) {
	pred = strings.TrimSpace(pred)
	var a Augment
	switch {
	case strings.HasPrefix(pred, "are located in a city that is part of the '"):
		arg, _, _ := strings.Cut(pred[len("are located in a city that is part of the '"):], "' region")
		a = Augment{Kind: AugCityRegion, Arg: arg}
	case strings.HasPrefix(pred, "are located in a county that is part of the '"):
		arg, _, _ := strings.Cut(pred[len("are located in a county that is part of the '"):], "' region")
		a = Augment{Kind: AugCountyRegion, Arg: arg}
	case pred == "are located in a country that is a member of the European Union":
		a = Augment{Kind: AugEUCountry}
	case strings.HasPrefix(pred, "are taller than "):
		a = Augment{Kind: AugTallerThan, Arg: strings.TrimPrefix(pred, "are taller than ")}
	case pred == "are considered a 'classic'":
		a = Augment{Kind: AugClassic}
	case pred == "are named after a person":
		a = Augment{Kind: AugNamedAfterPerson}
	case pred == "are positive in sentiment":
		a = Augment{Kind: AugPositive}
	case pred == "are negative in sentiment":
		a = Augment{Kind: AugNegative}
	case pred == "are sarcastic in tone":
		a = Augment{Kind: AugSarcastic}
	case pred == "are technical in nature":
		a = Augment{Kind: AugTechnical}
	case pred == "have a description that sounds premium":
		a = Augment{Kind: AugPremium}
	default:
		return nil, fmt.Errorf("nlq: unknown comparison predicate %q", pred)
	}
	a.Column = augDefaultColumn(domain, table, a.Kind)
	return &a, nil
}

func parseRankingList(q string) (*Spec, error) {
	body := strings.TrimSuffix(strings.TrimPrefix(q, "List the "), ".")
	target, rest, ok := strings.Cut(body, " of the ")
	if !ok {
		return nil, fmt.Errorf("nlq: ranking frame missing ' of the ': %q", q)
	}
	// rest = "{K} most {trait} {plural}{filters}"  or
	//        "{K} {plural} with the highest {order}{filters}{aug}"
	kStr, rest2, ok := strings.Cut(rest, " ")
	if !ok {
		return nil, fmt.Errorf("nlq: ranking frame missing K: %q", q)
	}
	k, err := strconv.Atoi(kStr)
	if err != nil {
		return nil, fmt.Errorf("nlq: ranking K %q is not a number", kStr)
	}
	if strings.HasPrefix(rest2, "most ") {
		// Direct trait top-K.
		rest2 = rest2[len("most "):]
		trait, rest3, ok := strings.Cut(rest2, " ")
		if !ok {
			return nil, fmt.Errorf("nlq: trait ranking missing entity: %q", q)
		}
		kind, ok := traitKindFor(trait)
		if !ok {
			return nil, fmt.Errorf("nlq: unknown trait %q", trait)
		}
		domain, table, tail, err := cutNoun(rest3)
		if err != nil {
			return nil, err
		}
		s := &Spec{Domain: domain, Type: Ranking, Table: table, Limit: k}
		if c, ok := columnForLabel(domain, target); ok {
			s.Target = c
		} else {
			return nil, fmt.Errorf("nlq: unknown target label %q", target)
		}
		fs, err := parseFilters(domain, table, tail)
		if err != nil {
			return nil, err
		}
		s.Filters = fs
		s.Aug = &Augment{Kind: kind, Column: augDefaultColumn(domain, table, kind), K: k}
		return finishSpec(s)
	}
	// Knowledge ranking.
	domain, table, tail, err := cutNoun(rest2)
	if err != nil {
		return nil, err
	}
	s := &Spec{Domain: domain, Type: Ranking, Table: table, Limit: k}
	if c, ok := columnForLabel(domain, target); ok {
		s.Target = c
	} else {
		return nil, fmt.Errorf("nlq: unknown target label %q", target)
	}
	tail = strings.TrimSpace(tail)
	if strings.HasPrefix(tail, "with the highest ") || strings.HasPrefix(tail, "with the lowest ") {
		s.OrderDesc = strings.HasPrefix(tail, "with the highest ")
		tail = strings.TrimPrefix(strings.TrimPrefix(tail, "with the highest "), "with the lowest ")
		label, rest := cutLabel(domain, tail)
		if label == "" {
			return nil, fmt.Errorf("nlq: unknown order label at %q", tail)
		}
		col, _ := columnForLabel(domain, label)
		s.OrderBy = col
		tail = rest
	}
	tail, aug, err := splitAug(domain, table, tail)
	if err != nil {
		return nil, err
	}
	s.Aug = aug
	fs, err := parseFilters(domain, table, tail)
	if err != nil {
		return nil, err
	}
	s.Filters = fs
	return finishSpec(s)
}

func parseRankingRerank(q string) (*Spec, error) {
	body := strings.TrimSuffix(strings.TrimPrefix(q, "Of the "), ".")
	head, listPart, ok := strings.Cut(body, ", list their ")
	if !ok {
		return nil, fmt.Errorf("nlq: rerank frame missing ', list their ': %q", q)
	}
	kStr, rest, ok := strings.Cut(head, " ")
	if !ok {
		return nil, fmt.Errorf("nlq: rerank frame missing K: %q", q)
	}
	k, err := strconv.Atoi(kStr)
	if err != nil {
		return nil, fmt.Errorf("nlq: rerank K %q is not a number", kStr)
	}
	domain, table, tail, err := cutNoun(rest)
	if err != nil {
		return nil, err
	}
	s := &Spec{Domain: domain, Type: Ranking, Table: table, Limit: k}
	tail = strings.TrimSpace(tail)
	if strings.HasPrefix(tail, "with the highest ") || strings.HasPrefix(tail, "with the lowest ") {
		s.OrderDesc = strings.HasPrefix(tail, "with the highest ")
		tail = strings.TrimPrefix(strings.TrimPrefix(tail, "with the highest "), "with the lowest ")
		label, rest := cutLabel(domain, tail)
		if label == "" {
			return nil, fmt.Errorf("nlq: unknown order label at %q", tail)
		}
		col, _ := columnForLabel(domain, label)
		s.OrderBy = col
		tail = rest
	}
	fs, err := parseFilters(domain, table, tail)
	if err != nil {
		return nil, err
	}
	s.Filters = fs
	// listPart = "{target} in order of most {trait} to least {trait}"
	target, traitPart, ok := strings.Cut(listPart, " in order of most ")
	if !ok {
		return nil, fmt.Errorf("nlq: rerank frame missing trait ordering: %q", q)
	}
	if c, ok := columnForLabel(domain, target); ok {
		s.Target = c
	} else {
		return nil, fmt.Errorf("nlq: unknown target label %q", target)
	}
	trait, _, _ := strings.Cut(traitPart, " to least ")
	kind, ok := traitKindFor(trait)
	if !ok {
		return nil, fmt.Errorf("nlq: unknown trait %q", trait)
	}
	s.Aug = &Augment{Kind: kind, Column: augDefaultColumn(domain, table, kind), K: k}
	return finishSpec(s)
}

func parseSummarize(q string) (*Spec, error) {
	body := strings.TrimSuffix(strings.TrimPrefix(q, "Summarize the "), ".")
	target, rest, ok := strings.Cut(body, " of the ")
	if !ok {
		return nil, fmt.Errorf("nlq: summarize frame missing ' of the ': %q", q)
	}
	domain, table, tail, err := cutNoun(rest)
	if err != nil {
		return nil, err
	}
	s := &Spec{Domain: domain, Type: Aggregation, Table: table}
	if c, ok := columnForLabel(domain, target); ok {
		s.Target = c
	} else {
		return nil, fmt.Errorf("nlq: unknown target label %q", target)
	}
	fs, err := parseFilters(domain, table, tail)
	if err != nil {
		return nil, err
	}
	s.Filters = fs
	s.Aug = &Augment{Kind: AugSummarize, Column: s.Target}
	return finishSpec(s)
}

func parseProvideInfo(q string) (*Spec, error) {
	body := strings.TrimSuffix(strings.TrimPrefix(q, "Provide information about the "), ".")
	if strings.HasPrefix(body, "races held on ") {
		arg := strings.TrimPrefix(body, "races held on ")
		s := &Spec{
			Domain: "formula_1", Type: Aggregation, Table: "races",
			Aug: &Augment{Kind: AugCircuitInfo, Column: "circuits.name", Arg: arg},
		}
		return finishSpec(s)
	}
	domain, table, tail, err := cutNoun(body)
	if err != nil {
		return nil, err
	}
	s := &Spec{Domain: domain, Type: Aggregation, Table: table}
	tail, aug, err := splitAug(domain, table, tail)
	if err != nil {
		return nil, err
	}
	s.Aug = aug
	fs, err := parseFilters(domain, table, tail)
	if err != nil {
		return nil, err
	}
	s.Filters = fs
	return finishSpec(s)
}

// cutNoun matches the longest entity noun at the head of s and returns its
// (domain, table) with the remaining text.
func cutNoun(s string) (domain, table, rest string, err error) {
	best := ""
	for _, e := range entityNouns {
		for _, n := range []string{e.plural, e.singular} {
			if strings.HasPrefix(s, n) && len(n) > len(best) {
				if len(s) == len(n) || s[len(n)] == ' ' || s[len(n)] == ',' {
					best = n
					domain, table = e.domain, e.table
				}
			}
		}
	}
	if best == "" {
		return "", "", "", fmt.Errorf("nlq: no entity noun at %q", s)
	}
	return domain, table, s[len(best):], nil
}

// cutLabel matches the longest column label of the domain at the head of s
// and returns the label and the remainder.
func cutLabel(domain, s string) (label, rest string) {
	for _, l := range domainLabels(domain) {
		if strings.HasPrefix(s, l) {
			if len(s) == len(l) || s[len(l)] == ' ' || s[len(l)] == ',' {
				return l, s[len(l):]
			}
		}
	}
	return "", s
}
