package sem

import (
	"context"
	"fmt"
	"strings"

	"tag/internal/llm"
	"tag/internal/sqldb"
)

// This file implements the semantic operators. Each issues its LM calls
// through CompleteBatch so one logical operator over N rows costs one (or
// a few) batched inference rounds.

// SemFilter keeps the rows for which the instantiated claim is judged
// true. The instruction is a template with "{Column}" placeholders, e.g.
// "{City} is a city in the Silicon Valley region".
func (d *DataFrame) SemFilter(ctx context.Context, m llm.Model, instruction string) (*DataFrame, error) {
	if len(d.rows) == 0 {
		return d, nil
	}
	prompts := make([]string, len(d.rows))
	for i := range d.rows {
		prompts[i] = llm.SemFilterPrompt(d.substitute(instruction, i))
	}
	outs, errs := m.CompleteBatch(ctx, prompts)
	var rows []sqldb.Row
	for i, out := range outs {
		if errs != nil && errs[i] != nil {
			return nil, fmt.Errorf("sem: filter row %d: %w", i, errs[i])
		}
		if strings.EqualFold(strings.TrimSpace(out), "true") {
			rows = append(rows, d.rows[i])
		}
	}
	return &DataFrame{cols: d.cols, rows: rows}, nil
}

// SemTopK ranks rows by how well the named column's text satisfies the
// criterion and returns the best k, ordered best-first. It runs a batched
// quicksort: every recursion level partitions all active segments against
// their pivots in a single CompleteBatch, and only segments overlapping
// the top-k prefix recurse — LOTUS's sem_topk uses the same pivot-based
// strategy. Expected O(log n) batched LM rounds.
func (d *DataFrame) SemTopK(ctx context.Context, m llm.Model, criterion, col string, k int) (*DataFrame, error) {
	ci := d.colIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("sem: no column %q", col)
	}
	if k <= 0 {
		return &DataFrame{cols: d.cols}, nil
	}
	order := make([]int, len(d.rows))
	for i := range order {
		order[i] = i
	}
	// seg is a half-open slice [lo, hi) of `order` still needing sorting.
	type seg struct{ lo, hi int }
	active := []seg{{0, len(order)}}
	for len(active) > 0 {
		// One batch: compare every non-pivot element of every active
		// segment against its segment's pivot.
		type probe struct {
			segIdx int
			pos    int
		}
		var prompts []string
		var probes []probe
		for si, s := range active {
			pivot := order[s.lo]
			for pos := s.lo + 1; pos < s.hi; pos++ {
				prompts = append(prompts, llm.SemComparePrompt(criterion,
					d.rows[order[pos]][ci].AsText(), d.rows[pivot][ci].AsText()))
				probes = append(probes, probe{segIdx: si, pos: pos})
			}
		}
		if len(prompts) == 0 {
			break
		}
		outs, errs := m.CompleteBatch(ctx, prompts)
		beats := make(map[int]bool, len(outs)) // order-position -> beats pivot
		for i, out := range outs {
			if errs != nil && errs[i] != nil {
				return nil, fmt.Errorf("sem: topk comparison: %w", errs[i])
			}
			beats[probes[i].pos] = strings.EqualFold(strings.TrimSpace(out), "a")
		}
		var next []seg
		for _, s := range active {
			pivot := order[s.lo]
			var better, worse []int
			for pos := s.lo + 1; pos < s.hi; pos++ {
				if beats[pos] {
					better = append(better, order[pos])
				} else {
					worse = append(worse, order[pos])
				}
			}
			copy(order[s.lo:], better)
			mid := s.lo + len(better)
			order[mid] = pivot
			copy(order[mid+1:], worse)
			if len(better) > 1 && s.lo < k {
				next = append(next, seg{s.lo, mid})
			}
			if len(worse) > 1 && mid+1 < k {
				next = append(next, seg{mid + 1, s.hi})
			}
		}
		active = next
	}
	if k > len(order) {
		k = len(order)
	}
	rows := make([]sqldb.Row, k)
	for i := 0; i < k; i++ {
		rows[i] = d.rows[order[i]]
	}
	return &DataFrame{cols: d.cols, rows: rows}, nil
}

// SemAgg summarises the named column under the instruction, folding
// hierarchically when the items do not fit the model's context window.
func (d *DataFrame) SemAgg(ctx context.Context, m llm.Model, instruction, col string) (string, error) {
	items, err := d.Strings(col)
	if err != nil {
		return "", err
	}
	return foldSummaries(ctx, m, instruction, items)
}

// SemAggRows summarises whole rows ("all_cols=True" in LOTUS terms): each
// item is the full row serialisation.
func (d *DataFrame) SemAggRows(ctx context.Context, m llm.Model, instruction string) (string, error) {
	items := make([]string, len(d.rows))
	for i := range d.rows {
		items[i] = d.RowString(i)
	}
	return foldSummaries(ctx, m, instruction, items)
}

// foldSummaries runs the hierarchical reduction: chunk items to fit the
// context window, summarise each chunk, recurse over the summaries.
func foldSummaries(ctx context.Context, m llm.Model, instruction string, items []string) (string, error) {
	if len(items) == 0 {
		return "Nothing to summarize.", nil
	}
	budget := m.ContextWindow() * 3 / 4
	for {
		chunks := chunkByTokens(instruction, items, budget)
		if len(chunks) == 1 {
			outs, errs := m.CompleteBatch(ctx, []string{llm.SemAggPrompt(instruction, chunks[0])})
			if errs != nil && errs[0] != nil {
				return "", errs[0]
			}
			return outs[0], nil
		}
		prompts := make([]string, len(chunks))
		for i, ch := range chunks {
			prompts[i] = llm.SemAggPrompt(instruction, ch)
		}
		outs, errs := m.CompleteBatch(ctx, prompts)
		next := make([]string, 0, len(outs))
		for i, out := range outs {
			if errs != nil && errs[i] != nil {
				return "", errs[i]
			}
			next = append(next, out)
		}
		items = next
	}
}

// chunkByTokens groups items so each chunk's prompt stays under the token
// budget. Every chunk holds at least one item (oversized single items are
// passed through and truncated by the model's output cap).
func chunkByTokens(instruction string, items []string, budget int) [][]string {
	base := llm.CountTokens(llm.SemAggPrompt(instruction, nil))
	var chunks [][]string
	var cur []string
	used := base
	for _, it := range items {
		t := llm.CountTokens(it) + 2
		if len(cur) > 0 && used+t > budget {
			chunks = append(chunks, cur)
			cur = nil
			used = base
		}
		cur = append(cur, it)
		used += t
	}
	if len(cur) > 0 {
		chunks = append(chunks, cur)
	}
	return chunks
}

// SemMap applies a per-row transformation instruction to the named column
// and returns the outputs as a new column of TEXT values.
func (d *DataFrame) SemMap(ctx context.Context, m llm.Model, instruction, col string) ([]sqldb.Value, error) {
	items, err := d.Strings(col)
	if err != nil {
		return nil, err
	}
	prompts := make([]string, len(items))
	for i, it := range items {
		prompts[i] = llm.SemMapPrompt(instruction, it)
	}
	outs, errs := m.CompleteBatch(ctx, prompts)
	vals := make([]sqldb.Value, len(outs))
	for i, out := range outs {
		if errs != nil && errs[i] != nil {
			return nil, fmt.Errorf("sem: map row %d: %w", i, errs[i])
		}
		vals[i] = sqldb.Text(out)
	}
	return vals, nil
}

// SemJoin keeps pairs (l, r) of the cross product for which the
// instantiated claim is true. The instruction may reference left columns
// as "{Col}" and right columns as "{right:Col}".
func (d *DataFrame) SemJoin(ctx context.Context, m llm.Model, other *DataFrame, instruction string) (*DataFrame, error) {
	cols := append([]string(nil), d.cols...)
	for _, c := range other.cols {
		cols = append(cols, "right_"+c)
	}
	var prompts []string
	type pair struct{ l, r int }
	var pairs []pair
	for li := range d.rows {
		for ri := range other.rows {
			claim := d.substitute(instruction, li)
			for ci, c := range other.cols {
				claim = strings.ReplaceAll(claim, "{right:"+c+"}", other.rows[ri][ci].AsText())
			}
			prompts = append(prompts, llm.SemFilterPrompt(claim))
			pairs = append(pairs, pair{l: li, r: ri})
		}
	}
	outs, errs := m.CompleteBatch(ctx, prompts)
	var rows []sqldb.Row
	for i, out := range outs {
		if errs != nil && errs[i] != nil {
			return nil, fmt.Errorf("sem: join pair %d: %w", i, errs[i])
		}
		if strings.EqualFold(strings.TrimSpace(out), "true") {
			nr := make(sqldb.Row, 0, len(cols))
			nr = append(nr, d.rows[pairs[i].l]...)
			nr = append(nr, other.rows[pairs[i].r]...)
			rows = append(rows, nr)
		}
	}
	return &DataFrame{cols: cols, rows: rows}, nil
}
