// Package sem is the LOTUS-style semantic-operator runtime the TAG paper's
// hand-written pipelines are built on: a typed DataFrame with standard
// relational operators plus LM-backed semantic operators (SemFilter,
// SemTopK, SemAgg, SemMap, SemJoin).
//
// All semantic operators batch their LM calls through Model.CompleteBatch,
// which — under the cost model in internal/llm — is the mechanism behind
// the paper's observation that an efficient TAG system "exploits efficient
// batched inference" (§4.3).
package sem

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"tag/internal/sqldb"
)

// DataFrame is an immutable, column-ordered table. Operations return new
// frames; the receiver is never mutated.
type DataFrame struct {
	cols []string
	rows []sqldb.Row
}

// New builds a DataFrame from column names and rows. Rows must match the
// column count.
func New(cols []string, rows []sqldb.Row) (*DataFrame, error) {
	for i, r := range rows {
		if len(r) != len(cols) {
			return nil, fmt.Errorf("sem: row %d has %d values, want %d", i, len(r), len(cols))
		}
	}
	return &DataFrame{cols: append([]string(nil), cols...), rows: rows}, nil
}

// FromResult wraps a query result as a DataFrame.
func FromResult(res *sqldb.Result) *DataFrame {
	return &DataFrame{cols: append([]string(nil), res.Columns...), rows: res.Rows}
}

// FromRows drains a streaming cursor into a DataFrame and closes it: the
// frame is built row by row as the engine produces them, without an
// intermediate Result. The cursor's error, if any, is returned.
func FromRows(rows *sqldb.Rows) (*DataFrame, error) {
	defer rows.Close()
	cols := rows.Columns()
	var out []sqldb.Row
	for rows.Next() {
		out = append(out, rows.Row())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return &DataFrame{cols: cols, rows: out}, nil
}

// FromTable loads an entire table (SELECT *) through the streaming API.
func FromTable(db *sqldb.Database, table string) (*DataFrame, error) {
	rows, err := db.QueryRows(context.Background(), "SELECT * FROM "+table)
	if err != nil {
		return nil, err
	}
	return FromRows(rows)
}

// Len reports the number of rows.
func (d *DataFrame) Len() int { return len(d.rows) }

// Columns returns the column names.
func (d *DataFrame) Columns() []string { return append([]string(nil), d.cols...) }

// colIndex locates a column (case-insensitive), or -1.
func (d *DataFrame) colIndex(name string) int {
	for i, c := range d.cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Value returns the cell at (row, col); NULL when out of range.
func (d *DataFrame) Value(row int, col string) sqldb.Value {
	ci := d.colIndex(col)
	if ci < 0 || row < 0 || row >= len(d.rows) {
		return sqldb.Null
	}
	return d.rows[row][ci]
}

// Col returns a column as a value slice.
func (d *DataFrame) Col(name string) ([]sqldb.Value, error) {
	ci := d.colIndex(name)
	if ci < 0 {
		return nil, fmt.Errorf("sem: no column %q", name)
	}
	out := make([]sqldb.Value, len(d.rows))
	for i, r := range d.rows {
		out[i] = r[ci]
	}
	return out, nil
}

// Strings returns a column rendered as strings.
func (d *DataFrame) Strings(name string) ([]string, error) {
	vals, err := d.Col(name)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.AsText()
	}
	return out, nil
}

// Filter keeps rows where pred is true. The predicate receives an accessor
// for the current row.
func (d *DataFrame) Filter(pred func(get func(col string) sqldb.Value) bool) *DataFrame {
	var rows []sqldb.Row
	for _, r := range d.rows {
		row := r
		get := func(col string) sqldb.Value {
			ci := d.colIndex(col)
			if ci < 0 {
				return sqldb.Null
			}
			return row[ci]
		}
		if pred(get) {
			rows = append(rows, r)
		}
	}
	return &DataFrame{cols: d.cols, rows: rows}
}

// FilterEq keeps rows whose column equals the value.
func (d *DataFrame) FilterEq(col string, v sqldb.Value) *DataFrame {
	return d.Filter(func(get func(string) sqldb.Value) bool {
		c := get(col)
		return !c.IsNull() && !v.IsNull() && c.Compare(v) == 0
	})
}

// Sort orders rows by a column (stable). NULLs sort first.
func (d *DataFrame) Sort(col string, desc bool) (*DataFrame, error) {
	ci := d.colIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("sem: no column %q", col)
	}
	rows := append([]sqldb.Row(nil), d.rows...)
	sort.SliceStable(rows, func(i, j int) bool {
		c := rows[i][ci].Compare(rows[j][ci])
		if desc {
			return c > 0
		}
		return c < 0
	})
	return &DataFrame{cols: d.cols, rows: rows}, nil
}

// Head keeps the first n rows.
func (d *DataFrame) Head(n int) *DataFrame {
	if n > len(d.rows) {
		n = len(d.rows)
	}
	if n < 0 {
		n = 0
	}
	return &DataFrame{cols: d.cols, rows: d.rows[:n]}
}

// Select projects a subset of columns.
func (d *DataFrame) Select(cols ...string) (*DataFrame, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		ci := d.colIndex(c)
		if ci < 0 {
			return nil, fmt.Errorf("sem: no column %q", c)
		}
		idx[i] = ci
	}
	rows := make([]sqldb.Row, len(d.rows))
	for ri, r := range d.rows {
		nr := make(sqldb.Row, len(idx))
		for i, ci := range idx {
			nr[i] = r[ci]
		}
		rows[ri] = nr
	}
	return &DataFrame{cols: append([]string(nil), cols...), rows: rows}, nil
}

// Join performs an inner hash equi-join with another frame. Column-name
// collisions on the right are prefixed "right_".
func (d *DataFrame) Join(other *DataFrame, leftCol, rightCol string) (*DataFrame, error) {
	li := d.colIndex(leftCol)
	ri := other.colIndex(rightCol)
	if li < 0 {
		return nil, fmt.Errorf("sem: no left column %q", leftCol)
	}
	if ri < 0 {
		return nil, fmt.Errorf("sem: no right column %q", rightCol)
	}
	cols := append([]string(nil), d.cols...)
	taken := make(map[string]bool, len(cols))
	for _, c := range cols {
		taken[strings.ToLower(c)] = true
	}
	for _, c := range other.cols {
		name := c
		if taken[strings.ToLower(name)] {
			name = "right_" + name
		}
		taken[strings.ToLower(name)] = true
		cols = append(cols, name)
	}
	build := make(map[string][]sqldb.Row)
	for _, r := range other.rows {
		k := r[ri].Key()
		build[k] = append(build[k], r)
	}
	var rows []sqldb.Row
	for _, l := range d.rows {
		if l[li].IsNull() {
			continue
		}
		for _, r := range build[l[li].Key()] {
			nr := make(sqldb.Row, 0, len(cols))
			nr = append(nr, l...)
			nr = append(nr, r...)
			rows = append(rows, nr)
		}
	}
	return &DataFrame{cols: cols, rows: rows}, nil
}

// Distinct keeps the first row for each distinct value of the column.
func (d *DataFrame) Distinct(col string) (*DataFrame, error) {
	ci := d.colIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("sem: no column %q", col)
	}
	seen := make(map[string]bool)
	var rows []sqldb.Row
	for _, r := range d.rows {
		k := r[ci].Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		rows = append(rows, r)
	}
	return &DataFrame{cols: d.cols, rows: rows}, nil
}

// WithColumn appends a computed column.
func (d *DataFrame) WithColumn(name string, vals []sqldb.Value) (*DataFrame, error) {
	if len(vals) != len(d.rows) {
		return nil, fmt.Errorf("sem: column %q has %d values for %d rows", name, len(vals), len(d.rows))
	}
	cols := append(append([]string(nil), d.cols...), name)
	rows := make([]sqldb.Row, len(d.rows))
	for i, r := range d.rows {
		rows[i] = append(append(sqldb.Row(nil), r...), vals[i])
	}
	return &DataFrame{cols: cols, rows: rows}, nil
}

// RowString flattens one row as "col=val; col=val" (the serialisation the
// summariser consumes).
func (d *DataFrame) RowString(i int) string {
	if i < 0 || i >= len(d.rows) {
		return ""
	}
	var b strings.Builder
	for ci, c := range d.cols {
		if ci > 0 {
			b.WriteString("; ")
		}
		b.WriteString(c)
		b.WriteString("=")
		b.WriteString(d.rows[i][ci].AsText())
	}
	return b.String()
}

// substitute renders an instruction template for row i: each "{Col}" is
// replaced by the row's value of Col — exactly LOTUS's instruction
// placeholder convention.
func (d *DataFrame) substitute(tmpl string, i int) string {
	out := tmpl
	for ci, c := range d.cols {
		ph := "{" + c + "}"
		if strings.Contains(out, ph) {
			out = strings.ReplaceAll(out, ph, d.rows[i][ci].AsText())
		}
	}
	return out
}
