package sem

import (
	"fmt"
	"sort"

	"tag/internal/sqldb"
)

// AggFunc is a relational aggregation over a group's values.
type AggFunc func(vals []sqldb.Value) sqldb.Value

// Standard aggregation functions for GroupBy.
var (
	// CountAgg counts the rows of the group.
	CountAgg AggFunc = func(vals []sqldb.Value) sqldb.Value {
		return sqldb.Int(int64(len(vals)))
	}
	// SumAgg sums numeric values (NULLs skipped).
	SumAgg AggFunc = func(vals []sqldb.Value) sqldb.Value {
		var sum float64
		for _, v := range vals {
			if !v.IsNull() {
				sum += v.AsFloat()
			}
		}
		return sqldb.Float(sum)
	}
	// MeanAgg averages numeric values (NULL for empty groups).
	MeanAgg AggFunc = func(vals []sqldb.Value) sqldb.Value {
		var sum float64
		n := 0
		for _, v := range vals {
			if !v.IsNull() {
				sum += v.AsFloat()
				n++
			}
		}
		if n == 0 {
			return sqldb.Null
		}
		return sqldb.Float(sum / float64(n))
	}
	// MaxAgg takes the maximum under Value.Compare (NULLs skipped).
	MaxAgg AggFunc = func(vals []sqldb.Value) sqldb.Value {
		best := sqldb.Null
		for _, v := range vals {
			if v.IsNull() {
				continue
			}
			if best.IsNull() || v.Compare(best) > 0 {
				best = v
			}
		}
		return best
	}
	// MinAgg takes the minimum under Value.Compare (NULLs skipped).
	MinAgg AggFunc = func(vals []sqldb.Value) sqldb.Value {
		best := sqldb.Null
		for _, v := range vals {
			if v.IsNull() {
				continue
			}
			if best.IsNull() || v.Compare(best) < 0 {
				best = v
			}
		}
		return best
	}
)

// Aggregation names one aggregated output column: apply Fn to the values
// of Col within each group, emitting the result under As.
type Aggregation struct {
	Col string
	Fn  AggFunc
	As  string
}

// GroupBy partitions rows by the key column and computes aggregations per
// group. The output frame has the key column followed by one column per
// aggregation, with groups ordered by first appearance (deterministic).
func (d *DataFrame) GroupBy(key string, aggs ...Aggregation) (*DataFrame, error) {
	ki := d.colIndex(key)
	if ki < 0 {
		return nil, fmt.Errorf("sem: no column %q", key)
	}
	colIdx := make([]int, len(aggs))
	for i, a := range aggs {
		ci := d.colIndex(a.Col)
		if ci < 0 {
			return nil, fmt.Errorf("sem: no column %q", a.Col)
		}
		colIdx[i] = ci
	}
	type group struct {
		key  sqldb.Value
		vals [][]sqldb.Value // per aggregation
		seq  int
	}
	groups := make(map[string]*group)
	for _, r := range d.rows {
		k := r[ki].Key()
		g, ok := groups[k]
		if !ok {
			g = &group{key: r[ki], vals: make([][]sqldb.Value, len(aggs)), seq: len(groups)}
			groups[k] = g
		}
		for i, ci := range colIdx {
			g.vals[i] = append(g.vals[i], r[ci])
		}
	}
	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })

	cols := []string{key}
	for _, a := range aggs {
		name := a.As
		if name == "" {
			name = a.Col + "_agg"
		}
		cols = append(cols, name)
	}
	rows := make([]sqldb.Row, 0, len(ordered))
	for _, g := range ordered {
		row := sqldb.Row{g.key}
		for i, a := range aggs {
			row = append(row, a.Fn(g.vals[i]))
		}
		rows = append(rows, row)
	}
	return &DataFrame{cols: cols, rows: rows}, nil
}
