package sem

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"tag/internal/llm"
	"tag/internal/sqldb"
	"tag/internal/world"
)

// Property tests over the DataFrame's relational-algebra laws and the
// semantic operators' invariants.

func randomFrame(r *rand.Rand, n int) *DataFrame {
	rows := make([]sqldb.Row, n)
	for i := range rows {
		rows[i] = sqldb.Row{
			sqldb.Int(int64(r.Intn(20))),
			sqldb.Text(fmt.Sprintf("item-%d", r.Intn(8))),
			sqldb.Float(r.Float64() * 100),
		}
	}
	d, _ := New([]string{"k", "name", "score"}, rows)
	return d
}

func TestFilterConjunctionCommutes(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		d := randomFrame(r, 50)
		p1 := func(get func(string) sqldb.Value) bool { return get("k").AsInt() > 5 }
		p2 := func(get func(string) sqldb.Value) bool { return get("score").AsFloat() < 60 }
		a := d.Filter(p1).Filter(p2)
		b := d.Filter(p2).Filter(p1)
		if a.Len() != b.Len() {
			t.Fatalf("filter order changed cardinality: %d vs %d", a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			if a.Value(i, "name").AsText() != b.Value(i, "name").AsText() {
				t.Fatal("filter order changed row order")
			}
		}
	}
}

func TestHeadOfHead(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	d := randomFrame(r, 40)
	if got := d.Head(10).Head(5).Len(); got != 5 {
		t.Errorf("Head(10).Head(5) = %d rows", got)
	}
	if got := d.Head(5).Head(10).Len(); got != 5 {
		t.Errorf("Head(5).Head(10) = %d rows", got)
	}
}

func TestSortIsPermutation(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	d := randomFrame(r, 60)
	sorted, err := d.Sort("score", true)
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Len() != d.Len() {
		t.Fatal("sort changed cardinality")
	}
	// Multiset of names preserved.
	counts := map[string]int{}
	for i := 0; i < d.Len(); i++ {
		counts[d.Value(i, "name").AsText()]++
	}
	for i := 0; i < sorted.Len(); i++ {
		counts[sorted.Value(i, "name").AsText()]--
	}
	for k, v := range counts {
		if v != 0 {
			t.Fatalf("sort lost/duplicated rows for %q", k)
		}
	}
	// Non-increasing scores.
	for i := 1; i < sorted.Len(); i++ {
		if sorted.Value(i, "score").AsFloat() > sorted.Value(i-1, "score").AsFloat() {
			t.Fatal("descending sort violated")
		}
	}
}

func TestDistinctThenFilterVsFilterThenDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	for trial := 0; trial < 50; trial++ {
		d := randomFrame(r, 40)
		pred := func(get func(string) sqldb.Value) bool { return get("k").AsInt()%2 == 0 }
		a, _ := d.Filter(pred).Distinct("name")
		b, _ := d.Distinct("name")
		b = b.Filter(pred)
		// Filter-then-distinct can keep more names (a name whose first
		// occurrence fails the filter may still survive via another row),
		// so only the subset relation holds. Check it.
		namesB := map[string]bool{}
		for i := 0; i < b.Len(); i++ {
			namesB[b.Value(i, "name").AsText()] = true
		}
		for i := 0; i < a.Len(); i++ {
			_ = namesB // b ⊆ a as name sets
		}
		namesA := map[string]bool{}
		for i := 0; i < a.Len(); i++ {
			namesA[a.Value(i, "name").AsText()] = true
		}
		for n := range namesB {
			if !namesA[n] {
				t.Fatalf("distinct-then-filter produced name %q missing from filter-then-distinct", n)
			}
		}
	}
}

func TestJoinWithSelfOnKey(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	d := randomFrame(r, 30)
	j, err := d.Join(d, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	// Self equi-join row count equals sum over keys of count^2.
	counts := map[int64]int{}
	for i := 0; i < d.Len(); i++ {
		counts[d.Value(i, "k").AsInt()]++
	}
	want := 0
	for _, c := range counts {
		want += c * c
	}
	if j.Len() != want {
		t.Fatalf("self join rows = %d, want %d", j.Len(), want)
	}
}

func TestSemTopKOrderConsistentWithOracleScores(t *testing.T) {
	// With the oracle model, SemTopK's order must equal the exact latent
	// trait order for any k.
	var rows []sqldb.Row
	for _, p := range world.Phrases[:16] {
		rows = append(rows, sqldb.Row{sqldb.Text(p.Text)})
	}
	d, _ := New([]string{"t"}, rows)
	m := llm.NewSimLM(world.Default(), llm.OracleProfile(), llm.NewClock(), llm.DefaultCostModel())
	ctx := context.Background()
	for _, k := range []int{1, 3, 7, 16} {
		top, err := d.SemTopK(ctx, m, "more positive", "t", k)
		if err != nil {
			t.Fatal(err)
		}
		if top.Len() != k {
			t.Fatalf("k=%d returned %d rows", k, top.Len())
		}
		for i := 1; i < top.Len(); i++ {
			prev := world.TextTraits(top.Value(i-1, "t").AsText()).Sentiment
			cur := world.TextTraits(top.Value(i, "t").AsText()).Sentiment
			if cur > prev {
				t.Fatalf("k=%d: position %d (%.4f) outranks position %d (%.4f)", k, i, cur, i-1, prev)
			}
		}
	}
}

func TestSemTopKPrefixConsistency(t *testing.T) {
	// The top-3 must be a prefix of the top-8 (same criterion, same data).
	var rows []sqldb.Row
	for _, p := range world.Phrases[20:36] {
		rows = append(rows, sqldb.Row{sqldb.Text(p.Text)})
	}
	d, _ := New([]string{"t"}, rows)
	m := llm.NewSimLM(world.Default(), llm.OracleProfile(), llm.NewClock(), llm.DefaultCostModel())
	ctx := context.Background()
	top3, err := d.SemTopK(ctx, m, "more technical", "t", 3)
	if err != nil {
		t.Fatal(err)
	}
	top8, err := d.SemTopK(ctx, m, "more technical", "t", 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if top3.Value(i, "t").AsText() != top8.Value(i, "t").AsText() {
			t.Fatalf("top-3 not a prefix of top-8 at position %d", i)
		}
	}
}

func TestSemFilterSubsetAndOrderPreserving(t *testing.T) {
	var rows []sqldb.Row
	for _, c := range world.CACities {
		rows = append(rows, sqldb.Row{sqldb.Text(c)})
	}
	d, _ := New([]string{"City"}, rows)
	m := llm.NewSimLM(world.Default(), llm.OracleProfile(), llm.NewClock(), llm.DefaultCostModel())
	got, err := d.SemFilter(context.Background(), m, "{City} is a city in the Bay Area region")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 || got.Len() >= d.Len() {
		t.Fatalf("filter kept %d of %d", got.Len(), d.Len())
	}
	// Kept rows appear in original relative order.
	pos := map[string]int{}
	for i, c := range world.CACities {
		pos[c] = i
	}
	last := -1
	for i := 0; i < got.Len(); i++ {
		p := pos[got.Value(i, "City").AsText()]
		if p < last {
			t.Fatal("SemFilter reordered rows")
		}
		last = p
	}
}

// failingModel errors on every call, for error-propagation tests.
type failingModel struct{}

func (failingModel) Name() string       { return "failing" }
func (failingModel) ContextWindow() int { return 1 << 20 }
func (failingModel) Complete(context.Context, string) (string, error) {
	return "", fmt.Errorf("model down")
}
func (failingModel) CompleteBatch(_ context.Context, prompts []string) ([]string, []error) {
	outs := make([]string, len(prompts))
	errs := make([]error, len(prompts))
	for i := range errs {
		errs[i] = fmt.Errorf("model down")
	}
	return outs, errs
}

func TestSemOpsPropagateModelErrors(t *testing.T) {
	d, _ := New([]string{"t"}, []sqldb.Row{{sqldb.Text("a")}, {sqldb.Text("b")}})
	ctx := context.Background()
	m := failingModel{}
	if _, err := d.SemFilter(ctx, m, "{t} is fine"); err == nil {
		t.Error("SemFilter should propagate model errors")
	}
	if _, err := d.SemTopK(ctx, m, "more positive", "t", 2); err == nil {
		t.Error("SemTopK should propagate model errors")
	}
	if _, err := d.SemAgg(ctx, m, "Summarize", "t"); err == nil {
		t.Error("SemAgg should propagate model errors")
	}
	if _, err := d.SemMap(ctx, m, "label the sentiment", "t"); err == nil {
		t.Error("SemMap should propagate model errors")
	}
	if _, err := d.SemJoin(ctx, m, d, "{t} matches {right:t}"); err == nil {
		t.Error("SemJoin should propagate model errors")
	}
}

func TestChunkByTokensCoversAllItems(t *testing.T) {
	items := make([]string, 100)
	for i := range items {
		items[i] = fmt.Sprintf("item number %d with some words attached", i)
	}
	chunks := chunkByTokens("Summarize", items, 120)
	total := 0
	for _, ch := range chunks {
		if len(ch) == 0 {
			t.Fatal("empty chunk")
		}
		total += len(ch)
	}
	if total != len(items) {
		t.Fatalf("chunks cover %d of %d items", total, len(items))
	}
	if len(chunks) < 2 {
		t.Fatal("small budget should force multiple chunks")
	}
}
