package sem

import (
	"context"
	"strings"
	"testing"

	"tag/internal/llm"
	"tag/internal/sqldb"
	"tag/internal/world"
)

func oracle() *llm.SimLM {
	return llm.NewSimLM(world.Default(), llm.OracleProfile(), llm.NewClock(), llm.DefaultCostModel())
}

func schoolsFrame(t *testing.T) *DataFrame {
	t.Helper()
	d, err := New(
		[]string{"School", "City", "Longitude", "GSoffered"},
		[]sqldb.Row{
			{sqldb.Text("Gunn High"), sqldb.Text("Palo Alto"), sqldb.Float(-122.1), sqldb.Text("9-12")},
			{sqldb.Text("Fresno High"), sqldb.Text("Fresno"), sqldb.Float(-119.8), sqldb.Text("9-12")},
			{sqldb.Text("Homestead High"), sqldb.Text("Cupertino"), sqldb.Float(-122.0), sqldb.Text("K-12")},
			{sqldb.Text("Oakland Tech"), sqldb.Text("Oakland"), sqldb.Float(-122.2), sqldb.Text("9-12")},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDataFrameBasics(t *testing.T) {
	d := schoolsFrame(t)
	if d.Len() != 4 || len(d.Columns()) != 4 {
		t.Fatalf("shape = %d x %d", d.Len(), len(d.Columns()))
	}
	if d.Value(0, "city").AsText() != "Palo Alto" {
		t.Error("case-insensitive column access failed")
	}
	if !d.Value(99, "City").IsNull() {
		t.Error("out-of-range must be NULL")
	}
	sorted, err := d.Sort("Longitude", false)
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Value(0, "School").AsText() != "Oakland Tech" {
		t.Errorf("sort asc first = %s", sorted.Value(0, "School").AsText())
	}
	// The receiver is unchanged.
	if d.Value(0, "School").AsText() != "Gunn High" {
		t.Error("Sort mutated the receiver")
	}
	head := sorted.Head(2)
	if head.Len() != 2 {
		t.Error("Head")
	}
	if d.Head(-1).Len() != 0 || d.Head(100).Len() != 4 {
		t.Error("Head bounds")
	}
}

func TestDataFrameFilterSelectDistinct(t *testing.T) {
	d := schoolsFrame(t)
	nine12 := d.FilterEq("GSoffered", sqldb.Text("9-12"))
	if nine12.Len() != 3 {
		t.Errorf("FilterEq = %d rows", nine12.Len())
	}
	proj, err := d.Select("School", "City")
	if err != nil || len(proj.Columns()) != 2 {
		t.Fatalf("Select: %v", err)
	}
	if _, err := d.Select("nosuch"); err == nil {
		t.Error("Select unknown column should fail")
	}
	dist, err := d.Distinct("GSoffered")
	if err != nil || dist.Len() != 2 {
		t.Fatalf("Distinct = %d rows, err %v", dist.Len(), err)
	}
}

func TestDataFrameJoin(t *testing.T) {
	left := schoolsFrame(t)
	right, err := New(
		[]string{"City", "County"},
		[]sqldb.Row{
			{sqldb.Text("Palo Alto"), sqldb.Text("Santa Clara")},
			{sqldb.Text("Oakland"), sqldb.Text("Alameda")},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	j, err := left.Join(right, "City", "City")
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Fatalf("join rows = %d", j.Len())
	}
	// Collided column gets prefixed.
	if j.colIndex("right_City") < 0 {
		t.Errorf("columns = %v", j.Columns())
	}
	if j.Value(0, "County").AsText() != "Santa Clara" {
		t.Errorf("joined county = %s", j.Value(0, "County").AsText())
	}
}

func TestDataFrameFromTable(t *testing.T) {
	db := sqldb.NewDatabase()
	db.MustExec("CREATE TABLE t (a INTEGER, b TEXT)")
	db.MustExec("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
	d, err := FromTable(db, "t")
	if err != nil || d.Len() != 2 {
		t.Fatalf("FromTable: %v", err)
	}
	if _, err := FromTable(db, "missing"); err == nil {
		t.Error("missing table should error")
	}
}

func TestSemFilterRegion(t *testing.T) {
	d := schoolsFrame(t)
	m := oracle()
	got, err := d.SemFilter(context.Background(), m, "{City} is a city in the Silicon Valley region")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("SemFilter kept %d rows, want 2 (Palo Alto, Cupertino)", got.Len())
	}
	cities, _ := got.Strings("City")
	if cities[0] != "Palo Alto" || cities[1] != "Cupertino" {
		t.Errorf("cities = %v", cities)
	}
	// Operator batched: one batch call, not N singles.
	if m.Stats().BatchCalls != 1 || m.Stats().Calls != 0 {
		t.Errorf("stats = %+v", m.Stats())
	}
}

func TestSemTopKTechnical(t *testing.T) {
	rows := []sqldb.Row{
		{sqldb.Text("which laptop should I buy for studying")},
		{sqldb.Text("the gradient boosting residuals are reweighted per iteration")},
		{sqldb.Text("what music do you listen to while working")},
		{sqldb.Text("eigenvalue decomposition of the covariance matrix")},
		{sqldb.Text("favorite statistics jokes to share with students")},
	}
	d, _ := New([]string{"Title"}, rows)
	m := oracle()
	top, err := d.SemTopK(context.Background(), m, "more technical", "Title", 2)
	if err != nil {
		t.Fatal(err)
	}
	titles, _ := top.Strings("Title")
	if len(titles) != 2 {
		t.Fatalf("topk = %v", titles)
	}
	for _, ti := range titles {
		if !strings.Contains(ti, "gradient") && !strings.Contains(ti, "eigenvalue") {
			t.Errorf("non-technical title in top-2: %q", ti)
		}
	}
}

func TestSemTopKBounds(t *testing.T) {
	d, _ := New([]string{"T"}, []sqldb.Row{{sqldb.Text("a")}})
	m := oracle()
	if got, err := d.SemTopK(context.Background(), m, "more positive", "T", 0); err != nil || got.Len() != 0 {
		t.Errorf("k=0: %v %d", err, got.Len())
	}
	got, err := d.SemTopK(context.Background(), m, "more positive", "T", 5)
	if err != nil || got.Len() != 1 {
		t.Errorf("k>n: %v %d", err, got.Len())
	}
	if _, err := d.SemTopK(context.Background(), m, "x", "nosuch", 1); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestSemAggSummarises(t *testing.T) {
	rows := []sqldb.Row{
		{sqldb.Text("an absolute masterpiece from start to finish")},
		{sqldb.Text("still the best thing I have ever watched")},
		{sqldb.Text("flawless pacing and unforgettable characters")},
	}
	d, _ := New([]string{"body"}, rows)
	m := oracle()
	out, err := d.SemAgg(context.Background(), m, "Summarize the reviews", "body")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "largely positive") {
		t.Errorf("summary = %s", out)
	}
}

func TestSemAggHierarchicalFold(t *testing.T) {
	// Force multi-level folding with a small context window.
	p := llm.OracleProfile()
	p.ContextWindow = 300
	p.MaxOutputTokens = 200
	m := llm.NewSimLM(world.Default(), p, llm.NewClock(), llm.DefaultCostModel())
	var rows []sqldb.Row
	for i := 0; i < 60; i++ {
		rows = append(rows, sqldb.Row{sqldb.Text("solid and dependable, worth your time")})
	}
	d, _ := New([]string{"body"}, rows)
	out, err := d.SemAgg(context.Background(), m, "Summarize the reviews", "body")
	if err != nil {
		t.Fatal(err)
	}
	if out == "" || strings.Contains(out, "Nothing to summarize") {
		t.Errorf("fold output = %q", out)
	}
	if m.Stats().BatchCalls < 2 {
		t.Errorf("expected hierarchical fold (>=2 batch calls), got %+v", m.Stats())
	}
}

func TestSemAggEmpty(t *testing.T) {
	d, _ := New([]string{"body"}, nil)
	out, err := d.SemAgg(context.Background(), oracle(), "Summarize", "body")
	if err != nil || !strings.Contains(out, "Nothing") {
		t.Errorf("empty agg = %q err=%v", out, err)
	}
}

func TestSemMapSentiment(t *testing.T) {
	rows := []sqldb.Row{
		{sqldb.Text("an absolute masterpiece from start to finish")},
		{sqldb.Text("astonishingly bad on every level")},
	}
	d, _ := New([]string{"body"}, rows)
	vals, err := d.SemMap(context.Background(), oracle(), "label the sentiment", "body")
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].AsText() != "positive" || vals[1].AsText() != "negative" {
		t.Errorf("map = %v, %v", vals[0], vals[1])
	}
	d2, err := d.WithColumn("sentiment", vals)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Value(0, "sentiment").AsText() != "positive" {
		t.Error("WithColumn")
	}
}

func TestSemJoin(t *testing.T) {
	left, _ := New([]string{"City"}, []sqldb.Row{
		{sqldb.Text("Palo Alto")}, {sqldb.Text("Fresno")},
	})
	right, _ := New([]string{"Region"}, []sqldb.Row{
		{sqldb.Text("Silicon Valley")}, {sqldb.Text("Bay Area")},
	})
	got, err := left.SemJoin(context.Background(), oracle(), right,
		"{City} is a city in the {right:Region} region")
	if err != nil {
		t.Fatal(err)
	}
	// Palo Alto matches both regions; Fresno matches neither.
	if got.Len() != 2 {
		t.Fatalf("semjoin rows = %d, want 2", got.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.Value(i, "City").AsText() != "Palo Alto" {
			t.Errorf("unexpected joined city %s", got.Value(i, "City").AsText())
		}
	}
}

func TestRowStringAndSubstitute(t *testing.T) {
	d := schoolsFrame(t)
	rs := d.RowString(0)
	if !strings.Contains(rs, "School=Gunn High") || !strings.Contains(rs, "City=Palo Alto") {
		t.Errorf("RowString = %s", rs)
	}
	sub := d.substitute("{School} is in {City}", 0)
	if sub != "Gunn High is in Palo Alto" {
		t.Errorf("substitute = %s", sub)
	}
	if d.RowString(-1) != "" {
		t.Error("RowString out of range")
	}
}

func TestNewValidatesShape(t *testing.T) {
	_, err := New([]string{"a"}, []sqldb.Row{{sqldb.Int(1), sqldb.Int(2)}})
	if err == nil {
		t.Error("mismatched row width should fail")
	}
}
