package sem

import (
	"testing"

	"tag/internal/sqldb"
)

func salesFrame(t *testing.T) *DataFrame {
	t.Helper()
	d, err := New(
		[]string{"region", "amount"},
		[]sqldb.Row{
			{sqldb.Text("west"), sqldb.Int(10)},
			{sqldb.Text("east"), sqldb.Int(5)},
			{sqldb.Text("west"), sqldb.Int(30)},
			{sqldb.Text("east"), sqldb.Int(7)},
			{sqldb.Text("west"), sqldb.Int(20)},
			{sqldb.Text("north"), sqldb.Null},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGroupByAggregations(t *testing.T) {
	d := salesFrame(t)
	g, err := d.GroupBy("region",
		Aggregation{Col: "amount", Fn: CountAgg, As: "n"},
		Aggregation{Col: "amount", Fn: SumAgg, As: "total"},
		Aggregation{Col: "amount", Fn: MeanAgg, As: "avg"},
		Aggregation{Col: "amount", Fn: MinAgg, As: "lo"},
		Aggregation{Col: "amount", Fn: MaxAgg, As: "hi"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("groups = %d", g.Len())
	}
	// Insertion order: west, east, north.
	if g.Value(0, "region").AsText() != "west" || g.Value(1, "region").AsText() != "east" {
		t.Errorf("group order: %v, %v", g.Value(0, "region"), g.Value(1, "region"))
	}
	if g.Value(0, "n").AsInt() != 3 || g.Value(0, "total").AsFloat() != 60 ||
		g.Value(0, "avg").AsFloat() != 20 || g.Value(0, "lo").AsInt() != 10 || g.Value(0, "hi").AsInt() != 30 {
		t.Errorf("west aggregates wrong: n=%v total=%v avg=%v lo=%v hi=%v",
			g.Value(0, "n"), g.Value(0, "total"), g.Value(0, "avg"), g.Value(0, "lo"), g.Value(0, "hi"))
	}
	// All-NULL group: count counts rows; min/max/mean are NULL.
	if g.Value(2, "n").AsInt() != 1 || !g.Value(2, "avg").IsNull() || !g.Value(2, "hi").IsNull() {
		t.Errorf("north aggregates: n=%v avg=%v hi=%v", g.Value(2, "n"), g.Value(2, "avg"), g.Value(2, "hi"))
	}
}

func TestGroupByMatchesSQLEngine(t *testing.T) {
	// GroupBy must agree with the SQL engine's GROUP BY on the same data.
	db := sqldb.NewDatabase()
	db.MustExec("CREATE TABLE s (region TEXT, amount INTEGER)")
	db.MustExec(`INSERT INTO s VALUES ('west', 10), ('east', 5), ('west', 30), ('east', 7), ('west', 20)`)
	res, err := db.Query("SELECT region, COUNT(*), SUM(amount) FROM s GROUP BY region ORDER BY region")
	if err != nil {
		t.Fatal(err)
	}
	df, _ := FromTable(db, "s")
	g, err := df.GroupBy("region",
		Aggregation{Col: "amount", Fn: CountAgg, As: "n"},
		Aggregation{Col: "amount", Fn: SumAgg, As: "total"},
	)
	if err != nil {
		t.Fatal(err)
	}
	g, err = g.Sort("region", false)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != len(res.Rows) {
		t.Fatalf("group counts differ: %d vs %d", g.Len(), len(res.Rows))
	}
	for i, row := range res.Rows {
		if g.Value(i, "region").AsText() != row[0].AsText() ||
			g.Value(i, "n").AsInt() != row[1].AsInt() ||
			g.Value(i, "total").AsFloat() != row[2].AsFloat() {
			t.Errorf("group %d differs from SQL: %v vs %v", i, g.Value(i, "total"), row[2])
		}
	}
}

func TestGroupByErrors(t *testing.T) {
	d := salesFrame(t)
	if _, err := d.GroupBy("nope"); err == nil {
		t.Error("unknown key column must fail")
	}
	if _, err := d.GroupBy("region", Aggregation{Col: "nope", Fn: CountAgg}); err == nil {
		t.Error("unknown aggregation column must fail")
	}
}

func TestGroupByDefaultName(t *testing.T) {
	d := salesFrame(t)
	g, err := d.GroupBy("region", Aggregation{Col: "amount", Fn: CountAgg})
	if err != nil {
		t.Fatal(err)
	}
	if g.colIndex("amount_agg") < 0 {
		t.Errorf("default aggregation name missing: %v", g.Columns())
	}
}
