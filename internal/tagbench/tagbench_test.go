package tagbench

import (
	"strconv"
	"strings"
	"testing"

	"tag/internal/nlq"
	"tag/internal/sqldb"
	"tag/internal/tagbench/domains"
	"tag/internal/world"
)

func TestBenchmarkComposition(t *testing.T) {
	qs := Queries()
	if len(qs) != 80 {
		t.Fatalf("benchmark has %d queries, want 80", len(qs))
	}
	typeCount := make(map[nlq.QueryType]int)
	catCount := make(map[nlq.Category]int)
	cell := make(map[string]int)
	ids := make(map[string]bool)
	for _, q := range qs {
		if ids[q.ID] {
			t.Errorf("duplicate id %s", q.ID)
		}
		ids[q.ID] = true
		typeCount[q.Spec.Type]++
		catCount[q.Spec.Category]++
		cell[q.Spec.Type.String()+"/"+q.Spec.Category.String()]++
		if q.NL == "" {
			t.Errorf("%s: empty NL", q.ID)
		}
		if q.Spec.Aug == nil {
			t.Errorf("%s: benchmark queries must carry an augment", q.ID)
		}
	}
	// Paper §4.1: 20 of each type; 40 knowledge + 40 reasoning; 10 per cell.
	for _, ty := range []nlq.QueryType{nlq.Match, nlq.Comparison, nlq.Ranking, nlq.Aggregation} {
		if typeCount[ty] != 20 {
			t.Errorf("type %v has %d queries, want 20", ty, typeCount[ty])
		}
	}
	if catCount[nlq.Knowledge] != 40 || catCount[nlq.Reasoning] != 40 {
		t.Errorf("category split = %v", catCount)
	}
	for k, n := range cell {
		if n != 10 {
			t.Errorf("cell %s has %d queries, want 10", k, n)
		}
	}
}

// TestNLRoundTripsAll80 pins the central contract: the simulated LM can
// recover every benchmark query's formal meaning from its English text.
func TestNLRoundTripsAll80(t *testing.T) {
	for _, q := range Queries() {
		got, err := nlq.Parse(q.NL)
		if err != nil {
			t.Errorf("%s: Parse(%q): %v", q.ID, q.NL, err)
			continue
		}
		if !got.Equal(q.Spec) {
			t.Errorf("%s: round-trip mismatch\n  NL: %s\n got: %+v (aug %+v)\nwant: %+v (aug %+v)",
				q.ID, q.NL, got, got.Aug, q.Spec, q.Spec.Aug)
		}
	}
}

func buildAll(t *testing.T) map[string]*sqldb.Database {
	t.Helper()
	dbs := make(map[string]*sqldb.Database)
	for _, name := range domains.Names() {
		db, err := domains.Build(name)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		dbs[name] = db
	}
	return dbs
}

func TestDomainsPopulated(t *testing.T) {
	dbs := buildAll(t)
	counts := map[string]map[string]int{
		"california_schools":      {"schools": 360, "frpm": 360},
		"debit_card_specializing": {"transactions_1k": 1000, "customers": 60},
		"formula_1":               {"circuits": 15},
		"codebase_community":      {"users": 60},
		"european_football_2":     {"Player": 420},
	}
	for dom, tables := range counts {
		for table, want := range tables {
			res, err := dbs[dom].Query("SELECT COUNT(*) FROM " + table)
			if err != nil {
				t.Fatalf("%s.%s: %v", dom, table, err)
			}
			if got := int(res.Rows[0][0].AsInt()); got != want {
				t.Errorf("%s.%s rows = %d, want %d", dom, table, got, want)
			}
		}
	}
}

func TestDomainsDeterministic(t *testing.T) {
	a, err := domains.Build("codebase_community")
	if err != nil {
		t.Fatal(err)
	}
	b, err := domains.Build("codebase_community")
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := a.Query("SELECT Id, Title, ViewCount FROM posts ORDER BY Id")
	rb, _ := b.Query("SELECT Id, Title, ViewCount FROM posts ORDER BY Id")
	if len(ra.Rows) != len(rb.Rows) {
		t.Fatal("row counts differ between builds")
	}
	for i := range ra.Rows {
		for j := range ra.Rows[i] {
			if !ra.Rows[i][j].Equal(rb.Rows[i][j]) {
				t.Fatalf("row %d differs between builds", i)
			}
		}
	}
}

func TestAnchorPostsOwnTopViewCounts(t *testing.T) {
	db, err := domains.Build("codebase_community")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT Title FROM posts ORDER BY ViewCount DESC LIMIT ?", len(domains.AnchorPosts))
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, r := range res.Rows {
		got[r[0].AsText()] = true
	}
	for _, a := range domains.AnchorPosts {
		if !got[a] {
			t.Errorf("anchor post %q not among top view counts", a)
		}
	}
}

func TestAnchorCommentMixes(t *testing.T) {
	db, err := domains.Build("codebase_community")
	if err != nil {
		t.Fatal(err)
	}
	// T1 plan: 3 sarcastic, 4 positive-sincere, 2 negative = 9 comments.
	res, err := db.Query(`SELECT c.Text FROM comments c JOIN posts p ON c.PostId = p.Id WHERE p.Title = ?`,
		domains.AnchorPosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("T1 has %d comments, want 9", len(res.Rows))
	}
	sarcastic := 0
	for _, r := range res.Rows {
		if world.TextTraits(r[0].AsText()).Sarcasm > 0.5 {
			sarcastic++
		}
	}
	if sarcastic != 3 {
		t.Errorf("T1 sarcastic comments = %d, want 3", sarcastic)
	}
}

func TestComputeTruthAllQueriesNonDegenerate(t *testing.T) {
	dbs := buildAll(t)
	w := world.Default()
	for _, q := range Queries() {
		truth, err := ComputeTruth(dbs[q.Spec.Domain], w, q.Spec)
		if err != nil {
			t.Errorf("%s: truth: %v", q.ID, err)
			continue
		}
		switch q.Spec.Type {
		case nlq.Aggregation:
			if len(truth.Facts) == 0 {
				t.Errorf("%s: aggregation query with no facts", q.ID)
			}
		case nlq.Comparison:
			if len(truth.Values) != 1 {
				t.Errorf("%s: comparison truth = %v", q.ID, truth.Values)
			}
			if n, err := strconv.Atoi(truth.Values[0]); err != nil || n == 0 {
				t.Errorf("%s: comparison count %v should be a positive number (degenerate benchmark otherwise)", q.ID, truth.Values)
			}
		default:
			if len(truth.Values) == 0 {
				t.Errorf("%s: empty truth values", q.ID)
			}
			for _, v := range truth.Values {
				if strings.TrimSpace(v) == "" {
					t.Errorf("%s: blank truth value in %v", q.ID, truth.Values)
				}
			}
		}
	}
}

func TestComputeTruthRankingSizes(t *testing.T) {
	dbs := buildAll(t)
	w := world.Default()
	for _, q := range QueriesByType(nlq.Ranking) {
		truth, err := ComputeTruth(dbs[q.Spec.Domain], w, q.Spec)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		wantK := q.Spec.Limit
		if q.Spec.Aug.K > 0 && q.Spec.Aug.K < wantK {
			wantK = q.Spec.Aug.K
		}
		if len(truth.Values) != wantK {
			t.Errorf("%s: ranking truth has %d values, want %d (%v)", q.ID, len(truth.Values), wantK, truth.Values)
		}
	}
}

func TestComputeTruthKnownCases(t *testing.T) {
	dbs := buildAll(t)
	w := world.Default()

	// Figure 2: Sepang raced 1999..2017 → 19 facts.
	var sepang *Query
	for _, q := range Queries() {
		if q.ID == "AK-01" {
			sepang = q
		}
	}
	truth, err := ComputeTruth(dbs["formula_1"], w, sepang.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Facts) != 19 {
		t.Errorf("Sepang facts = %d, want 19 (1999-2017)", len(truth.Facts))
	}
	for _, f := range truth.Facts {
		if !strings.Contains(f, "Malaysian Grand Prix") {
			t.Errorf("Sepang fact without race name: %s", f)
		}
	}

	// CR-01: sarcastic comments on T1 — generator plan says exactly 3.
	var cr1 *Query
	for _, q := range Queries() {
		if q.ID == "CR-01" {
			cr1 = q
		}
	}
	truth, err = ComputeTruth(dbs["codebase_community"], w, cr1.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.Values) != 1 || truth.Values[0] != "3" {
		t.Errorf("CR-01 truth = %v, want [3]", truth.Values)
	}
}

func TestExactMatch(t *testing.T) {
	cases := []struct {
		got, want []string
		ok        bool
	}{
		{[]string{"3"}, []string{"3"}, true},
		{[]string{"3.0"}, []string{"3"}, true},
		{[]string{"K-12"}, []string{"k-12"}, true},
		{[]string{"a", "b"}, []string{"a", "b"}, true},
		{[]string{"b", "a"}, []string{"a", "b"}, false}, // order matters
		{[]string{"a"}, []string{"a", "b"}, false},
		{nil, nil, true},
	}
	for _, c := range cases {
		if ExactMatch(c.got, c.want) != c.ok {
			t.Errorf("ExactMatch(%v, %v) != %v", c.got, c.want, c.ok)
		}
	}
}

func TestCoverage(t *testing.T) {
	facts := []string{"year=1999; date=1999-10-17", "year=2000; date=2000-10-22"}
	full := Coverage("races on 1999-10-17 and 2000-10-22", facts)
	if full != 1 {
		t.Errorf("full coverage = %v", full)
	}
	half := Coverage("there was a race on 1999-10-17", facts)
	if half != 0.5 {
		t.Errorf("half coverage = %v", half)
	}
	if Coverage("anything", nil) != 1 {
		t.Error("no facts = full coverage")
	}
}

func TestRelationalSQLExecutes(t *testing.T) {
	dbs := buildAll(t)
	for _, q := range Queries() {
		sql := RelationalSQL(q.Spec, false)
		if _, err := dbs[q.Spec.Domain].Query(sql); err != nil {
			t.Errorf("%s: relational SQL fails: %v\n%s", q.ID, err, sql)
		}
	}
}
