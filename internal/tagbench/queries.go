// Package tagbench defines TAG-Bench: the 80 modified-BIRD benchmark
// queries of the TAG paper (§4.1), their formal specs, ground-truth
// computation and exact-match scoring.
//
// The taxonomy matches the paper exactly: 20 queries of each BIRD type
// (match-based, comparison, ranking, aggregation), split 10/10 between
// Knowledge and Reasoning within each type — 40 knowledge and 40 reasoning
// queries overall.
package tagbench

import (
	"fmt"

	"tag/internal/nlq"
	"tag/internal/tagbench/domains"
)

// Query is one benchmark query: its id (e.g. "MK-03"), formal spec and the
// rendered natural-language question.
type Query struct {
	ID   string
	Spec *nlq.Spec
	NL   string
}

// Queries returns the 80 TAG-Bench queries in a stable order. The NL field
// is rendered from the spec; Parse(NL) round-trips back to the spec
// (asserted by tests), so the simulated LM's language understanding is
// held constant across methods.
func Queries() []*Query {
	var out []*Query
	add := func(prefix string, specs []*nlq.Spec) {
		for i, s := range specs {
			out = append(out, &Query{
				ID:   fmt.Sprintf("%s-%02d", prefix, i+1),
				Spec: s,
				NL:   nlq.Render(s),
			})
		}
	}
	add("MK", matchKnowledge())
	add("MR", matchReasoning())
	add("CK", comparisonKnowledge())
	add("CR", comparisonReasoning())
	add("RK", rankingKnowledge())
	add("RR", rankingReasoning())
	add("AK", aggregationKnowledge())
	add("AR", aggregationReasoning())
	return out
}

// QueriesByType groups the benchmark by query type.
func QueriesByType(t nlq.QueryType) []*Query {
	var out []*Query
	for _, q := range Queries() {
		if q.Spec.Type == t {
			out = append(out, q)
		}
	}
	return out
}

// --- spec constructors ------------------------------------------------------

func numFilter(col, op, val string) nlq.Filter {
	return nlq.Filter{Column: col, Op: op, Value: val, Num: true}
}

func textFilter(col, op, val string) nlq.Filter {
	return nlq.Filter{Column: col, Op: op, Value: val}
}

// finish resolves joins and category exactly the way nlq.Parse would, so
// hand-built specs compare equal to parsed ones.
func finish(s *nlq.Spec) *nlq.Spec {
	if s.Aug != nil {
		if s.Aug.Kind.IsKnowledge() {
			s.Category = nlq.Knowledge
		} else {
			s.Category = nlq.Reasoning
		}
	}
	check := func(qcol string) {
		if qcol == "" {
			return
		}
		if j, ok := nlq.JoinFor(s.Domain, s.Table, qcol); ok && j != nil && s.Join == nil {
			s.Join = j
		}
	}
	check(s.Target)
	check(s.OrderBy)
	for _, f := range s.Filters {
		check(f.Column)
	}
	if s.Aug != nil {
		check(s.Aug.Column)
	}
	return s
}

func schoolsMatch(target, orderBy string, desc bool, aug *nlq.Augment, filters ...nlq.Filter) *nlq.Spec {
	return finish(&nlq.Spec{
		Domain: "california_schools", Type: nlq.Match, Table: "schools",
		Target: target, OrderBy: orderBy, OrderDesc: desc, Limit: 1,
		Filters: filters, Aug: aug,
	})
}

func regionAug(kind nlq.AugKind, region string) *nlq.Augment {
	col := "schools.City"
	if kind == nlq.AugCountyRegion {
		col = "schools.County"
	}
	return &nlq.Augment{Kind: kind, Column: col, Arg: region}
}

func tallerAug(person string) *nlq.Augment {
	return &nlq.Augment{Kind: nlq.AugTallerThan, Column: "Player.height", Arg: person}
}

// --- the 8 cells ------------------------------------------------------------

func matchKnowledge() []*nlq.Spec {
	playerMatch := func(target, orderBy string, person string) *nlq.Spec {
		return finish(&nlq.Spec{
			Domain: "european_football_2", Type: nlq.Match, Table: "Player",
			Target: target, OrderBy: orderBy, OrderDesc: true, Limit: 1,
			Aug: tallerAug(person),
		})
	}
	return []*nlq.Spec{
		// The paper's Appendix A example.
		schoolsMatch("schools.GSoffered", "schools.Longitude", true,
			regionAug(nlq.AugCityRegion, "Silicon Valley")),
		schoolsMatch("schools.School", "satscores.AvgScrMath", true,
			regionAug(nlq.AugCountyRegion, "Bay Area")),
		schoolsMatch("schools.School", "schools.Latitude", true,
			regionAug(nlq.AugCityRegion, "Bay Area")),
		schoolsMatch("schools.District", "frpm.Enrollment", true,
			regionAug(nlq.AugCityRegion, "Silicon Valley")),
		playerMatch("Player.player_name", "Player.volleys", "Stephen Curry"),
		playerMatch("Player.player_name", "Player.dribbling", "Cristiano Ronaldo"),
		finish(&nlq.Spec{
			Domain: "debit_card_specializing", Type: nlq.Match, Table: "gasstations",
			Target: "gasstations.Segment", OrderBy: "gasstations.ChainID", OrderDesc: true, Limit: 1,
			Aug: &nlq.Augment{Kind: nlq.AugEUCountry, Column: "gasstations.Country"},
		}),
		finish(&nlq.Spec{
			Domain: "formula_1", Type: nlq.Match, Table: "races",
			Target: "races.name", OrderBy: "races.year", OrderDesc: true, Limit: 1,
			Aug: &nlq.Augment{Kind: nlq.AugEUCountry, Column: "circuits.country"},
		}),
		playerMatch("Player.player_name", "Player.overall_rating", "Zlatan Ibrahimovic"),
		schoolsMatch("schools.GSoffered", "satscores.AvgScrRead", true,
			regionAug(nlq.AugCityRegion, "Silicon Valley")),
	}
}

func matchReasoning() []*nlq.Spec {
	commentMatch := func(title string, desc bool, kind nlq.AugKind) *nlq.Spec {
		return finish(&nlq.Spec{
			Domain: "codebase_community", Type: nlq.Match, Table: "comments",
			Target: "comments.Text", OrderBy: "comments.Score", OrderDesc: desc, Limit: 1,
			Filters: []nlq.Filter{textFilter("posts.Title", "=", title)},
			Aug:     &nlq.Augment{Kind: kind, Column: "comments.Text"},
		})
	}
	return []*nlq.Spec{
		commentMatch(domains.AnchorPosts[0], true, nlq.AugPositive),
		finish(&nlq.Spec{
			Domain: "codebase_community", Type: nlq.Match, Table: "posts",
			Target: "posts.Title", OrderBy: "posts.ViewCount", OrderDesc: true, Limit: 1,
			Aug: &nlq.Augment{Kind: nlq.AugTechnical, Column: "posts.Title"},
		}),
		finish(&nlq.Spec{
			Domain: "codebase_community", Type: nlq.Match, Table: "posts",
			Target: "posts.Title", OrderBy: "posts.Score", OrderDesc: true, Limit: 1,
			Aug: &nlq.Augment{Kind: nlq.AugTechnical, Column: "posts.Title"},
		}),
		finish(&nlq.Spec{
			Domain: "debit_card_specializing", Type: nlq.Match, Table: "products",
			Target: "products.Description", OrderBy: "products.ProductID", OrderDesc: true, Limit: 1,
			Aug: &nlq.Augment{Kind: nlq.AugPremium, Column: "products.Description"},
		}),
		finish(&nlq.Spec{
			Domain: "debit_card_specializing", Type: nlq.Match, Table: "products",
			Target: "products.Description", OrderBy: "products.ProductID", OrderDesc: false, Limit: 1,
			Aug: &nlq.Augment{Kind: nlq.AugPremium, Column: "products.Description"},
		}),
		schoolsMatch("schools.School", "frpm.Enrollment", true,
			&nlq.Augment{Kind: nlq.AugNamedAfterPerson, Column: "schools.School"}),
		schoolsMatch("schools.School", "schools.Longitude", false,
			&nlq.Augment{Kind: nlq.AugNamedAfterPerson, Column: "schools.School"}),
		commentMatch(domains.AnchorPosts[1], true, nlq.AugNegative),
		commentMatch(domains.AnchorPosts[2], false, nlq.AugSarcastic),
		schoolsMatch("schools.GSoffered", "schools.Latitude", true,
			&nlq.Augment{Kind: nlq.AugNamedAfterPerson, Column: "schools.School"}),
	}
}

func comparisonKnowledge() []*nlq.Spec {
	playerCount := func(person string, filters ...nlq.Filter) *nlq.Spec {
		return finish(&nlq.Spec{
			Domain: "european_football_2", Type: nlq.Comparison, Table: "Player",
			Filters: filters, Aug: tallerAug(person),
		})
	}
	schoolsCount := func(aug *nlq.Augment, filters ...nlq.Filter) *nlq.Spec {
		return finish(&nlq.Spec{
			Domain: "california_schools", Type: nlq.Comparison, Table: "schools",
			Filters: filters, Aug: aug,
		})
	}
	return []*nlq.Spec{
		// The paper's Appendix A example.
		playerCount("Stephen Curry",
			numFilter("Player.height", ">", "180"), numFilter("Player.volleys", ">", "70")),
		playerCount("Kylian Mbappe", numFilter("Player.height", ">", "175")),
		playerCount("Lionel Messi", numFilter("Player.overall_rating", ">", "85")),
		schoolsCount(regionAug(nlq.AugCityRegion, "Bay Area"),
			numFilter("satscores.AvgScrMath", ">", "560")),
		schoolsCount(regionAug(nlq.AugCityRegion, "Silicon Valley")),
		schoolsCount(regionAug(nlq.AugCountyRegion, "Bay Area"),
			numFilter("frpm.Enrollment", ">", "2000")),
		finish(&nlq.Spec{
			Domain: "debit_card_specializing", Type: nlq.Comparison, Table: "gasstations",
			Aug: &nlq.Augment{Kind: nlq.AugEUCountry, Column: "gasstations.Country"},
		}),
		finish(&nlq.Spec{
			Domain: "debit_card_specializing", Type: nlq.Comparison, Table: "gasstations",
			Filters: []nlq.Filter{numFilter("gasstations.ChainID", ">", "10")},
			Aug:     &nlq.Augment{Kind: nlq.AugEUCountry, Column: "gasstations.Country"},
		}),
		finish(&nlq.Spec{
			Domain: "formula_1", Type: nlq.Comparison, Table: "races",
			Filters: []nlq.Filter{numFilter("races.year", ">", "2010")},
			Aug:     &nlq.Augment{Kind: nlq.AugEUCountry, Column: "circuits.country"},
		}),
		playerCount("Cristiano Ronaldo",
			numFilter("Player.height", ">", "185"), numFilter("Player.finishing", ">", "60")),
	}
}

func comparisonReasoning() []*nlq.Spec {
	commentCount := func(kind nlq.AugKind, filters ...nlq.Filter) *nlq.Spec {
		return finish(&nlq.Spec{
			Domain: "codebase_community", Type: nlq.Comparison, Table: "comments",
			Filters: filters, Aug: &nlq.Augment{Kind: kind, Column: "comments.Text"},
		})
	}
	onPost := func(i int) nlq.Filter { return textFilter("posts.Title", "=", domains.AnchorPosts[i]) }
	return []*nlq.Spec{
		commentCount(nlq.AugSarcastic, onPost(0)),
		commentCount(nlq.AugPositive, onPost(0)),
		commentCount(nlq.AugNegative, onPost(1)),
		finish(&nlq.Spec{
			Domain: "codebase_community", Type: nlq.Comparison, Table: "posts",
			Filters: []nlq.Filter{numFilter("posts.ViewCount", ">", "4000")},
			Aug:     &nlq.Augment{Kind: nlq.AugTechnical, Column: "posts.Title"},
		}),
		finish(&nlq.Spec{
			Domain: "debit_card_specializing", Type: nlq.Comparison, Table: "products",
			Aug: &nlq.Augment{Kind: nlq.AugPremium, Column: "products.Description"},
		}),
		finish(&nlq.Spec{
			Domain: "california_schools", Type: nlq.Comparison, Table: "schools",
			Aug: &nlq.Augment{Kind: nlq.AugNamedAfterPerson, Column: "schools.School"},
		}),
		finish(&nlq.Spec{
			Domain: "california_schools", Type: nlq.Comparison, Table: "schools",
			Filters: []nlq.Filter{numFilter("schools.Charter", "=", "1")},
			Aug:     &nlq.Augment{Kind: nlq.AugNamedAfterPerson, Column: "schools.School"},
		}),
		commentCount(nlq.AugSarcastic, onPost(3)),
		commentCount(nlq.AugPositive, numFilter("comments.Score", ">", "1800")),
		finish(&nlq.Spec{
			Domain: "debit_card_specializing", Type: nlq.Comparison, Table: "products",
			Filters: []nlq.Filter{numFilter("products.ProductID", ">", "20")},
			Aug:     &nlq.Augment{Kind: nlq.AugPremium, Column: "products.Description"},
		}),
	}
}

func rankingKnowledge() []*nlq.Spec {
	schoolsRank := func(target, orderBy string, k int, aug *nlq.Augment) *nlq.Spec {
		return finish(&nlq.Spec{
			Domain: "california_schools", Type: nlq.Ranking, Table: "schools",
			Target: target, OrderBy: orderBy, OrderDesc: true, Limit: k, Aug: aug,
		})
	}
	playerRank := func(orderBy string, k int, person string) *nlq.Spec {
		return finish(&nlq.Spec{
			Domain: "european_football_2", Type: nlq.Ranking, Table: "Player",
			Target: "Player.player_name", OrderBy: orderBy, OrderDesc: true, Limit: k,
			Aug: tallerAug(person),
		})
	}
	return []*nlq.Spec{
		schoolsRank("schools.School", "satscores.AvgScrMath", 5, regionAug(nlq.AugCityRegion, "Bay Area")),
		schoolsRank("schools.School", "satscores.AvgScrRead", 3, regionAug(nlq.AugCityRegion, "Silicon Valley")),
		schoolsRank("schools.School", "frpm.Enrollment", 5, regionAug(nlq.AugCountyRegion, "Bay Area")),
		playerRank("Player.overall_rating", 5, "Stephen Curry"),
		playerRank("Player.volleys", 3, "Peter Crouch"),
		finish(&nlq.Spec{
			Domain: "formula_1", Type: nlq.Ranking, Table: "races",
			Target: "races.name", OrderBy: "races.year", OrderDesc: true, Limit: 5,
			Aug: &nlq.Augment{Kind: nlq.AugEUCountry, Column: "circuits.country"},
		}),
		finish(&nlq.Spec{
			Domain: "debit_card_specializing", Type: nlq.Ranking, Table: "gasstations",
			Target: "gasstations.Country", OrderBy: "gasstations.ChainID", OrderDesc: true, Limit: 3,
			Aug: &nlq.Augment{Kind: nlq.AugEUCountry, Column: "gasstations.Country"},
		}),
		schoolsRank("schools.School", "frpm.FRPMCount", 5, regionAug(nlq.AugCityRegion, "Bay Area")),
		playerRank("Player.dribbling", 5, "Cristiano Ronaldo"),
		schoolsRank("schools.School", "schools.Longitude", 3, regionAug(nlq.AugCityRegion, "Silicon Valley")),
	}
}

func rankingReasoning() []*nlq.Spec {
	rerank := func(orderBy string, desc bool, k int, kind nlq.AugKind, filters ...nlq.Filter) *nlq.Spec {
		return finish(&nlq.Spec{
			Domain: "codebase_community", Type: nlq.Ranking, Table: "posts",
			Target: "posts.Title", OrderBy: orderBy, OrderDesc: desc, Limit: k,
			Filters: filters,
			Aug:     &nlq.Augment{Kind: kind, Column: "posts.Title", K: k},
		})
	}
	traitTop := func(k int, kind nlq.AugKind, filters ...nlq.Filter) *nlq.Spec {
		return finish(&nlq.Spec{
			Domain: "codebase_community", Type: nlq.Ranking, Table: "comments",
			Target: "comments.Text", Limit: k,
			Filters: filters,
			Aug:     &nlq.Augment{Kind: kind, Column: "comments.Text", K: k},
		})
	}
	onPost := func(i int) nlq.Filter { return textFilter("posts.Title", "=", domains.AnchorPosts[i]) }
	return []*nlq.Spec{
		// The paper's Appendix A example: top-5 posts by popularity,
		// re-ranked most→least technical.
		rerank("posts.ViewCount", true, 5, nlq.AugTopTechnical),
		traitTop(3, nlq.AugTopSarcastic, onPost(0)),
		rerank("posts.Score", true, 5, nlq.AugTopTechnical),
		traitTop(3, nlq.AugTopPositive, onPost(1)),
		traitTop(3, nlq.AugTopSarcastic, onPost(4)),
		rerank("posts.ViewCount", true, 4, nlq.AugTopTechnical, numFilter("posts.Score", ">", "100")),
		traitTop(5, nlq.AugTopPositive, numFilter("comments.Score", ">", "1500")),
		traitTop(2, nlq.AugTopSarcastic, onPost(3)),
		traitTop(3, nlq.AugTopPositive, onPost(4)),
		rerank("posts.ViewCount", false, 5, nlq.AugTopTechnical),
	}
}

func aggregationKnowledge() []*nlq.Spec {
	circuitInfo := func(name string) *nlq.Spec {
		return finish(&nlq.Spec{
			Domain: "formula_1", Type: nlq.Aggregation, Table: "races",
			Aug: &nlq.Augment{Kind: nlq.AugCircuitInfo, Column: "circuits.name", Arg: name},
		})
	}
	return []*nlq.Spec{
		// Figure 2's query.
		circuitInfo("Sepang International Circuit"),
		circuitInfo("Circuit de Monaco"),
		circuitInfo("Silverstone Circuit"),
		circuitInfo("Suzuka Circuit"),
		finish(&nlq.Spec{
			Domain: "california_schools", Type: nlq.Aggregation, Table: "schools",
			Aug: regionAug(nlq.AugCityRegion, "Silicon Valley"),
		}),
		finish(&nlq.Spec{
			Domain: "california_schools", Type: nlq.Aggregation, Table: "schools",
			Aug: regionAug(nlq.AugCountyRegion, "Bay Area"),
		}),
		finish(&nlq.Spec{
			Domain: "debit_card_specializing", Type: nlq.Aggregation, Table: "gasstations",
			Aug: &nlq.Augment{Kind: nlq.AugEUCountry, Column: "gasstations.Country"},
		}),
		circuitInfo("Hungaroring"),
		circuitInfo("Autodromo Nazionale Monza"),
		finish(&nlq.Spec{
			Domain: "california_schools", Type: nlq.Aggregation, Table: "schools",
			Filters: []nlq.Filter{numFilter("schools.Charter", "=", "1")},
			Aug:     regionAug(nlq.AugCityRegion, "Silicon Valley"),
		}),
	}
}

func aggregationReasoning() []*nlq.Spec {
	summarizeComments := func(filters ...nlq.Filter) *nlq.Spec {
		return finish(&nlq.Spec{
			Domain: "codebase_community", Type: nlq.Aggregation, Table: "comments",
			Target: "comments.Text", Filters: filters,
			Aug: &nlq.Augment{Kind: nlq.AugSummarize, Column: "comments.Text"},
		})
	}
	onPost := func(i int) nlq.Filter { return textFilter("posts.Title", "=", domains.AnchorPosts[i]) }
	return []*nlq.Spec{
		// The paper's Appendix A example.
		summarizeComments(onPost(0)),
		summarizeComments(onPost(1)),
		summarizeComments(onPost(2)),
		summarizeComments(onPost(3)),
		summarizeComments(onPost(4)),
		finish(&nlq.Spec{
			Domain: "codebase_community", Type: nlq.Aggregation, Table: "posts",
			Target: "posts.Title", Filters: []nlq.Filter{numFilter("posts.ViewCount", ">", "4000")},
			Aug: &nlq.Augment{Kind: nlq.AugSummarize, Column: "posts.Title"},
		}),
		finish(&nlq.Spec{
			Domain: "debit_card_specializing", Type: nlq.Aggregation, Table: "products",
			Target: "products.Description",
			Aug:    &nlq.Augment{Kind: nlq.AugSummarize, Column: "products.Description"},
		}),
		summarizeComments(numFilter("comments.Score", ">", "1900")),
		finish(&nlq.Spec{
			Domain: "codebase_community", Type: nlq.Aggregation, Table: "posts",
			Target: "posts.Body", Filters: []nlq.Filter{numFilter("posts.Score", ">", "350")},
			Aug: &nlq.Augment{Kind: nlq.AugSummarize, Column: "posts.Body"},
		}),
		summarizeComments(onPost(5)),
	}
}
