package domains

import (
	"fmt"
	"math/rand"

	"tag/internal/sqldb"
	"tag/internal/world"
)

// buildFootball generates the european_football_2 domain. The BIRD schema
// splits player attributes into a separate table keyed by snapshots; the
// benchmark queries only need one attribute row per player, so the
// generator denormalises them into Player (documented substitution).
func buildFootball(db *sqldb.Database, w *world.World, r *rand.Rand) error {
	db.MustExec(`CREATE TABLE Player (
		id INTEGER PRIMARY KEY,
		player_name TEXT,
		height REAL,
		weight INTEGER,
		birthday TEXT,
		overall_rating INTEGER,
		volleys INTEGER,
		dribbling INTEGER,
		finishing INTEGER
	)`)
	db.MustExec(`CREATE TABLE Team (
		team_api_id INTEGER PRIMARY KEY,
		team_long_name TEXT,
		country TEXT
	)`)

	first := []string{
		"Luis", "Marco", "Jan", "Pierre", "Tomas", "Erik", "Pavel", "Diego",
		"Andrei", "Hugo", "Milan", "Stefan", "Jonas", "Felipe", "Oscar",
		"Viktor", "Nils", "Bruno", "Karl", "Mateo",
	}
	last := []string{
		"Fernandez", "Bergmann", "Kovac", "Dubois", "Novotny", "Larsen",
		"Horvat", "Silva", "Petrov", "Moreau", "Jansen", "Weiss", "Costa",
		"Lindqvist", "Santos", "Meyer", "Petersen", "Ricci", "Vogel", "Dias",
	}

	const nPlayers = 420
	ratings := permutedInts(r, nPlayers, 40, 3000) // distinct; scaled below
	var rows [][]any
	seen := make(map[string]bool)
	for i := 1; i <= nPlayers; i++ {
		name := pick(r, first) + " " + pick(r, last)
		for seen[name] {
			name = pick(r, first) + " " + pick(r, last) + " " + pick(r, []string{"Jr", "II", "III"})
		}
		seen[name] = true
		// Heights span 160–205 cm with 0.01 resolution (distinct values).
		height := 160 + float64(i%46) + float64(i)*0.01
		rows = append(rows, []any{
			i, name, round2(height), 55 + r.Intn(45),
			fmt.Sprintf("19%02d-%02d-%02d", 80+r.Intn(20), 1+r.Intn(12), 1+r.Intn(28)),
			40 + ratings[i-1]*55/3000, // distinct ints in [40, 95]
			20 + r.Intn(76),
			20 + r.Intn(76),
			20 + r.Intn(76),
		})
	}
	if err := db.InsertRows("Player", rows); err != nil {
		return err
	}

	var teamRows [][]any
	clubs := []string{"FC", "United", "City", "Athletic", "Sporting", "Real"}
	towns := []string{"Riverton", "Eastbrook", "Northfield", "Lakewood", "Hillcrest", "Westport", "Stonebridge", "Fairview"}
	tid := 1
	for _, town := range towns {
		teamRows = append(teamRows, []any{
			tid, town + " " + pick(r, clubs), pick(r, world.EuropeanCountries),
		})
		tid++
	}
	return db.InsertRows("Team", teamRows)
}
