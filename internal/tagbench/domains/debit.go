package domains

import (
	"fmt"
	"math/rand"

	"tag/internal/sqldb"
	"tag/internal/world"
)

// productCatalog pairs base product names with premium/standard variants.
// Premiumness is decided purely by the description's surface form, which
// is what both ground truth (world.IsPremiumProduct) and the simulated LM
// judge.
var productBases = []string{
	"Synthetic Motor Oil", "Diesel Fuel", "Windshield Washer Fluid",
	"Car Wash", "Engine Coolant", "Brake Fluid", "Tire Sealant",
	"Air Freshener", "Snack Box", "Coffee Blend", "Motor Grease",
	"LED Headlight", "Wiper Blades", "Battery Charger", "Phone Mount",
	"Road Atlas", "Travel Pillow", "Energy Drink", "Mineral Water",
	"Chocolate Bar",
}

var premiumPrefixes = []string{"Premium", "Deluxe", "Platinum", "Ultra", "Signature", "Executive"}
var standardPrefixes = []string{"Standard", "Basic", "Everyday", "Value", "Classic", "Regular"}

// buildDebit generates the debit_card_specializing domain: customers,
// gasstations, products, transactions_1k.
func buildDebit(db *sqldb.Database, w *world.World, r *rand.Rand) error {
	db.MustExec(`CREATE TABLE customers (
		CustomerID INTEGER PRIMARY KEY,
		Segment TEXT,
		Currency TEXT
	)`)
	db.MustExec(`CREATE TABLE gasstations (
		GasStationID INTEGER PRIMARY KEY,
		ChainID INTEGER,
		Country TEXT,
		Segment TEXT
	)`)
	db.MustExec(`CREATE TABLE products (
		ProductID INTEGER PRIMARY KEY,
		Description TEXT
	)`)
	db.MustExec(`CREATE TABLE transactions_1k (
		TransactionID INTEGER PRIMARY KEY,
		Date TEXT,
		CustomerID INTEGER,
		GasStationID INTEGER,
		ProductID INTEGER,
		Amount INTEGER,
		Price REAL
	)`)
	db.MustExec(`CREATE INDEX idx_tx_station ON transactions_1k (GasStationID)`)

	const nCustomers = 60
	var custRows [][]any
	for i := 1; i <= nCustomers; i++ {
		custRows = append(custRows, []any{
			i, pick(r, []string{"SME", "LAM", "KAM"}), pick(r, []string{"EUR", "CZK"}),
		})
	}
	if err := db.InsertRows("customers", custRows); err != nil {
		return err
	}

	const nStations = 90
	var stationRows [][]any
	for i := 1; i <= nStations; i++ {
		stationRows = append(stationRows, []any{
			i, 1 + r.Intn(25), pick(r, world.EuropeanCountries),
			pick(r, []string{"Value for money", "Premium", "Other", "Noname", "Discount"}),
		})
	}
	if err := db.InsertRows("gasstations", stationRows); err != nil {
		return err
	}

	// Products: alternate premium/standard variants across the catalogue.
	var productRows [][]any
	pid := 1
	for _, base := range productBases {
		prefix := standardPrefixes[pid%len(standardPrefixes)]
		if pid%3 == 0 {
			prefix = premiumPrefixes[pid%len(premiumPrefixes)]
		}
		productRows = append(productRows, []any{pid, prefix + " " + base})
		pid++
		// A second variant with the opposite tier for some bases.
		if r.Float64() < 0.5 {
			prefix2 := premiumPrefixes[pid%len(premiumPrefixes)]
			if pid%3 == 0 {
				prefix2 = standardPrefixes[pid%len(standardPrefixes)]
			}
			productRows = append(productRows, []any{pid, prefix2 + " " + base})
			pid++
		}
	}
	if err := db.InsertRows("products", productRows); err != nil {
		return err
	}
	nProducts := pid - 1

	const nTx = 1000
	var txRows [][]any
	for i := 1; i <= nTx; i++ {
		date := fmt.Sprintf("2012-%02d-%02d", 1+r.Intn(12), 1+r.Intn(28))
		amount := 1 + r.Intn(100)
		price := float64(amount) * (10 + 40*r.Float64())
		txRows = append(txRows, []any{
			i, date, 1 + r.Intn(nCustomers), 1 + r.Intn(nStations),
			1 + r.Intn(nProducts), amount, round2(price),
		})
	}
	return db.InsertRows("transactions_1k", txRows)
}

func round2(f float64) float64 { return float64(int(f*100)) / 100 }
