// Package domains generates the five BIRD-derived benchmark databases the
// TAG paper evaluates on (california_schools, debit_card_specializing,
// formula_1, codebase_community, european_football_2) plus the movies
// database behind Figure 1 and the examples.
//
// Generation is seeded and deterministic. Each generator plants *anchors*
// — rows with exactly controlled attributes that the benchmark queries
// target — inside a larger body of random fill data, mirroring how the
// paper's authors hand-labelled ground truth over real BIRD data. Ground
// truth is computed against the same world model the generators consume,
// never against the simulated LM.
package domains

import (
	"fmt"
	"math/rand"

	"tag/internal/sqldb"
	"tag/internal/world"
)

// Seed fixes all generated data. Changing it re-rolls the benchmark.
const Seed = 20240827 // arXiv submission date of the TAG paper

// Build creates and populates the named domain in a fresh database.
func Build(name string) (*sqldb.Database, error) {
	db := sqldb.NewDatabase()
	w := world.Default()
	r := rand.New(rand.NewSource(Seed))
	var err error
	switch name {
	case "california_schools":
		err = buildSchools(db, w, r)
	case "debit_card_specializing":
		err = buildDebit(db, w, r)
	case "formula_1":
		err = buildFormula1(db, w, r)
	case "codebase_community":
		err = buildCodebase(db, w, r)
	case "european_football_2":
		err = buildFootball(db, w, r)
	case "movies":
		err = buildMovies(db, w, r)
	default:
		return nil, fmt.Errorf("domains: unknown domain %q", name)
	}
	if err != nil {
		return nil, fmt.Errorf("domains: building %s: %w", name, err)
	}
	return db, nil
}

// Names lists the five benchmark domains (movies is examples-only).
func Names() []string {
	return []string{
		"california_schools",
		"debit_card_specializing",
		"formula_1",
		"codebase_community",
		"european_football_2",
	}
}

// pick returns a deterministic random element.
func pick[T any](r *rand.Rand, xs []T) T { return xs[r.Intn(len(xs))] }

// permutedInts returns n distinct integers from [lo, lo+span) in random
// order; span must be >= n. Distinctness keeps ranking ground truth
// unambiguous.
func permutedInts(r *rand.Rand, n, lo, span int) []int {
	if span < n {
		panic("domains: span too small for distinct values")
	}
	vals := r.Perm(span)[:n]
	out := make([]int, n)
	for i, v := range vals {
		out[i] = lo + v
	}
	return out
}
