package domains

import (
	"math/rand"
	"strings"
	"testing"

	"tag/internal/sqldb"
	"tag/internal/world"
)

func build(t *testing.T, name string) *sqldb.Database {
	t.Helper()
	db, err := Build(name)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return db
}

func count(t *testing.T, db *sqldb.Database, sql string, params ...any) int64 {
	t.Helper()
	res, err := db.Query(sql, params...)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res.Rows[0][0].AsInt()
}

func TestBuildUnknownDomain(t *testing.T) {
	if _, err := Build("atlantis"); err == nil {
		t.Fatal("unknown domain must fail")
	}
}

func TestNamesAreBuildable(t *testing.T) {
	for _, n := range Names() {
		build(t, n)
	}
}

func TestSchoolsInvariants(t *testing.T) {
	db := build(t, "california_schools")
	// Every school's city must come from the generator pool with a county.
	res, err := db.Query("SELECT DISTINCT City, County FROM schools")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		city, county := r[0].AsText(), r[1].AsText()
		want, ok := world.CACounties[city]
		if !ok {
			t.Errorf("city %q not in generator pool", city)
		} else if want != county {
			t.Errorf("city %q county = %q, want %q", city, county, want)
		}
	}
	// SAT scores are distinct (ranking ground truth needs this).
	if n := count(t, db, "SELECT COUNT(*) - COUNT(DISTINCT AvgScrMath) FROM satscores"); n != 0 {
		t.Errorf("%d duplicate math scores", n)
	}
	// Coordinates live in California's bounding box.
	if n := count(t, db, "SELECT COUNT(*) FROM schools WHERE Longitude > -113 OR Longitude < -125"); n != 0 {
		t.Errorf("%d schools outside longitude range", n)
	}
	// frpm covers every school exactly once.
	if a, b := count(t, db, "SELECT COUNT(*) FROM schools"), count(t, db, "SELECT COUNT(*) FROM frpm"); a != b {
		t.Errorf("frpm rows %d != schools %d", b, a)
	}
	// Some schools are person-named and some are not (both query classes
	// must be non-degenerate).
	res, _ = db.Query("SELECT School FROM schools")
	named := 0
	for _, r := range res.Rows {
		if world.IsNamedAfterPerson(r[0].AsText()) {
			named++
		}
	}
	if named == 0 || named == len(res.Rows) {
		t.Errorf("person-named schools = %d of %d; need a mix", named, len(res.Rows))
	}
}

func TestDebitInvariants(t *testing.T) {
	db := build(t, "debit_card_specializing")
	// Transactions reference valid stations, customers, products.
	for _, sql := range []string{
		"SELECT COUNT(*) FROM transactions_1k t LEFT JOIN gasstations g ON t.GasStationID = g.GasStationID WHERE g.GasStationID IS NULL",
		"SELECT COUNT(*) FROM transactions_1k t LEFT JOIN customers c ON t.CustomerID = c.CustomerID WHERE c.CustomerID IS NULL",
		"SELECT COUNT(*) FROM transactions_1k t LEFT JOIN products p ON t.ProductID = p.ProductID WHERE p.ProductID IS NULL",
	} {
		if n := count(t, db, sql); n != 0 {
			t.Errorf("%d dangling foreign keys: %s", n, sql)
		}
	}
	// Premium and standard products both exist.
	res, _ := db.Query("SELECT Description FROM products")
	premium := 0
	for _, r := range res.Rows {
		if world.IsPremiumProduct(r[0].AsText()) {
			premium++
		}
	}
	if premium == 0 || premium == len(res.Rows) {
		t.Errorf("premium products = %d of %d; need a mix", premium, len(res.Rows))
	}
	// Station countries include EU and non-EU members.
	w := world.Default()
	res, _ = db.Query("SELECT DISTINCT Country FROM gasstations")
	eu := 0
	for _, r := range res.Rows {
		if w.IsEUCountry(r[0].AsText()) {
			eu++
		}
	}
	if eu == 0 || eu == len(res.Rows) {
		t.Errorf("EU countries = %d of %d distinct; need a mix", eu, len(res.Rows))
	}
}

func TestFormula1Invariants(t *testing.T) {
	db := build(t, "formula_1")
	w := world.Default()
	// Sepang's race history matches world knowledge exactly.
	fact, _ := w.Circuit("Sepang International Circuit")
	res, err := db.Query(`SELECT r.year FROM races r JOIN circuits c ON r.circuitId = c.circuitId
		WHERE c.name = 'Sepang International Circuit' ORDER BY r.year`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != fact.LastGPYear-fact.FirstGPYear+1 {
		t.Fatalf("Sepang races = %d, want %d", len(res.Rows), fact.LastGPYear-fact.FirstGPYear+1)
	}
	for i, r := range res.Rows {
		if int(r[0].AsInt()) != fact.FirstGPYear+i {
			t.Errorf("Sepang year %d = %d, want %d", i, r[0].AsInt(), fact.FirstGPYear+i)
		}
	}
	// Races dates embed their year.
	res, _ = db.Query("SELECT year, date FROM races")
	for _, r := range res.Rows {
		if !strings.HasPrefix(r[1].AsText(), r[0].AsText()+"-") {
			t.Errorf("race date %q does not match year %s", r[1].AsText(), r[0].AsText())
		}
	}
	// Every race has exactly 10 results with positions 1..10.
	if n := count(t, db, `SELECT COUNT(*) FROM races r LEFT JOIN results x ON x.raceId = r.raceId
		WHERE x.resultId IS NULL`); n != 0 {
		t.Errorf("%d races without results", n)
	}
	if n := count(t, db, "SELECT COUNT(*) FROM results WHERE position < 1 OR position > 10"); n != 0 {
		t.Errorf("%d results with bad positions", n)
	}
}

func TestCodebaseInvariants(t *testing.T) {
	db := build(t, "codebase_community")
	// Post titles are unique; view counts are unique.
	if n := count(t, db, "SELECT COUNT(*) - COUNT(DISTINCT Title) FROM posts"); n != 0 {
		t.Errorf("%d duplicate titles", n)
	}
	if n := count(t, db, "SELECT COUNT(*) - COUNT(DISTINCT ViewCount) FROM posts"); n != 0 {
		t.Errorf("%d duplicate view counts", n)
	}
	// Anchor posts exist with planned comment counts.
	wantComments := map[string]int64{
		AnchorPosts[0]: 9, AnchorPosts[1]: 8, AnchorPosts[2]: 7,
		AnchorPosts[3]: 6, AnchorPosts[4]: 7, AnchorPosts[5]: 6,
	}
	for title, want := range wantComments {
		got := count(t, db, `SELECT COUNT(*) FROM comments c JOIN posts p ON c.PostId = p.Id WHERE p.Title = ?`, title)
		if got != want {
			t.Errorf("%q has %d comments, want %d", title, got, want)
		}
	}
	// Comments reference valid posts.
	if n := count(t, db, `SELECT COUNT(*) FROM comments c LEFT JOIN posts p ON c.PostId = p.Id WHERE p.Id IS NULL`); n != 0 {
		t.Errorf("%d orphan comments", n)
	}
	// Within each anchor post, comment texts are distinct (no trait ties).
	for _, title := range AnchorPosts {
		res, _ := db.Query(`SELECT c.Text FROM comments c JOIN posts p ON c.PostId = p.Id WHERE p.Title = ?`, title)
		seen := map[string]bool{}
		for _, r := range res.Rows {
			if seen[r[0].AsText()] {
				t.Errorf("%q has duplicate comment text %q", title, r[0].AsText())
			}
			seen[r[0].AsText()] = true
		}
	}
}

func TestFootballInvariants(t *testing.T) {
	db := build(t, "european_football_2")
	// Heights cover both sides of every benchmark athlete threshold.
	for _, threshold := range []float64{170, 178, 187, 188, 195, 201} {
		above := count(t, db, "SELECT COUNT(*) FROM Player WHERE height > ?", threshold)
		below := count(t, db, "SELECT COUNT(*) FROM Player WHERE height <= ?", threshold)
		if above == 0 || below == 0 {
			t.Errorf("threshold %.0f: above=%d below=%d; need players on both sides", threshold, above, below)
		}
	}
	// Names are unique.
	if n := count(t, db, "SELECT COUNT(*) - COUNT(DISTINCT player_name) FROM Player"); n != 0 {
		t.Errorf("%d duplicate player names", n)
	}
}

func TestMoviesInvariants(t *testing.T) {
	db := build(t, "movies")
	w := world.Default()
	// Titanic must be the highest grossing romance classic (Figure 1).
	res, err := db.Query("SELECT title, revenue FROM movies WHERE genre = 'Romance' ORDER BY revenue DESC")
	if err != nil {
		t.Fatal(err)
	}
	var topClassic string
	for _, r := range res.Rows {
		if w.IsClassicMovie(r[0].AsText()) {
			topClassic = r[0].AsText()
			break
		}
	}
	if topClassic != "Titanic" {
		t.Errorf("highest grossing romance classic = %q, want Titanic", topClassic)
	}
	// Every movie has reviews.
	if n := count(t, db, `SELECT COUNT(*) FROM movies m LEFT JOIN reviews r ON r.movie_id = m.id WHERE r.id IS NULL`); n != 0 {
		t.Errorf("%d movies without reviews", n)
	}
}

func TestPermutedInts(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	vals := permutedInts(r, 100, 10, 200)
	seen := map[int]bool{}
	for _, v := range vals {
		if v < 10 || v >= 210 {
			t.Fatalf("value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("span < n must panic")
		}
	}()
	permutedInts(r, 10, 0, 5)
}
