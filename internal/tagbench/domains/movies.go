package domains

import (
	"math/rand"

	"tag/internal/sqldb"
	"tag/internal/world"
)

// buildMovies generates the movies database behind Figure 1 and the
// example programs: a movies table with revenue/genre and a reviews table
// with free-text bodies. Titanic is the highest-grossing romance classic,
// exactly as in the paper's worked example.
func buildMovies(db *sqldb.Database, w *world.World, r *rand.Rand) error {
	db.MustExec(`CREATE TABLE movies (
		id INTEGER PRIMARY KEY,
		title TEXT,
		genre TEXT,
		revenue REAL,
		year INTEGER
	)`)
	db.MustExec(`CREATE TABLE reviews (
		id INTEGER PRIMARY KEY,
		movie_id INTEGER,
		stars INTEGER,
		body TEXT
	)`)
	db.MustExec(`CREATE INDEX idx_reviews_movie ON reviews (movie_id)`)

	type movie struct {
		title   string
		genre   string
		revenue float64
		year    int
	}
	movies := []movie{
		// Classics (per world knowledge), led by Titanic.
		{"Titanic", "Romance", 2257.8, 1997},
		{"Casablanca", "Romance", 102.1, 1942},
		{"Roman Holiday", "Romance", 82.3, 1953},
		{"Ghost", "Romance", 505.7, 1990},
		{"When Harry Met Sally", "Romance", 92.8, 1989},
		{"The Godfather", "Crime", 250.3, 1972},
		// Non-classics.
		{"Shang-Chi", "Action", 432.2, 2021},
		{"The Notebook", "Romance", 115.6, 2004},
		{"Quiet Nights", "Romance", 48.9, 2019},
		{"Harbor Lights", "Romance", 330.4, 2016},
		{"Steel Horizon", "Action", 610.5, 2018},
		{"Midnight Ledger", "Crime", 205.7, 2014},
		{"Paper Swans", "Drama", 77.2, 2012},
		{"Neon Tide", "Action", 154.9, 2020},
		{"Gentle Rain", "Drama", 61.3, 2011},
	}
	var movieRows [][]any
	for i, m := range movies {
		movieRows = append(movieRows, []any{i + 1, m.title, m.genre, m.revenue, m.year})
	}
	if err := db.InsertRows("movies", movieRows); err != nil {
		return err
	}

	// Reviews: classics skew positive; every movie gets 3–6 reviews.
	isReviewish := func(t world.Traits) bool { return t.Sarcasm < 0.4 && t.Technicality < 0.5 }
	positive := world.PhrasesWhere(func(t world.Traits) bool { return t.Sentiment > 0.6 && isReviewish(t) })
	negative := world.PhrasesWhere(func(t world.Traits) bool { return t.Sentiment < 0.4 && isReviewish(t) })
	mixed := world.PhrasesWhere(func(t world.Traits) bool { return t.Sentiment >= 0.4 && t.Sentiment <= 0.6 && isReviewish(t) })

	var reviewRows [][]any
	rid := 1
	for i, m := range movies {
		n := 3 + r.Intn(4)
		for j := 0; j < n; j++ {
			pool := mixed
			u := r.Float64()
			classic := w.IsClassicMovie(m.title)
			switch {
			case classic && u < 0.7, !classic && u < 0.4:
				pool = positive
			case u < 0.85:
				pool = negative
			}
			ph := pick(r, pool)
			stars := 1 + int(ph.Traits.Sentiment*4.99)
			reviewRows = append(reviewRows, []any{rid, i + 1, stars, ph.Text})
			rid++
		}
	}
	return db.InsertRows("reviews", reviewRows)
}
