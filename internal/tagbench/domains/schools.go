package domains

import (
	"fmt"
	"math/rand"

	"tag/internal/sqldb"
	"tag/internal/world"
)

// newCityGeo assigns every generator city a deterministic coordinate base
// up front (so repeated Builds in one process see identical data); schools
// jitter around it. Longitudes are negative (California); "highest
// longitude" therefore means "furthest east".
func newCityGeo(r *rand.Rand) map[string][2]float64 {
	m := make(map[string][2]float64, len(world.CACities))
	for _, city := range world.CACities {
		m[city] = [2]float64{
			-124 + 9*r.Float64(),
			32.5 + 9.5*r.Float64(),
		}
	}
	return m
}

// School level suffixes paired with grade spans.
var schoolLevels = []struct {
	suffix string
	spans  []string
}{
	{"Elementary School", []string{"K-5", "K-6", "K-8"}},
	{"Middle School", []string{"6-8", "7-8"}},
	{"High School", []string{"9-12", "K-12"}},
}

// buildSchools generates the california_schools domain: schools,
// satscores, frpm. Around half the schools sit in Bay Area cities, a
// quarter in Silicon Valley, the rest spread across distractor cities.
func buildSchools(db *sqldb.Database, w *world.World, r *rand.Rand) error {
	db.MustExec(`CREATE TABLE schools (
		CDSCode TEXT PRIMARY KEY,
		School TEXT NOT NULL,
		District TEXT,
		City TEXT,
		County TEXT,
		Longitude REAL,
		Latitude REAL,
		GSoffered TEXT,
		Charter INTEGER
	)`)
	db.MustExec(`CREATE TABLE satscores (
		cds TEXT PRIMARY KEY,
		School TEXT,
		AvgScrRead INTEGER,
		AvgScrMath INTEGER,
		AvgScrWrite INTEGER,
		NumTstTakr INTEGER
	)`)
	db.MustExec(`CREATE TABLE frpm (
		CDSCode TEXT PRIMARY KEY,
		AcademicYear TEXT,
		FRPMCount INTEGER,
		Enrollment INTEGER
	)`)
	db.MustExec(`CREATE INDEX idx_schools_city ON schools (City)`)

	cityGeo := newCityGeo(r)

	const nSchools = 360
	// Distinct metric pools keep ranking answers unambiguous.
	mathScores := permutedInts(r, nSchools, 380, 420)
	readScores := permutedInts(r, nSchools, 380, 420)
	writeScores := permutedInts(r, nSchools, 380, 420)
	enrollments := permutedInts(r, nSchools, 150, 4000)
	frpmCounts := permutedInts(r, nSchools, 50, 4000)

	var schoolRows, satRows, frpmRows [][]any
	for i := 0; i < nSchools; i++ {
		city := pick(r, world.CACities)
		county := world.CACounties[city]
		base := cityGeo[city]
		lon, lat := base[0], base[1]
		// Jitter keeps coordinates distinct within a city.
		lon += r.Float64()*0.15 + float64(i)*1e-5
		lat += r.Float64()*0.15 + float64(i)*1e-5

		level := pick(r, schoolLevels)
		var name string
		if r.Float64() < 0.35 {
			name = pick(r, world.PersonNames) + " " + level.suffix
		} else {
			name = city + " " + level.suffix
		}
		// Make names unique by numbering repeats.
		name = fmt.Sprintf("%s No. %d", name, i+1)

		cds := fmt.Sprintf("CA%07d", 1000000+i)
		charter := 0
		if r.Float64() < 0.2 {
			charter = 1
		}
		schoolRows = append(schoolRows, []any{
			cds, name, city + " Unified", city, county,
			round5(lon), round5(lat), pick(r, level.spans), charter,
		})
		// ~70% of schools report SAT scores (high schools always).
		if level.suffix == "High School" || r.Float64() < 0.5 {
			satRows = append(satRows, []any{
				cds, name, readScores[i], mathScores[i], writeScores[i], 50 + r.Intn(900),
			})
		}
		frpmRows = append(frpmRows, []any{
			cds, "2014-2015", frpmCounts[i], enrollments[i],
		})
	}
	if err := db.InsertRows("schools", schoolRows); err != nil {
		return err
	}
	if err := db.InsertRows("satscores", satRows); err != nil {
		return err
	}
	return db.InsertRows("frpm", frpmRows)
}

func round5(f float64) float64 {
	return float64(int(f*1e5)) / 1e5
}
