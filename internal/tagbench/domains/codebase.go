package domains

import (
	"math/rand"
	"strings"

	"tag/internal/sqldb"
	"tag/internal/world"
)

// AnchorPosts are the fixed post titles the benchmark queries reference.
// They are the 6 highest-view-count posts (so "top 5 posts by view count"
// selects from them deterministically) and their technicality values are
// pairwise distinct, which keeps ranking ground truth unambiguous.
var AnchorPosts = []string{
	"How does gentle boosting differ from AdaBoost?",   // T1
	"Choosing k in k means without overfitting",        // T2
	"Interpreting p values in a regression output",     // T3
	"Which laptop should I buy for studying",           // T4
	"Favorite statistics jokes to share with students", // T5
	"When to prefer median over mean",                  // T6
}

// anchorComments fixes, per anchor post, the comment mix the comparison
// and ranking queries depend on: (phrase predicate, count). Texts are
// drawn without replacement so sarcasm/positivity rankings have no ties.
type commentPlan struct {
	pred  func(world.Traits) bool
	count int
}

// buildCodebase generates the codebase_community domain: users, posts,
// comments. Post titles are unique phrases from the world lexicon; every
// post's ViewCount and Score are globally distinct.
func buildCodebase(db *sqldb.Database, w *world.World, r *rand.Rand) error {
	db.MustExec(`CREATE TABLE users (
		Id INTEGER PRIMARY KEY,
		DisplayName TEXT,
		Reputation INTEGER
	)`)
	db.MustExec(`CREATE TABLE posts (
		Id INTEGER PRIMARY KEY,
		Title TEXT,
		Body TEXT,
		ViewCount INTEGER,
		Score INTEGER,
		OwnerUserId INTEGER
	)`)
	db.MustExec(`CREATE TABLE comments (
		Id INTEGER PRIMARY KEY,
		PostId INTEGER,
		Text TEXT,
		Score INTEGER,
		UserId INTEGER
	)`)
	db.MustExec(`CREATE INDEX idx_comments_post ON comments (PostId)`)

	// Users.
	const nUsers = 60
	var userRows [][]any
	for i := 1; i <= nUsers; i++ {
		name := pick(r, []string{"stat", "data", "ml", "prob", "bayes", "metric"}) +
			pick(r, []string{"fan", "nerd", "head", "smith", "wright", "seeker"})
		userRows = append(userRows, []any{i, name, r.Intn(20000)})
	}
	if err := db.InsertRows("users", userRows); err != nil {
		return err
	}

	// Posts: anchors first (highest view counts), then unique-phrase fill.
	titles := append([]string(nil), AnchorPosts...)
	for _, p := range world.Phrases {
		if len(titles) >= 36 {
			break
		}
		t := strings.ToUpper(p.Text[:1]) + p.Text[1:]
		dup := false
		for _, existing := range titles {
			if strings.EqualFold(existing, t) {
				dup = true
				break
			}
		}
		if !dup {
			titles = append(titles, t)
		}
	}
	nPosts := len(titles)
	views := permutedInts(r, nPosts-len(AnchorPosts), 100, 5000)
	scores := permutedInts(r, nPosts, 1, 400)
	var postRows [][]any
	for i, title := range titles {
		var vc int
		if i < len(AnchorPosts) {
			vc = 10000 + (len(AnchorPosts) - i) // anchors own the top view counts
		} else {
			vc = views[i-len(AnchorPosts)]
		}
		postRows = append(postRows, []any{
			i + 1, title, "Discussion of: " + title, vc, scores[i], 1 + r.Intn(nUsers),
		})
	}
	if err := db.InsertRows("posts", postRows); err != nil {
		return err
	}

	// Comments. Anchor posts get controlled mixes; every text within one
	// post is a distinct phrase so trait rankings have no ties.
	plans := map[int][]commentPlan{
		1: { // T1: 3 sarcastic, 4 positive-sincere, 2 negative
			{func(t world.Traits) bool { return t.Sarcasm > 0.8 }, 3},
			{func(t world.Traits) bool { return t.Sentiment > 0.65 && t.Sarcasm < 0.3 }, 4},
			{func(t world.Traits) bool { return t.Sentiment < 0.35 && t.Sarcasm < 0.3 }, 2},
		},
		2: { // T2: 2 sarcastic, 3 positive, 3 negative
			{func(t world.Traits) bool { return t.Sarcasm > 0.8 }, 2},
			{func(t world.Traits) bool { return t.Sentiment > 0.65 && t.Sarcasm < 0.3 }, 3},
			{func(t world.Traits) bool { return t.Sentiment < 0.35 && t.Sarcasm < 0.3 }, 3},
		},
		3: { // T3: 1 sarcastic, 2 positive, 4 negative
			{func(t world.Traits) bool { return t.Sarcasm > 0.8 }, 1},
			{func(t world.Traits) bool { return t.Sentiment > 0.65 && t.Sarcasm < 0.3 }, 2},
			{func(t world.Traits) bool { return t.Sentiment < 0.35 && t.Sarcasm < 0.3 }, 4},
		},
		4: { // T4: 4 sarcastic, 2 positive
			{func(t world.Traits) bool { return t.Sarcasm > 0.8 }, 4},
			{func(t world.Traits) bool { return t.Sentiment > 0.65 && t.Sarcasm < 0.3 }, 2},
		},
		5: { // T5: 2 sarcastic, 5 positive
			{func(t world.Traits) bool { return t.Sarcasm > 0.8 }, 2},
			{func(t world.Traits) bool { return t.Sentiment > 0.65 && t.Sarcasm < 0.3 }, 5},
		},
		6: { // T6: 3 positive, 3 negative
			{func(t world.Traits) bool { return t.Sentiment > 0.65 && t.Sarcasm < 0.3 }, 3},
			{func(t world.Traits) bool { return t.Sentiment < 0.35 && t.Sarcasm < 0.3 }, 3},
		},
	}
	commentScores := permutedInts(r, 500, 0, 2000)
	var commentRows [][]any
	cid := 1
	addComment := func(postID int, text string) {
		commentRows = append(commentRows, []any{
			cid, postID, text, commentScores[cid-1], 1 + r.Intn(nUsers),
		})
		cid++
	}
	for postID := 1; postID <= len(plans); postID++ {
		plan := plans[postID]
		used := make(map[string]bool)
		for _, cp := range plan {
			candidates := world.PhrasesWhere(cp.pred)
			n := 0
			for _, c := range candidates {
				if n >= cp.count {
					break
				}
				if used[c.Text] {
					continue
				}
				used[c.Text] = true
				addComment(postID, c.Text)
				n++
			}
			if n < cp.count {
				panic("domains: not enough distinct phrases for comment plan")
			}
		}
	}
	// Fill comments land only on non-anchor posts, so the anchors' trait
	// mixes (and therefore ranking ground truth) stay exactly as planned.
	for cid <= 420 {
		postID := len(AnchorPosts) + 1 + r.Intn(nPosts-len(AnchorPosts))
		addComment(postID, pick(r, world.Phrases).Text)
	}
	return db.InsertRows("comments", commentRows)
}
