package domains

import (
	"fmt"
	"math/rand"

	"tag/internal/sqldb"
	"tag/internal/world"
)

// extraCircuits pad the world-known circuits with generator-only ones (the
// LM has no parametric knowledge of these, mirroring obscure venues).
var extraCircuits = []struct {
	name, location, country string
}{
	{"Riverbend Raceway", "Greenfield", "Australia"},
	{"Altiplano Autodromo", "La Cumbre", "Argentina"},
	{"Lakeside Park Circuit", "Espoo", "Finland"},
	{"Vershina Ring", "Kazan", "Serbia"},
	{"Desert Palm Circuit", "Doha", "Qatar"},
}

// buildFormula1 generates the formula_1 domain: circuits, races, drivers,
// results. The Sepang race history matches world knowledge (1999–2017,
// autumn dates), so Figure 2's hand-written TAG answer can blend DB rows
// with circuit facts consistently.
func buildFormula1(db *sqldb.Database, w *world.World, r *rand.Rand) error {
	db.MustExec(`CREATE TABLE circuits (
		circuitId INTEGER PRIMARY KEY,
		name TEXT,
		location TEXT,
		country TEXT
	)`)
	db.MustExec(`CREATE TABLE races (
		raceId INTEGER PRIMARY KEY,
		year INTEGER,
		round INTEGER,
		circuitId INTEGER,
		name TEXT,
		date TEXT
	)`)
	db.MustExec(`CREATE TABLE drivers (
		driverId INTEGER PRIMARY KEY,
		forename TEXT,
		surname TEXT,
		nationality TEXT,
		dob TEXT
	)`)
	db.MustExec(`CREATE TABLE results (
		resultId INTEGER PRIMARY KEY,
		raceId INTEGER,
		driverId INTEGER,
		position INTEGER,
		points REAL
	)`)
	db.MustExec(`CREATE INDEX idx_races_circuit ON races (circuitId)`)

	// Circuits: world-known first, then obscure extras.
	type circ struct {
		id      int
		name    string
		country string
		gpName  string
		first   int
		last    int
	}
	var circuits []circ
	id := 1
	for _, name := range []string{
		"Sepang International Circuit", "Circuit de Monaco", "Silverstone Circuit",
		"Autodromo Nazionale Monza", "Suzuka Circuit", "Interlagos",
		"Circuit Gilles Villeneuve", "Hungaroring", "Circuit de Spa-Francorchamps",
		"Shanghai International Circuit",
	} {
		fact, ok := w.Circuit(name)
		if !ok {
			continue
		}
		gp := map[string]string{
			"Sepang International Circuit":   "Malaysian Grand Prix",
			"Circuit de Monaco":              "Monaco Grand Prix",
			"Silverstone Circuit":            "British Grand Prix",
			"Autodromo Nazionale Monza":      "Italian Grand Prix",
			"Suzuka Circuit":                 "Japanese Grand Prix",
			"Interlagos":                     "Brazilian Grand Prix",
			"Circuit Gilles Villeneuve":      "Canadian Grand Prix",
			"Hungaroring":                    "Hungarian Grand Prix",
			"Circuit de Spa-Francorchamps":   "Belgian Grand Prix",
			"Shanghai International Circuit": "Chinese Grand Prix",
		}[name]
		first := fact.FirstGPYear
		if first < 1996 {
			first = 1996 // keep the table compact: modern era only
		}
		last := fact.LastGPYear
		if last > 2017 {
			last = 2017
		}
		circuits = append(circuits, circ{
			id: id, name: name, country: fact.Country, gpName: gp, first: first, last: last,
		})
		db.MustExec("INSERT INTO circuits VALUES (?, ?, ?, ?)", id, name, fact.City, fact.Country)
		id++
	}
	for _, ec := range extraCircuits {
		circuits = append(circuits, circ{
			id: id, name: ec.name, country: ec.country,
			gpName: ec.location + " Grand Prix",
			first:  2005 + r.Intn(5), last: 2014 + r.Intn(4),
		})
		db.MustExec("INSERT INTO circuits VALUES (?, ?, ?, ?)", id, ec.name, ec.location, ec.country)
		id++
	}

	// Races: one per circuit-year in its active window.
	var raceRows [][]any
	raceID := 1
	for _, c := range circuits {
		for year := c.first; year <= c.last; year++ {
			month := 3 + (c.id*3+year)%8 // deterministic spread over the season
			day := 1 + (c.id*7+year*3)%27
			round := 1 + (c.id+year)%19
			raceRows = append(raceRows, []any{
				raceID, year, round, c.id, c.gpName,
				fmt.Sprintf("%04d-%02d-%02d", year, month, day),
			})
			raceID++
		}
	}
	if err := db.InsertRows("races", raceRows); err != nil {
		return err
	}

	// Drivers: famous names (the LM knows facts about them) plus fill.
	famous := [][2]string{
		{"Lewis", "Hamilton"}, {"Michael", "Schumacher"}, {"Sebastian", "Vettel"},
		{"Fernando", "Alonso"}, {"Kimi", "Raikkonen"}, {"Max", "Verstappen"},
		{"Ayrton", "Senna"},
	}
	nats := []string{"British", "German", "Spanish", "Finnish", "Dutch", "Brazilian", "French", "Italian", "Australian"}
	var driverRows [][]any
	did := 1
	for _, f := range famous {
		driverRows = append(driverRows, []any{
			did, f[0], f[1], pick(r, nats),
			fmt.Sprintf("19%02d-%02d-%02d", 60+r.Intn(35), 1+r.Intn(12), 1+r.Intn(28)),
		})
		did++
	}
	fillSurnames := []string{"Moreau", "Keller", "Ivanov", "Costa", "Nilsen", "Baker", "Tanaka", "Rossi", "Weber", "Novak"}
	fillForenames := []string{"Jan", "Luca", "Pedro", "Erik", "Tom", "Nico", "Ivan", "Marco", "Theo", "Alex"}
	for i := 0; i < 25; i++ {
		driverRows = append(driverRows, []any{
			did, pick(r, fillForenames), pick(r, fillSurnames), pick(r, nats),
			fmt.Sprintf("19%02d-%02d-%02d", 70+r.Intn(30), 1+r.Intn(12), 1+r.Intn(28)),
		})
		did++
	}
	if err := db.InsertRows("drivers", driverRows); err != nil {
		return err
	}

	// Results: top-10 finishers for each race.
	points := []float64{25, 18, 15, 12, 10, 8, 6, 4, 2, 1}
	var resultRows [][]any
	rid := 1
	for race := 1; race < raceID; race++ {
		perm := r.Perm(did - 1)
		for pos := 0; pos < 10 && pos < len(perm); pos++ {
			resultRows = append(resultRows, []any{
				rid, race, perm[pos] + 1, pos + 1, points[pos],
			})
			rid++
		}
	}
	return db.InsertRows("results", resultRows)
}
