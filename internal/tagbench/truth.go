package tagbench

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tag/internal/nlq"
	"tag/internal/sqldb"
	"tag/internal/world"
)

// Truth is the reference answer for a query. Match/comparison/ranking
// queries have Values (exact-match scored); aggregation queries have
// Facts — the row serialisations a complete answer must cover (scored
// qualitatively, plus the coverage metric this reproduction adds).
type Truth struct {
	Values []string
	Facts  []string
}

// ComputeTruth evaluates a spec against the real database and the real
// world model — no LM anywhere. The relational part runs on the same SQL
// engine every method uses (so tie-breaking is consistent); the augment is
// resolved with perfect knowledge and exact latent traits.
func ComputeTruth(db *sqldb.Database, w *world.World, spec *nlq.Spec) (*Truth, error) {
	rows, err := relationalRows(db, spec)
	if err != nil {
		return nil, err
	}
	rows = filterByAugTruth(w, spec, rows)

	switch spec.Type {
	case nlq.Comparison:
		return &Truth{Values: []string{strconv.Itoa(len(rows))}}, nil

	case nlq.Match:
		limit := spec.Limit
		if limit <= 0 {
			limit = 1
		}
		if limit > len(rows) {
			limit = len(rows)
		}
		var vals []string
		for _, r := range rows[:limit] {
			vals = append(vals, r.target)
		}
		return &Truth{Values: vals}, nil

	case nlq.Ranking:
		if spec.Aug != nil && isTraitRank(spec.Aug.Kind) {
			// Optional relational pre-selection (the paper's "top 5 posts
			// by popularity" step), then exact latent-trait ordering.
			if spec.OrderBy != "" && spec.Limit > 0 && spec.Limit < len(rows) {
				rows = rows[:spec.Limit]
			}
			sort.SliceStable(rows, func(i, j int) bool {
				return traitOf(spec.Aug.Kind, rows[i].augVal) > traitOf(spec.Aug.Kind, rows[j].augVal)
			})
			k := spec.Aug.K
			if k <= 0 || k > len(rows) {
				k = len(rows)
			}
			var vals []string
			for _, r := range rows[:k] {
				vals = append(vals, r.target)
			}
			return &Truth{Values: vals}, nil
		}
		k := spec.Limit
		if k <= 0 || k > len(rows) {
			k = len(rows)
		}
		var vals []string
		for _, r := range rows[:k] {
			vals = append(vals, r.target)
		}
		return &Truth{Values: vals}, nil

	case nlq.Aggregation:
		var facts []string
		for _, r := range rows {
			facts = append(facts, r.rowString)
		}
		return &Truth{Facts: facts}, nil

	default:
		return nil, fmt.Errorf("tagbench: unsupported query type %v", spec.Type)
	}
}

// truthRow is one relational result row with the spec's salient values
// extracted.
type truthRow struct {
	target    string
	augVal    string
	rowString string
}

// RelationalSQL builds the spec's relational retrieval query: joins and
// plain filters only, ordered by the spec's order column. The augment is
// *not* compiled in — callers resolve it themselves (ground truth with the
// world; pipelines with the LM).
func RelationalSQL(spec *nlq.Spec, selectAll bool) string {
	var sel string
	if selectAll {
		sel = spec.Table + ".*"
		if spec.Join != nil {
			sel += ", " + spec.Join.Table + ".*"
		}
	} else {
		cols := neededColumns(spec)
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = fmt.Sprintf("%s AS c%d", c, i)
		}
		sel = strings.Join(parts, ", ")
	}
	var b strings.Builder
	b.WriteString("SELECT " + sel + " FROM " + spec.Table)
	if spec.Join != nil {
		b.WriteString(" JOIN " + spec.Join.Table + " ON " + spec.Join.Left + " = " + spec.Join.Right)
	}
	if len(spec.Filters) > 0 {
		b.WriteString(" WHERE ")
		for i, f := range spec.Filters {
			if i > 0 {
				b.WriteString(" AND ")
			}
			val := f.Value
			if !f.Num {
				val = "'" + strings.ReplaceAll(f.Value, "'", "''") + "'"
			}
			b.WriteString(f.Column + " " + f.Op + " " + val)
		}
	}
	if spec.OrderBy != "" {
		b.WriteString(" ORDER BY " + spec.OrderBy)
		if spec.OrderDesc {
			b.WriteString(" DESC")
		} else {
			b.WriteString(" ASC")
		}
	}
	return b.String()
}

// neededColumns lists the distinct qualified columns the evaluator reads:
// target, order, augment column.
func neededColumns(spec *nlq.Spec) []string {
	var cols []string
	add := func(c string) {
		if c == "" {
			return
		}
		for _, x := range cols {
			if x == c {
				return
			}
		}
		cols = append(cols, c)
	}
	add(spec.Target)
	add(spec.OrderBy)
	if spec.Aug != nil {
		add(spec.Aug.Column)
	}
	if len(cols) == 0 {
		add(spec.Table + ".*")
	}
	return cols
}

// relationalRows executes the relational part and extracts salient values.
func relationalRows(db *sqldb.Database, spec *nlq.Spec) ([]truthRow, error) {
	// Aggregation needs full rows for fact coverage; others only salient
	// columns.
	if spec.Type == nlq.Aggregation {
		// Select full rows for fact coverage, plus the augment and target
		// columns under reserved aliases (bare names can collide across
		// joined tables, e.g. races.name vs circuits.name).
		sql := RelationalSQL(spec, true)
		extra := ""
		if spec.Aug != nil && spec.Aug.Column != "" {
			extra += ", " + spec.Aug.Column + " AS __augval"
		}
		if spec.Target != "" {
			extra += ", " + spec.Target + " AS __targetval"
		}
		if extra != "" {
			sql = strings.Replace(sql, " FROM ", extra+" FROM ", 1)
		}
		res, err := db.Query(sql)
		if err != nil {
			return nil, err
		}
		augIdx := res.ColumnIndex("__augval")
		targetIdx := res.ColumnIndex("__targetval")
		nBase := len(res.Columns)
		if targetIdx >= 0 {
			nBase--
		}
		if augIdx >= 0 {
			nBase--
		}
		out := make([]truthRow, len(res.Rows))
		for i, r := range res.Rows {
			tr := truthRow{rowString: rowToString(res.Columns[:nBase], r[:nBase])}
			if augIdx >= 0 {
				tr.augVal = r[augIdx].AsText()
			}
			if targetIdx >= 0 {
				tr.target = r[targetIdx].AsText()
			}
			out[i] = tr
		}
		return out, nil
	}
	res, err := db.Query(RelationalSQL(spec, false))
	if err != nil {
		return nil, err
	}
	cols := neededColumns(spec)
	idxOf := func(qcol string) int {
		for i, c := range cols {
			if c == qcol {
				return i
			}
		}
		return -1
	}
	ti := idxOf(spec.Target)
	ai := -1
	if spec.Aug != nil {
		ai = idxOf(spec.Aug.Column)
	}
	out := make([]truthRow, len(res.Rows))
	for i, r := range res.Rows {
		tr := truthRow{}
		if ti >= 0 && ti < len(r) {
			tr.target = r[ti].AsText()
		}
		if ai >= 0 && ai < len(r) {
			tr.augVal = r[ai].AsText()
		}
		out[i] = tr
	}
	return out, nil
}

// filterByAugTruth applies the augment with perfect knowledge.
func filterByAugTruth(w *world.World, spec *nlq.Spec, rows []truthRow) []truthRow {
	a := spec.Aug
	if a == nil || isTraitRank(a.Kind) || a.Kind == nlq.AugSummarize {
		return rows
	}
	keep := func(v string) bool {
		switch a.Kind {
		case nlq.AugCityRegion:
			return w.InRegion(v, a.Arg)
		case nlq.AugCountyRegion:
			return w.CountyInBayArea(v)
		case nlq.AugEUCountry:
			return w.IsEUCountry(v)
		case nlq.AugTallerThan:
			h, ok := w.AthleteHeightCM(a.Arg)
			if !ok {
				return false
			}
			f, err := strconv.ParseFloat(v, 64)
			return err == nil && f > h
		case nlq.AugClassic:
			return w.IsClassicMovie(v)
		case nlq.AugNamedAfterPerson:
			return world.IsNamedAfterPerson(v)
		case nlq.AugPremium:
			return world.IsPremiumProduct(v)
		case nlq.AugPositive:
			return world.TextTraits(v).Sentiment > 0.5
		case nlq.AugNegative:
			return world.TextTraits(v).Sentiment < 0.5
		case nlq.AugSarcastic:
			return world.TextTraits(v).Sarcasm > 0.5
		case nlq.AugTechnical:
			return world.TextTraits(v).Technicality > 0.5
		case nlq.AugCircuitInfo:
			return strings.EqualFold(v, a.Arg)
		default:
			return true
		}
	}
	var out []truthRow
	for _, r := range rows {
		if keep(r.augVal) {
			out = append(out, r)
		}
	}
	return out
}

func isTraitRank(k nlq.AugKind) bool {
	return k == nlq.AugTopSarcastic || k == nlq.AugTopTechnical || k == nlq.AugTopPositive
}

func traitOf(k nlq.AugKind, text string) float64 {
	t := world.TextTraits(text)
	switch k {
	case nlq.AugTopSarcastic:
		return t.Sarcasm
	case nlq.AugTopTechnical:
		return t.Technicality
	default:
		return t.Sentiment
	}
}

func bare(qcol string) string {
	if i := strings.IndexByte(qcol, '.'); i >= 0 {
		return qcol[i+1:]
	}
	return qcol
}

func rowToString(cols []string, r sqldb.Row) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(c + "=" + r[i].AsText())
	}
	return b.String()
}

// ExactMatch compares an answer value list against the truth: same length,
// same order, values equal (numeric values compare with tolerance).
func ExactMatch(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if !valueEqual(got[i], want[i]) {
			return false
		}
	}
	return true
}

func valueEqual(a, b string) bool {
	a, b = strings.TrimSpace(a), strings.TrimSpace(b)
	if strings.EqualFold(a, b) {
		return true
	}
	fa, ea := strconv.ParseFloat(a, 64)
	fb, eb := strconv.ParseFloat(b, 64)
	if ea == nil && eb == nil {
		diff := fa - fb
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6
	}
	return false
}

// Coverage reports the fraction of truth facts that appear (by their
// salient date/name tokens) in an aggregation answer — the quantitative
// extension this reproduction adds for aggregation queries (the paper
// scores them qualitatively only).
func Coverage(answer string, facts []string) float64 {
	if len(facts) == 0 {
		return 1
	}
	low := strings.ToLower(answer)
	hit := 0
	for _, f := range facts {
		token := salientToken(f)
		if token == "" || strings.Contains(low, strings.ToLower(token)) {
			hit++
		}
	}
	return float64(hit) / float64(len(facts))
}

// salientToken extracts the most identifying field value from a fact row
// string ("col=val; ..."): preferring date, then name-like, then the first
// value.
func salientToken(fact string) string {
	fields := strings.Split(fact, "; ")
	var first string
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok || v == "" {
			continue
		}
		if first == "" {
			first = v
		}
		switch strings.ToLower(k) {
		case "date":
			return v
		case "school", "title", "text", "description":
			return v
		}
	}
	return first
}
