package tagbench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"testing"

	"tag/internal/sqldb"
	"tag/internal/tagbench/domains"
	"tag/internal/world"
)

// dbHandle caches one built domain during fingerprinting.
type dbHandle struct {
	db *sqldb.Database
}

// benchmarkFingerprint is the released benchmark's identity: a hash over
// every query's id, NL text and ground truth. Any change to the
// generators, the world model, the query registry or the grammar rotates
// it — which is exactly when reported numbers stop being comparable.
// Update the constant deliberately, alongside EXPERIMENTS.md.
const benchmarkFingerprint = "37da29cfa3d08f0a826a61c9157ce979c36462f9dfe7d5825ceb38888ce2a3f4"

func computeFingerprint(t *testing.T) string {
	t.Helper()
	h := sha256.New()
	w := world.Default()
	dbcache := map[string]*dbHandle{}
	for _, q := range Queries() {
		io.WriteString(h, q.ID)
		io.WriteString(h, "\x1f")
		io.WriteString(h, q.NL)
		io.WriteString(h, "\x1f")
		hd, ok := dbcache[q.Spec.Domain]
		if !ok {
			db, err := domains.Build(q.Spec.Domain)
			if err != nil {
				t.Fatal(err)
			}
			hd = &dbHandle{db: db}
			dbcache[q.Spec.Domain] = hd
		}
		truth, err := ComputeTruth(hd.db, w, q.Spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range truth.Values {
			io.WriteString(h, v)
			io.WriteString(h, "\x1e")
		}
		fmt.Fprintf(h, "facts=%d\x1d", len(truth.Facts))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestBenchmarkFingerprintFrozen(t *testing.T) {
	got := computeFingerprint(t)
	if benchmarkFingerprint == "UNSET" {
		t.Fatalf("benchmark fingerprint not pinned; set benchmarkFingerprint to %q", got)
	}
	if got != benchmarkFingerprint {
		t.Fatalf("benchmark content changed: fingerprint %s != pinned %s\n"+
			"If the change is intentional, update benchmarkFingerprint and re-record EXPERIMENTS.md.",
			got, benchmarkFingerprint)
	}
}
