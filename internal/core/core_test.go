package core

import (
	"context"
	"strings"
	"testing"

	"tag/internal/llm"
	"tag/internal/nlq"
	"tag/internal/tagbench"
	"tag/internal/world"
)

// benchEnvs is built once per test binary — environments are read-only.
var benchEnvs map[string]*Env

// benchReport caches the full 80-query × 5-method run.
var benchReport *Report

func envsForTest(t *testing.T) map[string]*Env {
	t.Helper()
	if benchEnvs == nil {
		envs, err := BuildEnvs()
		if err != nil {
			t.Fatalf("BuildEnvs: %v", err)
		}
		benchEnvs = envs
	}
	return benchEnvs
}

func reportForTest(t *testing.T) *Report {
	t.Helper()
	if benchReport == nil {
		rep, err := RunBenchmark(context.Background(), envsForTest(t),
			NewDefaultMethods(llm.DefaultProfile()), nil)
		if err != nil {
			t.Fatalf("RunBenchmark: %v", err)
		}
		benchReport = rep
	}
	return benchReport
}

func oracleLM() *llm.SimLM {
	return llm.NewSimLM(world.Default(), llm.OracleProfile(), llm.NewClock(), llm.DefaultCostModel())
}

func queryByID(t *testing.T, id string) *tagbench.Query {
	t.Helper()
	for _, q := range tagbench.Queries() {
		if q.ID == id {
			return q
		}
	}
	t.Fatalf("no query %s", id)
	return nil
}

// ---------------------------------------------------------------------------
// Headline reproduction assertions (Table 1 / Table 2 shape)

func TestTable1Shape(t *testing.T) {
	rep := reportForTest(t)
	overall := func(m string) Cell {
		return rep.CellFor(m, func(Outcome) bool { return true })
	}
	tag := overall("Hand-written TAG")

	// Paper §4.3: TAG ≥ 40% on every measured type, ~55% overall; all
	// baselines ≤ 20%; RAG near zero.
	if tag.Exact < 0.45 || tag.Exact > 0.70 {
		t.Errorf("TAG overall accuracy = %.2f, want ~0.55 (paper)", tag.Exact)
	}
	for _, m := range []string{"Text2SQL", "RAG", "Retrieval + LM Rank", "Text2SQL + LM"} {
		if acc := overall(m).Exact; acc > 0.20 {
			t.Errorf("%s accuracy = %.2f, paper caps baselines at 0.20", m, acc)
		}
	}
	if rag := overall("RAG").Exact; rag > 0.05 {
		t.Errorf("RAG accuracy = %.2f, paper reports 0.00", rag)
	}
	// TAG beats every baseline by a wide margin (paper: 20–65 points).
	for _, m := range []string{"Text2SQL", "RAG", "Retrieval + LM Rank", "Text2SQL + LM"} {
		if tag.Exact-overall(m).Exact < 0.20 {
			t.Errorf("TAG advantage over %s = %.2f, want >= 0.20", m, tag.Exact-overall(m).Exact)
		}
	}
}

func TestTable1PerTypeShape(t *testing.T) {
	rep := reportForTest(t)
	for _, ty := range []nlq.QueryType{nlq.Match, nlq.Comparison, nlq.Ranking} {
		tag := rep.typeCell("Hand-written TAG", ty)
		if tag.Exact < 0.35 {
			t.Errorf("TAG %v accuracy = %.2f, paper keeps TAG >= 0.40 per type", ty, tag.Exact)
		}
		for _, m := range []string{"Text2SQL", "RAG", "Retrieval + LM Rank", "Text2SQL + LM"} {
			if c := rep.typeCell(m, ty); c.Exact >= tag.Exact {
				t.Errorf("%s %v accuracy %.2f >= TAG %.2f", m, ty, c.Exact, tag.Exact)
			}
		}
	}
	// Text2SQL is weakest on ranking (reasoning-over-text, paper: 0.10).
	t2sRank := rep.typeCell("Text2SQL", nlq.Ranking)
	if t2sRank.Exact > 0.15 {
		t.Errorf("Text2SQL ranking accuracy = %.2f, paper reports 0.10", t2sRank.Exact)
	}
}

func TestTable1LatencyShape(t *testing.T) {
	rep := reportForTest(t)
	overall := func(m string) float64 {
		return rep.CellFor(m, func(Outcome) bool { return true }).Seconds
	}
	tag := overall("Hand-written TAG")
	t2slm := overall("Text2SQL + LM")
	// Text2SQL + LM is the slowest method (paper: 9.08 s).
	for _, m := range []string{"Text2SQL", "RAG", "Retrieval + LM Rank", "Hand-written TAG"} {
		if overall(m) >= t2slm {
			t.Errorf("%s ET %.2f >= Text2SQL+LM %.2f; paper has Text2SQL+LM slowest", m, overall(m), t2slm)
		}
	}
	// TAG is fastest or nearly fastest (paper: 2.94 s): within 1.2 s of
	// the fastest method and well below the slowest.
	fastest := tag
	for _, m := range rep.Methods {
		if s := overall(m); s < fastest {
			fastest = s
		}
	}
	if tag-fastest > 1.2 {
		t.Errorf("TAG ET %.2f is %.2f slower than fastest; paper has TAG fastest or nearly fastest", tag, tag-fastest)
	}
	if t2slm/tag < 1.4 {
		t.Errorf("TAG speedup over slowest = %.1fx, want >= 1.4x (paper: up to 3.1x)", t2slm/tag)
	}
}

func TestTable2Shape(t *testing.T) {
	rep := reportForTest(t)
	cat := func(m string, c nlq.Category) Cell {
		return rep.CellFor(m, func(o Outcome) bool { return o.Category == c })
	}
	// Paper: TAG above 50% on both knowledge and reasoning.
	if k := cat("Hand-written TAG", nlq.Knowledge).Exact; k < 0.45 {
		t.Errorf("TAG knowledge = %.2f, want > 0.50 (paper 0.53)", k)
	}
	if r := cat("Hand-written TAG", nlq.Reasoning).Exact; r < 0.50 {
		t.Errorf("TAG reasoning = %.2f, want > 0.50 (paper 0.60)", r)
	}
	// Vanilla Text2SQL struggles most on reasoning (paper 0.10).
	if r := cat("Text2SQL", nlq.Reasoning).Exact; r > 0.15 {
		t.Errorf("Text2SQL reasoning = %.2f, paper reports 0.10", r)
	}
}

func TestCoverageOrdering(t *testing.T) {
	rep := reportForTest(t)
	cov := func(m string) float64 {
		var sum float64
		n := 0
		for _, o := range rep.Outcomes {
			if o.Method == m && o.Type == nlq.Aggregation {
				sum += o.Coverage
				n++
			}
		}
		return sum / float64(n)
	}
	// TAG's aggregation answers cover far more facts than RAG's — the
	// quantitative form of Figure 2's qualitative claim.
	if cov("Hand-written TAG") < cov("RAG")+0.2 {
		t.Errorf("TAG coverage %.2f vs RAG %.2f: want a wide gap", cov("Hand-written TAG"), cov("RAG"))
	}
}

func TestReportDeterminism(t *testing.T) {
	// A fresh run must reproduce the cached report exactly.
	envs, err := BuildEnvs()
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := RunBenchmark(context.Background(), envs, NewDefaultMethods(llm.DefaultProfile()), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep1 := reportForTest(t)
	if rep1.Table1() != rep2.Table1() {
		t.Errorf("Table 1 not deterministic:\n%s\nvs\n%s", rep1.Table1(), rep2.Table1())
	}
	if rep1.Table2() != rep2.Table2() {
		t.Error("Table 2 not deterministic")
	}
}

// ---------------------------------------------------------------------------
// Method-level behaviour

func TestHandwrittenTAGOracleIsNearPerfect(t *testing.T) {
	// With a perfect LM, the hand-written pipelines should answer nearly
	// every exact-match query correctly — separating pipeline bugs from
	// modelled LM fallibility.
	envs := envsForTest(t)
	m := &HandwrittenTAG{Model: oracleLM()}
	w := world.Default()
	wrong := 0
	total := 0
	for _, q := range tagbench.Queries() {
		if q.Spec.Type == nlq.Aggregation {
			continue
		}
		total++
		truth, err := tagbench.ComputeTruth(envs[q.Spec.Domain].DB, w, q.Spec)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		ans, err := m.Answer(context.Background(), envs[q.Spec.Domain], q)
		if err != nil {
			t.Errorf("%s: %v", q.ID, err)
			wrong++
			continue
		}
		if !tagbench.ExactMatch(ans.Values, truth.Values) {
			wrong++
			t.Logf("%s oracle mismatch: got %v want %v", q.ID, ans.Values, truth.Values)
		}
	}
	if wrong > total/20 {
		t.Errorf("oracle hand-written TAG wrong on %d/%d exact-match queries", wrong, total)
	}
}

func TestText2SQLDropsReasoning(t *testing.T) {
	env := envsForTest(t)["codebase_community"]
	m := &Text2SQL{Model: oracleLM()}
	q := queryByID(t, "CR-01") // sarcastic comments on T1
	ans, err := m.Answer(context.Background(), env, q)
	if err != nil {
		t.Fatal(err)
	}
	// Plain SQL cannot filter sarcasm: the count includes every comment on
	// the post (9), not the 3 sarcastic ones.
	if len(ans.Values) != 1 || ans.Values[0] == "3" {
		t.Errorf("Text2SQL on CR-01 = %v; dropping the reasoning clause should overcount", ans.Values)
	}
}

func TestRAGMissesAggregationRows(t *testing.T) {
	env := envsForTest(t)["formula_1"]
	m := &RAG{Model: oracleLM(), TopK: 10}
	q := queryByID(t, "AK-01")
	ans, err := m.Answer(context.Background(), env, q)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := tagbench.ComputeTruth(env.DB, world.Default(), q.Spec)
	cov := tagbench.Coverage(ans.Text, truth.Facts)
	if cov > 0.6 {
		t.Errorf("RAG coverage on Sepang = %.2f; top-10 retrieval cannot cover 19 races", cov)
	}
}

func TestHandwrittenTAGSepang(t *testing.T) {
	env := envsForTest(t)["formula_1"]
	m := &HandwrittenTAG{Model: oracleLM()}
	q := queryByID(t, "AK-01")
	ans, err := m.Answer(context.Background(), env, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Kuala Lumpur", "Malaysia", "1999", "2017", "Malaysian Grand Prix"} {
		if !strings.Contains(ans.Text, frag) {
			t.Errorf("TAG Sepang answer missing %q:\n%s", frag, ans.Text)
		}
	}
	truth, _ := tagbench.ComputeTruth(env.DB, world.Default(), q.Spec)
	if cov := tagbench.Coverage(ans.Text, truth.Facts); cov < 0.9 {
		t.Errorf("TAG Sepang coverage = %.2f, want >= 0.9", cov)
	}
}

func TestFigure2Panels(t *testing.T) {
	fig, err := Figure2(context.Background(), envsForTest(t), llm.DefaultProfile())
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"== RAG ==", "== Text2SQL + LM ==", "== Hand-written TAG =="} {
		if !strings.Contains(fig, frag) {
			t.Errorf("Figure 2 missing panel %q", frag)
		}
	}
	// The Text2SQL+LM panel must show the parametric-knowledge fallback.
	if !strings.Contains(fig, "general knowledge") {
		t.Error("Figure 2: Text2SQL+LM should degrade to parametric knowledge")
	}
}

func TestPipelineRunStepArtifacts(t *testing.T) {
	env := envsForTest(t)["european_football_2"]
	p := &Pipeline{Model: oracleLM()}
	q := queryByID(t, "CK-01")
	res, err := p.Run(context.Background(), env, q.NL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.SQL, "SELECT") {
		t.Errorf("syn produced %q", res.SQL)
	}
	if res.Table == nil {
		t.Error("exec produced no table")
	}
	if res.Answer == "" {
		t.Error("gen produced no answer")
	}
}

func TestLMUDFsInsideSQL(t *testing.T) {
	env := envsForTest(t)["debit_card_specializing"]
	model := oracleLM()
	RegisterLMUDFs(context.Background(), env.DB, model)
	res, err := env.DB.Query("SELECT COUNT(*) FROM products WHERE LLM_FILTER('premium', Description)")
	if err != nil {
		t.Fatal(err)
	}
	n := res.Rows[0][0].AsInt()
	// Cross-check against ground truth.
	all, _ := env.DB.Query("SELECT Description FROM products")
	truth := int64(0)
	for _, r := range all.Rows {
		if world.IsPremiumProduct(r[0].AsText()) {
			truth++
		}
	}
	if n != truth {
		t.Errorf("LLM_FILTER count = %d, ground truth %d (oracle model)", n, truth)
	}
}

func TestPipelineForDescribesOperators(t *testing.T) {
	q := queryByID(t, "RR-01")
	desc := PipelineFor(q.Spec)
	if !strings.Contains(desc, "sem_topk") || !strings.Contains(desc, "df = sql(") {
		t.Errorf("PipelineFor output:\n%s", desc)
	}
}

func TestEnvRetrieve(t *testing.T) {
	env := envsForTest(t)["california_schools"]
	pts, err := env.retrieve("schools with the highest average math score", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("retrieved %d points", len(pts))
	}
	// At least some retrieved rows should be SAT-score rows.
	satRows := 0
	for _, p := range pts {
		if _, ok := p["AvgScrMath"]; ok {
			satRows++
		}
	}
	if satRows == 0 {
		t.Error("retrieval should surface satscores rows for a math-score question")
	}
}
