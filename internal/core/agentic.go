package core

import (
	"context"
	"fmt"
	"strings"

	"tag/internal/llm"
	"tag/internal/nlq"
	"tag/internal/tagbench"
)

// AgenticTAG is the paper's stated future-work direction (§5): "future
// work may explore extending this in an agentic loop". It wraps the
// single-iteration TAG pipeline in a bounded repair loop:
//
//	hop 1: run syn → exec → gen as usual;
//	on execution failure: repair the synthesised SQL (drop the last
//	  WHERE conjunct — the usual culprit is an over-constrained
//	  knowledge clause) and re-execute;
//	on an empty/unparseable answer: fall back to the hand-written
//	  semantic-operator pipeline when the question parses.
//
// Each hop costs real (simulated) LM time, so the latency/accuracy trade
// of agentic retries is measurable (BenchmarkAblation_AgenticTAG).
type AgenticTAG struct {
	Model llm.Model
	// MaxHops bounds the repair loop (default 3).
	MaxHops int
	// UseLMUDFs is forwarded to the inner pipeline.
	UseLMUDFs bool
}

// Name implements Method.
func (m *AgenticTAG) Name() string { return "TAG (agentic)" }

// Trace records what each hop did — exposed for tests and the CLI.
type Trace struct {
	Hops []string
}

// Answer implements Method.
func (m *AgenticTAG) Answer(ctx context.Context, env *Env, q *tagbench.Query) (*Answer, error) {
	ans, _, err := m.AnswerTraced(ctx, env, q)
	return ans, err
}

// AnswerTraced is Answer plus the hop-by-hop trace.
func (m *AgenticTAG) AnswerTraced(ctx context.Context, env *Env, q *tagbench.Query) (*Answer, *Trace, error) {
	maxHops := m.MaxHops
	if maxHops <= 0 {
		maxHops = 3
	}
	trace := &Trace{}
	p := &Pipeline{Model: m.Model, UseLMUDFs: m.UseLMUDFs}

	res, err := p.Run(ctx, env, q.NL)
	trace.Hops = append(trace.Hops, "pipeline")
	hops := 1

	// Repair loop: execution failures get progressively weaker SQL.
	for err != nil && res != nil && res.SQL != "" && hops < maxHops {
		repaired, ok := dropLastConjunct(res.SQL)
		if !ok {
			break
		}
		trace.Hops = append(trace.Hops, "repair-sql")
		hops++
		table, qerr := env.DB.QueryContext(ctx, repaired)
		if qerr != nil {
			res = &Result{Question: q.NL, SQL: repaired}
			err = qerr
			continue
		}
		answer, gerr := p.generate(ctx, q.NL, table)
		res = &Result{Question: q.NL, SQL: repaired, Table: table, Answer: answer}
		err = gerr
	}

	if err == nil && res != nil {
		ans := pipelineAnswer(q, res)
		if !answerLooksEmpty(q, ans) {
			return ans, trace, nil
		}
		err = fmt.Errorf("agentic: empty answer")
	}

	// Final hop: hand-written semantic-operator fallback.
	if hops < maxHops {
		if _, perr := nlq.Parse(q.NL); perr == nil {
			trace.Hops = append(trace.Hops, "handwritten-fallback")
			hw := &HandwrittenTAG{Model: m.Model}
			ans, herr := hw.Answer(ctx, env, q)
			if herr == nil {
				return ans, trace, nil
			}
		}
	}
	return nil, trace, err
}

// pipelineAnswer converts a pipeline result into a benchmark Answer.
func pipelineAnswer(q *tagbench.Query, res *Result) *Answer {
	if q.Spec.Type == nlq.Aggregation {
		return &Answer{Text: res.Answer}
	}
	return parseListAnswer(res.Answer)
}

// answerLooksEmpty reports whether the pipeline produced nothing useful.
func answerLooksEmpty(q *tagbench.Query, a *Answer) bool {
	if a == nil {
		return true
	}
	if q.Spec.Type == nlq.Aggregation {
		return strings.TrimSpace(a.Text) == "" ||
			strings.Contains(a.Text, "do not have enough information")
	}
	return len(a.Values) == 0
}

// dropLastConjunct removes the final AND-conjunct of the WHERE clause,
// or the whole clause when only one predicate remains.
func dropLastConjunct(sql string) (string, bool) {
	upper := strings.ToUpper(sql)
	wi := strings.Index(upper, " WHERE ")
	if wi < 0 {
		return "", false
	}
	// The WHERE clause runs until ORDER BY / LIMIT (or the end).
	rest := sql[wi+len(" WHERE "):]
	tailIdx := len(rest)
	for _, kw := range []string{" ORDER BY ", " LIMIT "} {
		if i := strings.Index(strings.ToUpper(rest), kw); i >= 0 && i < tailIdx {
			tailIdx = i
		}
	}
	clause, tail := rest[:tailIdx], rest[tailIdx:]
	if ai := strings.LastIndex(strings.ToUpper(clause), " AND "); ai >= 0 {
		return sql[:wi] + " WHERE " + strings.TrimSpace(clause[:ai]) + tail, true
	}
	// Single predicate: drop WHERE entirely.
	return sql[:wi] + tail, true
}
