package core

import (
	"strings"
	"testing"

	"tag/internal/nlq"
)

func TestUsageTableShowsBatchingAsymmetry(t *testing.T) {
	rep := reportForTest(t)
	tagU, ok := rep.Usage["Hand-written TAG"]
	if !ok {
		t.Fatal("no usage recorded for TAG")
	}
	ragU := rep.Usage["RAG"]
	// The paper's efficiency mechanism: TAG routes work through batches,
	// RAG through per-query single calls.
	if tagU.BatchCalls == 0 || tagU.BatchedItems < 1000 {
		t.Errorf("TAG usage = %+v; expected heavy batching", tagU)
	}
	if ragU.BatchCalls != 0 || ragU.Calls != 80 {
		t.Errorf("RAG usage = %+v; expected 80 single calls", ragU)
	}
	out := rep.UsageTable()
	for _, frag := range []string{"Method", "batches", "Hand-written TAG", "RAG"} {
		if !strings.Contains(out, frag) {
			t.Errorf("usage table missing %q:\n%s", frag, out)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	rep := reportForTest(t)
	out := rep.Table1()
	for _, frag := range []string{
		"Table 1", "Match-based", "Comparison", "Ranking", "Aggregation",
		"Text2SQL", "RAG", "Retrieval + LM Rank", "Text2SQL + LM", "Hand-written TAG",
		"N/A", // the aggregation accuracy column
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 1 missing %q:\n%s", frag, out)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	out := reportForTest(t).Table2()
	for _, frag := range []string{"Table 2", "Knowledge", "Reasoning"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 2 missing %q:\n%s", frag, out)
		}
	}
}

func TestSpeedupLine(t *testing.T) {
	line := reportForTest(t).SpeedupLine()
	if !strings.Contains(line, "Hand-written TAG mean ET") || !strings.Contains(line, "x lower than") {
		t.Errorf("speedup line = %q", line)
	}
}

func TestCellForEmptySlice(t *testing.T) {
	rep := reportForTest(t)
	c := rep.CellFor("Hand-written TAG", func(o Outcome) bool { return false })
	if c.N != 0 || c.Seconds != 0 {
		t.Errorf("empty cell = %+v", c)
	}
	if cellString(c) != "-" {
		t.Errorf("empty cell renders %q", cellString(c))
	}
	// Aggregation-only slice renders N/A accuracy.
	agg := rep.CellFor("RAG", func(o Outcome) bool { return o.Type == nlq.Aggregation })
	if agg.Exact != -1 {
		t.Errorf("aggregation-only cell Exact = %v, want -1", agg.Exact)
	}
	if !strings.HasPrefix(cellString(agg), "N/A") {
		t.Errorf("aggregation cell renders %q", cellString(agg))
	}
}

func TestSortOutcomesStable(t *testing.T) {
	rep := reportForTest(t)
	cp := &Report{Methods: rep.Methods, Outcomes: append([]Outcome(nil), rep.Outcomes...)}
	cp.SortOutcomes()
	for i := 1; i < len(cp.Outcomes); i++ {
		a, b := cp.Outcomes[i-1], cp.Outcomes[i]
		if a.QueryID > b.QueryID || (a.QueryID == b.QueryID && a.Method > b.Method) {
			t.Fatalf("outcomes not sorted at %d: %s/%s after %s/%s", i, b.QueryID, b.Method, a.QueryID, a.Method)
		}
	}
}
