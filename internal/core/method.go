// Package core implements the TAG model (query synthesis → query execution
// → answer generation) and the five methods the paper evaluates:
//
//	Text2SQL            — LM writes SQL whose result *is* the answer
//	RAG                 — embed rows, retrieve top-10, single LM call
//	Retrieval + LM Rank — RAG with an LM reranking pass
//	Text2SQL + LM       — LM writes retrieval SQL, rows go in context
//	Hand-written TAG    — expert pipelines over semantic operators
//
// plus the benchmark harness that regenerates Table 1, Table 2 and
// Figure 2.
package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"tag/internal/embed"
	"tag/internal/llm"
	"tag/internal/sqldb"
	"tag/internal/tagbench"
	"tag/internal/tagbench/domains"
	"tag/internal/vector"
	"tag/internal/world"
)

// Answer is a method's response to a benchmark query: a value list for
// match/comparison/ranking queries, or free text for aggregation queries.
type Answer struct {
	Values []string
	Text   string
}

// Method answers natural-language questions over a database environment.
type Method interface {
	Name() string
	// Answer resolves the question. Errors (invalid SQL, context length)
	// count as incorrect; their time is still charged.
	Answer(ctx context.Context, env *Env, q *tagbench.Query) (*Answer, error)
}

// Env is one benchmark domain's execution environment, shared by all
// methods: the database, its schema prompt, and a lazily built row-level
// embedding index for the retrieval baselines.
type Env struct {
	Domain string
	DB     *sqldb.Database
	Schema string
	World  *world.World

	embedder *embed.Embedder

	ragOnce  sync.Once
	ragIndex *vector.Flat
	ragRows  []llm.DataPoint
	ragCols  [][]string // column order per row (for stable serialisation)
	ragErr   error
}

// NewEnv wraps a database as a method environment.
func NewEnv(domain string, db *sqldb.Database) *Env {
	return &Env{
		Domain:   domain,
		DB:       db,
		Schema:   db.SchemaSQL(),
		World:    world.Default(),
		embedder: embed.New(0),
	}
}

// BuildEnvs constructs environments for all five benchmark domains.
func BuildEnvs() (map[string]*Env, error) {
	envs := make(map[string]*Env)
	for _, name := range domains.Names() {
		db, err := domains.Build(name)
		if err != nil {
			return nil, err
		}
		envs[name] = NewEnv(name, db)
	}
	return envs, nil
}

// ragState builds (once) the row-level embedding index over every table in
// the domain: each row serialised as "- col: val" lines, embedded, and
// stored in an exact flat index — the paper's RAG setup.
func (e *Env) ragState() (*vector.Flat, []llm.DataPoint, error) {
	e.ragOnce.Do(func() {
		idx := vector.NewFlat(e.embedder.Dim(), vector.Cosine)
		id := 0
		for _, table := range e.DB.TableNames() {
			rows, err := e.DB.QueryRows(context.Background(), "SELECT * FROM "+table)
			if err != nil {
				e.ragErr = err
				return
			}
			cols := rows.Columns()
			for rows.Next() {
				row := rows.Row()
				dp := make(llm.DataPoint, len(cols))
				text := ""
				for ci, col := range cols {
					v := row[ci].AsText()
					dp[col] = v
					text += "- " + col + ": " + v + "\n"
				}
				if err := idx.Add(id, e.embedder.Embed(text)); err != nil {
					e.ragErr = err
					rows.Close()
					return
				}
				e.ragRows = append(e.ragRows, dp)
				e.ragCols = append(e.ragCols, cols)
				id++
			}
			if err := rows.Err(); err != nil {
				e.ragErr = err
				return
			}
		}
		e.ragIndex = idx
	})
	return e.ragIndex, e.ragRows, e.ragErr
}

// retrieve returns the top-k rows for a question by embedding similarity.
func (e *Env) retrieve(question string, k int) ([]llm.DataPoint, error) {
	idx, rows, err := e.ragState()
	if err != nil {
		return nil, err
	}
	hits, err := idx.Search(e.embedder.Embed(question), k)
	if err != nil {
		return nil, err
	}
	out := make([]llm.DataPoint, 0, len(hits))
	for _, h := range hits {
		out = append(out, rows[h.ID])
	}
	return out, nil
}

// resultToAnswer converts a SQL result into an Answer: single-column
// results become a value list; multi-column results flatten row-major.
func resultToAnswer(res *sqldb.Result) *Answer {
	a := &Answer{}
	for _, row := range res.Rows {
		for _, v := range row {
			a.Values = append(a.Values, v.AsText())
		}
	}
	a.Text = res.String()
	return a
}

// parseListAnswer converts an LM's "[v1, v2]" output to an Answer.
func parseListAnswer(raw string) *Answer {
	return &Answer{Values: llm.ParseAnswerList(raw), Text: raw}
}

// countAnswer renders an exact count as an Answer.
func countAnswer(n int) *Answer {
	return &Answer{Values: []string{strconv.Itoa(n)}, Text: fmt.Sprintf("[%d]", n)}
}
