package core

import (
	"context"
	"fmt"
	"strings"

	"tag/internal/llm"
	"tag/internal/nlq"
	"tag/internal/sqldb"
	"tag/internal/tagbench"
)

// Pipeline is the general TAG system of §2: syn → exec → gen. Unlike the
// hand-written method it synthesises the database query automatically with
// the LM, and — when UseLMUDFs is set — lets exec run LM user-defined
// functions inside SQL (the §2.1 design point illustrated by Figure 1's
// "classic movie" predicate).
//
//	Query Synthesis : syn(R)    -> Q   (LM, BIRD-style schema prompt)
//	Query Execution : exec(Q)   -> T   (sqldb engine, optional LM UDFs)
//	Answer Generation: gen(R, T) -> A  (LM over the computed table)
type Pipeline struct {
	Model llm.Model
	// UseLMUDFs registers LLM_FILTER/LLM_SCORE with the database so that
	// synthesised SQL can call the model per row.
	UseLMUDFs bool
}

// Result carries the intermediate artefacts of a pipeline run, so callers
// (and the examples) can inspect each TAG step.
type Result struct {
	Question string
	SQL      string        // Q  — synthesised query
	Table    *sqldb.Result // T  — executed result
	Answer   string        // A  — generated natural-language answer
}

// Run executes one TAG iteration over the environment.
func (p *Pipeline) Run(ctx context.Context, env *Env, question string) (*Result, error) {
	// syn(R) -> Q. AsSimLM looks through decorators (llm.WithRetry), so
	// capability flags reach the simulated model even when wrapped.
	sim := llm.AsSimLM(p.Model)
	if sim != nil {
		sim.SQLCapabilities.LMUDFs = p.UseLMUDFs
	}
	sql, err := p.Model.Complete(ctx, llm.Text2SQLPrompt(env.Schema, question))
	if err != nil {
		return nil, fmt.Errorf("tag: query synthesis: %w", err)
	}
	// exec(Q) -> T. The caller's context flows into the engine, so a
	// cancelled request stops the scan mid-flight.
	if p.UseLMUDFs {
		RegisterLMUDFs(ctx, env.DB, p.Model)
	}
	table, err := env.DB.QueryContext(ctx, sql)
	if err != nil {
		return &Result{Question: question, SQL: sql},
			fmt.Errorf("tag: query execution: %w", err)
	}
	// gen(R, T) -> A
	answer, err := p.generate(ctx, question, table)
	if err != nil {
		return &Result{Question: question, SQL: sql, Table: table}, err
	}
	return &Result{Question: question, SQL: sql, Table: table, Answer: answer}, nil
}

// generate runs the answer-generation step over the computed table.
func (p *Pipeline) generate(ctx context.Context, question string, table *sqldb.Result) (string, error) {
	points := make([]llm.DataPoint, len(table.Rows))
	for i, row := range table.Rows {
		dp := make(llm.DataPoint, len(table.Columns))
		for ci, col := range table.Columns {
			dp[col] = row[ci].AsText()
		}
		points[i] = dp
	}
	spec, err := nlq.Parse(question)
	if err == nil && spec.Type == nlq.Aggregation {
		return p.Model.Complete(ctx, llm.AggAnswerPrompt(points, table.Columns, question))
	}
	return p.Model.Complete(ctx, llm.AnswerPrompt(points, table.Columns, question))
}

// RegisterLMUDFs installs the LM user-defined functions on a database:
//
//	LLM_FILTER('task', value) -> BOOLEAN  per-row semantic predicate
//	LLM_SCORE('task', value)  -> REAL     per-row semantic score
//	LLM_MAP('task', value)    -> TEXT     per-row transformation
//
// They let exec() evaluate semantic predicates inside SQL, turning the
// engine into the LM-aware database API of §2.1.
func RegisterLMUDFs(ctx context.Context, db *sqldb.Database, model llm.Model) {
	db.Funcs().Register("LLM_FILTER", func(args []sqldb.Value) (sqldb.Value, error) {
		if len(args) != 2 {
			return sqldb.Null, fmt.Errorf("LLM_FILTER(task, value) takes 2 arguments")
		}
		claim := udfClaim(args[0].AsText(), args[1].AsText())
		out, err := model.Complete(ctx, llm.SemFilterPrompt(claim))
		if err != nil {
			return sqldb.Null, err
		}
		return sqldb.Bool(strings.EqualFold(strings.TrimSpace(out), "true")), nil
	})
	db.Funcs().Register("LLM_SCORE", func(args []sqldb.Value) (sqldb.Value, error) {
		if len(args) != 2 {
			return sqldb.Null, fmt.Errorf("LLM_SCORE(task, value) takes 2 arguments")
		}
		// Scores route through the comparison head's trait channel by
		// asking for a map-style transformation and falling back to a
		// filter verdict: 1.0 for true, 0.0 for false.
		claim := udfClaim(args[0].AsText(), args[1].AsText())
		out, err := model.Complete(ctx, llm.SemFilterPrompt(claim))
		if err != nil {
			return sqldb.Null, err
		}
		if strings.EqualFold(strings.TrimSpace(out), "true") {
			return sqldb.Float(1), nil
		}
		return sqldb.Float(0), nil
	})
	db.Funcs().Register("LLM_MAP", func(args []sqldb.Value) (sqldb.Value, error) {
		if len(args) != 2 {
			return sqldb.Null, fmt.Errorf("LLM_MAP(task, value) takes 2 arguments")
		}
		out, err := model.Complete(ctx, llm.SemMapPrompt(args[0].AsText(), args[1].AsText()))
		if err != nil {
			return sqldb.Null, err
		}
		return sqldb.Text(out), nil
	})
}

// udfClaim renders an LM UDF task name into the claim grammar of
// internal/llm/semantic.go.
func udfClaim(task, value string) string {
	switch strings.ToLower(strings.TrimSpace(task)) {
	case "classic movie", "classic":
		return value + " is a movie widely considered a classic"
	case "positive":
		return "the following text is positive: " + value
	case "negative":
		return "the following text is negative: " + value
	case "sarcastic":
		return "the following text is sarcastic: " + value
	case "technical":
		return "the following text is technical: " + value
	case "named after a person":
		return value + " is a school named after a person"
	case "premium":
		return value + " sounds like a premium product"
	default:
		return value + " satisfies: " + task
	}
}

// TAGPipelineMethod adapts Pipeline to the benchmark Method interface —
// the "automatic syn" variant of TAG, used by the ablation bench to
// compare against expert pipelines.
type TAGPipelineMethod struct {
	Pipeline Pipeline
}

// Name implements Method.
func (m *TAGPipelineMethod) Name() string { return "TAG (auto-syn)" }

// Answer implements Method.
func (m *TAGPipelineMethod) Answer(ctx context.Context, env *Env, q *tagbench.Query) (*Answer, error) {
	res, err := m.Pipeline.Run(ctx, env, q.NL)
	if err != nil {
		return nil, err
	}
	if q.Spec.Type == nlq.Aggregation {
		return &Answer{Text: res.Answer}, nil
	}
	return parseListAnswer(res.Answer), nil
}
