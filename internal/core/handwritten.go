package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"tag/internal/llm"
	"tag/internal/nlq"
	"tag/internal/sem"
	"tag/internal/sqldb"
	"tag/internal/tagbench"
)

// HandwrittenTAG runs the paper's strongest method: expert-written TAG
// pipelines over the LOTUS-style semantic-operator runtime (§4.2,
// Appendix C). Exact computation (filters, joins, ordering, counting)
// stays in the database/DataFrame; the LM is invoked only for scoped
// semantic work (region membership claims, trait ranking, summarisation),
// always through batched operators.
//
// The paper writes one pipeline per query by hand; here the expert
// knowledge is captured once, as a compiler from the query's formal spec
// to the same operator sequence a human would write. Run the pipeline of
// any individual query with PipelineFor to see the exact operator chain.
type HandwrittenTAG struct {
	Model llm.Model
}

// Name implements Method.
func (m *HandwrittenTAG) Name() string { return "Hand-written TAG" }

// Answer implements Method.
func (m *HandwrittenTAG) Answer(ctx context.Context, env *Env, q *tagbench.Query) (*Answer, error) {
	return m.run(ctx, env, q.Spec)
}

// run executes the expert pipeline for a spec.
func (m *HandwrittenTAG) run(ctx context.Context, env *Env, spec *nlq.Spec) (*Answer, error) {
	// The circuit-info augment is relational in disguise: the circuit name
	// is stored in the database, so the expert pushes it down as a filter
	// and keeps the LM for the summary only.
	if spec.Aug != nil && spec.Aug.Kind == nlq.AugCircuitInfo {
		spec = spec.Clone()
		spec.Filters = append(spec.Filters, nlq.Filter{
			Column: spec.Aug.Column, Op: "=", Value: spec.Aug.Arg,
		})
	}
	df, err := m.load(ctx, env, spec)
	if err != nil {
		return nil, err
	}

	// Knowledge / reasoning filters run as semantic operators. For
	// entity-valued augments the expert dedupes first — exactly the
	// paper's Appendix C pipeline (`unique_cities = df["City"].unique();
	// sv = unique_cities.sem_filter(...)`): one LM claim per distinct
	// entity instead of one per row, then a relational semi-join back.
	if spec.Aug != nil && spec.Aug.Kind == nlq.AugTallerThan {
		// One fact lookup, then exact relational filtering — cheaper and
		// more reliable than per-row height claims.
		out, herr := m.Model.Complete(ctx, llm.HeightPrompt(spec.Aug.Arg))
		if herr != nil {
			return nil, herr
		}
		threshold, perr := strconv.ParseFloat(strings.TrimSpace(out), 64)
		if perr != nil {
			return nil, fmt.Errorf("handwritten: height lookup returned %q", out)
		}
		df = df.Filter(func(get func(string) sqldb.Value) bool {
			v := get("__aug")
			return !v.IsNull() && v.AsFloat() > threshold
		})
	} else if claim := filterClaim(spec); claim != "" {
		if dedupableAug(spec.Aug.Kind) {
			uniq, derr := df.Distinct("__aug")
			if derr != nil {
				return nil, derr
			}
			kept, ferr := uniq.SemFilter(ctx, m.Model, claim)
			if ferr != nil {
				return nil, ferr
			}
			allowed := make(map[string]bool, kept.Len())
			keptVals, verr := kept.Strings("__aug")
			if verr != nil {
				return nil, verr
			}
			for _, v := range keptVals {
				allowed[v] = true
			}
			df = df.Filter(func(get func(string) sqldb.Value) bool {
				return allowed[get("__aug").AsText()]
			})
		} else {
			df, err = df.SemFilter(ctx, m.Model, claim)
			if err != nil {
				return nil, err
			}
		}
	}

	switch spec.Type {
	case nlq.Comparison:
		// Exact computation stays in the data system.
		return countAnswer(df.Len()), nil

	case nlq.Match:
		limit := spec.Limit
		if limit <= 0 {
			limit = 1
		}
		return valuesAnswer(df.Head(limit), "__target")

	case nlq.Ranking:
		if spec.Aug != nil && isTraitKind(spec.Aug.Kind) {
			// Optional relational pre-selection, then semantic top-k.
			if spec.OrderBy != "" && spec.Limit > 0 {
				df = df.Head(spec.Limit)
			}
			k := spec.Aug.K
			if k <= 0 {
				k = spec.Limit
			}
			df, err = df.SemTopK(ctx, m.Model, "more "+traitWord(spec.Aug.Kind), "__aug", k)
			if err != nil {
				return nil, err
			}
			return valuesAnswer(df, "__target")
		}
		return valuesAnswer(df.Head(spec.Limit), "__target")

	case nlq.Aggregation:
		if spec.Aug != nil && spec.Aug.Kind == nlq.AugCircuitInfo {
			// The expert projects to the fields the summary needs — less
			// prompt, same answer.
			slim, perr := df.Select("year", "round", "name", "date")
			if perr == nil {
				df = slim
			}
			text, err := df.SemAggRows(ctx, m.Model, "Summarize the races held on "+spec.Aug.Arg)
			if err != nil {
				return nil, err
			}
			return &Answer{Text: text}, nil
		}
		if spec.Target != "" {
			text, err := df.SemAgg(ctx, m.Model, "Summarize the "+bareName(spec.Target), "__target")
			if err != nil {
				return nil, err
			}
			return &Answer{Text: text}, nil
		}
		// Provide-information frames: summarise a handful of identifying
		// columns rather than full rows.
		cols := df.Columns()
		keep := cols
		if len(keep) > 4 {
			keep = keep[1:5] // skip the synthetic key column, keep names
		}
		if slim, perr := df.Select(keep...); perr == nil {
			df = slim
		}
		text, err := df.SemAggRows(ctx, m.Model, "Summarize the rows")
		if err != nil {
			return nil, err
		}
		return &Answer{Text: text}, nil

	default:
		return nil, fmt.Errorf("handwritten: unsupported query type %v", spec.Type)
	}
}

// load runs the relational stage: filters, join and ordering execute on
// the SQL engine; salient columns come back under reserved aliases
// (__target, __aug) alongside the full primary row.
func (m *HandwrittenTAG) load(ctx context.Context, env *Env, spec *nlq.Spec) (*sem.DataFrame, error) {
	sql := tagbench.RelationalSQL(spec, true)
	extra := ""
	if spec.Aug != nil && spec.Aug.Column != "" {
		extra += ", " + spec.Aug.Column + " AS __aug"
	}
	if spec.Target != "" {
		extra += ", " + spec.Target + " AS __target"
	}
	if extra != "" {
		sql = strings.Replace(sql, " FROM ", extra+" FROM ", 1)
	}
	rows, err := env.DB.QueryRows(ctx, sql)
	if err != nil {
		return nil, err
	}
	return sem.FromRows(rows)
}

// filterClaim renders the LOTUS-style instruction template for filter
// augments ("" when the augment is not a per-row filter). The claim shapes
// match the instruction contract in internal/llm/semantic.go.
func filterClaim(spec *nlq.Spec) string {
	a := spec.Aug
	if a == nil {
		return ""
	}
	switch a.Kind {
	case nlq.AugCityRegion:
		return "{__aug} is a city in the " + a.Arg + " region"
	case nlq.AugCountyRegion:
		return "{__aug} is a county in the Bay Area"
	case nlq.AugEUCountry:
		return "{__aug} is a country that is a member of the European Union"
	case nlq.AugTallerThan:
		return "height {__aug} is greater than the height of " + a.Arg + " in centimeters"
	case nlq.AugClassic:
		return "{__aug} is a movie widely considered a classic"
	case nlq.AugNamedAfterPerson:
		return "{__aug} is a school named after a person"
	case nlq.AugPremium:
		return "{__aug} sounds like a premium product"
	case nlq.AugPositive:
		return "the following text is positive: {__aug}"
	case nlq.AugNegative:
		return "the following text is negative: {__aug}"
	case nlq.AugSarcastic:
		return "the following text is sarcastic: {__aug}"
	case nlq.AugTechnical:
		return "the following text is technical: {__aug}"
	case nlq.AugCircuitInfo:
		// Relational, not semantic: the circuit name is in the database.
		return ""
	default:
		return ""
	}
}

// PipelineFor describes, in LOTUS-like pseudocode, the expert pipeline the
// hand-written method executes for a spec — useful for docs and the CLI's
// -explain flag.
func PipelineFor(spec *nlq.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "df = sql(%q)\n", tagbench.RelationalSQL(spec, false))
	if claim := filterClaim(spec); claim != "" {
		fmt.Fprintf(&b, "df = df.sem_filter(%q)\n", claim)
	}
	switch spec.Type {
	case nlq.Comparison:
		b.WriteString("answer = len(df)\n")
	case nlq.Match:
		b.WriteString("answer = df.head(1)[target]\n")
	case nlq.Ranking:
		if spec.Aug != nil && isTraitKind(spec.Aug.Kind) {
			if spec.OrderBy != "" && spec.Limit > 0 {
				fmt.Fprintf(&b, "df = df.head(%d)\n", spec.Limit)
			}
			fmt.Fprintf(&b, "df = df.sem_topk(%q, %d)\n", "more "+traitWord(spec.Aug.Kind), spec.Aug.K)
		} else {
			fmt.Fprintf(&b, "df = df.head(%d)\n", spec.Limit)
		}
		b.WriteString("answer = df[target]\n")
	case nlq.Aggregation:
		b.WriteString("answer = df.sem_agg(\"Summarize ...\")\n")
	}
	return b.String()
}

func valuesAnswer(df *sem.DataFrame, col string) (*Answer, error) {
	vals, err := df.Strings(col)
	if err != nil {
		return nil, err
	}
	quoted := make([]bool, len(vals))
	for i := range quoted {
		quoted[i] = true
	}
	return &Answer{Values: vals, Text: llm.FormatAnswerList(vals, quoted)}, nil
}

// dedupableAug reports whether the augment judges an entity value (city,
// county, country, title) rather than a unique free-text field — those are
// the augments worth deduplicating before the semantic filter.
func dedupableAug(k nlq.AugKind) bool {
	switch k {
	case nlq.AugCityRegion, nlq.AugCountyRegion, nlq.AugEUCountry, nlq.AugClassic, nlq.AugTallerThan:
		return true
	default:
		return false
	}
}

func isTraitKind(k nlq.AugKind) bool {
	return k == nlq.AugTopSarcastic || k == nlq.AugTopTechnical || k == nlq.AugTopPositive
}

func traitWord(k nlq.AugKind) string {
	switch k {
	case nlq.AugTopSarcastic:
		return "sarcastic"
	case nlq.AugTopTechnical:
		return "technical"
	default:
		return "positive"
	}
}

func bareName(qcol string) string {
	if i := strings.IndexByte(qcol, '.'); i >= 0 {
		return qcol[i+1:]
	}
	return qcol
}
