package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"tag/internal/llm"
	"tag/internal/nlq"
	"tag/internal/tagbench"
	"tag/internal/world"
)

// Outcome is one (method, query) evaluation.
type Outcome struct {
	QueryID  string
	Method   string
	Type     nlq.QueryType
	Category nlq.Category
	Answer   *Answer
	Err      error
	Seconds  float64 // simulated LM seconds charged to this query
	Correct  bool    // exact match (non-aggregation only)
	Coverage float64 // fact coverage (aggregation only)
}

// Cell aggregates outcomes for one (method, slice) cell of a table.
type Cell struct {
	Exact   float64 // exact-match accuracy (NaN-free: -1 when N/A)
	Seconds float64 // mean execution time
	N       int
}

// Report is the full benchmark result set: enough to print Table 1,
// Table 2 and Figure 2.
type Report struct {
	Methods  []string
	Outcomes []Outcome
	// Usage holds each method's LM inference traffic for the run.
	Usage map[string]llm.Stats
}

// NewDefaultMethods constructs the paper's five methods, each with its own
// simulated model instance (same profile and seed — the same underlying
// "Llama" — but an independent clock, so per-method latency is isolated).
func NewDefaultMethods(profile llm.Profile) []Method {
	w := world.Default()
	newModel := func() *llm.SimLM {
		return llm.NewSimLM(w, profile, llm.NewClock(), llm.DefaultCostModel())
	}
	return []Method{
		&Text2SQL{Model: newModel()},
		&RAG{Model: newModel(), TopK: 10},
		&RetrievalLMRank{Model: newModel(), Candidates: 30, TopK: 10},
		&Text2SQLLM{Model: newModel()},
		&HandwrittenTAG{Model: newModel()},
	}
}

// modelOf extracts the method's simulated model (for clock access).
func modelOf(m Method) *llm.SimLM {
	switch t := m.(type) {
	case *Text2SQL:
		return t.Model.(*llm.SimLM)
	case *RAG:
		return t.Model.(*llm.SimLM)
	case *RetrievalLMRank:
		return t.Model.(*llm.SimLM)
	case *Text2SQLLM:
		return t.Model.(*llm.SimLM)
	case *HandwrittenTAG:
		return t.Model.(*llm.SimLM)
	case *TAGPipelineMethod:
		return t.Pipeline.Model.(*llm.SimLM)
	case *AgenticTAG:
		if sim, ok := t.Model.(*llm.SimLM); ok {
			return sim
		}
		return nil
	default:
		return nil
	}
}

// RunBenchmark evaluates the methods over the queries (nil = all 80) and
// scores them against ground truth.
func RunBenchmark(ctx context.Context, envs map[string]*Env, methods []Method, queries []*tagbench.Query) (*Report, error) {
	if queries == nil {
		queries = tagbench.Queries()
	}
	w := world.Default()
	rep := &Report{}
	for _, m := range methods {
		rep.Methods = append(rep.Methods, m.Name())
		if sim := modelOf(m); sim != nil {
			sim.ResetStats()
		}
	}
	for _, q := range queries {
		env, ok := envs[q.Spec.Domain]
		if !ok {
			return nil, fmt.Errorf("core: no environment for domain %s", q.Spec.Domain)
		}
		truth, err := tagbench.ComputeTruth(env.DB, w, q.Spec)
		if err != nil {
			return nil, fmt.Errorf("core: truth for %s: %w", q.ID, err)
		}
		for _, m := range methods {
			o := Outcome{
				QueryID: q.ID, Method: m.Name(),
				Type: q.Spec.Type, Category: q.Spec.Category,
			}
			var before float64
			model := modelOf(m)
			if model != nil {
				before = model.Clock().Now()
			}
			ans, err := m.Answer(ctx, env, q)
			if model != nil {
				o.Seconds = model.Clock().Now() - before
			}
			o.Answer = ans
			o.Err = err
			if err == nil && ans != nil {
				if q.Spec.Type == nlq.Aggregation {
					o.Coverage = tagbench.Coverage(ans.Text, truth.Facts)
				} else {
					o.Correct = tagbench.ExactMatch(ans.Values, truth.Values)
				}
			}
			rep.Outcomes = append(rep.Outcomes, o)
		}
	}
	rep.Usage = make(map[string]llm.Stats, len(methods))
	for _, m := range methods {
		if sim := modelOf(m); sim != nil {
			rep.Usage[m.Name()] = sim.Stats()
		}
	}
	return rep, nil
}

// CellFor aggregates outcomes for a method over a filter.
func (r *Report) CellFor(method string, keep func(Outcome) bool) Cell {
	var c Cell
	correct, scored := 0, 0
	var secs float64
	for _, o := range r.Outcomes {
		if o.Method != method || !keep(o) {
			continue
		}
		c.N++
		secs += o.Seconds
		if o.Type != nlq.Aggregation {
			scored++
			if o.Correct {
				correct++
			}
		}
	}
	if c.N > 0 {
		c.Seconds = secs / float64(c.N)
	}
	if scored > 0 {
		c.Exact = float64(correct) / float64(scored)
	} else {
		c.Exact = -1 // N/A (aggregation-only slice)
	}
	return c
}

// typeCell returns the Table 1 cell for (method, type).
func (r *Report) typeCell(method string, t nlq.QueryType) Cell {
	return r.CellFor(method, func(o Outcome) bool { return o.Type == t })
}

// Table1 renders the paper's Table 1: accuracy and execution time overall
// and per query type.
func (r *Report) Table1() string {
	var b strings.Builder
	b.WriteString("Table 1: Accuracy and execution time (ET) for TAG benchmark queries\n")
	fmt.Fprintf(&b, "%-22s %-16s %-16s %-16s %-16s %-16s\n",
		"Method", "Overall", "Match-based", "Comparison", "Ranking", "Aggregation")
	fmt.Fprintf(&b, "%-22s %-16s %-16s %-16s %-16s %-16s\n", "",
		"EM     ET(s)", "EM     ET(s)", "EM     ET(s)", "EM     ET(s)", "EM     ET(s)")
	b.WriteString(strings.Repeat("-", 105) + "\n")
	for _, m := range r.Methods {
		overall := r.CellFor(m, func(o Outcome) bool { return true })
		fmt.Fprintf(&b, "%-22s %-16s", m, cellString(overall))
		for _, t := range []nlq.QueryType{nlq.Match, nlq.Comparison, nlq.Ranking, nlq.Aggregation} {
			fmt.Fprintf(&b, " %-16s", cellString(r.typeCell(m, t)))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table2 renders the paper's Table 2: accuracy and ET by Knowledge vs
// Reasoning category.
func (r *Report) Table2() string {
	var b strings.Builder
	b.WriteString("Table 2: TAG benchmark results by Knowledge vs Reasoning queries\n")
	fmt.Fprintf(&b, "%-22s %-18s %-18s\n", "Method", "Knowledge", "Reasoning")
	fmt.Fprintf(&b, "%-22s %-18s %-18s\n", "", "EM     ET(s)", "EM     ET(s)")
	b.WriteString(strings.Repeat("-", 60) + "\n")
	for _, m := range r.Methods {
		k := r.CellFor(m, func(o Outcome) bool { return o.Category == nlq.Knowledge })
		re := r.CellFor(m, func(o Outcome) bool { return o.Category == nlq.Reasoning })
		fmt.Fprintf(&b, "%-22s %-18s %-18s\n", m, cellString(k), cellString(re))
	}
	return b.String()
}

// SpeedupLine reports hand-written TAG's latency advantage over the
// slowest baseline — the paper's "up to 3.1× lower execution time" claim.
func (r *Report) SpeedupLine() string {
	tag := r.CellFor("Hand-written TAG", func(Outcome) bool { return true })
	worstName, worst := "", 0.0
	for _, m := range r.Methods {
		if m == "Hand-written TAG" {
			continue
		}
		c := r.CellFor(m, func(Outcome) bool { return true })
		if c.Seconds > worst {
			worst, worstName = c.Seconds, m
		}
	}
	if tag.Seconds <= 0 || worst <= 0 {
		return ""
	}
	return fmt.Sprintf("Hand-written TAG mean ET %.2fs; %.1fx lower than %s (%.2fs)",
		tag.Seconds, worst/tag.Seconds, worstName, worst)
}

// CoverageSummary reports mean aggregation-answer fact coverage per method
// (this reproduction's quantitative extension for aggregation queries).
func (r *Report) CoverageSummary() string {
	var b strings.Builder
	b.WriteString("Aggregation fact coverage (extension; the paper scores aggregation qualitatively)\n")
	for _, m := range r.Methods {
		var sum float64
		n := 0
		for _, o := range r.Outcomes {
			if o.Method == m && o.Type == nlq.Aggregation {
				sum += o.Coverage
				n++
			}
		}
		if n > 0 {
			fmt.Fprintf(&b, "  %-22s %.2f\n", m, sum/float64(n))
		}
	}
	return b.String()
}

func cellString(c Cell) string {
	if c.N == 0 {
		return "-"
	}
	if c.Exact < 0 {
		return fmt.Sprintf("N/A    %5.2f", c.Seconds)
	}
	return fmt.Sprintf("%.2f   %5.2f", c.Exact, c.Seconds)
}

// Figure2 reproduces the paper's qualitative comparison: the answers of
// RAG, Text2SQL + LM and hand-written TAG on the Sepang aggregation query.
func Figure2(ctx context.Context, envs map[string]*Env, profile llm.Profile) (string, error) {
	var sepang *tagbench.Query
	for _, q := range tagbench.Queries() {
		if q.ID == "AK-01" {
			sepang = q
			break
		}
	}
	if sepang == nil {
		return "", fmt.Errorf("core: Sepang query (AK-01) missing from benchmark")
	}
	w := world.Default()
	newModel := func() *llm.SimLM {
		return llm.NewSimLM(w, profile, llm.NewClock(), llm.DefaultCostModel())
	}
	methods := []Method{
		&RAG{Model: newModel(), TopK: 10},
		&Text2SQLLM{Model: newModel()},
		&HandwrittenTAG{Model: newModel()},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — Query: %s\n\n", sepang.NL)
	for _, m := range methods {
		ans, err := m.Answer(ctx, envs[sepang.Spec.Domain], sepang)
		fmt.Fprintf(&b, "== %s ==\n", m.Name())
		switch {
		case err != nil:
			fmt.Fprintf(&b, "(failed: %v)\n\n", err)
		default:
			fmt.Fprintf(&b, "%s\n\n", ans.Text)
		}
	}
	return b.String(), nil
}

// UsageTable renders each method's LM inference traffic: single calls,
// batched calls, prompts served through batches, and token volumes. It
// makes §4.3's efficiency mechanism visible: TAG issues few batched calls
// with many prompts each; the baselines issue sequential single calls.
func (r *Report) UsageTable() string {
	var b strings.Builder
	b.WriteString("LM usage per method (full benchmark run)\n")
	fmt.Fprintf(&b, "%-22s %8s %8s %10s %12s %12s\n",
		"Method", "calls", "batches", "batched", "prompt_tok", "output_tok")
	b.WriteString(strings.Repeat("-", 78) + "\n")
	for _, m := range r.Methods {
		u, ok := r.Usage[m]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-22s %8d %8d %10d %12d %12d\n",
			m, u.Calls, u.BatchCalls, u.BatchedItems, u.PromptTokens, u.OutputTokens)
	}
	return b.String()
}

// SortOutcomes orders outcomes by query then method (stable output for
// golden tests and reports).
func (r *Report) SortOutcomes() {
	sort.SliceStable(r.Outcomes, func(i, j int) bool {
		if r.Outcomes[i].QueryID != r.Outcomes[j].QueryID {
			return r.Outcomes[i].QueryID < r.Outcomes[j].QueryID
		}
		return r.Outcomes[i].Method < r.Outcomes[j].Method
	})
}
