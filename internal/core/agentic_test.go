package core

import (
	"context"
	"strings"
	"testing"

	"tag/internal/llm"
	"tag/internal/nlq"
	"tag/internal/world"
)

func TestDropLastConjunct(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{
			"SELECT a FROM t WHERE x = 1 AND y = 2 ORDER BY a DESC LIMIT 1",
			"SELECT a FROM t WHERE x = 1 ORDER BY a DESC LIMIT 1",
			true,
		},
		{
			"SELECT a FROM t WHERE x = 1",
			"SELECT a FROM t",
			true,
		},
		{
			"SELECT a FROM t WHERE x = 1 LIMIT 3",
			"SELECT a FROM t LIMIT 3",
			true,
		},
		{"SELECT a FROM t", "", false},
	}
	for _, c := range cases {
		got, ok := dropLastConjunct(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("dropLastConjunct(%q) = %q,%v; want %q,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestAgenticRepairsFailedSQL(t *testing.T) {
	env := envsForTest(t)["european_football_2"]
	// A model whose first synthesis is broken: wrap the oracle and corrupt
	// the first Text2SQL output.
	broken := &corruptFirstSQL{inner: oracleLM()}
	m := &AgenticTAG{Model: broken, MaxHops: 3}
	q := queryByID(t, "CK-01")
	ans, trace, err := m.AnswerTraced(context.Background(), env, q)
	if err != nil {
		t.Fatalf("agentic should recover: %v (trace %v)", err, trace.Hops)
	}
	if len(ans.Values) != 1 {
		t.Fatalf("answer = %+v", ans)
	}
	if len(trace.Hops) < 2 {
		t.Errorf("expected repair hops, trace = %v", trace.Hops)
	}
}

// corruptFirstSQL breaks the first query-synthesis completion, forcing the
// agentic loop to repair or fall back.
type corruptFirstSQL struct {
	inner *llm.SimLM
	done  bool
}

func (c *corruptFirstSQL) Name() string       { return "corrupt-" + c.inner.Name() }
func (c *corruptFirstSQL) ContextWindow() int { return c.inner.ContextWindow() }

func (c *corruptFirstSQL) Complete(ctx context.Context, prompt string) (string, error) {
	out, err := c.inner.Complete(ctx, prompt)
	if err == nil && !c.done && strings.HasPrefix(out, "SELECT") {
		c.done = true
		return out + " AND no_such_column = 1", nil
	}
	return out, err
}

func (c *corruptFirstSQL) CompleteBatch(ctx context.Context, prompts []string) ([]string, []error) {
	return c.inner.CompleteBatch(ctx, prompts)
}

func TestAgenticFallsBackToHandwritten(t *testing.T) {
	env := envsForTest(t)["codebase_community"]
	// emptyAnswers forces pipeline answers to be empty lists so the loop
	// reaches the hand-written fallback.
	m := &AgenticTAG{Model: &emptyListGen{inner: oracleLM()}, MaxHops: 3}
	q := queryByID(t, "CR-01")
	ans, trace, err := m.AnswerTraced(context.Background(), env, q)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	found := false
	for _, h := range trace.Hops {
		if h == "handwritten-fallback" {
			found = true
		}
	}
	if !found {
		t.Errorf("trace = %v, want handwritten-fallback", trace.Hops)
	}
	if len(ans.Values) != 1 || ans.Values[0] != "3" {
		t.Errorf("fallback answer = %v, want [3]", ans.Values)
	}
}

// emptyListGen blanks answer-generation outputs while leaving other heads
// intact.
type emptyListGen struct {
	inner *llm.SimLM
}

func (c *emptyListGen) Name() string       { return c.inner.Name() }
func (c *emptyListGen) ContextWindow() int { return c.inner.ContextWindow() }

func (c *emptyListGen) Complete(ctx context.Context, prompt string) (string, error) {
	out, err := c.inner.Complete(ctx, prompt)
	if err == nil && strings.HasPrefix(prompt, "You will be given a list of data points") {
		return "[]", nil
	}
	return out, err
}

func (c *emptyListGen) CompleteBatch(ctx context.Context, prompts []string) ([]string, []error) {
	return c.inner.CompleteBatch(ctx, prompts)
}

func TestAgenticBeatsPlainPipeline(t *testing.T) {
	// Over the full benchmark with the calibrated profile, the agentic
	// wrapper should never do worse than the plain auto-syn pipeline.
	envs := envsForTest(t)
	w := world.Default()
	plainModel := llm.NewSimLM(w, llm.DefaultProfile(), llm.NewClock(), llm.DefaultCostModel())
	agenticModel := llm.NewSimLM(w, llm.DefaultProfile(), llm.NewClock(), llm.DefaultCostModel())
	plain := &TAGPipelineMethod{Pipeline: Pipeline{Model: plainModel, UseLMUDFs: true}}
	agentic := &AgenticTAG{Model: agenticModel, MaxHops: 3, UseLMUDFs: true}
	rep, err := RunBenchmark(context.Background(), envs, []Method{plain, agentic}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pc := rep.CellFor(plain.Name(), func(o Outcome) bool { return o.Type != nlq.Aggregation })
	ac := rep.CellFor(agentic.Name(), func(o Outcome) bool { return o.Type != nlq.Aggregation })
	if ac.Exact < pc.Exact {
		t.Errorf("agentic %.2f should be >= plain pipeline %.2f", ac.Exact, pc.Exact)
	}
	t.Logf("plain pipeline %.2f vs agentic %.2f (TAG hand-written: 0.58)", pc.Exact, ac.Exact)
}

func TestAgenticOnBenchmarkQuery(t *testing.T) {
	env := envsForTest(t)["formula_1"]
	m := &AgenticTAG{Model: oracleLM(), MaxHops: 2}
	q := queryByID(t, "AK-01")
	ans, _, err := m.AnswerTraced(context.Background(), env, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.Text, "1999") {
		t.Errorf("agentic Sepang answer: %s", ans.Text)
	}
}
