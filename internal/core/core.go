package core
