package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tag/internal/llm"
	"tag/internal/nlq"
	"tag/internal/tagbench"
)

// ---------------------------------------------------------------------------
// Text2SQL

// Text2SQL is the vanilla baseline: the LM generates SQL from the BIRD-
// style schema prompt, and the executed result is taken verbatim as the
// answer (§4.2). Reasoning clauses are inexpressible, and knowledge
// clauses depend on the model's parametric beliefs.
type Text2SQL struct {
	Model llm.Model
}

// Name implements Method.
func (m *Text2SQL) Name() string { return "Text2SQL" }

// Answer implements Method.
func (m *Text2SQL) Answer(ctx context.Context, env *Env, q *tagbench.Query) (*Answer, error) {
	sql, err := m.Model.Complete(ctx, llm.Text2SQLPrompt(env.Schema, q.NL))
	if err != nil {
		return nil, err
	}
	res, err := env.DB.QueryContext(ctx, sql)
	if err != nil {
		return nil, fmt.Errorf("text2sql: generated SQL failed: %w", err)
	}
	return resultToAnswer(res), nil
}

// ---------------------------------------------------------------------------
// RAG

// RAG is the retrieval-augmented baseline: row-level embeddings into a
// flat vector index, top-K retrieval, one LM generation call with the rows
// in context (§4.2).
type RAG struct {
	Model llm.Model
	// TopK rows fed to the model (the paper uses 10).
	TopK int
}

// Name implements Method.
func (m *RAG) Name() string { return "RAG" }

// Answer implements Method.
func (m *RAG) Answer(ctx context.Context, env *Env, q *tagbench.Query) (*Answer, error) {
	k := m.TopK
	if k <= 0 {
		k = 10
	}
	points, err := env.retrieve(q.NL, k)
	if err != nil {
		return nil, err
	}
	return generateFromPoints(ctx, m.Model, points, q)
}

// generateFromPoints runs the answer-generation step shared by the
// retrieval baselines: the aggregation prompt for aggregation queries, the
// list-format prompt otherwise.
func generateFromPoints(ctx context.Context, model llm.Model, points []llm.DataPoint, q *tagbench.Query) (*Answer, error) {
	if q.Spec.Type == nlq.Aggregation {
		out, err := model.Complete(ctx, llm.AggAnswerPrompt(points, nil, q.NL))
		if err != nil {
			return nil, err
		}
		return &Answer{Text: out}, nil
	}
	out, err := model.Complete(ctx, llm.AnswerPrompt(points, nil, q.NL))
	if err != nil {
		return nil, err
	}
	return parseListAnswer(out), nil
}

// ---------------------------------------------------------------------------
// Retrieval + LM Rank

// RetrievalLMRank extends RAG with an LM reranking pass (after STaRK): a
// wider retrieval whose rows the LM scores in [0,1]; the top-K survivors
// go in context.
type RetrievalLMRank struct {
	Model llm.Model
	// Candidates retrieved before reranking (default 30).
	Candidates int
	// TopK rows kept after reranking (default 10).
	TopK int
}

// Name implements Method.
func (m *RetrievalLMRank) Name() string { return "Retrieval + LM Rank" }

// Answer implements Method.
func (m *RetrievalLMRank) Answer(ctx context.Context, env *Env, q *tagbench.Query) (*Answer, error) {
	cand := m.Candidates
	if cand <= 0 {
		cand = 30
	}
	k := m.TopK
	if k <= 0 {
		k = 10
	}
	points, err := env.retrieve(q.NL, cand)
	if err != nil {
		return nil, err
	}
	prompts := make([]string, len(points))
	for i, p := range points {
		prompts[i] = llm.RerankPrompt(p, nil, q.NL)
	}
	outs, errs := m.Model.CompleteBatch(ctx, prompts)
	type scored struct {
		p llm.DataPoint
		s float64
	}
	ranked := make([]scored, 0, len(points))
	for i, out := range outs {
		if errs != nil && errs[i] != nil {
			continue
		}
		s, err := strconv.ParseFloat(strings.TrimSpace(out), 64)
		if err != nil {
			s = 0
		}
		ranked = append(ranked, scored{p: points[i], s: s})
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].s > ranked[j].s })
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	kept := make([]llm.DataPoint, len(ranked))
	for i, r := range ranked {
		kept[i] = r.p
	}
	return generateFromPoints(ctx, m.Model, kept, q)
}

// ---------------------------------------------------------------------------
// Text2SQL + LM

// Text2SQLLM is the stronger baseline: the LM first writes *retrieval* SQL
// for relevant rows, then answers from those rows in context (§4.2). Large
// retrievals overflow the context window — the failure the paper reports
// on match-based and comparison queries.
type Text2SQLLM struct {
	Model llm.Model
}

// Name implements Method.
func (m *Text2SQLLM) Name() string { return "Text2SQL + LM" }

// Answer implements Method.
func (m *Text2SQLLM) Answer(ctx context.Context, env *Env, q *tagbench.Query) (*Answer, error) {
	sql, err := m.Model.Complete(ctx, llm.Text2SQLRetrievalPrompt(env.Schema, q.NL))
	if err != nil {
		return nil, err
	}
	res, err := env.DB.QueryContext(ctx, sql)
	if err != nil {
		return nil, fmt.Errorf("text2sql+lm: retrieval SQL failed: %w", err)
	}
	points := make([]llm.DataPoint, len(res.Rows))
	for i, row := range res.Rows {
		dp := make(llm.DataPoint, len(res.Columns))
		for ci, col := range res.Columns {
			dp[col] = row[ci].AsText()
		}
		points[i] = dp
	}
	a, err := generateFromPoints(ctx, m.Model, points, q)
	if err != nil {
		// Context-length failures degrade to a parametric-knowledge-only
		// answer for aggregation queries (Figure 2's middle panel); for
		// exact-match queries they are simply wrong.
		if q.Spec.Type == nlq.Aggregation {
			out, ferr := m.Model.Complete(ctx, q.NL)
			if ferr != nil {
				return nil, err
			}
			return &Answer{Text: out}, nil
		}
		return nil, err
	}
	return a, nil
}
