package llm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// flakyModel fails the first failN calls of each kind with failErr, then
// succeeds. It records per-attempt contexts so tests can assert timeout
// wiring.
type flakyModel struct {
	failN   int
	failErr error

	calls      int
	batchCalls int
	sawTimeout bool
	block      bool // when set, Complete blocks until the attempt ctx dies
}

func (f *flakyModel) Name() string       { return "flaky" }
func (f *flakyModel) ContextWindow() int { return 1 << 20 }

func (f *flakyModel) Complete(ctx context.Context, prompt string) (string, error) {
	f.calls++
	if _, ok := ctx.Deadline(); ok {
		f.sawTimeout = true
	}
	if f.block {
		<-ctx.Done()
		return "", ctx.Err()
	}
	if f.calls <= f.failN {
		return "", f.failErr
	}
	return "ok:" + prompt, nil
}

func (f *flakyModel) CompleteBatch(ctx context.Context, prompts []string) ([]string, []error) {
	f.batchCalls++
	outs := make([]string, len(prompts))
	var errs []error
	for i, p := range prompts {
		if f.batchCalls <= f.failN && p == "bad" {
			if errs == nil {
				errs = make([]error, len(prompts))
			}
			errs[i] = f.failErr
			continue
		}
		outs[i] = "ok:" + p
	}
	return outs, errs
}

// noSleep removes real waiting from the retry loop and records the
// requested delays.
func noSleep(delays *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *delays = append(*delays, d) }
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	var delays []time.Duration
	inner := &flakyModel{failN: 2, failErr: Transient(errors.New("conn reset"))}
	m := WithRetry(inner, RetryOptions{MaxAttempts: 3, sleep: noSleep(&delays), jitter: func(d time.Duration) time.Duration { return d }})
	out, err := m.Complete(context.Background(), "hello")
	if err != nil || out != "ok:hello" {
		t.Fatalf("Complete = %q, %v", out, err)
	}
	if inner.calls != 3 {
		t.Errorf("inner calls = %d, want 3", inner.calls)
	}
	if s := m.Stats(); s.Retries != 2 || s.GiveUps != 0 {
		t.Errorf("stats = %+v, want 2 retries, 0 give-ups", s)
	}
	// Exponential backoff: 50ms then 100ms (jitter disabled by the hook).
	if len(delays) != 2 || delays[0] != 50*time.Millisecond || delays[1] != 100*time.Millisecond {
		t.Errorf("delays = %v, want [50ms 100ms]", delays)
	}
}

func TestRetryGivesUpAfterBudget(t *testing.T) {
	var delays []time.Duration
	cause := errors.New("still down")
	inner := &flakyModel{failN: 99, failErr: Transient(cause)}
	m := WithRetry(inner, RetryOptions{MaxAttempts: 3, sleep: noSleep(&delays)})
	_, err := m.Complete(context.Background(), "x")
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want wrapped %v", err, cause)
	}
	if inner.calls != 3 {
		t.Errorf("inner calls = %d, want 3", inner.calls)
	}
	if s := m.Stats(); s.Retries != 2 || s.GiveUps != 1 {
		t.Errorf("stats = %+v, want 2 retries, 1 give-up", s)
	}
}

func TestRetryDoesNotRetryContextLength(t *testing.T) {
	inner := &flakyModel{failN: 99, failErr: ErrContextLength}
	m := WithRetry(inner, RetryOptions{MaxAttempts: 5, sleep: func(time.Duration) {}})
	_, err := m.Complete(context.Background(), "x")
	if !errors.Is(err, ErrContextLength) {
		t.Fatalf("err = %v, want ErrContextLength", err)
	}
	if inner.calls != 1 {
		t.Errorf("inner calls = %d, want 1 (deterministic failure, no retry)", inner.calls)
	}
}

func TestRetryHonorsCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	inner := &flakyModel{failN: 99, failErr: Transient(errors.New("down"))}
	m := WithRetry(inner, RetryOptions{MaxAttempts: 10, sleep: func(time.Duration) { cancel() }})
	_, err := m.Complete(ctx, "x")
	if err == nil {
		t.Fatal("expected error after cancellation")
	}
	if inner.calls != 1 {
		t.Errorf("inner calls = %d, want 1 (cancelled during first backoff)", inner.calls)
	}
}

func TestRetryPerCallTimeoutIsTransient(t *testing.T) {
	// The inner model hangs; the per-attempt timeout abandons each attempt
	// and the loop retries while the caller's context stays alive.
	inner := &flakyModel{block: true}
	m := WithRetry(inner, RetryOptions{
		MaxAttempts: 3,
		CallTimeout: time.Millisecond,
		sleep:       func(time.Duration) {},
	})
	_, err := m.Complete(context.Background(), "x")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded after exhausted retries", err)
	}
	if inner.calls != 3 {
		t.Errorf("inner calls = %d, want 3 (each attempt timed out, then retried)", inner.calls)
	}
	if !inner.sawTimeout {
		t.Error("inner never saw a per-attempt deadline")
	}
	if s := m.Stats(); s.Retries != 2 || s.GiveUps != 1 {
		t.Errorf("stats = %+v, want 2 retries, 1 give-up", s)
	}
}

func TestRetryBatchRetriesOnlyFailedItems(t *testing.T) {
	inner := &flakyModel{failN: 1, failErr: Transient(errors.New("blip"))}
	m := WithRetry(inner, RetryOptions{MaxAttempts: 3, sleep: func(time.Duration) {}})
	outs, errs := m.CompleteBatch(context.Background(), []string{"a", "bad", "c"})
	if errs != nil {
		t.Fatalf("errs = %v, want all recovered", errs)
	}
	if outs[0] != "ok:a" || outs[1] != "ok:bad" || outs[2] != "ok:c" {
		t.Fatalf("outs = %v", outs)
	}
	if inner.batchCalls != 2 {
		t.Errorf("batch calls = %d, want 2 (initial + one retry of the failed item)", inner.batchCalls)
	}
	if s := m.Stats(); s.Retries != 1 {
		t.Errorf("stats = %+v, want 1 retry", s)
	}
}

func TestRetryBatchDoesNotRetryContextLength(t *testing.T) {
	inner := &flakyModel{failN: 99, failErr: ErrContextLength}
	m := WithRetry(inner, RetryOptions{MaxAttempts: 5, sleep: func(time.Duration) {}})
	_, errs := m.CompleteBatch(context.Background(), []string{"a", "bad"})
	if errs == nil || !errors.Is(errs[1], ErrContextLength) {
		t.Fatalf("errs = %v, want ErrContextLength at index 1", errs)
	}
	if inner.batchCalls != 1 {
		t.Errorf("batch calls = %d, want 1", inner.batchCalls)
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrContextLength, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{errors.New("conn reset"), true},
		{Transient(errors.New("x")), true},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestAsSimLMUnwraps(t *testing.T) {
	if AsSimLM(&flakyModel{}) != nil {
		t.Error("AsSimLM on a non-SimLM model should be nil")
	}
	var m Model = WithRetry(&flakyModel{}, RetryOptions{})
	if AsSimLM(m) != nil {
		t.Error("AsSimLM through a wrapper over non-SimLM should be nil")
	}
}

func TestRetryPassesThroughSuccess(t *testing.T) {
	inner := &flakyModel{}
	m := WithRetry(inner, DefaultRetryOptions())
	if m.Name() != "flaky" || m.ContextWindow() != 1<<20 {
		t.Error("identity methods not delegated")
	}
	out, err := m.Complete(context.Background(), "p")
	if err != nil || out != "ok:p" {
		t.Fatalf("Complete = %q, %v", out, err)
	}
	if s := m.Stats(); s.Retries != 0 || s.GiveUps != 0 {
		t.Errorf("stats = %+v, want clean", s)
	}
}
