package llm

import (
	"context"
	"fmt"
	"strings"

	"tag/internal/world"
)

// SimLM is the deterministic simulated language model. It recognises the
// prompt formats in prompts.go and routes each to a task head:
//
//	Text2SQL prompt      → query synthesis (text2sql.go)
//	answer prompts       → in-context question answering (answer.go)
//	rerank prompt        → relevance scoring (answer.go)
//	semantic-op prompts  → claim judgement / comparison / summarisation
//	                       (semantic.go)
//	anything else        → a generic freeform reply
//
// Every call charges the virtual clock through the cost model; batched
// calls share overhead and decode time, which is what gives semantic-
// operator pipelines their latency edge.
type SimLM struct {
	statsRecorder
	profile Profile
	view    *View
	clock   *Clock
	cost    CostModel

	// SQLCapabilities controls whether query synthesis may emit LM UDFs
	// (LLM_FILTER/LLM_SCORE) for reasoning clauses — the "database API
	// executes LM UDFs within SQL" design point of §2.1. Off for the plain
	// Text2SQL baselines.
	SQLCapabilities struct {
		LMUDFs bool
	}
}

// NewSimLM builds a simulated model over a world with the given
// fallibility profile, clock and cost model. A nil clock gets a private
// one; a zero cost model gets the default.
func NewSimLM(w *world.World, p Profile, clock *Clock, cost CostModel) *SimLM {
	if clock == nil {
		clock = NewClock()
	}
	if cost.PrefillTPS == 0 {
		cost = DefaultCostModel()
	}
	return &SimLM{
		profile: p,
		view:    NewView(w, p),
		clock:   clock,
		cost:    cost,
	}
}

// Name implements Model.
func (m *SimLM) Name() string { return m.profile.Name }

// ContextWindow implements Model.
func (m *SimLM) ContextWindow() int { return m.profile.ContextWindow }

// Clock exposes the virtual clock for latency measurement.
func (m *SimLM) Clock() *Clock { return m.clock }

// View exposes the model's knowledge view (used by ablation tests).
func (m *SimLM) View() *View { return m.view }

// Profile returns the fallibility profile.
func (m *SimLM) Profile() Profile { return m.profile }

// Complete implements Model: route, generate, charge the clock.
func (m *SimLM) Complete(_ context.Context, prompt string) (string, error) {
	pt := CountTokens(prompt)
	if pt > m.profile.ContextWindow {
		// The serving engine processes (and bills) a full window of prompt
		// tokens before rejecting — context-length failures are slow, which
		// is why the paper's Text2SQL + LM baseline is the slowest method.
		m.clock.Advance(m.cost.Overhead + float64(m.profile.ContextWindow)/m.cost.PrefillTPS)
		return "", ErrContextLength
	}
	out, err := m.route(prompt)
	ot := CountTokens(out)
	if ot > m.profile.MaxOutputTokens {
		out = TruncateToTokens(out, m.profile.MaxOutputTokens)
		ot = m.profile.MaxOutputTokens
	}
	m.clock.Advance(m.cost.CallSeconds(pt, ot))
	m.recordCall(pt, ot)
	return out, err
}

// CompleteBatch implements Model with vLLM-style batch amortisation.
func (m *SimLM) CompleteBatch(_ context.Context, prompts []string) ([]string, []error) {
	outs := make([]string, len(prompts))
	var errs []error
	promptToks := make([]int, 0, len(prompts))
	outToks := make([]int, 0, len(prompts))
	totalPT, totalOT := 0, 0
	for i, p := range prompts {
		pt := CountTokens(p)
		if pt > m.profile.ContextWindow {
			if errs == nil {
				errs = make([]error, len(prompts))
			}
			errs[i] = ErrContextLength
			promptToks = append(promptToks, m.profile.ContextWindow)
			outToks = append(outToks, 0)
			continue
		}
		out, err := m.route(p)
		if err != nil {
			if errs == nil {
				errs = make([]error, len(prompts))
			}
			errs[i] = err
		}
		ot := CountTokens(out)
		if ot > m.profile.MaxOutputTokens {
			out = TruncateToTokens(out, m.profile.MaxOutputTokens)
			ot = m.profile.MaxOutputTokens
		}
		outs[i] = out
		promptToks = append(promptToks, pt)
		outToks = append(outToks, ot)
		totalPT += pt
		totalOT += ot
	}
	m.clock.Advance(m.cost.BatchSeconds(promptToks, outToks))
	m.recordBatch(len(prompts), totalPT, totalOT)
	return outs, errs
}

// route dispatches a prompt to its task head.
func (m *SimLM) route(prompt string) (string, error) {
	switch {
	case strings.Contains(prompt, markText2SQL), strings.Contains(prompt, markText2SQLRetrieve):
		return m.text2SQL(prompt)
	case strings.HasPrefix(prompt, markAnswerList):
		return m.answerList(prompt)
	case strings.HasPrefix(prompt, markAnswerAgg):
		return m.answerAggregation(prompt)
	case strings.HasPrefix(prompt, markRerank):
		return m.rerank(prompt)
	case strings.HasPrefix(prompt, markSemFilter):
		return m.semFilter(prompt)
	case strings.HasPrefix(prompt, markSemCompare):
		return m.semCompare(prompt)
	case strings.HasPrefix(prompt, markSemAgg):
		return m.semAggregate(prompt)
	case strings.HasPrefix(prompt, markSemMap):
		return m.semMap(prompt)
	case strings.HasPrefix(prompt, markFactHeight):
		return m.factHeight(prompt)
	default:
		return m.freeform(prompt)
	}
}

// factHeight answers a direct height lookup from parametric knowledge,
// hallucinating a plausible value when the athlete is not recalled (the
// model never says "I don't know" to a direct numeric question).
func (m *SimLM) factHeight(prompt string) (string, error) {
	person := strings.TrimPrefix(prompt, markFactHeight)
	person, _, _ = strings.Cut(person, " in centimeters")
	h, ok := m.view.AthleteHeightCM(person)
	if !ok {
		h = 165 + float64(int(m.profile.noise("height_guess", person)*25))
	}
	return fmtFloat(h), nil
}

// fmtFloat renders a height without exponent noise.
func fmtFloat(f float64) string {
	if f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%.1f", f)
}

// freeform handles prompts outside the known task formats: the model
// responds from parametric knowledge only (this is what the Text2SQL + LM
// baseline degenerates to when its SQL returned nothing, per Figure 2).
func (m *SimLM) freeform(prompt string) (string, error) {
	low := strings.ToLower(prompt)
	if strings.Contains(low, "sepang") {
		// Figure 2, middle panel: parametric-knowledge-only answer.
		if c, ok := m.view.Circuit("Sepang International Circuit"); ok {
			return "The data points provided do not contain specific information about the races held on Sepang International Circuit. However, based on general knowledge, the Sepang International Circuit is a racing circuit in " +
				c.City + ", " + c.Country + ", and it has hosted the Malaysian Grand Prix, a Formula One World Championship event, from 1999 to 2017.", nil
		}
	}
	return "I do not have enough information to answer that.", nil
}
