package llm

import (
	"math/rand"
	"testing"
)

// Property tests over the serving cost model: the latency conclusions of
// Table 1 rest on these monotonicity and amortisation facts.

func TestCallSecondsMonotone(t *testing.T) {
	m := DefaultCostModel()
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 2000; i++ {
		p, o := r.Intn(5000), r.Intn(500)
		dp, do := r.Intn(1000), r.Intn(100)
		if m.CallSeconds(p+dp, o) < m.CallSeconds(p, o) {
			t.Fatal("more prompt tokens must not be cheaper")
		}
		if m.CallSeconds(p, o+do) < m.CallSeconds(p, o) {
			t.Fatal("more output tokens must not be cheaper")
		}
	}
}

func TestBatchNeverWorseThanSequential(t *testing.T) {
	m := DefaultCostModel()
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(60)
		prompts := make([]int, n)
		outs := make([]int, n)
		sequential := 0.0
		for i := range prompts {
			prompts[i] = 10 + r.Intn(200)
			outs[i] = 1 + r.Intn(30)
			sequential += m.CallSeconds(prompts[i], outs[i])
		}
		batched := m.BatchSeconds(prompts, outs)
		if batched > sequential+1e-9 {
			t.Fatalf("batch of %d costs %.3f > sequential %.3f", n, batched, sequential)
		}
	}
}

func TestBatchOfOneEqualsSingleCall(t *testing.T) {
	m := DefaultCostModel()
	for _, p := range []int{10, 100, 1000} {
		for _, o := range []int{1, 50} {
			single := m.CallSeconds(p, o)
			batch := m.BatchSeconds([]int{p}, []int{o})
			if diff := single - batch; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("batch-of-one %.4f != single call %.4f (p=%d o=%d)", batch, single, p, o)
			}
		}
	}
}

func TestBatchAmortisationImprovesWithSize(t *testing.T) {
	m := DefaultCostModel()
	perItem := func(n int) float64 {
		prompts := make([]int, n)
		outs := make([]int, n)
		for i := range prompts {
			prompts[i] = 40
			outs[i] = 2
		}
		return m.BatchSeconds(prompts, outs) / float64(n)
	}
	last := perItem(1)
	for _, n := range []int{2, 5, 10, 50, 200} {
		cur := perItem(n)
		if cur >= last {
			t.Fatalf("per-item cost at n=%d (%.4f) should fall below previous (%.4f)", n, cur, last)
		}
		last = cur
	}
}

func TestSimLMClockMatchesCostModel(t *testing.T) {
	// The clock advance of a Complete call equals CallSeconds of its
	// actual token counts.
	m := newTestLM(OracleProfile())
	prompt := SemFilterPrompt("Oakland is a city in the Bay Area region")
	before := m.Clock().Now()
	out, err := m.Complete(nil, prompt) //nolint:staticcheck // ctx unused by SimLM
	if err != nil {
		t.Fatal(err)
	}
	got := m.Clock().Now() - before
	want := DefaultCostModel().CallSeconds(CountTokens(prompt), CountTokens(out))
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("clock advance %.6f != cost model %.6f", got, want)
	}
}
