package llm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tag/internal/nlq"
)

// This file implements SimLM's in-context question answering head — the
// generation step of the RAG and Text2SQL + LM baselines. The model gets
// serialized rows plus the natural-language question and must do all
// knowledge application and exact computation itself. Its weaknesses are
// the paper's: it only sees the rows it was given (retrieval gaps are
// fatal), and its arithmetic over many rows slips with probability growing
// in the row count.

// answerList handles the list-format prompt (match/comparison/ranking).
func (m *SimLM) answerList(prompt string) (string, error) {
	points, question, ok := parseAnswerPrompt(prompt)
	if !ok {
		return "[]", nil
	}
	spec, err := nlq.Parse(question)
	if err != nil {
		return "[]", nil
	}
	rows := m.applyInContext(spec, points)

	switch spec.Type {
	case nlq.Comparison:
		// When the provided table is already an aggregate (a single
		// COUNT(*) row — the TAG pipeline's exec output), read the value
		// instead of counting data points.
		if len(points) == 1 {
			for k, v := range points[0] {
				if strings.Contains(strings.ToUpper(k), "COUNT") {
					if _, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
						return "[" + strings.TrimSpace(v) + "]", nil
					}
				}
			}
		}
		n := len(rows)
		if m.profile.arithmeticSlips("count:"+question, len(points)) {
			// Miscount: magnitude grows with how much data was in context.
			delta := 1 + len(points)/12
			if m.profile.noise("countdir", question) < 0.5 {
				n -= delta
			} else {
				n += delta
			}
			if n < 0 {
				n = 0
			}
		}
		return "[" + strconv.Itoa(n) + "]", nil

	case nlq.Match:
		rows = m.orderRows(spec, rows)
		if len(rows) == 0 {
			return "[]", nil
		}
		limit := spec.Limit
		if limit <= 0 {
			limit = 1
		}
		if limit > len(rows) {
			limit = len(rows)
		}
		return m.renderTargets(spec, rows[:limit], question)

	case nlq.Ranking:
		rows = m.orderRows(spec, rows)
		k := spec.Limit
		if k <= 0 || k > len(rows) {
			k = len(rows)
		}
		rows = rows[:k]
		if spec.Aug != nil {
			if trait := traitChannel(spec.Aug.Kind); trait != "" {
				rows = m.sortByTrait(spec, rows, trait)
				if spec.Aug.K > 0 && spec.Aug.K < len(rows) {
					rows = rows[:spec.Aug.K]
				}
			}
		}
		return m.renderTargets(spec, rows, question)

	default:
		return "[]", nil
	}
}

// answerAggregation handles the free-form aggregation prompt.
func (m *SimLM) answerAggregation(prompt string) (string, error) {
	points, question, ok := parseAnswerPrompt(prompt)
	if !ok {
		return "I cannot answer from the provided data.", nil
	}
	spec, err := nlq.Parse(question)
	if err != nil {
		return m.freeform(prompt)
	}
	rows := m.applyInContext(spec, points)
	if len(rows) == 0 {
		return m.freeform(prompt)
	}
	if spec.Aug != nil && spec.Aug.Kind == nlq.AugCircuitInfo {
		return m.summarizeRaces(spec.Aug.Arg, dataPointStrings(rows)), nil
	}
	col := bareCol(spec.Target)
	var items []string
	for _, r := range rows {
		if v, ok := r[col]; ok {
			items = append(items, v)
		} else {
			items = append(items, flattenPoint(r))
		}
	}
	return m.composeSummary("the provided data points", items), nil
}

// applyInContext filters the provided points by the spec's relational
// filters (where the needed columns are visible) and its augment, using
// the model's noisy knowledge and trait estimation. This is "the LM doing
// the database's job", so relational predicates are also subject to slips
// on large inputs.
func (m *SimLM) applyInContext(spec *nlq.Spec, points []DataPoint) []DataPoint {
	var out []DataPoint
	for _, p := range points {
		keep := true
		for _, f := range spec.Filters {
			v, ok := p[bareCol(f.Column)]
			if !ok {
				// The column is not in context; the model cannot verify the
				// predicate and optimistically keeps the row.
				continue
			}
			if !evalFilterString(v, f) {
				keep = false
				break
			}
		}
		if keep && spec.Aug != nil && !m.augMatches(spec.Aug, p) {
			keep = false
		}
		if keep {
			out = append(out, p)
		}
	}
	return out
}

// augMatches applies a filter-style augment to one data point. Ranking
// augments (trait top-k) pass everything here; ordering happens later.
func (m *SimLM) augMatches(a *nlq.Augment, p DataPoint) bool {
	val, ok := p[bareCol(a.Column)]
	if !ok {
		return true // can't check → optimistic
	}
	switch a.Kind {
	case nlq.AugCityRegion:
		return m.view.InRegion(val, a.Arg)
	case nlq.AugCountyRegion:
		return m.view.CountyInBayArea(val)
	case nlq.AugEUCountry:
		return m.view.IsEUCountry(val)
	case nlq.AugTallerThan:
		h, okH := m.view.AthleteHeightCM(a.Arg)
		if !okH {
			h = 165 + float64(int(m.profile.noise("height_guess", a.Arg)*25))
		}
		f, err := strconv.ParseFloat(val, 64)
		return err == nil && f > h
	case nlq.AugClassic:
		return m.view.IsClassicMovie(val)
	case nlq.AugNamedAfterPerson:
		return m.view.IsNamedAfterPerson(val)
	case nlq.AugPremium:
		return m.view.IsPremiumProduct(val)
	case nlq.AugPositive:
		return m.view.Traits(val).Sentiment > 0.5
	case nlq.AugNegative:
		return m.view.Traits(val).Sentiment < 0.5
	case nlq.AugSarcastic:
		return m.view.Traits(val).Sarcasm > 0.5
	case nlq.AugTechnical:
		return m.view.Traits(val).Technicality > 0.5
	default:
		return true
	}
}

// orderRows sorts points by the spec's relational order column when it is
// visible in the data.
func (m *SimLM) orderRows(spec *nlq.Spec, rows []DataPoint) []DataPoint {
	if spec.OrderBy == "" {
		return rows
	}
	col := bareCol(spec.OrderBy)
	if len(rows) == 0 {
		return rows
	}
	if _, ok := rows[0][col]; !ok {
		return rows
	}
	sorted := append([]DataPoint(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i][col], sorted[j][col]
		fa, ea := strconv.ParseFloat(a, 64)
		fb, eb := strconv.ParseFloat(b, 64)
		var less bool
		if ea == nil && eb == nil {
			less = fa < fb
		} else {
			less = a < b
		}
		if spec.OrderDesc {
			return !less
		}
		return less
	})
	return sorted
}

// sortByTrait re-ranks points by the model's (noisy) trait estimate of the
// augment column, descending.
func (m *SimLM) sortByTrait(spec *nlq.Spec, rows []DataPoint, trait string) []DataPoint {
	col := bareCol(spec.Aug.Column)
	sorted := append([]DataPoint(nil), rows...)
	score := func(p DataPoint) float64 {
		t := m.view.Traits(p[col])
		switch trait {
		case "sarcasm":
			return t.Sarcasm
		case "technicality":
			return t.Technicality
		default:
			return t.Sentiment
		}
	}
	sort.SliceStable(sorted, func(i, j int) bool { return score(sorted[i]) > score(sorted[j]) })
	return sorted
}

// traitChannel maps ranking augments to a trait name ("" = not a trait
// ranking).
func traitChannel(k nlq.AugKind) string {
	switch k {
	case nlq.AugTopSarcastic:
		return "sarcasm"
	case nlq.AugTopTechnical:
		return "technicality"
	case nlq.AugTopPositive:
		return "sentiment"
	default:
		return ""
	}
}

// renderTargets formats the target column of the rows as the paper's
// answer list, applying the list-manipulation slip channel.
func (m *SimLM) renderTargets(spec *nlq.Spec, rows []DataPoint, question string) (string, error) {
	col := bareCol(spec.Target)
	var values []string
	var quoted []bool
	for _, r := range rows {
		v, ok := r[col]
		if !ok {
			continue
		}
		_, err := strconv.ParseFloat(v, 64)
		values = append(values, v)
		quoted = append(quoted, err != nil)
	}
	if len(values) > 1 && m.profile.arithmeticSlips("list:"+question, len(rows)) {
		// The model garbles a long list: swaps two adjacent entries.
		i := int(m.profile.noise("swap", question) * float64(len(values)-1))
		values[i], values[i+1] = values[i+1], values[i]
		quoted[i], quoted[i+1] = quoted[i+1], quoted[i]
	}
	return FormatAnswerList(values, quoted), nil
}

// rerank scores one data point's relevance to the question in [0, 1].
func (m *SimLM) rerank(prompt string) (string, error) {
	points, question, ok := parseAnswerPrompt(prompt)
	if !ok || len(points) == 0 {
		return "0.5", nil
	}
	p := points[0]
	score := 0.2 // base prior
	spec, err := nlq.Parse(question)
	if err == nil {
		matched, checked := 0, 0
		for _, f := range spec.Filters {
			v, okc := p[bareCol(f.Column)]
			if !okc {
				continue
			}
			checked++
			if evalFilterString(v, f) {
				matched++
			}
		}
		if checked > 0 {
			score = 0.15 + 0.7*float64(matched)/float64(checked)
		}
		if spec.Aug != nil && m.augMatches(spec.Aug, p) {
			score += 0.15
		}
	} else {
		// Lexical overlap fallback.
		score = lexicalOverlap(question, flattenPoint(p))
	}
	score += m.profile.signedNoise("rerank", question, flattenPoint(p)) * m.profile.ScoreNoise
	if score < 0 {
		score = 0
	}
	if score > 1 {
		score = 1
	}
	return strconv.FormatFloat(score, 'f', 2, 64), nil
}

// evalFilterString applies a relational predicate to a string cell the way
// an LM eyeballs it: numeric when both sides parse, else lexicographic.
func evalFilterString(v string, f nlq.Filter) bool {
	if f.Num {
		fv, err1 := strconv.ParseFloat(strings.TrimSpace(v), 64)
		fw, err2 := strconv.ParseFloat(f.Value, 64)
		if err1 == nil && err2 == nil {
			switch f.Op {
			case ">":
				return fv > fw
			case "<":
				return fv < fw
			case ">=":
				return fv >= fw
			case "<=":
				return fv <= fw
			case "!=":
				return fv != fw
			default:
				return fv == fw
			}
		}
	}
	switch f.Op {
	case "!=":
		return v != f.Value
	case "=":
		return v == f.Value
	case ">":
		return v > f.Value
	case "<":
		return v < f.Value
	case ">=":
		return v >= f.Value
	case "<=":
		return v <= f.Value
	default:
		return false
	}
}

// bareCol strips the table qualifier from "table.column".
func bareCol(qcol string) string {
	if i := strings.IndexByte(qcol, '.'); i >= 0 {
		return qcol[i+1:]
	}
	return qcol
}

// flattenPoint renders a data point on one line for hashing and overlap.
func flattenPoint(p DataPoint) string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s; ", k, p[k])
	}
	return b.String()
}

// dataPointStrings flattens points for the summariser.
func dataPointStrings(points []DataPoint) []string {
	out := make([]string, len(points))
	for i, p := range points {
		out[i] = flattenPoint(p)
	}
	return out
}

// lexicalOverlap is a crude Jaccard similarity over lower-cased words.
func lexicalOverlap(a, b string) float64 {
	aw := strings.Fields(strings.ToLower(a))
	bw := strings.Fields(strings.ToLower(b))
	if len(aw) == 0 || len(bw) == 0 {
		return 0
	}
	set := make(map[string]bool, len(aw))
	for _, w := range aw {
		set[w] = true
	}
	inter := 0
	for _, w := range bw {
		if set[w] {
			inter++
		}
	}
	union := len(aw) + len(bw) - inter
	return float64(inter) / float64(union)
}
