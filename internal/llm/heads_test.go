package llm

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"tag/internal/world"
)

// Additional task-head tests: retrieval-SQL synthesis, ranking and
// aggregation answers, fact lookups, and failure-mode injection.

func TestText2SQLRetrievalVariant(t *testing.T) {
	m := newTestLM(OracleProfile())
	q := "Among the players whose height is over 180, how many of them are taller than Stephen Curry?"
	sql, err := m.Complete(context.Background(), Text2SQLRetrievalPrompt("", q))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sql, "COUNT(") {
		t.Errorf("retrieval SQL must fetch rows, not aggregate:\n%s", sql)
	}
	if !strings.Contains(sql, "Player.height > 180") {
		t.Errorf("retrieval SQL should keep relational filters:\n%s", sql)
	}
	if strings.Contains(sql, "Curry") || strings.Contains(sql, "188") {
		t.Errorf("retrieval SQL must not resolve the knowledge clause:\n%s", sql)
	}
}

func TestAnswerHeadRanking(t *testing.T) {
	m := newTestLM(OracleProfile())
	points := []DataPoint{
		{"Title": "which laptop should I buy for studying", "ViewCount": "500"},
		{"Title": "eigenvalue decomposition of the covariance matrix", "ViewCount": "400"},
		{"Title": "what music do you listen to while working", "ViewCount": "300"},
	}
	q := "Of the 3 posts with the highest view count, list their title in order of most technical to least technical."
	out, err := m.Complete(context.Background(), AnswerPrompt(points, nil, q))
	if err != nil {
		t.Fatal(err)
	}
	vals := ParseAnswerList(out)
	if len(vals) != 3 || !strings.Contains(vals[0], "eigenvalue") {
		t.Errorf("ranking answer = %v", vals)
	}
}

func TestAnswerHeadAggregationSummary(t *testing.T) {
	m := newTestLM(OracleProfile())
	points := []DataPoint{
		{"Text": "an absolute masterpiece from start to finish"},
		{"Text": "still the best thing I have ever watched"},
	}
	q := "Summarize the text of the comments whose comment score is over 0."
	out, err := m.Complete(context.Background(), AggAnswerPrompt(points, nil, q))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "largely positive") {
		t.Errorf("aggregation answer = %q", out)
	}
}

func TestFactHeightHead(t *testing.T) {
	m := newTestLM(OracleProfile())
	out, err := m.Complete(context.Background(), HeightPrompt("Stephen Curry"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := strconv.ParseFloat(out, 64)
	if err != nil || h != 188 {
		t.Errorf("Curry height = %q", out)
	}
	// Unknown athletes get a plausible hallucination, never an error.
	out, err = m.Complete(context.Background(), HeightPrompt("Totally Unknown Person"))
	if err != nil {
		t.Fatal(err)
	}
	h, err = strconv.ParseFloat(out, 64)
	if err != nil || h < 150 || h > 210 {
		t.Errorf("hallucinated height = %q; want plausible number", out)
	}
}

func TestArithmeticSlipsGrowWithRows(t *testing.T) {
	p := DefaultProfile()
	slipSmall, slipLarge := 0, 0
	const trials = 400
	for i := 0; i < trials; i++ {
		task := "count:q" + strconv.Itoa(i)
		if p.arithmeticSlips(task, 3) {
			slipSmall++
		}
		if p.arithmeticSlips(task, 60) {
			slipLarge++
		}
	}
	if slipLarge <= slipSmall {
		t.Errorf("slips over 60 rows (%d) should exceed slips over 3 rows (%d)", slipLarge, slipSmall)
	}
}

func TestCountSlipChangesAnswer(t *testing.T) {
	// With maximal arithmetic error, counting must be wrong on large
	// inputs — the failure RAG inherits by doing computation in-context.
	p := OracleProfile()
	p.ArithBase = 1 // always slip
	m := newTestLM(p)
	var points []DataPoint
	for i := 0; i < 30; i++ {
		points = append(points, DataPoint{"height": "190", "player_name": "P" + strconv.Itoa(i)})
	}
	q := "Among the players whose height is over 180, how many of them are taller than Stephen Curry?"
	out, err := m.Complete(context.Background(), AnswerPrompt(points, nil, q))
	if err != nil {
		t.Fatal(err)
	}
	if out == "[30]" {
		t.Errorf("forced slip still produced the exact count %s", out)
	}
}

func TestRankingSlipSwapsEntries(t *testing.T) {
	p := OracleProfile()
	p.ArithBase = 1
	m := newTestLM(p)
	points := []DataPoint{
		{"School": "A", "Longitude": "-120"},
		{"School": "B", "Longitude": "-121"},
		{"School": "C", "Longitude": "-122"},
	}
	q := "List the school name of the 3 schools with the highest longitude located in a city that is part of the 'Bay Area' region?"
	// The grammar needs a period for List frames; keep the question as the
	// paper's style by using the match list form directly.
	q = strings.TrimSuffix(q, "?") + "."
	out, err := m.Complete(context.Background(), AnswerPrompt(points, nil, q))
	if err != nil {
		t.Fatal(err)
	}
	vals := ParseAnswerList(out)
	if len(vals) == 3 && vals[0] == "A" && vals[1] == "B" && vals[2] == "C" {
		t.Errorf("forced list slip still produced the exact order %v", vals)
	}
}

func TestSemFilterUnrecognisedClaimGuesses(t *testing.T) {
	m := newTestLM(DefaultProfile())
	out1, err := m.Complete(context.Background(), SemFilterPrompt("the moon is made of structured data"))
	if err != nil {
		t.Fatal(err)
	}
	out2, _ := m.Complete(context.Background(), SemFilterPrompt("the moon is made of structured data"))
	if out1 != out2 {
		t.Error("guesses must be deterministic")
	}
	if out1 != "True" && out1 != "False" {
		t.Errorf("guess = %q", out1)
	}
}

func TestSemMapHeads(t *testing.T) {
	m := newTestLM(OracleProfile())
	cases := []struct {
		instr, item, want string
	}{
		{"label the sentiment", "astonishingly bad on every level", "negative"},
		{"is it sarcastic?", "slow clap for this revolutionary discovery", "sarcastic"},
		{"rate how technical", "eigenvalue decomposition of the covariance matrix", "technical"},
	}
	for _, c := range cases {
		out, err := m.Complete(context.Background(), SemMapPrompt(c.instr, c.item))
		if err != nil || out != c.want {
			t.Errorf("SemMap(%q, %q) = %q, want %q", c.instr, c.item, out, c.want)
		}
	}
}

func TestSummarizeRacesElidesLongHistories(t *testing.T) {
	m := newTestLM(OracleProfile())
	var items []string
	for y := 1980; y <= 2017; y++ { // 38 races > 24 threshold
		items = append(items, "year="+strconv.Itoa(y)+"; date="+strconv.Itoa(y)+"-05-01; round=3; name=Test Grand Prix")
	}
	out, err := m.Complete(context.Background(), SemAggPrompt("Summarize the races held on Silverstone Circuit", items))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ", ...,") && !strings.Contains(out, ", ...") {
		t.Errorf("long history should elide the middle: %s", out)
	}
	if !strings.Contains(out, "1980") || !strings.Contains(out, "2017") {
		t.Errorf("elision must keep the endpoints: %s", out)
	}
}

func TestProfilesDiffer(t *testing.T) {
	// Different seeds produce different belief sets.
	p1 := DefaultProfile()
	p2 := DefaultProfile()
	p2.Seed = 999
	v1 := NewView(world.Default(), p1)
	v2 := NewView(world.Default(), p2)
	same := 0
	for _, c := range world.CACities {
		if v1.InRegion(c, "Silicon Valley") == v2.InRegion(c, "Silicon Valley") {
			same++
		}
	}
	if same == len(world.CACities) {
		t.Error("different seeds should believe different things somewhere")
	}
}

func TestTruncateLongOutput(t *testing.T) {
	p := OracleProfile()
	p.MaxOutputTokens = 10
	m := newTestLM(p)
	var items []string
	for i := 0; i < 20; i++ {
		items = append(items, "solid and dependable, worth your time")
	}
	out, err := m.Complete(context.Background(), SemAggPrompt("Summarize the reviews", items))
	if err != nil {
		t.Fatal(err)
	}
	if CountTokens(out) > 10 {
		t.Errorf("output %d tokens exceeds MaxOutputTokens", CountTokens(out))
	}
}
