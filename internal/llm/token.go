// Package llm implements the simulated language model that stands in for
// Llama-3.1-70B-Instruct served by vLLM in the TAG paper's experiments.
//
// SimLM is deterministic: all apparent stochasticity (forgotten facts,
// scoring noise, arithmetic slips) is derived by hashing the inputs with a
// seed, so benchmark runs are exactly reproducible while failure patterns
// still vary across queries the way a real model's do.
//
// The package also provides the serving-side pieces the evaluation's
// latency column depends on: an approximate tokenizer, a virtual clock and
// a cost model with vLLM-style batch amortisation (§4.3 attributes the TAG
// pipeline's speed to "efficient batched inference").
package llm

import (
	"strings"
	"unicode"
)

// CountTokens approximates an LLM tokenizer's token count: one token per
// word piece of up to four characters plus one per punctuation rune. The
// approximation only needs to be monotone and stable — it drives context
// window enforcement and the latency model, not any text processing.
func CountTokens(s string) int {
	tokens := 0
	inWord := 0
	flush := func() {
		if inWord > 0 {
			tokens += (inWord + 3) / 4
			inWord = 0
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			inWord++
		case unicode.IsSpace(r):
			flush()
		default:
			flush()
			tokens++
		}
	}
	flush()
	return tokens
}

// TruncateToTokens cuts s so that CountTokens(result) <= budget, on a word
// boundary. Used to simulate prompt truncation strategies.
func TruncateToTokens(s string, budget int) string {
	if CountTokens(s) <= budget {
		return s
	}
	words := strings.Fields(s)
	var b strings.Builder
	for _, w := range words {
		add := w
		if b.Len() > 0 {
			add = " " + w
		}
		if CountTokens(b.String()+add) > budget {
			break
		}
		b.WriteString(add)
	}
	return b.String()
}
