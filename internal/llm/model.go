package llm

import (
	"context"
	"errors"
	"sync"
)

// ErrContextLength is returned when a prompt exceeds the model's context
// window. The paper reports these failures on the Text2SQL + LM baseline
// for match-based and comparison queries ("several context length errors
// occur trying to feed in many rows to the model").
var ErrContextLength = errors.New("llm: prompt exceeds model context window")

// Model is the inference interface every pipeline component programs
// against. Implementations must be safe for concurrent use.
type Model interface {
	// Name identifies the model (for reports).
	Name() string
	// ContextWindow is the maximum prompt size in tokens.
	ContextWindow() int
	// Complete runs a single prompt to completion.
	Complete(ctx context.Context, prompt string) (string, error)
	// CompleteBatch runs prompts as one batched inference call. Results
	// align with prompts; per-prompt errors are reported in the error
	// slice (a nil slice means every prompt succeeded).
	CompleteBatch(ctx context.Context, prompts []string) ([]string, []error)
}

// Stats counts inference traffic; the benchmark report includes them.
type Stats struct {
	Calls        int // single Complete invocations
	BatchCalls   int // CompleteBatch invocations
	BatchedItems int // prompts served through batches
	PromptTokens int
	OutputTokens int
	Retries      int // attempts re-issued by WithRetry after transient failures
	GiveUps      int // calls abandoned after exhausting the retry budget
}

// statsRecorder is embedded by models to track usage.
type statsRecorder struct {
	mu    sync.Mutex
	stats Stats
}

func (s *statsRecorder) recordCall(promptTokens, outputTokens int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Calls++
	s.stats.PromptTokens += promptTokens
	s.stats.OutputTokens += outputTokens
}

func (s *statsRecorder) recordBatch(n, promptTokens, outputTokens int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.BatchCalls++
	s.stats.BatchedItems += n
	s.stats.PromptTokens += promptTokens
	s.stats.OutputTokens += outputTokens
}

// Stats returns a snapshot of accumulated usage.
func (s *statsRecorder) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the counters (between benchmark phases).
func (s *statsRecorder) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = Stats{}
}
