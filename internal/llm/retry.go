package llm

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// This file adds bounded, jittered retry around any Model. Real serving
// stacks fail transiently — connection resets, pod restarts, per-call
// timeouts — and a pipeline step that surfaces every blip as a hard error
// makes long benchmark runs flaky. WithRetry wraps a Model so that
// transient failures are retried with exponential backoff (and an
// optional per-attempt timeout), while deterministic failures — a prompt
// that exceeds the context window, or the caller's own context being
// cancelled — are returned immediately.

// TransientError marks an inference failure as retry-worthy. Model
// implementations (or transport layers) wrap flaky-path errors in it;
// WithRetry also treats any unclassified error as transient, since the
// deterministic failures are a known closed set.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string { return "llm: transient: " + e.Err.Error() }

func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as a TransientError (nil stays nil).
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is worth retrying on its own merits:
// not a context-window overflow (deterministic — the same prompt fails
// the same way every time) and not a context cancellation. Whether a
// cancellation came from the caller or from a per-attempt timeout is the
// retry loop's job to distinguish; IsTransient alone treats both as
// non-transient.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrContextLength) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// RetryOptions configures WithRetry.
type RetryOptions struct {
	// MaxAttempts bounds the total attempts per call (first try included);
	// 0 means 3.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// attempt. 0 means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means 2s.
	MaxDelay time.Duration
	// CallTimeout bounds each individual attempt (a hung call is abandoned
	// and retried while the caller's context is still alive). 0 disables
	// the per-attempt timeout.
	CallTimeout time.Duration

	// sleep and jitter are test hooks: sleep replaces the real backoff
	// wait, jitter replaces the randomised delay spread.
	sleep  func(time.Duration)
	jitter func(time.Duration) time.Duration
}

// DefaultRetryOptions is the production configuration: three attempts,
// 50ms→2s jittered exponential backoff, no per-attempt timeout.
func DefaultRetryOptions() RetryOptions { return RetryOptions{} }

func (o RetryOptions) attempts() int {
	if o.MaxAttempts <= 0 {
		return 3
	}
	return o.MaxAttempts
}

// delay computes the jittered backoff before attempt n+1 (n >= 1).
func (o RetryOptions) delay(n int) time.Duration {
	base := o.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := o.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if o.jitter != nil {
		return o.jitter(d)
	}
	// Half fixed, half uniform random: spreads synchronized retries
	// without ever collapsing the wait to zero.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// RetryModel decorates an inner Model with the retry policy. Safe for
// concurrent use (the inner Model must be too).
type RetryModel struct {
	inner Model
	opts  RetryOptions

	mu      sync.Mutex
	retries int
	giveUps int
}

// WithRetry wraps model with bounded jittered retry for transient
// failures.
func WithRetry(model Model, opts RetryOptions) *RetryModel {
	return &RetryModel{inner: model, opts: opts}
}

// Unwrap exposes the decorated Model (AsSimLM looks through it).
func (m *RetryModel) Unwrap() Model { return m.inner }

// Name implements Model.
func (m *RetryModel) Name() string { return m.inner.Name() }

// ContextWindow implements Model.
func (m *RetryModel) ContextWindow() int { return m.inner.ContextWindow() }

// Stats returns the inner model's usage snapshot (when it keeps one) with
// the retry counters filled in.
func (m *RetryModel) Stats() Stats {
	var s Stats
	if sp, ok := m.inner.(interface{ Stats() Stats }); ok {
		s = sp.Stats()
	}
	m.mu.Lock()
	s.Retries = m.retries
	s.GiveUps = m.giveUps
	m.mu.Unlock()
	return s
}

// ResetStats zeroes the retry counters and the inner model's counters.
func (m *RetryModel) ResetStats() {
	if rp, ok := m.inner.(interface{ ResetStats() }); ok {
		rp.ResetStats()
	}
	m.mu.Lock()
	m.retries, m.giveUps = 0, 0
	m.mu.Unlock()
}

func (m *RetryModel) noteRetry() {
	m.mu.Lock()
	m.retries++
	m.mu.Unlock()
}

func (m *RetryModel) noteGiveUp() {
	m.mu.Lock()
	m.giveUps++
	m.mu.Unlock()
}

// attemptCtx derives the per-attempt context.
func (m *RetryModel) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if m.opts.CallTimeout > 0 {
		return context.WithTimeout(ctx, m.opts.CallTimeout)
	}
	return ctx, func() {}
}

// retryable decides whether err from one attempt warrants another, given
// the caller's context: the caller cancelling always wins; a per-attempt
// timeout expiring while the caller is alive is transient (the attempt
// hung, not the request).
func (m *RetryModel) retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	if errors.Is(err, ErrContextLength) {
		return false
	}
	// context.Canceled/DeadlineExceeded with a live parent can only come
	// from the per-attempt timeout — transient by definition.
	return true
}

// backoff waits the jittered delay before the next attempt, honouring the
// caller's context. Reports false when the wait was cancelled.
func (m *RetryModel) backoff(ctx context.Context, attempt int) bool {
	d := m.opts.delay(attempt)
	if m.opts.sleep != nil {
		m.opts.sleep(d)
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Complete implements Model with the retry loop.
func (m *RetryModel) Complete(ctx context.Context, prompt string) (string, error) {
	attempts := m.opts.attempts()
	for a := 1; ; a++ {
		actx, cancel := m.attemptCtx(ctx)
		out, err := m.inner.Complete(actx, prompt)
		cancel()
		if err == nil {
			return out, nil
		}
		if !m.retryable(ctx, err) {
			return "", err
		}
		if a >= attempts {
			m.noteGiveUp()
			return "", err
		}
		m.noteRetry()
		if !m.backoff(ctx, a) {
			return "", err
		}
	}
}

// CompleteBatch implements Model: the whole batch is issued once, then
// only the transiently-failed prompts are re-batched on each retry round,
// so one flaky item does not re-bill the whole batch.
func (m *RetryModel) CompleteBatch(ctx context.Context, prompts []string) ([]string, []error) {
	outs, errs := m.inner.CompleteBatch(ctx, prompts)
	if errs == nil {
		return outs, nil
	}
	attempts := m.opts.attempts()
	for a := 1; a < attempts; a++ {
		var retryIdx []int
		for i, err := range errs {
			if err != nil && m.retryable(ctx, err) {
				retryIdx = append(retryIdx, i)
			}
		}
		if len(retryIdx) == 0 {
			break
		}
		m.noteRetry()
		if !m.backoff(ctx, a) {
			break
		}
		sub := make([]string, len(retryIdx))
		for j, i := range retryIdx {
			sub[j] = prompts[i]
		}
		actx, cancel := m.attemptCtx(ctx)
		subOuts, subErrs := m.inner.CompleteBatch(actx, sub)
		cancel()
		for j, i := range retryIdx {
			outs[i] = subOuts[j]
			if subErrs == nil {
				errs[i] = nil
			} else {
				errs[i] = subErrs[j]
			}
		}
	}
	// Anything still transiently failed after the final round is a give-up.
	clean := true
	for _, err := range errs {
		if err != nil {
			clean = false
			if m.retryable(ctx, err) {
				m.noteGiveUp()
			}
		}
	}
	if clean {
		return outs, nil
	}
	return outs, errs
}

// AsSimLM unwraps a Model to the underlying *SimLM, looking through
// decorators such as WithRetry. Returns nil when no SimLM is at the core.
func AsSimLM(m Model) *SimLM {
	for m != nil {
		if sim, ok := m.(*SimLM); ok {
			return sim
		}
		u, ok := m.(interface{ Unwrap() Model })
		if !ok {
			return nil
		}
		m = u.Unwrap()
	}
	return nil
}
