package llm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements SimLM's semantic-operator heads: the per-row claim
// judgements, pairwise comparisons and hierarchical summaries that the
// LOTUS-style sem package issues. Claims arrive with row values already
// substituted (e.g. "Palo Alto is a city in the Silicon Valley region"),
// mirroring how LOTUS renders {Column} placeholders into per-row prompts.

// Claim surface forms recognised by the judgement head. The sem pipelines
// (tagbench, examples) phrase their instructions with these shapes — the
// same contract a prompt-engineered production pipeline relies on.
const (
	claimCityRegion   = " is a city in the " // "<city> is a city in the <region> region"
	claimCounty       = " is a county in the Bay Area"
	claimEU           = " is a country that is a member of the European Union"
	claimClassic      = " is a movie widely considered a classic"
	claimNamedPerson  = " is a school named after a person"
	claimPremium      = " sounds like a premium product"
	claimTallerPrefix = "height " // "height <cm> is greater than the height of <person>"
	claimTallerMid    = " is greater than the height of "
	claimPositive     = "the following text is positive: "
	claimNegative     = "the following text is negative: "
	claimSarcastic    = "the following text is sarcastic: "
	claimTechnical    = "the following text is technical: "
)

func (m *SimLM) semFilter(prompt string) (string, error) {
	claim, ok := strings.CutPrefix(strings.TrimPrefix(prompt, markSemFilter), "\nClaim: ")
	if !ok {
		return "False", nil
	}
	verdict, recognised := m.judgeClaim(strings.TrimSpace(claim))
	if !recognised {
		// Unintelligible claim: the model guesses, deterministically.
		verdict = m.profile.noise("claimguess", claim) < 0.5
	}
	if verdict {
		return "True", nil
	}
	return "False", nil
}

// judgeClaim pattern-matches a claim and answers it from the model's noisy
// knowledge or trait estimation.
func (m *SimLM) judgeClaim(claim string) (verdict, recognised bool) {
	if entity, rest, ok := strings.Cut(claim, claimCityRegion); ok {
		region := strings.TrimSuffix(strings.Trim(rest, "'\""), " region")
		region = strings.Trim(region, "'\"")
		return m.view.InRegion(entity, region), true
	}
	if entity, ok := cutSuffix(claim, claimCounty); ok {
		return m.view.CountyInBayArea(entity), true
	}
	if entity, ok := cutSuffix(claim, claimEU); ok {
		return m.view.IsEUCountry(entity), true
	}
	if entity, ok := cutSuffix(claim, claimClassic); ok {
		return m.view.IsClassicMovie(entity), true
	}
	if entity, ok := cutSuffix(claim, claimNamedPerson); ok {
		return m.view.IsNamedAfterPerson(entity), true
	}
	if entity, ok := cutSuffix(claim, claimPremium); ok {
		return m.view.IsPremiumProduct(entity), true
	}
	if strings.HasPrefix(claim, claimTallerPrefix) && strings.Contains(claim, claimTallerMid) {
		body := strings.TrimPrefix(claim, claimTallerPrefix)
		hs, person, _ := strings.Cut(body, claimTallerMid)
		person = strings.TrimSuffix(person, " in centimeters")
		h, err := strconv.ParseFloat(strings.TrimSpace(hs), 64)
		if err != nil {
			return false, true
		}
		ph, ok := m.view.AthleteHeightCM(person)
		if !ok {
			ph = 165 + float64(int(m.profile.noise("height_guess", person)*25))
		}
		return h > ph, true
	}
	if text, ok := strings.CutPrefix(claim, claimPositive); ok {
		return m.view.Traits(unq(text)).Sentiment > 0.5, true
	}
	if text, ok := strings.CutPrefix(claim, claimNegative); ok {
		return m.view.Traits(unq(text)).Sentiment < 0.5, true
	}
	if text, ok := strings.CutPrefix(claim, claimSarcastic); ok {
		return m.view.Traits(unq(text)).Sarcasm > 0.5, true
	}
	if text, ok := strings.CutPrefix(claim, claimTechnical); ok {
		return m.view.Traits(unq(text)).Technicality > 0.5, true
	}
	return false, false
}

func cutSuffix(s, suffix string) (string, bool) {
	if strings.HasSuffix(s, suffix) {
		return strings.TrimSpace(strings.TrimSuffix(s, suffix)), true
	}
	// Also allow trailing period.
	if strings.HasSuffix(s, suffix+".") {
		return strings.TrimSpace(strings.TrimSuffix(s, suffix+".")), true
	}
	return "", false
}

func unq(s string) string { return strings.Trim(strings.TrimSpace(s), "'\"") }

// semCompare answers "which item satisfies the criterion more" for the
// pairwise ranking operator.
func (m *SimLM) semCompare(prompt string) (string, error) {
	body := strings.TrimPrefix(prompt, markSemCompare)
	crit, rest, ok := strings.Cut(strings.TrimPrefix(body, "\nCriterion: "), "\nItem A: ")
	if !ok {
		return "A", nil
	}
	a, b, ok := strings.Cut(rest, "\nItem B: ")
	if !ok {
		return "A", nil
	}
	sa, sb := m.criterionScore(crit, a), m.criterionScore(crit, b)
	if sa >= sb {
		return "A", nil
	}
	return "B", nil
}

// criterionScore maps a ranking criterion to the trait estimate of an item.
func (m *SimLM) criterionScore(criterion, item string) float64 {
	t := m.view.Traits(item)
	low := strings.ToLower(criterion)
	switch {
	case strings.Contains(low, "sarcas"):
		return t.Sarcasm
	case strings.Contains(low, "technical"):
		return t.Technicality
	case strings.Contains(low, "positive"):
		return t.Sentiment
	case strings.Contains(low, "negative"):
		return 1 - t.Sentiment
	default:
		// Unknown criterion: lexical relevance to the criterion words.
		return lexicalOverlap(criterion, item)
	}
}

// semAggregate produces a deterministic template summary of items. When
// the instruction mentions races, the Formula 1 summariser is used (this
// backs Figure 2's hand-written TAG panel).
func (m *SimLM) semAggregate(prompt string) (string, error) {
	body := strings.TrimPrefix(prompt, markSemAgg)
	instr, itemsBlock, ok := strings.Cut(strings.TrimPrefix(body, "\nInstruction: "), "\nItems:\n")
	if !ok {
		return "Nothing to summarize.", nil
	}
	var items []string
	for _, line := range strings.Split(itemsBlock, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "- ") {
			items = append(items, line[2:])
		}
	}
	if len(items) == 0 {
		return "Nothing to summarize.", nil
	}
	low := strings.ToLower(instr)
	if strings.Contains(low, "race") {
		if i := strings.Index(instr, "held on "); i >= 0 {
			return m.summarizeRaces(strings.TrimSuffix(instr[i+len("held on "):], "."), items), nil
		}
		return m.summarizeRaces("", items), nil
	}
	subject := "the items"
	if i := strings.Index(low, "summarize "); i >= 0 {
		subject = strings.TrimSuffix(instr[i+len("summarize "):], ".")
	}
	return m.composeSummary(subject, items), nil
}

// composeSummary writes a generic extractive summary: counts, overall
// sentiment when the items look like free text, and leading excerpts.
func (m *SimLM) composeSummary(subject string, items []string) string {
	var sentSum float64
	for _, it := range items {
		sentSum += m.view.Traits(it).Sentiment
	}
	mean := sentSum / float64(len(items))
	tone := "mixed"
	switch {
	case mean > 0.62:
		tone = "largely positive"
	case mean < 0.38:
		tone = "largely negative"
	}
	show := len(items)
	if show > 3 {
		show = 3
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Across %d entries, %s are %s in tone. ", len(items), subject, tone)
	b.WriteString("Key points include: ")
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString("\"" + clip(items[i], 90) + "\"")
	}
	if len(items) > show {
		fmt.Fprintf(&b, "; and %d more.", len(items)-show)
	} else {
		b.WriteString(".")
	}
	return b.String()
}

// raceRecord is one parsed race row inside the summariser.
type raceRecord struct {
	year  int
	date  string
	round string
	name  string
}

// summarizeRaces composes the Figure-2-style aggregation answer: world
// knowledge about the circuit blended with the per-row dates from the
// database.
func (m *SimLM) summarizeRaces(circuitName string, items []string) string {
	var races []raceRecord
	for _, it := range items {
		r := raceRecord{}
		for _, kv := range strings.Split(it, "; ") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				k, v, ok = strings.Cut(kv, ": ")
				if !ok {
					continue
				}
			}
			switch strings.ToLower(strings.TrimSpace(k)) {
			case "year":
				r.year, _ = strconv.Atoi(strings.TrimSpace(v))
			case "date":
				r.date = strings.TrimSpace(v)
			case "round":
				r.round = strings.TrimSpace(v)
			case "name", "race name":
				r.name = strings.TrimSpace(v)
			}
		}
		if r.year > 0 || r.date != "" {
			races = append(races, r)
		}
	}
	sort.Slice(races, func(i, j int) bool { return races[i].year < races[j].year })

	var b strings.Builder
	if fact, ok := m.view.Circuit(circuitName); ok {
		fmt.Fprintf(&b, "The %s in %s, %s, hosted the %s from %d to %d. ",
			circuitName, fact.City, fact.Country, raceNameOr(races, "Grand Prix"), fact.FirstGPYear, fact.LastGPYear)
	} else if circuitName != "" {
		fmt.Fprintf(&b, "The %s hosted the following races. ", circuitName)
	}
	if len(races) == 0 {
		b.WriteString("No race records were provided.")
		return b.String()
	}
	b.WriteString("The races were held on the following dates: ")
	writeRace := func(r raceRecord) {
		switch {
		case r.date != "" && r.round != "":
			fmt.Fprintf(&b, "%d: %s (round %s)", r.year, r.date, r.round)
		case r.date != "":
			fmt.Fprintf(&b, "%d: %s", r.year, r.date)
		default:
			fmt.Fprintf(&b, "%d", r.year)
		}
	}
	// Long histories elide the middle, as in the paper's Figure 2 panel
	// ("2005: March 20 (2nd round), ..., 2016: October 2").
	show := races
	var tail []raceRecord
	if len(races) > 24 {
		show = races[:6]
		tail = races[len(races)-2:]
	}
	for i, r := range show {
		if i > 0 {
			b.WriteString(", ")
		}
		writeRace(r)
	}
	if tail != nil {
		b.WriteString(", ...")
		for _, r := range tail {
			b.WriteString(", ")
			writeRace(r)
		}
	}
	b.WriteString(".")
	return b.String()
}

func raceNameOr(races []raceRecord, fallback string) string {
	for _, r := range races {
		if r.name != "" {
			return r.name
		}
	}
	return fallback
}

// semMap applies a per-row transformation instruction.
func (m *SimLM) semMap(prompt string) (string, error) {
	body := strings.TrimPrefix(prompt, markSemMap)
	instr, item, ok := strings.Cut(strings.TrimPrefix(body, "\nInstruction: "), "\nItem: ")
	if !ok {
		return "", nil
	}
	low := strings.ToLower(instr)
	t := m.view.Traits(item)
	switch {
	case strings.Contains(low, "sentiment"):
		if t.Sentiment > 0.5 {
			return "positive", nil
		}
		return "negative", nil
	case strings.Contains(low, "sarcas"):
		if t.Sarcasm > 0.5 {
			return "sarcastic", nil
		}
		return "sincere", nil
	case strings.Contains(low, "technical"):
		if t.Technicality > 0.5 {
			return "technical", nil
		}
		return "casual", nil
	case strings.Contains(low, "one sentence"), strings.Contains(low, "shorten"):
		return clip(item, 80), nil
	default:
		return item, nil
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
