package llm

import (
	"fmt"
	"strings"

	"tag/internal/nlq"
)

// This file implements SimLM's query-synthesis head. Given a BIRD-style
// Text2SQL prompt it parses the question (language understanding), then
// compiles the parsed spec to SQL. The compilation is where the paper's
// Text2SQL failure modes live:
//
//   - world-knowledge clauses become IN-lists drawn from the model's noisy
//     parametric knowledge (missing and hallucinated members included);
//   - semantic-reasoning clauses are *inexpressible* in plain SQL, so the
//     model drops them or substitutes a crude lexical proxy — unless the
//     engine advertises LM UDFs (SQLCapabilities.LMUDFs), in which case it
//     emits LLM_FILTER / LLM_SCORE calls (§2.1's movie example);
//   - with probability Profile.SQLSkillError the relational skeleton
//     itself is subtly wrong (dropped filter or flipped sort).

// markText2SQLRetrieve distinguishes the retrieval-SQL variant used by the
// Text2SQL + LM baseline: fetch relevant rows broadly, let the LM finish.
const markText2SQLRetrieve = "-- Using valid SQLite, write a query that retrieves all rows relevant to the question; the rows will be given to a model to answer it."

// Text2SQLRetrievalPrompt renders the Text2SQL + LM baseline's synthesis
// prompt: same schema framing, but asking for relevant rows rather than a
// final answer.
func Text2SQLRetrievalPrompt(schemaSQL, question string) string {
	var b strings.Builder
	b.WriteString(schemaSQL)
	b.WriteString("\n-- External Knowledge: None\n")
	b.WriteString(markText2SQLRetrieve)
	b.WriteString("\n-- ")
	b.WriteString(question)
	b.WriteString("\nSELECT")
	return b.String()
}

func (m *SimLM) text2SQL(prompt string) (string, error) {
	retrieval := strings.Contains(prompt, markText2SQLRetrieve)
	var question string
	var ok bool
	if retrieval {
		i := strings.Index(prompt, markText2SQLRetrieve)
		rest := strings.TrimPrefix(prompt[i+len(markText2SQLRetrieve):], "\n-- ")
		question, _, ok = strings.Cut(rest, "\nSELECT")
		question = strings.TrimSpace(question)
	} else {
		question, ok = questionFromText2SQL(prompt)
	}
	if !ok {
		return "SELECT 1", nil
	}
	spec, err := nlq.Parse(question)
	if err != nil {
		// The model hallucinates a query against a table it imagines.
		return "SELECT * FROM answers WHERE question = '" +
			strings.ReplaceAll(question, "'", "''") + "'", nil
	}
	if retrieval {
		return m.compileRetrievalSQL(spec), nil
	}
	return m.compileAnswerSQL(spec, question), nil
}

// compileAnswerSQL produces SQL whose result *is* the answer (the vanilla
// Text2SQL baseline contract).
func (m *SimLM) compileAnswerSQL(spec *nlq.Spec, question string) string {
	var sel, orderBy string
	limit := spec.Limit
	desc := spec.OrderDesc

	where := m.filterClauses(spec)
	augSQL, augOrder := m.compileAugment(spec)
	if augSQL != "" {
		where = append(where, augSQL)
	}

	switch spec.Type {
	case nlq.Comparison:
		sel = "COUNT(*)"
		limit = 0
	case nlq.Aggregation:
		sel = spec.Table + ".*"
		if spec.Target != "" && tableOfQ(spec.Target) != spec.Table {
			sel += ", " + spec.Target
		}
		limit = 0
	default:
		sel = spec.Target
	}
	if spec.OrderBy != "" {
		orderBy = spec.OrderBy
	}
	if augOrder != "" {
		// Semantic ordering replaces (re-ranks) the relational ordering for
		// trait top-k questions; plain SQL can only approximate it.
		orderBy = augOrder
		desc = true
	}

	// Relational-skill noise: a subtly wrong skeleton.
	if m.profile.noise("sqlskill", question) < m.profile.SQLSkillError {
		switch int(m.profile.noise("sqlskill2", question) * 3) {
		case 0:
			if len(where) > 0 {
				where = where[:len(where)-1] // forgot a predicate
			}
		case 1:
			desc = !desc // flipped sort direction
		default:
			if limit > 0 {
				limit++ // off-by-one LIMIT
			} else if len(where) > 0 {
				where = where[:len(where)-1]
			}
		}
	}

	return buildSelect(sel, spec, where, orderBy, desc, limit)
}

// compileRetrievalSQL produces broad row-retrieval SQL: relational filters
// only; knowledge, reasoning and computation are left to the generation
// step.
func (m *SimLM) compileRetrievalSQL(spec *nlq.Spec) string {
	sel := spec.Table + ".*"
	if spec.Join != nil {
		sel += ", " + spec.Join.Table + ".*"
	}
	where := m.filterClauses(spec)
	orderBy := ""
	// Retrieval keeps the relational ordering so the generator sees the
	// most relevant rows first, but does not LIMIT (the LM should see all
	// candidates) — this is exactly what overflows the context window on
	// large tables.
	if spec.OrderBy != "" {
		orderBy = spec.OrderBy
	}
	return buildSelect(sel, spec, where, orderBy, spec.OrderDesc, 0)
}

// filterClauses compiles the spec's relational filters.
func (m *SimLM) filterClauses(spec *nlq.Spec) []string {
	var out []string
	for _, f := range spec.Filters {
		out = append(out, f.Column+" "+f.Op+" "+sqlLiteral(f.Value, f.Num))
	}
	return out
}

// compileAugment translates the augment into SQL. It returns a WHERE
// clause and/or an ORDER BY expression ("" when not applicable).
func (m *SimLM) compileAugment(spec *nlq.Spec) (whereSQL, orderSQL string) {
	a := spec.Aug
	if a == nil {
		return "", ""
	}
	switch a.Kind {
	case nlq.AugCityRegion:
		return inList(a.Column, m.view.RegionCitiesBelieved(a.Arg)), ""
	case nlq.AugCountyRegion:
		return inList(a.Column, m.view.BayAreaCountiesBelieved()), ""
	case nlq.AugEUCountry:
		return inList(a.Column, m.view.EUCountriesBelieved()), ""
	case nlq.AugTallerThan:
		h, ok := m.view.AthleteHeightCM(a.Arg)
		if !ok {
			// The model hallucinates a plausible height rather than
			// admitting ignorance.
			h = 165 + float64(int(m.profile.noise("height_guess", a.Arg)*25))
		}
		return fmt.Sprintf("%s > %g", a.Column, h), ""
	case nlq.AugClassic:
		var believed []string
		for _, t := range m.view.World().Entities("classic_movie") {
			if m.view.IsClassicMovie(t) {
				believed = append(believed, t)
			}
		}
		if m.SQLCapabilities.LMUDFs {
			return "LLM_FILTER('classic movie', " + a.Column + ")", ""
		}
		return inListFold(a.Column, believed), ""
	case nlq.AugPositive, nlq.AugNegative, nlq.AugSarcastic, nlq.AugTechnical,
		nlq.AugNamedAfterPerson, nlq.AugPremium:
		if m.SQLCapabilities.LMUDFs {
			return "LLM_FILTER('" + udfTask(a.Kind) + "', " + a.Column + ")", ""
		}
		// Inexpressible in plain SQL: the model silently drops the clause.
		return "", ""
	case nlq.AugTopSarcastic, nlq.AugTopTechnical, nlq.AugTopPositive:
		if m.SQLCapabilities.LMUDFs {
			return "", "LLM_SCORE('" + udfTask(a.Kind) + "', " + a.Column + ")"
		}
		// Crude lexical proxy: longer text ~ more content. Usually wrong,
		// which is the point (10% ranking accuracy in Table 1).
		return "", "LENGTH(" + a.Column + ")"
	default:
		return "", ""
	}
}

// udfTask names the LM UDF task for an augment kind.
func udfTask(k nlq.AugKind) string {
	switch k {
	case nlq.AugPositive, nlq.AugTopPositive:
		return "positive"
	case nlq.AugNegative:
		return "negative"
	case nlq.AugSarcastic, nlq.AugTopSarcastic:
		return "sarcastic"
	case nlq.AugTechnical, nlq.AugTopTechnical:
		return "technical"
	case nlq.AugNamedAfterPerson:
		return "named after a person"
	case nlq.AugPremium:
		return "premium"
	case nlq.AugClassic:
		return "classic movie"
	default:
		return "judge"
	}
}

// buildSelect assembles the final statement.
func buildSelect(sel string, spec *nlq.Spec, where []string, orderBy string, desc bool, limit int) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(sel)
	b.WriteString(" FROM ")
	b.WriteString(spec.Table)
	if spec.Join != nil {
		b.WriteString(" JOIN " + spec.Join.Table + " ON " + spec.Join.Left + " = " + spec.Join.Right)
	}
	if len(where) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(where, " AND "))
	}
	if orderBy != "" {
		b.WriteString(" ORDER BY " + orderBy)
		if desc {
			b.WriteString(" DESC")
		} else {
			b.WriteString(" ASC")
		}
	}
	if limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", limit)
	}
	return b.String()
}

func sqlLiteral(v string, num bool) string {
	if num {
		return v
	}
	return "'" + strings.ReplaceAll(v, "'", "''") + "'"
}

// inList renders `col IN ('a', 'b', ...)`; an empty belief set degrades to
// a clause that matches nothing (the model knows the concept but no
// members).
func inList(col string, values []string) string {
	if len(values) == 0 {
		return col + " IN ('')"
	}
	quoted := make([]string, len(values))
	for i, v := range values {
		quoted[i] = sqlLiteral(v, false)
	}
	return col + " IN (" + strings.Join(quoted, ", ") + ")"
}

// inListFold is inList with case-folded matching via LOWER(col).
func inListFold(col string, values []string) string {
	if len(values) == 0 {
		return col + " IN ('')"
	}
	quoted := make([]string, len(values))
	for i, v := range values {
		quoted[i] = sqlLiteral(strings.ToLower(v), false)
	}
	return "LOWER(" + col + ") IN (" + strings.Join(quoted, ", ") + ")"
}

func tableOfQ(qcol string) string {
	if i := strings.IndexByte(qcol, '.'); i >= 0 {
		return qcol[:i]
	}
	return qcol
}
