package llm

import (
	"context"
	"errors"
	"strings"
	"testing"

	"tag/internal/world"
)

func TestCountTokens(t *testing.T) {
	cases := []struct {
		s    string
		want int
	}{
		{"", 0},
		{"word", 1},
		{"two words", 3},            // "two"=1, "words"=2 pieces
		{"a, b", 3},                 // two words + comma
		{"internationalization", 5}, // 20 chars -> 5 pieces
	}
	for _, c := range cases {
		if got := CountTokens(c.s); got != c.want {
			t.Errorf("CountTokens(%q) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestCountTokensMonotone(t *testing.T) {
	base := "some text about databases"
	if CountTokens(base) >= CountTokens(base+" and language models") {
		t.Error("adding text must not reduce token count")
	}
}

func TestTruncateToTokens(t *testing.T) {
	s := strings.Repeat("word ", 100)
	out := TruncateToTokens(s, 10)
	if CountTokens(out) > 10 {
		t.Errorf("truncated text has %d tokens", CountTokens(out))
	}
	if TruncateToTokens("short", 100) != "short" {
		t.Error("under-budget text must be unchanged")
	}
}

func TestClock(t *testing.T) {
	c := NewClock()
	c.Advance(1.5)
	c.Advance(-3) // ignored
	c.Advance(0.5)
	if got := c.Now(); got != 2.0 {
		t.Errorf("clock = %v, want 2.0", got)
	}
}

func TestCostModelBatchAmortisation(t *testing.T) {
	m := DefaultCostModel()
	// 50 prompts of 40 tokens each, 2-token outputs.
	prompts := make([]int, 50)
	outs := make([]int, 50)
	for i := range prompts {
		prompts[i] = 40
		outs[i] = 2
	}
	batched := m.BatchSeconds(prompts, outs)
	sequential := 0.0
	for i := range prompts {
		sequential += m.CallSeconds(prompts[i], outs[i])
	}
	if batched*3 > sequential {
		t.Errorf("batching should be >3x cheaper: batched=%.2f sequential=%.2f", batched, sequential)
	}
	if m.BatchSeconds(nil, nil) != 0 {
		t.Error("empty batch should cost nothing")
	}
}

func newTestLM(p Profile) *SimLM {
	return NewSimLM(world.Default(), p, NewClock(), DefaultCostModel())
}

func TestViewDeterminism(t *testing.T) {
	v1 := NewView(world.Default(), DefaultProfile())
	v2 := NewView(world.Default(), DefaultProfile())
	for _, c := range world.CACities {
		if v1.InRegion(c, "Bay Area") != v2.InRegion(c, "Bay Area") {
			t.Fatalf("view must be deterministic (city %s)", c)
		}
	}
}

func TestViewCoverage(t *testing.T) {
	v := NewView(world.Default(), DefaultProfile())
	w := world.Default()
	// Recognition: asking "is this city in the Bay Area?" is mostly right.
	var truePos, trueTotal, falsePos, falseTotal int
	for _, c := range world.CACities {
		truth := w.InRegion(c, "Bay Area")
		belief := v.InRegion(c, "Bay Area")
		if truth {
			trueTotal++
			if belief {
				truePos++
			}
		} else {
			falseTotal++
			if belief {
				falsePos++
			}
		}
	}
	if recall := float64(truePos) / float64(trueTotal); recall < 0.8 {
		t.Errorf("recognition recall = %.2f; want high", recall)
	}
	if falseTotal > 0 && float64(falsePos)/float64(falseTotal) > 0.3 {
		t.Errorf("false positive rate too high: %d/%d", falsePos, falseTotal)
	}
	// Enumeration: listing the members misses a substantial fraction —
	// the recognition/recall asymmetry that separates Text2SQL from TAG.
	believed := v.RegionCitiesBelieved("Bay Area")
	truthCount := 0
	for _, c := range world.CACities {
		if w.InRegion(c, "Bay Area") {
			truthCount++
		}
	}
	if len(believed) >= truthCount {
		t.Errorf("enumerated %d cities of %d true; enumeration must be lossy", len(believed), truthCount)
	}
	if len(believed) < truthCount/5 {
		t.Errorf("enumerated only %d of %d; too lossy", len(believed), truthCount)
	}
}

func TestViewOracleIsPerfect(t *testing.T) {
	v := NewView(world.Default(), OracleProfile())
	w := world.Default()
	for _, c := range world.CACities {
		if v.InRegion(c, "Silicon Valley") != w.InRegion(c, "Silicon Valley") {
			t.Fatalf("oracle view must match world (city %s)", c)
		}
	}
	h, ok := v.AthleteHeightCM("Stephen Curry")
	if !ok || h != 188 {
		t.Errorf("oracle height = %v ok=%v", h, ok)
	}
}

func TestViewTraitsNoiseBounded(t *testing.T) {
	p := DefaultProfile()
	v := NewView(world.Default(), p)
	for _, ph := range world.Phrases {
		got := v.Traits(ph.Text)
		if diff := got.Sentiment - ph.Traits.Sentiment; diff > p.ScoreNoise+1e-9 || diff < -p.ScoreNoise-1e-9 {
			t.Fatalf("sentiment noise out of bounds for %q: %v vs %v", ph.Text, got.Sentiment, ph.Traits.Sentiment)
		}
		if got.Sarcasm < 0 || got.Sarcasm > 1 {
			t.Fatalf("trait out of [0,1]")
		}
	}
}

func TestAnswerPromptRoundTrip(t *testing.T) {
	points := []DataPoint{
		{"School": "Gunn High", "AvgScrMath": "610"},
		{"School": "Fresno High", "AvgScrMath": "520"},
	}
	prompt := AnswerPrompt(points, []string{"School", "AvgScrMath"}, "How many schools?")
	got, q, ok := parseAnswerPrompt(prompt)
	if !ok || q != "How many schools?" || len(got) != 2 {
		t.Fatalf("round trip: ok=%v q=%q n=%d", ok, q, len(got))
	}
	if got[0]["School"] != "Gunn High" || got[1]["AvgScrMath"] != "520" {
		t.Errorf("points = %+v", got)
	}
}

func TestAnswerListFormat(t *testing.T) {
	s := FormatAnswerList([]string{"12", "K-12", "x \"y\""}, []bool{false, true, true})
	if s != `[12, "K-12", "x "y""]` {
		t.Errorf("format = %s", s)
	}
	vals := ParseAnswerList(`[12, "K-12"]`)
	if len(vals) != 2 || vals[0] != "12" || vals[1] != "K-12" {
		t.Errorf("parse = %v", vals)
	}
	if ParseAnswerList("nonsense") != nil {
		t.Error("non-list should parse to nil")
	}
	if got := ParseAnswerList("[]"); got == nil || len(got) != 0 {
		t.Errorf("empty list should parse to empty slice, got %v", got)
	}
}

func TestContextWindowEnforced(t *testing.T) {
	p := DefaultProfile()
	p.ContextWindow = 50
	m := newTestLM(p)
	_, err := m.Complete(context.Background(), strings.Repeat("lots of words here ", 100))
	if !errors.Is(err, ErrContextLength) {
		t.Fatalf("want ErrContextLength, got %v", err)
	}
}

func TestText2SQLHeadKnowledgeClause(t *testing.T) {
	m := newTestLM(OracleProfile())
	schema := "CREATE TABLE schools (City TEXT, GSoffered TEXT, Longitude REAL);"
	q := "What is the grade span offered of the school with the highest longitude located in a city that is part of the 'Silicon Valley' region?"
	sql, err := m.Complete(context.Background(), Text2SQLPrompt(schema, q))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"SELECT schools.GSoffered", "schools.City IN (", "'Palo Alto'", "ORDER BY schools.Longitude DESC", "LIMIT 1"} {
		if !strings.Contains(sql, frag) {
			t.Errorf("SQL missing %q:\n%s", frag, sql)
		}
	}
}

func TestText2SQLHeadDropsReasoningClause(t *testing.T) {
	m := newTestLM(OracleProfile())
	schema := "CREATE TABLE comments (Text TEXT); CREATE TABLE posts (Id INTEGER, Title TEXT);"
	q := "Among the comments whose title is 'Choosing k in k means without overfitting', how many of them are sarcastic in tone?"
	sql, err := m.Complete(context.Background(), Text2SQLPrompt(schema, q))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.ToLower(sql), "sarcas") {
		t.Errorf("plain SQL must not pretend to filter sarcasm:\n%s", sql)
	}
	if !strings.Contains(sql, "COUNT(*)") {
		t.Errorf("comparison should count:\n%s", sql)
	}
}

func TestText2SQLHeadEmitsUDFsWhenCapable(t *testing.T) {
	m := newTestLM(OracleProfile())
	m.SQLCapabilities.LMUDFs = true
	q := "Among the comments whose title is 'Choosing k in k means without overfitting', how many of them are sarcastic in tone?"
	sql, err := m.Complete(context.Background(), Text2SQLPrompt("", q))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "LLM_FILTER('sarcastic', comments.Text)") {
		t.Errorf("UDF-capable synthesis should call LLM_FILTER:\n%s", sql)
	}
}

func TestAnswerHeadCounting(t *testing.T) {
	m := newTestLM(OracleProfile())
	points := []DataPoint{
		{"player_name": "A", "height": "190", "volleys": "80"},
		{"player_name": "B", "height": "185", "volleys": "75"},
		{"player_name": "C", "height": "200", "volleys": "60"},
		{"player_name": "D", "height": "170", "volleys": "90"},
	}
	q := "Among the players whose height is over 180 and whose volley score is over 70, how many of them are taller than Stephen Curry?"
	out, err := m.Complete(context.Background(), AnswerPrompt(points, nil, q))
	if err != nil {
		t.Fatal(err)
	}
	// Players over 180 with volleys > 70: A (190), B (185). Taller than
	// Curry (188): A only.
	if out != "[1]" {
		t.Errorf("count = %s, want [1]", out)
	}
}

func TestAnswerHeadMatch(t *testing.T) {
	m := newTestLM(OracleProfile())
	points := []DataPoint{
		{"School": "Fresno High", "City": "Fresno", "Longitude": "-119.8", "GSoffered": "9-12"},
		{"School": "Gunn High", "City": "Palo Alto", "Longitude": "-122.1", "GSoffered": "K-12"},
	}
	q := "What is the grade span offered of the school with the highest longitude located in a city that is part of the 'Silicon Valley' region?"
	out, err := m.Complete(context.Background(), AnswerPrompt(points, nil, q))
	if err != nil {
		t.Fatal(err)
	}
	if out != `["K-12"]` {
		t.Errorf("match answer = %s", out)
	}
}

func TestSemFilterHead(t *testing.T) {
	m := newTestLM(OracleProfile())
	out, err := m.Complete(context.Background(), SemFilterPrompt("Palo Alto is a city in the Silicon Valley region"))
	if err != nil || out != "True" {
		t.Errorf("Palo Alto claim = %q err=%v", out, err)
	}
	out, _ = m.Complete(context.Background(), SemFilterPrompt("Fresno is a city in the Silicon Valley region"))
	if out != "False" {
		t.Errorf("Fresno claim = %q", out)
	}
	out, _ = m.Complete(context.Background(), SemFilterPrompt("Titanic is a movie widely considered a classic"))
	if out != "True" {
		t.Errorf("Titanic claim = %q", out)
	}
	out, _ = m.Complete(context.Background(), SemFilterPrompt("height 190 is greater than the height of Stephen Curry in centimeters"))
	if out != "True" {
		t.Errorf("height claim = %q", out)
	}
	out, _ = m.Complete(context.Background(), SemFilterPrompt("the following text is positive: an absolute masterpiece from start to finish"))
	if out != "True" {
		t.Errorf("sentiment claim = %q", out)
	}
}

func TestSemCompareHead(t *testing.T) {
	m := newTestLM(OracleProfile())
	tech := "the gradient boosting residuals are reweighted per iteration"
	casual := "what music do you listen to while working"
	out, err := m.Complete(context.Background(), SemComparePrompt("more technical", tech, casual))
	if err != nil || out != "A" {
		t.Errorf("compare = %q err=%v", out, err)
	}
	out, _ = m.Complete(context.Background(), SemComparePrompt("more technical", casual, tech))
	if out != "B" {
		t.Errorf("compare flipped = %q", out)
	}
}

func TestSemAggregateRaces(t *testing.T) {
	m := newTestLM(OracleProfile())
	items := []string{
		"year=1999; date=1999-10-17; round=15; name=Malaysian Grand Prix",
		"year=2000; date=2000-10-22; round=2; name=Malaysian Grand Prix",
		"year=2017; date=2017-10-01; round=15; name=Malaysian Grand Prix",
	}
	out, err := m.Complete(context.Background(), SemAggPrompt("Summarize the races held on Sepang International Circuit", items))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Kuala Lumpur", "Malaysia", "1999: 1999-10-17", "2017: 2017-10-01", "Malaysian Grand Prix"} {
		if !strings.Contains(out, frag) {
			t.Errorf("race summary missing %q:\n%s", frag, out)
		}
	}
}

func TestSemAggregateGeneric(t *testing.T) {
	m := newTestLM(OracleProfile())
	items := []string{
		"an absolute masterpiece from start to finish",
		"still the best thing I have ever watched",
		"a triumph that rewards repeat viewing",
		"flawless pacing and unforgettable characters",
	}
	out, err := m.Complete(context.Background(), SemAggPrompt("Summarize the reviews", items))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "largely positive") || !strings.Contains(out, "4 entries") {
		t.Errorf("summary = %s", out)
	}
}

func TestStatsAndClockCharge(t *testing.T) {
	m := newTestLM(OracleProfile())
	before := m.Clock().Now()
	if _, err := m.Complete(context.Background(), SemFilterPrompt("Oakland is a city in the Bay Area region")); err != nil {
		t.Fatal(err)
	}
	if m.Clock().Now() <= before {
		t.Error("Complete must advance the clock")
	}
	st := m.Stats()
	if st.Calls != 1 || st.PromptTokens == 0 {
		t.Errorf("stats = %+v", st)
	}
	m.ResetStats()
	if m.Stats().Calls != 0 {
		t.Error("ResetStats")
	}
}

func TestCompleteBatchAlignsAndCharges(t *testing.T) {
	m := newTestLM(OracleProfile())
	prompts := []string{
		SemFilterPrompt("Palo Alto is a city in the Silicon Valley region"),
		SemFilterPrompt("Fresno is a city in the Silicon Valley region"),
		SemFilterPrompt("Cupertino is a city in the Silicon Valley region"),
	}
	outs, errs := m.CompleteBatch(context.Background(), prompts)
	if errs != nil {
		t.Fatalf("errs = %v", errs)
	}
	want := []string{"True", "False", "True"}
	for i := range want {
		if outs[i] != want[i] {
			t.Errorf("batch[%d] = %q, want %q", i, outs[i], want[i])
		}
	}
	if m.Stats().BatchCalls != 1 || m.Stats().BatchedItems != 3 {
		t.Errorf("batch stats = %+v", m.Stats())
	}
}

func TestBatchFasterThanSequential(t *testing.T) {
	mBatch := newTestLM(OracleProfile())
	mSeq := newTestLM(OracleProfile())
	var prompts []string
	for _, c := range world.CACities {
		prompts = append(prompts, SemFilterPrompt(c+" is a city in the Bay Area region"))
	}
	mBatch.CompleteBatch(context.Background(), prompts)
	for _, p := range prompts {
		if _, err := mSeq.Complete(context.Background(), p); err != nil {
			t.Fatal(err)
		}
	}
	if mBatch.Clock().Now()*2 > mSeq.Clock().Now() {
		t.Errorf("batched should be >2x faster: batch=%.2fs seq=%.2fs",
			mBatch.Clock().Now(), mSeq.Clock().Now())
	}
}

func TestFreeformSepangFallback(t *testing.T) {
	m := newTestLM(OracleProfile())
	out, err := m.Complete(context.Background(), "Tell me about the races held on Sepang International Circuit")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "general knowledge") || !strings.Contains(out, "Kuala Lumpur") {
		t.Errorf("freeform Sepang = %s", out)
	}
}

func TestRerankHeadScoresRelevantHigher(t *testing.T) {
	m := newTestLM(OracleProfile())
	q := "Among the players whose height is over 180, how many of them are taller than Stephen Curry?"
	relevant := RerankPrompt(DataPoint{"player_name": "A", "height": "195"}, nil, q)
	irrelevant := RerankPrompt(DataPoint{"player_name": "B", "height": "160"}, nil, q)
	r1, _ := m.Complete(context.Background(), relevant)
	r2, _ := m.Complete(context.Background(), irrelevant)
	if r1 <= r2 {
		t.Errorf("relevant %s should outscore irrelevant %s", r1, r2)
	}
}
