package llm

import "sync"

// Clock is a virtual clock measured in simulated seconds. The paper
// reports execution time on 8×A100 GPUs; this reproduction charges every
// simulated LM call against a Clock using the CostModel below, so latency
// comparisons (Table 1/2 "ET (s)" columns) are reproducible on any
// hardware and `go test` stays fast.
type Clock struct {
	mu  sync.Mutex
	now float64
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time in seconds.
func (c *Clock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d seconds (negative values are
// ignored) and returns the new time.
func (c *Clock) Advance(d float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now += d
	}
	return c.now
}

// CostModel converts token counts into simulated seconds. The defaults are
// calibrated to a 70B-parameter model on an 8-GPU node: slow single-stream
// decode, fast prefill, and near-free marginal cost for additional batch
// members (continuous batching).
type CostModel struct {
	// PrefillTPS is prompt-processing throughput, tokens/second.
	PrefillTPS float64
	// DecodeTPS is single-stream generation throughput, tokens/second.
	DecodeTPS float64
	// Overhead is the fixed per-call cost in seconds (queueing, scheduling,
	// tokenisation, network).
	Overhead float64
	// BatchDecodePenalty inflates decode time as the batch grows: the
	// effective decode time is max(out)/DecodeTPS * (1 + penalty*(n-1)).
	// Small values model a serving engine that is not yet compute-bound.
	BatchDecodePenalty float64
}

// DefaultCostModel approximates Llama-3.1-70B-Instruct on 8×A100 under
// vLLM. Values were tuned so the reproduction's Table 1 ET column lands in
// the same few-seconds range with the same ordering as the paper's.
func DefaultCostModel() CostModel {
	return CostModel{
		PrefillTPS:         2500,
		DecodeTPS:          30,
		Overhead:           0.3,
		BatchDecodePenalty: 0.02,
	}
}

// CallSeconds is the cost of one unbatched call.
func (m CostModel) CallSeconds(promptTokens, outputTokens int) float64 {
	return m.Overhead +
		float64(promptTokens)/m.PrefillTPS +
		float64(outputTokens)/m.DecodeTPS
}

// BatchSeconds is the cost of one batched call over n prompts: a single
// overhead, all prefills summed, and decode dominated by the longest
// output with a mild batch penalty. This is the mechanism behind the
// hand-written TAG pipelines' latency advantage.
func (m CostModel) BatchSeconds(promptTokens, outputTokens []int) float64 {
	if len(promptTokens) == 0 {
		return 0
	}
	totalPrefill := 0
	maxOut := 0
	for i, p := range promptTokens {
		totalPrefill += p
		if i < len(outputTokens) && outputTokens[i] > maxOut {
			maxOut = outputTokens[i]
		}
	}
	n := float64(len(promptTokens))
	decode := float64(maxOut) / m.DecodeTPS * (1 + m.BatchDecodePenalty*(n-1))
	return m.Overhead + float64(totalPrefill)/m.PrefillTPS + decode
}
