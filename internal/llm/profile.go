package llm

import (
	"hash/fnv"
	"math"
)

// Profile is the fallibility configuration of a simulated LM. Every knob
// maps to a failure mode the TAG paper's evaluation observes:
//
//   - knowledge coverage/noise     → Text2SQL's wrong world-knowledge clauses
//   - score noise                  → imperfect semantic filtering/ranking
//   - arithmetic error growth      → RAG's inability to compute over rows
//   - context window               → Text2SQL+LM's context-length failures
//   - SQL skill error              → residual Text2SQL mistakes on the
//     relational skeleton
type Profile struct {
	// Name identifies the profile in logs and EXPERIMENTS.md.
	Name string
	// Seed drives all deterministic noise.
	Seed uint64

	// ContextWindow is the maximum prompt size in tokens; prompts beyond it
	// fail with ErrContextLength (the paper observes such errors on the
	// Text2SQL + LM baseline).
	ContextWindow int
	// MaxOutputTokens caps generations (summaries are budgeted against it).
	MaxOutputTokens int

	// KnowledgeRecall is the probability the model can *recognise* a true
	// fact when asked directly (e.g. "is Cupertino in Silicon Valley?").
	KnowledgeRecall float64
	// EnumerationRecall is the probability a true fact surfaces when the
	// model must *enumerate* members of a set (e.g. writing the full
	// IN-list of Silicon Valley cities inside SQL). Recognition is far
	// easier than recall-by-generation for real LMs; this asymmetry is why
	// per-row semantic filters beat knowledge clauses compiled into SQL.
	EnumerationRecall float64
	// JudgeFlipRate is the probability an easy surface-form judgement
	// (named-after-a-person, premium-sounding) flips — borderline-case
	// errors only.
	JudgeFlipRate float64
	// KnowledgeFalsePositive is the probability the model wrongly believes
	// a false fact of the same shape (e.g. that Stockton is in the Bay
	// Area).
	KnowledgeFalsePositive float64
	// HeightErrorCM is the magnitude of recall error on numeric facts.
	HeightErrorCM float64

	// ScoreNoise is the amplitude of deterministic noise added to semantic
	// trait scores (sentiment/technicality/sarcasm), in trait units.
	ScoreNoise float64

	// ArithBase and ArithPerRow give the probability of an in-context
	// computation slip: p = min(0.9, ArithBase + ArithPerRow*rows). This is
	// what makes "feed 400 rows to the model and ask it to count" fail.
	ArithBase   float64
	ArithPerRow float64

	// SQLSkillError is the probability of a subtly wrong relational
	// skeleton during query synthesis (dropped filter, flipped order).
	SQLSkillError float64
}

// DefaultProfile models an instruction-tuned 70B chat model, tuned so the
// five baselines land near the paper's Table 1 numbers.
func DefaultProfile() Profile {
	return Profile{
		Name:                   "sim-70b-instruct",
		Seed:                   0x7A67,
		ContextWindow:          8192,
		MaxOutputTokens:        512,
		KnowledgeRecall:        0.96,
		EnumerationRecall:      0.34,
		KnowledgeFalsePositive: 0.05,
		JudgeFlipRate:          0.02,
		HeightErrorCM:          2,
		ScoreNoise:             0.12,
		ArithBase:              0.18,
		ArithPerRow:            0.022,
		SQLSkillError:          0.18,
	}
}

// OracleProfile is a perfect model: full recall, no noise, huge context.
// Used by tests to separate pipeline bugs from modelled fallibility, and by
// ablation benchmarks.
func OracleProfile() Profile {
	return Profile{
		Name:              "oracle",
		Seed:              1,
		ContextWindow:     1 << 20,
		MaxOutputTokens:   1 << 16,
		KnowledgeRecall:   1,
		EnumerationRecall: 1,
	}
}

// noise returns a deterministic pseudo-random float in [0, 1) keyed by the
// profile seed and the given strings. The same question about the same
// entity always gets the same answer — models are consistently wrong, not
// randomly wrong.
func (p Profile) noise(keys ...string) float64 {
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(p.Seed >> (8 * i))
	}
	h.Write(seed[:])
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0x1f})
	}
	// 53-bit mantissa to float in [0,1).
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// signedNoise returns deterministic noise in [-1, 1).
func (p Profile) signedNoise(keys ...string) float64 {
	return 2*p.noise(keys...) - 1
}

// arithmeticSlips reports whether an in-context computation over n rows
// goes wrong, keyed by the task description.
func (p Profile) arithmeticSlips(task string, n int) bool {
	prob := math.Min(0.9, p.ArithBase+p.ArithPerRow*float64(n))
	return p.noise("arith", task) < prob
}
