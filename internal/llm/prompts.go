package llm

import (
	"fmt"
	"sort"
	"strings"
)

// This file defines the prompt formats shared between the pipelines (which
// build prompts) and SimLM (which recognises them). The Text2SQL and answer
// generation formats follow the TAG paper's Appendix B verbatim; the
// semantic-operator formats follow LOTUS's per-row instruction style.

// Prompt markers used for routing inside SimLM.
const (
	markText2SQL   = "-- Using valid SQLite and understanding External Knowledge, answer the following questions for the tables provided above."
	markAnswerList = "You will be given a list of data points and a question. Use the data points to answer the question. Your answer must be a list of values"
	markAnswerAgg  = "You will be given a list of data points and a question. Use the data points to answer the question. If a value is a string"
	markRerank     = "Rate the relevance of the data point to the question"
	markSemFilter  = "Decide whether the claim is true. Answer True or False only."
	markSemCompare = "Given the criterion, decide which item satisfies it more. Answer A or B only."
	markSemAgg     = "Summarize the following items according to the instruction."
	markSemMap     = "Apply the instruction to the item and respond with the result only."
	markFactHeight = "State the height of "
)

// Text2SQLPrompt renders the BIRD-style query synthesis prompt (Appendix
// B.1): the full schema, an external-knowledge line, and the question.
func Text2SQLPrompt(schemaSQL, question string) string {
	var b strings.Builder
	b.WriteString(schemaSQL)
	b.WriteString("\n-- External Knowledge: None\n")
	b.WriteString(markText2SQL)
	b.WriteString("\n-- ")
	b.WriteString(question)
	b.WriteString("\nSELECT")
	return b.String()
}

// questionFromText2SQL extracts the question line back out of a Text2SQL
// prompt.
func questionFromText2SQL(prompt string) (string, bool) {
	i := strings.Index(prompt, markText2SQL)
	if i < 0 {
		return "", false
	}
	rest := prompt[i+len(markText2SQL):]
	rest = strings.TrimPrefix(rest, "\n-- ")
	q, _, ok := strings.Cut(rest, "\nSELECT")
	return strings.TrimSpace(q), ok
}

// DataPoint is one row serialised for in-context use, in the paper's
// "- col: val" format.
type DataPoint map[string]string

// renderDataPoint serialises a data point with deterministic column order.
func renderDataPoint(b *strings.Builder, idx int, dp DataPoint, order []string) {
	fmt.Fprintf(b, "Data Point %d:\n", idx)
	if order == nil {
		order = make([]string, 0, len(dp))
		for k := range dp {
			order = append(order, k)
		}
		sort.Strings(order)
	}
	for _, k := range order {
		if v, ok := dp[k]; ok {
			fmt.Fprintf(b, "- %s: %s\n", k, v)
		}
	}
}

// AnswerPrompt renders the answer-generation prompt for match-based,
// comparison and ranking queries (Appendix B.2, list-format variant).
// order fixes the column rendering order (nil = sorted).
func AnswerPrompt(points []DataPoint, order []string, question string) string {
	var b strings.Builder
	b.WriteString(markAnswerList)
	b.WriteString(" that is evaluatable in Python. Respond in the format [value1, value2, ..., valueN]. If you are unable to answer the question, respond with []. Respond with only the list of values and nothing else. If a value is a string, it must be enclosed in double quotes.\n\n")
	for i, dp := range points {
		renderDataPoint(&b, i+1, dp, order)
	}
	b.WriteString("\nQuestion: ")
	b.WriteString(question)
	return b.String()
}

// AggAnswerPrompt renders the aggregation-variant answer prompt (free-form
// answer, Appendix B.2 second template).
func AggAnswerPrompt(points []DataPoint, order []string, question string) string {
	var b strings.Builder
	b.WriteString(markAnswerAgg)
	b.WriteString(", it must be enclosed in double quotes.\n\n")
	for i, dp := range points {
		renderDataPoint(&b, i+1, dp, order)
	}
	b.WriteString("\nQuestion: ")
	b.WriteString(question)
	return b.String()
}

// parseAnswerPrompt recovers the data points and question from an answer
// prompt (either variant).
func parseAnswerPrompt(prompt string) (points []DataPoint, question string, ok bool) {
	qi := strings.LastIndex(prompt, "\nQuestion: ")
	if qi < 0 {
		return nil, "", false
	}
	question = strings.TrimSpace(prompt[qi+len("\nQuestion: "):])
	body := prompt[:qi]
	var cur DataPoint
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.HasPrefix(line, "Data Point ") {
			if cur != nil {
				points = append(points, cur)
			}
			cur = DataPoint{}
			continue
		}
		if cur != nil && strings.HasPrefix(line, "- ") {
			kv := line[2:]
			k, v, found := strings.Cut(kv, ": ")
			if found {
				cur[k] = v
			}
		}
	}
	if cur != nil {
		points = append(points, cur)
	}
	return points, question, true
}

// RerankPrompt renders the 0–1 relevance-scoring prompt used by the
// Retrieval + LM Rank baseline (after STaRK).
func RerankPrompt(point DataPoint, order []string, question string) string {
	var b strings.Builder
	b.WriteString(markRerank)
	b.WriteString(" on a scale from 0 to 1. Respond with only a number.\n\n")
	renderDataPoint(&b, 1, point, order)
	b.WriteString("\nQuestion: ")
	b.WriteString(question)
	return b.String()
}

// SemFilterPrompt renders a LOTUS-style per-row boolean claim. The claim
// must already have its {Column} placeholders substituted.
func SemFilterPrompt(claim string) string {
	return markSemFilter + "\nClaim: " + claim
}

// SemComparePrompt renders a pairwise comparison used by semantic top-k.
func SemComparePrompt(criterion, itemA, itemB string) string {
	return markSemCompare + "\nCriterion: " + criterion +
		"\nItem A: " + itemA + "\nItem B: " + itemB
}

// SemAggPrompt renders a hierarchical-aggregation step over items.
func SemAggPrompt(instruction string, items []string) string {
	var b strings.Builder
	b.WriteString(markSemAgg)
	b.WriteString("\nInstruction: ")
	b.WriteString(instruction)
	b.WriteString("\nItems:\n")
	for _, it := range items {
		b.WriteString("- ")
		b.WriteString(it)
		b.WriteString("\n")
	}
	return b.String()
}

// SemMapPrompt renders a per-row transformation.
func SemMapPrompt(instruction, item string) string {
	return markSemMap + "\nInstruction: " + instruction + "\nItem: " + item
}

// HeightPrompt asks the model for an athlete's height — the single
// fact-lookup call an expert pipeline makes before filtering relationally.
func HeightPrompt(person string) string {
	return markFactHeight + person + " in centimeters. Respond with only a number."
}

// FormatAnswerList renders values in the paper's answer format:
// [v1, v2, ...] with strings double-quoted.
func FormatAnswerList(values []string, quoted []bool) string {
	var b strings.Builder
	b.WriteString("[")
	for i, v := range values {
		if i > 0 {
			b.WriteString(", ")
		}
		if i < len(quoted) && quoted[i] {
			b.WriteString("\"" + v + "\"")
		} else {
			b.WriteString(v)
		}
	}
	b.WriteString("]")
	return b.String()
}

// ParseAnswerList parses a "[v1, v2]"-style answer into raw values with
// quotes stripped. Unparseable answers return nil.
func ParseAnswerList(s string) []string {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return []string{}
	}
	var out []string
	for len(inner) > 0 {
		inner = strings.TrimLeft(inner, " ,")
		if inner == "" {
			break
		}
		if inner[0] == '"' {
			end := strings.IndexByte(inner[1:], '"')
			if end < 0 {
				out = append(out, inner[1:])
				break
			}
			out = append(out, inner[1:1+end])
			inner = inner[2+end:]
			continue
		}
		j := strings.IndexByte(inner, ',')
		if j < 0 {
			out = append(out, strings.TrimSpace(inner))
			break
		}
		out = append(out, strings.TrimSpace(inner[:j]))
		inner = inner[j+1:]
	}
	return out
}
