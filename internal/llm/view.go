package llm

import (
	"math"
	"sort"
	"strings"

	"tag/internal/world"
)

// View is the simulated LM's parametric knowledge: the true World seen
// through a lossy, deterministic lens. A fact is *recalled* with
// probability Profile.KnowledgeRecall (keyed by entity, so the model is
// consistently ignorant of the same facts), and false facts of the same
// shape are *hallucinated* with probability KnowledgeFalsePositive.
type View struct {
	w *world.World
	p Profile
}

// NewView wraps a world in the profile's noise.
func NewView(w *world.World, p Profile) *View {
	return &View{w: w, p: p}
}

// recalls reports whether the model recognises a (relation, entity) fact
// when asked directly.
func (v *View) recalls(relation, entity string) bool {
	return v.p.noise("recall", relation, strings.ToLower(entity)) < v.p.KnowledgeRecall
}

// enumerates reports whether a true fact surfaces when the model must
// generate the member list itself (a much harder task than recognition).
func (v *View) enumerates(relation, entity string) bool {
	return v.p.noise("enum", relation, strings.ToLower(entity)) < v.p.EnumerationRecall
}

// hallucinates reports whether the model wrongly asserts a false
// (relation, entity) fact.
func (v *View) hallucinates(relation, entity string) bool {
	return v.p.noise("halluc", relation, strings.ToLower(entity)) < v.p.KnowledgeFalsePositive
}

// believesFact is the generic boolean-fact channel: truth ∧ recalled, or
// ¬truth ∧ hallucinated.
func (v *View) believesFact(relation, entity string, truth bool) bool {
	if truth {
		return v.recalls(relation, entity)
	}
	return v.hallucinates(relation, entity)
}

// InRegion is the view of world.InRegion.
func (v *View) InRegion(city, region string) bool {
	rel := "region:" + strings.ToLower(region)
	return v.believesFact(rel, city, v.w.InRegion(city, region))
}

// CountyInBayArea is the view of world.CountyInBayArea.
func (v *View) CountyInBayArea(county string) bool {
	return v.believesFact("bayarea_county", county, v.w.CountyInBayArea(county))
}

// RegionCitiesBelieved enumerates the cities the model believes are in the
// region, drawing candidates from the same pool the data generators use
// (so hallucinated members are plausible Californian cities).
func (v *View) RegionCitiesBelieved(region string) []string {
	rel := "region:" + strings.ToLower(region)
	var out []string
	for _, c := range world.CACities {
		truth := v.w.InRegion(c, region)
		if truth && v.enumerates(rel, c) || !truth && v.hallucinates(rel, c) {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// BayAreaCountiesBelieved enumerates believed Bay Area counties from the
// generator's county pool.
func (v *View) BayAreaCountiesBelieved() []string {
	seen := make(map[string]bool)
	var out []string
	for _, county := range world.CACounties {
		if seen[county] {
			continue
		}
		seen[county] = true
		truth := v.w.CountyInBayArea(county)
		if truth && v.enumerates("bayarea_county", county) || !truth && v.hallucinates("bayarea_county", county) {
			out = append(out, county)
		}
	}
	sort.Strings(out)
	return out
}

// AthleteHeightCM recalls an athlete's height with bounded numeric error;
// the model may fail to recall the athlete at all.
func (v *View) AthleteHeightCM(name string) (float64, bool) {
	h, ok := v.w.AthleteHeightCM(name)
	if !ok || !v.recalls("athlete_height", name) {
		return 0, false
	}
	err := v.p.signedNoise("height_err", name) * v.p.HeightErrorCM
	return math.Round(h + err), true
}

// IsClassicMovie is the view of world.IsClassicMovie.
func (v *View) IsClassicMovie(title string) bool {
	return v.believesFact("classic", title, v.w.IsClassicMovie(title))
}

// IsEUCountry is the view of world.IsEUCountry.
func (v *View) IsEUCountry(country string) bool {
	return v.believesFact("eu", country, v.w.IsEUCountry(country))
}

// EUCountriesBelieved enumerates the believed EU members from the
// generator's country pool.
func (v *View) EUCountriesBelieved() []string {
	var out []string
	for _, c := range world.EuropeanCountries {
		truth := v.w.IsEUCountry(c)
		if truth && v.enumerates("eu", c) || !truth && v.hallucinates("eu", c) {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// Circuit recalls circuit facts; well-known circuits are assumed recalled
// (they pass through the generic recall channel like everything else).
func (v *View) Circuit(name string) (world.CircuitFact, bool) {
	c, ok := v.w.Circuit(name)
	if !ok || !v.recalls("circuit", name) {
		return world.CircuitFact{}, false
	}
	return c, true
}

// Traits estimates the latent traits of a text: the true traits plus
// bounded deterministic noise, clamped to [0, 1]. This is the semantic
// judgement channel behind sem_filter / sem_topk / sentiment tasks.
func (v *View) Traits(text string) world.Traits {
	t := world.TextTraits(text)
	perturb := func(x float64, channel string) float64 {
		x += v.p.signedNoise("trait", channel, text) * v.p.ScoreNoise
		return math.Max(0, math.Min(1, x))
	}
	return world.Traits{
		Sentiment:    perturb(t.Sentiment, "sent"),
		Technicality: perturb(t.Technicality, "tech"),
		Sarcasm:      perturb(t.Sarcasm, "sarc"),
	}
}

// IsNamedAfterPerson judges whether an institution name is named after a
// person — a reasoning task, so it runs through the trait noise channel
// rather than the knowledge channel.
func (v *View) IsNamedAfterPerson(name string) bool {
	truth := world.IsNamedAfterPerson(name)
	// Surface form makes this an easy task; only rare borderline slips.
	if v.p.noise("namedperson", name) < v.p.JudgeFlipRate {
		return !truth
	}
	return truth
}

// IsPremiumProduct judges whether a product description sounds premium.
func (v *View) IsPremiumProduct(desc string) bool {
	truth := world.IsPremiumProduct(desc)
	if v.p.noise("premium", desc) < v.p.JudgeFlipRate {
		return !truth
	}
	return truth
}

// World exposes the wrapped world for code that needs ground truth (the
// benchmark harness; never the baselines).
func (v *View) World() *world.World { return v.w }
