package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Type       Kind // affinity: values are coerced toward this kind on insert
	DeclType   string
	NotNull    bool
	PrimaryKey bool
	Unique     bool
}

// Table is an in-memory heap of rows plus secondary indexes.
// All access must go through Database, which provides locking.
type Table struct {
	Name     string
	Columns  []Column
	colIndex map[string]int    // lower-cased column name -> ordinal
	rows     []Row             // the heap; row ids are slice positions
	indexes  map[string]*Index // lower-cased column name -> index
}

// Index is a dual-structure secondary index over one column.
//
// The hash map m (binary value key -> row ids, ids ascending) serves
// equality lookups and join probes; it is maintained eagerly by every DML
// path, so it is always current. The ordered view ord — one entry per
// distinct value, sorted by Value.Compare, each entry carrying its row ids
// in heap order — serves range scans, index-ordered ORDER BY, and merge
// joins; it is built lazily from the hash map on first ordered access
// (ordidx.go) and *invalidated*, never incrementally maintained, by DML:
// insertRow and rebuildIndexes drop it and the next ordered scan rebuilds.
// The invariant is therefore: ord is either nil or exactly consistent
// with m. ordMu serialises concurrent lazy builds (readers share the
// database lock, so they can race to build) and makes invalidation safe
// under the race detector.
type Index struct {
	Name   string
	Column int
	Unique bool
	m      map[string][]int

	ordMu sync.Mutex
	ord   []ordEntry
}

// Database is an embedded in-memory SQL database. It is safe for concurrent
// use; reads take a shared lock and writes an exclusive one.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table
	funcs  *FuncRegistry
	plans  *planCache
	stats  dbStats // observability counters; snapshot via Stats()
}

// NewDatabase returns an empty database with the built-in function registry.
func NewDatabase() *Database {
	return &Database{
		tables: make(map[string]*Table),
		funcs:  NewFuncRegistry(),
		plans:  newPlanCache(),
	}
}

// Funcs exposes the database's function registry so callers can register
// UDFs (notably the TAG layer's LM UDFs).
func (db *Database) Funcs() *FuncRegistry { return db.funcs }

// Table returns the named table, or an error if it does not exist.
func (db *Database) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tableLocked(name)
}

func (db *Database) tableLocked(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, errf(ErrNoTable, "sql: no such table: %s", name)
	}
	return t, nil
}

// TableNames returns the names of all tables in sorted order.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// SchemaSQL renders the CREATE TABLE statements for every table, in sorted
// order — the BIRD-style schema prompt fed to the LM during query synthesis.
func (db *Database) SchemaSQL() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		t := db.tables[n]
		b.WriteString("CREATE TABLE " + quoteIdent(t.Name) + " (\n")
		for i, c := range t.Columns {
			b.WriteString("    " + quoteIdent(c.Name) + " " + c.DeclType)
			if c.PrimaryKey {
				b.WriteString(" PRIMARY KEY")
			}
			if c.NotNull && !c.PrimaryKey {
				b.WriteString(" NOT NULL")
			}
			if i < len(t.Columns)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString(");\n")
	}
	return b.String()
}

// affinityKind maps a declared SQL type name to a storage kind, following
// SQLite's affinity rules loosely.
func affinityKind(decl string) Kind {
	d := strings.ToUpper(decl)
	switch {
	case strings.Contains(d, "INT"):
		return KindInt
	case strings.Contains(d, "BOOL"):
		return KindBool
	case strings.Contains(d, "REAL"), strings.Contains(d, "FLOA"),
		strings.Contains(d, "DOUB"), strings.Contains(d, "NUMERIC"),
		strings.Contains(d, "DECIMAL"):
		return KindFloat
	default:
		return KindText
	}
}

// coerce nudges a value toward the column's affinity, mirroring SQLite:
// numeric affinities parse numeric-looking text; TEXT affinity renders
// numbers to strings only when explicitly requested (we keep them as-is).
func coerce(v Value, k Kind) Value {
	if v.IsNull() {
		return v
	}
	switch k {
	case KindInt:
		if v.Kind() == KindText {
			f := v.AsFloat()
			s := strings.TrimSpace(v.AsText())
			if s != "" && fmt.Sprint(f) != "0" || s == "0" {
				// Only coerce when the text is actually numeric.
				if isNumericText(s) {
					if f == float64(int64(f)) {
						return Int(int64(f))
					}
					return Float(f)
				}
			}
			return v
		}
		if v.Kind() == KindFloat && v.AsFloat() == float64(int64(v.AsFloat())) {
			return Int(int64(v.AsFloat()))
		}
		return v
	case KindFloat:
		if v.Kind() == KindInt {
			return Float(float64(v.AsInt()))
		}
		if v.Kind() == KindText && isNumericText(strings.TrimSpace(v.AsText())) {
			return Float(v.AsFloat())
		}
		return v
	case KindBool:
		if v.Kind() == KindInt {
			return Bool(v.AsInt() != 0)
		}
		return v
	default:
		return v
	}
}

func isNumericText(s string) bool {
	if s == "" {
		return false
	}
	dot, digits := false, false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits = true
		case r == '.' && !dot:
			dot = true
		case (r == '-' || r == '+') && i == 0:
		default:
			return false
		}
	}
	return digits
}

// newTable builds a Table from a CREATE TABLE statement.
func newTable(stmt *CreateTableStmt) (*Table, error) {
	t := &Table{
		Name:     stmt.Name,
		colIndex: make(map[string]int, len(stmt.Columns)),
		indexes:  make(map[string]*Index),
	}
	for i, cd := range stmt.Columns {
		lower := strings.ToLower(cd.Name)
		if _, dup := t.colIndex[lower]; dup {
			return nil, errf(ErrSchema, "sql: duplicate column %q in table %q", cd.Name, stmt.Name)
		}
		t.Columns = append(t.Columns, Column{
			Name:       cd.Name,
			Type:       affinityKind(cd.Type),
			DeclType:   cd.Type,
			NotNull:    cd.NotNull || cd.PrimaryKey,
			PrimaryKey: cd.PrimaryKey,
			Unique:     cd.Unique || cd.PrimaryKey,
		})
		t.colIndex[lower] = i
	}
	// Primary keys and UNIQUE columns get an index automatically.
	for i, c := range t.Columns {
		if c.PrimaryKey || c.Unique {
			t.indexes[strings.ToLower(c.Name)] = &Index{
				Name:   "auto_" + t.Name + "_" + c.Name,
				Column: i,
				Unique: true,
				m:      make(map[string][]int),
			}
		}
	}
	return t, nil
}

// ColumnIndex returns the ordinal of the named column (case-insensitive)
// or -1 if absent.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIndex[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// RowCount reports the number of stored rows.
func (t *Table) RowCount() int { return len(t.rows) }

// insertRow appends a row (already aligned to table order and coerced) and
// maintains indexes. It enforces NOT NULL and UNIQUE constraints.
func (t *Table) insertRow(r Row) error {
	if len(r) != len(t.Columns) {
		return errf(ErrMisuse, "sql: table %s expects %d values, got %d", t.Name, len(t.Columns), len(r))
	}
	for i, c := range t.Columns {
		r[i] = coerce(r[i], c.Type)
		if c.NotNull && r[i].IsNull() {
			return errf(ErrConstraint, "sql: NOT NULL constraint failed: %s.%s", t.Name, c.Name)
		}
	}
	for _, idx := range t.indexes {
		key := r[idx.Column].Key()
		if idx.Unique && len(idx.m[key]) > 0 && !r[idx.Column].IsNull() {
			return errf(ErrConstraint, "sql: UNIQUE constraint failed: %s.%s = %s",
				t.Name, t.Columns[idx.Column].Name, r[idx.Column])
		}
	}
	id := len(t.rows)
	t.rows = append(t.rows, r)
	for _, idx := range t.indexes {
		key := r[idx.Column].Key()
		idx.m[key] = append(idx.m[key], id)
		idx.invalidateOrdered()
	}
	return nil
}

// rebuildIndexes recomputes all index maps after a bulk mutation and
// invalidates their ordered views.
func (t *Table) rebuildIndexes() {
	for _, idx := range t.indexes {
		idx.m = make(map[string][]int, len(t.rows))
		for id, r := range t.rows {
			key := r[idx.Column].Key()
			idx.m[key] = append(idx.m[key], id)
		}
		idx.invalidateOrdered()
	}
}

// lookup returns the ids of rows whose indexed column equals v.
func (idx *Index) lookup(v Value) []int { return idx.m[v.Key()] }
