package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Type       Kind // affinity: values are coerced toward this kind on insert
	DeclType   string
	NotNull    bool
	PrimaryKey bool
	Unique     bool
}

// rowVersion is one version of a row. Versions of a slot form a
// newest-first chain: head is the most recent write, next leads to older
// versions. xmin (the creating transaction) is immutable once the version
// is published; xmax (the deleting or superseding transaction) and the
// chain link are atomic so readers walk chains with no lock held while
// writers stamp and vacuum unlinks.
type rowVersion struct {
	xmin uint64
	xmax atomic.Uint64
	next atomic.Pointer[rowVersion]
	row  Row
}

// rowSlot is one stable row id's chain head. Slot structs are shared
// between successive published slot arrays, so a reader holding a stale
// array still observes head replacements and xmax stamps through the same
// struct.
type rowSlot struct {
	head atomic.Pointer[rowVersion]
}

// Table is an in-memory versioned heap of rows plus secondary indexes.
//
// Row ids are slot positions and they are *stable*: DELETE stamps xmax on
// the head version instead of removing the slot, UPDATE prepends a new
// version at the same slot, so no surviving row is ever renumbered by DML
// and scan order without ORDER BY stays observable. Slots whose versions
// are all invisible are skipped by scans; the background vacuum
// (vacuum.go) empties them once no live snapshot can see any version.
//
// Readers never lock the table: the slot array pointer, the published
// slot count and every chain link are atomic, and all visibility
// decisions are made against the statement's snapshot (txn.go). Writers
// mutate only under the database's single-writer latch.
type Table struct {
	Name     string
	Columns  []Column
	colIndex map[string]int // lower-cased column name -> ordinal

	slots atomic.Pointer[[]*rowSlot] // slot array; len == capacity, grown by COW
	n     atomic.Int64               // published slot count (ids < n are valid)

	liveRows atomic.Int64 // rows visible to a fresh snapshot

	indexes atomic.Pointer[map[string]*Index] // lower-cased column name -> index; COW on CREATE INDEX

	// staleIdx counts rolled-back writes whose superset index entries
	// still need sweeping; the vacuum rebuilds this table's indexes when
	// it is nonzero even if no chain version was reclaimable.
	staleIdx atomic.Int64

	// segs is the published list of immutable compressed column segments
	// sealed off cold full blocks of the heap (segment.go), sorted by lo.
	// Segments are redundant with the heap: DML on a covered slot drops
	// the covering segment before the change publishes.
	segs       atomic.Pointer[[]*segment]
	sealedRows atomic.Int64 // rows currently covered by segments
}

// Index is a dual-structure secondary index over one column, maintained
// as a *superset* of every row version still reachable:
//
//   - The hash map m (binary value key -> posting: the value plus its row
//     ids, ascending) serves equality lookups and join probes. DML only
//     ever ADDS entries — INSERT adds the new id under its key, UPDATE
//     adds the id under the new key and leaves it under the old one,
//     DELETE leaves the posting untouched — so an id may appear under
//     every key any of its versions ever carried. Only the vacuum removes
//     entries, and only once no live snapshot can see the version that
//     put them there.
//   - The ordered view ord — one immutable entry per distinct value,
//     sorted by Value.Compare, each entry's id list replaced copy-on-write
//     — serves range scans, index-ordered ORDER BY and merge joins. It is
//     built lazily from the hash map on first ordered access and
//     maintained incrementally by the same add-only discipline; structural
//     changes (a new distinct value, a vacuum sweep) publish a fresh view
//     pointer, so a reader that loaded the view keeps a consistent one for
//     its whole scan.
//
// Because both structures are supersets, every consumer re-checks each
// candidate: it fetches the row version visible to its snapshot and emits
// the id only if that version's indexed value equals the probed key (or
// the entry's value, for ordered scans). The recheck makes lookups exact
// per snapshot — an id listed under both its old and new key matches
// exactly one of them — and lets readers run entirely without locks: mu
// latches only the momentary posting copy-out and the lazy view build,
// never a cursor iteration.
type Index struct {
	Name   string
	Column int
	Unique bool

	mu  sync.Mutex // latches m and the lazy/structural ord transitions
	m   map[string]posting
	ord atomic.Pointer[[]*ordEntry] // nil until first ordered access
}

// posting is one distinct indexed value and the ids of every version-
// bearing row that ever carried it (ascending, superset semantics).
type posting struct {
	val Value
	ids []int
}

// Database is an embedded in-memory SQL database, safe for concurrent
// use. Readers are lock-free (MVCC snapshots, txn.go); writers serialise
// on writeMu.
type Database struct {
	tables atomic.Pointer[map[string]*Table] // COW: replaced wholesale by DDL
	funcs  *FuncRegistry
	plans  *planCache
	stats  dbStats // observability counters; snapshot via Stats()

	// maxWorkers bounds the per-query worker pool for parallel operators
	// (parallel.go). 1 disables intra-query parallelism entirely.
	maxWorkers int

	tm      *txnManager
	writeMu sync.Mutex // single-writer latch: DML, DDL, transaction write spans, vacuum

	sessionMu sync.Mutex
	session   *Txn // transaction opened by SQL BEGIN; bare statements join it

	garbage   atomic.Int64   // dead versions since the last vacuum
	vacuuming atomic.Bool    // single-flight latch for the background vacuum
	sealDebt  atomic.Int64   // rows inserted since the last sealing pass
	sealing   atomic.Bool    // single-flight latch for the background sealer
	vacWG     sync.WaitGroup // joins background maintenance: vacuum + checkpoint
	closed    atomic.Bool

	// Durability (wal.go / recovery.go). wal is nil for an in-memory
	// database; set once by openWAL before the database is shared.
	wal           *walWriter
	durPath       string
	durOpts       DurabilityOptions
	durSet        bool
	checkpointing atomic.Bool // single-flight latch for background checkpoints
}

// Option configures a Database at construction time.
type Option func(*Database)

// WithMaxWorkers sets the upper bound on worker goroutines a single query
// may use for parallel scans, aggregation, and hash-join builds. The
// default is GOMAXPROCS capped at 8; 1 forces fully serial execution.
func WithMaxWorkers(n int) Option {
	return func(db *Database) {
		if n < 1 {
			n = 1
		}
		db.maxWorkers = n
	}
}

// NewDatabase returns an empty database with the built-in function registry.
func NewDatabase(opts ...Option) *Database {
	db := &Database{
		funcs:      NewFuncRegistry(),
		plans:      newPlanCache(),
		maxWorkers: defaultMaxWorkers(),
		tm:         newTxnManager(),
	}
	empty := make(map[string]*Table)
	db.tables.Store(&empty)
	for _, opt := range opts {
		opt(db)
	}
	return db
}

// Close waits for in-flight background maintenance (vacuum, checkpoint)
// to finish and stops new runs from starting. On a durable database it
// then syncs and closes the WAL — a clean Close makes every committed
// transaction durable regardless of fsync policy — returning a typed
// ErrIO if that final sync fails. The database remains readable.
func (db *Database) Close() error {
	if !db.closed.CompareAndSwap(false, true) {
		return nil
	}
	db.vacWG.Wait()
	if db.wal != nil {
		return db.wal.close()
	}
	return nil
}

// Funcs exposes the database's function registry so callers can register
// UDFs (notably the TAG layer's LM UDFs).
func (db *Database) Funcs() *FuncRegistry { return db.funcs }

// tableMap returns the current published catalog. The map is immutable;
// DDL publishes a replacement.
func (db *Database) tableMap() map[string]*Table { return *db.tables.Load() }

// publishTables applies a catalog mutation copy-on-write (writeMu held).
func (db *Database) publishTables(mutate func(map[string]*Table)) {
	old := db.tableMap()
	next := make(map[string]*Table, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	mutate(next)
	db.tables.Store(&next)
}

// Table returns the named table, or an error if it does not exist.
func (db *Database) Table(name string) (*Table, error) {
	return db.lookupTable(name)
}

func (db *Database) lookupTable(name string) (*Table, error) {
	t, ok := db.tableMap()[strings.ToLower(name)]
	if !ok {
		return nil, errf(ErrNoTable, "sql: no such table: %s", name)
	}
	return t, nil
}

// TableNames returns the names of all tables in sorted order.
func (db *Database) TableNames() []string {
	tabs := db.tableMap()
	names := make([]string, 0, len(tabs))
	for _, t := range tabs {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// SchemaSQL renders the CREATE TABLE statements for every table, in sorted
// order — the BIRD-style schema prompt fed to the LM during query synthesis.
func (db *Database) SchemaSQL() string {
	tabs := db.tableMap()
	names := make([]string, 0, len(tabs))
	for n := range tabs {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		t := tabs[n]
		b.WriteString("CREATE TABLE " + quoteIdent(t.Name) + " (\n")
		for i, c := range t.Columns {
			b.WriteString("    " + quoteIdent(c.Name) + " " + c.DeclType)
			if c.PrimaryKey {
				b.WriteString(" PRIMARY KEY")
			}
			if c.NotNull && !c.PrimaryKey {
				b.WriteString(" NOT NULL")
			}
			if i < len(t.Columns)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString(");\n")
	}
	return b.String()
}

// affinityKind maps a declared SQL type name to a storage kind, following
// SQLite's affinity rules loosely.
func affinityKind(decl string) Kind {
	d := strings.ToUpper(decl)
	switch {
	case strings.Contains(d, "INT"):
		return KindInt
	case strings.Contains(d, "BOOL"):
		return KindBool
	case strings.Contains(d, "REAL"), strings.Contains(d, "FLOA"),
		strings.Contains(d, "DOUB"), strings.Contains(d, "NUMERIC"),
		strings.Contains(d, "DECIMAL"):
		return KindFloat
	default:
		return KindText
	}
}

// coerce nudges a value toward the column's affinity, mirroring SQLite:
// numeric affinities parse numeric-looking text; TEXT affinity renders
// numbers to strings only when explicitly requested (we keep them as-is).
func coerce(v Value, k Kind) Value {
	if v.IsNull() {
		return v
	}
	switch k {
	case KindInt:
		if v.Kind() == KindText {
			f := v.AsFloat()
			s := strings.TrimSpace(v.AsText())
			if s != "" && fmt.Sprint(f) != "0" || s == "0" {
				// Only coerce when the text is actually numeric.
				if isNumericText(s) {
					if f == float64(int64(f)) {
						return Int(int64(f))
					}
					return Float(f)
				}
			}
			return v
		}
		if v.Kind() == KindFloat && v.AsFloat() == float64(int64(v.AsFloat())) {
			return Int(int64(v.AsFloat()))
		}
		return v
	case KindFloat:
		if v.Kind() == KindInt {
			return Float(float64(v.AsInt()))
		}
		if v.Kind() == KindText && isNumericText(strings.TrimSpace(v.AsText())) {
			return Float(v.AsFloat())
		}
		return v
	case KindBool:
		if v.Kind() == KindInt {
			return Bool(v.AsInt() != 0)
		}
		return v
	default:
		return v
	}
}

func isNumericText(s string) bool {
	if s == "" {
		return false
	}
	dot, digits := false, false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits = true
		case r == '.' && !dot:
			dot = true
		case (r == '-' || r == '+') && i == 0:
		default:
			return false
		}
	}
	return digits
}

// newTable builds a Table from a CREATE TABLE statement.
func newTable(stmt *CreateTableStmt) (*Table, error) {
	t := &Table{
		Name:     stmt.Name,
		colIndex: make(map[string]int, len(stmt.Columns)),
	}
	for i, cd := range stmt.Columns {
		lower := strings.ToLower(cd.Name)
		if _, dup := t.colIndex[lower]; dup {
			return nil, errf(ErrSchema, "sql: duplicate column %q in table %q", cd.Name, stmt.Name)
		}
		t.Columns = append(t.Columns, Column{
			Name:       cd.Name,
			Type:       affinityKind(cd.Type),
			DeclType:   cd.Type,
			NotNull:    cd.NotNull || cd.PrimaryKey,
			PrimaryKey: cd.PrimaryKey,
			Unique:     cd.Unique || cd.PrimaryKey,
		})
		t.colIndex[lower] = i
	}
	// Primary keys and UNIQUE columns get an index automatically.
	idxs := make(map[string]*Index)
	for i, c := range t.Columns {
		if c.PrimaryKey || c.Unique {
			idxs[strings.ToLower(c.Name)] = &Index{
				Name:   "auto_" + t.Name + "_" + c.Name,
				Column: i,
				Unique: true,
				m:      make(map[string]posting),
			}
		}
	}
	t.indexes.Store(&idxs)
	return t, nil
}

// idxs returns the current published index map (immutable; CREATE INDEX
// publishes a replacement).
func (t *Table) idxs() map[string]*Index {
	m := t.indexes.Load()
	if m == nil {
		return nil
	}
	return *m
}

// publishIndexes applies an index-map mutation copy-on-write (writeMu held).
func (t *Table) publishIndexes(mutate func(map[string]*Index)) {
	old := t.idxs()
	next := make(map[string]*Index, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	mutate(next)
	t.indexes.Store(&next)
}

// ColumnIndex returns the ordinal of the named column (case-insensitive)
// or -1 if absent.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIndex[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// RowCount reports the number of rows a fresh snapshot would see.
func (t *Table) RowCount() int { return t.liveCount() }

// liveCount is the number of rows a fresh snapshot's scan will emit.
func (t *Table) liveCount() int { return int(t.liveRows.Load()) }

// ---------------------------------------------------------------------------
// Version store

// loadSlots returns the published slot array and valid slot count. Both
// are stable for a scan's lifetime: later appends land past n (invisible
// to the scan's snapshot anyway), and slot structs are shared across
// array growth.
func (t *Table) loadSlots() ([]*rowSlot, int) {
	arrp := t.slots.Load()
	if arrp == nil {
		return nil, 0
	}
	arr := *arrp
	n := int(t.n.Load())
	if n > len(arr) {
		n = len(arr)
	}
	return arr, n
}

// head returns slot id's chain head (writeMu held, id < n).
func (t *Table) head(id int) *rowVersion {
	arr := *t.slots.Load()
	return arr[id].head.Load()
}

// setHead replaces slot id's chain head (writeMu held).
func (t *Table) setHead(id int, v *rowVersion) {
	arr := *t.slots.Load()
	arr[id].head.Store(v)
}

// appendSlot publishes a new slot holding v and returns its row id
// (writeMu held). The store lands before the count moves, so a reader
// that observes the new count observes the version too.
func (t *Table) appendSlot(v *rowVersion) int {
	n := int(t.n.Load())
	var arr []*rowSlot
	if arrp := t.slots.Load(); arrp != nil {
		arr = *arrp
	}
	if n == len(arr) {
		newCap := 2 * len(arr)
		if newCap < 64 {
			newCap = 64
		}
		grown := make([]*rowSlot, newCap)
		copy(grown, arr)
		for i := len(arr); i < newCap; i++ {
			grown[i] = &rowSlot{}
		}
		arr = grown
		t.slots.Store(&grown)
	}
	arr[n].head.Store(v)
	t.n.Add(1)
	return n
}

// visibleRow returns the version of row id visible to snap, or nil. A nil
// snapshot means "latest committed" — valid only under writeMu or for
// best-effort display paths (plain EXPLAIN).
func (t *Table) visibleRow(id int, snap *snapshot) Row {
	arrp := t.slots.Load()
	if arrp == nil || id < 0 || id >= len(*arrp) {
		return nil
	}
	head := (*arrp)[id].head.Load()
	if snap == nil {
		return latestRow(head)
	}
	return visibleVersion(head, snap)
}

// ---------------------------------------------------------------------------
// DML primitives (all under the database's single-writer latch)

// insertRow appends a row (aligned to table order) as a new version
// chain stamped with the writing transaction, maintains every index, and
// enforces NOT NULL and UNIQUE constraints.
func (t *Table) insertRow(r Row, qc *queryCtx, tx *Txn) error {
	if len(r) != len(t.Columns) {
		return errf(ErrMisuse, "sql: table %s expects %d values, got %d", t.Name, len(t.Columns), len(r))
	}
	for i, c := range t.Columns {
		r[i] = coerce(r[i], c.Type)
		if c.NotNull && r[i].IsNull() {
			return errf(ErrConstraint, "sql: NOT NULL constraint failed: %s.%s", t.Name, c.Name)
		}
	}
	idxs := t.idxs()
	for _, idx := range idxs {
		if idx.Unique && !r[idx.Column].IsNull() && t.liveKeyCount(idx, r[idx.Column].Key()) > 0 {
			return errf(ErrConstraint, "sql: UNIQUE constraint failed: %s.%s = %s",
				t.Name, t.Columns[idx.Column].Name, r[idx.Column])
		}
	}
	id := t.appendSlot(&rowVersion{xmin: tx.xid, row: r})
	t.liveRows.Add(1)
	tx.record(undoInsert, t, id)
	for _, idx := range idxs {
		if idx.addEntry(r[idx.Column], id) && qc != nil {
			qc.ordMaintains++
		}
	}
	tx.logWALOp(walOp{kind: 'I', table: t.Name, row: r})
	tx.db.sealDebt.Add(1)
	return nil
}

// deleteRow stamps the current head with the deleting transaction. The
// slot, its versions and every index entry stay for older snapshots; the
// vacuum reclaims them once invisible to all.
func (t *Table) deleteRow(id int, tx *Txn) {
	t.dropSegFor(id) // unseal before the delete can publish
	head := t.head(id)
	tx.logWALOp(walOp{kind: 'D', table: t.Name, row: head.row})
	head.xmax.Store(tx.xid)
	t.liveRows.Add(-1)
	tx.record(undoDelete, t, id)
	tx.db.garbage.Add(1)
}

// updateRow prepends a new version at the same slot (row ids are stable;
// scan order without ORDER BY is preserved) and adds superset index
// entries for every key that changed. Constraint checks happen in the
// callers (checkUpdateUnique per row, or the snapshot path's
// whole-statement pre-check), so this is pure mechanism.
func (t *Table) updateRow(id int, updated Row, qc *queryCtx, tx *Txn) {
	t.dropSegFor(id) // unseal before the update can publish
	head := t.head(id)
	old := head.row
	tx.logWALOp(walOp{kind: 'U', table: t.Name, row: old, row2: updated})
	nv := &rowVersion{xmin: tx.xid, row: updated}
	nv.next.Store(head)
	head.xmax.Store(tx.xid)
	t.setHead(id, nv)
	tx.record(undoUpdate, t, id)
	tx.db.garbage.Add(1)
	for _, idx := range t.idxs() {
		oldV, newV := old[idx.Column], updated[idx.Column]
		if oldV.Key() == newV.Key() {
			continue
		}
		if idx.addEntry(newV, id) && qc != nil {
			qc.ordMaintains++
		}
	}
}

// checkUpdateUnique enforces UNIQUE constraints for an update the same
// way insertRow does for inserts: if the updated row moves into a
// non-NULL key another current row already holds, the statement fails
// before this row is applied. The snapshot UPDATE path does not use this —
// it pre-checks the whole statement's final state instead (so it can stay
// atomic), then applies unchecked.
func (t *Table) checkUpdateUnique(id int, updated Row) error {
	old := t.head(id).row
	for _, idx := range t.idxs() {
		if !idx.Unique || updated[idx.Column].IsNull() {
			continue
		}
		newKey := updated[idx.Column].Key()
		if newKey == old[idx.Column].Key() {
			continue
		}
		if t.liveKeyCountExcept(idx, newKey, id) > 0 {
			return errf(ErrConstraint, "sql: UNIQUE constraint failed: %s.%s = %s",
				t.Name, t.Columns[idx.Column].Name, updated[idx.Column])
		}
	}
	return nil
}

// liveKeyCount counts current (latest-committed-or-own) rows whose
// indexed column carries exactly key. Under writeMu every chain head is
// committed or the running writer's, so "latest" is unambiguous.
func (t *Table) liveKeyCount(idx *Index, key string) int {
	return t.liveKeyCountExcept(idx, key, -1)
}

func (t *Table) liveKeyCountExcept(idx *Index, key string, except int) int {
	n := 0
	for _, id := range idx.copyIDs(key) {
		if id == except {
			continue
		}
		arrp := t.slots.Load()
		r := latestRow((*arrp)[id].head.Load())
		if r != nil && r[idx.Column].Key() == key {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Index maintenance and lookups

// copyIDs returns a private copy of the key's posting list (ascending).
// The latch is momentary: never held across iteration.
func (idx *Index) copyIDs(key string) []int {
	idx.mu.Lock()
	p, ok := idx.m[key]
	if !ok {
		idx.mu.Unlock()
		return nil
	}
	ids := append([]int(nil), p.ids...)
	idx.mu.Unlock()
	return ids
}

// addEntry adds id under v's key in the hash map and, when an ordered
// view is live, maintains it in place. Reports whether ordered
// maintenance happened (the ordMaintains counter).
func (idx *Index) addEntry(v Value, id int) bool {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	key := v.Key()
	p := idx.m[key]
	if p.ids == nil {
		p.val = v
	}
	p.ids = spliceID(p.ids, id)
	idx.m[key] = p
	return idx.ordAdd(v, id)
}

// visibleEqIDs returns, ascending, the row ids whose version visible to
// snap carries exactly value v in the indexed column. The posting list is
// a superset (old and rolled-back versions linger until vacuum); the
// visibility + key recheck filters it exactly.
func visibleEqIDs(t *Table, idx *Index, v Value, snap *snapshot) []int {
	key := v.Key()
	ids := idx.copyIDs(key)
	if len(ids) == 0 {
		return nil
	}
	out := ids[:0]
	for _, id := range ids {
		r := t.visibleRow(id, snap)
		if r != nil && r[idx.Column].Key() == key {
			out = append(out, id)
		}
	}
	return out
}

// spliceID inserts id into an ascending id list at its sorted position
// (no-op when already present). Shared by the hash map's posting lists
// and the ordered view's entry lists so the two cannot drift.
func spliceID(ids []int, id int) []int {
	pos := sort.SearchInts(ids, id)
	if pos < len(ids) && ids[pos] == id {
		return ids
	}
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	return ids
}
