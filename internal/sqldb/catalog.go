package sqldb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Type       Kind // affinity: values are coerced toward this kind on insert
	DeclType   string
	NotNull    bool
	PrimaryKey bool
	Unique     bool
}

// Table is an in-memory heap of rows plus secondary indexes.
// All access must go through Database, which provides locking.
//
// Row ids are heap slice positions and they are *stable*: DELETE marks a
// tombstone in the dead bitmap instead of compacting the heap, so no
// surviving row is ever renumbered by DML. Scans skip tombstoned slots;
// compact() reclaims them (and renumbers) only once the dead fraction
// crosses compactFraction.
type Table struct {
	Name     string
	Columns  []Column
	colIndex map[string]int    // lower-cased column name -> ordinal
	rows     []Row             // the heap; row ids are slice positions
	indexes  map[string]*Index // lower-cased column name -> index
	dead     []uint64          // tombstone bitmap over row ids (1 = deleted, awaiting compaction)
	nDead    int               // number of set bits in dead
}

// Index is a dual-structure secondary index over one column.
//
// The hash map m (binary value key -> row ids, ids ascending) serves
// equality lookups and join probes; it is maintained eagerly by every DML
// path — insert appends the new id, delete and update remove theirs — so
// it is always current and never contains a tombstoned id. The ordered
// view ord — one entry per distinct value, sorted by Value.Compare, each
// entry carrying its row ids ascending — serves range scans,
// index-ordered ORDER BY, and merge joins; it is built lazily from the
// hash map on first ordered access (ordidx.go) and *incrementally
// maintained* by DML while it is live: INSERT splices the new id in place
// (ordInsert), UPDATE composes remove+insert (ordMove), and DELETE leaves
// the id behind as a tombstone that ordered consumers skip via the
// table's dead bitmap. The invariant is therefore: ord is either nil or
// contains exactly m's ids plus some tombstoned ones. Only compaction —
// the bulk-mutation fallback — drops the view wholesale for the next
// ordered access to rebuild. ordMu serialises concurrent lazy builds
// (readers share the database lock, so they can race to build) and
// orders maintenance against them under the race detector.
type Index struct {
	Name   string
	Column int
	Unique bool
	m      map[string][]int

	ordMu sync.Mutex
	ord   []ordEntry
}

// Database is an embedded in-memory SQL database. It is safe for concurrent
// use; reads take a shared lock and writes an exclusive one.
type Database struct {
	mu     sync.RWMutex
	tables map[string]*Table
	funcs  *FuncRegistry
	plans  *planCache
	stats  dbStats // observability counters; snapshot via Stats()

	// maxWorkers bounds the per-query worker pool for parallel operators
	// (parallel.go). 1 disables intra-query parallelism entirely.
	maxWorkers int
}

// Option configures a Database at construction time.
type Option func(*Database)

// WithMaxWorkers sets the upper bound on worker goroutines a single query
// may use for parallel scans, aggregation, and hash-join builds. The
// default is GOMAXPROCS capped at 8; 1 forces fully serial execution.
func WithMaxWorkers(n int) Option {
	return func(db *Database) {
		if n < 1 {
			n = 1
		}
		db.maxWorkers = n
	}
}

// NewDatabase returns an empty database with the built-in function registry.
func NewDatabase(opts ...Option) *Database {
	db := &Database{
		tables:     make(map[string]*Table),
		funcs:      NewFuncRegistry(),
		plans:      newPlanCache(),
		maxWorkers: defaultMaxWorkers(),
	}
	for _, opt := range opts {
		opt(db)
	}
	return db
}

// Funcs exposes the database's function registry so callers can register
// UDFs (notably the TAG layer's LM UDFs).
func (db *Database) Funcs() *FuncRegistry { return db.funcs }

// Table returns the named table, or an error if it does not exist.
func (db *Database) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tableLocked(name)
}

func (db *Database) tableLocked(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, errf(ErrNoTable, "sql: no such table: %s", name)
	}
	return t, nil
}

// TableNames returns the names of all tables in sorted order.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// SchemaSQL renders the CREATE TABLE statements for every table, in sorted
// order — the BIRD-style schema prompt fed to the LM during query synthesis.
func (db *Database) SchemaSQL() string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		t := db.tables[n]
		b.WriteString("CREATE TABLE " + quoteIdent(t.Name) + " (\n")
		for i, c := range t.Columns {
			b.WriteString("    " + quoteIdent(c.Name) + " " + c.DeclType)
			if c.PrimaryKey {
				b.WriteString(" PRIMARY KEY")
			}
			if c.NotNull && !c.PrimaryKey {
				b.WriteString(" NOT NULL")
			}
			if i < len(t.Columns)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString(");\n")
	}
	return b.String()
}

// affinityKind maps a declared SQL type name to a storage kind, following
// SQLite's affinity rules loosely.
func affinityKind(decl string) Kind {
	d := strings.ToUpper(decl)
	switch {
	case strings.Contains(d, "INT"):
		return KindInt
	case strings.Contains(d, "BOOL"):
		return KindBool
	case strings.Contains(d, "REAL"), strings.Contains(d, "FLOA"),
		strings.Contains(d, "DOUB"), strings.Contains(d, "NUMERIC"),
		strings.Contains(d, "DECIMAL"):
		return KindFloat
	default:
		return KindText
	}
}

// coerce nudges a value toward the column's affinity, mirroring SQLite:
// numeric affinities parse numeric-looking text; TEXT affinity renders
// numbers to strings only when explicitly requested (we keep them as-is).
func coerce(v Value, k Kind) Value {
	if v.IsNull() {
		return v
	}
	switch k {
	case KindInt:
		if v.Kind() == KindText {
			f := v.AsFloat()
			s := strings.TrimSpace(v.AsText())
			if s != "" && fmt.Sprint(f) != "0" || s == "0" {
				// Only coerce when the text is actually numeric.
				if isNumericText(s) {
					if f == float64(int64(f)) {
						return Int(int64(f))
					}
					return Float(f)
				}
			}
			return v
		}
		if v.Kind() == KindFloat && v.AsFloat() == float64(int64(v.AsFloat())) {
			return Int(int64(v.AsFloat()))
		}
		return v
	case KindFloat:
		if v.Kind() == KindInt {
			return Float(float64(v.AsInt()))
		}
		if v.Kind() == KindText && isNumericText(strings.TrimSpace(v.AsText())) {
			return Float(v.AsFloat())
		}
		return v
	case KindBool:
		if v.Kind() == KindInt {
			return Bool(v.AsInt() != 0)
		}
		return v
	default:
		return v
	}
}

func isNumericText(s string) bool {
	if s == "" {
		return false
	}
	dot, digits := false, false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits = true
		case r == '.' && !dot:
			dot = true
		case (r == '-' || r == '+') && i == 0:
		default:
			return false
		}
	}
	return digits
}

// newTable builds a Table from a CREATE TABLE statement.
func newTable(stmt *CreateTableStmt) (*Table, error) {
	t := &Table{
		Name:     stmt.Name,
		colIndex: make(map[string]int, len(stmt.Columns)),
		indexes:  make(map[string]*Index),
	}
	for i, cd := range stmt.Columns {
		lower := strings.ToLower(cd.Name)
		if _, dup := t.colIndex[lower]; dup {
			return nil, errf(ErrSchema, "sql: duplicate column %q in table %q", cd.Name, stmt.Name)
		}
		t.Columns = append(t.Columns, Column{
			Name:       cd.Name,
			Type:       affinityKind(cd.Type),
			DeclType:   cd.Type,
			NotNull:    cd.NotNull || cd.PrimaryKey,
			PrimaryKey: cd.PrimaryKey,
			Unique:     cd.Unique || cd.PrimaryKey,
		})
		t.colIndex[lower] = i
	}
	// Primary keys and UNIQUE columns get an index automatically.
	for i, c := range t.Columns {
		if c.PrimaryKey || c.Unique {
			t.indexes[strings.ToLower(c.Name)] = &Index{
				Name:   "auto_" + t.Name + "_" + c.Name,
				Column: i,
				Unique: true,
				m:      make(map[string][]int),
			}
		}
	}
	return t, nil
}

// ColumnIndex returns the ordinal of the named column (case-insensitive)
// or -1 if absent.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIndex[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// RowCount reports the number of live (non-tombstoned) rows.
func (t *Table) RowCount() int { return t.liveCount() }

// isDead reports whether the row id is tombstoned.
func (t *Table) isDead(id int) bool {
	w := id >> 6
	return w < len(t.dead) && t.dead[w]&(1<<(uint(id)&63)) != 0
}

// markDead tombstones a row id in the bitmap.
func (t *Table) markDead(id int) {
	w := id >> 6
	for w >= len(t.dead) {
		t.dead = append(t.dead, 0)
	}
	if bit := uint64(1) << (uint(id) & 63); t.dead[w]&bit == 0 {
		t.dead[w] |= bit
		t.nDead++
	}
}

// liveCount is the number of rows scans will actually emit.
func (t *Table) liveCount() int { return len(t.rows) - t.nDead }

// insertRow appends a row (already aligned to table order and coerced) and
// maintains indexes — the hash maps eagerly, any live ordered view by an
// in-place splice. It enforces NOT NULL and UNIQUE constraints.
func (t *Table) insertRow(r Row, qc *queryCtx) error {
	if len(r) != len(t.Columns) {
		return errf(ErrMisuse, "sql: table %s expects %d values, got %d", t.Name, len(t.Columns), len(r))
	}
	for i, c := range t.Columns {
		r[i] = coerce(r[i], c.Type)
		if c.NotNull && r[i].IsNull() {
			return errf(ErrConstraint, "sql: NOT NULL constraint failed: %s.%s", t.Name, c.Name)
		}
	}
	for _, idx := range t.indexes {
		key := r[idx.Column].Key()
		if idx.Unique && len(idx.m[key]) > 0 && !r[idx.Column].IsNull() {
			return errf(ErrConstraint, "sql: UNIQUE constraint failed: %s.%s = %s",
				t.Name, t.Columns[idx.Column].Name, r[idx.Column])
		}
	}
	id := len(t.rows)
	t.rows = append(t.rows, r)
	for _, idx := range t.indexes {
		key := r[idx.Column].Key()
		idx.m[key] = append(idx.m[key], id)
		if idx.ordInsert(r[idx.Column], id) && qc != nil {
			qc.ordMaintains++
		}
	}
	return nil
}

// deleteRow tombstones a row: the heap slot stays (row ids are stable),
// each index's hash map drops the id eagerly, and any live ordered view
// keeps the id until compaction — ordered and range consumers skip it via
// the dead bitmap.
func (t *Table) deleteRow(id int) {
	r := t.rows[id]
	for _, idx := range t.indexes {
		idx.removeID(r[idx.Column].Key(), id)
	}
	t.markDead(id)
}

// checkUpdateUnique enforces UNIQUE constraints for an in-place update
// the same way insertRow does for inserts: if the updated row moves into
// a non-NULL key another row already holds, the statement fails before
// this row is applied. The snapshot UPDATE path does not use this —
// it pre-checks the whole statement's final state instead (so it can
// stay atomic), then applies unchecked.
func (t *Table) checkUpdateUnique(id int, updated Row) error {
	old := t.rows[id]
	for _, idx := range t.indexes {
		if !idx.Unique || updated[idx.Column].IsNull() {
			continue
		}
		newKey := updated[idx.Column].Key()
		if newKey == old[idx.Column].Key() {
			continue
		}
		if len(idx.m[newKey]) > 0 {
			return errf(ErrConstraint, "sql: UNIQUE constraint failed: %s.%s = %s",
				t.Name, t.Columns[idx.Column].Name, updated[idx.Column])
		}
	}
	return nil
}

// updateRow replaces row id in place, composing remove+insert on every
// index whose key changed: the hash map moves the id between posting
// lists, and a live ordered view moves it between entries — no rebuild,
// no renumbering, and the row keeps its heap position (scan order is
// observable without ORDER BY). Constraint checks happen in the callers
// (checkUpdateUnique per row, or the snapshot path's whole-statement
// pre-check), so this is pure mechanism.
func (t *Table) updateRow(id int, updated Row, qc *queryCtx) {
	old := t.rows[id]
	for _, idx := range t.indexes {
		oldV, newV := old[idx.Column], updated[idx.Column]
		oldKey, newKey := oldV.Key(), newV.Key()
		if oldKey == newKey {
			continue
		}
		idx.removeID(oldKey, id)
		idx.insertID(newKey, id)
		if idx.ordMove(oldV, newV, id) && qc != nil {
			qc.ordMaintains++
		}
	}
	t.rows[id] = updated
}

// compactFraction: compact once tombstones exceed this fraction of the
// heap (and at least compactMinDead of them exist, so small tables are
// not rebuilt over single-row churn).
const (
	compactFraction = 4 // 1/4 of the heap
	compactMinDead  = 64
)

// maybeCompact compacts the heap when the tombstone share crosses the
// threshold. Called at the end of DELETE statements — the only tombstone
// producers.
func (t *Table) maybeCompact(qc *queryCtx) {
	if t.nDead >= compactMinDead && t.nDead*compactFraction > len(t.rows) {
		t.compact(qc)
	}
}

// compact physically removes tombstoned rows, renumbering survivors and
// rebuilding every index against the new ids. This is the bulk-mutation
// fallback to wholesale invalidation that the incremental paths amortise:
// it runs once per compactFraction of churn, not once per statement.
func (t *Table) compact(qc *queryCtx) {
	if t.nDead == 0 {
		return
	}
	kept := t.rows[:0]
	for id, r := range t.rows {
		if !t.isDead(id) {
			kept = append(kept, r)
		}
	}
	t.rows = kept
	t.dead = nil
	t.nDead = 0
	t.rebuildIndexes()
	if qc != nil {
		qc.compactions++
	}
}

// rebuildIndexes recomputes all index maps after a bulk mutation and
// invalidates their ordered views.
func (t *Table) rebuildIndexes() {
	for _, idx := range t.indexes {
		idx.m = make(map[string][]int, len(t.rows))
		for id, r := range t.rows {
			if t.isDead(id) {
				continue
			}
			key := r[idx.Column].Key()
			idx.m[key] = append(idx.m[key], id)
		}
		idx.invalidateOrdered()
	}
}

// spliceID inserts id into an ascending id list at its sorted position
// (no-op when already present). Shared by the hash map's posting lists
// and the ordered view's entry lists so the two cannot drift.
func spliceID(ids []int, id int) []int {
	pos := sort.SearchInts(ids, id)
	if pos < len(ids) && ids[pos] == id {
		return ids
	}
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	return ids
}

// insertID adds id to the key's posting list, keeping it ascending.
func (idx *Index) insertID(key string, id int) {
	idx.m[key] = spliceID(idx.m[key], id)
}

// removeID drops id from the key's posting list (no-op when absent).
// The list is rewritten in place: posting lists are never shared with
// ordered-view entries (orderedEntries copies them at build).
func (idx *Index) removeID(key string, id int) {
	ids := idx.m[key]
	pos := sort.SearchInts(ids, id)
	if pos >= len(ids) || ids[pos] != id {
		return
	}
	if len(ids) == 1 {
		delete(idx.m, key)
		return
	}
	idx.m[key] = append(ids[:pos], ids[pos+1:]...)
}

// lookup returns the ids of rows whose indexed column equals v.
func (idx *Index) lookup(v Value) []int { return idx.m[v.Key()] }
