package sqldb

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// Tests for the order-aware planner: ordered/range index scans, sort
// elision, predicate pushdown, merge join, and the correlated-subplan
// cache. The property tests interleave DML with ordered queries and
// cross-check three executors: the indexed engine (ordered scans, range
// scans, merge joins), a plain engine with no indexes (seq scans, full
// sorts), and the force-naive interpreted reference (refSelect,
// property_test.go).

// TestOrderByIndexedLimitScansExactlyK is the acceptance regression: an
// ORDER BY over an indexed column under LIMIT k must stream from index
// order and read exactly the rows it returns — no full sort, no full
// scan. Asserted through the Stats rows-scanned counter.
func TestOrderByIndexedLimitScansExactlyK(t *testing.T) {
	db := bigDB(t, 100000)

	before := db.Stats()
	res, err := db.Query("SELECT id FROM big ORDER BY id LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"0"}, {"1"}, {"2"}, {"3"}, {"4"}}
	if got := rowsToStrings(res.Rows); !reflect.DeepEqual(got, want) {
		t.Fatalf("ordered limit rows = %v, want %v", got, want)
	}
	if scanned := db.Stats().RowsScanned - before.RowsScanned; scanned != 5 {
		t.Errorf("ORDER BY indexed LIMIT 5 scanned %d rows, want exactly 5", scanned)
	}

	// Range + ORDER BY on the same indexed column: still O(k).
	before = db.Stats()
	res, err = db.Query("SELECT id FROM big WHERE id > 500 ORDER BY id LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	want = [][]string{{"501"}, {"502"}, {"503"}, {"504"}, {"505"}}
	if got := rowsToStrings(res.Rows); !reflect.DeepEqual(got, want) {
		t.Fatalf("range+ordered rows = %v, want %v", got, want)
	}
	if scanned := db.Stats().RowsScanned - before.RowsScanned; scanned != 5 {
		t.Errorf("range + ORDER BY LIMIT 5 scanned %d rows, want exactly 5", scanned)
	}

	// DESC walks the ordered view backwards, still O(k).
	before = db.Stats()
	res, err = db.Query("SELECT id FROM big ORDER BY id DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	want = [][]string{{"99999"}, {"99998"}, {"99997"}}
	if got := rowsToStrings(res.Rows); !reflect.DeepEqual(got, want) {
		t.Fatalf("desc ordered rows = %v, want %v", got, want)
	}
	if scanned := db.Stats().RowsScanned - before.RowsScanned; scanned != 3 {
		t.Errorf("ORDER BY DESC LIMIT 3 scanned %d rows, want exactly 3", scanned)
	}

	// OFFSET widens the window but stays O(offset+k).
	before = db.Stats()
	if _, err := db.Query("SELECT id FROM big ORDER BY id LIMIT 5 OFFSET 7"); err != nil {
		t.Fatal(err)
	}
	if scanned := db.Stats().RowsScanned - before.RowsScanned; scanned != 12 {
		t.Errorf("ORDER BY LIMIT 5 OFFSET 7 scanned %d rows, want 12", scanned)
	}

	s := db.Stats()
	if s.OrderedIndexOrders == 0 {
		t.Error("OrderedIndexOrders counter did not move")
	}
	if s.IndexRangeScans == 0 {
		t.Error("IndexRangeScans counter did not move")
	}
}

// TestRangeScanReadsOnlyMatchingRows: a range predicate over an indexed
// column must touch only the rows inside the bounds.
func TestRangeScanReadsOnlyMatchingRows(t *testing.T) {
	db := bigDB(t, 100000)
	before := db.Stats()
	res, err := db.Query("SELECT id FROM big WHERE id BETWEEN 100 AND 149")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 50 {
		t.Fatalf("BETWEEN returned %d rows, want 50", len(res.Rows))
	}
	if scanned := db.Stats().RowsScanned - before.RowsScanned; scanned != 50 {
		t.Errorf("range scan touched %d rows, want 50", scanned)
	}
	if got := db.Stats().IndexRangeScans - before.IndexRangeScans; got != 1 {
		t.Errorf("IndexRangeScans moved by %d, want 1", got)
	}
}

// dmlPropDBs builds the same mutable table into an indexed and an
// unindexed database for the interleaved DML property test.
func dmlPropDBs() (indexed, plain *Database) {
	indexed = NewDatabase()
	plain = NewDatabase()
	indexed.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, s TEXT)")
	indexed.MustExec("CREATE INDEX idx_t_k ON t (k)")
	plain.MustExec("CREATE TABLE t (id INTEGER, k INTEGER, s TEXT)")
	return indexed, plain
}

// interleavedDMLProperty is the DML-vs-ordered-index property engine:
// random INSERT/UPDATE/DELETE — including UPDATEs that move rows between
// an indexed column's entries, equality-shaped DML that takes the index
// fast path, and multi-row range DELETEs — interleave with range and
// ORDER BY queries, and after every step the indexed engine (ordered and
// range index scans, incrementally maintained across each mutation) must
// agree with the plain engine and — for the no-LIMIT shapes — with the
// force-naive interpreted executor (refSelect). It returns an error
// instead of failing a *testing.T so the fault-injection tests can prove
// the suite catches broken tombstone skipping or in-place maintenance.
//
// With txnLegs set, every mutation runs inside an explicit transaction:
// usually BEGIN…COMMIT, and on a random subset BEGIN…ROLLBACK — the
// rolled-back leg must leave both engines exactly where they were, which
// the step's queries (and the naive-reference comparison) then verify.
func interleavedDMLProperty(r *rand.Rand, steps int, txnLegs bool) error {
	indexed, plain := dmlPropDBs()
	words := []string{"ant", "bee", "cat", "dog"}
	nextID := 0

	exec := func(sql string, params ...any) error {
		if txnLegs && r.Intn(4) == 0 {
			// Rollback leg: apply the mutation inside a transaction and
			// abort it on both engines. Nothing may stick.
			for _, db := range []*Database{indexed, plain} {
				if _, err := db.Exec("BEGIN"); err != nil {
					return err
				}
				_, _ = db.Exec(sql, params...)
				if _, err := db.Exec("ROLLBACK"); err != nil {
					return err
				}
			}
			return nil
		}
		run := func(db *Database) (int, error) {
			if txnLegs {
				if _, err := db.Exec("BEGIN"); err != nil {
					return 0, err
				}
				n, err := db.Exec(sql, params...)
				if err != nil {
					_, _ = db.Exec("ROLLBACK")
					return n, err
				}
				if _, err := db.Exec("COMMIT"); err != nil {
					return n, err
				}
				return n, nil
			}
			return db.Exec(sql, params...)
		}
		ni, erri := run(indexed)
		np, errp := run(plain)
		if (erri == nil) != (errp == nil) || ni != np {
			return fmt.Errorf("DML diverged on %q: indexed (%d, %v) vs plain (%d, %v)", sql, ni, erri, np, errp)
		}
		return nil
	}
	queries := []func(*rand.Rand) string{
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT id, k, s FROM t WHERE k > %d ORDER BY id", r.Intn(40))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT id, k FROM t WHERE k BETWEEN %d AND %d ORDER BY id", r.Intn(20), 20+r.Intn(20))
		},
		func(r *rand.Rand) string {
			return "SELECT id, k FROM t ORDER BY k" // ties + NULLs: must match stable sort
		},
		func(r *rand.Rand) string {
			return "SELECT id, k FROM t ORDER BY k DESC"
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT id, k FROM t ORDER BY k LIMIT %d", 1+r.Intn(8))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT id, k FROM t WHERE k >= %d AND k < %d ORDER BY k LIMIT %d",
				r.Intn(25), 25+r.Intn(25), 1+r.Intn(6))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT id, s FROM t WHERE k = %d ORDER BY id", r.Intn(50))
		},
	}

	for step := 0; step < steps; step++ {
		var err error
		switch op := r.Intn(14); {
		case op < 5: // insert (NULL k sometimes)
			var k any = r.Intn(50)
			if r.Intn(6) == 0 {
				k = nil
			}
			err = exec("INSERT INTO t VALUES (?, ?, ?)", nextID, k, words[r.Intn(len(words))])
			nextID++
		case op < 6: // update keys (occasionally to NULL)
			if r.Intn(5) == 0 {
				err = exec(fmt.Sprintf("UPDATE t SET k = NULL WHERE id %% 11 = %d", r.Intn(11)))
			} else {
				err = exec(fmt.Sprintf("UPDATE t SET k = %d WHERE k < %d", r.Intn(50), r.Intn(20)))
			}
		case op < 7: // multi-row update moving rows between indexed entries
			err = exec(fmt.Sprintf("UPDATE t SET k = k + %d WHERE k BETWEEN %d AND %d",
				1+r.Intn(9), r.Intn(25), 25+r.Intn(25)))
		case op < 8: // equality-shaped DML: the index fast path on the indexed db
			if r.Intn(2) == 0 {
				err = exec("DELETE FROM t WHERE id = ?", r.Intn(nextID+1))
			} else {
				err = exec(fmt.Sprintf("UPDATE t SET s = 'upd%d', k = %d WHERE id = %d",
					step, r.Intn(50), r.Intn(nextID+1)))
			}
		case op < 9: // delete a stripe
			err = exec(fmt.Sprintf("DELETE FROM t WHERE id %% 13 = %d", r.Intn(13)))
		case op < 10: // multi-row delete over the indexed column's range
			err = exec(fmt.Sprintf("DELETE FROM t WHERE k BETWEEN %d AND %d", r.Intn(40), 5+r.Intn(40)))
		default: // query
			sql := queries[r.Intn(len(queries))](r)
			ri, err := indexed.Query(sql)
			if err != nil {
				return fmt.Errorf("indexed Query(%q): %v", sql, err)
			}
			rp, err := plain.Query(sql)
			if err != nil {
				return fmt.Errorf("plain Query(%q): %v", sql, err)
			}
			gi, gp := rowsToStrings(ri.Rows), rowsToStrings(rp.Rows)
			if !reflect.DeepEqual(gi, gp) {
				return fmt.Errorf("step %d: plans disagree on %q:\nindexed %v\nplain   %v", step, sql, gi, gp)
			}
			// Force-naive reference for the untruncated shapes.
			if !strings.Contains(sql, "LIMIT") {
				stmt, perr := Parse(sql)
				if perr != nil {
					return perr
				}
				want, rerr := refSelect(indexed, stmt.(*SelectStmt))
				if rerr != nil {
					return fmt.Errorf("refSelect(%q): %v", sql, rerr)
				}
				if !reflect.DeepEqual(gi, rowsToStrings(want)) {
					return fmt.Errorf("step %d: indexed engine disagrees with naive reference on %q:\ngot  %v\nwant %v",
						step, sql, gi, rowsToStrings(want))
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func TestDMLInterleavedWithOrderedQueries(t *testing.T) {
	if err := interleavedDMLProperty(rand.New(rand.NewSource(31)), 600, false); err != nil {
		t.Fatal(err)
	}
}

// TestDMLInterleavedWithOrderedQueriesInTransactions is the same property
// with every mutation wrapped in an explicit transaction — committed on
// most steps, rolled back on a random quarter. Rolled-back DML (including
// index superset entries it left behind) must be invisible to every
// subsequent query on all three executors.
func TestDMLInterleavedWithOrderedQueriesInTransactions(t *testing.T) {
	if err := interleavedDMLProperty(rand.New(rand.NewSource(31)), 600, true); err != nil {
		t.Fatal(err)
	}
}

// Fault injection: the property suite must demonstrably fail when the
// incremental-maintenance invariants are broken — otherwise it is not
// actually pinning them (coverage of behaviors under mutation, not lines).

// TestPropertySuiteCatchesBrokenTombstoneSkip disables tombstone
// skipping, so scans emit deleted rows; the suite must notice.
func TestPropertySuiteCatchesBrokenTombstoneSkip(t *testing.T) {
	debugDisableTombstoneSkip = true
	defer func() { debugDisableTombstoneSkip = false }()
	if err := interleavedDMLProperty(rand.New(rand.NewSource(31)), 600, false); err == nil {
		t.Fatal("property suite did not detect scans emitting tombstoned rows")
	}
}

// TestPropertySuiteCatchesBrokenOrdMaintenance makes DML leave live
// ordered views stale (no splice, no invalidation); the suite must catch
// the stale index order.
func TestPropertySuiteCatchesBrokenOrdMaintenance(t *testing.T) {
	debugBreakOrdMaintain = true
	defer func() { debugBreakOrdMaintain = false }()
	if err := interleavedDMLProperty(rand.New(rand.NewSource(31)), 600, false); err == nil {
		t.Fatal("property suite did not detect stale ordered views")
	}
}

// TestOrderedViewMaintainedAcrossDML: index-order results always reflect
// the heap after each kind of mutation — and the ordered view is
// maintained in place (splice, move, tombstone-skip), never dropped and
// rebuilt between these statements.
func TestOrderedViewMaintainedAcrossDML(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER)")
	db.MustExec("CREATE INDEX idx_k ON t (k)")
	db.MustExec("INSERT INTO t VALUES (1, 10), (2, 30), (3, 20)")

	get := func() [][]string {
		return queryStrings(t, db, "SELECT id FROM t ORDER BY k")
	}
	if got := get(); !reflect.DeepEqual(got, [][]string{{"1"}, {"3"}, {"2"}}) {
		t.Fatalf("initial order = %v", got)
	}
	// White box: the first ordered query built the view; from here on
	// every mutation must maintain that same live view, not invalidate it.
	tbl, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	idx := tbl.idxs()["k"]
	if idx.ord.Load() == nil {
		t.Fatal("ordered view not built by the first ordered query")
	}

	before := db.Stats()
	db.MustExec("INSERT INTO t VALUES (4, 15)") // lands in the middle
	if got := get(); !reflect.DeepEqual(got, [][]string{{"1"}, {"4"}, {"3"}, {"2"}}) {
		t.Fatalf("after insert = %v", got)
	}
	db.MustExec("UPDATE t SET k = 5 WHERE id = 2") // moves to the front
	if got := get(); !reflect.DeepEqual(got, [][]string{{"2"}, {"1"}, {"4"}, {"3"}}) {
		t.Fatalf("after update = %v", got)
	}
	db.MustExec("DELETE FROM t WHERE id = 4")
	if got := get(); !reflect.DeepEqual(got, [][]string{{"2"}, {"1"}, {"3"}}) {
		t.Fatalf("after delete = %v", got)
	}
	if idx.ord.Load() == nil {
		t.Error("DML invalidated the ordered view instead of maintaining it")
	}
	s := db.Stats()
	if got := s.OrdMaintains - before.OrdMaintains; got < 2 {
		t.Errorf("OrdMaintains moved by %d, want >= 2 (insert splice + update move)", got)
	}
	if got := s.TombstonesSkipped - before.TombstonesSkipped; got == 0 {
		t.Error("TombstonesSkipped did not move across the post-delete ordered scan")
	}
	arr, n := tbl.loadSlots()
	dead := 0
	for id := 0; id < n; id++ {
		if latestRow(arr[id].head.Load()) == nil {
			dead++
		}
	}
	if dead != 1 || n != 4 {
		t.Errorf("heap = %d slots / %d dead, want 4 slots with 1 tombstone (stable ids, no renumbering)",
			n, dead)
	}
}

// TestVacuumReclaimsTombstones: deleted versions invisible to every live
// snapshot are reclaimed by the vacuum — row ids stay stable (slots are
// emptied, never renumbered), the VacuumRuns/VersionsReclaimed counters
// move, and results are unchanged either side of the pass.
func TestVacuumReclaimsTombstones(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER)")
	db.MustExec("CREATE INDEX idx_t_k ON t (k)")
	rows := make([][]any, 400)
	for i := range rows {
		rows[i] = []any{i, i % 37}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	before := db.Stats()
	// Delete 75% of the table in stripes; 300 dead versions cross the
	// background-vacuum threshold, and the explicit pass below makes the
	// reclamation deterministic regardless of goroutine scheduling.
	for m := 0; m < 3; m++ {
		db.MustExec("DELETE FROM t WHERE id % 4 = ?", m)
	}
	db.Vacuum()
	s := db.Stats()
	if s.VacuumRuns == before.VacuumRuns {
		t.Error("VacuumRuns did not move after an explicit Vacuum")
	}
	if got := s.VersionsReclaimed - before.VersionsReclaimed; got != 300 {
		t.Errorf("VersionsReclaimed moved by %d, want 300 (one per deleted row)", got)
	}
	tbl, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	arr, n := tbl.loadSlots()
	if n != 400 {
		t.Errorf("slot count = %d after vacuum, want 400 (stable row ids)", n)
	}
	empty := 0
	for id := 0; id < n; id++ {
		if arr[id].head.Load() == nil {
			empty++
		}
	}
	if empty != 300 {
		t.Errorf("emptied slots = %d, want 300 (all reclaimed chains)", empty)
	}
	got := queryStrings(t, db, "SELECT COUNT(*) FROM t")
	if !reflect.DeepEqual(got, [][]string{{"100"}}) {
		t.Fatalf("live rows after vacuum = %v, want 100", got)
	}
	// Ordered results reflect exactly the survivors.
	res := queryStrings(t, db, "SELECT id FROM t WHERE k = 3 ORDER BY id")
	want := [][]string{}
	for i := 3; i < 400; i += 37 {
		if i%4 == 3 {
			want = append(want, []string{fmt.Sprint(i)})
		}
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("post-vacuum equality scan = %v, want %v", res, want)
	}
}

// TestIndexEqualityNullLiteralNeverMatches pins the `col = NULL` bug the
// NoREC metamorphic property found: the indexed access path used to
// serve the NULL key's rows for an equality whose comparand is NULL,
// while SQL says the predicate is never true of any row.
func TestIndexEqualityNullLiteralNeverMatches(t *testing.T) {
	indexed := NewDatabase()
	indexed.MustExec("CREATE TABLE z (id INTEGER PRIMARY KEY, k INTEGER)")
	indexed.MustExec("CREATE INDEX idx_z_k ON z (k)")
	plain := NewDatabase()
	plain.MustExec("CREATE TABLE z (id INTEGER, k INTEGER)")
	for _, db := range []*Database{indexed, plain} {
		db.MustExec("INSERT INTO z VALUES (1, NULL), (2, 5), (3, NULL)")
	}
	for _, sql := range []string{
		"SELECT id FROM z WHERE k = NULL",
		"SELECT COUNT(*) FROM z WHERE k = NULL",
		"SELECT id FROM z WHERE k = NULL AND id > 0",
	} {
		gi := queryStrings(t, indexed, sql)
		gp := queryStrings(t, plain, sql)
		if !reflect.DeepEqual(gi, gp) {
			t.Errorf("%q: indexed %v vs plain %v", sql, gi, gp)
		}
	}
	// And through the DML fast path: `= NULL` must delete nothing.
	if n, err := indexed.Exec("DELETE FROM z WHERE k = ?", nil); err != nil || n != 0 {
		t.Errorf("DELETE WHERE k = NULL affected %d rows (err %v), want 0", n, err)
	}
}

// TestLeftJoinRightPredicateNotPushed: predicates over the nullable side
// of a LEFT JOIN must evaluate after NULL extension. Pushing `r.v IS
// NULL` below the join would empty the right input and NULL-extend every
// left row — the classic pushdown bug.
func TestLeftJoinRightPredicateNotPushed(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE l (k INTEGER PRIMARY KEY)")
	db.MustExec("CREATE TABLE r (k INTEGER PRIMARY KEY, v INTEGER)")
	db.MustExec("INSERT INTO l VALUES (1), (2), (3)")
	db.MustExec("INSERT INTO r VALUES (1, 10)")

	got := queryStrings(t, db, "SELECT l.k, r.v FROM l LEFT JOIN r ON l.k = r.k WHERE r.v IS NULL ORDER BY l.k")
	want := [][]string{{"2", "NULL"}, {"3", "NULL"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("IS NULL over LEFT JOIN right side = %v, want %v", got, want)
	}

	got = queryStrings(t, db, "SELECT l.k, r.v FROM l LEFT JOIN r ON l.k = r.k WHERE r.v > 5")
	want = [][]string{{"1", "10"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("right-side range over LEFT JOIN = %v, want %v", got, want)
	}

	// Left-side predicates are safe to push below a LEFT JOIN.
	got = queryStrings(t, db, "SELECT l.k, r.v FROM l LEFT JOIN r ON l.k = r.k WHERE l.k > 1 ORDER BY l.k")
	want = [][]string{{"2", "NULL"}, {"3", "NULL"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("left-side pushdown under LEFT JOIN = %v, want %v", got, want)
	}
}

// TestPushdownBelowJoins: single-table conjuncts move below the join and
// show up as per-input filters (or index restrictions) in EXPLAIN, and
// the results match an unindexed database planning the same query.
func TestPushdownBelowJoins(t *testing.T) {
	build := func(withIndexes bool) *Database {
		db := NewDatabase()
		if withIndexes {
			db.MustExec("CREATE TABLE a (id INTEGER PRIMARY KEY, v INTEGER)")
			db.MustExec("CREATE TABLE b (id INTEGER PRIMARY KEY, aid INTEGER, w INTEGER)")
			db.MustExec("CREATE INDEX idx_b_aid ON b (aid)")
		} else {
			db.MustExec("CREATE TABLE a (id INTEGER, v INTEGER)")
			db.MustExec("CREATE TABLE b (id INTEGER, aid INTEGER, w INTEGER)")
		}
		for i := 0; i < 40; i++ {
			db.MustExec("INSERT INTO a VALUES (?, ?)", i, i*3%17)
			db.MustExec("INSERT INTO b VALUES (?, ?, ?)", i, i%40, i*7%23)
		}
		return db
	}
	indexed, plain := build(true), build(false)
	const sql = "SELECT a.id, b.w FROM a JOIN b ON a.id = b.aid WHERE a.v > 4 AND b.w < 15 AND a.v + b.w < 30 ORDER BY a.id, b.id"
	ri, err := indexed.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowsToStrings(ri.Rows), rowsToStrings(rp.Rows)) {
		t.Fatalf("pushdown plans disagree:\nindexed %v\nplain   %v", rowsToStrings(ri.Rows), rowsToStrings(rp.Rows))
	}
	lines, err := indexed.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	out := strings.Join(lines, "\n")
	if !strings.Contains(out, "filter (a.v > 4)") {
		t.Errorf("left conjunct should be pushed below the join:\n%s", out)
	}
	if !strings.Contains(out, "filter (b.w < 15)") {
		t.Errorf("right conjunct should be pushed below the join:\n%s", out)
	}
	if !strings.Contains(out, "filter ((a.v + b.w) < 30)") {
		t.Errorf("multi-table conjunct must stay above the join:\n%s", out)
	}
}

// TestMergeJoinMatchesHashJoin: with both join keys indexed and a
// top-level ORDER BY, the planner merge-joins the two ordered views; the
// result set must match the unindexed hash-join plan.
func TestMergeJoinMatchesHashJoin(t *testing.T) {
	build := func(withIndexes bool) *Database {
		db := NewDatabase()
		ddlA, ddlB := "CREATE TABLE a (k INTEGER, v INTEGER)", "CREATE TABLE b (k INTEGER, w INTEGER)"
		db.MustExec(ddlA)
		db.MustExec(ddlB)
		if withIndexes {
			db.MustExec("CREATE INDEX idx_a_k ON a (k)")
			db.MustExec("CREATE INDEX idx_b_k ON b (k)")
		}
		r := rand.New(rand.NewSource(5))
		for i := 0; i < 60; i++ {
			var ka any = r.Intn(12) // duplicates on both sides
			if r.Intn(10) == 0 {
				ka = nil // NULL keys never join
			}
			db.MustExec("INSERT INTO a VALUES (?, ?)", ka, i)
		}
		for i := 0; i < 40; i++ {
			var kb any = r.Intn(15)
			if r.Intn(10) == 0 {
				kb = nil
			}
			db.MustExec("INSERT INTO b VALUES (?, ?)", kb, i)
		}
		return db
	}
	indexed, plain := build(true), build(false)
	// v, w make each row unique so the ORDER BY is total and comparison exact.
	const sql = "SELECT a.k, a.v, b.w FROM a JOIN b ON a.k = b.k ORDER BY a.k, a.v, b.w"
	lines, err := indexed.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if out := strings.Join(lines, "\n"); !strings.Contains(out, "merge join") {
		t.Fatalf("both-indexed equi-join under ORDER BY should merge join:\n%s", out)
	}
	ri, err := indexed.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowsToStrings(ri.Rows), rowsToStrings(rp.Rows)) {
		t.Fatalf("merge join disagrees with hash join:\nmerge %v\nhash  %v",
			rowsToStrings(ri.Rows), rowsToStrings(rp.Rows))
	}
}

// TestSubplanCacheRebindsOuterRow: a cached correlated subplan must
// produce per-outer-row answers — the plan is reused, the outer binding
// is not.
func TestSubplanCacheRebindsOuterRow(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE o (id INTEGER PRIMARY KEY, x INTEGER)")
	db.MustExec("CREATE TABLE i (id INTEGER PRIMARY KEY, y INTEGER)")
	db.MustExec("INSERT INTO o VALUES (1, 5), (2, 15), (3, 0)")
	db.MustExec("INSERT INTO i VALUES (1, 3), (2, 10), (3, 20)")

	// Scalar subquery with aggregation: the groupOp inside the cached
	// subplan must fully rebuild per probe.
	got := queryStrings(t, db,
		"SELECT id, (SELECT MAX(y) FROM i WHERE i.y <= o.x) FROM o ORDER BY id")
	want := [][]string{{"1", "3"}, {"2", "10"}, {"3", "NULL"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("correlated scalar subquery = %v, want %v", got, want)
	}

	// Correlated EXISTS and IN over the cached subplan.
	got = queryStrings(t, db,
		"SELECT id FROM o WHERE EXISTS (SELECT 1 FROM i WHERE i.y < o.x) ORDER BY id")
	want = [][]string{{"1"}, {"2"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("correlated EXISTS = %v, want %v", got, want)
	}
	got = queryStrings(t, db,
		"SELECT id FROM o WHERE o.x IN (SELECT y FROM i) ORDER BY id")
	if want := [][]string{}; len(got) != 0 {
		t.Errorf("IN subquery = %v, want %v", got, want)
	}
}

// TestSubplanCacheStats: N outer probes of a cacheable subplan cost one
// plan build (miss) and N-1 cached re-pulls (hits).
func TestSubplanCacheStats(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE o (id INTEGER PRIMARY KEY)")
	db.MustExec("CREATE TABLE i (oid INTEGER)")
	for k := 0; k < 20; k++ {
		db.MustExec("INSERT INTO o VALUES (?)", k)
		if k%2 == 0 {
			db.MustExec("INSERT INTO i VALUES (?)", k)
		}
	}
	before := db.Stats()
	res, err := db.Query("SELECT id FROM o WHERE EXISTS (SELECT 1 FROM i WHERE i.oid = o.id)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("EXISTS rows = %d, want 10", len(res.Rows))
	}
	s := db.Stats()
	if hits := s.SubplanCacheHits - before.SubplanCacheHits; hits != 19 {
		t.Errorf("subplan cache hits = %d, want 19 (20 probes, 1 build)", hits)
	}
	if misses := s.SubplanCacheMisses - before.SubplanCacheMisses; misses != 1 {
		t.Errorf("subplan cache misses = %d, want 1", misses)
	}

	// A derived table in the subquery's FROM disables the cache: every
	// probe re-plans and counts as a miss.
	before = db.Stats()
	if _, err := db.Query(
		"SELECT id FROM o WHERE EXISTS (SELECT 1 FROM (SELECT oid FROM i) d WHERE d.oid = o.id)"); err != nil {
		t.Fatal(err)
	}
	s = db.Stats()
	if hits := s.SubplanCacheHits - before.SubplanCacheHits; hits != 0 {
		t.Errorf("non-cacheable subplan hits = %d, want 0", hits)
	}
	if misses := s.SubplanCacheMisses - before.SubplanCacheMisses; misses != 20 {
		t.Errorf("non-cacheable subplan misses = %d, want 20", misses)
	}
}

// TestDistinctOrderByNonOutputKeyNotElided: DISTINCT keeps each group's
// first-arriving row, and ORDER BY on a non-output column sorts groups
// by that representative's key — so the sort must not be elided into
// index order, which would change which representative wins. The indexed
// and plain databases must agree.
func TestDistinctOrderByNonOutputKeyNotElided(t *testing.T) {
	build := func(withIndex bool) *Database {
		db := NewDatabase()
		db.MustExec("CREATE TABLE t (a INTEGER, b INTEGER)")
		if withIndex {
			db.MustExec("CREATE INDEX idx_t_b ON t (b)")
		}
		db.MustExec("INSERT INTO t VALUES (1, 5), (1, 1), (2, 3)")
		return db
	}
	const sql = "SELECT DISTINCT a FROM t ORDER BY b"
	gi := queryStrings(t, build(true), sql)
	gp := queryStrings(t, build(false), sql)
	if !reflect.DeepEqual(gi, gp) {
		t.Errorf("DISTINCT ORDER BY non-output key depends on index: indexed %v vs plain %v", gi, gp)
	}
	// With the key in the output the groups carry it, and index order is
	// safe — both databases agree and the result is key-ordered.
	const sql2 = "SELECT DISTINCT a, b FROM t ORDER BY b"
	gi2 := queryStrings(t, build(true), sql2)
	gp2 := queryStrings(t, build(false), sql2)
	if !reflect.DeepEqual(gi2, gp2) {
		t.Errorf("DISTINCT ORDER BY output key diverged: indexed %v vs plain %v", gi2, gp2)
	}
}

// TestCorrelatedProbeScansOnlyMatches: a correlated EXISTS over an
// unindexed column builds its transient hash memo once and then touches
// only matching rows — the per-probe scan is gone — and both the probe
// and the cached subplan surface in EXPLAIN.
func TestCorrelatedProbeScansOnlyMatches(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE o (id INTEGER PRIMARY KEY)")
	db.MustExec("CREATE TABLE i (oid INTEGER, v INTEGER)") // oid unindexed
	for k := 0; k < 50; k++ {
		db.MustExec("INSERT INTO o VALUES (?)", k)
	}
	for k := 0; k < 500; k++ {
		db.MustExec("INSERT INTO i VALUES (?, ?)", k%25, k)
	}
	const sql = "SELECT id FROM o WHERE EXISTS (SELECT 1 FROM i WHERE i.oid = o.id)"
	before := db.Stats()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 25 {
		t.Fatalf("EXISTS rows = %d, want 25", len(res.Rows))
	}
	// 50 outer rows scanned plus one matching inner row per successful
	// probe (EXISTS stops at the first): 50 + 25, not 50 + 50*500.
	if scanned := db.Stats().RowsScanned - before.RowsScanned; scanned != 75 {
		t.Errorf("correlated EXISTS scanned %d rows, want 75", scanned)
	}
	lines, err := db.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	out := strings.Join(lines, "\n")
	if !strings.Contains(out, "subplan (compiled once, outer row rebound per probe)") {
		t.Errorf("EXPLAIN should surface the cached subplan:\n%s", out)
	}
	if !strings.Contains(out, "correlated probe i (as i) on i.oid = o.id (via transient hash memo)") {
		t.Errorf("EXPLAIN should surface the correlated probe:\n%s", out)
	}
}

// TestTopKSortMatchesFullSort: when no index can serve the order, the
// bounded top-k heap must agree with the full stable sort — including
// tie-breaking by input order.
func TestTopKSortMatchesFullSort(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (seq INTEGER, k INTEGER)") // k unindexed: sort path
	var rows [][]any
	for i := 0; i < 500; i++ {
		rows = append(rows, []any{i, r.Intn(9)}) // heavy ties
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	for _, shape := range []string{
		"SELECT seq, k FROM t ORDER BY k LIMIT %d",
		"SELECT seq, k FROM t ORDER BY k DESC LIMIT %d",
		"SELECT seq, k FROM t ORDER BY k LIMIT %d OFFSET 13",
		"SELECT seq, k FROM t ORDER BY k, seq DESC LIMIT %d",
	} {
		for _, k := range []int{0, 1, 7, 499, 600} {
			sql := fmt.Sprintf(shape, k)
			limited, err := db.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			full, err := db.Query(strings.Split(sql, " LIMIT ")[0])
			if err != nil {
				t.Fatal(err)
			}
			want := rowsToStrings(full.Rows)
			off := 0
			if strings.Contains(sql, "OFFSET") {
				off = 13
			}
			if off > len(want) {
				off = len(want)
			}
			end := off + k
			if end > len(want) {
				end = len(want)
			}
			want = want[off:end]
			if got := rowsToStrings(limited.Rows); !reflect.DeepEqual(got, append([][]string{}, want...)) {
				t.Fatalf("top-k disagrees with full sort on %q:\ngot  %v\nwant %v", sql, got, want)
			}
		}
	}
}

// TestPureUpdateWorkloadBoundsOrderedView: a workload that only updates
// an indexed column must not grow the ordered view without bound. Under
// MVCC the superset index keeps old-key entries until the vacuum sweeps
// dead versions and rebuilds the postings; after a vacuum pass the
// rebuilt ordered view must hold only the live values again.
func TestPureUpdateWorkloadBoundsOrderedView(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER)")
	db.MustExec("CREATE INDEX idx_t_k ON t (k)")
	for i := 0; i < 8; i++ {
		db.MustExec("INSERT INTO t VALUES (?, ?)", i, i)
	}
	db.MustExec("SELECT id FROM t ORDER BY k LIMIT 1") // build the view
	tbl, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	idx := tbl.idxs()["k"]
	for round := 0; round < 500; round++ {
		// Every round moves each row to a brand-new distinct value.
		db.MustExec("UPDATE t SET k = k + 8 WHERE id = ?", round%8)
		if _, err := db.Query("SELECT id FROM t ORDER BY k"); err != nil {
			t.Fatal(err)
		}
	}
	db.Vacuum() // deterministic sweep: drop dead versions, rebuild postings
	got := queryStrings(t, db, "SELECT id FROM t ORDER BY k")
	if len(got) != 8 {
		t.Fatalf("ordered scan returned %d rows, want 8", len(got))
	}
	if n := len(idx.orderedEntries()); n > 8 {
		t.Fatalf("ordered view holds %d entries after vacuum, want <= 8 live values", n)
	}
}
