package sqldb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// This file holds property-based tests over the engine's core invariants,
// complementing the behavioural tests in exec_test.go.

// referenceLike is an an oracle implementation of SQL LIKE built on a
// different algorithm (dynamic programming) for cross-checking likeMatch.
func referenceLike(pattern, s string) bool {
	p := strings.ToLower(pattern)
	t := strings.ToLower(s)
	dp := make([][]bool, len(p)+1)
	for i := range dp {
		dp[i] = make([]bool, len(t)+1)
	}
	dp[0][0] = true
	for i := 1; i <= len(p); i++ {
		if p[i-1] == '%' {
			dp[i][0] = dp[i-1][0]
		}
	}
	for i := 1; i <= len(p); i++ {
		for j := 1; j <= len(t); j++ {
			switch p[i-1] {
			case '%':
				dp[i][j] = dp[i-1][j] || dp[i][j-1]
			case '_':
				dp[i][j] = dp[i-1][j-1]
			default:
				dp[i][j] = dp[i-1][j-1] && p[i-1] == t[j-1]
			}
		}
	}
	return dp[len(p)][len(t)]
}

func TestLikeMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	alphabet := "ab%_c"
	randStr := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		return b.String()
	}
	for i := 0; i < 5000; i++ {
		pattern := randStr(r.Intn(8))
		s := strings.ReplaceAll(strings.ReplaceAll(randStr(r.Intn(10)), "%", "x"), "_", "y")
		if likeMatch(pattern, s) != referenceLike(pattern, s) {
			t.Fatalf("likeMatch(%q, %q) = %v disagrees with reference", pattern, s, likeMatch(pattern, s))
		}
	}
}

func TestCoerceIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	kinds := []Kind{KindInt, KindFloat, KindText, KindBool}
	for i := 0; i < 5000; i++ {
		v := randomValue(r)
		k := kinds[r.Intn(len(kinds))]
		once := coerce(v, k)
		twice := coerce(once, k)
		if !once.Equal(twice) || once.Kind() != twice.Kind() {
			t.Fatalf("coerce not idempotent: %v -> %v -> %v (kind %v)", v, once, twice, k)
		}
	}
}

func TestOrderByIsStableSort(t *testing.T) {
	// Rows with equal keys must keep insertion order.
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (k INTEGER, seq INTEGER)")
	r := rand.New(rand.NewSource(4))
	var rows [][]any
	for i := 0; i < 300; i++ {
		rows = append(rows, []any{r.Intn(5), i})
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT k, seq FROM t ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	lastSeq := map[int64]int64{}
	for _, row := range res.Rows {
		k, seq := row[0].AsInt(), row[1].AsInt()
		if prev, ok := lastSeq[k]; ok && seq < prev {
			t.Fatalf("ORDER BY not stable: key %d saw seq %d after %d", k, seq, prev)
		}
		lastSeq[k] = seq
	}
}

func TestConjunctsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		n := 1 + r.Intn(5)
		var parts []Expr
		for j := 0; j < n; j++ {
			parts = append(parts, &BinaryOp{
				Op:   "=",
				Left: &ColumnRef{Column: fmt.Sprintf("c%d", j), index: -1},
				Right: &Literal{
					Val: Int(int64(r.Intn(10))),
				},
			})
		}
		joined := joinConjuncts(parts)
		split := splitConjuncts(joined)
		if len(split) != n {
			t.Fatalf("round trip: %d conjuncts -> %d", n, len(split))
		}
		for j := range split {
			if split[j].String() != parts[j].String() {
				t.Fatalf("conjunct %d changed: %s vs %s", j, split[j], parts[j])
			}
		}
	}
	if joinConjuncts(nil) != nil {
		t.Error("empty conjunct list should join to nil")
	}
}

func TestRowKeyInjectiveOnDistinctRows(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	seen := map[string]Row{}
	for i := 0; i < 3000; i++ {
		row := Row{randomValue(r), randomValue(r)}
		k := rowKey(row)
		if prev, ok := seen[k]; ok {
			// Same key requires pairwise-equal values.
			for j := range row {
				if !row[j].Equal(prev[j]) {
					t.Fatalf("rowKey collision: %v vs %v", row, prev)
				}
			}
		}
		seen[k] = row
	}
}

func TestInsertSelectRoundTrip(t *testing.T) {
	// Copying a table through INSERT..SELECT preserves every row.
	if err := quick.Check(func(vals []int16) bool {
		db := NewDatabase()
		db.MustExec("CREATE TABLE a (v INTEGER)")
		db.MustExec("CREATE TABLE b (v INTEGER)")
		var rows [][]any
		for _, v := range vals {
			rows = append(rows, []any{int(v)})
		}
		if err := db.InsertRows("a", rows); err != nil {
			return false
		}
		if _, err := db.Exec("INSERT INTO b SELECT v FROM a"); err != nil {
			return false
		}
		ra, _ := db.Query("SELECT v FROM a ORDER BY v")
		rb, _ := db.Query("SELECT v FROM b ORDER BY v")
		return reflect.DeepEqual(ra.Rows, rb.Rows)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAggregatesMatchManualComputation(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (v INTEGER)")
	var rows [][]any
	sum, minV, maxV := int64(0), int64(1<<62), int64(-1<<62)
	n := 200
	for i := 0; i < n; i++ {
		v := int64(r.Intn(2001) - 1000)
		rows = append(rows, []any{v})
		sum += v
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].AsInt() != int64(n) || row[1].AsInt() != sum ||
		row[2].AsInt() != minV || row[3].AsInt() != maxV {
		t.Fatalf("aggregates %v; want n=%d sum=%d min=%d max=%d", row, n, sum, minV, maxV)
	}
	wantAvg := float64(sum) / float64(n)
	if diff := row[4].AsFloat() - wantAvg; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("avg = %v, want %v", row[4].AsFloat(), wantAvg)
	}
}

func TestGroupByPartitionsExactly(t *testing.T) {
	// Sum of group counts equals the table size; groups are disjoint.
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (g TEXT, v INTEGER)")
	r := rand.New(rand.NewSource(23))
	groups := []string{"a", "b", "c", "d"}
	var rows [][]any
	for i := 0; i < 400; i++ {
		rows = append(rows, []any{groups[r.Intn(len(groups))], i})
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT g, COUNT(*) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	seen := map[string]bool{}
	for _, row := range res.Rows {
		g := row[0].AsText()
		if seen[g] {
			t.Fatalf("group %q appears twice", g)
		}
		seen[g] = true
		total += row[1].AsInt()
	}
	if total != 400 {
		t.Fatalf("group counts sum to %d, want 400", total)
	}
}

func TestLeftJoinRowCountInvariant(t *testing.T) {
	// A LEFT JOIN on a unique right key yields exactly one output row per
	// left row when keys are unique on the right.
	db := NewDatabase()
	db.MustExec("CREATE TABLE l (k INTEGER)")
	db.MustExec("CREATE TABLE r (k INTEGER PRIMARY KEY, tag TEXT)")
	var lrows, rrows [][]any
	for i := 0; i < 100; i++ {
		lrows = append(lrows, []any{i})
		if i%2 == 0 {
			rrows = append(rrows, []any{i, fmt.Sprintf("r%d", i)})
		}
	}
	if err := db.InsertRows("l", lrows); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("r", rrows); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT l.k, r.tag FROM l LEFT JOIN r ON l.k = r.k")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 100 {
		t.Fatalf("left join rows = %d, want 100", len(res.Rows))
	}
	nulls := 0
	for _, row := range res.Rows {
		if row[1].IsNull() {
			nulls++
		}
	}
	if nulls != 50 {
		t.Fatalf("unmatched rows = %d, want 50", nulls)
	}
}

// ---------------------------------------------------------------------------
// Old-executor equivalence
//
// The engine's per-row path is compiled (compile.go); the interpreted
// evaluator that powered the old executor survives in expr.go for DML.
// refSelect below reconstructs the old executor for single-table queries —
// interpreted predicates, no index selection, per-row projection — and the
// property tests assert the two pipelines agree over generated queries.

// refSelect is a miniature interpreted executor: full scan, interpreted
// WHERE, interpreted projection, stable sort on interpreted ORDER BY keys.
func refSelect(db *Database, stmt *SelectStmt) ([]Row, error) {
	tbl, err := db.lookupTable(stmt.From.Name)
	if err != nil {
		return nil, err
	}
	cols := make([]colInfo, len(tbl.Columns))
	for i, c := range tbl.Columns {
		cols[i] = colInfo{qual: stmt.From.effectiveName(), name: c.Name}
	}
	items, _, err := expandItems(stmt.Items, cols)
	if err != nil {
		return nil, err
	}
	env := newEvalEnv(cols, db, nil, nil, nil)
	type keyed struct {
		out  Row
		keys []Value
	}
	var rows []keyed
	arr, n := tbl.loadSlots()
	for id := 0; id < n; id++ {
		r := latestRow(arr[id].head.Load())
		if r == nil {
			continue
		}
		env.row = r
		if stmt.Where != nil {
			v, err := evalExpr(stmt.Where, env)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.AsBool() {
				continue
			}
		}
		out := make(Row, len(items))
		for i, it := range items {
			if out[i], err = evalExpr(it.Expr, env); err != nil {
				return nil, err
			}
		}
		keys := make([]Value, len(stmt.OrderBy))
		for i, ob := range stmt.OrderBy {
			if keys[i], err = evalExpr(ob.Expr, env); err != nil {
				return nil, err
			}
		}
		rows = append(rows, keyed{out: out, keys: keys})
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for j, ob := range stmt.OrderBy {
			c := rows[a].keys[j].Compare(rows[b].keys[j])
			if c != 0 {
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	out := make([]Row, len(rows))
	for i, kr := range rows {
		out[i] = kr.out
	}
	return out, nil
}

func rowsToStrings(rows []Row) [][]string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = make([]string, len(r))
		for j, v := range r {
			if v.IsNull() {
				out[i][j] = "NULL"
			} else {
				out[i][j] = v.AsText()
			}
		}
	}
	return out
}

// propTables loads the same rows into two databases: one with primary keys
// and secondary indexes (index scans, index joins), one with neither (seq
// scans, hash joins). withIndexes also differs in join build-side choices
// because the optimiser sees different table metadata.
func propTables(t *testing.T, r *rand.Rand) (indexed, plain *Database) {
	t.Helper()
	indexed = NewDatabase()
	plain = NewDatabase()
	indexed.MustExec("CREATE TABLE t1 (id INTEGER PRIMARY KEY, a INTEGER, b TEXT, c REAL)")
	indexed.MustExec("CREATE TABLE t2 (id INTEGER PRIMARY KEY, t1_id INTEGER, d INTEGER)")
	indexed.MustExec("CREATE INDEX idx_t2_fk ON t2 (t1_id)")
	plain.MustExec("CREATE TABLE t1 (id INTEGER, a INTEGER, b TEXT, c REAL)")
	plain.MustExec("CREATE TABLE t2 (id INTEGER, t1_id INTEGER, d INTEGER)")

	words := []string{"ant", "bee", "cat", "dog", "elk", "fox"}
	var rows1, rows2 [][]any
	for i := 0; i < 80; i++ {
		var c any = float64(r.Intn(400)) / 4
		if r.Intn(8) == 0 {
			c = nil
		}
		rows1 = append(rows1, []any{i, r.Intn(6), words[r.Intn(len(words))], c})
	}
	for i := 0; i < 200; i++ {
		rows2 = append(rows2, []any{i, r.Intn(100), r.Intn(30)}) // some t1_ids dangle
	}
	for _, db := range []*Database{indexed, plain} {
		if err := db.InsertRows("t1", rows1); err != nil {
			t.Fatal(err)
		}
		if err := db.InsertRows("t2", rows2); err != nil {
			t.Fatal(err)
		}
	}
	return indexed, plain
}

// randPred builds a random WHERE predicate over t1's columns (qualified,
// so the same predicate works in single-table and join queries).
func randPred(r *rand.Rand) string {
	atoms := []string{
		fmt.Sprintf("t1.a = %d", r.Intn(6)),
		fmt.Sprintf("t1.a != %d", r.Intn(6)),
		fmt.Sprintf("t1.c > %d", r.Intn(100)),
		fmt.Sprintf("t1.c <= %d", r.Intn(100)),
		"t1.c IS NULL",
		"t1.c IS NOT NULL",
		fmt.Sprintf("t1.b LIKE '%%%c%%'", 'a'+rune(r.Intn(6))),
		fmt.Sprintf("t1.a BETWEEN %d AND %d", r.Intn(3), 3+r.Intn(3)),
		fmt.Sprintf("t1.a IN (%d, %d)", r.Intn(6), r.Intn(6)),
		fmt.Sprintf("t1.id = %d", r.Intn(80)),
		// Range shapes over the indexed primary key: on the indexed
		// database these become index range scans (or bounded ordered
		// scans under ORDER BY id); on the plain database they filter.
		fmt.Sprintf("t1.id > %d", r.Intn(80)),
		fmt.Sprintf("t1.id BETWEEN %d AND %d", r.Intn(40), 40+r.Intn(40)),
		fmt.Sprintf("%d <= t1.id", r.Intn(80)),
		fmt.Sprintf("t1.id >= %d AND t1.id < %d", r.Intn(40), 40+r.Intn(40)),
	}
	p := atoms[r.Intn(len(atoms))]
	for r.Intn(2) == 0 {
		op := "AND"
		if r.Intn(2) == 0 {
			op = "OR"
		}
		p = fmt.Sprintf("(%s %s %s)", p, op, atoms[r.Intn(len(atoms))])
	}
	return p
}

func TestCompiledMatchesInterpretedExecutor(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	indexed, _ := propTables(t, r)
	projections := []string{
		"id, a, b, c",
		"*",
		"a * 2 + 1, UPPER(b)",
		"CASE WHEN a < 3 THEN 'lo' ELSE 'hi' END, c",
		"COALESCE(c, -1), LENGTH(b)",
	}
	for i := 0; i < 300; i++ {
		sql := fmt.Sprintf("SELECT %s FROM t1 WHERE %s ORDER BY id",
			projections[r.Intn(len(projections))], randPred(r))
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		sel := stmt.(*SelectStmt)
		want, err := refSelect(indexed, sel)
		if err != nil {
			t.Fatalf("refSelect(%q): %v", sql, err)
		}
		res, err := indexed.Query(sql)
		if err != nil {
			t.Fatalf("Query(%q): %v", sql, err)
		}
		if !reflect.DeepEqual(rowsToStrings(res.Rows), rowsToStrings(want)) {
			t.Fatalf("compiled executor disagrees with interpreted reference on %q:\ngot  %v\nwant %v",
				sql, rowsToStrings(res.Rows), rowsToStrings(want))
		}
	}
}

func TestPlanChoicesAgree(t *testing.T) {
	// The same query must return identical rows whether the planner picks
	// index scans / index joins / flipped build sides (indexed db) or seq
	// scans / right-build hash joins (plain db). ORDER BY keys end with a
	// unique column so every ordering is total and comparison is exact.
	r := rand.New(rand.NewSource(7))
	indexed, plain := propTables(t, r)
	shapes := []func(*rand.Rand) string{
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT id, a, c FROM t1 WHERE %s ORDER BY id", randPred(r))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf(
				"SELECT t1.id, t1.a, t2.d FROM t1 JOIN t2 ON t1.id = t2.t1_id WHERE %s ORDER BY t1.id, t2.id",
				randPred(r))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf(
				"SELECT t2.id, t1.b FROM t2 JOIN t1 ON t2.t1_id = t1.id WHERE %s ORDER BY t2.id",
				randPred(r))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf(
				"SELECT t1.id, t2.d FROM t1 LEFT JOIN t2 ON t1.id = t2.t1_id WHERE %s ORDER BY t1.id, t2.id",
				randPred(r))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf(
				"SELECT a, COUNT(*), SUM(c) FROM t1 WHERE %s GROUP BY a ORDER BY a", randPred(r))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf(
				"SELECT DISTINCT t1.a FROM t1 JOIN t2 ON t1.id = t2.t1_id ORDER BY t1.a LIMIT %d",
				1+r.Intn(6))
		},
		func(r *rand.Rand) string {
			// Both join keys indexed on the indexed db: merge join there,
			// hash join on the plain one.
			return fmt.Sprintf(
				"SELECT t1.id, t2.d FROM t1 JOIN t2 ON t1.id = t2.id WHERE %s ORDER BY t1.id",
				randPred(r))
		},
		func(r *rand.Rand) string {
			// Predicate on the nullable side of a LEFT JOIN: must stay
			// above the join on both databases.
			return fmt.Sprintf(
				"SELECT t1.id, t2.d FROM t1 LEFT JOIN t2 ON t1.id = t2.t1_id WHERE t2.d > %d OR t2.d IS NULL ORDER BY t1.id, t2.id",
				r.Intn(30))
		},
		func(r *rand.Rand) string {
			// ORDER BY an indexed column under LIMIT: ordered index scan
			// on the indexed db, top-k sort on the plain one. id is
			// unique, so truncation is well-defined on both.
			return fmt.Sprintf(
				"SELECT id, a, b FROM t1 WHERE %s ORDER BY id DESC LIMIT %d",
				randPred(r), 1+r.Intn(10))
		},
	}
	for i := 0; i < 240; i++ {
		sql := shapes[i%len(shapes)](r)
		ri, err := indexed.Query(sql)
		if err != nil {
			t.Fatalf("indexed Query(%q): %v", sql, err)
		}
		rp, err := plain.Query(sql)
		if err != nil {
			t.Fatalf("plain Query(%q): %v", sql, err)
		}
		if !reflect.DeepEqual(rowsToStrings(ri.Rows), rowsToStrings(rp.Rows)) {
			t.Fatalf("plans disagree on %q:\nindexed %v\nplain   %v",
				sql, rowsToStrings(ri.Rows), rowsToStrings(rp.Rows))
		}
	}
}

func TestTiedOrderByLimitKeepsProbeOrder(t *testing.T) {
	// With fully tied ORDER BY keys, the stable sort preserves join
	// emission order, so under LIMIT the planner must not flip the probe
	// side: the returned rows must match the left-major nested order
	// regardless of available indexes or relative table sizes.
	db := NewDatabase()
	db.MustExec("CREATE TABLE s (k INTEGER, tag TEXT)")
	db.MustExec("CREATE TABLE b (k INTEGER, v INTEGER)")
	db.MustExec("CREATE INDEX idx_b_k ON b (k)") // tempt the flipped index join
	db.MustExec("INSERT INTO s VALUES (1, 's1'), (1, 's2')")
	for i := 0; i < 50; i++ {
		db.MustExec("INSERT INTO b VALUES (1, ?)", i) // all rows tie on the join key
	}
	res, err := db.Query("SELECT s.tag, b.v FROM s JOIN b ON s.k = b.k ORDER BY s.k LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"s1", "0"}, {"s1", "1"}, {"s1", "2"}}
	if got := rowsToStrings(res.Rows); !reflect.DeepEqual(got, want) {
		t.Errorf("tied ORDER BY + LIMIT changed join emission order: got %v, want %v", got, want)
	}
}

func TestScalarSubqueryPlanIndependent(t *testing.T) {
	// A scalar subquery keeps only its first row (an implicit LIMIT 1), so
	// reordered join plans inside it would make the answer depend on which
	// indexes exist. Build the same data with and without an index on the
	// join key and require identical answers.
	build := func(withIndex bool) *Database {
		db := NewDatabase()
		db.MustExec("CREATE TABLE s (k INTEGER, sv INTEGER, tag TEXT)")
		db.MustExec("CREATE TABLE b (k INTEGER, v INTEGER)")
		if withIndex {
			db.MustExec("CREATE INDEX idx_s_k ON s (k)")
		}
		db.MustExec("INSERT INTO s VALUES (1, 5, 's1'), (1, 0, 's2')")
		db.MustExec("INSERT INTO b VALUES (1, 1), (1, 9)")
		return db
	}
	const sql = "SELECT (SELECT s.tag FROM s JOIN b ON s.k = b.k AND s.sv < b.v ORDER BY s.k)"
	ri, err := build(true).Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := build(false).Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Rows[0][0].AsText() != rp.Rows[0][0].AsText() {
		t.Errorf("scalar subquery answer depends on plan: indexed %q vs plain %q",
			ri.Rows[0][0].AsText(), rp.Rows[0][0].AsText())
	}
}

func TestDistinctIsIdempotent(t *testing.T) {
	db := testDB(t)
	once := queryStrings(t, db, "SELECT DISTINCT genre FROM movies ORDER BY genre")
	// Selecting DISTINCT over an already-distinct projection is a no-op.
	twice := queryStrings(t, db, "SELECT DISTINCT genre FROM (SELECT DISTINCT genre FROM movies) d ORDER BY genre")
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("distinct not idempotent: %v vs %v", once, twice)
	}
}
