package sqldb

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// This file holds property-based tests over the engine's core invariants,
// complementing the behavioural tests in exec_test.go.

// referenceLike is an an oracle implementation of SQL LIKE built on a
// different algorithm (dynamic programming) for cross-checking likeMatch.
func referenceLike(pattern, s string) bool {
	p := strings.ToLower(pattern)
	t := strings.ToLower(s)
	dp := make([][]bool, len(p)+1)
	for i := range dp {
		dp[i] = make([]bool, len(t)+1)
	}
	dp[0][0] = true
	for i := 1; i <= len(p); i++ {
		if p[i-1] == '%' {
			dp[i][0] = dp[i-1][0]
		}
	}
	for i := 1; i <= len(p); i++ {
		for j := 1; j <= len(t); j++ {
			switch p[i-1] {
			case '%':
				dp[i][j] = dp[i-1][j] || dp[i][j-1]
			case '_':
				dp[i][j] = dp[i-1][j-1]
			default:
				dp[i][j] = dp[i-1][j-1] && p[i-1] == t[j-1]
			}
		}
	}
	return dp[len(p)][len(t)]
}

func TestLikeMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	alphabet := "ab%_c"
	randStr := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		return b.String()
	}
	for i := 0; i < 5000; i++ {
		pattern := randStr(r.Intn(8))
		s := strings.ReplaceAll(strings.ReplaceAll(randStr(r.Intn(10)), "%", "x"), "_", "y")
		if likeMatch(pattern, s) != referenceLike(pattern, s) {
			t.Fatalf("likeMatch(%q, %q) = %v disagrees with reference", pattern, s, likeMatch(pattern, s))
		}
	}
}

func TestCoerceIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	kinds := []Kind{KindInt, KindFloat, KindText, KindBool}
	for i := 0; i < 5000; i++ {
		v := randomValue(r)
		k := kinds[r.Intn(len(kinds))]
		once := coerce(v, k)
		twice := coerce(once, k)
		if !once.Equal(twice) || once.Kind() != twice.Kind() {
			t.Fatalf("coerce not idempotent: %v -> %v -> %v (kind %v)", v, once, twice, k)
		}
	}
}

func TestOrderByIsStableSort(t *testing.T) {
	// Rows with equal keys must keep insertion order.
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (k INTEGER, seq INTEGER)")
	r := rand.New(rand.NewSource(4))
	var rows [][]any
	for i := 0; i < 300; i++ {
		rows = append(rows, []any{r.Intn(5), i})
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT k, seq FROM t ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	lastSeq := map[int64]int64{}
	for _, row := range res.Rows {
		k, seq := row[0].AsInt(), row[1].AsInt()
		if prev, ok := lastSeq[k]; ok && seq < prev {
			t.Fatalf("ORDER BY not stable: key %d saw seq %d after %d", k, seq, prev)
		}
		lastSeq[k] = seq
	}
}

func TestConjunctsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		n := 1 + r.Intn(5)
		var parts []Expr
		for j := 0; j < n; j++ {
			parts = append(parts, &BinaryOp{
				Op:   "=",
				Left: &ColumnRef{Column: fmt.Sprintf("c%d", j), index: -1},
				Right: &Literal{
					Val: Int(int64(r.Intn(10))),
				},
			})
		}
		joined := joinConjuncts(parts)
		split := splitConjuncts(joined)
		if len(split) != n {
			t.Fatalf("round trip: %d conjuncts -> %d", n, len(split))
		}
		for j := range split {
			if split[j].String() != parts[j].String() {
				t.Fatalf("conjunct %d changed: %s vs %s", j, split[j], parts[j])
			}
		}
	}
	if joinConjuncts(nil) != nil {
		t.Error("empty conjunct list should join to nil")
	}
}

func TestRowKeyInjectiveOnDistinctRows(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	seen := map[string]Row{}
	for i := 0; i < 3000; i++ {
		row := Row{randomValue(r), randomValue(r)}
		k := rowKey(row)
		if prev, ok := seen[k]; ok {
			// Same key requires pairwise-equal values.
			for j := range row {
				if !row[j].Equal(prev[j]) {
					t.Fatalf("rowKey collision: %v vs %v", row, prev)
				}
			}
		}
		seen[k] = row
	}
}

func TestInsertSelectRoundTrip(t *testing.T) {
	// Copying a table through INSERT..SELECT preserves every row.
	if err := quick.Check(func(vals []int16) bool {
		db := NewDatabase()
		db.MustExec("CREATE TABLE a (v INTEGER)")
		db.MustExec("CREATE TABLE b (v INTEGER)")
		var rows [][]any
		for _, v := range vals {
			rows = append(rows, []any{int(v)})
		}
		if err := db.InsertRows("a", rows); err != nil {
			return false
		}
		if _, err := db.Exec("INSERT INTO b SELECT v FROM a"); err != nil {
			return false
		}
		ra, _ := db.Query("SELECT v FROM a ORDER BY v")
		rb, _ := db.Query("SELECT v FROM b ORDER BY v")
		return reflect.DeepEqual(ra.Rows, rb.Rows)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAggregatesMatchManualComputation(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (v INTEGER)")
	var rows [][]any
	sum, minV, maxV := int64(0), int64(1<<62), int64(-1<<62)
	n := 200
	for i := 0; i < n; i++ {
		v := int64(r.Intn(2001) - 1000)
		rows = append(rows, []any{v})
		sum += v
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].AsInt() != int64(n) || row[1].AsInt() != sum ||
		row[2].AsInt() != minV || row[3].AsInt() != maxV {
		t.Fatalf("aggregates %v; want n=%d sum=%d min=%d max=%d", row, n, sum, minV, maxV)
	}
	wantAvg := float64(sum) / float64(n)
	if diff := row[4].AsFloat() - wantAvg; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("avg = %v, want %v", row[4].AsFloat(), wantAvg)
	}
}

func TestGroupByPartitionsExactly(t *testing.T) {
	// Sum of group counts equals the table size; groups are disjoint.
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (g TEXT, v INTEGER)")
	r := rand.New(rand.NewSource(23))
	groups := []string{"a", "b", "c", "d"}
	var rows [][]any
	for i := 0; i < 400; i++ {
		rows = append(rows, []any{groups[r.Intn(len(groups))], i})
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT g, COUNT(*) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	seen := map[string]bool{}
	for _, row := range res.Rows {
		g := row[0].AsText()
		if seen[g] {
			t.Fatalf("group %q appears twice", g)
		}
		seen[g] = true
		total += row[1].AsInt()
	}
	if total != 400 {
		t.Fatalf("group counts sum to %d, want 400", total)
	}
}

func TestLeftJoinRowCountInvariant(t *testing.T) {
	// A LEFT JOIN on a unique right key yields exactly one output row per
	// left row when keys are unique on the right.
	db := NewDatabase()
	db.MustExec("CREATE TABLE l (k INTEGER)")
	db.MustExec("CREATE TABLE r (k INTEGER PRIMARY KEY, tag TEXT)")
	var lrows, rrows [][]any
	for i := 0; i < 100; i++ {
		lrows = append(lrows, []any{i})
		if i%2 == 0 {
			rrows = append(rrows, []any{i, fmt.Sprintf("r%d", i)})
		}
	}
	if err := db.InsertRows("l", lrows); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertRows("r", rrows); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT l.k, r.tag FROM l LEFT JOIN r ON l.k = r.k")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 100 {
		t.Fatalf("left join rows = %d, want 100", len(res.Rows))
	}
	nulls := 0
	for _, row := range res.Rows {
		if row[1].IsNull() {
			nulls++
		}
	}
	if nulls != 50 {
		t.Fatalf("unmatched rows = %d, want 50", nulls)
	}
}

func TestDistinctIsIdempotent(t *testing.T) {
	db := testDB(t)
	once := queryStrings(t, db, "SELECT DISTINCT genre FROM movies ORDER BY genre")
	// Selecting DISTINCT over an already-distinct projection is a no-op.
	twice := queryStrings(t, db, "SELECT DISTINCT genre FROM (SELECT DISTINCT genre FROM movies) d ORDER BY genre")
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("distinct not idempotent: %v vs %v", once, twice)
	}
}
