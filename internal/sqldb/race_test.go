package sqldb

import (
	"context"
	"sync"
	"testing"
)

func TestConcurrentQueriesShareCachedPlans(t *testing.T) {
	db := testDB(t)
	queries := []string{
		"SELECT m.title, COUNT(r.id) FROM movies m JOIN reviews r ON m.id = r.movie_id GROUP BY m.title ORDER BY 2 DESC",
		"SELECT * FROM movies WHERE id = 3",
		"SELECT DISTINCT genre FROM movies ORDER BY genre",
		"SELECT title FROM movies WHERE revenue > (SELECT AVG(revenue) FROM movies)",
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, q := range queries {
					if _, err := db.Query(q); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestConcurrentCursorsAndStats(t *testing.T) {
	// Streaming cursors on many goroutines share the read lock while
	// Stats() snapshots counters concurrently — the surface the race
	// detector watches.
	db := testDB(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rows, err := db.QueryRows(ctx, "SELECT title, revenue FROM movies WHERE revenue > ?", i%200)
				if err != nil {
					t.Error(err)
					return
				}
				for rows.Next() {
				}
				if err := rows.Err(); err != nil {
					t.Error(err)
				}
				rows.Close()
				db.Stats()
			}
		}()
	}
	wg.Wait()
}
