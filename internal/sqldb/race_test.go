package sqldb

import (
	"context"
	"sync"
	"testing"
)

func TestConcurrentQueriesShareCachedPlans(t *testing.T) {
	db := testDB(t)
	queries := []string{
		"SELECT m.title, COUNT(r.id) FROM movies m JOIN reviews r ON m.id = r.movie_id GROUP BY m.title ORDER BY 2 DESC",
		"SELECT * FROM movies WHERE id = 3",
		"SELECT DISTINCT genre FROM movies ORDER BY genre",
		"SELECT title FROM movies WHERE revenue > (SELECT AVG(revenue) FROM movies)",
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, q := range queries {
					if _, err := db.Query(q); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentOrderedBuildsCursorStatsAndAnalyze interleaves the
// surfaces the race detector guards after the analyze work: DML
// invalidates every ordered view, then concurrent readers race to
// trigger the first lazy rebuild while streaming cursors mutate their
// own per-query stats recorders (Rows.Stats mid-iteration), Stats()
// snapshots the aggregate, and ExplainAnalyze runs fully instrumented
// executions alongside.
func TestConcurrentOrderedBuildsCursorStatsAndAnalyze(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER)")
	db.MustExec("CREATE INDEX idx_t_k ON t (k)")
	rows := make([][]any, 2000)
	for i := range rows {
		rows[i] = []any{i, i % 97}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for round := 0; round < 10; round++ {
		// Invalidate the ordered views so the readers below race to build.
		db.MustExec("UPDATE t SET k = k + 1 WHERE id % 7 = ?", round%7)
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if _, err := db.Query("SELECT id FROM t WHERE k > 3 ORDER BY k LIMIT 5"); err != nil {
					t.Error(err)
					return
				}
				rows, err := db.QueryRows(ctx, "SELECT id, k FROM t WHERE k > ?", w)
				if err != nil {
					t.Error(err)
					return
				}
				for rows.Next() {
					_ = rows.Stats()
				}
				if err := rows.Err(); err != nil {
					t.Error(err)
				}
				_ = rows.Stats()
				rows.Close()
				db.Stats()
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := db.ExplainAnalyze(ctx,
				"SELECT id FROM t WHERE k > 2 ORDER BY k DESC LIMIT 3"); err != nil {
				t.Error(err)
			}
		}()
		wg.Wait()
	}
}

func TestConcurrentCursorsAndStats(t *testing.T) {
	// Streaming cursors on many goroutines share the read lock while
	// Stats() snapshots counters concurrently — the surface the race
	// detector watches.
	db := testDB(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rows, err := db.QueryRows(ctx, "SELECT title, revenue FROM movies WHERE revenue > ?", i%200)
				if err != nil {
					t.Error(err)
					return
				}
				for rows.Next() {
				}
				if err := rows.Err(); err != nil {
					t.Error(err)
				}
				rows.Close()
				db.Stats()
			}
		}()
	}
	wg.Wait()
}
