package sqldb

import (
	"encoding/binary"
	"math"
)

// This file implements the engine's hash-key encoding: a compact binary
// form of a Value (or a whole Row) that can be appended into a reusable
// []byte scratch buffer. Hash join, GROUP BY, DISTINCT, DISTINCT
// aggregates and secondary indexes all key their maps with it.
//
// The encoding respects Compare's equivalence classes: values that compare
// equal encode identically. Numerics that hold a mathematical integer
// (INTEGER, BOOLEAN, and integral REAL within int64 range) share an exact
// 8-byte int64 form, so int64 keys beyond 2^53 never collapse through
// float64 rounding the way the old strconv.FormatFloat encoding did.
// Every field is self-delimiting (fixed width or length-prefixed), so
// concatenated row keys are unambiguous.

const (
	keyTagNull  = 0x00
	keyTagInt   = 0x01
	keyTagFloat = 0x02
	keyTagText  = 0x03
)

// appendValueKey appends v's key encoding to dst and returns the extended
// slice. It never allocates beyond growing dst.
func appendValueKey(dst []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, keyTagNull)
	case KindText:
		dst = append(dst, keyTagText)
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		return append(dst, v.s...)
	case KindInt:
		return appendIntKey(dst, v.i)
	case KindBool:
		if v.b {
			return appendIntKey(dst, 1)
		}
		return appendIntKey(dst, 0)
	default: // KindFloat
		f := v.f
		// Integral floats inside int64 range share the integer form so
		// that e.g. Int(5) and Float(5.0) — equal under Compare — key
		// identically. The upper bound is exclusive: 2^63 itself is not
		// representable as int64.
		if f == math.Trunc(f) && f >= math.MinInt64 && f < math.MaxInt64 {
			return appendIntKey(dst, int64(f))
		}
		if math.IsNaN(f) {
			f = math.NaN() // canonicalise NaN payloads
		}
		dst = append(dst, keyTagFloat)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
	}
}

func appendIntKey(dst []byte, i int64) []byte {
	dst = append(dst, keyTagInt)
	return binary.BigEndian.AppendUint64(dst, uint64(i))
}

// appendRowKey appends the concatenated key encodings of every value in r.
// Self-delimiting fields make the concatenation injective over rows of
// equal arity.
func appendRowKey(dst []byte, r Row) []byte {
	for _, v := range r {
		dst = appendValueKey(dst, v)
	}
	return dst
}

// rowKey builds a hashable identity for a row (used by DISTINCT, GROUP BY).
// Hot paths should prefer appendRowKey with a reused scratch buffer.
func rowKey(r Row) string {
	return string(appendRowKey(nil, r))
}
