package sqldb

import (
	"math"
	"strings"
	"sync"
)

// ScalarFunc is the implementation of a SQL scalar function. Args arrive
// already evaluated; implementations must be pure with respect to their
// arguments (the planner may cache or reorder calls).
type ScalarFunc func(args []Value) (Value, error)

// FuncRegistry maps function names to implementations. It is safe for
// concurrent use. The TAG layer registers LM UDFs (LLM_FILTER, LLM_SCORE,
// LLM_MAP) here, which is how semantic predicates run inside exec().
type FuncRegistry struct {
	mu      sync.RWMutex
	scalars map[string]ScalarFunc
}

// NewFuncRegistry returns a registry preloaded with the built-in functions.
func NewFuncRegistry() *FuncRegistry {
	r := &FuncRegistry{scalars: make(map[string]ScalarFunc)}
	registerBuiltins(r)
	return r
}

// Register installs (or replaces) a scalar function under the given name.
// Names are case-insensitive.
func (r *FuncRegistry) Register(name string, fn ScalarFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.scalars[strings.ToUpper(name)] = fn
}

// Lookup returns the named function, or nil if unregistered.
func (r *FuncRegistry) Lookup(name string) ScalarFunc {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.scalars[strings.ToUpper(name)]
}

// Names returns the registered function names (unsorted).
func (r *FuncRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.scalars))
	for n := range r.scalars {
		out = append(out, n)
	}
	return out
}

// evalFunc dispatches a (non-aggregate) function call.
func evalFunc(fc *FuncCall, env *evalEnv) (Value, error) {
	if isAggregateName(fc.Name) {
		return Null, errf(ErrMisuse, "sql: misuse of aggregate function %s()", fc.Name)
	}
	var fn ScalarFunc
	if env.db != nil {
		fn = env.db.funcs.Lookup(fc.Name)
	}
	if fn == nil {
		return Null, errf(ErrNoFunction, "sql: no such function: %s", fc.Name)
	}
	args := make([]Value, len(fc.Args))
	for i, a := range fc.Args {
		v, err := evalExpr(a, env)
		if err != nil {
			return Null, err
		}
		args[i] = v
	}
	return fn(args)
}

// argCheck returns an error when the argument count is outside [min,max]
// (max < 0 means unbounded).
func argCheck(name string, args []Value, min, max int) error {
	if len(args) < min || (max >= 0 && len(args) > max) {
		return errf(ErrMisuse, "sql: wrong number of arguments to function %s()", name)
	}
	return nil
}

func registerBuiltins(r *FuncRegistry) {
	r.Register("UPPER", func(args []Value) (Value, error) {
		if err := argCheck("UPPER", args, 1, 1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Text(strings.ToUpper(args[0].AsText())), nil
	})
	r.Register("LOWER", func(args []Value) (Value, error) {
		if err := argCheck("LOWER", args, 1, 1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Text(strings.ToLower(args[0].AsText())), nil
	})
	r.Register("LENGTH", func(args []Value) (Value, error) {
		if err := argCheck("LENGTH", args, 1, 1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Int(int64(len([]rune(args[0].AsText())))), nil
	})
	r.Register("SUBSTR", func(args []Value) (Value, error) {
		if err := argCheck("SUBSTR", args, 2, 3); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		runes := []rune(args[0].AsText())
		start := int(args[1].AsInt())
		// SQL SUBSTR is 1-based; negative counts from the end.
		if start > 0 {
			start--
		} else if start < 0 {
			start = len(runes) + start
			if start < 0 {
				start = 0
			}
		}
		if start >= len(runes) {
			return Text(""), nil
		}
		end := len(runes)
		if len(args) == 3 {
			n := int(args[2].AsInt())
			if n < 0 {
				n = 0
			}
			if start+n < end {
				end = start + n
			}
		}
		return Text(string(runes[start:end])), nil
	})
	r.Register("TRIM", func(args []Value) (Value, error) {
		if err := argCheck("TRIM", args, 1, 2); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		cut := " \t\r\n"
		if len(args) == 2 {
			cut = args[1].AsText()
		}
		return Text(strings.Trim(args[0].AsText(), cut)), nil
	})
	r.Register("REPLACE", func(args []Value) (Value, error) {
		if err := argCheck("REPLACE", args, 3, 3); err != nil {
			return Null, err
		}
		if args[0].IsNull() || args[1].IsNull() || args[2].IsNull() {
			return Null, nil
		}
		return Text(strings.ReplaceAll(args[0].AsText(), args[1].AsText(), args[2].AsText())), nil
	})
	r.Register("INSTR", func(args []Value) (Value, error) {
		if err := argCheck("INSTR", args, 2, 2); err != nil {
			return Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null, nil
		}
		return Int(int64(strings.Index(args[0].AsText(), args[1].AsText()) + 1)), nil
	})
	r.Register("ABS", func(args []Value) (Value, error) {
		if err := argCheck("ABS", args, 1, 1); err != nil {
			return Null, err
		}
		v := args[0]
		if v.IsNull() {
			return Null, nil
		}
		if v.Kind() == KindInt {
			n := v.AsInt()
			if n < 0 {
				n = -n
			}
			return Int(n), nil
		}
		return Float(math.Abs(v.AsFloat())), nil
	})
	r.Register("ROUND", func(args []Value) (Value, error) {
		if err := argCheck("ROUND", args, 1, 2); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		digits := 0
		if len(args) == 2 {
			digits = int(args[1].AsInt())
		}
		scale := math.Pow10(digits)
		return Float(math.Round(args[0].AsFloat()*scale) / scale), nil
	})
	r.Register("COALESCE", func(args []Value) (Value, error) {
		if err := argCheck("COALESCE", args, 1, -1); err != nil {
			return Null, err
		}
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null, nil
	})
	r.Register("IFNULL", func(args []Value) (Value, error) {
		if err := argCheck("IFNULL", args, 2, 2); err != nil {
			return Null, err
		}
		if !args[0].IsNull() {
			return args[0], nil
		}
		return args[1], nil
	})
	r.Register("NULLIF", func(args []Value) (Value, error) {
		if err := argCheck("NULLIF", args, 2, 2); err != nil {
			return Null, err
		}
		if !args[0].IsNull() && !args[1].IsNull() && args[0].Compare(args[1]) == 0 {
			return Null, nil
		}
		return args[0], nil
	})
	r.Register("TYPEOF", func(args []Value) (Value, error) {
		if err := argCheck("TYPEOF", args, 1, 1); err != nil {
			return Null, err
		}
		return Text(strings.ToLower(args[0].Kind().String())), nil
	})
	r.Register("SQRT", func(args []Value) (Value, error) {
		if err := argCheck("SQRT", args, 1, 1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		f := args[0].AsFloat()
		if f < 0 {
			return Null, nil
		}
		return Float(math.Sqrt(f)), nil
	})
	r.Register("POW", func(args []Value) (Value, error) {
		if err := argCheck("POW", args, 2, 2); err != nil {
			return Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null, nil
		}
		return Float(math.Pow(args[0].AsFloat(), args[1].AsFloat())), nil
	})
	// STRFTIME over ISO 'YYYY-MM-DD[ HH:MM:SS]' strings: supports the %Y /
	// %m / %d specifiers the benchmark schemas need without a time package
	// dependency on column storage.
	r.Register("STRFTIME", func(args []Value) (Value, error) {
		if err := argCheck("STRFTIME", args, 2, 2); err != nil {
			return Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return Null, nil
		}
		format, date := args[0].AsText(), args[1].AsText()
		if len(date) < 10 {
			return Null, nil
		}
		out := format
		out = strings.ReplaceAll(out, "%Y", date[0:4])
		out = strings.ReplaceAll(out, "%m", date[5:7])
		out = strings.ReplaceAll(out, "%d", date[8:10])
		return Text(out), nil
	})
}
