package sqldb

import "fmt"

// This file defines the engine's typed error API. Every error the engine
// returns is (or wraps) an *Error carrying a stable machine-readable code,
// so callers branch on error kind with errors.As/errors.Is instead of
// matching message text:
//
//	var se *sqldb.Error
//	if errors.As(err, &se) && se.Code == sqldb.ErrNoTable { ... }
//	if errors.Is(err, &sqldb.Error{Code: sqldb.ErrParse}) { ... }
//
// Message text is presentation, not contract; only codes are stable.

// ErrorCode classifies an engine error. The string values are stable and
// suitable for logs and metrics labels.
type ErrorCode string

const (
	// ErrUnknown is the zero code: an error that has not been classified.
	ErrUnknown ErrorCode = "unknown"
	// ErrParse marks syntax errors (the wrapped cause is a *ParseError
	// carrying the source position).
	ErrParse ErrorCode = "parse"
	// ErrNoTable marks references to tables that do not exist.
	ErrNoTable ErrorCode = "no_table"
	// ErrNoColumn marks references to columns that do not exist.
	ErrNoColumn ErrorCode = "no_column"
	// ErrAmbiguous marks column references that match more than one input
	// column.
	ErrAmbiguous ErrorCode = "ambiguous_column"
	// ErrNoFunction marks calls to unregistered functions.
	ErrNoFunction ErrorCode = "no_function"
	// ErrType marks type errors during evaluation (bad operands, casts).
	ErrType ErrorCode = "type"
	// ErrConstraint marks NOT NULL and UNIQUE constraint violations.
	ErrConstraint ErrorCode = "constraint"
	// ErrSchema marks DDL conflicts (table already exists, duplicate
	// column, dropping a missing table).
	ErrSchema ErrorCode = "schema"
	// ErrMisuse marks structurally invalid statements that parse: aggregate
	// misuse, '*' outside a select list, wrong argument counts, executing a
	// non-SELECT where a SELECT is required, arity mismatches on INSERT.
	ErrMisuse ErrorCode = "misuse"
	// ErrParams marks executions with fewer bound parameters than the
	// statement references.
	ErrParams ErrorCode = "params"
	// ErrCanceled marks queries stopped by context cancellation or
	// deadline; the wrapped cause is the context's error, so
	// errors.Is(err, context.Canceled) also matches.
	ErrCanceled ErrorCode = "canceled"
	// ErrCursor marks misuse of a Rows cursor (Scan without Next, scanning
	// into the wrong number or type of destinations).
	ErrCursor ErrorCode = "cursor"
	// ErrInternal marks invariant violations inside the engine.
	ErrInternal ErrorCode = "internal"
	// ErrIO marks durability-layer failures: WAL append, fsync, checkpoint,
	// or recovery I/O errors, including a log poisoned by an earlier failed
	// write. The in-memory state stays consistent and queryable; only
	// persistence is compromised. The wrapped cause is the underlying
	// filesystem error.
	ErrIO ErrorCode = "io"
)

// sqlStates maps every classified ErrorCode to the SQLSTATE the wire
// protocol reports for it (ErrorResponse code field). The values are part
// of the server's stable contract — clients branch on them — and every
// code maps to a distinct state, pinned by TestSQLStateMappingComplete so
// a new ErrorCode cannot ship unmapped. ErrUnknown is deliberately absent:
// unclassified errors fall back to the generic internal class ("XX000")
// via SQLState's default, exactly like non-engine errors.
var sqlStates = map[ErrorCode]string{
	ErrParse:      "42601", // syntax_error
	ErrNoTable:    "42P01", // undefined_table
	ErrNoColumn:   "42703", // undefined_column
	ErrAmbiguous:  "42702", // ambiguous_column
	ErrNoFunction: "42883", // undefined_function
	ErrType:       "42804", // datatype_mismatch
	ErrConstraint: "23000", // integrity_constraint_violation
	ErrSchema:     "42P07", // duplicate_table
	ErrMisuse:     "42000", // syntax_error_or_access_rule_violation
	ErrParams:     "08P01", // protocol_violation (parameter count mismatch)
	ErrCanceled:   "57014", // query_canceled
	ErrCursor:     "24000", // invalid_cursor_state
	ErrInternal:   "XX000", // internal_error
	ErrIO:         "58030", // io_error
}

// SQLState returns the five-character SQLSTATE the wire protocol reports
// for this code. Unmapped codes (including ErrUnknown) report the generic
// internal class "XX000".
func (c ErrorCode) SQLState() string {
	if s, ok := sqlStates[c]; ok {
		return s
	}
	return "XX000"
}

// SQLStateFor classifies any error into a SQLSTATE: the code's mapped
// state for engine errors, "XX000" for everything else.
func SQLStateFor(err error) string { return CodeOf(err).SQLState() }

// Error is the engine's error type: a stable code plus a human-readable
// message, optionally wrapping a cause (a *ParseError, a context error).
type Error struct {
	Code ErrorCode
	Msg  string
	// Cause is the underlying error, if any; it is reachable through
	// errors.Unwrap / errors.Is / errors.As.
	Cause error
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Msg }

// Unwrap exposes the cause to the errors package.
func (e *Error) Unwrap() error { return e.Cause }

// Is reports whether target is an *Error with the same code, which makes
// code-only probes work: errors.Is(err, &Error{Code: ErrNoTable}).
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	if !ok {
		return false
	}
	return t.Code == e.Code && (t.Msg == "" || t.Msg == e.Msg)
}

// errf builds an *Error with a formatted message.
func errf(code ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// wrapErr classifies an arbitrary error under code, preserving it as the
// cause. Errors that are already *Error pass through untouched so the most
// specific code wins.
func wrapErr(code ErrorCode, err error) error {
	if err == nil {
		return nil
	}
	if _, ok := err.(*Error); ok {
		return err
	}
	return &Error{Code: code, Msg: err.Error(), Cause: err}
}

// CodeOf extracts the ErrorCode from any error produced by the engine,
// unwrapping as needed. Non-engine errors report ErrUnknown.
func CodeOf(err error) ErrorCode {
	for err != nil {
		if e, ok := err.(*Error); ok {
			return e.Code
		}
		if e, ok := err.(*ParseError); ok {
			_ = e
			return ErrParse
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return ErrUnknown
		}
		err = u.Unwrap()
	}
	return ErrUnknown
}
