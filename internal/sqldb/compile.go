package sqldb

import (
	"strings"
)

// This file implements the engine's expression compiler. At plan time every
// expression that will run on the per-row path is compiled into a closure:
// column references are resolved to (environment, ordinal) pairs once,
// scalar functions are looked up once, parameters and literals are bound to
// their values, and operator dispatch happens at compile time instead of a
// type switch per row. The interpreted evaluator in expr.go remains the
// engine for DML statements and constant folding, and the compiler is kept
// semantically identical to it (property tests cross-check the two).

// compiledExpr evaluates an expression against the environments captured at
// compile time. The owning operator mutates its environment's row between
// calls; the closure reads through the captured pointer.
type compiledExpr func() (Value, error)

// aggCtx carries per-group state for the post-aggregation phase of a
// SELECT: the canonical strings of the GROUP BY expressions, the collected
// aggregate calls, and — swapped in per group — the group's key values and
// aggregate results. Compiled expressions capture the context and read the
// slices by ordinal; there is no per-row string or map lookup.
type aggCtx struct {
	groupStrs []string
	aggs      []*FuncCall
	groupKeys []Value // current group's GROUP BY key values
	aggVals   []Value // current group's aggregate results
}

// groupIndex returns the ordinal of the GROUP BY expression whose canonical
// string equals e's, or -1.
func (a *aggCtx) groupIndex(e Expr) int {
	if len(a.groupStrs) == 0 {
		return -1
	}
	s := e.String()
	for i, g := range a.groupStrs {
		if g == s {
			return i
		}
	}
	return -1
}

// aggIndex returns the ordinal of fc among the collected aggregates
// (pointer identity, as collectAggregates gathers the very nodes that
// appear in the projection/HAVING/ORDER BY trees), or -1.
func (a *aggCtx) aggIndex(fc *FuncCall) int {
	for i, c := range a.aggs {
		if c == fc {
			return i
		}
	}
	return -1
}

// compileExpr compiles e against env's scope chain. Resolution errors (no
// such column, ambiguity, unknown functions, missing parameters) surface at
// compile time with the same messages the interpreter produces at run time.
func compileExpr(e Expr, env *evalEnv) (compiledExpr, error) {
	// Under aggregation, grouping expressions resolve to their group key and
	// aggregate calls to their accumulated result.
	if a := env.agg; a != nil {
		if i := a.groupIndex(e); i >= 0 {
			return func() (Value, error) { return a.groupKeys[i], nil }, nil
		}
		if fc, ok := e.(*FuncCall); ok && isAggregateName(fc.Name) {
			if i := a.aggIndex(fc); i >= 0 {
				return func() (Value, error) { return a.aggVals[i], nil }, nil
			}
			return nil, errf(ErrMisuse, "sql: misuse of aggregate function %s()", fc.Name)
		}
	}
	switch t := e.(type) {
	case *Literal:
		v := t.Val
		return func() (Value, error) { return v, nil }, nil
	case *Param:
		if t.Index >= len(env.params) {
			return nil, errf(ErrParams, "sql: statement expects at least %d parameters, got %d", t.Index+1, len(env.params))
		}
		v := env.params[t.Index]
		return func() (Value, error) { return v, nil }, nil
	case *ColumnRef:
		return compileColumnRef(t, env)
	case *BinaryOp:
		return compileBinary(t, env)
	case *UnaryOp:
		sub, err := compileExpr(t.Expr, env)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case "-":
			return func() (Value, error) {
				v, err := sub()
				if err != nil || v.IsNull() {
					return Null, err
				}
				if v.Kind() == KindInt {
					return Int(-v.AsInt()), nil
				}
				return Float(-v.AsFloat()), nil
			}, nil
		case "NOT":
			return func() (Value, error) {
				v, err := sub()
				if err != nil || v.IsNull() {
					return Null, err
				}
				return Bool(!v.AsBool()), nil
			}, nil
		default:
			return nil, errf(ErrMisuse, "sql: unknown unary operator %q", t.Op)
		}
	case *IsNull:
		sub, err := compileExpr(t.Expr, env)
		if err != nil {
			return nil, err
		}
		not := t.Not
		return func() (Value, error) {
			v, err := sub()
			if err != nil {
				return Null, err
			}
			return Bool(v.IsNull() != not), nil
		}, nil
	case *InList:
		return compileIn(t, env)
	case *Between:
		ce, err := compileExpr(t.Expr, env)
		if err != nil {
			return nil, err
		}
		clo, err := compileExpr(t.Lo, env)
		if err != nil {
			return nil, err
		}
		chi, err := compileExpr(t.Hi, env)
		if err != nil {
			return nil, err
		}
		not := t.Not
		return func() (Value, error) {
			v, err := ce()
			if err != nil {
				return Null, err
			}
			lo, err := clo()
			if err != nil {
				return Null, err
			}
			hi, err := chi()
			if err != nil {
				return Null, err
			}
			if v.IsNull() || lo.IsNull() || hi.IsNull() {
				return Null, nil
			}
			in := v.Compare(lo) >= 0 && v.Compare(hi) <= 0
			return Bool(in != not), nil
		}, nil
	case *FuncCall:
		return compileFunc(t, env)
	case *CaseExpr:
		return compileCase(t, env)
	case *CastExpr:
		sub, err := compileExpr(t.Expr, env)
		if err != nil {
			return nil, err
		}
		typ := t.Type
		return func() (Value, error) {
			v, err := sub()
			if err != nil {
				return Null, err
			}
			return castValue(v, typ), nil
		}, nil
	case *Subquery:
		// A scalar subquery keeps only its first row, so the subplan is
		// pulled once and never materialised.
		sub, err := compileSubplan(t.Select, env)
		if err != nil {
			return nil, err
		}
		return func() (Value, error) {
			root, err := sub()
			if err != nil {
				return Null, err
			}
			r, ok, err := root.next()
			if err != nil {
				return Null, err
			}
			if !ok || len(r) == 0 {
				return Null, nil
			}
			return r[0], nil
		}, nil
	case *ExistsExpr:
		// EXISTS terminates on the first row the subplan produces instead
		// of materialising the whole subquery result.
		not := t.Not
		sub, err := compileSubplan(t.Select, env)
		if err != nil {
			return nil, err
		}
		return func() (Value, error) {
			root, err := sub()
			if err != nil {
				return Null, err
			}
			_, ok, err := root.next()
			if err != nil {
				return Null, err
			}
			return Bool(ok != not), nil
		}, nil
	case *Star:
		return nil, errf(ErrMisuse, "sql: '*' is not valid in this context")
	default:
		return nil, errf(ErrMisuse, "sql: cannot evaluate %T", e)
	}
}

// subplanSource yields the operator tree for one evaluation of a nested
// SELECT; successive calls may return the same (reset) tree.
type subplanSource func() (operator, error)

// compileSubplan prepares a nested SELECT for repeated evaluation inside
// a compiled expression — the correlated-subplan cache. When the subplan
// is cacheable it is built exactly once, at compile time (so once per
// statement execution, however many outer rows probe it); each evaluation
// resets and re-pulls the same operator tree, and correlated references
// read the current outer row through the environments captured at
// compile time, so only the outer-row "parameters" change per probe.
// Re-planning per outer row previously dominated correlated EXISTS cost.
//
// Derived tables ((SELECT ...) in FROM) are the one plan element that
// materialises during planning and could capture correlated outer
// values, so their presence forces the per-evaluation rebuild path.
// Base-table joins are safe: their build sides drain table heaps, which
// cannot change mid-statement, and their key/residual closures evaluate
// per probe.
func compileSubplan(sel *SelectStmt, env *evalEnv) (subplanSource, error) {
	qc := env.qc
	var rec *execRecorder
	if qc != nil {
		rec = qc.rec // non-nil only under EXPLAIN ANALYZE
	}
	if subplanCacheable(sel) {
		root, _, err := buildSelectPlan(sel, env.db, env.params, env, false, env.qc)
		if err != nil {
			return nil, err
		}
		var sp *subplanRec
		if rec != nil {
			root = instrument(root, rec)
			sp = rec.subplanFor(sel)
			sp.replaceRoot(rec, root)
		}
		first := true
		return func() (operator, error) {
			if sp != nil {
				sp.probes++
			}
			if first {
				first = false
				if qc != nil {
					qc.subplanMisses++
				}
				if sp != nil {
					sp.misses++
				}
				return root, nil
			}
			if qc != nil {
				qc.subplanHits++
			}
			if sp != nil {
				sp.hits++
			}
			root.reset()
			return root, nil
		}, nil
	}
	var sp *subplanRec
	if rec != nil {
		sp = rec.subplanFor(sel)
	}
	return func() (operator, error) {
		if qc != nil {
			qc.subplanMisses++
		}
		root, _, err := buildSelectPlan(sel, env.db, env.params, env, false, env.qc)
		if err != nil {
			return nil, err
		}
		if sp != nil {
			sp.probes++
			sp.misses++
			root = instrument(root, rec)
			sp.replaceRoot(rec, root)
		}
		return root, nil
	}, nil
}

// subplanCacheable reports whether a subquery's plan survives re-use via
// reset(): true unless its FROM contains a derived table (see
// compileSubplan).
func subplanCacheable(s *SelectStmt) bool {
	if s.From == nil {
		return true
	}
	if s.From.Sub != nil {
		return false
	}
	for _, j := range s.Joins {
		if j.Table.Sub != nil {
			return false
		}
	}
	return true
}

// compileColumnRef binds a column reference to its owning environment and
// ordinal. References stamped with a pre-resolved index by the planner
// (star expansion) skip name resolution entirely when the stamp matches
// the compile-time schema.
func compileColumnRef(t *ColumnRef, env *evalEnv) (compiledExpr, error) {
	if i := t.index; i >= 0 && i < len(env.cols) &&
		strings.EqualFold(env.cols[i].name, t.Column) &&
		(t.Table == "" || strings.EqualFold(env.cols[i].qual, t.Table)) {
		return columnReader(env, i, t), nil
	}
	i, owner, err := env.resolve(t)
	if err != nil {
		return nil, err
	}
	return columnReader(owner, i, t), nil
}

func columnReader(owner *evalEnv, i int, t *ColumnRef) compiledExpr {
	return func() (Value, error) {
		if i >= len(owner.row) {
			return Null, errf(ErrInternal, "sql: internal: column %s out of range", t)
		}
		return owner.row[i], nil
	}
}

func compileBinary(b *BinaryOp, env *evalEnv) (compiledExpr, error) {
	l, err := compileExpr(b.Left, env)
	if err != nil {
		return nil, err
	}
	r, err := compileExpr(b.Right, env)
	if err != nil {
		return nil, err
	}
	switch b.Op {
	case "AND":
		return func() (Value, error) {
			lv, err := l()
			if err != nil {
				return Null, err
			}
			if !lv.IsNull() && !lv.AsBool() {
				return Bool(false), nil
			}
			rv, err := r()
			if err != nil {
				return Null, err
			}
			if !rv.IsNull() && !rv.AsBool() {
				return Bool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			return Bool(true), nil
		}, nil
	case "OR":
		return func() (Value, error) {
			lv, err := l()
			if err != nil {
				return Null, err
			}
			if !lv.IsNull() && lv.AsBool() {
				return Bool(true), nil
			}
			rv, err := r()
			if err != nil {
				return Null, err
			}
			if !rv.IsNull() && rv.AsBool() {
				return Bool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			return Bool(false), nil
		}, nil
	case "=", "!=", "<", "<=", ">", ">=":
		var test func(int) bool
		switch b.Op {
		case "=":
			test = func(c int) bool { return c == 0 }
		case "!=":
			test = func(c int) bool { return c != 0 }
		case "<":
			test = func(c int) bool { return c < 0 }
		case "<=":
			test = func(c int) bool { return c <= 0 }
		case ">":
			test = func(c int) bool { return c > 0 }
		default:
			test = func(c int) bool { return c >= 0 }
		}
		return func() (Value, error) {
			lv, err := l()
			if err != nil {
				return Null, err
			}
			rv, err := r()
			if err != nil {
				return Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			return Bool(test(lv.Compare(rv))), nil
		}, nil
	case "LIKE":
		// A literal pattern (the common shape) is lowered once at plan time.
		if lit, ok := b.Right.(*Literal); ok && lit.Val.Kind() == KindText {
			pattern := strings.ToLower(lit.Val.AsText())
			return func() (Value, error) {
				lv, err := l()
				if err != nil || lv.IsNull() {
					return Null, err
				}
				return Bool(likeRec(pattern, strings.ToLower(lv.AsText()))), nil
			}, nil
		}
		return func() (Value, error) {
			lv, err := l()
			if err != nil {
				return Null, err
			}
			rv, err := r()
			if err != nil {
				return Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			return Bool(likeMatch(rv.AsText(), lv.AsText())), nil
		}, nil
	case "||":
		return func() (Value, error) {
			lv, err := l()
			if err != nil {
				return Null, err
			}
			rv, err := r()
			if err != nil {
				return Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return Null, nil
			}
			return Text(lv.AsText() + rv.AsText()), nil
		}, nil
	case "+", "-", "*", "/", "%":
		op := b.Op
		return func() (Value, error) {
			lv, err := l()
			if err != nil {
				return Null, err
			}
			rv, err := r()
			if err != nil {
				return Null, err
			}
			return evalArith(op, lv, rv)
		}, nil
	default:
		return nil, errf(ErrMisuse, "sql: unknown operator %q", b.Op)
	}
}

func compileIn(in *InList, env *evalEnv) (compiledExpr, error) {
	needle, err := compileExpr(in.Expr, env)
	if err != nil {
		return nil, err
	}
	not := in.Not
	if in.Sub != nil {
		sub, err := compileSubplan(in.Sub, env)
		if err != nil {
			return nil, err
		}
		return func() (Value, error) {
			nv, err := needle()
			if err != nil || nv.IsNull() {
				return Null, err
			}
			root, err := sub()
			if err != nil {
				return Null, err
			}
			// Stream the subplan: a match short-circuits; NULLs only
			// matter when no match is found.
			sawNull := false
			for {
				r, ok, err := root.next()
				if err != nil {
					return Null, err
				}
				if !ok {
					break
				}
				if len(r) == 0 {
					continue
				}
				if r[0].IsNull() {
					sawNull = true
					continue
				}
				if nv.Compare(r[0]) == 0 {
					return Bool(!not), nil
				}
			}
			if sawNull {
				return Null, nil
			}
			return Bool(not), nil
		}, nil
	}
	list := make([]compiledExpr, len(in.List))
	for i, e := range in.List {
		c, err := compileExpr(e, env)
		if err != nil {
			return nil, err
		}
		list[i] = c
	}
	return func() (Value, error) {
		nv, err := needle()
		if err != nil || nv.IsNull() {
			return Null, err
		}
		sawNull := false
		for _, c := range list {
			hv, err := c()
			if err != nil {
				return Null, err
			}
			if hv.IsNull() {
				sawNull = true
				continue
			}
			if nv.Compare(hv) == 0 {
				return Bool(!not), nil
			}
		}
		if sawNull {
			return Null, nil
		}
		return Bool(not), nil
	}, nil
}

func compileFunc(fc *FuncCall, env *evalEnv) (compiledExpr, error) {
	if isAggregateName(fc.Name) {
		return nil, errf(ErrMisuse, "sql: misuse of aggregate function %s()", fc.Name)
	}
	var fn ScalarFunc
	if env.db != nil {
		fn = env.db.funcs.Lookup(fc.Name)
	}
	if fn == nil {
		return nil, errf(ErrNoFunction, "sql: no such function: %s", fc.Name)
	}
	cargs := make([]compiledExpr, len(fc.Args))
	for i, a := range fc.Args {
		c, err := compileExpr(a, env)
		if err != nil {
			return nil, err
		}
		cargs[i] = c
	}
	// Expression trees evaluate strictly sequentially within one execution,
	// so a single argument buffer per call site is safe to reuse.
	args := make([]Value, len(cargs))
	return func() (Value, error) {
		for i, c := range cargs {
			v, err := c()
			if err != nil {
				return Null, err
			}
			args[i] = v
		}
		return fn(args)
	}, nil
}

func compileCase(c *CaseExpr, env *evalEnv) (compiledExpr, error) {
	type arm struct {
		when compiledExpr
		then compiledExpr
	}
	arms := make([]arm, len(c.Whens))
	for i, w := range c.Whens {
		cw, err := compileExpr(w.When, env)
		if err != nil {
			return nil, err
		}
		ct, err := compileExpr(w.Then, env)
		if err != nil {
			return nil, err
		}
		arms[i] = arm{when: cw, then: ct}
	}
	var celse compiledExpr
	if c.Else != nil {
		var err error
		celse, err = compileExpr(c.Else, env)
		if err != nil {
			return nil, err
		}
	}
	if c.Operand != nil {
		cop, err := compileExpr(c.Operand, env)
		if err != nil {
			return nil, err
		}
		return func() (Value, error) {
			op, err := cop()
			if err != nil {
				return Null, err
			}
			for _, a := range arms {
				wv, err := a.when()
				if err != nil {
					return Null, err
				}
				if !op.IsNull() && !wv.IsNull() && op.Compare(wv) == 0 {
					return a.then()
				}
			}
			if celse != nil {
				return celse()
			}
			return Null, nil
		}, nil
	}
	return func() (Value, error) {
		for _, a := range arms {
			wv, err := a.when()
			if err != nil {
				return Null, err
			}
			if !wv.IsNull() && wv.AsBool() {
				return a.then()
			}
		}
		if celse != nil {
			return celse()
		}
		return Null, nil
	}, nil
}

// compileOrderKey compiles one ORDER BY key against the output environment
// (whose outer scope is the input-row environment). Integer literals are
// 1-based output ordinals, as in SQLite.
func compileOrderKey(e Expr, oenv *evalEnv, outWidth int) (compiledExpr, error) {
	if lit, ok := e.(*Literal); ok && lit.Val.Kind() == KindInt {
		i := int(lit.Val.AsInt())
		if i < 1 || i > outWidth {
			return nil, errf(ErrMisuse, "sql: ORDER BY ordinal %d out of range", i)
		}
		return func() (Value, error) { return oenv.row[i-1], nil }, nil
	}
	return compileExpr(e, oenv)
}
