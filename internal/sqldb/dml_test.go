package sqldb

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// Tests for DML snapshot semantics (the Halloween problem): an UPDATE or
// DELETE whose WHERE/SET contains a subquery over the mutating table must
// evaluate every row against the pre-statement state — not against stale
// index keys, a half-mutated heap, or an ordered view built mid-loop.
// The reference executor for these tests is SELECT over a pristine clone:
// evaluating the same WHERE/SET expressions with a read-only statement on
// an untouched copy is exactly snapshot semantics.

// dmlTestDBs builds the same table into an indexed and an unindexed
// database so both the stale-index and half-mutated-heap variants of the
// hazard are exercised.
func dmlTestDBs() (indexed, plain *Database) {
	indexed = NewDatabase()
	plain = NewDatabase()
	indexed.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER)")
	indexed.MustExec("CREATE INDEX idx_t_k ON t (k)")
	plain.MustExec("CREATE TABLE t (id INTEGER, k INTEGER)")
	return indexed, plain
}

// TestUpdateSelfSubquerySeesSnapshot: the WHERE subquery aggregates the
// very column the statement mutates. Under snapshot semantics the
// predicate is the same for every row (SUM over the pre-statement state);
// a one-pass executor lets earlier updates leak into later rows'
// evaluations and stops updating after the first row.
func TestUpdateSelfSubquerySeesSnapshot(t *testing.T) {
	indexed, plain := dmlTestDBs()
	for name, db := range map[string]*Database{"indexed": indexed, "plain": plain} {
		db.MustExec("INSERT INTO t VALUES (1, 2), (2, 2), (3, 2)")
		n, err := db.Exec("UPDATE t SET k = k + 10 WHERE (SELECT SUM(k) FROM t WHERE k = 2) = 6")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != 3 {
			t.Errorf("%s: updated %d rows, want 3 (predicate is row-independent under snapshot semantics)", name, n)
		}
		got := queryStrings(t, db, "SELECT id, k FROM t ORDER BY id")
		want := [][]string{{"1", "12"}, {"2", "12"}, {"3", "12"}}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: rows = %v, want %v", name, got, want)
		}
	}
}

// TestUpdateWithInSelfSubquery is the issue's regression shape:
// UPDATE t SET ... WHERE id IN (SELECT ... FROM t ...). Row id=12 is only
// a member of the IN set if some row's k equals 12 — which only happens
// AFTER row id=2 is updated. Snapshot semantics must not see it.
func TestUpdateWithInSelfSubquery(t *testing.T) {
	indexed, plain := dmlTestDBs()
	for name, db := range map[string]*Database{"indexed": indexed, "plain": plain} {
		db.MustExec("INSERT INTO t VALUES (2, 2), (12, 2)")
		n, err := db.Exec("UPDATE t SET k = k + 10 WHERE id IN (SELECT k FROM t WHERE k = 2)")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != 1 {
			t.Errorf("%s: updated %d rows, want 1", name, n)
		}
		got := queryStrings(t, db, "SELECT id, k FROM t ORDER BY id")
		want := [][]string{{"2", "12"}, {"12", "2"}}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: rows = %v, want %v (id=12 must not see the in-flight k=12)", name, got, want)
		}
	}
}

// TestDeleteSelfSubquerySeesSnapshot: deleting rows above the average of
// the same table. The average must be the pre-statement one for every
// row; a compact-in-place executor re-averages a half-compacted heap and
// deletes rows the pristine average would keep.
func TestDeleteSelfSubquerySeesSnapshot(t *testing.T) {
	indexed, plain := dmlTestDBs()
	for name, db := range map[string]*Database{"indexed": indexed, "plain": plain} {
		db.MustExec("INSERT INTO t VALUES (1, 9), (2, 1), (3, 2)")
		n, err := db.Exec("DELETE FROM t WHERE k > (SELECT AVG(k) FROM t)") // avg = 4
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != 1 {
			t.Errorf("%s: deleted %d rows, want 1", name, n)
		}
		got := queryStrings(t, db, "SELECT id, k FROM t ORDER BY id")
		want := [][]string{{"2", "1"}, {"3", "2"}}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: rows = %v, want %v", name, got, want)
		}
	}
}

// cloneTableT copies table t of src into a fresh unindexed database — the
// pristine snapshot the reference executor evaluates against.
func cloneTableT(t *testing.T, src *Database) *Database {
	t.Helper()
	ref := NewDatabase()
	ref.MustExec("CREATE TABLE t (id INTEGER, k INTEGER)")
	st, err := src.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	arr, n := st.loadSlots()
	for id := 0; id < n; id++ {
		r := latestRow(arr[id].head.Load())
		if r == nil {
			continue
		}
		ref.MustExec("INSERT INTO t VALUES (?, ?)", r[0], r[1])
	}
	return ref
}

// refUpdate computes the snapshot-semantics outcome of
// `UPDATE t SET k = <setExpr> WHERE <where>` by running a SELECT over the
// pristine clone, and returns the expected (id, k) rows in heap order.
func refUpdate(t *testing.T, ref *Database, where, setExpr string) [][]string {
	t.Helper()
	upd, err := ref.Query("SELECT id, " + setExpr + " FROM t WHERE " + where)
	if err != nil {
		t.Fatalf("reference SELECT for UPDATE: %v", err)
	}
	newK := make(map[int64]Value)
	for _, r := range upd.Rows {
		newK[r[0].AsInt()] = r[1]
	}
	all, err := ref.Query("SELECT id, k FROM t")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Row, len(all.Rows))
	for i, r := range all.Rows {
		row := r.Clone()
		if v, ok := newK[r[0].AsInt()]; ok {
			row[1] = coerce(v, KindInt)
		}
		out[i] = row
	}
	return rowsToStrings(out)
}

// refDelete computes the snapshot-semantics outcome of
// `DELETE FROM t WHERE <where>` the same way.
func refDelete(t *testing.T, ref *Database, where string) [][]string {
	t.Helper()
	del, err := ref.Query("SELECT id FROM t WHERE " + where)
	if err != nil {
		t.Fatalf("reference SELECT for DELETE: %v", err)
	}
	gone := make(map[int64]bool)
	for _, r := range del.Rows {
		gone[r[0].AsInt()] = true
	}
	all, err := ref.Query("SELECT id, k FROM t")
	if err != nil {
		t.Fatal(err)
	}
	var out []Row
	for _, r := range all.Rows {
		if !gone[r[0].AsInt()] {
			out = append(out, r)
		}
	}
	return rowsToStrings(out)
}

// TestDMLWithSubqueriesMatchesSnapshotReference is the interleaved
// property test: random inserts mix with self-referential UPDATEs and
// DELETEs whose subqueries take every interesting access path over the
// mutating table — equality-index probes, correlated probes
// (corrProbeScanOp), aggregates, and ordered/range subqueries that
// lazily build the ordered index view mid-statement. After every DML the
// indexed engine, the plain engine, and the SELECT-over-pristine-clone
// reference must agree exactly.
func TestDMLWithSubqueriesMatchesSnapshotReference(t *testing.T) {
	r := rand.New(rand.NewSource(117))
	indexed, plain := dmlTestDBs()
	nextID := 0

	updates := []func(*rand.Rand) (where, set string){
		func(r *rand.Rand) (string, string) {
			return fmt.Sprintf("k < (SELECT MAX(k) FROM t WHERE k < %d)", 10+r.Intn(40)), "k + 1"
		},
		func(r *rand.Rand) (string, string) {
			return fmt.Sprintf("id IN (SELECT k FROM t WHERE k = %d)", r.Intn(20)), "k + 10"
		},
		func(r *rand.Rand) (string, string) {
			// Correlated equality over the mutating table: corrProbeScanOp.
			return "EXISTS (SELECT 1 FROM t t2 WHERE t2.k = t.id)", "k - 1"
		},
		func(r *rand.Rand) (string, string) {
			// Ordered subquery: lazily builds the ordered view mid-DML.
			return fmt.Sprintf(
				"k >= (SELECT t2.k FROM t t2 WHERE t2.k IS NOT NULL ORDER BY t2.k DESC LIMIT 1) - %d",
				r.Intn(6)), "k + 2"
		},
		func(r *rand.Rand) (string, string) {
			// Correlated scalar subquery in SET.
			return fmt.Sprintf("id %% 5 = %d", r.Intn(5)),
				"(SELECT MIN(t2.k) FROM t t2 WHERE t2.k > t.k)"
		},
		func(r *rand.Rand) (string, string) {
			// Range subquery over the indexed column.
			return fmt.Sprintf("k IN (SELECT t2.k FROM t t2 WHERE t2.k BETWEEN %d AND %d)",
				r.Intn(15), 15+r.Intn(15)), "k + 3"
		},
	}
	deletes := []func(*rand.Rand) string{
		func(r *rand.Rand) string {
			return "k > (SELECT AVG(k) FROM t)"
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("id IN (SELECT t2.id FROM t t2 WHERE t2.k = %d) AND k < (SELECT MAX(k) FROM t)", r.Intn(20))
		},
		func(r *rand.Rand) string {
			return "EXISTS (SELECT 1 FROM t t2 WHERE t2.k = t.id AND t2.id != t.id)"
		},
	}

	compare := func(step int, sql string, want [][]string) {
		t.Helper()
		for name, db := range map[string]*Database{"indexed": indexed, "plain": plain} {
			got := queryStrings(t, db, "SELECT id, k FROM t")
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: %s engine disagrees with snapshot reference after %q:\ngot  %v\nwant %v",
					step, name, sql, got, want)
			}
		}
	}

	for step := 0; step < 300; step++ {
		switch op := r.Intn(10); {
		case op < 5 || nextID == 0: // insert (NULL k sometimes)
			var k any = r.Intn(40)
			if r.Intn(7) == 0 {
				k = nil
			}
			for _, db := range []*Database{indexed, plain} {
				db.MustExec("INSERT INTO t VALUES (?, ?)", nextID, k)
			}
			nextID++
		case op < 8: // self-referential UPDATE
			where, set := updates[r.Intn(len(updates))](r)
			sql := fmt.Sprintf("UPDATE t SET k = %s WHERE %s", set, where)
			ref := cloneTableT(t, indexed)
			want := refUpdate(t, ref, where, set)
			ni, erri := indexed.Exec(sql)
			np, errp := plain.Exec(sql)
			if erri != nil || errp != nil {
				t.Fatalf("step %d: %q: indexed err %v, plain err %v", step, sql, erri, errp)
			}
			if ni != np {
				t.Fatalf("step %d: %q affected %d (indexed) vs %d (plain)", step, sql, ni, np)
			}
			compare(step, sql, want)
		default: // self-referential DELETE
			where := deletes[r.Intn(len(deletes))](r)
			sql := "DELETE FROM t WHERE " + where
			ref := cloneTableT(t, indexed)
			want := refDelete(t, ref, where)
			ni, erri := indexed.Exec(sql)
			np, errp := plain.Exec(sql)
			if erri != nil || errp != nil {
				t.Fatalf("step %d: %q: indexed err %v, plain err %v", step, sql, erri, errp)
			}
			if ni != np {
				t.Fatalf("step %d: %q affected %d (indexed) vs %d (plain)", step, sql, ni, np)
			}
			compare(step, sql, want)
		}
	}
}

// TestDeleteCancellationMidLoopInvariant pins the documented execDelete
// early-exit behaviour for the in-place path: when the context is
// cancelled mid-compaction, the examined prefix keeps exactly its
// non-matching rows, the unexamined suffix is kept untouched — no
// duplicated and no lost rows — and the indexes are rebuilt to agree
// with the compacted heap.
func TestDeleteCancellationMidLoopInvariant(t *testing.T) {
	db := NewDatabase()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const total, cancelAt = 1000, 300
	db.Funcs().Register("CANCEL_AT", func(args []Value) (Value, error) {
		v := args[0].AsInt()
		if v == cancelAt {
			cancel()
		}
		return Bool(v%3 == 0), nil
	})
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
	rows := make([][]any, total)
	for i := range rows {
		rows[i] = []any{i, i}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}

	n, err := db.ExecContext(ctx, "DELETE FROM t WHERE CANCEL_AT(v)")
	if CodeOf(err) != ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}

	res, err := db.Query("SELECT id FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[int]bool, len(res.Rows))
	for _, r := range res.Rows {
		id := int(r[0].AsInt())
		if present[id] {
			t.Fatalf("row id=%d duplicated after cancellation", id)
		}
		present[id] = true
	}

	// Infer the cutoff: the first unexamined row is at or before the first
	// kept row the predicate would have deleted.
	cutoff := total
	for id := 0; id < total; id++ {
		if id%3 == 0 && present[id] {
			cutoff = id
			break
		}
	}
	if cutoff <= cancelAt || cutoff >= total {
		t.Fatalf("cutoff = %d: cancellation should strike between row %d and the end", cutoff, cancelAt)
	}
	// Exact set: examined prefix filtered, suffix intact.
	deleted := 0
	for id := 0; id < total; id++ {
		want := id >= cutoff || id%3 != 0
		if present[id] != want {
			t.Fatalf("row id=%d present=%v, want %v (cutoff %d)", id, present[id], want, cutoff)
		}
		if !want {
			deleted++
		}
	}
	if n != deleted {
		t.Errorf("Exec reported %d deleted rows, want %d", n, deleted)
	}
	// Indexes were rebuilt: point lookups agree with the heap.
	for id := 0; id < total; id++ {
		res, err := db.Query("SELECT v FROM t WHERE id = ?", id)
		if err != nil {
			t.Fatal(err)
		}
		wantRows := 0
		if present[id] {
			wantRows = 1
		}
		if len(res.Rows) != wantRows {
			t.Fatalf("index lookup id=%d found %d rows, want %d", id, len(res.Rows), wantRows)
		}
	}
}

// TestDMLSnapshotCancellationAtomic: the snapshot (subquery) DML path is
// atomic under cancellation — nothing is applied if phase one is
// interrupted.
func TestDMLSnapshotCancellationAtomic(t *testing.T) {
	db := NewDatabase()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	db.Funcs().Register("CANCEL_AT2", func(args []Value) (Value, error) {
		if args[0].AsInt() == 100 {
			cancel()
		}
		return Bool(true), nil
	})
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
	rows := make([][]any, 500)
	for i := range rows {
		rows[i] = []any{i, i}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	before := queryStrings(t, db, "SELECT id, v FROM t")
	n, err := db.ExecContext(ctx,
		"UPDATE t SET v = v + 1000 WHERE CANCEL_AT2(v) AND id >= (SELECT MIN(id) FROM t)")
	if CodeOf(err) != ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if n != 0 {
		t.Errorf("snapshot UPDATE reported %d affected rows after cancellation, want 0", n)
	}
	after := queryStrings(t, db, "SELECT id, v FROM t")
	if !reflect.DeepEqual(before, after) {
		t.Errorf("snapshot UPDATE applied partial changes despite cancellation")
	}
}

// TestUpdateEnforcesUnique: moving a row onto an occupied UNIQUE key
// must fail with ErrConstraint on every update path — the heap walk, the
// equality-index fast path, and the snapshot (subquery) path — exactly
// as the equivalent INSERT would. (Before this was enforced, the UPDATE
// applied silently and left two rows under one unique key.)
func TestUpdateEnforcesUnique(t *testing.T) {
	build := func() *Database {
		db := NewDatabase()
		db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
		db.MustExec("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
		return db
	}
	check := func(db *Database, sql string, params ...any) {
		t.Helper()
		if _, err := db.Exec(sql, params...); CodeOf(err) != ErrConstraint {
			t.Errorf("%q: err = %v, want ErrConstraint", sql, err)
		}
		got := queryStrings(t, db, "SELECT id FROM t ORDER BY id")
		if want := [][]string{{"1"}, {"2"}, {"3"}}; !reflect.DeepEqual(got, want) {
			t.Errorf("%q: ids after failed update = %v, want %v", sql, got, want)
		}
		for _, id := range []int{1, 2, 3} {
			res, err := db.Query("SELECT v FROM t WHERE id = ?", id)
			if err != nil || len(res.Rows) != 1 {
				t.Errorf("%q: index lookup id=%d found %d rows (err %v), want 1", sql, id, len(res.Rows), err)
			}
		}
	}
	check(build(), "UPDATE t SET id = 1 WHERE v > 15")                       // heap walk
	check(build(), "UPDATE t SET id = 1 WHERE id = ?", 2)                    // equality fast path
	check(build(), "UPDATE t SET id = (SELECT MIN(id) FROM t) WHERE v = 20") // snapshot path, atomic
	// Distinct new keys are fine on every path, including a rotation the
	// snapshot pre-check must allow (each key vacated before re-occupied
	// in the final state).
	db := build()
	db.MustExec("UPDATE t SET id = id + 100 WHERE v >= 20")
	got := queryStrings(t, db, "SELECT id FROM t ORDER BY id")
	if want := [][]string{{"1"}, {"102"}, {"103"}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("disjoint unique update = %v, want %v", got, want)
	}
	db = build()
	db.MustExec("UPDATE t SET id = 4 - id WHERE id <= 3 AND v >= (SELECT MIN(v) FROM t)")
	got = queryStrings(t, db, "SELECT id, v FROM t ORDER BY id")
	if want := [][]string{{"1", "30"}, {"2", "20"}, {"3", "10"}}; !reflect.DeepEqual(got, want) {
		t.Fatalf("unique key rotation via snapshot path = %v, want %v", got, want)
	}
}
