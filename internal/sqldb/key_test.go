package sqldb

import (
	"fmt"
	"math"
	"testing"
)

// The old string-based Value.Key() routed integers through float64, so
// int64s beyond 2^53 that differ could share a key and silently corrupt
// GROUP BY / DISTINCT / join results. These tests pin the binary encoder's
// exactness and its agreement with Compare.

func TestKeyExactForLargeInt64(t *testing.T) {
	const base = int64(1) << 53 // beyond here float64 loses integer precision
	pairs := [][2]int64{
		{base, base + 1},
		{base + 2, base + 3},
		{math.MaxInt64, math.MaxInt64 - 1},
		{math.MinInt64, math.MinInt64 + 1},
	}
	for _, p := range pairs {
		a, b := Int(p[0]), Int(p[1])
		// For the first pair the float64 images collide, which is exactly
		// the case the old string encoding got wrong.
		if a.Key() == b.Key() {
			t.Errorf("Int(%d) and Int(%d) share a key", p[0], p[1])
		}
	}
}

func TestKeyRespectsCompareEquivalence(t *testing.T) {
	// Values that compare equal must encode identically.
	equal := [][2]Value{
		{Int(5), Float(5.0)},
		{Int(0), Bool(false)},
		{Int(1), Bool(true)},
		{Float(-3), Int(-3)},
		{Text("x"), Text("x")},
		{Null, Null},
	}
	for _, p := range equal {
		if p[0].Compare(p[1]) != 0 {
			t.Fatalf("test bug: %v and %v do not compare equal", p[0], p[1])
		}
		if p[0].Key() != p[1].Key() {
			t.Errorf("%v and %v compare equal but key differently", p[0], p[1])
		}
	}
	distinct := []Value{
		Null, Bool(false), Int(1), Int(2), Float(2.5), Float(math.Inf(1)),
		Float(math.Inf(-1)), Text(""), Text("a"), Text("ab"), Int(1 << 60),
		Int(1<<60 + 1),
	}
	for i, a := range distinct {
		for j, b := range distinct {
			if i != j && a.Key() == b.Key() {
				t.Errorf("distinct values %v and %v share a key", a, b)
			}
		}
	}
}

func TestCompareIntFloatExact(t *testing.T) {
	// Compare must agree with the key encoding: mixed int/float comparisons
	// are exact, never routed through float64 rounding of the integer.
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1<<53 + 1), Float(1 << 53), 1}, // float64 images collide; ints win exactly
		{Float(1 << 53), Int(1<<53 + 1), -1},
		{Int(1 << 53), Float(1 << 53), 0},
		{Int(math.MaxInt64), Float(math.MaxInt64), -1}, // float rounds up to 2^63
		{Int(math.MinInt64), Float(math.MinInt64), 0},  // -2^63 is exact
		{Int(5), Float(5.5), -1},
		{Int(6), Float(5.5), 1},
		{Int(-5), Float(-5.5), 1},
		{Int(0), Float(math.Inf(1)), -1},
		{Int(0), Float(math.Inf(-1)), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Plan-shape independence: the same equality must give the same answer
	// through a hash join (key-based) and a WHERE clause (Compare-based).
	db := NewDatabase()
	db.MustExec("CREATE TABLE ti (x INTEGER)")
	db.MustExec("CREATE TABLE tf (y REAL)")
	db.MustExec("INSERT INTO ti VALUES (?)", int64(1<<53+1))
	db.MustExec("INSERT INTO tf VALUES (9007199254740992.0)")
	joined, err := db.Query("SELECT COUNT(*) FROM ti JOIN tf ON ti.x = tf.y")
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := db.Query("SELECT COUNT(*) FROM ti, tf WHERE ti.x = tf.y")
	if err != nil {
		t.Fatal(err)
	}
	if jn, fn := joined.Rows[0][0].AsInt(), filtered.Rows[0][0].AsInt(); jn != fn {
		t.Errorf("hash join found %d matches but WHERE found %d for the same equality", jn, fn)
	} else if jn != 0 {
		t.Errorf("2^53+1 must not equal 2^53.0, got %d matches", jn)
	}
}

func TestRowKeySelfDelimiting(t *testing.T) {
	// Concatenated encodings must not be confusable across column
	// boundaries: ("ab","c") vs ("a","bc"), ("a",NULL) vs ("a").
	cases := [][2]Row{
		{{Text("ab"), Text("c")}, {Text("a"), Text("bc")}},
		{{Text("a"), Null}, {Null, Text("a")}},
		{{Int(1), Int(2)}, {Int(12)}},
		{{Text("1")}, {Int(1)}},
	}
	for _, c := range cases {
		if rowKey(c[0]) == rowKey(c[1]) {
			t.Errorf("rows %v and %v share a key", c[0], c[1])
		}
	}
}

func TestGroupByDistinctJoinWithHugeInts(t *testing.T) {
	// End-to-end regression: two ids straddling the float64 precision
	// cliff must stay distinct through GROUP BY, DISTINCT, index lookups
	// and hash joins.
	const a = int64(1)<<53 + 1
	const b = int64(1) << 53 // float64(a) == float64(b)
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, grp INTEGER, v INTEGER)")
	db.MustExec("CREATE TABLE u (grp INTEGER, tag TEXT)")
	db.MustExec("INSERT INTO t VALUES (1, ?, 10), (2, ?, 20), (3, ?, 30)", a, b, a)
	db.MustExec("INSERT INTO u VALUES (?, 'A'), (?, 'B')", a, b)

	res, err := db.Query("SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("GROUP BY merged >2^53 keys: %d groups, want 2", len(res.Rows))
	}
	if res.Rows[0][1].AsInt() != 1 || res.Rows[1][1].AsInt() != 2 {
		t.Fatalf("group counts = %v,%v; want 1,2", res.Rows[0][1], res.Rows[1][1])
	}

	res, err = db.Query("SELECT DISTINCT grp FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("DISTINCT merged >2^53 keys: %d rows, want 2", len(res.Rows))
	}

	res, err = db.Query("SELECT t.v, u.tag FROM t JOIN u ON t.grp = u.grp ORDER BY t.v")
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]string{{"10", "A"}, {"20", "B"}, {"30", "A"}}
	if len(res.Rows) != len(want) {
		t.Fatalf("join rows = %d, want %d", len(res.Rows), len(want))
	}
	for i, w := range want {
		if res.Rows[i][0].AsText() != w[0] || res.Rows[i][1].AsText() != w[1] {
			t.Errorf("join row %d = %v, want %v", i, res.Rows[i], w)
		}
	}

	// UNIQUE (primary-key) index with huge int keys: both inserts must be
	// accepted (distinct keys) and a point lookup must find the right row.
	db.MustExec("CREATE TABLE pk (id INTEGER PRIMARY KEY)")
	db.MustExec("INSERT INTO pk VALUES (?), (?)", a, b)
	res, err = db.Query("SELECT COUNT(*) FROM pk WHERE id = ?", a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("point lookup matched %v rows, want 1", res.Rows[0][0])
	}
}

func TestAppendValueKeyNoSideAllocScratchReuse(t *testing.T) {
	// A reused scratch buffer must produce the same encodings as fresh ones.
	vals := []Value{Int(7), Text("hello"), Float(2.75), Null, Bool(true), Int(1 << 60)}
	var buf []byte
	for _, v := range vals {
		buf = appendValueKey(buf[:0], v)
		if string(buf) != v.Key() {
			t.Errorf("scratch encoding of %v differs from Key()", v)
		}
	}
}

func BenchmarkAppendRowKey(b *testing.B) {
	row := Row{Int(12345678901234), Text("some text value"), Float(3.25), Null}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendRowKey(buf[:0], row)
	}
	_ = fmt.Sprint(len(buf))
}
