package sqldb

import (
	"fmt"
	"strings"
)

// This file defines the SQL abstract syntax tree. Every node implements
// String() producing valid SQL so that parse→print→parse round-trips
// (exercised by property tests in parser_test.go).

// Statement is any executable SQL statement.
type Statement interface {
	fmt.Stringer
	stmtNode()
}

// Expr is any SQL expression.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ---------------------------------------------------------------------------
// Expressions

// Literal is a constant value.
type Literal struct {
	Val Value
}

func (*Literal) exprNode()        {}
func (l *Literal) String() string { return l.Val.String() }

// Param is a positional '?' placeholder bound at execution time.
type Param struct {
	Index int // 0-based position among the statement's parameters
}

func (*Param) exprNode()        {}
func (p *Param) String() string { return "?" }

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table  string // optional qualifier
	Column string // column name, or "*" in StarExpr contexts

	// index is a pre-resolved ordinal into the input schema, or -1 when
	// unresolved. The parser always emits -1; star expansion stamps the
	// ordinal it expanded from, letting compileColumnRef skip name
	// resolution (it still verifies the stamp against the compile-time
	// schema before trusting it, since ASTs are shared via the plan cache).
	index int
}

func (*ColumnRef) exprNode() {}
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return quoteIdent(c.Table) + "." + quoteIdent(c.Column)
	}
	return quoteIdent(c.Column)
}

// Star is the bare `*` or `tbl.*` select item.
type Star struct {
	Table string
}

func (*Star) exprNode() {}
func (s *Star) String() string {
	if s.Table != "" {
		return quoteIdent(s.Table) + ".*"
	}
	return "*"
}

// BinaryOp applies an infix operator. Operators: = != < <= > >= + - * / %
// AND OR LIKE || .
type BinaryOp struct {
	Op    string
	Left  Expr
	Right Expr
}

func (*BinaryOp) exprNode() {}
func (b *BinaryOp) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// UnaryOp applies a prefix operator: - or NOT.
type UnaryOp struct {
	Op   string // "-" or "NOT"
	Expr Expr
}

func (*UnaryOp) exprNode() {}
func (u *UnaryOp) String() string {
	if u.Op == "NOT" {
		return "(NOT " + u.Expr.String() + ")"
	}
	return "(" + u.Op + u.Expr.String() + ")"
}

// IsNull tests `expr IS [NOT] NULL`.
type IsNull struct {
	Expr Expr
	Not  bool
}

func (*IsNull) exprNode() {}
func (e *IsNull) String() string {
	if e.Not {
		return "(" + e.Expr.String() + " IS NOT NULL)"
	}
	return "(" + e.Expr.String() + " IS NULL)"
}

// InList tests `expr [NOT] IN (e1, e2, ...)` or `expr [NOT] IN (subquery)`.
type InList struct {
	Expr Expr
	List []Expr      // nil when Sub is set
	Sub  *SelectStmt // nil when List is set
	Not  bool
}

func (*InList) exprNode() {}
func (e *InList) String() string {
	var b strings.Builder
	b.WriteString("(" + e.Expr.String())
	if e.Not {
		b.WriteString(" NOT")
	}
	b.WriteString(" IN (")
	if e.Sub != nil {
		b.WriteString(e.Sub.String())
	} else {
		for i, it := range e.List {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.String())
		}
	}
	b.WriteString("))")
	return b.String()
}

// Between tests `expr [NOT] BETWEEN lo AND hi`.
type Between struct {
	Expr Expr
	Lo   Expr
	Hi   Expr
	Not  bool
}

func (*Between) exprNode() {}
func (e *Between) String() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return "(" + e.Expr.String() + not + " BETWEEN " + e.Lo.String() + " AND " + e.Hi.String() + ")"
}

// FuncCall invokes a scalar or aggregate function.
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

func (*FuncCall) exprNode() {}
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	var b strings.Builder
	b.WriteString(f.Name + "(")
	if f.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, a := range f.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteString(")")
	return b.String()
}

// CaseExpr is `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
type CaseExpr struct {
	Operand Expr // optional
	Whens   []CaseWhen
	Else    Expr // optional
}

// CaseWhen is one WHEN/THEN arm of a CaseExpr.
type CaseWhen struct {
	When Expr
	Then Expr
}

func (*CaseExpr) exprNode() {}
func (c *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	if c.Operand != nil {
		b.WriteString(" " + c.Operand.String())
	}
	for _, w := range c.Whens {
		b.WriteString(" WHEN " + w.When.String() + " THEN " + w.Then.String())
	}
	if c.Else != nil {
		b.WriteString(" ELSE " + c.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// Subquery is a scalar subquery used in expression position.
type Subquery struct {
	Select *SelectStmt
}

func (*Subquery) exprNode()        {}
func (s *Subquery) String() string { return "(" + s.Select.String() + ")" }

// ExistsExpr is `[NOT] EXISTS (subquery)`.
type ExistsExpr struct {
	Select *SelectStmt
	Not    bool
}

func (*ExistsExpr) exprNode() {}
func (e *ExistsExpr) String() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return "(" + not + "EXISTS (" + e.Select.String() + "))"
}

// CastExpr is `CAST(expr AS type)`.
type CastExpr struct {
	Expr Expr
	Type string // upper-cased target type name
}

func (*CastExpr) exprNode() {}
func (c *CastExpr) String() string {
	return "CAST(" + c.Expr.String() + " AS " + c.Type + ")"
}

// ---------------------------------------------------------------------------
// SELECT

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef is a named table (or view of one) with an optional alias, or a
// derived table (subquery) when Sub is non-nil.
type TableRef struct {
	Name  string
	Alias string
	Sub   *SelectStmt
}

func (t *TableRef) String() string {
	var b strings.Builder
	if t.Sub != nil {
		b.WriteString("(" + t.Sub.String() + ")")
	} else {
		b.WriteString(quoteIdent(t.Name))
	}
	if t.Alias != "" {
		b.WriteString(" AS " + quoteIdent(t.Alias))
	}
	return b.String()
}

// effectiveName is the name the table is addressable by in column qualifiers.
func (t *TableRef) effectiveName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinKind enumerates supported join types.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
)

func (k JoinKind) String() string {
	switch k {
	case JoinLeft:
		return "LEFT JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// JoinClause is one joined table with its ON condition.
type JoinClause struct {
	Kind  JoinKind
	Table TableRef
	On    Expr // nil for CROSS JOIN
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String() + " ASC"
}

// SelectStmt is a full SELECT statement.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     *TableRef // nil means SELECT without FROM
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil = no limit
	Offset   Expr // nil = no offset
}

func (*SelectStmt) stmtNode() {}
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS " + quoteIdent(it.Alias))
		}
	}
	if s.From != nil {
		b.WriteString(" FROM " + s.From.String())
		for _, j := range s.Joins {
			b.WriteString(" " + j.Kind.String() + " " + j.Table.String())
			if j.On != nil {
				b.WriteString(" ON " + j.On.String())
			}
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT " + s.Limit.String())
	}
	if s.Offset != nil {
		b.WriteString(" OFFSET " + s.Offset.String())
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// DDL / DML

// ColumnDef declares one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       string // INTEGER, REAL, TEXT, BOOLEAN (affinity name as written)
	PrimaryKey bool
	NotNull    bool
	Unique     bool
}

// CreateTableStmt is `CREATE TABLE [IF NOT EXISTS] name (cols...)`.
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
}

func (*CreateTableStmt) stmtNode() {}
func (c *CreateTableStmt) String() string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	if c.IfNotExists {
		b.WriteString("IF NOT EXISTS ")
	}
	b.WriteString(quoteIdent(c.Name) + " (")
	for i, col := range c.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(quoteIdent(col.Name) + " " + col.Type)
		if col.PrimaryKey {
			b.WriteString(" PRIMARY KEY")
		}
		if col.NotNull {
			b.WriteString(" NOT NULL")
		}
		if col.Unique {
			b.WriteString(" UNIQUE")
		}
	}
	b.WriteString(")")
	return b.String()
}

// CreateIndexStmt is `CREATE [UNIQUE] INDEX name ON table (col)`.
type CreateIndexStmt struct {
	Name   string
	Table  string
	Column string
	Unique bool
}

func (*CreateIndexStmt) stmtNode() {}
func (c *CreateIndexStmt) String() string {
	u := ""
	if c.Unique {
		u = "UNIQUE "
	}
	return "CREATE " + u + "INDEX " + quoteIdent(c.Name) + " ON " + quoteIdent(c.Table) + " (" + quoteIdent(c.Column) + ")"
}

// InsertStmt is `INSERT INTO t [(cols)] VALUES (...), (...)` or
// `INSERT INTO t [(cols)] SELECT ...`.
type InsertStmt struct {
	Table   string
	Columns []string // empty = table order
	Rows    [][]Expr // nil when Select is set
	Select  *SelectStmt
}

func (*InsertStmt) stmtNode() {}
func (s *InsertStmt) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO " + quoteIdent(s.Table))
	if len(s.Columns) > 0 {
		b.WriteString(" (")
		for i, c := range s.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(quoteIdent(c))
		}
		b.WriteString(")")
	}
	if s.Select != nil {
		b.WriteString(" " + s.Select.String())
		return b.String()
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteString(")")
	}
	return b.String()
}

// UpdateStmt is `UPDATE t SET col = expr, ... [WHERE ...]`.
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one `col = expr` assignment in UPDATE.
type SetClause struct {
	Column string
	Expr   Expr
}

func (*UpdateStmt) stmtNode() {}
func (s *UpdateStmt) String() string {
	var b strings.Builder
	b.WriteString("UPDATE " + quoteIdent(s.Table) + " SET ")
	for i, c := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(quoteIdent(c.Column) + " = " + c.Expr.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	return b.String()
}

// DeleteStmt is `DELETE FROM t [WHERE ...]`.
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmtNode() {}
func (s *DeleteStmt) String() string {
	out := "DELETE FROM " + quoteIdent(s.Table)
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

// DropTableStmt is `DROP TABLE [IF EXISTS] name`.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

func (*DropTableStmt) stmtNode() {}
func (s *DropTableStmt) String() string {
	out := "DROP TABLE "
	if s.IfExists {
		out += "IF EXISTS "
	}
	return out + quoteIdent(s.Name)
}

// BeginStmt is `BEGIN [TRANSACTION]`: it opens the session transaction
// that subsequent bare statements join until COMMIT or ROLLBACK.
type BeginStmt struct{}

func (*BeginStmt) stmtNode()      {}
func (*BeginStmt) String() string { return "BEGIN" }

// CommitStmt is `COMMIT [TRANSACTION]`.
type CommitStmt struct{}

func (*CommitStmt) stmtNode()      {}
func (*CommitStmt) String() string { return "COMMIT" }

// RollbackStmt is `ROLLBACK [TRANSACTION]`.
type RollbackStmt struct{}

func (*RollbackStmt) stmtNode()      {}
func (*RollbackStmt) String() string { return "ROLLBACK" }

// quoteIdent quotes an identifier when it needs quoting (reserved word or
// non-identifier characters); otherwise returns it unchanged.
func quoteIdent(s string) string {
	if s == "*" || s == "" {
		return s
	}
	needs := keywords[strings.ToUpper(s)]
	if !needs {
		for i := 0; i < len(s); {
			var w int
			if i == 0 {
				w = identStartWidth(s[i:])
			} else {
				w = identPartWidth(s[i:])
			}
			if w == 0 {
				needs = true
				break
			}
			i += w
		}
	}
	if !needs {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
