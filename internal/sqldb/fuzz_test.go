package sqldb

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// Native Go fuzz harnesses for the parser and the executor. Seed corpora
// live under testdata/fuzz/<target>/ (the go tool's native layout) plus
// the f.Add calls below; CI runs each target for a short -fuzztime so
// regressions in the panic-freedom and typed-error contracts surface on
// every push, and longer local runs (`go test -fuzz FuzzParse
// ./internal/sqldb`) can dig deeper.

// fuzzSeedSQL is the shared seed corpus: statement shapes covering every
// production the parser knows, so mutation starts from interesting
// inputs on both targets.
var fuzzSeedSQL = []string{
	"SELECT 1",
	"SELECT * FROM t",
	"SELECT a, b FROM t WHERE a = 1 AND b > 2 ORDER BY a DESC LIMIT 3 OFFSET 1",
	"SELECT DISTINCT a FROM t WHERE b BETWEEN 1 AND 9 OR c LIKE '%x%'",
	"SELECT t1.a, t2.b FROM t1 JOIN t2 ON t1.id = t2.t1_id LEFT JOIN t3 ON t3.k = t1.id",
	"SELECT a, COUNT(*), SUM(b) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY 2",
	"SELECT (SELECT MAX(y) FROM i WHERE i.y <= o.x) FROM o",
	"SELECT id FROM o WHERE EXISTS (SELECT 1 FROM i WHERE i.oid = o.id)",
	"SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN (SELECT c FROM u)",
	"SELECT CASE WHEN a < 3 THEN 'lo' ELSE 'hi' END, COALESCE(b, -1) FROM t",
	"SELECT a FROM (SELECT a FROM t WHERE a > 0) d WHERE a < 10",
	"SELECT -a, NOT b, a % 3, 1.5e2, 'it''s', x IS NOT NULL FROM t",
	"INSERT INTO t (a, b) VALUES (1, NULL), (?, 'x')",
	"INSERT INTO t SELECT a, b FROM u",
	"UPDATE t SET a = a + 1, b = NULL WHERE c = ?",
	"DELETE FROM t WHERE a BETWEEN 1 AND 2",
	"CREATE TABLE t (id INTEGER PRIMARY KEY, a TEXT NOT NULL, b REAL UNIQUE)",
	"CREATE UNIQUE INDEX idx ON t (a)",
	"DROP TABLE IF EXISTS t",
	"SELECT \"quoted col\" FROM \"quoted table\"",
}

// FuzzParse: parsing arbitrary input must never panic, must only report
// typed errors, and on success the statement's String() rendering must
// re-parse to a fixpoint (parse -> String -> parse -> String is stable).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeedSQL {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		if len(sql) > 1<<12 {
			t.Skip()
		}
		stmt, err := Parse(sql)
		if err != nil {
			if CodeOf(err) == ErrUnknown {
				t.Fatalf("Parse(%q) returned an untyped error: %v", sql, err)
			}
			return
		}
		s1 := stmt.String()
		stmt2, err := Parse(s1)
		if err != nil {
			t.Fatalf("re-parse of String() output %q (from %q) failed: %v", s1, sql, err)
		}
		if s2 := stmt2.String(); s2 != s1 {
			t.Fatalf("String() not a fixpoint:\n first %q\nsecond %q\n(input %q)", s1, s2, sql)
		}
	})
}

// fuzzQueryDB builds the seeded read-only database FuzzQuery executes
// against, once per process (SELECTs cannot mutate it).
var fuzzQueryDB = sync.OnceValue(func() *Database {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b REAL, c TEXT)")
	db.MustExec("CREATE INDEX idx_t_a ON t (a)")
	db.MustExec("CREATE TABLE u (id INTEGER, c TEXT)")
	words := []string{"ant", "bee", "cat", "", "it's"}
	for i := 0; i < 25; i++ {
		var a any = i % 7
		if i%9 == 0 {
			a = nil
		}
		db.MustExec("INSERT INTO t VALUES (?, ?, ?, ?)", i, a, float64(i)/3, words[i%len(words)])
		if i%2 == 0 {
			db.MustExec("INSERT INTO u VALUES (?, ?)", i, words[(i+1)%len(words)])
		}
	}
	return db
})

// FuzzQuery: executing an arbitrary SELECT against a seeded database must
// never panic, and any failure must be a typed *sqldb.Error. Non-SELECT
// statements are skipped so the shared database stays immutable.
func FuzzQuery(f *testing.F) {
	for _, s := range fuzzSeedSQL {
		if strings.HasPrefix(s, "SELECT") {
			f.Add(s)
		}
	}
	f.Add("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY 2 DESC")
	f.Add("SELECT t.id, u.c FROM t JOIN u ON t.id = u.id WHERE t.a = NULL OR u.c LIKE '%t%'")
	f.Add("SELECT id FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id) ORDER BY a LIMIT 4")
	f.Fuzz(func(t *testing.T, sql string) {
		if len(sql) > 1<<12 {
			t.Skip()
		}
		stmt, err := Parse(sql)
		if err != nil {
			t.Skip() // parser robustness is FuzzParse's contract
		}
		if _, ok := stmt.(*SelectStmt); !ok {
			t.Skip()
		}
		res, err := fuzzQueryDB().Query(sql)
		if err != nil {
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("Query(%q) returned an untyped error %T: %v", sql, err, err)
			}
			return
		}
		// Minimal result sanity: every row is as wide as the header.
		for _, r := range res.Rows {
			if len(r) != len(res.Columns) {
				t.Fatalf("Query(%q): row width %d != %d columns", sql, len(r), len(res.Columns))
			}
		}
	})
}
