package sqldb

import (
	"context"
	"testing"
)

// Benchmarks for the streaming cursor API itself (new in this engine
// version; see rows_bench_test.go for the before/after-comparable set).

// BenchmarkQueryVsQueryRows contrasts materialising a full scan with
// streaming it: the cursor path never builds the []Row result.
func BenchmarkQueryVsQueryRows(b *testing.B) {
	const sql = "SELECT name, price FROM items WHERE price > 50"
	b.Run("materialised", func(b *testing.B) {
		db := benchDB(b, 20000)
		benchQuery(b, db, sql)
	})
	b.Run("streamed", func(b *testing.B) {
		db := benchDB(b, 20000)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := db.QueryRows(ctx, sql)
			if err != nil {
				b.Fatal(err)
			}
			for rows.Next() {
			}
			if err := rows.Err(); err != nil {
				b.Fatal(err)
			}
			rows.Close()
		}
	})
}

// BenchmarkQueryRowsFirstRow measures time-to-first-row on a large scan —
// the latency win of not materialising: the caller sees row one after a
// constant amount of work, not after the whole table.
func BenchmarkQueryRowsFirstRow(b *testing.B) {
	db := benchDB(b, 50000)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.QueryRows(ctx, "SELECT name FROM items")
		if err != nil {
			b.Fatal(err)
		}
		if !rows.Next() {
			b.Fatal("no rows")
		}
		rows.Close()
	}
}
