package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements SELECT execution: a volcano-style iterator tree for
// the FROM/WHERE stages (scans, index lookups, hash and nested-loop joins)
// with materialisation at the aggregation, sort and distinct boundaries.

// operator is a pull-based row iterator.
type operator interface {
	columns() []colInfo
	// next returns the next row. ok=false signals exhaustion.
	next() (row Row, ok bool, err error)
	// reset rewinds the operator so it can be iterated again (used by
	// nested-loop joins).
	reset()
}

// ---------------------------------------------------------------------------
// Scan

// scanOp iterates a base table's heap, optionally restricted to a set of
// row ids produced by an index lookup.
type scanOp struct {
	table *Table
	qual  string // alias the table is addressable by
	cols  []colInfo
	ids   []int // nil = full scan
	pos   int
}

func newScanOp(t *Table, qual string) *scanOp {
	cols := make([]colInfo, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = colInfo{qual: qual, name: c.Name}
	}
	return &scanOp{table: t, qual: qual, cols: cols}
}

func (s *scanOp) columns() []colInfo { return s.cols }
func (s *scanOp) reset()             { s.pos = 0 }

func (s *scanOp) next() (Row, bool, error) {
	if s.ids != nil {
		if s.pos >= len(s.ids) {
			return nil, false, nil
		}
		r := s.table.rows[s.ids[s.pos]]
		s.pos++
		return r, true, nil
	}
	if s.pos >= len(s.table.rows) {
		return nil, false, nil
	}
	r := s.table.rows[s.pos]
	s.pos++
	return r, true, nil
}

// valuesOp replays pre-materialised rows (derived tables, join builds).
type valuesOp struct {
	cols []colInfo
	rows []Row
	pos  int
}

func (v *valuesOp) columns() []colInfo { return v.cols }
func (v *valuesOp) reset()             { v.pos = 0 }
func (v *valuesOp) next() (Row, bool, error) {
	if v.pos >= len(v.rows) {
		return nil, false, nil
	}
	r := v.rows[v.pos]
	v.pos++
	return r, true, nil
}

// ---------------------------------------------------------------------------
// Filter

// filterOp passes through rows satisfying the predicate (NULL = drop).
type filterOp struct {
	child operator
	pred  Expr
	env   *evalEnv
}

func newFilterOp(child operator, pred Expr, db *Database, params []Value, outer *evalEnv) *filterOp {
	return &filterOp{
		child: child,
		pred:  pred,
		env:   newEvalEnv(child.columns(), db, params, outer),
	}
}

func (f *filterOp) columns() []colInfo { return f.child.columns() }
func (f *filterOp) reset()             { f.child.reset() }

func (f *filterOp) next() (Row, bool, error) {
	for {
		r, ok, err := f.child.next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.env.row = r
		v, err := evalExpr(f.pred, f.env)
		if err != nil {
			return nil, false, err
		}
		if !v.IsNull() && v.AsBool() {
			return r, true, nil
		}
	}
}

// ---------------------------------------------------------------------------
// Joins

// hashJoinOp performs an equi-join: the right side is built into a hash
// table keyed by rightKey; left rows probe it. A residual predicate (the
// non-equi remainder of the ON clause) is applied to candidate pairs.
// Supports inner and left joins.
type hashJoinOp struct {
	left      operator
	rightCols []colInfo
	cols      []colInfo
	leftKey   Expr
	rightKey  Expr // retained for EXPLAIN
	rightRows map[string][]Row
	residual  Expr
	leftOuter bool
	db        *Database
	params    []Value
	outer     *evalEnv

	leftEnv  *evalEnv
	pairEnv  *evalEnv
	cur      Row // current left row
	matches  []Row
	matchPos int
	emitted  bool // whether cur produced any output (for LEFT JOIN)
	haveCur  bool
}

func newHashJoinOp(left operator, rightCols []colInfo, rightRows []Row,
	leftKey, rightKey Expr, residual Expr, leftOuter bool,
	db *Database, params []Value, outer *evalEnv) (*hashJoinOp, error) {

	h := &hashJoinOp{
		left:      left,
		rightCols: rightCols,
		cols:      append(append([]colInfo{}, left.columns()...), rightCols...),
		leftKey:   leftKey,
		rightKey:  rightKey,
		residual:  residual,
		leftOuter: leftOuter,
		db:        db,
		params:    params,
		outer:     outer,
		rightRows: make(map[string][]Row),
	}
	// Build phase.
	rightEnv := newEvalEnv(rightCols, db, params, outer)
	for _, r := range rightRows {
		rightEnv.row = r
		k, err := evalExpr(rightKey, rightEnv)
		if err != nil {
			return nil, err
		}
		if k.IsNull() {
			continue // NULL keys never join
		}
		h.rightRows[k.Key()] = append(h.rightRows[k.Key()], r)
	}
	h.leftEnv = newEvalEnv(left.columns(), db, params, outer)
	h.pairEnv = newEvalEnv(h.cols, db, params, outer)
	return h, nil
}

func (h *hashJoinOp) columns() []colInfo { return h.cols }
func (h *hashJoinOp) reset() {
	h.left.reset()
	h.haveCur = false
	h.matches = nil
	h.matchPos = 0
}

func (h *hashJoinOp) next() (Row, bool, error) {
	for {
		if !h.haveCur {
			r, ok, err := h.left.next()
			if err != nil || !ok {
				return nil, false, err
			}
			h.cur = r
			h.haveCur = true
			h.emitted = false
			h.matchPos = 0
			h.leftEnv.row = r
			k, err := evalExpr(h.leftKey, h.leftEnv)
			if err != nil {
				return nil, false, err
			}
			if k.IsNull() {
				h.matches = nil
			} else {
				h.matches = h.rightRows[k.Key()]
			}
		}
		for h.matchPos < len(h.matches) {
			rr := h.matches[h.matchPos]
			h.matchPos++
			out := make(Row, 0, len(h.cur)+len(rr))
			out = append(out, h.cur...)
			out = append(out, rr...)
			if h.residual != nil {
				h.pairEnv.row = out
				v, err := evalExpr(h.residual, h.pairEnv)
				if err != nil {
					return nil, false, err
				}
				if v.IsNull() || !v.AsBool() {
					continue
				}
			}
			h.emitted = true
			return out, true, nil
		}
		// Left row exhausted its matches.
		if h.leftOuter && !h.emitted {
			h.haveCur = false
			out := make(Row, 0, len(h.cols))
			out = append(out, h.cur...)
			for range h.rightCols {
				out = append(out, Null)
			}
			return out, true, nil
		}
		h.haveCur = false
	}
}

// nestedLoopJoinOp is the fallback join for non-equi ON conditions and
// CROSS joins. The right side is materialised.
type nestedLoopJoinOp struct {
	left      operator
	rightCols []colInfo
	rightRows []Row
	cols      []colInfo
	on        Expr // nil for CROSS
	leftOuter bool
	env       *evalEnv

	cur      Row
	haveCur  bool
	emitted  bool
	rightPos int
}

func newNestedLoopJoinOp(left operator, rightCols []colInfo, rightRows []Row,
	on Expr, leftOuter bool, db *Database, params []Value, outer *evalEnv) *nestedLoopJoinOp {
	cols := append(append([]colInfo{}, left.columns()...), rightCols...)
	return &nestedLoopJoinOp{
		left:      left,
		rightCols: rightCols,
		rightRows: rightRows,
		cols:      cols,
		on:        on,
		leftOuter: leftOuter,
		env:       newEvalEnv(cols, db, params, outer),
	}
}

func (n *nestedLoopJoinOp) columns() []colInfo { return n.cols }
func (n *nestedLoopJoinOp) reset() {
	n.left.reset()
	n.haveCur = false
	n.rightPos = 0
}

func (n *nestedLoopJoinOp) next() (Row, bool, error) {
	for {
		if !n.haveCur {
			r, ok, err := n.left.next()
			if err != nil || !ok {
				return nil, false, err
			}
			n.cur = r
			n.haveCur = true
			n.emitted = false
			n.rightPos = 0
		}
		for n.rightPos < len(n.rightRows) {
			rr := n.rightRows[n.rightPos]
			n.rightPos++
			out := make(Row, 0, len(n.cols))
			out = append(out, n.cur...)
			out = append(out, rr...)
			if n.on != nil {
				n.env.row = out
				v, err := evalExpr(n.on, n.env)
				if err != nil {
					return nil, false, err
				}
				if v.IsNull() || !v.AsBool() {
					continue
				}
			}
			n.emitted = true
			return out, true, nil
		}
		if n.leftOuter && !n.emitted {
			n.haveCur = false
			out := make(Row, 0, len(n.cols))
			out = append(out, n.cur...)
			for range n.rightCols {
				out = append(out, Null)
			}
			return out, true, nil
		}
		n.haveCur = false
	}
}

// ---------------------------------------------------------------------------
// SELECT driver

// execSubquery runs a nested SELECT with the enclosing row environment
// available for correlated references.
func execSubquery(stmt *SelectStmt, outer *evalEnv) ([]Row, []colInfo, error) {
	return execSelect(stmt, outer.db, outer.params, outer)
}

// execSelect runs a SELECT and materialises its result.
func execSelect(stmt *SelectStmt, db *Database, params []Value, outer *evalEnv) ([]Row, []colInfo, error) {
	src, where, err := buildFrom(stmt, db, params, outer)
	if err != nil {
		return nil, nil, err
	}
	if where != nil {
		src = newFilterOp(src, where, db, params, outer)
	}

	aggregate := len(stmt.GroupBy) > 0
	if !aggregate {
		for _, it := range stmt.Items {
			if exprContainsAggregate(it.Expr) {
				aggregate = true
				break
			}
		}
		if stmt.Having != nil && !aggregate {
			aggregate = true
		}
	}

	items, outCols, err := expandItems(stmt.Items, src.columns())
	if err != nil {
		return nil, nil, err
	}

	type projRow struct {
		out Row
		env *evalEnv // row environment for ORDER BY over non-projected columns
	}
	var projected []projRow

	if aggregate {
		groups, err := runAggregation(stmt, items, src, db, params, outer)
		if err != nil {
			return nil, nil, err
		}
		for _, genv := range groups {
			if stmt.Having != nil {
				hv, err := evalExpr(stmt.Having, genv)
				if err != nil {
					return nil, nil, err
				}
				if hv.IsNull() || !hv.AsBool() {
					continue
				}
			}
			out := make(Row, len(items))
			for i, it := range items {
				v, err := evalExpr(it.Expr, genv)
				if err != nil {
					return nil, nil, err
				}
				out[i] = v
			}
			projected = append(projected, projRow{out: out, env: genv})
		}
	} else {
		base := newEvalEnv(src.columns(), db, params, outer)
		for {
			r, ok, err := src.next()
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				break
			}
			// Each row needs its own env snapshot for deferred ORDER BY.
			env := &evalEnv{
				cols: base.cols, lookup: base.lookup, row: r,
				params: params, db: db, outer: outer,
			}
			out := make(Row, len(items))
			for i, it := range items {
				v, err := evalExpr(it.Expr, env)
				if err != nil {
					return nil, nil, err
				}
				out[i] = v
			}
			projected = append(projected, projRow{out: out, env: env})
		}
	}

	if stmt.Distinct {
		seen := make(map[string]bool, len(projected))
		kept := projected[:0]
		for _, pr := range projected {
			k := rowKey(pr.out)
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, pr)
		}
		projected = kept
	}

	if len(stmt.OrderBy) > 0 {
		type keyed struct {
			pr   projRow
			keys []Value
		}
		keyedRows := make([]keyed, len(projected))
		for i, pr := range projected {
			// ORDER BY resolves output aliases first, then input columns.
			oenv := &evalEnv{
				cols: outCols, lookup: buildLookup(outCols), row: pr.out,
				params: params, db: db, outer: pr.env,
			}
			if pr.env != nil {
				oenv.aggVals = pr.env.aggVals
				oenv.groupVals = pr.env.groupVals
			}
			keys := make([]Value, len(stmt.OrderBy))
			for j, ob := range stmt.OrderBy {
				k, err := evalOrderKey(ob.Expr, oenv, pr.out)
				if err != nil {
					return nil, nil, err
				}
				keys[j] = k
			}
			keyedRows[i] = keyed{pr: pr, keys: keys}
		}
		sort.SliceStable(keyedRows, func(a, b int) bool {
			for j, ob := range stmt.OrderBy {
				c := keyedRows[a].keys[j].Compare(keyedRows[b].keys[j])
				if c != 0 {
					if ob.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		for i := range keyedRows {
			projected[i] = keyedRows[i].pr
		}
	}

	// LIMIT / OFFSET.
	start, end := 0, len(projected)
	if stmt.Offset != nil {
		ov, err := evalConst(stmt.Offset, db, params)
		if err != nil {
			return nil, nil, err
		}
		start = int(ov.AsInt())
		if start < 0 {
			start = 0
		}
		if start > end {
			start = end
		}
	}
	if stmt.Limit != nil {
		lv, err := evalConst(stmt.Limit, db, params)
		if err != nil {
			return nil, nil, err
		}
		n := int(lv.AsInt())
		if n >= 0 && start+n < end {
			end = start + n
		}
	}

	rows := make([]Row, 0, end-start)
	for _, pr := range projected[start:end] {
		rows = append(rows, pr.out)
	}
	return rows, outCols, nil
}

// evalOrderKey evaluates an ORDER BY key: integer literals are 1-based
// output ordinals (SQLite), everything else is an expression over the
// combined output+input environment.
func evalOrderKey(e Expr, env *evalEnv, out Row) (Value, error) {
	if lit, ok := e.(*Literal); ok && lit.Val.Kind() == KindInt {
		i := int(lit.Val.AsInt())
		if i < 1 || i > len(out) {
			return Null, fmt.Errorf("sql: ORDER BY ordinal %d out of range", i)
		}
		return out[i-1], nil
	}
	return evalExpr(e, env)
}

// evalConst evaluates an expression that must not reference any columns
// (LIMIT/OFFSET operands).
func evalConst(e Expr, db *Database, params []Value) (Value, error) {
	env := newEvalEnv(nil, db, params, nil)
	return evalExpr(e, env)
}

// rowKey builds a hashable identity for a row (used by DISTINCT, GROUP BY).
func rowKey(r Row) string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(v.Key())
		b.WriteByte('\x1f')
	}
	return b.String()
}

// expandItems resolves `*` and `tbl.*` select items against the input
// schema and derives output column names.
func expandItems(items []SelectItem, in []colInfo) ([]SelectItem, []colInfo, error) {
	var out []SelectItem
	for _, it := range items {
		if st, ok := it.Expr.(*Star); ok {
			matched := false
			for _, c := range in {
				if st.Table == "" || strings.EqualFold(st.Table, c.qual) {
					out = append(out, SelectItem{Expr: &ColumnRef{Table: c.qual, Column: c.name, index: -1}})
					matched = true
				}
			}
			if !matched {
				return nil, nil, fmt.Errorf("sql: no columns match %s", st)
			}
			continue
		}
		out = append(out, it)
	}
	cols := make([]colInfo, len(out))
	for i, it := range out {
		switch {
		case it.Alias != "":
			cols[i] = colInfo{name: it.Alias}
		default:
			if cr, ok := it.Expr.(*ColumnRef); ok {
				cols[i] = colInfo{name: cr.Column}
			} else {
				cols[i] = colInfo{name: it.Expr.String()}
			}
		}
	}
	return out, cols, nil
}

// runAggregation materialises the child, groups rows, accumulates every
// aggregate referenced by the query, and returns one environment per group.
func runAggregation(stmt *SelectStmt, items []SelectItem, src operator,
	db *Database, params []Value, outer *evalEnv) ([]*evalEnv, error) {

	// Collect the aggregate calls the query references anywhere.
	var aggs []*FuncCall
	for _, it := range items {
		aggs = collectAggregates(it.Expr, aggs)
	}
	if stmt.Having != nil {
		aggs = collectAggregates(stmt.Having, aggs)
	}
	for _, ob := range stmt.OrderBy {
		aggs = collectAggregates(ob.Expr, aggs)
	}

	type group struct {
		keyVals []Value
		states  []aggState
		repRow  Row
		n       int
	}
	groups := make(map[string]*group)
	var order []string // insertion order for determinism

	env := newEvalEnv(src.columns(), db, params, outer)
	for {
		r, ok, err := src.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		env.row = r
		keyVals := make([]Value, len(stmt.GroupBy))
		for i, ge := range stmt.GroupBy {
			v, err := evalExpr(ge, env)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
		}
		k := rowKey(keyVals)
		g, ok := groups[k]
		if !ok {
			g = &group{keyVals: keyVals, repRow: r.Clone()}
			g.states = make([]aggState, len(aggs))
			for i, fc := range aggs {
				st, err := newAggState(fc)
				if err != nil {
					return nil, err
				}
				g.states[i] = st
			}
			groups[k] = g
			order = append(order, k)
		}
		g.n++
		for i, fc := range aggs {
			if fc.Star {
				g.states[i].add(Int(1))
				continue
			}
			if len(fc.Args) == 0 {
				continue
			}
			v, err := evalExpr(fc.Args[0], env)
			if err != nil {
				return nil, err
			}
			g.states[i].add(v)
		}
	}

	// A query with aggregates but no GROUP BY always yields one group,
	// even over empty input.
	if len(stmt.GroupBy) == 0 && len(order) == 0 {
		g := &group{repRow: make(Row, len(src.columns()))}
		for i := range g.repRow {
			g.repRow[i] = Null
		}
		g.states = make([]aggState, len(aggs))
		for i, fc := range aggs {
			st, err := newAggState(fc)
			if err != nil {
				return nil, err
			}
			g.states[i] = st
		}
		groups["\x00empty"] = g
		order = append(order, "\x00empty")
	}

	out := make([]*evalEnv, 0, len(order))
	for _, k := range order {
		g := groups[k]
		genv := newEvalEnv(src.columns(), db, params, outer)
		genv.row = g.repRow
		genv.aggVals = make(map[*FuncCall]Value, len(aggs))
		for i, fc := range aggs {
			genv.aggVals[fc] = g.states[i].result()
		}
		genv.groupVals = make(map[string]Value, len(stmt.GroupBy))
		for i, ge := range stmt.GroupBy {
			genv.groupVals[ge.String()] = g.keyVals[i]
		}
		out = append(out, genv)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// FROM construction and simple planning

// buildFrom constructs the operator tree for the FROM clause (including
// joins) and returns the possibly simplified WHERE predicate (index-served
// conjuncts are removed).
func buildFrom(stmt *SelectStmt, db *Database, params []Value, outer *evalEnv) (operator, Expr, error) {
	if stmt.From == nil {
		// SELECT without FROM: a single empty row.
		return &valuesOp{cols: nil, rows: []Row{{}}}, stmt.Where, nil
	}
	left, err := buildTableRef(*stmt.From, db, params, outer)
	if err != nil {
		return nil, nil, err
	}
	where := stmt.Where

	// Index selection: only for a single-table FROM with no joins, where a
	// top-level conjunct is `col = literal` over an indexed column.
	if len(stmt.Joins) == 0 {
		if sc, ok := left.(*scanOp); ok && where != nil {
			where = tryIndexScan(sc, where)
		}
	}

	for _, jc := range stmt.Joins {
		rightOp, err := buildTableRef(jc.Table, db, params, outer)
		if err != nil {
			return nil, nil, err
		}
		rightCols := rightOp.columns()
		rightRows, err := drain(rightOp)
		if err != nil {
			return nil, nil, err
		}
		if jc.Kind == JoinCross {
			left = newNestedLoopJoinOp(left, rightCols, rightRows, nil, false, db, params, outer)
			continue
		}
		leftKey, rightKey, residual := splitEquiJoin(jc.On, left.columns(), rightCols)
		if leftKey != nil {
			h, err := newHashJoinOp(left, rightCols, rightRows, leftKey, rightKey,
				residual, jc.Kind == JoinLeft, db, params, outer)
			if err != nil {
				return nil, nil, err
			}
			left = h
		} else {
			left = newNestedLoopJoinOp(left, rightCols, rightRows, jc.On,
				jc.Kind == JoinLeft, db, params, outer)
		}
	}
	return left, where, nil
}

func buildTableRef(tr TableRef, db *Database, params []Value, outer *evalEnv) (operator, error) {
	if tr.Sub != nil {
		rows, cols, err := execSelect(tr.Sub, db, params, outer)
		if err != nil {
			return nil, err
		}
		// Re-qualify the derived table's columns by its alias.
		qcols := make([]colInfo, len(cols))
		for i, c := range cols {
			qcols[i] = colInfo{qual: tr.Alias, name: c.name}
		}
		return &valuesOp{cols: qcols, rows: rows}, nil
	}
	t, err := db.tableLocked(tr.Name)
	if err != nil {
		return nil, err
	}
	return newScanOp(t, tr.effectiveName()), nil
}

// drain materialises an operator's full output.
func drain(op operator) ([]Row, error) {
	var rows []Row
	for {
		r, ok, err := op.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, r)
	}
}

// tryIndexScan rewrites `scan + (col = literal AND rest)` into an index
// lookup plus `rest` when an equality index exists. Returns the residual
// predicate (possibly nil).
func tryIndexScan(sc *scanOp, where Expr) Expr {
	conjuncts := splitConjuncts(where)
	for i, c := range conjuncts {
		b, ok := c.(*BinaryOp)
		if !ok || b.Op != "=" {
			continue
		}
		col, lit := asColLiteral(b.Left, b.Right)
		if col == nil {
			col, lit = asColLiteral(b.Right, b.Left)
		}
		if col == nil {
			continue
		}
		if col.Table != "" && !strings.EqualFold(col.Table, sc.qual) {
			continue
		}
		idx, ok := sc.table.indexes[strings.ToLower(col.Column)]
		if !ok {
			continue
		}
		ids := idx.lookup(coerce(lit.Val, sc.table.Columns[idx.Column].Type))
		sc.ids = append([]int{}, ids...)
		sort.Ints(sc.ids)
		rest := append(append([]Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
		return joinConjuncts(rest)
	}
	return where
}

func asColLiteral(a, b Expr) (*ColumnRef, *Literal) {
	col, ok1 := a.(*ColumnRef)
	lit, ok2 := b.(*Literal)
	if ok1 && ok2 {
		return col, lit
	}
	return nil, nil
}

// splitConjuncts flattens a tree of ANDs into a list.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryOp); ok && b.Op == "AND" {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

func joinConjuncts(es []Expr) Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &BinaryOp{Op: "AND", Left: out, Right: e}
	}
	return out
}

// splitEquiJoin inspects an ON clause for an equality between a left-side
// column expression and a right-side one. It returns (leftKey, rightKey,
// residual); leftKey == nil means no hashable equality was found.
func splitEquiJoin(on Expr, leftCols, rightCols []colInfo) (Expr, Expr, Expr) {
	if on == nil {
		return nil, nil, nil
	}
	leftSet := sideSet(leftCols)
	rightSet := sideSet(rightCols)
	conjuncts := splitConjuncts(on)
	for i, c := range conjuncts {
		b, ok := c.(*BinaryOp)
		if !ok || b.Op != "=" {
			continue
		}
		ls, rs := exprSide(b.Left, leftSet, rightSet), exprSide(b.Right, leftSet, rightSet)
		var lk, rk Expr
		switch {
		case ls == sideLeft && rs == sideRight:
			lk, rk = b.Left, b.Right
		case ls == sideRight && rs == sideLeft:
			lk, rk = b.Right, b.Left
		default:
			continue
		}
		rest := append(append([]Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
		return lk, rk, joinConjuncts(rest)
	}
	return nil, nil, nil
}

type side int

const (
	sideNone side = iota
	sideLeft
	sideRight
	sideBoth
)

func sideSet(cols []colInfo) map[string]bool {
	m := make(map[string]bool, len(cols)*2)
	for _, c := range cols {
		m[strings.ToLower(c.name)] = true
		if c.qual != "" {
			m[strings.ToLower(c.qual)+"."+strings.ToLower(c.name)] = true
		}
	}
	return m
}

// exprSide classifies which join side an expression's column references
// belong to.
func exprSide(e Expr, leftSet, rightSet map[string]bool) side {
	s := sideNone
	walkExpr(e, func(x Expr) bool {
		cr, ok := x.(*ColumnRef)
		if !ok {
			return true
		}
		key := strings.ToLower(cr.Column)
		if cr.Table != "" {
			key = strings.ToLower(cr.Table) + "." + key
		}
		inL, inR := leftSet[key], rightSet[key]
		var cs side
		switch {
		case inL && inR:
			cs = sideBoth
		case inL:
			cs = sideLeft
		case inR:
			cs = sideRight
		default:
			cs = sideBoth // unknown (outer reference): be conservative
		}
		switch {
		case s == sideNone:
			s = cs
		case s != cs:
			s = sideBoth
		}
		return true
	})
	return s
}
