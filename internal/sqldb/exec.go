package sqldb

import (
	"strings"
)

// This file implements the FROM/WHERE stages of SELECT execution: a
// volcano-style iterator tree of scans, index lookups, hash,
// index-nested-loop and nested-loop joins. The projection/DISTINCT/
// ORDER BY/LIMIT tail is composed on top by buildSelectPlan (stream.go),
// so the whole statement runs as one pull pipeline; only aggregation and
// sort materialise. Planning compiles every expression into a closure
// (compile.go) and chooses access paths; the per-row path then performs
// no name resolution, no map lookups by column name, and no string
// formatting (row identities use the binary keys of key.go with reused
// scratch buffers). Scans carry the execution's queryCtx, counting rows
// for Database.Stats and sampling context cancellation mid-scan.

// operator is a pull-based row iterator.
type operator interface {
	columns() []colInfo
	// next returns the next row. ok=false signals exhaustion.
	next() (row Row, ok bool, err error)
	// reset rewinds the operator so it can be iterated again (used by
	// nested-loop joins).
	reset()
}

// rowArena hands out output rows carved from larger blocks, amortising the
// one-allocation-per-row cost of joins and projections. Rows escape into
// results, so blocks are never reused; capacities are clamped so appends on
// a handed-out row can never clobber a neighbour.
type rowArena struct {
	buf []Value
}

const rowArenaBlock = 1024

func (a *rowArena) alloc(n int) Row {
	if n == 0 {
		return Row{}
	}
	if len(a.buf) < n {
		size := rowArenaBlock
		if n > size {
			size = n
		}
		a.buf = make([]Value, size)
	}
	r := a.buf[:n:n]
	a.buf = a.buf[n:]
	return r
}

// ---------------------------------------------------------------------------
// Scan

// scanOp iterates a base table's version store, optionally restricted to
// a set of row ids produced by an index lookup. A range-restricted scan
// (rangeIdx set) materialises its ids lazily on first pull from the
// index's ordered view, sorted ascending so emission order matches a
// filtered full scan — the planner may instead replace the whole operator
// with an ordScanOp when the statement's ORDER BY matches the range
// column (stream.go). Every fetch resolves through the scan's snapshot;
// the slot array and snapshot are captured once on first pull, so the
// cursor iterates with no lock held and later commits stay invisible.
type scanOp struct {
	table       *Table
	qual        string // alias the table is addressable by
	cols        []colInfo
	ids         []int // nil = full scan (unless rangeIdx is set)
	rangeIdx    *Index
	spec        rangeSpec
	pos         int
	qc          *queryCtx
	snap        *snapshot
	arr         []*rowSlot
	n           int
	inited      bool
	counted     bool   // access path recorded in qc (once per operator)
	scanned     uint64 // rows this operator read (per-operator EXPLAIN ANALYZE)
	tombSkipped uint64 // invisible versions stepped over (EXPLAIN ANALYZE)
}

func newScanOp(t *Table, qual string, qc *queryCtx) *scanOp {
	cols := make([]colInfo, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = colInfo{qual: qual, name: c.Name}
	}
	return &scanOp{table: t, qual: qual, cols: cols, qc: qc}
}

func (s *scanOp) columns() []colInfo { return s.cols }
func (s *scanOp) reset()             { s.pos = 0 }

func (s *scanOp) next() (Row, bool, error) {
	if !s.inited {
		s.inited = true
		if s.qc != nil {
			s.snap = s.qc.snap
		}
		if s.rangeIdx != nil && s.ids == nil {
			var skipped uint64
			s.ids, skipped = collectRangeIDs(s.table, s.rangeIdx.Column,
				s.rangeIdx.orderedEntries(), s.spec, s.snap)
			s.tombSkipped += skipped
			if s.qc != nil {
				s.qc.tombstonesSkipped += skipped
			}
		}
		if s.ids == nil {
			s.arr, s.n = s.table.loadSlots()
		}
	}
	if s.qc != nil {
		if !s.counted {
			s.counted = true
			switch {
			case s.rangeIdx != nil:
				s.qc.indexRangeScans++
			case s.ids != nil:
				s.qc.indexScans++
			default:
				s.qc.fullScans++
			}
		}
		if err := s.qc.tickCancelled(); err != nil {
			return nil, false, err
		}
	}
	if s.ids != nil {
		for s.pos < len(s.ids) {
			id := s.ids[s.pos]
			s.pos++
			r := scanRow(s.table, id, s.snap)
			if r == nil {
				s.tombSkipped++
				if s.qc != nil {
					s.qc.tombstonesSkipped++
				}
				continue
			}
			if s.qc != nil {
				s.qc.rowsScanned++
				s.scanned++
			}
			return r, true, nil
		}
		return nil, false, nil
	}
	for s.pos < s.n {
		head := s.arr[s.pos].head.Load()
		s.pos++
		if head == nil {
			continue // vacuumed-away slot: no versions at all
		}
		var r Row
		switch {
		case debugDisableTombstoneSkip:
			r = head.row
		case s.snap == nil:
			r = latestRow(head)
		default:
			r = visibleVersion(head, s.snap)
		}
		if r == nil {
			s.tombSkipped++
			if s.qc != nil {
				s.qc.tombstonesSkipped++
			}
			continue
		}
		if s.qc != nil {
			s.qc.rowsScanned++
			s.scanned++
		}
		return r, true, nil
	}
	return nil, false, nil
}

// valuesOp replays pre-materialised rows (derived tables, join builds).
// src, when set, is the operator the rows were drained from — dead for
// execution, retained so EXPLAIN can show the materialised subtree
// (pushed-down filters, access paths).
type valuesOp struct {
	cols []colInfo
	rows []Row
	src  operator
	pos  int
}

func (v *valuesOp) columns() []colInfo { return v.cols }
func (v *valuesOp) reset()             { v.pos = 0 }
func (v *valuesOp) next() (Row, bool, error) {
	if v.pos >= len(v.rows) {
		return nil, false, nil
	}
	r := v.rows[v.pos]
	v.pos++
	return r, true, nil
}

// corrProbeScanOp serves a correlated equality — `col = <outer expr>`,
// the backbone of EXISTS/IN/scalar subqueries — as a per-probe hash
// lookup instead of a per-probe table scan. The memo (column value key ->
// row ids, heap order) is the table's real equality index when one
// exists, or is built lazily exactly once per statement; every reset()
// — one per outer row under the subplan cache — re-evaluates only the
// outer key expression and serves the matching bucket. Output (matching
// rows, ascending heap order) is identical to scan+filter, so the
// rewrite is invisible to result semantics.
type corrProbeScanOp struct {
	table   *Table
	qual    string
	cols    []colInfo
	column  int
	keyC    compiledExpr // outer-row key, compiled once
	colE    Expr         // retained for EXPLAIN
	keyE    Expr         // retained for EXPLAIN
	idx     *Index       // real equality index, when one covers the column
	fromIdx bool
	qc      *queryCtx

	snap    *snapshot
	memo    map[string][]int
	keyBuf  []byte
	ids     []int
	idsSet  bool
	pos     int
	counted bool
	scanned uint64 // rows this probe read (per-operator EXPLAIN ANALYZE)
}

func (s *corrProbeScanOp) columns() []colInfo { return s.cols }

// reset drops the probe's id window but keeps the memo: the next pull
// re-evaluates the outer key against the new outer row.
func (s *corrProbeScanOp) reset() {
	s.idsSet = false
	s.pos = 0
}

func (s *corrProbeScanOp) next() (Row, bool, error) {
	if !s.idsSet {
		if s.qc != nil {
			s.snap = s.qc.snap
		}
		if s.memo == nil && !s.fromIdx {
			// Build the transient memo from the statement snapshot's view
			// of the table — once per statement.
			arr, n := s.table.loadSlots()
			s.memo = make(map[string][]int, s.table.liveCount())
			var kb []byte
			for id := 0; id < n; id++ {
				var r Row
				if head := arr[id].head.Load(); head != nil {
					if s.snap == nil {
						r = latestRow(head)
					} else {
						r = visibleVersion(head, s.snap)
					}
				}
				if r == nil {
					continue
				}
				kb = appendValueKey(kb[:0], r[s.column])
				s.memo[string(kb)] = append(s.memo[string(kb)], id)
			}
		}
		k, err := s.keyC()
		if err != nil {
			return nil, false, err
		}
		s.ids = nil
		if !k.IsNull() { // col = NULL is never true
			if s.fromIdx {
				// The real index is a superset under MVCC; filter it
				// against the snapshot per probe.
				s.ids = visibleEqIDs(s.table, s.idx, k, s.snap)
			} else {
				s.keyBuf = appendValueKey(s.keyBuf[:0], k)
				s.ids = s.memo[string(s.keyBuf)]
			}
		}
		s.idsSet = true
		if s.qc != nil && !s.counted {
			s.counted = true
			s.qc.indexScans++
		}
	}
	if s.qc != nil {
		if err := s.qc.tickCancelled(); err != nil {
			return nil, false, err
		}
	}
	for s.pos < len(s.ids) {
		id := s.ids[s.pos]
		s.pos++
		r := s.table.visibleRow(id, s.snap)
		if r == nil {
			continue // cannot happen for same-snapshot ids; defensive
		}
		if s.qc != nil {
			s.qc.rowsScanned++
			s.scanned++
		}
		return r, true, nil
	}
	return nil, false, nil
}

// ---------------------------------------------------------------------------
// Filter

// filterOp passes through rows satisfying the predicate (NULL = drop).
type filterOp struct {
	child operator
	pred  Expr // retained for EXPLAIN
	cpred compiledExpr
	env   *evalEnv
}

func newFilterOp(child operator, pred Expr, db *Database, params []Value, outer *evalEnv, qc *queryCtx) (*filterOp, error) {
	env := newEvalEnv(child.columns(), db, params, outer, qc)
	cpred, err := compileExpr(pred, env)
	if err != nil {
		return nil, err
	}
	return &filterOp{child: child, pred: pred, cpred: cpred, env: env}, nil
}

func (f *filterOp) columns() []colInfo { return f.child.columns() }
func (f *filterOp) reset()             { f.child.reset() }

func (f *filterOp) next() (Row, bool, error) {
	for {
		r, ok, err := f.child.next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.env.row = r
		v, err := f.cpred()
		if err != nil {
			return nil, false, err
		}
		if !v.IsNull() && v.AsBool() {
			return r, true, nil
		}
	}
}

// ---------------------------------------------------------------------------
// Joins

// probeJoinCore is the probe loop shared by hash and index joins: stream
// probe rows, evaluate and encode the key, fetch matches through the
// owner's lookup/matchRow hooks, assemble output rows (the probe side
// keeps its syntactic position), apply the residual predicate, and pad
// unmatched LEFT-JOIN probe rows with NULLs.
type probeJoinCore struct {
	probe       operator
	cols        []colInfo // output schema: left columns then right columns
	probeIsLeft bool      // probe side is the syntactic left input
	probeKey    compiledExpr
	probeEnv    *evalEnv
	residual    compiledExpr
	pairEnv     *evalEnv
	leftOuter   bool // only when probeIsLeft
	arena       rowArena
	keyBuf      []byte

	// lookup records the matches for an encoded key and returns their
	// count; matchRow returns the i-th match of the latest lookup.
	lookup   func(key []byte) int
	matchRow func(i int) Row

	cur      Row // current probe row
	matches  int
	matchPos int
	emitted  bool // whether cur produced any output (for LEFT JOIN)
	haveCur  bool
}

// initProbeJoin fills the core's environments and compiles the key and
// residual expressions. cols must already be set.
func (c *probeJoinCore) initProbeJoin(probeKeyE, residual Expr,
	db *Database, params []Value, outer *evalEnv, qc *queryCtx) error {
	var err error
	c.probeEnv = newEvalEnv(c.probe.columns(), db, params, outer, qc)
	if c.probeKey, err = compileExpr(probeKeyE, c.probeEnv); err != nil {
		return err
	}
	c.pairEnv = newEvalEnv(c.cols, db, params, outer, qc)
	if residual != nil {
		if c.residual, err = compileExpr(residual, c.pairEnv); err != nil {
			return err
		}
	}
	return nil
}

func (c *probeJoinCore) columns() []colInfo { return c.cols }
func (c *probeJoinCore) reset() {
	c.probe.reset()
	c.haveCur = false
	c.matches = 0
	c.matchPos = 0
}

func (c *probeJoinCore) next() (Row, bool, error) {
	for {
		if !c.haveCur {
			r, ok, err := c.probe.next()
			if err != nil || !ok {
				return nil, false, err
			}
			c.cur = r
			c.haveCur = true
			c.emitted = false
			c.matchPos = 0
			c.probeEnv.row = r
			k, err := c.probeKey()
			if err != nil {
				return nil, false, err
			}
			c.matches = 0
			if !k.IsNull() { // NULL keys never join
				c.keyBuf = appendValueKey(c.keyBuf[:0], k)
				c.matches = c.lookup(c.keyBuf)
			}
		}
		for c.matchPos < c.matches {
			rr := c.matchRow(c.matchPos)
			c.matchPos++
			out := c.arena.alloc(len(c.cols))
			if c.probeIsLeft {
				n := copy(out, c.cur)
				copy(out[n:], rr)
			} else {
				n := copy(out, rr)
				copy(out[n:], c.cur)
			}
			if c.residual != nil {
				c.pairEnv.row = out
				v, err := c.residual()
				if err != nil {
					return nil, false, err
				}
				if v.IsNull() || !v.AsBool() {
					continue
				}
			}
			c.emitted = true
			return out, true, nil
		}
		// Probe row exhausted its matches.
		if c.leftOuter && !c.emitted {
			c.haveCur = false
			out := c.arena.alloc(len(c.cols))
			n := copy(out, c.cur)
			for i := n; i < len(out); i++ {
				out[i] = Null
			}
			return out, true, nil
		}
		c.haveCur = false
	}
}

// hashJoinOp performs an equi-join: the build side is hashed on its key
// (binary encoding, exact int64 identity); probe rows stream past it. The
// planner picks the smaller input as the build side for inner joins when
// reordering is safe; LEFT JOIN always builds the right input so unmatched
// left rows can be emitted in order. A residual predicate (the non-equi
// remainder of the ON clause) is applied to candidate pairs.
type hashJoinOp struct {
	probeJoinCore
	buildCols   []colInfo
	buildIsLeft bool     // build side is the syntactic left input
	buildSrc    operator // retained for EXPLAIN (rows already drained)
	leftKey     Expr     // retained for EXPLAIN
	rightKey    Expr     // retained for EXPLAIN
	residualE   Expr     // retained for EXPLAIN
	buckets     [][]Row
	keyIndex    map[string]int
	curBucket   []Row

	// Parallel build (parallel.go): when the build side is large enough the
	// table is split into shards keyed by a partition hash; workers encode
	// keys concurrently and each shard is then built by one worker in global
	// row order, so every bucket's contents match the serial build exactly.
	shards       []hashJoinShard
	nKeys        int // distinct keys across the table (both paths)
	buildWorkers int // workers used for a parallel build; 0 = serial
}

// hashJoinShard is one partition of a parallel hash-join build.
type hashJoinShard struct {
	keyIndex map[string]int
	buckets  [][]Row
}

func newHashJoinOp(probe operator, buildCols []colInfo, buildRows []Row,
	probeKeyE, buildKeyE Expr, leftKey, rightKey Expr, residual Expr,
	buildIsLeft, leftOuter bool,
	db *Database, params []Value, outer *evalEnv, qc *queryCtx) (*hashJoinOp, error) {

	var cols []colInfo
	if buildIsLeft {
		cols = append(append([]colInfo{}, buildCols...), probe.columns()...)
	} else {
		cols = append(append([]colInfo{}, probe.columns()...), buildCols...)
	}
	h := &hashJoinOp{
		buildCols:   buildCols,
		buildIsLeft: buildIsLeft,
		leftKey:     leftKey,
		rightKey:    rightKey,
		residualE:   residual,
		keyIndex:    make(map[string]int),
	}
	h.probe = probe
	h.cols = cols
	h.probeIsLeft = !buildIsLeft
	h.leftOuter = leftOuter
	h.matchRow = func(i int) Row { return h.curBucket[i] }

	// Build phase: partitioned-parallel when the build side is large enough
	// and the key expression is safe to evaluate concurrently; serial
	// otherwise. Both paths produce identical buckets (parallel shards keep
	// global row order), so probe results are bit-identical.
	if db != nil && qc != nil && db.maxWorkers > 1 &&
		len(buildRows) >= parallelMinRows && parallelSafeExpr(buildKeyE) {
		if err := h.buildParallel(buildRows, buildKeyE, db, params, outer); err != nil {
			return nil, err
		}
	} else {
		if err := h.buildSerial(buildRows, buildKeyE, db, params, outer, qc); err != nil {
			return nil, err
		}
	}
	if err := h.initProbeJoin(probeKeyE, residual, db, params, outer, qc); err != nil {
		return nil, err
	}
	return h, nil
}

// buildSerial hashes the build rows on the owner goroutine.
func (h *hashJoinOp) buildSerial(buildRows []Row, buildKeyE Expr,
	db *Database, params []Value, outer *evalEnv, qc *queryCtx) error {
	buildEnv := newEvalEnv(h.buildCols, db, params, outer, qc)
	buildKey, err := compileExpr(buildKeyE, buildEnv)
	if err != nil {
		return err
	}
	h.keyIndex = make(map[string]int)
	var kb []byte
	for _, r := range buildRows {
		buildEnv.row = r
		k, err := buildKey()
		if err != nil {
			return err
		}
		if k.IsNull() {
			continue // NULL keys never join
		}
		kb = appendValueKey(kb[:0], k)
		i, ok := h.keyIndex[string(kb)]
		if !ok {
			i = len(h.buckets)
			h.buckets = append(h.buckets, nil)
			h.keyIndex[string(kb)] = i // allocates once per distinct key
		}
		h.buckets[i] = append(h.buckets[i], r)
	}
	h.nKeys = len(h.keyIndex)
	h.lookup = func(key []byte) int {
		if i, ok := h.keyIndex[string(key)]; ok {
			h.curBucket = h.buckets[i]
			return len(h.curBucket)
		}
		h.curBucket = nil
		return 0
	}
	return nil
}

// indexJoinOp performs an equi-join by probing an equality index on a base
// table: for each probe row the key expression is evaluated, encoded, and
// looked up directly in the index — no build phase at all.
type indexJoinOp struct {
	probeJoinCore
	table     *Table
	idx       *Index
	idxCols   []colInfo
	probeKeyE Expr // retained for EXPLAIN
	idxKeyE   Expr // retained for EXPLAIN
	residualE Expr // retained for EXPLAIN
	curRows   []Row
}

func newIndexJoinOp(probe operator, table *Table, idx *Index, idxCols []colInfo,
	probeKeyE, idxKeyE Expr, residual Expr, probeIsLeft, leftOuter bool,
	db *Database, params []Value, outer *evalEnv, qc *queryCtx) (*indexJoinOp, error) {

	var cols []colInfo
	if probeIsLeft {
		cols = append(append([]colInfo{}, probe.columns()...), idxCols...)
	} else {
		cols = append(append([]colInfo{}, idxCols...), probe.columns()...)
	}
	j := &indexJoinOp{
		table:     table,
		idx:       idx,
		idxCols:   idxCols,
		probeKeyE: probeKeyE,
		idxKeyE:   idxKeyE,
		residualE: residual,
	}
	j.probe = probe
	j.cols = cols
	j.probeIsLeft = probeIsLeft
	j.leftOuter = leftOuter
	// Per-probe: copy the posting list under the index latch, then filter
	// it against the statement snapshot (the posting is a superset under
	// MVCC — old and rolled-back versions linger until vacuum).
	j.lookup = func(key []byte) int {
		k := string(key)
		var snap *snapshot
		if qc != nil {
			snap = qc.snap
		}
		j.curRows = j.curRows[:0]
		for _, id := range j.idx.copyIDs(k) {
			r := j.table.visibleRow(id, snap)
			if r != nil && r[j.idx.Column].Key() == k {
				j.curRows = append(j.curRows, r)
			}
		}
		return len(j.curRows)
	}
	j.matchRow = func(i int) Row { return j.curRows[i] }
	if err := j.initProbeJoin(probeKeyE, residual, db, params, outer, qc); err != nil {
		return nil, err
	}
	return j, nil
}

// nestedLoopJoinOp is the fallback join for non-equi ON conditions and
// CROSS joins. The right side is materialised.
type nestedLoopJoinOp struct {
	left      operator
	rightCols []colInfo
	rightRows []Row
	rightSrc  operator // retained for EXPLAIN (rows already drained)
	cols      []colInfo
	on        Expr // retained for EXPLAIN; nil for CROSS
	con       compiledExpr
	leftOuter bool
	env       *evalEnv
	arena     rowArena

	cur      Row
	haveCur  bool
	emitted  bool
	rightPos int
}

func newNestedLoopJoinOp(left operator, rightCols []colInfo, rightRows []Row,
	on Expr, leftOuter bool, db *Database, params []Value, outer *evalEnv, qc *queryCtx) (*nestedLoopJoinOp, error) {
	cols := append(append([]colInfo{}, left.columns()...), rightCols...)
	n := &nestedLoopJoinOp{
		left:      left,
		rightCols: rightCols,
		rightRows: rightRows,
		cols:      cols,
		on:        on,
		leftOuter: leftOuter,
		env:       newEvalEnv(cols, db, params, outer, qc),
	}
	if on != nil {
		var err error
		if n.con, err = compileExpr(on, n.env); err != nil {
			return nil, err
		}
	}
	return n, nil
}

func (n *nestedLoopJoinOp) columns() []colInfo { return n.cols }
func (n *nestedLoopJoinOp) reset() {
	n.left.reset()
	n.haveCur = false
	n.rightPos = 0
}

func (n *nestedLoopJoinOp) next() (Row, bool, error) {
	for {
		if !n.haveCur {
			r, ok, err := n.left.next()
			if err != nil || !ok {
				return nil, false, err
			}
			n.cur = r
			n.haveCur = true
			n.emitted = false
			n.rightPos = 0
		}
		for n.rightPos < len(n.rightRows) {
			rr := n.rightRows[n.rightPos]
			n.rightPos++
			out := n.arena.alloc(len(n.cols))
			c := copy(out, n.cur)
			copy(out[c:], rr)
			if n.con != nil {
				n.env.row = out
				v, err := n.con()
				if err != nil {
					return nil, false, err
				}
				if v.IsNull() || !v.AsBool() {
					continue
				}
			}
			n.emitted = true
			return out, true, nil
		}
		if n.leftOuter && !n.emitted {
			n.haveCur = false
			out := n.arena.alloc(len(n.cols))
			c := copy(out, n.cur)
			for i := c; i < len(out); i++ {
				out[i] = Null
			}
			return out, true, nil
		}
		n.haveCur = false
	}
}

// ---------------------------------------------------------------------------
// SELECT driver

// execSubquery runs a nested SELECT with the enclosing row environment
// available for correlated references, materialising its result (IN
// subqueries need the full set for NULL semantics; EXISTS and scalar
// subqueries stream through buildSelectPlan instead, see compile.go).
func execSubquery(stmt *SelectStmt, outer *evalEnv) ([]Row, []colInfo, error) {
	return execSelect(stmt, outer.db, outer.params, outer, outer.qc)
}

// execSelect plans and runs a nested or subsidiary SELECT, materialising
// its result. Join reordering stays off: the caller may truncate the
// result (a scalar subquery keeps one row, a derived table may feed an
// outer LIMIT), which would make plan choice observable under tied or
// absent orderings.
func execSelect(stmt *SelectStmt, db *Database, params []Value, outer *evalEnv, qc *queryCtx) ([]Row, []colInfo, error) {
	root, cols, err := buildSelectPlan(stmt, db, params, outer, false, qc)
	if err != nil {
		return nil, nil, err
	}
	rows, err := drain(root)
	if err != nil {
		return nil, nil, err
	}
	return rows, cols, nil
}

// evalConst evaluates an expression that must not reference any columns
// (LIMIT/OFFSET operands).
func evalConst(e Expr, db *Database, params []Value, qc *queryCtx) (Value, error) {
	env := newEvalEnv(nil, db, params, nil, qc)
	return evalExpr(e, env)
}

// expandItems resolves `*` and `tbl.*` select items against the input
// schema and derives output column names. Expanded references are stamped
// with their input ordinal so compilation skips name resolution.
func expandItems(items []SelectItem, in []colInfo) ([]SelectItem, []colInfo, error) {
	var out []SelectItem
	for _, it := range items {
		if st, ok := it.Expr.(*Star); ok {
			matched := false
			for i, c := range in {
				if st.Table == "" || strings.EqualFold(st.Table, c.qual) {
					out = append(out, SelectItem{Expr: &ColumnRef{Table: c.qual, Column: c.name, index: i}})
					matched = true
				}
			}
			if !matched {
				return nil, nil, errf(ErrNoColumn, "sql: no columns match %s", st)
			}
			continue
		}
		out = append(out, it)
	}
	cols := make([]colInfo, len(out))
	for i, it := range out {
		switch {
		case it.Alias != "":
			cols[i] = colInfo{name: it.Alias}
		default:
			if cr, ok := it.Expr.(*ColumnRef); ok {
				cols[i] = colInfo{name: cr.Column}
			} else {
				cols[i] = colInfo{name: it.Expr.String()}
			}
		}
	}
	return out, cols, nil
}

// aggGroup is one GROUP BY partition: its key values, its accumulator
// states (one per collected aggregate), and a representative input row for
// non-grouped column references.
type aggGroup struct {
	keys   []Value
	states []aggState
	repRow Row
}

// runAggregation materialises the child, partitions rows by the binary
// encoding of their GROUP BY keys, and accumulates every aggregate the
// query references. Groups come back in first-seen order.
func runAggregation(stmt *SelectStmt, src operator, aggs []*FuncCall,
	db *Database, params []Value, outer *evalEnv, qc *queryCtx) ([]*aggGroup, error) {

	env := newEvalEnv(src.columns(), db, params, outer, qc)
	groupExprs := make([]compiledExpr, len(stmt.GroupBy))
	for i, ge := range stmt.GroupBy {
		c, err := compileExpr(ge, env)
		if err != nil {
			return nil, err
		}
		groupExprs[i] = c
	}
	// Compile each aggregate's argument once; COUNT(*) needs none.
	argExprs := make([]compiledExpr, len(aggs))
	for i, fc := range aggs {
		if fc.Star || len(fc.Args) == 0 {
			continue
		}
		c, err := compileExpr(fc.Args[0], env)
		if err != nil {
			return nil, err
		}
		argExprs[i] = c
	}

	newStates := func() ([]aggState, error) {
		states := make([]aggState, len(aggs))
		for i, fc := range aggs {
			st, err := newAggState(fc)
			if err != nil {
				return nil, err
			}
			states[i] = st
		}
		return states, nil
	}

	index := make(map[string]int)
	var groups []*aggGroup
	keyVals := make([]Value, len(stmt.GroupBy)) // reused per row
	var kb []byte
	for {
		r, ok, err := src.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		env.row = r
		kb = kb[:0]
		for i, ge := range groupExprs {
			v, err := ge()
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
			kb = appendValueKey(kb, v)
		}
		gi, ok := index[string(kb)]
		if !ok {
			states, err := newStates()
			if err != nil {
				return nil, err
			}
			g := &aggGroup{
				keys:   append([]Value{}, keyVals...),
				states: states,
				repRow: r.Clone(),
			}
			gi = len(groups)
			groups = append(groups, g)
			index[string(kb)] = gi // allocates once per distinct group
		}
		g := groups[gi]
		for i, fc := range aggs {
			if fc.Star {
				g.states[i].add(Int(1))
				continue
			}
			if argExprs[i] == nil {
				continue
			}
			v, err := argExprs[i]()
			if err != nil {
				return nil, err
			}
			g.states[i].add(v)
		}
	}

	// A query with aggregates but no GROUP BY always yields one group,
	// even over empty input.
	if len(stmt.GroupBy) == 0 && len(groups) == 0 {
		states, err := newStates()
		if err != nil {
			return nil, err
		}
		repRow := make(Row, len(src.columns()))
		for i := range repRow {
			repRow[i] = Null
		}
		groups = append(groups, &aggGroup{states: states, repRow: repRow})
	}
	return groups, nil
}

// ---------------------------------------------------------------------------
// FROM construction and join planning

// estimateRows returns the number of rows an operator will produce, or an
// upper bound for filters, or -1 when unknown. Used to pick hash-join
// build sides.
func estimateRows(op operator) int {
	switch t := op.(type) {
	case *scanOp:
		if t.ids != nil {
			return len(t.ids)
		}
		if t.rangeIdx != nil {
			return -1 // range ids not yet materialised
		}
		return t.table.liveCount()
	case *valuesOp:
		return len(t.rows)
	case *filterOp:
		return estimateRows(t.child)
	default:
		return -1
	}
}

// indexForJoinKey returns the table's equality index covering key, when key
// is a bare reference to a column of the scanned table.
func indexForJoinKey(sc *scanOp, key Expr) *Index {
	cr, ok := key.(*ColumnRef)
	if !ok {
		return nil
	}
	if cr.Table != "" && !strings.EqualFold(cr.Table, sc.qual) {
		return nil
	}
	return sc.table.idxs()[strings.ToLower(cr.Column)]
}

// buildFrom constructs the operator tree for the FROM clause (including
// joins) and returns the residual WHERE predicate: conjuncts served by
// index lookups or range scans are removed, and single-input conjuncts
// are pushed below the joins onto their owning input (a filter over the
// scan, or an index/range restriction of it) so joins see pre-filtered
// inputs. Conjuncts on the nullable side of a LEFT JOIN are never pushed
// — they must see the NULL-extended rows — and neither are conjuncts
// containing subqueries, ambiguous bare names, or outer references.
//
// Equi-joins are planned in preference order: sort-merge when both inputs
// are unfiltered base tables with indexes on their join keys (and a
// top-level ORDER BY makes reordering safe), index-nested-loop when an
// equality index covers the inner side's key (no build phase at all), then
// hash join with the smaller input as the build side, then hash join with
// the right side built. Plans that change output row order (streaming the
// right input) are only chosen when the statement imposes an ORDER BY.
// Non-equi and CROSS joins fall back to nested loops.
func buildFrom(stmt *SelectStmt, db *Database, params []Value, outer *evalEnv, topLevel bool, qc *queryCtx) (operator, Expr, error) {
	if stmt.From == nil {
		// SELECT without FROM: a single empty row.
		return &valuesOp{cols: nil, rows: []Row{{}}}, stmt.Where, nil
	}
	// Build every input up front so WHERE conjuncts can be classified
	// against the full FROM column set (a bare name is only pushable when
	// exactly one input could own it).
	inputs := make([]operator, 1+len(stmt.Joins))
	var err error
	if inputs[0], err = buildTableRef(*stmt.From, db, params, outer, qc); err != nil {
		return nil, nil, err
	}
	for i, jc := range stmt.Joins {
		if inputs[i+1], err = buildTableRef(jc.Table, db, params, outer, qc); err != nil {
			return nil, nil, err
		}
	}

	pushed, kept := pushdownConjuncts(stmt, inputs)
	for i, cs := range pushed {
		if len(cs) == 0 {
			continue
		}
		if sc, ok := inputs[i].(*scanOp); ok {
			cs = chooseScanAccess(sc, cs)
		}
		if rest := joinConjuncts(cs); rest != nil {
			f, err := newFilterOp(inputs[i], rest, db, params, outer, qc)
			if err != nil {
				return nil, nil, err
			}
			inputs[i] = f
		}
	}
	// Correlated probe rewrite: inside a subquery — the only plan that is
	// pulled repeatedly, once per outer row under the subplan cache — a
	// remaining conjunct `col = <outer expr>` over the single scanned
	// table turns the per-probe scan into a hash lookup (corrProbeScanOp).
	if !topLevel && outer != nil && len(stmt.Joins) == 0 {
		if sc, ok := inputs[0].(*scanOp); ok && unrestrictedScan(sc) {
			op, rest, err := tryCorrelatedProbe(sc, kept, db, params, outer, qc)
			if err != nil {
				return nil, nil, err
			}
			inputs[0], kept = op, rest
		}
	}
	left := inputs[0]
	where := joinConjuncts(kept)

	// Reordering the stream side changes join emission order, which is
	// observable without an ORDER BY — and even with one, tied sort keys
	// preserve emission order, so any truncation of the result (LIMIT or
	// OFFSET, a scalar subquery's single row, a derived table feeding an
	// outer LIMIT) would change which rows are returned, not just their
	// arrangement. Only reorder for a top-level statement whose sorted,
	// untruncated result reaches the caller (tie order within equal keys
	// may still differ, which SQL leaves unspecified).
	allowReorder := topLevel && len(stmt.OrderBy) > 0 && stmt.Limit == nil && stmt.Offset == nil

	for ji, jc := range stmt.Joins {
		rightOp := inputs[ji+1]
		rightCols := rightOp.columns()
		if jc.Kind == JoinCross {
			rightRows, err := drain(rightOp)
			if err != nil {
				return nil, nil, err
			}
			nl, err := newNestedLoopJoinOp(left, rightCols, rightRows, nil, false, db, params, outer, qc)
			if err != nil {
				return nil, nil, err
			}
			nl.rightSrc = rightOp
			left = nl
			continue
		}
		leftOuter := jc.Kind == JoinLeft
		leftKey, rightKey, residual := splitEquiJoin(jc.On, left.columns(), rightCols)
		if leftKey == nil {
			rightRows, err := drain(rightOp)
			if err != nil {
				return nil, nil, err
			}
			nl, err := newNestedLoopJoinOp(left, rightCols, rightRows, jc.On, leftOuter, db, params, outer, qc)
			if err != nil {
				return nil, nil, err
			}
			nl.rightSrc = rightOp
			left = nl
			continue
		}

		// Sort-merge join: both inputs are unfiltered base tables whose
		// join keys are indexed, so both ordered index views stream in key
		// order with no build and no hashing. Output arrives in key order,
		// so this is gated like every order-changing plan.
		if allowReorder && !leftOuter {
			lsc, lok := left.(*scanOp)
			rsc, rok := rightOp.(*scanOp)
			if lok && rok && unrestrictedScan(lsc) && unrestrictedScan(rsc) {
				lidx, ridx := indexForJoinKey(lsc, leftKey), indexForJoinKey(rsc, rightKey)
				if lidx != nil && ridx != nil {
					mj, err := newMergeJoinOp(lsc.table, rsc.table, lidx, ridx,
						left.columns(), rightCols, leftKey, rightKey, residual,
						db, params, outer, qc)
					if err != nil {
						return nil, nil, err
					}
					left = mj
					continue
				}
			}
		}
		// Index-nested-loop: the right side is an unfiltered base table
		// whose join column has an equality index.
		if rsc, ok := rightOp.(*scanOp); ok && unrestrictedScan(rsc) {
			if idx := indexForJoinKey(rsc, rightKey); idx != nil {
				ij, err := newIndexJoinOp(left, rsc.table, idx, rightCols,
					leftKey, rightKey, residual, true, leftOuter, db, params, outer, qc)
				if err != nil {
					return nil, nil, err
				}
				left = ij
				continue
			}
		}
		// Flipped index-nested-loop: the accumulated left side is an
		// indexed base table; stream the right input against it. Inner
		// joins only (unmatched-left tracking needs a left probe).
		if allowReorder && !leftOuter {
			if lsc, ok := left.(*scanOp); ok && unrestrictedScan(lsc) {
				if idx := indexForJoinKey(lsc, leftKey); idx != nil {
					ij, err := newIndexJoinOp(rightOp, lsc.table, idx, left.columns(),
						rightKey, leftKey, residual, false, false, db, params, outer, qc)
					if err != nil {
						return nil, nil, err
					}
					left = ij
					continue
				}
			}
		}

		rightRows, err := drain(rightOp)
		if err != nil {
			return nil, nil, err
		}
		// Hash join: build the smaller input when reordering is safe.
		buildLeft := false
		if allowReorder && !leftOuter {
			if le := estimateRows(left); le >= 0 && le < len(rightRows) {
				buildLeft = true
			}
		}
		var h *hashJoinOp
		if buildLeft {
			leftRows, err := drain(left)
			if err != nil {
				return nil, nil, err
			}
			probe := &valuesOp{cols: rightCols, rows: rightRows, src: rightOp}
			h, err = newHashJoinOp(probe, left.columns(), leftRows,
				rightKey, leftKey, leftKey, rightKey, residual, true, false, db, params, outer, qc)
			if err != nil {
				return nil, nil, err
			}
			h.buildSrc = left
		} else {
			h, err = newHashJoinOp(left, rightCols, rightRows,
				leftKey, rightKey, leftKey, rightKey, residual, false, leftOuter, db, params, outer, qc)
			if err != nil {
				return nil, nil, err
			}
			h.buildSrc = rightOp
		}
		left = h
	}
	return left, where, nil
}

func buildTableRef(tr TableRef, db *Database, params []Value, outer *evalEnv, qc *queryCtx) (operator, error) {
	if tr.Sub != nil {
		// Derived tables materialise during planning (execSelect semantics,
		// reordering off); the drained plan is retained as the valuesOp's
		// src so EXPLAIN can show the subtree and EXPLAIN ANALYZE can
		// attribute the rows its scans read.
		root, cols, err := buildSelectPlan(tr.Sub, db, params, outer, false, qc)
		if err != nil {
			return nil, err
		}
		rows, err := drain(root)
		if err != nil {
			return nil, err
		}
		// Re-qualify the derived table's columns by its alias.
		qcols := make([]colInfo, len(cols))
		for i, c := range cols {
			qcols[i] = colInfo{qual: tr.Alias, name: c.name}
		}
		return &valuesOp{cols: qcols, rows: rows, src: root}, nil
	}
	t, err := db.lookupTable(tr.Name)
	if err != nil {
		return nil, err
	}
	return newScanOp(t, tr.effectiveName(), qc), nil
}

// drain materialises an operator's full output.
func drain(op operator) ([]Row, error) {
	var rows []Row
	for {
		r, ok, err := op.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, r)
	}
}

// isSubqueryNode reports whether x itself embeds a nested SELECT: a
// scalar subquery, EXISTS, or IN (SELECT ...). Shared by the planner's
// rewrite blockers and DML's snapshot gate (hasSubquery, db.go) so the
// classifiers cannot drift apart.
func isSubqueryNode(x Expr) bool {
	switch t := x.(type) {
	case *Subquery, *ExistsExpr:
		return true
	case *InList:
		return t.Sub != nil
	}
	return false
}

// exprBlocksRewrite reports whether x is a node no planner rewrite may
// move or re-home: a subquery (potentially correlated to anything) or an
// aggregate call. Shared by conjunct pushdown and the correlated-probe
// rewrite so the two classifiers cannot drift apart.
func exprBlocksRewrite(x Expr) bool {
	if isSubqueryNode(x) {
		return true
	}
	if fc, ok := x.(*FuncCall); ok {
		return isAggregateName(fc.Name)
	}
	return false
}

// unrestrictedScan reports whether a scan reads its whole table — the
// precondition for serving it through a different access path (index
// join probes, merge join): any id or range restriction must be honoured
// and therefore disqualifies the scan.
func unrestrictedScan(sc *scanOp) bool { return sc.ids == nil && sc.rangeIdx == nil }

// pushdownConjuncts splits the statement's WHERE into conjuncts and
// assigns each to the single FROM input it references, returning the
// per-input lists plus the conjuncts that must stay above the joins.
// A conjunct stays above when it references more than one input, an
// outer scope, an ambiguous bare name, a subquery (potentially
// correlated to anything), or an aggregate — and, regardless of what it
// references, when its target input is the nullable right side of a
// LEFT JOIN (it must see NULL-extended rows, not filter them away
// before they are produced).
func pushdownConjuncts(stmt *SelectStmt, inputs []operator) (pushed [][]Expr, kept []Expr) {
	pushed = make([][]Expr, len(inputs))
	if stmt.Where == nil {
		return pushed, nil
	}
	// Per-input name sets for classification.
	type nameSet struct {
		qual string
		cols map[string]bool
	}
	sets := make([]nameSet, len(inputs))
	bareCount := make(map[string]int)
	for i, in := range inputs {
		cols := make(map[string]bool)
		qual := ""
		for _, c := range in.columns() {
			lower := strings.ToLower(c.name)
			if !cols[lower] {
				cols[lower] = true
				bareCount[lower]++
			}
			if c.qual != "" {
				qual = c.qual
			}
		}
		sets[i] = nameSet{qual: qual, cols: cols}
	}
	ownerOf := func(ref *ColumnRef) int {
		if ref.Table != "" {
			for i, s := range sets {
				if strings.EqualFold(s.qual, ref.Table) {
					return i
				}
			}
			return -1 // outer reference (or error surfaced later)
		}
		lower := strings.ToLower(ref.Column)
		if bareCount[lower] != 1 {
			return -1 // unknown or ambiguous across inputs
		}
		for i, s := range sets {
			if s.cols[lower] {
				return i
			}
		}
		return -1
	}
	for _, c := range splitConjuncts(stmt.Where) {
		owner, pushable := -1, true
		walkExpr(c, func(x Expr) bool {
			if exprBlocksRewrite(x) {
				pushable = false
				return false
			}
			if cr, ok := x.(*ColumnRef); ok {
				o := ownerOf(cr)
				switch {
				case o < 0:
					pushable = false
				case owner == -1:
					owner = o
				case owner != o:
					pushable = false
				}
			}
			return pushable
		})
		if !pushable || owner < 0 {
			kept = append(kept, c)
			continue
		}
		// The right side of a LEFT JOIN must not be filtered early.
		if owner > 0 && stmt.Joins[owner-1].Kind == JoinLeft {
			kept = append(kept, c)
			continue
		}
		pushed[owner] = append(pushed[owner], c)
	}
	return pushed, kept
}

// chooseScanAccess serves what it can of a scan's conjuncts from the
// table's indexes and returns the remainder. Preference order: a single
// `col = literal` equality over an indexed column (hash lookup), then the
// combined range bounds (>, >=, <, <=, BETWEEN with literal bounds) of
// the first indexed column that has any. Equality ids are sorted
// ascending and range ids materialise in heap order (ordidx.go), so
// either access path emits rows exactly as a filtered full scan would.
func chooseScanAccess(sc *scanOp, conjuncts []Expr) []Expr {
	for i, c := range conjuncts {
		b, ok := c.(*BinaryOp)
		if !ok || b.Op != "=" {
			continue
		}
		col, lit := asColLiteral(b.Left, b.Right)
		if col == nil {
			col, lit = asColLiteral(b.Right, b.Left)
		}
		if col == nil {
			continue
		}
		idx := scanIndexFor(sc, col)
		if idx == nil {
			continue
		}
		v := coerce(lit.Val, sc.table.Columns[idx.Column].Type)
		if v.IsNull() {
			// `col = NULL` is never true; serving the NULL key's ids here
			// would wrongly return the NULL-valued rows (the conjunct is
			// removed from the filter). Found by the NoREC metamorphic
			// property: the filtered count must match the per-row count.
			sc.ids = []int{}
		} else {
			var snap *snapshot
			if sc.qc != nil {
				snap = sc.qc.snap
			}
			ids := visibleEqIDs(sc.table, idx, v, snap)
			if ids == nil {
				ids = []int{} // non-nil: an empty restriction, not a full scan
			}
			sc.ids = ids
		}
		return append(append([]Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
	}

	// Range: find the first indexed column with a range conjunct, then
	// absorb every range conjunct on that column into one bound pair.
	var target *Index
	for _, c := range conjuncts {
		col, _, ok := rangeConjunct(c)
		if !ok {
			continue
		}
		if idx := scanIndexFor(sc, col); idx != nil {
			target = idx
			break
		}
	}
	if target == nil {
		return conjuncts
	}
	var spec rangeSpec
	rest := conjuncts[:0:0]
	for _, c := range conjuncts {
		col, cs, ok := rangeConjunct(c)
		if !ok || scanIndexFor(sc, col) != target {
			rest = append(rest, c)
			continue
		}
		spec.lo = tightenLo(spec.lo, cs.lo)
		spec.hi = tightenHi(spec.hi, cs.hi)
	}
	sc.rangeIdx = target
	sc.spec = spec
	return rest
}

// tryCorrelatedProbe rewrites the first conjunct of shape
// `col = <expression over outer scopes only>` into a corrProbeScanOp.
// The memo is the column's real equality index when it has one;
// otherwise a transient hash of the column is built on first pull —
// once per statement, amortised across every outer-row probe.
func tryCorrelatedProbe(sc *scanOp, kept []Expr, db *Database, params []Value, outer *evalEnv, qc *queryCtx) (operator, []Expr, error) {
	local := make(map[string]bool, len(sc.cols))
	for _, c := range sc.cols {
		local[strings.ToLower(c.name)] = true
	}
	localCol := func(cr *ColumnRef) bool {
		if cr.Table != "" && !strings.EqualFold(cr.Table, sc.qual) {
			return false
		}
		return local[strings.ToLower(cr.Column)]
	}
	// outerOnly: the expression references at least one column and every
	// reference resolves outside this scan (bare names resolve innermost
	// first, so any bare local name disqualifies). Subqueries and
	// aggregates are left to the filter.
	outerOnly := func(e Expr) bool {
		ok, hasRef := true, false
		walkExpr(e, func(x Expr) bool {
			if exprBlocksRewrite(x) {
				ok = false
				return false
			}
			if cr, isRef := x.(*ColumnRef); isRef {
				hasRef = true
				if cr.Table == "" {
					if local[strings.ToLower(cr.Column)] {
						ok = false
					}
				} else if strings.EqualFold(cr.Table, sc.qual) {
					ok = false
				}
			}
			return ok
		})
		return ok && hasRef
	}
	for i, c := range kept {
		b, isBin := c.(*BinaryOp)
		if !isBin || b.Op != "=" {
			continue
		}
		var colRef *ColumnRef
		var keyE Expr
		if cr, ok := b.Left.(*ColumnRef); ok && localCol(cr) && outerOnly(b.Right) {
			colRef, keyE = cr, b.Right
		} else if cr, ok := b.Right.(*ColumnRef); ok && localCol(cr) && outerOnly(b.Left) {
			colRef, keyE = cr, b.Left
		} else {
			continue
		}
		ci := sc.table.ColumnIndex(colRef.Column)
		if ci < 0 {
			continue
		}
		env := newEvalEnv(sc.cols, db, params, outer, qc)
		keyC, err := compileExpr(keyE, env)
		if err != nil {
			return nil, nil, err
		}
		op := &corrProbeScanOp{
			table: sc.table, qual: sc.qual, cols: sc.cols, column: ci,
			keyC: keyC, colE: colRef, keyE: keyE, qc: qc,
		}
		if idx, ok := sc.table.idxs()[strings.ToLower(colRef.Column)]; ok {
			op.idx = idx
			op.fromIdx = true
		}
		rest := append(append([]Expr{}, kept[:i]...), kept[i+1:]...)
		return op, rest, nil
	}
	return sc, kept, nil
}

// scanIndexFor returns the scanned table's index over the referenced
// column when the reference addresses this scan (bare or matching
// qualifier), or nil.
func scanIndexFor(sc *scanOp, col *ColumnRef) *Index {
	if col.Table != "" && !strings.EqualFold(col.Table, sc.qual) {
		return nil
	}
	return sc.table.idxs()[strings.ToLower(col.Column)]
}

// rangeConjunct decomposes a conjunct into a column reference and the
// range bounds it contributes: `col > lit`, `>=`, `<`, `<=` (either
// operand order) and `col BETWEEN lo AND hi` with literal bounds. NULL
// literals never match a range (the predicate is NULL for every row), so
// they are left to the filter.
func rangeConjunct(c Expr) (*ColumnRef, rangeSpec, bool) {
	switch t := c.(type) {
	case *BinaryOp:
		var op string
		col, lit := asColLiteral(t.Left, t.Right)
		if col != nil {
			op = t.Op
		} else {
			col, lit = asColLiteral(t.Right, t.Left)
			// Flip the comparison around the literal: `5 < col` is `col > 5`.
			switch t.Op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			default:
				op = t.Op
			}
		}
		if col == nil || lit.Val.IsNull() {
			return nil, rangeSpec{}, false
		}
		switch op {
		case ">":
			return col, rangeSpec{lo: &rangeBound{val: lit.Val}}, true
		case ">=":
			return col, rangeSpec{lo: &rangeBound{val: lit.Val, incl: true}}, true
		case "<":
			return col, rangeSpec{hi: &rangeBound{val: lit.Val}}, true
		case "<=":
			return col, rangeSpec{hi: &rangeBound{val: lit.Val, incl: true}}, true
		}
	case *Between:
		if t.Not {
			return nil, rangeSpec{}, false
		}
		col, ok := t.Expr.(*ColumnRef)
		if !ok {
			return nil, rangeSpec{}, false
		}
		lo, ok1 := t.Lo.(*Literal)
		hi, ok2 := t.Hi.(*Literal)
		if !ok1 || !ok2 || lo.Val.IsNull() || hi.Val.IsNull() {
			return nil, rangeSpec{}, false
		}
		return col, rangeSpec{
			lo: &rangeBound{val: lo.Val, incl: true},
			hi: &rangeBound{val: hi.Val, incl: true},
		}, true
	}
	return nil, rangeSpec{}, false
}

func asColLiteral(a, b Expr) (*ColumnRef, *Literal) {
	col, ok1 := a.(*ColumnRef)
	lit, ok2 := b.(*Literal)
	if ok1 && ok2 {
		return col, lit
	}
	return nil, nil
}

// splitConjuncts flattens a tree of ANDs into a list.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryOp); ok && b.Op == "AND" {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

func joinConjuncts(es []Expr) Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &BinaryOp{Op: "AND", Left: out, Right: e}
	}
	return out
}

// splitEquiJoin inspects an ON clause for an equality between a left-side
// column expression and a right-side one. It returns (leftKey, rightKey,
// residual); leftKey == nil means no hashable equality was found.
func splitEquiJoin(on Expr, leftCols, rightCols []colInfo) (Expr, Expr, Expr) {
	if on == nil {
		return nil, nil, nil
	}
	leftSet := sideSet(leftCols)
	rightSet := sideSet(rightCols)
	conjuncts := splitConjuncts(on)
	for i, c := range conjuncts {
		b, ok := c.(*BinaryOp)
		if !ok || b.Op != "=" {
			continue
		}
		ls, rs := exprSide(b.Left, leftSet, rightSet), exprSide(b.Right, leftSet, rightSet)
		var lk, rk Expr
		switch {
		case ls == sideLeft && rs == sideRight:
			lk, rk = b.Left, b.Right
		case ls == sideRight && rs == sideLeft:
			lk, rk = b.Right, b.Left
		default:
			continue
		}
		rest := append(append([]Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
		return lk, rk, joinConjuncts(rest)
	}
	return nil, nil, nil
}

type side int

const (
	sideNone side = iota
	sideLeft
	sideRight
	sideBoth
)

func sideSet(cols []colInfo) map[string]bool {
	m := make(map[string]bool, len(cols)*2)
	for _, c := range cols {
		m[strings.ToLower(c.name)] = true
		if c.qual != "" {
			m[strings.ToLower(c.qual)+"."+strings.ToLower(c.name)] = true
		}
	}
	return m
}

// exprSide classifies which join side an expression's column references
// belong to.
func exprSide(e Expr, leftSet, rightSet map[string]bool) side {
	s := sideNone
	walkExpr(e, func(x Expr) bool {
		cr, ok := x.(*ColumnRef)
		if !ok {
			return true
		}
		key := strings.ToLower(cr.Column)
		if cr.Table != "" {
			key = strings.ToLower(cr.Table) + "." + key
		}
		inL, inR := leftSet[key], rightSet[key]
		var cs side
		switch {
		case inL && inR:
			cs = sideBoth
		case inL:
			cs = sideLeft
		case inR:
			cs = sideRight
		default:
			cs = sideBoth // unknown (outer reference): be conservative
		}
		switch {
		case s == sideNone:
			s = cs
		case s != cs:
			s = sideBoth
		}
		return true
	})
	return s
}
