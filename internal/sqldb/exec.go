package sqldb

import (
	"sort"
	"strings"
)

// This file implements the FROM/WHERE stages of SELECT execution: a
// volcano-style iterator tree of scans, index lookups, hash,
// index-nested-loop and nested-loop joins. The projection/DISTINCT/
// ORDER BY/LIMIT tail is composed on top by buildSelectPlan (stream.go),
// so the whole statement runs as one pull pipeline; only aggregation and
// sort materialise. Planning compiles every expression into a closure
// (compile.go) and chooses access paths; the per-row path then performs
// no name resolution, no map lookups by column name, and no string
// formatting (row identities use the binary keys of key.go with reused
// scratch buffers). Scans carry the execution's queryCtx, counting rows
// for Database.Stats and sampling context cancellation mid-scan.

// operator is a pull-based row iterator.
type operator interface {
	columns() []colInfo
	// next returns the next row. ok=false signals exhaustion.
	next() (row Row, ok bool, err error)
	// reset rewinds the operator so it can be iterated again (used by
	// nested-loop joins).
	reset()
}

// rowArena hands out output rows carved from larger blocks, amortising the
// one-allocation-per-row cost of joins and projections. Rows escape into
// results, so blocks are never reused; capacities are clamped so appends on
// a handed-out row can never clobber a neighbour.
type rowArena struct {
	buf []Value
}

const rowArenaBlock = 1024

func (a *rowArena) alloc(n int) Row {
	if n == 0 {
		return Row{}
	}
	if len(a.buf) < n {
		size := rowArenaBlock
		if n > size {
			size = n
		}
		a.buf = make([]Value, size)
	}
	r := a.buf[:n:n]
	a.buf = a.buf[n:]
	return r
}

// ---------------------------------------------------------------------------
// Scan

// scanOp iterates a base table's heap, optionally restricted to a set of
// row ids produced by an index lookup.
type scanOp struct {
	table   *Table
	qual    string // alias the table is addressable by
	cols    []colInfo
	ids     []int // nil = full scan
	pos     int
	qc      *queryCtx
	counted bool // access path recorded in qc (once per operator)
}

func newScanOp(t *Table, qual string, qc *queryCtx) *scanOp {
	cols := make([]colInfo, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = colInfo{qual: qual, name: c.Name}
	}
	return &scanOp{table: t, qual: qual, cols: cols, qc: qc}
}

func (s *scanOp) columns() []colInfo { return s.cols }
func (s *scanOp) reset()             { s.pos = 0 }

func (s *scanOp) next() (Row, bool, error) {
	if s.qc != nil {
		if !s.counted {
			s.counted = true
			if s.ids != nil {
				s.qc.indexScans++
			} else {
				s.qc.fullScans++
			}
		}
		if err := s.qc.tickCancelled(); err != nil {
			return nil, false, err
		}
	}
	if s.ids != nil {
		if s.pos >= len(s.ids) {
			return nil, false, nil
		}
		r := s.table.rows[s.ids[s.pos]]
		s.pos++
		if s.qc != nil {
			s.qc.rowsScanned++
		}
		return r, true, nil
	}
	if s.pos >= len(s.table.rows) {
		return nil, false, nil
	}
	r := s.table.rows[s.pos]
	s.pos++
	if s.qc != nil {
		s.qc.rowsScanned++
	}
	return r, true, nil
}

// valuesOp replays pre-materialised rows (derived tables, join builds).
type valuesOp struct {
	cols []colInfo
	rows []Row
	pos  int
}

func (v *valuesOp) columns() []colInfo { return v.cols }
func (v *valuesOp) reset()             { v.pos = 0 }
func (v *valuesOp) next() (Row, bool, error) {
	if v.pos >= len(v.rows) {
		return nil, false, nil
	}
	r := v.rows[v.pos]
	v.pos++
	return r, true, nil
}

// ---------------------------------------------------------------------------
// Filter

// filterOp passes through rows satisfying the predicate (NULL = drop).
type filterOp struct {
	child operator
	pred  Expr // retained for EXPLAIN
	cpred compiledExpr
	env   *evalEnv
}

func newFilterOp(child operator, pred Expr, db *Database, params []Value, outer *evalEnv, qc *queryCtx) (*filterOp, error) {
	env := newEvalEnv(child.columns(), db, params, outer, qc)
	cpred, err := compileExpr(pred, env)
	if err != nil {
		return nil, err
	}
	return &filterOp{child: child, pred: pred, cpred: cpred, env: env}, nil
}

func (f *filterOp) columns() []colInfo { return f.child.columns() }
func (f *filterOp) reset()             { f.child.reset() }

func (f *filterOp) next() (Row, bool, error) {
	for {
		r, ok, err := f.child.next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.env.row = r
		v, err := f.cpred()
		if err != nil {
			return nil, false, err
		}
		if !v.IsNull() && v.AsBool() {
			return r, true, nil
		}
	}
}

// ---------------------------------------------------------------------------
// Joins

// probeJoinCore is the probe loop shared by hash and index joins: stream
// probe rows, evaluate and encode the key, fetch matches through the
// owner's lookup/matchRow hooks, assemble output rows (the probe side
// keeps its syntactic position), apply the residual predicate, and pad
// unmatched LEFT-JOIN probe rows with NULLs.
type probeJoinCore struct {
	probe       operator
	cols        []colInfo // output schema: left columns then right columns
	probeIsLeft bool      // probe side is the syntactic left input
	probeKey    compiledExpr
	probeEnv    *evalEnv
	residual    compiledExpr
	pairEnv     *evalEnv
	leftOuter   bool // only when probeIsLeft
	arena       rowArena
	keyBuf      []byte

	// lookup records the matches for an encoded key and returns their
	// count; matchRow returns the i-th match of the latest lookup.
	lookup   func(key []byte) int
	matchRow func(i int) Row

	cur      Row // current probe row
	matches  int
	matchPos int
	emitted  bool // whether cur produced any output (for LEFT JOIN)
	haveCur  bool
}

// initProbeJoin fills the core's environments and compiles the key and
// residual expressions. cols must already be set.
func (c *probeJoinCore) initProbeJoin(probeKeyE, residual Expr,
	db *Database, params []Value, outer *evalEnv, qc *queryCtx) error {
	var err error
	c.probeEnv = newEvalEnv(c.probe.columns(), db, params, outer, qc)
	if c.probeKey, err = compileExpr(probeKeyE, c.probeEnv); err != nil {
		return err
	}
	c.pairEnv = newEvalEnv(c.cols, db, params, outer, qc)
	if residual != nil {
		if c.residual, err = compileExpr(residual, c.pairEnv); err != nil {
			return err
		}
	}
	return nil
}

func (c *probeJoinCore) columns() []colInfo { return c.cols }
func (c *probeJoinCore) reset() {
	c.probe.reset()
	c.haveCur = false
	c.matches = 0
	c.matchPos = 0
}

func (c *probeJoinCore) next() (Row, bool, error) {
	for {
		if !c.haveCur {
			r, ok, err := c.probe.next()
			if err != nil || !ok {
				return nil, false, err
			}
			c.cur = r
			c.haveCur = true
			c.emitted = false
			c.matchPos = 0
			c.probeEnv.row = r
			k, err := c.probeKey()
			if err != nil {
				return nil, false, err
			}
			c.matches = 0
			if !k.IsNull() { // NULL keys never join
				c.keyBuf = appendValueKey(c.keyBuf[:0], k)
				c.matches = c.lookup(c.keyBuf)
			}
		}
		for c.matchPos < c.matches {
			rr := c.matchRow(c.matchPos)
			c.matchPos++
			out := c.arena.alloc(len(c.cols))
			if c.probeIsLeft {
				n := copy(out, c.cur)
				copy(out[n:], rr)
			} else {
				n := copy(out, rr)
				copy(out[n:], c.cur)
			}
			if c.residual != nil {
				c.pairEnv.row = out
				v, err := c.residual()
				if err != nil {
					return nil, false, err
				}
				if v.IsNull() || !v.AsBool() {
					continue
				}
			}
			c.emitted = true
			return out, true, nil
		}
		// Probe row exhausted its matches.
		if c.leftOuter && !c.emitted {
			c.haveCur = false
			out := c.arena.alloc(len(c.cols))
			n := copy(out, c.cur)
			for i := n; i < len(out); i++ {
				out[i] = Null
			}
			return out, true, nil
		}
		c.haveCur = false
	}
}

// hashJoinOp performs an equi-join: the build side is hashed on its key
// (binary encoding, exact int64 identity); probe rows stream past it. The
// planner picks the smaller input as the build side for inner joins when
// reordering is safe; LEFT JOIN always builds the right input so unmatched
// left rows can be emitted in order. A residual predicate (the non-equi
// remainder of the ON clause) is applied to candidate pairs.
type hashJoinOp struct {
	probeJoinCore
	buildCols   []colInfo
	buildIsLeft bool // build side is the syntactic left input
	leftKey     Expr // retained for EXPLAIN
	rightKey    Expr // retained for EXPLAIN
	residualE   Expr // retained for EXPLAIN
	buckets     [][]Row
	keyIndex    map[string]int
	curBucket   []Row
}

func newHashJoinOp(probe operator, buildCols []colInfo, buildRows []Row,
	probeKeyE, buildKeyE Expr, leftKey, rightKey Expr, residual Expr,
	buildIsLeft, leftOuter bool,
	db *Database, params []Value, outer *evalEnv, qc *queryCtx) (*hashJoinOp, error) {

	var cols []colInfo
	if buildIsLeft {
		cols = append(append([]colInfo{}, buildCols...), probe.columns()...)
	} else {
		cols = append(append([]colInfo{}, probe.columns()...), buildCols...)
	}
	h := &hashJoinOp{
		buildCols:   buildCols,
		buildIsLeft: buildIsLeft,
		leftKey:     leftKey,
		rightKey:    rightKey,
		residualE:   residual,
		keyIndex:    make(map[string]int),
	}
	h.probe = probe
	h.cols = cols
	h.probeIsLeft = !buildIsLeft
	h.leftOuter = leftOuter
	h.lookup = func(key []byte) int {
		if i, ok := h.keyIndex[string(key)]; ok {
			h.curBucket = h.buckets[i]
			return len(h.curBucket)
		}
		h.curBucket = nil
		return 0
	}
	h.matchRow = func(i int) Row { return h.curBucket[i] }

	// Build phase.
	buildEnv := newEvalEnv(buildCols, db, params, outer, qc)
	buildKey, err := compileExpr(buildKeyE, buildEnv)
	if err != nil {
		return nil, err
	}
	var kb []byte
	for _, r := range buildRows {
		buildEnv.row = r
		k, err := buildKey()
		if err != nil {
			return nil, err
		}
		if k.IsNull() {
			continue // NULL keys never join
		}
		kb = appendValueKey(kb[:0], k)
		i, ok := h.keyIndex[string(kb)]
		if !ok {
			i = len(h.buckets)
			h.buckets = append(h.buckets, nil)
			h.keyIndex[string(kb)] = i // allocates once per distinct key
		}
		h.buckets[i] = append(h.buckets[i], r)
	}
	if err := h.initProbeJoin(probeKeyE, residual, db, params, outer, qc); err != nil {
		return nil, err
	}
	return h, nil
}

// indexJoinOp performs an equi-join by probing an equality index on a base
// table: for each probe row the key expression is evaluated, encoded, and
// looked up directly in the index — no build phase at all.
type indexJoinOp struct {
	probeJoinCore
	table     *Table
	idx       *Index
	idxCols   []colInfo
	probeKeyE Expr // retained for EXPLAIN
	idxKeyE   Expr // retained for EXPLAIN
	residualE Expr // retained for EXPLAIN
	curIDs    []int
}

func newIndexJoinOp(probe operator, table *Table, idx *Index, idxCols []colInfo,
	probeKeyE, idxKeyE Expr, residual Expr, probeIsLeft, leftOuter bool,
	db *Database, params []Value, outer *evalEnv, qc *queryCtx) (*indexJoinOp, error) {

	var cols []colInfo
	if probeIsLeft {
		cols = append(append([]colInfo{}, probe.columns()...), idxCols...)
	} else {
		cols = append(append([]colInfo{}, idxCols...), probe.columns()...)
	}
	j := &indexJoinOp{
		table:     table,
		idx:       idx,
		idxCols:   idxCols,
		probeKeyE: probeKeyE,
		idxKeyE:   idxKeyE,
		residualE: residual,
	}
	j.probe = probe
	j.cols = cols
	j.probeIsLeft = probeIsLeft
	j.leftOuter = leftOuter
	j.lookup = func(key []byte) int {
		j.curIDs = j.idx.m[string(key)]
		return len(j.curIDs)
	}
	j.matchRow = func(i int) Row { return j.table.rows[j.curIDs[i]] }
	if err := j.initProbeJoin(probeKeyE, residual, db, params, outer, qc); err != nil {
		return nil, err
	}
	return j, nil
}

// nestedLoopJoinOp is the fallback join for non-equi ON conditions and
// CROSS joins. The right side is materialised.
type nestedLoopJoinOp struct {
	left      operator
	rightCols []colInfo
	rightRows []Row
	cols      []colInfo
	on        Expr // retained for EXPLAIN; nil for CROSS
	con       compiledExpr
	leftOuter bool
	env       *evalEnv
	arena     rowArena

	cur      Row
	haveCur  bool
	emitted  bool
	rightPos int
}

func newNestedLoopJoinOp(left operator, rightCols []colInfo, rightRows []Row,
	on Expr, leftOuter bool, db *Database, params []Value, outer *evalEnv, qc *queryCtx) (*nestedLoopJoinOp, error) {
	cols := append(append([]colInfo{}, left.columns()...), rightCols...)
	n := &nestedLoopJoinOp{
		left:      left,
		rightCols: rightCols,
		rightRows: rightRows,
		cols:      cols,
		on:        on,
		leftOuter: leftOuter,
		env:       newEvalEnv(cols, db, params, outer, qc),
	}
	if on != nil {
		var err error
		if n.con, err = compileExpr(on, n.env); err != nil {
			return nil, err
		}
	}
	return n, nil
}

func (n *nestedLoopJoinOp) columns() []colInfo { return n.cols }
func (n *nestedLoopJoinOp) reset() {
	n.left.reset()
	n.haveCur = false
	n.rightPos = 0
}

func (n *nestedLoopJoinOp) next() (Row, bool, error) {
	for {
		if !n.haveCur {
			r, ok, err := n.left.next()
			if err != nil || !ok {
				return nil, false, err
			}
			n.cur = r
			n.haveCur = true
			n.emitted = false
			n.rightPos = 0
		}
		for n.rightPos < len(n.rightRows) {
			rr := n.rightRows[n.rightPos]
			n.rightPos++
			out := n.arena.alloc(len(n.cols))
			c := copy(out, n.cur)
			copy(out[c:], rr)
			if n.con != nil {
				n.env.row = out
				v, err := n.con()
				if err != nil {
					return nil, false, err
				}
				if v.IsNull() || !v.AsBool() {
					continue
				}
			}
			n.emitted = true
			return out, true, nil
		}
		if n.leftOuter && !n.emitted {
			n.haveCur = false
			out := n.arena.alloc(len(n.cols))
			c := copy(out, n.cur)
			for i := c; i < len(out); i++ {
				out[i] = Null
			}
			return out, true, nil
		}
		n.haveCur = false
	}
}

// ---------------------------------------------------------------------------
// SELECT driver

// execSubquery runs a nested SELECT with the enclosing row environment
// available for correlated references, materialising its result (IN
// subqueries need the full set for NULL semantics; EXISTS and scalar
// subqueries stream through buildSelectPlan instead, see compile.go).
func execSubquery(stmt *SelectStmt, outer *evalEnv) ([]Row, []colInfo, error) {
	return execSelect(stmt, outer.db, outer.params, outer, outer.qc)
}

// execSelect plans and runs a nested or subsidiary SELECT, materialising
// its result. Join reordering stays off: the caller may truncate the
// result (a scalar subquery keeps one row, a derived table may feed an
// outer LIMIT), which would make plan choice observable under tied or
// absent orderings.
func execSelect(stmt *SelectStmt, db *Database, params []Value, outer *evalEnv, qc *queryCtx) ([]Row, []colInfo, error) {
	root, cols, err := buildSelectPlan(stmt, db, params, outer, false, qc)
	if err != nil {
		return nil, nil, err
	}
	rows, err := drain(root)
	if err != nil {
		return nil, nil, err
	}
	return rows, cols, nil
}

// evalConst evaluates an expression that must not reference any columns
// (LIMIT/OFFSET operands).
func evalConst(e Expr, db *Database, params []Value, qc *queryCtx) (Value, error) {
	env := newEvalEnv(nil, db, params, nil, qc)
	return evalExpr(e, env)
}

// expandItems resolves `*` and `tbl.*` select items against the input
// schema and derives output column names. Expanded references are stamped
// with their input ordinal so compilation skips name resolution.
func expandItems(items []SelectItem, in []colInfo) ([]SelectItem, []colInfo, error) {
	var out []SelectItem
	for _, it := range items {
		if st, ok := it.Expr.(*Star); ok {
			matched := false
			for i, c := range in {
				if st.Table == "" || strings.EqualFold(st.Table, c.qual) {
					out = append(out, SelectItem{Expr: &ColumnRef{Table: c.qual, Column: c.name, index: i}})
					matched = true
				}
			}
			if !matched {
				return nil, nil, errf(ErrNoColumn, "sql: no columns match %s", st)
			}
			continue
		}
		out = append(out, it)
	}
	cols := make([]colInfo, len(out))
	for i, it := range out {
		switch {
		case it.Alias != "":
			cols[i] = colInfo{name: it.Alias}
		default:
			if cr, ok := it.Expr.(*ColumnRef); ok {
				cols[i] = colInfo{name: cr.Column}
			} else {
				cols[i] = colInfo{name: it.Expr.String()}
			}
		}
	}
	return out, cols, nil
}

// aggGroup is one GROUP BY partition: its key values, its accumulator
// states (one per collected aggregate), and a representative input row for
// non-grouped column references.
type aggGroup struct {
	keys   []Value
	states []aggState
	repRow Row
}

// runAggregation materialises the child, partitions rows by the binary
// encoding of their GROUP BY keys, and accumulates every aggregate the
// query references. Groups come back in first-seen order.
func runAggregation(stmt *SelectStmt, src operator, aggs []*FuncCall,
	db *Database, params []Value, outer *evalEnv, qc *queryCtx) ([]*aggGroup, error) {

	env := newEvalEnv(src.columns(), db, params, outer, qc)
	groupExprs := make([]compiledExpr, len(stmt.GroupBy))
	for i, ge := range stmt.GroupBy {
		c, err := compileExpr(ge, env)
		if err != nil {
			return nil, err
		}
		groupExprs[i] = c
	}
	// Compile each aggregate's argument once; COUNT(*) needs none.
	argExprs := make([]compiledExpr, len(aggs))
	for i, fc := range aggs {
		if fc.Star || len(fc.Args) == 0 {
			continue
		}
		c, err := compileExpr(fc.Args[0], env)
		if err != nil {
			return nil, err
		}
		argExprs[i] = c
	}

	newStates := func() ([]aggState, error) {
		states := make([]aggState, len(aggs))
		for i, fc := range aggs {
			st, err := newAggState(fc)
			if err != nil {
				return nil, err
			}
			states[i] = st
		}
		return states, nil
	}

	index := make(map[string]int)
	var groups []*aggGroup
	keyVals := make([]Value, len(stmt.GroupBy)) // reused per row
	var kb []byte
	for {
		r, ok, err := src.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		env.row = r
		kb = kb[:0]
		for i, ge := range groupExprs {
			v, err := ge()
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
			kb = appendValueKey(kb, v)
		}
		gi, ok := index[string(kb)]
		if !ok {
			states, err := newStates()
			if err != nil {
				return nil, err
			}
			g := &aggGroup{
				keys:   append([]Value{}, keyVals...),
				states: states,
				repRow: r.Clone(),
			}
			gi = len(groups)
			groups = append(groups, g)
			index[string(kb)] = gi // allocates once per distinct group
		}
		g := groups[gi]
		for i, fc := range aggs {
			if fc.Star {
				g.states[i].add(Int(1))
				continue
			}
			if argExprs[i] == nil {
				continue
			}
			v, err := argExprs[i]()
			if err != nil {
				return nil, err
			}
			g.states[i].add(v)
		}
	}

	// A query with aggregates but no GROUP BY always yields one group,
	// even over empty input.
	if len(stmt.GroupBy) == 0 && len(groups) == 0 {
		states, err := newStates()
		if err != nil {
			return nil, err
		}
		repRow := make(Row, len(src.columns()))
		for i := range repRow {
			repRow[i] = Null
		}
		groups = append(groups, &aggGroup{states: states, repRow: repRow})
	}
	return groups, nil
}

// ---------------------------------------------------------------------------
// FROM construction and join planning

// estimateRows returns the number of rows an operator will produce, or an
// upper bound for filters, or -1 when unknown. Used to pick hash-join
// build sides.
func estimateRows(op operator) int {
	switch t := op.(type) {
	case *scanOp:
		if t.ids != nil {
			return len(t.ids)
		}
		return len(t.table.rows)
	case *valuesOp:
		return len(t.rows)
	case *filterOp:
		return estimateRows(t.child)
	default:
		return -1
	}
}

// indexForJoinKey returns the table's equality index covering key, when key
// is a bare reference to a column of the scanned table.
func indexForJoinKey(sc *scanOp, key Expr) *Index {
	cr, ok := key.(*ColumnRef)
	if !ok {
		return nil
	}
	if cr.Table != "" && !strings.EqualFold(cr.Table, sc.qual) {
		return nil
	}
	return sc.table.indexes[strings.ToLower(cr.Column)]
}

// buildFrom constructs the operator tree for the FROM clause (including
// joins) and returns the possibly simplified WHERE predicate (index-served
// conjuncts are removed).
//
// Equi-joins are planned in preference order: index-nested-loop when an
// equality index covers the inner side's key (no build phase at all), then
// hash join with the smaller input as the build side, then hash join with
// the right side built. Plans that change output row order (streaming the
// right input) are only chosen when the statement imposes an ORDER BY.
// Non-equi and CROSS joins fall back to nested loops.
func buildFrom(stmt *SelectStmt, db *Database, params []Value, outer *evalEnv, topLevel bool, qc *queryCtx) (operator, Expr, error) {
	if stmt.From == nil {
		// SELECT without FROM: a single empty row.
		return &valuesOp{cols: nil, rows: []Row{{}}}, stmt.Where, nil
	}
	left, err := buildTableRef(*stmt.From, db, params, outer, qc)
	if err != nil {
		return nil, nil, err
	}
	where := stmt.Where

	// Index selection: only for a single-table FROM with no joins, where a
	// top-level conjunct is `col = literal` over an indexed column.
	if len(stmt.Joins) == 0 {
		if sc, ok := left.(*scanOp); ok && where != nil {
			where = tryIndexScan(sc, where)
		}
	}

	// Reordering the stream side changes join emission order, which is
	// observable without an ORDER BY — and even with one, tied sort keys
	// preserve emission order, so any truncation of the result (LIMIT or
	// OFFSET, a scalar subquery's single row, a derived table feeding an
	// outer LIMIT) would change which rows are returned, not just their
	// arrangement. Only reorder for a top-level statement whose sorted,
	// untruncated result reaches the caller (tie order within equal keys
	// may still differ, which SQL leaves unspecified).
	allowReorder := topLevel && len(stmt.OrderBy) > 0 && stmt.Limit == nil && stmt.Offset == nil

	for _, jc := range stmt.Joins {
		rightOp, err := buildTableRef(jc.Table, db, params, outer, qc)
		if err != nil {
			return nil, nil, err
		}
		rightCols := rightOp.columns()
		if jc.Kind == JoinCross {
			rightRows, err := drain(rightOp)
			if err != nil {
				return nil, nil, err
			}
			nl, err := newNestedLoopJoinOp(left, rightCols, rightRows, nil, false, db, params, outer, qc)
			if err != nil {
				return nil, nil, err
			}
			left = nl
			continue
		}
		leftOuter := jc.Kind == JoinLeft
		leftKey, rightKey, residual := splitEquiJoin(jc.On, left.columns(), rightCols)
		if leftKey == nil {
			rightRows, err := drain(rightOp)
			if err != nil {
				return nil, nil, err
			}
			nl, err := newNestedLoopJoinOp(left, rightCols, rightRows, jc.On, leftOuter, db, params, outer, qc)
			if err != nil {
				return nil, nil, err
			}
			left = nl
			continue
		}

		// Index-nested-loop: the right side is an unfiltered base table
		// whose join column has an equality index.
		if rsc, ok := rightOp.(*scanOp); ok && rsc.ids == nil {
			if idx := indexForJoinKey(rsc, rightKey); idx != nil {
				ij, err := newIndexJoinOp(left, rsc.table, idx, rightCols,
					leftKey, rightKey, residual, true, leftOuter, db, params, outer, qc)
				if err != nil {
					return nil, nil, err
				}
				left = ij
				continue
			}
		}
		// Flipped index-nested-loop: the accumulated left side is an
		// indexed base table; stream the right input against it. Inner
		// joins only (unmatched-left tracking needs a left probe).
		if allowReorder && !leftOuter {
			if lsc, ok := left.(*scanOp); ok && lsc.ids == nil {
				if idx := indexForJoinKey(lsc, leftKey); idx != nil {
					ij, err := newIndexJoinOp(rightOp, lsc.table, idx, left.columns(),
						rightKey, leftKey, residual, false, false, db, params, outer, qc)
					if err != nil {
						return nil, nil, err
					}
					left = ij
					continue
				}
			}
		}

		rightRows, err := drain(rightOp)
		if err != nil {
			return nil, nil, err
		}
		// Hash join: build the smaller input when reordering is safe.
		buildLeft := false
		if allowReorder && !leftOuter {
			if le := estimateRows(left); le >= 0 && le < len(rightRows) {
				buildLeft = true
			}
		}
		var h *hashJoinOp
		if buildLeft {
			leftRows, err := drain(left)
			if err != nil {
				return nil, nil, err
			}
			probe := &valuesOp{cols: rightCols, rows: rightRows}
			h, err = newHashJoinOp(probe, left.columns(), leftRows,
				rightKey, leftKey, leftKey, rightKey, residual, true, false, db, params, outer, qc)
			if err != nil {
				return nil, nil, err
			}
		} else {
			h, err = newHashJoinOp(left, rightCols, rightRows,
				leftKey, rightKey, leftKey, rightKey, residual, false, leftOuter, db, params, outer, qc)
			if err != nil {
				return nil, nil, err
			}
		}
		left = h
	}
	return left, where, nil
}

func buildTableRef(tr TableRef, db *Database, params []Value, outer *evalEnv, qc *queryCtx) (operator, error) {
	if tr.Sub != nil {
		rows, cols, err := execSelect(tr.Sub, db, params, outer, qc)
		if err != nil {
			return nil, err
		}
		// Re-qualify the derived table's columns by its alias.
		qcols := make([]colInfo, len(cols))
		for i, c := range cols {
			qcols[i] = colInfo{qual: tr.Alias, name: c.name}
		}
		return &valuesOp{cols: qcols, rows: rows}, nil
	}
	t, err := db.tableLocked(tr.Name)
	if err != nil {
		return nil, err
	}
	return newScanOp(t, tr.effectiveName(), qc), nil
}

// drain materialises an operator's full output.
func drain(op operator) ([]Row, error) {
	var rows []Row
	for {
		r, ok, err := op.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, r)
	}
}

// tryIndexScan rewrites `scan + (col = literal AND rest)` into an index
// lookup plus `rest` when an equality index exists. Returns the residual
// predicate (possibly nil).
func tryIndexScan(sc *scanOp, where Expr) Expr {
	conjuncts := splitConjuncts(where)
	for i, c := range conjuncts {
		b, ok := c.(*BinaryOp)
		if !ok || b.Op != "=" {
			continue
		}
		col, lit := asColLiteral(b.Left, b.Right)
		if col == nil {
			col, lit = asColLiteral(b.Right, b.Left)
		}
		if col == nil {
			continue
		}
		if col.Table != "" && !strings.EqualFold(col.Table, sc.qual) {
			continue
		}
		idx, ok := sc.table.indexes[strings.ToLower(col.Column)]
		if !ok {
			continue
		}
		ids := idx.lookup(coerce(lit.Val, sc.table.Columns[idx.Column].Type))
		sc.ids = append([]int{}, ids...)
		sort.Ints(sc.ids)
		rest := append(append([]Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
		return joinConjuncts(rest)
	}
	return where
}

func asColLiteral(a, b Expr) (*ColumnRef, *Literal) {
	col, ok1 := a.(*ColumnRef)
	lit, ok2 := b.(*Literal)
	if ok1 && ok2 {
		return col, lit
	}
	return nil, nil
}

// splitConjuncts flattens a tree of ANDs into a list.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryOp); ok && b.Op == "AND" {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

func joinConjuncts(es []Expr) Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &BinaryOp{Op: "AND", Left: out, Right: e}
	}
	return out
}

// splitEquiJoin inspects an ON clause for an equality between a left-side
// column expression and a right-side one. It returns (leftKey, rightKey,
// residual); leftKey == nil means no hashable equality was found.
func splitEquiJoin(on Expr, leftCols, rightCols []colInfo) (Expr, Expr, Expr) {
	if on == nil {
		return nil, nil, nil
	}
	leftSet := sideSet(leftCols)
	rightSet := sideSet(rightCols)
	conjuncts := splitConjuncts(on)
	for i, c := range conjuncts {
		b, ok := c.(*BinaryOp)
		if !ok || b.Op != "=" {
			continue
		}
		ls, rs := exprSide(b.Left, leftSet, rightSet), exprSide(b.Right, leftSet, rightSet)
		var lk, rk Expr
		switch {
		case ls == sideLeft && rs == sideRight:
			lk, rk = b.Left, b.Right
		case ls == sideRight && rs == sideLeft:
			lk, rk = b.Right, b.Left
		default:
			continue
		}
		rest := append(append([]Expr{}, conjuncts[:i]...), conjuncts[i+1:]...)
		return lk, rk, joinConjuncts(rest)
	}
	return nil, nil, nil
}

type side int

const (
	sideNone side = iota
	sideLeft
	sideRight
	sideBoth
)

func sideSet(cols []colInfo) map[string]bool {
	m := make(map[string]bool, len(cols)*2)
	for _, c := range cols {
		m[strings.ToLower(c.name)] = true
		if c.qual != "" {
			m[strings.ToLower(c.qual)+"."+strings.ToLower(c.name)] = true
		}
	}
	return m
}

// exprSide classifies which join side an expression's column references
// belong to.
func exprSide(e Expr, leftSet, rightSet map[string]bool) side {
	s := sideNone
	walkExpr(e, func(x Expr) bool {
		cr, ok := x.(*ColumnRef)
		if !ok {
			return true
		}
		key := strings.ToLower(cr.Column)
		if cr.Table != "" {
			key = strings.ToLower(cr.Table) + "." + key
		}
		inL, inR := leftSet[key], rightSet[key]
		var cs side
		switch {
		case inL && inR:
			cs = sideBoth
		case inL:
			cs = sideLeft
		case inR:
			cs = sideRight
		default:
			cs = sideBoth // unknown (outer reference): be conservative
		}
		switch {
		case s == sideNone:
			s = cs
		case s != cs:
			s = sideBoth
		}
		return true
	})
	return s
}
