package sqldb

import "context"

// Rows is a streaming cursor over a SELECT's result: the database/sql-style
// pull API of this engine. Rows flow one at a time from the underlying
// operator tree, so a caller that stops early (LIMIT-like consumption,
// first-match probes) never pays for rows it does not read, and context
// cancellation stops an in-flight scan.
//
//	rows, err := db.QueryRows(ctx, "SELECT name, score FROM players WHERE score > ?", 10)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		var name string
//		var score float64
//		if err := rows.Scan(&name, &score); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// The cursor holds an MVCC snapshot, not a lock: writers never wait for
// an open cursor, and commits that land mid-iteration are invisible to
// it — the cursor returns exactly the rows its snapshot saw. Still always
// Close (Next returning false closes automatically, and Close is
// idempotent): the snapshot reference pins the vacuum horizon until it is
// released. A Rows is not safe for concurrent use by multiple goroutines.
type Rows struct {
	db     *Database
	qc     *queryCtx
	root   operator
	cols   []string
	cur    Row
	err    error
	closed bool
}

// QueryRows executes a SELECT and returns a streaming cursor positioned
// before the first row. Parses are served from the LRU plan cache.
func (db *Database) QueryRows(ctx context.Context, sql string, params ...any) (*Rows, error) {
	sel, err := db.plans.lookup(sql, "QueryRows")
	if err != nil {
		return nil, err
	}
	return db.queryRows(ctx, sel, bindParams(params), nil)
}

// queryRows plans sel against a freshly captured (or, inside a
// transaction, shared) snapshot and hands the snapshot reference to the
// returned cursor; Close releases it. On error it is released here.
func (db *Database) queryRows(ctx context.Context, sel *SelectStmt, vals []Value, tx *Txn) (*Rows, error) {
	qc := newQueryCtx(ctx, db)
	qc.queries = 1 // counted into Database.Stats when the recorder flushes
	if err := qc.cancelled(); err != nil {
		qc.flush()
		return nil, err
	}
	snap, release := db.beginRead(tx)
	qc.snap = snap
	qc.releaseSnap = release
	root, cols, err := buildSelectPlan(sel, db, vals, nil, true, qc)
	if err != nil {
		qc.stopWorkers()
		qc.flush() // flush releases the snapshot reference
		return nil, err
	}
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.name
	}
	db.stats.openCursors.Add(1)
	return &Rows{db: db, qc: qc, root: root, cols: names}, nil
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Next advances to the next row, reporting false at the end of the result
// or on error (check Err afterwards). Exhaustion, an execution error, and
// context cancellation all close the cursor.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if err := r.qc.cancelled(); err != nil {
		r.fail(err)
		return false
	}
	row, ok, err := r.root.next()
	if err != nil {
		r.fail(err)
		return false
	}
	if !ok {
		r.cur = nil
		r.Close()
		return false
	}
	r.cur = row
	r.qc.rowsEmitted++
	return true
}

func (r *Rows) fail(err error) {
	r.err = err
	r.cur = nil
	r.Close()
}

// Row returns the current row (valid after a true Next). The returned
// slice is owned by the result and must not be mutated.
func (r *Rows) Row() Row { return r.cur }

// Scan copies the current row into the destinations: one per column, each
// a *string, *int, *int64, *float64, *bool, *Value or *any (nil discards
// the column). Conversions follow the Value accessors (AsText, AsInt, …).
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return errf(ErrCursor, "sql: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur) {
		return errf(ErrCursor, "sql: Scan expects %d destinations, got %d", len(r.cur), len(dest))
	}
	for i, d := range dest {
		v := r.cur[i]
		switch p := d.(type) {
		case nil:
			// discard
		case *Value:
			*p = v
		case *string:
			*p = v.AsText()
		case *int:
			*p = int(v.AsInt())
		case *int64:
			*p = v.AsInt()
		case *float64:
			*p = v.AsFloat()
		case *bool:
			*p = v.AsBool()
		case *any:
			if v.IsNull() {
				*p = nil
			} else {
				switch v.Kind() {
				case KindInt:
					*p = v.AsInt()
				case KindFloat:
					*p = v.AsFloat()
				case KindBool:
					*p = v.AsBool()
				default:
					*p = v.AsText()
				}
			}
		default:
			return errf(ErrCursor, "sql: Scan destination %d has unsupported type %T", i, d)
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any. It is nil
// after a result was exhausted normally.
func (r *Rows) Err() error { return r.err }

// Stats reports this query's own execution counters: rows scanned and
// emitted so far, access paths taken, subplan-cache behaviour, and
// elapsed wall time. Unlike Database.Stats it covers exactly this
// statement — mid-iteration it shows work done so far; after Close (or
// an exhausting Next loop) it is the query's final total, the precise
// amount this execution contributed to the engine-wide aggregate. Like
// the cursor itself, it is not safe for concurrent use with Next.
func (r *Rows) Stats() QueryStats { return r.qc.snapshot() }

// Close releases the cursor: any parallel-scan workers are stopped and
// joined (they read table data through the cursor's snapshot, so this
// must happen first), then the snapshot reference is released — letting
// the vacuum horizon advance past it — and the execution's counters are
// folded into Database.Stats. Idempotent; safe to defer alongside an
// exhaustive Next loop.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.cur = nil
	r.qc.stopWorkers()
	r.db.stats.openCursors.Add(-1)
	r.qc.flush() // releases the cursor's snapshot reference
	return nil
}

// Collect drains the cursor into a materialised Result and closes it —
// the bridge from the streaming API to the old eager one (Database.Query
// is QueryRows + Collect).
func (r *Rows) Collect() (*Result, error) {
	defer r.Close()
	var rows []Row
	for r.Next() {
		rows = append(rows, r.cur)
	}
	if r.err != nil {
		return nil, r.err
	}
	return &Result{Columns: r.cols, Rows: rows}, nil
}
