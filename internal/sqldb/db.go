package sqldb

import (
	"context"
	"fmt"
	"strings"
)

// Result is a fully materialised query result — what Rows.Collect
// returns. Callers that consume rows incrementally (or stop early) should
// prefer Database.QueryRows.
type Result struct {
	Columns []string
	Rows    []Row
}

// ColumnIndex returns the ordinal of the named result column
// (case-insensitive), or -1.
func (r *Result) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Value returns the value at (row, named column). Missing columns or
// out-of-range rows return NULL.
func (r *Result) Value(row int, col string) Value {
	i := r.ColumnIndex(col)
	if i < 0 || row < 0 || row >= len(r.Rows) {
		return Null
	}
	return r.Rows[row][i]
}

// String renders the result as an aligned text table (for the CLI shell and
// for debugging).
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.AsText()
			if v.IsNull() {
				s = "NULL"
			}
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(pad(c, widths[i]))
	}
	b.WriteByte('\n')
	for i := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(s, widths[i]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Query executes a SELECT statement, materialising its rows. It is
// Collect over QueryRows: parses are served from the database's LRU plan
// cache, so repeated queries skip the parser; callers executing one
// statement many times can also hold a *Stmt from Prepare, and callers
// that consume rows incrementally should use QueryRows directly.
func (db *Database) Query(sql string, params ...any) (*Result, error) {
	return db.QueryContext(context.Background(), sql, params...)
}

// QueryContext is Query under a context: cancellation or deadline expiry
// stops the scan mid-flight with an ErrCanceled error.
func (db *Database) QueryContext(ctx context.Context, sql string, params ...any) (*Result, error) {
	rows, err := db.QueryRows(ctx, sql, params...)
	if err != nil {
		return nil, err
	}
	return rows.Collect()
}

// QueryStmt executes an already parsed SELECT, materialising its rows.
func (db *Database) QueryStmt(sel *SelectStmt, params ...any) (*Result, error) {
	return db.QueryStmtContext(context.Background(), sel, params...)
}

// QueryStmtContext is QueryStmt under a context.
func (db *Database) QueryStmtContext(ctx context.Context, sel *SelectStmt, params ...any) (*Result, error) {
	rows, err := db.queryRows(ctx, sel, bindParams(params))
	if err != nil {
		return nil, err
	}
	return rows.Collect()
}

// Exec parses and executes any statement. For SELECT it streams rows to
// /dev/null and returns their count; for DML it returns the number of
// affected rows; for DDL it returns 0.
func (db *Database) Exec(sql string, params ...any) (int, error) {
	return db.ExecContext(context.Background(), sql, params...)
}

// ExecContext is Exec under a context: long scans and DML loops observe
// cancellation mid-flight.
func (db *Database) ExecContext(ctx context.Context, sql string, params ...any) (int, error) {
	stmts, err := ParseAll(sql)
	if err != nil {
		return 0, err
	}
	qc := newQueryCtx(ctx, db)
	defer qc.flush()
	total := 0
	for _, stmt := range stmts {
		if err := qc.cancelled(); err != nil {
			return total, err
		}
		n, err := db.execStmt(stmt, bindParams(params), qc)
		// DML applies partially on a mid-loop error or cancellation (the
		// in-place paths keep their documented early-exit invariants), so
		// the affected-row count is accumulated even when err != nil.
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// MustExec is Exec that panics on error — intended for test fixtures and
// generated data loading where failure is a programming bug.
func (db *Database) MustExec(sql string, params ...any) {
	if _, err := db.Exec(sql, params...); err != nil {
		panic(fmt.Sprintf("sqldb: MustExec(%.80q): %v", sql, err))
	}
}

func bindParams(params []any) []Value {
	vals := make([]Value, len(params))
	for i, p := range params {
		vals[i] = GoValue(p)
	}
	return vals
}

func (db *Database) execStmt(stmt Statement, params []Value, qc *queryCtx) (int, error) {
	switch t := stmt.(type) {
	case *SelectStmt:
		// Stream the plan and count: rows are never materialised, and a
		// LIMIT stops the scan early.
		qc.queries++
		db.mu.RLock()
		defer db.mu.RUnlock()
		root, _, err := buildSelectPlan(t, db, params, nil, true, qc)
		if err != nil {
			return 0, err
		}
		n := 0
		for {
			_, ok, err := root.next()
			if err != nil {
				return n, err
			}
			if !ok {
				return n, nil
			}
			n++
			qc.rowsEmitted++
		}
	case *CreateTableStmt:
		qc.execs++
		return 0, db.createTable(t)
	case *CreateIndexStmt:
		qc.execs++
		return 0, db.createIndex(t)
	case *DropTableStmt:
		qc.execs++
		return 0, db.dropTable(t)
	case *InsertStmt:
		qc.execs++
		return db.execInsert(t, params, qc)
	case *UpdateStmt:
		qc.execs++
		return db.execUpdate(t, params, qc)
	case *DeleteStmt:
		qc.execs++
		return db.execDelete(t, params, qc)
	default:
		return 0, errf(ErrMisuse, "sql: cannot execute %T", stmt)
	}
}

func (db *Database) createTable(stmt *CreateTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(stmt.Name)
	if _, exists := db.tables[key]; exists {
		if stmt.IfNotExists {
			return nil
		}
		return errf(ErrSchema, "sql: table %s already exists", stmt.Name)
	}
	t, err := newTable(stmt)
	if err != nil {
		return err
	}
	db.tables[key] = t
	return nil
}

func (db *Database) createIndex(stmt *CreateIndexStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(stmt.Table)
	if err != nil {
		return err
	}
	ci := t.ColumnIndex(stmt.Column)
	if ci < 0 {
		return errf(ErrNoColumn, "sql: no such column %s.%s", stmt.Table, stmt.Column)
	}
	key := strings.ToLower(stmt.Column)
	if _, exists := t.indexes[key]; exists {
		return nil // idempotent: one index per column is all we support
	}
	idx := &Index{Name: stmt.Name, Column: ci, Unique: stmt.Unique, m: make(map[string][]int)}
	for id, r := range t.rows {
		k := r[ci].Key()
		if stmt.Unique && len(idx.m[k]) > 0 && !r[ci].IsNull() {
			return errf(ErrConstraint, "sql: cannot create UNIQUE index %s: duplicate value %s", stmt.Name, r[ci])
		}
		idx.m[k] = append(idx.m[k], id)
	}
	t.indexes[key] = idx
	return nil
}

func (db *Database) dropTable(stmt *DropTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(stmt.Name)
	if _, exists := db.tables[key]; !exists {
		if stmt.IfExists {
			return nil
		}
		return errf(ErrNoTable, "sql: no such table: %s", stmt.Name)
	}
	delete(db.tables, key)
	return nil
}

func (db *Database) execInsert(stmt *InsertStmt, params []Value, qc *queryCtx) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(stmt.Table)
	if err != nil {
		return 0, err
	}
	// Map the statement's column list to table ordinals.
	colOrder := make([]int, 0, len(t.Columns))
	if len(stmt.Columns) == 0 {
		for i := range t.Columns {
			colOrder = append(colOrder, i)
		}
	} else {
		for _, name := range stmt.Columns {
			ci := t.ColumnIndex(name)
			if ci < 0 {
				return 0, errf(ErrNoColumn, "sql: table %s has no column named %s", t.Name, name)
			}
			colOrder = append(colOrder, ci)
		}
	}

	var sourceRows []Row
	if stmt.Select != nil {
		rows, _, err := execSelect(stmt.Select, db, params, nil, qc)
		if err != nil {
			return 0, err
		}
		sourceRows = rows
	} else {
		env := newEvalEnv(nil, db, params, nil, qc)
		for _, exprs := range stmt.Rows {
			row := make(Row, len(exprs))
			for i, e := range exprs {
				v, err := evalExpr(e, env)
				if err != nil {
					return 0, err
				}
				row[i] = v
			}
			sourceRows = append(sourceRows, row)
		}
	}

	n := 0
	for _, src := range sourceRows {
		if len(src) != len(colOrder) {
			return n, errf(ErrMisuse, "sql: table %s expects %d values, got %d", t.Name, len(colOrder), len(src))
		}
		full := make(Row, len(t.Columns))
		for i := range full {
			full[i] = Null
		}
		for i, ci := range colOrder {
			full[ci] = src[i]
		}
		if err := t.insertRow(full); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// hasSubquery reports whether any of the expressions contains a subquery
// (scalar, EXISTS, or IN (SELECT ...)) at any depth. DML uses it to pick
// snapshot evaluation: a subquery may read the very table being mutated.
func hasSubquery(exprs ...Expr) bool {
	found := false
	for _, e := range exprs {
		if e == nil {
			continue
		}
		walkExpr(e, func(x Expr) bool {
			if isSubqueryNode(x) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func (db *Database) execUpdate(stmt *UpdateStmt, params []Value, qc *queryCtx) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(stmt.Table)
	if err != nil {
		return 0, err
	}
	setCols := make([]int, len(stmt.Set))
	for i, sc := range stmt.Set {
		ci := t.ColumnIndex(sc.Column)
		if ci < 0 {
			return 0, errf(ErrNoColumn, "sql: table %s has no column named %s", t.Name, sc.Column)
		}
		setCols[i] = ci
	}
	cols := make([]colInfo, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = colInfo{qual: t.Name, name: c.Name}
	}
	env := newEvalEnv(cols, db, params, nil, qc)
	// A WHERE or SET expression containing a subquery may read the table
	// being updated. The one-pass loop below mutates rows in place and
	// defers the index rebuild to the end, so such a subquery would probe
	// stale index keys over already-updated rows — or lazily build an
	// ordered view over a half-mutated heap (the Halloween problem).
	// Those statements take the snapshot path: every evaluation sees the
	// pre-statement state, and mutation happens only after the last one.
	setExprs := make([]Expr, 0, len(stmt.Set)+1)
	setExprs = append(setExprs, stmt.Where)
	for _, sc := range stmt.Set {
		setExprs = append(setExprs, sc.Expr)
	}
	if hasSubquery(setExprs...) {
		return execUpdateSnapshot(t, stmt, setCols, env, qc)
	}
	n := 0
	// Rows mutate in place as the loop runs, so any exit — success, an
	// evaluation error, or cancellation — must rebuild indexes once rows
	// have changed, or index lookups would serve pre-update keys.
	fail := func(err error) (int, error) {
		if n > 0 {
			t.rebuildIndexes()
		}
		return n, err
	}
	for id, r := range t.rows {
		if err := qc.tickCancelled(); err != nil {
			return fail(err)
		}
		env.row = r
		if stmt.Where != nil {
			v, err := evalExpr(stmt.Where, env)
			if err != nil {
				return fail(err)
			}
			if v.IsNull() || !v.AsBool() {
				continue
			}
		}
		updated := r.Clone()
		for i, sc := range stmt.Set {
			v, err := evalExpr(sc.Expr, env)
			if err != nil {
				return fail(err)
			}
			updated[setCols[i]] = coerce(v, t.Columns[setCols[i]].Type)
		}
		for i, c := range t.Columns {
			if c.NotNull && updated[i].IsNull() {
				return fail(errf(ErrConstraint, "sql: NOT NULL constraint failed: %s.%s", t.Name, c.Name))
			}
		}
		t.rows[id] = updated
		n++
	}
	if n > 0 {
		t.rebuildIndexes()
	}
	return n, nil
}

// execUpdateSnapshot is the two-phase UPDATE path for statements whose
// WHERE or SET contains a subquery: phase one evaluates every row against
// the untouched table (so self-referential subqueries — equality-index
// probes, correlated probes, ordered scans — see a consistent
// pre-statement snapshot), phase two applies the collected updates and
// rebuilds the indexes once. Any error or cancellation during phase one
// aborts with the table untouched, making these statements atomic.
func execUpdateSnapshot(t *Table, stmt *UpdateStmt, setCols []int, env *evalEnv, qc *queryCtx) (int, error) {
	type pendingUpdate struct {
		id  int
		row Row
	}
	var pend []pendingUpdate
	for id, r := range t.rows {
		if err := qc.tickCancelled(); err != nil {
			return 0, err // phase one: nothing applied yet
		}
		env.row = r
		if stmt.Where != nil {
			v, err := evalExpr(stmt.Where, env)
			if err != nil {
				return 0, err
			}
			if v.IsNull() || !v.AsBool() {
				continue
			}
		}
		updated := r.Clone()
		for i, sc := range stmt.Set {
			v, err := evalExpr(sc.Expr, env)
			if err != nil {
				return 0, err
			}
			updated[setCols[i]] = coerce(v, t.Columns[setCols[i]].Type)
		}
		for i, c := range t.Columns {
			if c.NotNull && updated[i].IsNull() {
				return 0, errf(ErrConstraint, "sql: NOT NULL constraint failed: %s.%s", t.Name, c.Name)
			}
		}
		pend = append(pend, pendingUpdate{id: id, row: updated})
	}
	for _, p := range pend {
		t.rows[p.id] = p.row
	}
	if len(pend) > 0 {
		t.rebuildIndexes()
	}
	return len(pend), nil
}

func (db *Database) execDelete(stmt *DeleteStmt, params []Value, qc *queryCtx) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(stmt.Table)
	if err != nil {
		return 0, err
	}
	cols := make([]colInfo, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = colInfo{qual: t.Name, name: c.Name}
	}
	env := newEvalEnv(cols, db, params, nil, qc)
	// Same Halloween hazard as execUpdate, compounded: the loop below
	// compacts t.rows in place while iterating, so a WHERE subquery over
	// this table would scan a half-compacted heap (and probe indexes whose
	// ids still point at pre-delete positions). Subquery-bearing DELETEs
	// evaluate against the untouched table first, then compact.
	if hasSubquery(stmt.Where) {
		return execDeleteSnapshot(t, stmt, env, qc)
	}
	kept := t.rows[:0]
	n := 0
	// The loop compacts t.rows in place, so an early exit — cancellation
	// or a WHERE evaluation error — must keep the not-yet-examined suffix
	// and rebuild indexes: examined-and-kept rows plus untouched rows, no
	// duplicates, no stale index entries.
	fail := func(i int, err error) (int, error) {
		t.rows = append(kept, t.rows[i:]...)
		if n > 0 {
			t.rebuildIndexes()
		}
		return n, err
	}
	for i, r := range t.rows {
		if err := qc.tickCancelled(); err != nil {
			return fail(i, err)
		}
		keep := true
		if stmt.Where != nil {
			env.row = r
			v, err := evalExpr(stmt.Where, env)
			if err != nil {
				return fail(i, err)
			}
			if !v.IsNull() && v.AsBool() {
				keep = false
			}
		} else {
			keep = false
		}
		if keep {
			kept = append(kept, r)
		} else {
			n++
		}
	}
	t.rows = kept
	if n > 0 {
		t.rebuildIndexes()
	}
	return n, nil
}

// execDeleteSnapshot is the two-phase DELETE path for subquery-bearing
// statements: phase one evaluates WHERE for every row against the
// untouched table, phase two compacts the heap and rebuilds the indexes.
// An error or cancellation during phase one leaves the table untouched.
func execDeleteSnapshot(t *Table, stmt *DeleteStmt, env *evalEnv, qc *queryCtx) (int, error) {
	del := make([]bool, len(t.rows))
	n := 0
	for i, r := range t.rows {
		if err := qc.tickCancelled(); err != nil {
			return 0, err // phase one: nothing applied yet
		}
		env.row = r
		v, err := evalExpr(stmt.Where, env)
		if err != nil {
			return 0, err
		}
		if !v.IsNull() && v.AsBool() {
			del[i] = true
			n++
		}
	}
	if n == 0 {
		return 0, nil
	}
	kept := t.rows[:0]
	for i, r := range t.rows {
		if !del[i] {
			kept = append(kept, r)
		}
	}
	t.rows = kept
	t.rebuildIndexes()
	return n, nil
}

// InsertRows bulk-loads rows (Go values, table column order) into a table.
// It is the fast path used by the benchmark data generators.
func (db *Database) InsertRows(table string, rows [][]any) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return err
	}
	for _, raw := range rows {
		row := make(Row, len(raw))
		for i, x := range raw {
			row[i] = GoValue(x)
		}
		if err := t.insertRow(row); err != nil {
			return err
		}
	}
	return nil
}
