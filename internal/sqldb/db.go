package sqldb

import (
	"fmt"
	"strings"
)

// Result is a fully materialised query result.
type Result struct {
	Columns []string
	Rows    []Row
}

// ColumnIndex returns the ordinal of the named result column
// (case-insensitive), or -1.
func (r *Result) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Value returns the value at (row, named column). Missing columns or
// out-of-range rows return NULL.
func (r *Result) Value(row int, col string) Value {
	i := r.ColumnIndex(col)
	if i < 0 || row < 0 || row >= len(r.Rows) {
		return Null
	}
	return r.Rows[row][i]
}

// String renders the result as an aligned text table (for the CLI shell and
// for debugging).
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.AsText()
			if v.IsNull() {
				s = "NULL"
			}
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(pad(c, widths[i]))
	}
	b.WriteByte('\n')
	for i := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(s, widths[i]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Query executes a SELECT statement, returning its rows. Parses are served
// from the database's LRU plan cache, so repeated queries skip the parser;
// callers executing one statement many times can also hold a *Stmt from
// Prepare.
func (db *Database) Query(sql string, params ...any) (*Result, error) {
	sel, err := db.plans.lookup(sql, "Query")
	if err != nil {
		return nil, err
	}
	return db.QueryStmt(sel, params...)
}

// QueryStmt executes an already parsed SELECT.
func (db *Database) QueryStmt(sel *SelectStmt, params ...any) (*Result, error) {
	vals := bindParams(params)
	db.mu.RLock()
	defer db.mu.RUnlock()
	rows, cols, err := execSelectTop(sel, db, vals)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.name
	}
	return &Result{Columns: names, Rows: rows}, nil
}

// Exec parses and executes any statement. For SELECT it discards rows and
// returns their count; for DML it returns the number of affected rows; for
// DDL it returns 0.
func (db *Database) Exec(sql string, params ...any) (int, error) {
	stmts, err := ParseAll(sql)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, stmt := range stmts {
		n, err := db.execStmt(stmt, bindParams(params))
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// MustExec is Exec that panics on error — intended for test fixtures and
// generated data loading where failure is a programming bug.
func (db *Database) MustExec(sql string, params ...any) {
	if _, err := db.Exec(sql, params...); err != nil {
		panic(fmt.Sprintf("sqldb: MustExec(%.80q): %v", sql, err))
	}
}

func bindParams(params []any) []Value {
	vals := make([]Value, len(params))
	for i, p := range params {
		vals[i] = GoValue(p)
	}
	return vals
}

func (db *Database) execStmt(stmt Statement, params []Value) (int, error) {
	switch t := stmt.(type) {
	case *SelectStmt:
		db.mu.RLock()
		rows, _, err := execSelectTop(t, db, params)
		db.mu.RUnlock()
		return len(rows), err
	case *CreateTableStmt:
		return 0, db.createTable(t)
	case *CreateIndexStmt:
		return 0, db.createIndex(t)
	case *DropTableStmt:
		return 0, db.dropTable(t)
	case *InsertStmt:
		return db.execInsert(t, params)
	case *UpdateStmt:
		return db.execUpdate(t, params)
	case *DeleteStmt:
		return db.execDelete(t, params)
	default:
		return 0, fmt.Errorf("sql: cannot execute %T", stmt)
	}
}

func (db *Database) createTable(stmt *CreateTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(stmt.Name)
	if _, exists := db.tables[key]; exists {
		if stmt.IfNotExists {
			return nil
		}
		return fmt.Errorf("sql: table %s already exists", stmt.Name)
	}
	t, err := newTable(stmt)
	if err != nil {
		return err
	}
	db.tables[key] = t
	return nil
}

func (db *Database) createIndex(stmt *CreateIndexStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(stmt.Table)
	if err != nil {
		return err
	}
	ci := t.ColumnIndex(stmt.Column)
	if ci < 0 {
		return fmt.Errorf("sql: no such column %s.%s", stmt.Table, stmt.Column)
	}
	key := strings.ToLower(stmt.Column)
	if _, exists := t.indexes[key]; exists {
		return nil // idempotent: one index per column is all we support
	}
	idx := &Index{Name: stmt.Name, Column: ci, Unique: stmt.Unique, m: make(map[string][]int)}
	for id, r := range t.rows {
		k := r[ci].Key()
		if stmt.Unique && len(idx.m[k]) > 0 && !r[ci].IsNull() {
			return fmt.Errorf("sql: cannot create UNIQUE index %s: duplicate value %s", stmt.Name, r[ci])
		}
		idx.m[k] = append(idx.m[k], id)
	}
	t.indexes[key] = idx
	return nil
}

func (db *Database) dropTable(stmt *DropTableStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(stmt.Name)
	if _, exists := db.tables[key]; !exists {
		if stmt.IfExists {
			return nil
		}
		return fmt.Errorf("sql: no such table: %s", stmt.Name)
	}
	delete(db.tables, key)
	return nil
}

func (db *Database) execInsert(stmt *InsertStmt, params []Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(stmt.Table)
	if err != nil {
		return 0, err
	}
	// Map the statement's column list to table ordinals.
	colOrder := make([]int, 0, len(t.Columns))
	if len(stmt.Columns) == 0 {
		for i := range t.Columns {
			colOrder = append(colOrder, i)
		}
	} else {
		for _, name := range stmt.Columns {
			ci := t.ColumnIndex(name)
			if ci < 0 {
				return 0, fmt.Errorf("sql: table %s has no column named %s", t.Name, name)
			}
			colOrder = append(colOrder, ci)
		}
	}

	var sourceRows []Row
	if stmt.Select != nil {
		rows, _, err := execSelect(stmt.Select, db, params, nil)
		if err != nil {
			return 0, err
		}
		sourceRows = rows
	} else {
		env := newEvalEnv(nil, db, params, nil)
		for _, exprs := range stmt.Rows {
			row := make(Row, len(exprs))
			for i, e := range exprs {
				v, err := evalExpr(e, env)
				if err != nil {
					return 0, err
				}
				row[i] = v
			}
			sourceRows = append(sourceRows, row)
		}
	}

	n := 0
	for _, src := range sourceRows {
		if len(src) != len(colOrder) {
			return n, fmt.Errorf("sql: table %s expects %d values, got %d", t.Name, len(colOrder), len(src))
		}
		full := make(Row, len(t.Columns))
		for i := range full {
			full[i] = Null
		}
		for i, ci := range colOrder {
			full[ci] = src[i]
		}
		if err := t.insertRow(full); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (db *Database) execUpdate(stmt *UpdateStmt, params []Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(stmt.Table)
	if err != nil {
		return 0, err
	}
	setCols := make([]int, len(stmt.Set))
	for i, sc := range stmt.Set {
		ci := t.ColumnIndex(sc.Column)
		if ci < 0 {
			return 0, fmt.Errorf("sql: table %s has no column named %s", t.Name, sc.Column)
		}
		setCols[i] = ci
	}
	cols := make([]colInfo, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = colInfo{qual: t.Name, name: c.Name}
	}
	env := newEvalEnv(cols, db, params, nil)
	n := 0
	for id, r := range t.rows {
		env.row = r
		if stmt.Where != nil {
			v, err := evalExpr(stmt.Where, env)
			if err != nil {
				return n, err
			}
			if v.IsNull() || !v.AsBool() {
				continue
			}
		}
		updated := r.Clone()
		for i, sc := range stmt.Set {
			v, err := evalExpr(sc.Expr, env)
			if err != nil {
				return n, err
			}
			updated[setCols[i]] = coerce(v, t.Columns[setCols[i]].Type)
		}
		for i, c := range t.Columns {
			if c.NotNull && updated[i].IsNull() {
				return n, fmt.Errorf("sql: NOT NULL constraint failed: %s.%s", t.Name, c.Name)
			}
		}
		t.rows[id] = updated
		n++
	}
	if n > 0 {
		t.rebuildIndexes()
	}
	return n, nil
}

func (db *Database) execDelete(stmt *DeleteStmt, params []Value) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(stmt.Table)
	if err != nil {
		return 0, err
	}
	cols := make([]colInfo, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = colInfo{qual: t.Name, name: c.Name}
	}
	env := newEvalEnv(cols, db, params, nil)
	kept := t.rows[:0]
	n := 0
	for _, r := range t.rows {
		keep := true
		if stmt.Where != nil {
			env.row = r
			v, err := evalExpr(stmt.Where, env)
			if err != nil {
				return n, err
			}
			if !v.IsNull() && v.AsBool() {
				keep = false
			}
		} else {
			keep = false
		}
		if keep {
			kept = append(kept, r)
		} else {
			n++
		}
	}
	t.rows = kept
	if n > 0 {
		t.rebuildIndexes()
	}
	return n, nil
}

// InsertRows bulk-loads rows (Go values, table column order) into a table.
// It is the fast path used by the benchmark data generators.
func (db *Database) InsertRows(table string, rows [][]any) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.tableLocked(table)
	if err != nil {
		return err
	}
	for _, raw := range rows {
		row := make(Row, len(raw))
		for i, x := range raw {
			row[i] = GoValue(x)
		}
		if err := t.insertRow(row); err != nil {
			return err
		}
	}
	return nil
}
