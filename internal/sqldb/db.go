package sqldb

import (
	"context"
	"fmt"
	"strings"
)

// Result is a fully materialised query result — what Rows.Collect
// returns. Callers that consume rows incrementally (or stop early) should
// prefer Database.QueryRows.
type Result struct {
	Columns []string
	Rows    []Row
}

// ColumnIndex returns the ordinal of the named result column
// (case-insensitive), or -1.
func (r *Result) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Value returns the value at (row, named column). Missing columns or
// out-of-range rows return NULL.
func (r *Result) Value(row int, col string) Value {
	i := r.ColumnIndex(col)
	if i < 0 || row < 0 || row >= len(r.Rows) {
		return Null
	}
	return r.Rows[row][i]
}

// String renders the result as an aligned text table (for the CLI shell and
// for debugging).
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.AsText()
			if v.IsNull() {
				s = "NULL"
			}
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(pad(c, widths[i]))
	}
	b.WriteByte('\n')
	for i := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(s, widths[i]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Query executes a SELECT statement, materialising its rows. It is
// Collect over QueryRows: parses are served from the database's LRU plan
// cache, so repeated queries skip the parser; callers executing one
// statement many times can also hold a *Stmt from Prepare, and callers
// that consume rows incrementally should use QueryRows directly.
func (db *Database) Query(sql string, params ...any) (*Result, error) {
	return db.QueryContext(context.Background(), sql, params...)
}

// QueryContext is Query under a context: cancellation or deadline expiry
// stops the scan mid-flight with an ErrCanceled error.
func (db *Database) QueryContext(ctx context.Context, sql string, params ...any) (*Result, error) {
	rows, err := db.QueryRows(ctx, sql, params...)
	if err != nil {
		return nil, err
	}
	return rows.Collect()
}

// QueryStmt executes an already parsed SELECT, materialising its rows.
func (db *Database) QueryStmt(sel *SelectStmt, params ...any) (*Result, error) {
	return db.QueryStmtContext(context.Background(), sel, params...)
}

// QueryStmtContext is QueryStmt under a context.
func (db *Database) QueryStmtContext(ctx context.Context, sel *SelectStmt, params ...any) (*Result, error) {
	return db.querySelect(ctx, sel, bindParams(params), nil)
}

// querySelect runs an already parsed SELECT to a materialised Result,
// optionally inside a transaction.
func (db *Database) querySelect(ctx context.Context, sel *SelectStmt, vals []Value, tx *Txn) (*Result, error) {
	rows, err := db.queryRows(ctx, sel, vals, tx)
	if err != nil {
		return nil, err
	}
	return rows.Collect()
}

// Exec parses and executes any statement. For SELECT it streams rows to
// /dev/null and returns their count; for DML it returns the number of
// affected rows; for DDL it returns 0.
func (db *Database) Exec(sql string, params ...any) (int, error) {
	return db.ExecContext(context.Background(), sql, params...)
}

// ExecContext is Exec under a context: long scans and DML loops observe
// cancellation mid-flight.
func (db *Database) ExecContext(ctx context.Context, sql string, params ...any) (int, error) {
	stmts, err := ParseAll(sql)
	if err != nil {
		return 0, err
	}
	qc := newQueryCtx(ctx, db)
	defer qc.flush()
	vals := bindParams(params)
	total := 0
	for _, stmt := range stmts {
		if err := qc.cancelled(); err != nil {
			return total, err
		}
		n, err := db.execStmt(qc, stmt, vals, nil)
		// DML applies partially on a mid-loop error or cancellation (the
		// in-place paths keep their documented early-exit invariants), so
		// the affected-row count is accumulated even when err != nil.
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// MustExec is Exec that panics on error — intended for test fixtures and
// generated data loading where failure is a programming bug.
func (db *Database) MustExec(sql string, params ...any) {
	if _, err := db.Exec(sql, params...); err != nil {
		panic(fmt.Sprintf("sqldb: MustExec(%.80q): %v", sql, err))
	}
}

func bindParams(params []any) []Value {
	vals := make([]Value, len(params))
	for i, p := range params {
		vals[i] = GoValue(p)
	}
	return vals
}

// execStmt executes one statement. tx is the explicit transaction handle
// when called through Txn methods, nil for bare Exec calls — which join
// the open session transaction, if any (currentTxn resolves inside the
// per-kind entry points).
func (db *Database) execStmt(qc *queryCtx, stmt Statement, params []Value, tx *Txn) (int, error) {
	switch t := stmt.(type) {
	case *SelectStmt:
		// Stream the plan and count: rows are never materialised, and a
		// LIMIT stops the scan early. Parallel-scan workers (if any) are
		// stopped before the snapshot is released — defers run LIFO.
		qc.queries++
		snap, release := db.beginRead(tx)
		qc.snap = snap
		defer func() {
			qc.snap = nil
			release()
		}()
		defer qc.stopWorkers()
		root, _, err := buildSelectPlan(t, db, params, nil, true, qc)
		if err != nil {
			return 0, err
		}
		n := 0
		for {
			_, ok, err := root.next()
			if err != nil {
				return n, err
			}
			if !ok {
				return n, nil
			}
			n++
			qc.rowsEmitted++
		}
	case *BeginStmt:
		qc.execs++
		if tx != nil {
			return 0, errf(ErrMisuse, "sql: cannot start a transaction within a transaction")
		}
		return 0, db.beginSession()
	case *CommitStmt:
		qc.execs++
		if tx != nil {
			return 0, tx.Commit()
		}
		stx, err := db.takeSession()
		if err != nil {
			return 0, err
		}
		return 0, stx.Commit()
	case *RollbackStmt:
		qc.execs++
		if tx != nil {
			return 0, tx.Rollback()
		}
		stx, err := db.takeSession()
		if err != nil {
			return 0, err
		}
		return 0, stx.Rollback()
	case *CreateTableStmt:
		qc.execs++
		return 0, db.createTable(t, tx)
	case *CreateIndexStmt:
		qc.execs++
		return 0, db.createIndex(t, tx)
	case *DropTableStmt:
		qc.execs++
		return 0, db.dropTable(t, tx)
	case *InsertStmt:
		qc.execs++
		return db.execInsert(t, params, qc, tx)
	case *UpdateStmt:
		qc.execs++
		return db.execUpdate(t, params, qc, tx)
	case *DeleteStmt:
		qc.execs++
		return db.execDelete(t, params, qc, tx)
	default:
		return 0, errf(ErrMisuse, "sql: cannot execute %T", stmt)
	}
}

// DDL takes the single-writer latch for the statement (or rides an open
// transaction's latch span) and publishes the schema change
// copy-on-write, so lock-free readers always observe a complete table
// map. Inside an explicit transaction DDL is transactional: rollback
// unpublishes it, and the WAL records it inside the transaction's frame;
// autocommit DDL is logged as a standalone self-committed record.
func (db *Database) createTable(stmt *CreateTableStmt, tx *Txn) error {
	tx, unlock := db.acquireWrite(tx)
	defer unlock()
	key := strings.ToLower(stmt.Name)
	if _, exists := db.tableMap()[key]; exists {
		if stmt.IfNotExists {
			return nil
		}
		return errf(ErrSchema, "sql: table %s already exists", stmt.Name)
	}
	t, err := newTable(stmt)
	if err != nil {
		return err
	}
	db.publishTables(func(m map[string]*Table) { m[key] = t })
	if tx != nil {
		tx.recordDDL(undoCreateTable, t, key)
		tx.logWALOp(walOp{kind: 'S', sql: stmt.String()})
		return nil
	}
	return db.logAutocommitDDL(stmt.String())
}

// logAutocommitDDL appends one standalone DDL record to the WAL (no-op
// in memory-only mode or while recovery replays). An ErrIO here follows
// the commit-path contract: the schema change stands in memory, the WAL
// is poisoned.
func (db *Database) logAutocommitDDL(sql string) error {
	if w := db.wal; w != nil && w.armed.Load() {
		return w.appendDDL(sql)
	}
	return nil
}

func (db *Database) createIndex(stmt *CreateIndexStmt, tx *Txn) error {
	tx, unlock := db.acquireWrite(tx)
	defer unlock()
	t, err := db.lookupTable(stmt.Table)
	if err != nil {
		return err
	}
	ci := t.ColumnIndex(stmt.Column)
	if ci < 0 {
		return errf(ErrNoColumn, "sql: no such column %s.%s", stmt.Table, stmt.Column)
	}
	key := strings.ToLower(stmt.Column)
	if _, exists := t.idxs()[key]; exists {
		return nil // idempotent: one index per column is all we support
	}
	idx := &Index{Name: stmt.Name, Column: ci, Unique: stmt.Unique, m: make(map[string]posting)}
	// Index every surviving version of every chain (the superset contract:
	// snapshots older than the statement must find their rows through the
	// new index too). The UNIQUE duplicate check runs on latest rows only.
	arr, n := t.loadSlots()
	var seen map[string]bool
	if stmt.Unique {
		seen = make(map[string]bool, n)
	}
	for id := 0; id < n; id++ {
		head := arr[id].head.Load()
		if head == nil {
			continue
		}
		if stmt.Unique {
			if r := latestRow(head); r != nil && !r[ci].IsNull() {
				k := r[ci].Key()
				if seen[k] {
					return errf(ErrConstraint, "sql: cannot create UNIQUE index %s: duplicate value %s", stmt.Name, r[ci])
				}
				seen[k] = true
			}
		}
		for v := head; v != nil; v = v.next.Load() {
			if v.xmin == invalidXID || v.row == nil {
				continue
			}
			val := v.row[ci]
			k := val.Key()
			p := idx.m[k]
			if p.ids == nil {
				p.val = val
			}
			p.ids = spliceID(p.ids, id)
			idx.m[k] = p
		}
	}
	t.publishIndexes(func(m map[string]*Index) { m[key] = idx })
	if tx != nil {
		tx.recordDDL(undoCreateIndex, t, key)
		tx.logWALOp(walOp{kind: 'S', sql: stmt.String()})
		return nil
	}
	return db.logAutocommitDDL(stmt.String())
}

func (db *Database) dropTable(stmt *DropTableStmt, tx *Txn) error {
	tx, unlock := db.acquireWrite(tx)
	defer unlock()
	key := strings.ToLower(stmt.Name)
	t, exists := db.tableMap()[key]
	if !exists {
		if stmt.IfExists {
			return nil
		}
		return errf(ErrNoTable, "sql: no such table: %s", stmt.Name)
	}
	db.publishTables(func(m map[string]*Table) { delete(m, key) })
	if tx != nil {
		tx.recordDDL(undoDropTable, t, key)
		tx.logWALOp(walOp{kind: 'S', sql: stmt.String()})
		return nil
	}
	return db.logAutocommitDDL(stmt.String())
}

func (db *Database) execInsert(stmt *InsertStmt, params []Value, qc *queryCtx, tx *Txn) (n int, err error) {
	wtx, end, err := db.beginWrite(qc, tx)
	if err != nil {
		return 0, err
	}
	// end() publishes the autocommit statement; on a durable database it
	// also appends the WAL record, whose failure must surface as the
	// statement's error even over an engine error — an I/O failure poisons
	// the log, and a statement whose partial work was applied but not made
	// durable must report that.
	defer func() {
		if e := end(); e != nil {
			err = e
		}
	}()
	t, err := db.lookupTable(stmt.Table)
	if err != nil {
		return 0, err
	}
	// Map the statement's column list to table ordinals.
	colOrder := make([]int, 0, len(t.Columns))
	if len(stmt.Columns) == 0 {
		for i := range t.Columns {
			colOrder = append(colOrder, i)
		}
	} else {
		for _, name := range stmt.Columns {
			ci := t.ColumnIndex(name)
			if ci < 0 {
				return 0, errf(ErrNoColumn, "sql: table %s has no column named %s", t.Name, name)
			}
			colOrder = append(colOrder, ci)
		}
	}

	var sourceRows []Row
	if stmt.Select != nil {
		rows, _, err := execSelect(stmt.Select, db, params, nil, qc)
		if err != nil {
			return 0, err
		}
		sourceRows = rows
	} else {
		env := newEvalEnv(nil, db, params, nil, qc)
		for _, exprs := range stmt.Rows {
			row := make(Row, len(exprs))
			for i, e := range exprs {
				v, err := evalExpr(e, env)
				if err != nil {
					return 0, err
				}
				row[i] = v
			}
			sourceRows = append(sourceRows, row)
		}
	}

	for _, src := range sourceRows {
		if len(src) != len(colOrder) {
			return n, errf(ErrMisuse, "sql: table %s expects %d values, got %d", t.Name, len(colOrder), len(src))
		}
		full := make(Row, len(t.Columns))
		for i := range full {
			full[i] = Null
		}
		for i, ci := range colOrder {
			full[ci] = src[i]
		}
		if err := t.insertRow(full, qc, wtx); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// hasSubquery reports whether any of the expressions contains a subquery
// (scalar, EXISTS, or IN (SELECT ...)) at any depth. DML uses it to pick
// snapshot evaluation: a subquery may read the very table being mutated.
func hasSubquery(exprs ...Expr) bool {
	found := false
	for _, e := range exprs {
		if e == nil {
			continue
		}
		walkExpr(e, func(x Expr) bool {
			if isSubqueryNode(x) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func (db *Database) execUpdate(stmt *UpdateStmt, params []Value, qc *queryCtx, tx *Txn) (n int, err error) {
	wtx, end, err := db.beginWrite(qc, tx)
	if err != nil {
		return 0, err
	}
	defer func() {
		if e := end(); e != nil {
			err = e
		}
	}()
	t, err := db.lookupTable(stmt.Table)
	if err != nil {
		return 0, err
	}
	setCols := make([]int, len(stmt.Set))
	for i, sc := range stmt.Set {
		ci := t.ColumnIndex(sc.Column)
		if ci < 0 {
			return 0, errf(ErrNoColumn, "sql: table %s has no column named %s", t.Name, sc.Column)
		}
		setCols[i] = ci
	}
	cols := make([]colInfo, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = colInfo{qual: t.Name, name: c.Name}
	}
	env := newEvalEnv(cols, db, params, nil, qc)
	// A WHERE or SET expression containing a subquery may read the table
	// being updated. The one-pass loop below mutates rows in place and
	// defers the index rebuild to the end, so such a subquery would probe
	// stale index keys over already-updated rows — or lazily build an
	// ordered view over a half-mutated heap (the Halloween problem).
	// Those statements take the snapshot path: every evaluation sees the
	// pre-statement state, and mutation happens only after the last one.
	setExprs := make([]Expr, 0, len(stmt.Set)+1)
	setExprs = append(setExprs, stmt.Where)
	for _, sc := range stmt.Set {
		setExprs = append(setExprs, sc.Expr)
	}
	if hasSubquery(setExprs...) {
		return execUpdateSnapshot(t, stmt, setCols, env, qc, wtx)
	}
	// Each qualifying row is updated through updateRow, which keeps the
	// hash maps and any live ordered view exactly current — so any exit
	// (success, an evaluation error, cancellation) leaves the indexes
	// consistent with the rows updated so far, with no rebuild.
	update := func(id int, r Row) error {
		env.row = r
		updated := r.Clone()
		for i, sc := range stmt.Set {
			v, err := evalExpr(sc.Expr, env)
			if err != nil {
				return err
			}
			updated[setCols[i]] = coerce(v, t.Columns[setCols[i]].Type)
		}
		for i, c := range t.Columns {
			if c.NotNull && updated[i].IsNull() {
				return errf(ErrConstraint, "sql: NOT NULL constraint failed: %s.%s", t.Name, c.Name)
			}
		}
		if err := t.checkUpdateUnique(id, updated); err != nil {
			return err
		}
		t.updateRow(id, updated, qc, wtx)
		return nil
	}
	// Fast path: an `UPDATE ... WHERE col = <literal/param>` over an
	// indexed column touches exactly the index bucket, and a range-shaped
	// WHERE (col > x, BETWEEN) over one is served from the index's ordered
	// view — no heap walk and no per-row WHERE evaluation either way.
	if ids, ok := dmlWhereIDs(t, stmt.Where, params, qc); ok {
		for _, id := range ids {
			if err := qc.tickCancelled(); err != nil {
				return n, err
			}
			if err := update(id, latestRow(t.head(id))); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	}
	arr, nSlots := t.loadSlots()
	for id := 0; id < nSlots; id++ {
		r := latestRow(arr[id].head.Load())
		if r == nil {
			continue
		}
		if err := qc.tickCancelled(); err != nil {
			return n, err
		}
		if stmt.Where != nil {
			env.row = r
			v, err := evalExpr(stmt.Where, env)
			if err != nil {
				return n, err
			}
			if v.IsNull() || !v.AsBool() {
				continue
			}
		}
		if err := update(id, r); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// dmlEqualityIDs serves a DML statement's WHERE clause from an equality
// index when it has exactly the shape `col = <literal or ? parameter>`
// over an indexed column of the mutated table. The returned ids are
// precisely the rows the statement snapshot sees the predicate holding
// for, ascending — the order the heap walk would visit them — and are
// private to the caller (the posting list is copied and filtered). A NULL
// comparand matches nothing (`col = NULL` is never true of any row). Any
// other WHERE shape reports ok=false and the caller walks the heap.
func dmlEqualityIDs(t *Table, where Expr, params []Value, qc *queryCtx) ([]int, bool) {
	b, ok := where.(*BinaryOp)
	if !ok || b.Op != "=" {
		return nil, false
	}
	cr, comparand := dmlEqualitySides(b.Left, b.Right)
	if cr == nil {
		cr, comparand = dmlEqualitySides(b.Right, b.Left)
	}
	if cr == nil {
		return nil, false
	}
	if cr.Table != "" && !strings.EqualFold(cr.Table, t.Name) {
		return nil, false
	}
	idx, ok := t.idxs()[strings.ToLower(cr.Column)]
	if !ok {
		return nil, false
	}
	var v Value
	switch c := comparand.(type) {
	case *Literal:
		v = c.Val
	case *Param:
		if c.Index < 0 || c.Index >= len(params) {
			return nil, false // the arity error surfaces from the slow path
		}
		v = params[c.Index]
	}
	v = coerce(v, t.Columns[idx.Column].Type)
	if v.IsNull() {
		return []int{}, true
	}
	ids := visibleEqIDs(t, idx, v, qc.snap)
	if ids == nil {
		ids = []int{}
	}
	return ids, true
}

// dmlEqualitySides matches one orientation of `col = comparand`, where
// the comparand is a literal or parameter (never a column or anything
// that could error or read state).
func dmlEqualitySides(a, b Expr) (*ColumnRef, Expr) {
	cr, ok := a.(*ColumnRef)
	if !ok {
		return nil, nil
	}
	switch b.(type) {
	case *Literal, *Param:
		return cr, b
	}
	return nil, nil
}

// dmlWhereIDs resolves a DML WHERE to the exact live row ids it holds
// for, when an index can serve it without a heap walk: equality first,
// then range shapes over one indexed column.
func dmlWhereIDs(t *Table, where Expr, params []Value, qc *queryCtx) ([]int, bool) {
	if ids, ok := dmlEqualityIDs(t, where, params, qc); ok {
		return ids, true
	}
	return dmlRangeIDs(t, where, params, qc)
}

// dmlRangeIDs serves a DML WHERE whose conjuncts are all range-shaped
// over the same indexed column (`col > x`, `x <= col`, `col BETWEEN lo
// AND hi`, with literal or parameter bounds) from the index's ordered
// view: the conjuncts tighten into one key range and collectRangeIDs
// yields exactly the live ids the heap walk would match, ascending — the
// order the walk would visit them. Bounds stay uncoerced on purpose: the
// heap walk compares raw values via Value.Compare and the ordered view
// sorts by the same Compare, so raw bounds reproduce its semantics
// exactly. A NULL bound makes the WHERE NULL for every row, so it
// matches nothing.
func dmlRangeIDs(t *Table, where Expr, params []Value, qc *queryCtx) ([]int, bool) {
	if where == nil {
		return nil, false
	}
	var col *ColumnRef
	var spec rangeSpec
	nullBound := false
	for _, c := range splitConjuncts(where) {
		cr, cs, nullB, ok := dmlRangeConjunct(c, params)
		if !ok {
			return nil, false
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, t.Name) {
			return nil, false
		}
		if col == nil {
			col = cr
		} else if !strings.EqualFold(col.Column, cr.Column) {
			return nil, false
		}
		if nullB {
			nullBound = true
			continue
		}
		spec.lo = tightenLo(spec.lo, cs.lo)
		spec.hi = tightenHi(spec.hi, cs.hi)
	}
	idx, ok := t.idxs()[strings.ToLower(col.Column)]
	if !ok {
		return nil, false
	}
	if nullBound {
		return []int{}, true
	}
	ids, skipped := collectRangeIDs(t, idx.Column, idx.orderedEntries(), spec, qc.snap)
	if qc != nil {
		qc.indexRangeScans++
		qc.tombstonesSkipped += skipped
	}
	return ids, true
}

// dmlRangeConjunct matches one range-shaped DML conjunct — the
// parameter-aware counterpart of the planner's rangeConjunct. Returns
// the referenced column, the bound it contributes, whether the bound
// resolved to NULL, and whether the conjunct had a range shape at all.
func dmlRangeConjunct(c Expr, params []Value) (*ColumnRef, rangeSpec, bool, bool) {
	switch t := c.(type) {
	case *BinaryOp:
		var op string
		var boundE Expr
		col, ok := t.Left.(*ColumnRef)
		if ok {
			op, boundE = t.Op, t.Right
		} else if col, ok = t.Right.(*ColumnRef); ok {
			boundE = t.Left
			// Flip the comparison around the bound: `5 < col` is `col > 5`.
			switch t.Op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			default:
				op = t.Op
			}
		} else {
			return nil, rangeSpec{}, false, false
		}
		switch op {
		case ">", ">=", "<", "<=":
		default:
			return nil, rangeSpec{}, false, false
		}
		v, ok := dmlBoundValue(boundE, params)
		if !ok {
			return nil, rangeSpec{}, false, false
		}
		if v.IsNull() {
			return col, rangeSpec{}, true, true
		}
		switch op {
		case ">":
			return col, rangeSpec{lo: &rangeBound{val: v}}, false, true
		case ">=":
			return col, rangeSpec{lo: &rangeBound{val: v, incl: true}}, false, true
		case "<":
			return col, rangeSpec{hi: &rangeBound{val: v}}, false, true
		default: // "<="
			return col, rangeSpec{hi: &rangeBound{val: v, incl: true}}, false, true
		}
	case *Between:
		if t.Not {
			return nil, rangeSpec{}, false, false
		}
		col, ok := t.Expr.(*ColumnRef)
		if !ok {
			return nil, rangeSpec{}, false, false
		}
		lo, ok1 := dmlBoundValue(t.Lo, params)
		hi, ok2 := dmlBoundValue(t.Hi, params)
		if !ok1 || !ok2 {
			return nil, rangeSpec{}, false, false
		}
		if lo.IsNull() || hi.IsNull() {
			return col, rangeSpec{}, true, true
		}
		return col, rangeSpec{
			lo: &rangeBound{val: lo, incl: true},
			hi: &rangeBound{val: hi, incl: true},
		}, false, true
	}
	return nil, rangeSpec{}, false, false
}

// dmlBoundValue resolves a range bound that is a literal or a bound ?
// parameter; anything else (a column, an expression) reports false.
func dmlBoundValue(e Expr, params []Value) (Value, bool) {
	switch c := e.(type) {
	case *Literal:
		return c.Val, true
	case *Param:
		if c.Index < 0 || c.Index >= len(params) {
			return Null, false // the arity error surfaces from the slow path
		}
		return params[c.Index], true
	}
	return Null, false
}

// execUpdateSnapshot is the two-phase UPDATE path for statements whose
// WHERE or SET contains a subquery: phase one evaluates every row against
// the untouched table (so self-referential subqueries — equality-index
// probes, correlated probes, ordered scans — see a consistent
// pre-statement snapshot), phase two applies the collected updates
// through the incremental index maintenance. Any error or cancellation
// during phase one aborts with the table untouched, making these
// statements atomic.
func execUpdateSnapshot(t *Table, stmt *UpdateStmt, setCols []int, env *evalEnv, qc *queryCtx, wtx *Txn) (int, error) {
	type pendingUpdate struct {
		id  int
		old Row
		row Row
	}
	var pend []pendingUpdate
	arr, nSlots := t.loadSlots()
	for id := 0; id < nSlots; id++ {
		r := latestRow(arr[id].head.Load())
		if r == nil {
			continue
		}
		if err := qc.tickCancelled(); err != nil {
			return 0, err // phase one: nothing applied yet
		}
		env.row = r
		if stmt.Where != nil {
			v, err := evalExpr(stmt.Where, env)
			if err != nil {
				return 0, err
			}
			if v.IsNull() || !v.AsBool() {
				continue
			}
		}
		updated := r.Clone()
		for i, sc := range stmt.Set {
			v, err := evalExpr(sc.Expr, env)
			if err != nil {
				return 0, err
			}
			updated[setCols[i]] = coerce(v, t.Columns[setCols[i]].Type)
		}
		for i, c := range t.Columns {
			if c.NotNull && updated[i].IsNull() {
				return 0, errf(ErrConstraint, "sql: NOT NULL constraint failed: %s.%s", t.Name, c.Name)
			}
		}
		pend = append(pend, pendingUpdate{id: id, old: r, row: updated})
	}
	// UNIQUE pre-check over the statement's final state, so a violation
	// aborts with the table untouched (this path's atomicity guarantee):
	// for each unique index, a key's final occupancy is its current
	// posting list minus the pending rows vacating it plus the pending
	// rows moving in. Checking per-row during application instead would
	// both break atomicity and spuriously reject key rotations the final
	// state permits (e.g. SET id = maxid+1-id). Application below is then
	// unchecked: transient duplicates mid-application are fine.
	for _, idx := range t.idxs() {
		if !idx.Unique {
			continue
		}
		var removed, added map[string]int
		for _, p := range pend {
			oldKey := p.old[idx.Column].Key()
			newKey := p.row[idx.Column].Key()
			if oldKey == newKey {
				continue
			}
			if removed == nil {
				removed, added = make(map[string]int), make(map[string]int)
			}
			removed[oldKey]++
			if !p.row[idx.Column].IsNull() {
				added[newKey]++
			}
		}
		for key, add := range added {
			if t.liveKeyCount(idx, key)-removed[key]+add > 1 {
				return 0, errf(ErrConstraint, "sql: UNIQUE constraint failed: %s.%s",
					t.Name, t.Columns[idx.Column].Name)
			}
		}
	}
	for _, p := range pend {
		t.updateRow(p.id, p.row, qc, wtx)
	}
	return len(pend), nil
}

func (db *Database) execDelete(stmt *DeleteStmt, params []Value, qc *queryCtx, tx *Txn) (n int, err error) {
	wtx, end, err := db.beginWrite(qc, tx)
	if err != nil {
		return 0, err
	}
	defer func() {
		if e := end(); e != nil {
			err = e
		}
	}()
	t, err := db.lookupTable(stmt.Table)
	if err != nil {
		return 0, err
	}
	cols := make([]colInfo, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = colInfo{qual: t.Name, name: c.Name}
	}
	env := newEvalEnv(cols, db, params, nil, qc)
	// Same Halloween hazard as execUpdate: a WHERE subquery over this
	// table would observe the rows already deleted by this very loop.
	// Subquery-bearing DELETEs evaluate against the untouched table
	// first, then apply.
	if hasSubquery(stmt.Where) {
		return execDeleteSnapshot(t, stmt, env, qc, wtx)
	}
	// Qualifying rows are xmax-stamped as the loop runs (ids stay stable),
	// so an early exit — cancellation or a WHERE evaluation error — leaves
	// exactly the examined-and-deleted rows gone and everything else
	// untouched. Reclamation is the background vacuum's job.
	// Fast path: `DELETE FROM t WHERE col = <literal/param>` over an
	// indexed column deletes exactly the index bucket; a range-shaped
	// WHERE over one deletes exactly the ordered view's window.
	if stmt.Where != nil {
		if ids, ok := dmlWhereIDs(t, stmt.Where, params, qc); ok {
			for _, id := range ids {
				if err := qc.tickCancelled(); err != nil {
					return n, err
				}
				t.deleteRow(id, wtx)
				n++
			}
			return n, nil
		}
	}
	arr, nSlots := t.loadSlots()
	for id := 0; id < nSlots; id++ {
		r := latestRow(arr[id].head.Load())
		if r == nil {
			continue
		}
		if err := qc.tickCancelled(); err != nil {
			return n, err
		}
		del := true
		if stmt.Where != nil {
			env.row = r
			v, err := evalExpr(stmt.Where, env)
			if err != nil {
				return n, err
			}
			del = !v.IsNull() && v.AsBool()
		}
		if del {
			t.deleteRow(id, wtx)
			n++
		}
	}
	return n, nil
}

// execDeleteSnapshot is the two-phase DELETE path for subquery-bearing
// statements: phase one evaluates WHERE for every row against the
// untouched table, phase two stamps the qualifying rows deleted. An error
// or cancellation during phase one leaves the table untouched.
func execDeleteSnapshot(t *Table, stmt *DeleteStmt, env *evalEnv, qc *queryCtx, wtx *Txn) (int, error) {
	var del []int
	arr, nSlots := t.loadSlots()
	for id := 0; id < nSlots; id++ {
		r := latestRow(arr[id].head.Load())
		if r == nil {
			continue
		}
		if err := qc.tickCancelled(); err != nil {
			return 0, err // phase one: nothing applied yet
		}
		env.row = r
		v, err := evalExpr(stmt.Where, env)
		if err != nil {
			return 0, err
		}
		if !v.IsNull() && v.AsBool() {
			del = append(del, id)
		}
	}
	for _, id := range del {
		t.deleteRow(id, wtx)
	}
	return len(del), nil
}

// InsertRows bulk-loads rows (Go values, table column order) into a table
// as one autocommit write. It is the fast path used by the benchmark data
// generators.
func (db *Database) InsertRows(table string, rows [][]any) (err error) {
	qc := newQueryCtx(context.Background(), db)
	defer qc.flush()
	wtx, end, err := db.beginWrite(qc, nil)
	if err != nil {
		return err
	}
	defer func() {
		if e := end(); e != nil {
			err = e
		}
	}()
	t, err := db.lookupTable(table)
	if err != nil {
		return err
	}
	for _, raw := range rows {
		row := make(Row, len(raw))
		for i, x := range raw {
			row[i] = GoValue(x)
		}
		if err := t.insertRow(row, qc, wtx); err != nil {
			return err
		}
	}
	return nil
}
