// Package sqldb implements an embedded, in-memory relational database
// engine with a pragmatic SQL subset. It is the substrate for the TAG
// pipeline's query-execution step (the paper uses SQLite3; sqldb is a
// behavioural stand-in at benchmark scale).
//
// The engine is organised around a plan/execute split:
//
//	lexer.go / parser.go / ast.go   SQL text -> AST
//	prepare.go                      prepared statements + the LRU plan cache
//	catalog.go                      schemas, tables, indexes
//	expr.go / func.go / agg.go      interpreted expression evaluation (DML)
//	compile.go                      AST -> closures with ordinals bound once
//	key.go                          allocation-free binary row/value keys
//	exec.go                         planning and volcano-style execution
//	db.go                           the public Database API
//
// SELECT execution happens in two phases: planning resolves every column
// reference to an ordinal, picks access paths (index scans, hash-join
// build sides, index-nested-loop joins) and compiles each expression into
// a closure; execution then runs the closures over rows without any name
// resolution, map lookups or string formatting on the per-row path.
//
// Values use dynamic typing with SQLite-flavoured affinity: every cell is a
// Value of kind null, integer, real, text, or boolean, and comparisons
// coerce across the numeric kinds.
package sqldb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types a Value can hold.
type Kind uint8

// Value kinds, in comparison order (Null sorts first, Text last).
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindText
)

// String returns the SQL-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "REAL"
	case KindText:
		return "TEXT"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single dynamically-typed SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an INTEGER value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a REAL value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Text returns a TEXT value.
func Text(v string) Value { return Value{kind: KindText, s: v} }

// Bool returns a BOOLEAN value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the value as an int64, coercing REAL and BOOLEAN.
// NULL and TEXT that does not parse return 0.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindText:
		n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if ferr != nil {
				return 0
			}
			return int64(f)
		}
		return n
	default:
		return 0
	}
}

// AsFloat returns the value as a float64, coercing INTEGER, BOOLEAN and
// numeric TEXT. NULL and non-numeric TEXT return 0.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return 0
		}
		return f
	default:
		return 0
	}
}

// AsText renders the value as a string. NULL renders as the empty string.
func (v Value) AsText() string {
	switch v.kind {
	case KindText:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return formatFloat(v.f)
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return ""
	}
}

// AsBool returns SQL truthiness: non-zero numbers and the literal TRUE are
// true. NULL is false (callers needing three-valued logic must check IsNull
// before conversion).
func (v Value) AsBool() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindText:
		return v.s != ""
	default:
		return false
	}
}

// IsNumeric reports whether the value is INTEGER or REAL.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String implements fmt.Stringer with SQL literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindText:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	default:
		return v.AsText()
	}
}

// formatFloat renders a float the way SQLite prints it: integral values get
// a trailing ".0" so that REAL and INTEGER remain visually distinct.
func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "Inf"
	}
	if math.IsInf(f, -1) {
		return "-Inf"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', 1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Compare defines a total order over non-NULL values and a partial order
// involving NULL. It returns:
//
//	-1 if v sorts before o
//	 0 if v equals o
//	+1 if v sorts after o
//
// Numeric kinds compare by value across INTEGER/REAL/BOOLEAN; otherwise the
// order is NULL < numeric kinds < TEXT by storage class, exactly as in
// SQLite (affinity coercion happens at insert time, never at comparison
// time, which keeps Compare a total order).
func (v Value) Compare(o Value) int {
	// NULLs sort first and compare equal to each other (for ORDER BY /
	// GROUP BY purposes; WHERE-clause semantics handle NULL separately).
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	vn, on := v.numericRank(), o.numericRank()
	if vn && on {
		// Exact integer comparison when both sides are integers, and
		// exact int-vs-float comparison (as in SQLite), so that large
		// int64s never collapse through float64 rounding. This keeps
		// Compare's equivalence classes identical to the binary key
		// encoding in key.go — equality must not depend on whether a plan
		// uses hashing (keys) or direct comparison.
		if v.kind == KindInt && o.kind == KindInt {
			switch {
			case v.i < o.i:
				return -1
			case v.i > o.i:
				return 1
			default:
				return 0
			}
		}
		if v.kind == KindInt && o.kind == KindFloat {
			return compareIntFloat(v.i, o.f)
		}
		if v.kind == KindFloat && o.kind == KindInt {
			return -compareIntFloat(o.i, v.f)
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if vn != on {
		// Mixed numeric/text: numbers sort before text, unconditionally.
		if v.kind == KindText {
			return 1
		}
		return -1
	}
	// Both text.
	return strings.Compare(v.s, o.s)
}

// compareIntFloat compares an int64 with a float64 exactly, without
// rounding the integer through float64. NaN compares equal (mirroring the
// float/float branch, where all NaN comparisons are false).
func compareIntFloat(i int64, f float64) int {
	if math.IsNaN(f) {
		return 0
	}
	// math.MaxInt64 rounds to 2^63 as a float64 constant; anything at or
	// above it exceeds every int64, and anything below -2^63 undercuts
	// every int64. Inside that range Trunc(f) is exactly representable.
	if f >= math.MaxInt64 {
		return -1
	}
	if f < math.MinInt64 {
		return 1
	}
	t := int64(math.Trunc(f))
	switch {
	case i < t:
		return -1
	case i > t:
		return 1
	}
	frac := f - math.Trunc(f)
	switch {
	case frac > 0:
		return -1
	case frac < 0:
		return 1
	default:
		return 0
	}
}

// numericRank reports whether the kind participates in numeric comparison.
func (v Value) numericRank() bool {
	return v.kind == KindInt || v.kind == KindFloat || v.kind == KindBool
}

// Equal reports whether two values compare equal under Compare. NULL equals
// NULL here; use SQL three-valued logic in predicates instead.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Key returns a string usable as a hash-map key that respects Equal:
// values that compare equal produce identical keys, and distinct int64s
// always produce distinct keys (no float64 round-trip). Hot paths should
// use appendValueKey with a reused scratch buffer instead.
func (v Value) Key() string {
	return string(appendValueKey(nil, v))
}

// GoValue converts a Go value into a Value. Supported inputs: nil, bool,
// all int/uint widths, float32/64, string, and Value itself. Anything else
// is rendered with fmt.Sprint as TEXT.
func GoValue(x any) Value {
	switch t := x.(type) {
	case nil:
		return Null
	case Value:
		return t
	case bool:
		return Bool(t)
	case int:
		return Int(int64(t))
	case int8:
		return Int(int64(t))
	case int16:
		return Int(int64(t))
	case int32:
		return Int(int64(t))
	case int64:
		return Int(t)
	case uint:
		return Int(int64(t))
	case uint8:
		return Int(int64(t))
	case uint16:
		return Int(int64(t))
	case uint32:
		return Int(int64(t))
	case uint64:
		return Int(int64(t))
	case float32:
		return Float(float64(t))
	case float64:
		return Float(t)
	case string:
		return Text(t)
	default:
		return Text(fmt.Sprint(x))
	}
}

// Row is a tuple of values aligned with an output schema.
type Row []Value

// Clone returns a copy of the row sharing no backing storage.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
