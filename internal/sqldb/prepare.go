package sqldb

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// This file implements prepared statements and the database's plan cache.
//
// Parsing is by far the most expensive statement-independent step of
// Query (planning proper is data-dependent — join build sides materialise
// during it — so it runs per execution). A Stmt pins the parsed AST so
// repeated executions skip the parser, and Database.Query consults an LRU
// cache keyed by SQL text so even callers that re-submit raw strings —
// the TAG benchmark harness re-runs its 80 queries every pass — parse each
// statement once. Parsed ASTs are never mutated by execution, so a single
// Stmt is safe for concurrent use.

// Stmt is a prepared SELECT statement: parsed once, executable many times
// with different parameters.
type Stmt struct {
	db  *Database
	sel *SelectStmt
	sql string
}

// Prepare parses a SELECT statement for repeated execution.
func (db *Database) Prepare(sql string) (*Stmt, error) {
	sel, err := db.plans.lookup(sql, "Prepare")
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, sel: sel, sql: sql}, nil
}

// Query executes the prepared statement with the given parameters,
// materialising the result.
func (s *Stmt) Query(params ...any) (*Result, error) {
	return s.db.QueryStmt(s.sel, params...)
}

// QueryContext is Query under a context.
func (s *Stmt) QueryContext(ctx context.Context, params ...any) (*Result, error) {
	return s.db.QueryStmtContext(ctx, s.sel, params...)
}

// QueryRows executes the prepared statement and returns a streaming
// cursor (see Database.QueryRows).
func (s *Stmt) QueryRows(ctx context.Context, params ...any) (*Rows, error) {
	return s.db.queryRows(ctx, s.sel, bindParams(params), nil)
}

// SQL returns the statement's original text.
func (s *Stmt) SQL() string { return s.sql }

// planCacheCap bounds the number of parsed statements a database retains.
// TAG-Bench's full workload (80 queries plus truth/table probes) fits with
// room to spare; busier callers recycle via LRU.
const planCacheCap = 512

// planCache is an LRU of SQL text -> parsed SELECT. Only successful SELECT
// parses are cached; parse errors and non-SELECT statements take the slow
// path every time (they are not on any hot path).
type planCache struct {
	mu     sync.Mutex
	m      map[string]*list.Element
	lru    *list.List // front = most recently used
	hits   atomic.Uint64
	misses atomic.Uint64
}

type planEntry struct {
	sql string
	sel *SelectStmt
}

func newPlanCache() *planCache {
	return &planCache{m: make(map[string]*list.Element), lru: list.New()}
}

// lookup returns the cached parse of sql, parsing and inserting on miss.
// verb names the calling API in the non-SELECT error message.
func (c *planCache) lookup(sql, verb string) (*SelectStmt, error) {
	c.mu.Lock()
	if el, ok := c.m[sql]; ok {
		c.lru.MoveToFront(el)
		sel := el.Value.(*planEntry).sel
		c.mu.Unlock()
		c.hits.Add(1)
		return sel, nil
	}
	c.mu.Unlock()
	c.misses.Add(1)

	// Parse outside the lock; concurrent misses on the same text just
	// parse twice and the second insert wins the front slot.
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, errf(ErrMisuse, "sql: %s requires a SELECT statement, got %T", verb, stmt)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[sql]; ok { // lost the race: keep the incumbent
		c.lru.MoveToFront(el)
		return el.Value.(*planEntry).sel, nil
	}
	c.m[sql] = c.lru.PushFront(&planEntry{sql: sql, sel: sel})
	for c.lru.Len() > planCacheCap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.m, last.Value.(*planEntry).sql)
	}
	return sel, nil
}

// counters reports the cache's cumulative hit/miss counts (Stats).
func (c *planCache) counters() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// len reports the number of cached plans (for tests).
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
