package sqldb

import (
	"fmt"
	"strings"
)

// Explain describes the execution plan of a SELECT statement without
// running it to completion. It builds the exact operator tree Query would
// run (same planner, same access-path and join choices) and renders one
// line per operator: which scans use indexes, range bounds and ordered
// (sort-eliding) index scans, predicates pushed below joins, which joins
// hash, merge, index-probe or fall back to nested loops, and the
// post-processing stages (aggregate, distinct, sort — including bounded
// top-k — and limit). Join build sides are materialised during planning
// (they are part of plan construction in this engine), so Explain's cost
// is bounded by the build sides, not the probe side.
func (db *Database) Explain(sql string, params ...any) ([]string, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, errf(ErrMisuse, "sql: EXPLAIN supports SELECT statements, got %T", stmt)
	}
	vals := bindParams(params)
	db.mu.RLock()
	defer db.mu.RUnlock()
	// topLevel mirrors Query's planning so EXPLAIN shows the plan that
	// would actually run.
	root, _, err := buildSelectPlan(sel, db, vals, nil, true, nil)
	if err != nil {
		return nil, err
	}
	var lines []string
	emit := func(depth int, format string, args ...any) {
		lines = append(lines, strings.Repeat("  ", depth)+fmt.Sprintf(format, args...))
	}
	describeOperator(root, 0, emit)
	return lines, nil
}

// describeOperator walks the operator tree emitting one line per node.
func describeOperator(op operator, depth int, emit func(int, string, ...any)) {
	switch t := op.(type) {
	case *limitOp:
		emit(depth, "limit/offset")
		describeOperator(t.child, depth+1, emit)
	case *sortOp:
		keys := make([]string, len(t.orderBy))
		for i, ob := range t.orderBy {
			keys[i] = ob.String()
		}
		note := ""
		if t.topK >= 0 {
			note = fmt.Sprintf(" (top %d)", t.topK)
		}
		emit(depth, "sort by %s%s", strings.Join(keys, ", "), note)
		describeOperator(t.child, depth+1, emit)
	case *distinctOp:
		emit(depth, "distinct")
		describeOperator(t.child, depth+1, emit)
	case *groupOp:
		if len(t.stmt.GroupBy) > 0 {
			groups := make([]string, len(t.stmt.GroupBy))
			for i, g := range t.stmt.GroupBy {
				groups[i] = g.String()
			}
			emit(depth, "hash aggregate by %s", strings.Join(groups, ", "))
		} else {
			emit(depth, "aggregate (single group)")
		}
		describeOperator(t.child, depth+1, emit)
	case *projectOp:
		emit(depth, "project %d column(s)", len(t.outCols))
		describeOperator(t.child, depth+1, emit)
	case *scanOp:
		switch {
		case t.rangeIdx != nil:
			emit(depth, "index range scan %s (as %s): %s", t.table.Name, t.qual,
				t.spec.describe(t.table.Columns[t.rangeIdx.Column].Name))
		case t.ids != nil:
			emit(depth, "index scan %s (as %s): %d candidate row(s)", t.table.Name, t.qual, len(t.ids))
		default:
			emit(depth, "seq scan %s (as %s): %d row(s)", t.table.Name, t.qual, len(t.table.rows))
		}
	case *ordScanOp:
		col := t.table.Columns[t.idx.Column].Name
		dir := ""
		if t.desc {
			dir = " desc"
		}
		if t.spec.bounded() {
			emit(depth, "ordered index range scan %s (as %s) by %s%s: %s",
				t.table.Name, t.qual, col, dir, t.spec.describe(col))
		} else {
			emit(depth, "ordered index scan %s (as %s) by %s%s", t.table.Name, t.qual, col, dir)
		}
	case *corrProbeScanOp:
		via := "transient hash memo"
		if t.fromIdx {
			via = "index"
		}
		emit(depth, "correlated probe %s (as %s) on %s = %s (via %s)",
			t.table.Name, t.qual, t.colE.String(), t.keyE.String(), via)
	case *valuesOp:
		emit(depth, "materialised rows: %d", len(t.rows))
		if t.src != nil {
			describeOperator(t.src, depth+1, emit)
		}
	case *filterOp:
		emit(depth, "filter %s", t.pred.String())
		describeSubplans(t.pred, depth+1, t.env, emit)
		describeOperator(t.child, depth+1, emit)
	case *hashJoinOp:
		side := "right"
		if t.buildIsLeft {
			side = "left"
		}
		emit(depth, "hash join on %s = %s (build %s: %d key(s))%s",
			t.leftKey.String(), t.rightKey.String(), side, len(t.buckets), residualNote(t.residualE))
		describeOperator(t.probe, depth+1, emit)
		emit(depth+1, "build side: %d column(s)", len(t.buildCols))
		if t.buildSrc != nil {
			describeOperator(t.buildSrc, depth+2, emit)
		}
	case *mergeJoinOp:
		emit(depth, "merge join on %s = %s%s",
			t.leftKeyE.String(), t.rightKeyE.String(), residualNote(t.residualE))
		emit(depth+1, "ordered index scan %s by %s", t.leftTable.Name,
			t.leftTable.Columns[t.leftIdx.Column].Name)
		emit(depth+1, "ordered index scan %s by %s", t.rightTable.Name,
			t.rightTable.Columns[t.rightIdx.Column].Name)
	case *indexJoinOp:
		sideNote := ""
		if !t.probeIsLeft {
			sideNote = ", probing right input"
		}
		emit(depth, "index nested loop join on %s = %s (index %s on %s%s)%s",
			t.probeKeyE.String(), t.idxKeyE.String(), t.idx.Name, t.table.Name,
			sideNote, residualNote(t.residualE))
		describeOperator(t.probe, depth+1, emit)
	case *nestedLoopJoinOp:
		kind := "nested loop join"
		if t.on == nil {
			kind = "cross join"
		}
		emit(depth, "%s (right side: %d row(s))", kind, len(t.rightRows))
		describeOperator(t.left, depth+1, emit)
		if t.rightSrc != nil {
			describeOperator(t.rightSrc, depth+2, emit)
		}
	default:
		emit(depth, "%T", op)
	}
}

// describeSubplans renders the plan of every subquery appearing in a
// filter predicate (EXISTS, IN, scalar), noting whether the subplan
// cache applies: a cacheable subplan is compiled once per statement and
// re-pulled with only the outer row rebound per probe (compile.go).
// The enclosing filter's environment supplies the outer scope so
// correlated references resolve during the display build.
func describeSubplans(e Expr, depth int, env *evalEnv, emit func(int, string, ...any)) {
	walkExpr(e, func(x Expr) bool {
		var sel *SelectStmt
		switch t := x.(type) {
		case *Subquery:
			sel = t.Select
		case *ExistsExpr:
			sel = t.Select
		case *InList:
			sel = t.Sub
		}
		if sel == nil {
			return true
		}
		note := "rebuilt per probe"
		if subplanCacheable(sel) {
			note = "compiled once, outer row rebound per probe"
		}
		root, _, err := buildSelectPlan(sel, env.db, env.params, env, false, nil)
		if err != nil {
			emit(depth, "subplan (%s): error: %v", note, err)
			return false
		}
		emit(depth, "subplan (%s):", note)
		describeOperator(root, depth+1, emit)
		return false
	})
}

func residualNote(residual Expr) string {
	if residual == nil {
		return ""
	}
	return " residual " + residual.String()
}
