package sqldb

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Explain describes the execution plan of a SELECT statement without
// running it to completion. It builds the exact operator tree Query would
// run (same planner, same access-path and join choices) and renders one
// line per operator: which scans use indexes, range bounds and ordered
// (sort-eliding) index scans, predicates pushed below joins, which joins
// hash, merge, index-probe or fall back to nested loops, and the
// post-processing stages (aggregate, distinct, sort — including bounded
// top-k — and limit). Join build sides are materialised during planning
// (they are part of plan construction in this engine), so Explain's cost
// is bounded by the build sides, not the probe side.
//
// ExplainAnalyze (analyze.go) runs the statement for real and renders the
// same tree annotated with per-operator counts.
func (db *Database) Explain(sql string, params ...any) ([]string, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, errf(ErrMisuse, "sql: EXPLAIN supports SELECT statements, got %T", stmt)
	}
	vals := bindParams(params)
	// A real (discarded) query context, so planner decisions that depend
	// on it — parallel scan and parallel aggregation eligibility — match
	// the plan Query would run. Its counters are never flushed: EXPLAIN
	// does not bill the engine-wide stats.
	qc := newQueryCtx(context.Background(), db)
	snap, release := db.beginRead(nil)
	qc.snap = snap
	defer release()
	defer qc.stopWorkers() // pools stop before the snapshot is released
	// topLevel mirrors Query's planning so EXPLAIN shows the plan that
	// would actually run.
	root, _, err := buildSelectPlan(sel, db, vals, nil, true, qc)
	if err != nil {
		return nil, err
	}
	p := &planPrinter{}
	p.describe(root, 0)
	return p.lines, nil
}

// planPrinter renders an operator tree one line per node. With rec set
// (EXPLAIN ANALYZE) each line is annotated with the operator's recorded
// counts: rows produced, loops for re-pulled operators, inclusive wall
// time, and access-path-specific extras (rows scanned, sort in/kept).
type planPrinter struct {
	lines []string
	rec   *execRecorder // nil = plain EXPLAIN

	pending *opStat // stat for the next emitted line (set by statOp unwrap)
	extra   string  // operator-specific annotation for the next emitted line
}

// emit appends one line, attaching (and clearing) any pending annotation.
func (p *planPrinter) emit(depth int, format string, args ...any) {
	line := strings.Repeat("  ", depth) + fmt.Sprintf(format, args...)
	line += p.takeAnnotation()
	p.lines = append(p.lines, line)
}

// takeAnnotation renders and clears the pending per-operator annotation.
func (p *planPrinter) takeAnnotation() string {
	st, extra := p.pending, p.extra
	p.pending, p.extra = nil, ""
	var parts []string
	if st != nil {
		parts = append(parts, fmt.Sprintf("rows=%d", st.rows))
		if st.loops > 1 {
			parts = append(parts, fmt.Sprintf("loops=%d", st.loops))
		}
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	if st != nil {
		parts = append(parts, "time="+st.elapsed.Round(time.Microsecond).String())
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, " ") + "]"
}

// describe walks the operator tree emitting one line per node.
func (p *planPrinter) describe(op operator, depth int) {
	if s, ok := op.(*statOp); ok {
		p.pending = s.stat
		op = s.child
	}
	analyzed := p.rec != nil
	switch t := op.(type) {
	case *limitOp:
		p.emit(depth, "limit/offset")
		p.describe(t.child, depth+1)
	case *sortOp:
		keys := make([]string, len(t.orderBy))
		for i, ob := range t.orderBy {
			keys[i] = ob.String()
		}
		note := ""
		if t.topK >= 0 {
			note = fmt.Sprintf(" (top %d)", t.topK)
		}
		if analyzed {
			p.extra = fmt.Sprintf("in=%d kept=%d", t.drained, len(t.rows))
		}
		p.emit(depth, "sort by %s%s", strings.Join(keys, ", "), note)
		p.describe(t.child, depth+1)
	case *distinctOp:
		p.emit(depth, "distinct")
		p.describe(t.child, depth+1)
	case *groupOp:
		parNote := ""
		switch {
		case t.par != nil:
			parNote = fmt.Sprintf(" (parallel workers=%d)", t.par.workers)
		case t.vec != nil:
			parNote = " (vectorized)"
		}
		if len(t.stmt.GroupBy) > 0 {
			groups := make([]string, len(t.stmt.GroupBy))
			for i, g := range t.stmt.GroupBy {
				groups[i] = g.String()
			}
			p.emit(depth, "hash aggregate by %s%s", strings.Join(groups, ", "), parNote)
		} else {
			p.emit(depth, "aggregate (single group)%s", parNote)
		}
		for _, it := range t.stmt.Items {
			p.describeSubplans(it.Expr, depth+1, t.env)
		}
		if t.stmt.Having != nil {
			p.describeSubplans(t.stmt.Having, depth+1, t.env)
		}
		p.describe(t.child, depth+1)
	case *projectOp:
		vecNote := ""
		if t.vec != nil {
			vecNote = " (vectorized)"
		}
		p.emit(depth, "project %d column(s)%s", len(t.outCols), vecNote)
		for _, it := range t.items {
			p.describeSubplans(it.Expr, depth+1, t.env)
		}
		p.describe(t.child, depth+1)
	case *scanOp:
		if analyzed {
			p.extra = scanAnnotation(t.scanned, t.tombSkipped)
		}
		switch {
		case t.rangeIdx != nil:
			p.emit(depth, "index range scan %s (as %s): %s", t.table.Name, t.qual,
				t.spec.describe(t.table.Columns[t.rangeIdx.Column].Name))
		case t.ids != nil:
			p.emit(depth, "index scan %s (as %s): %d candidate row(s)", t.table.Name, t.qual, len(t.ids))
		default:
			p.emit(depth, "seq scan %s (as %s): %d row(s)", t.table.Name, t.qual, t.table.liveCount())
		}
	case *vecScanOp:
		if analyzed {
			p.extra = scanAnnotation(t.scanned, t.tombSkipped) +
				fmt.Sprintf(" batches=%d", t.batches)
			if t.decBlocks > 0 {
				p.extra += fmt.Sprintf(" segments=%d decoded_blocks=%d", len(t.segs), t.decBlocks)
			}
		}
		p.emit(depth, "vectorized seq scan %s (as %s): %d row(s)",
			t.table.Name, t.qual, t.table.liveCount())
		for _, pred := range t.preds {
			p.emit(depth+1, "fused filter %s", pred.String())
		}
	case *parScanOp:
		gatherNote := ""
		if t.unordered {
			gatherNote = " (unordered gather)"
		}
		if analyzed {
			p.extra = scanAnnotation(t.scanned, t.tombSkipped) + fmt.Sprintf(" workers=%d", t.workers)
			if t.decBlocks > 0 {
				p.extra += fmt.Sprintf(" decoded_blocks=%d", t.decBlocks)
			}
		}
		switch {
		case t.rangeIdx != nil:
			p.emit(depth, "parallel index range scan %s (as %s) workers=%d%s: %s", t.table.Name, t.qual,
				t.workers, gatherNote, t.spec.describe(t.table.Columns[t.rangeIdx.Column].Name))
		case t.ids != nil:
			p.emit(depth, "parallel index scan %s (as %s) workers=%d%s: %d candidate row(s)",
				t.table.Name, t.qual, t.workers, gatherNote, len(t.ids))
		default:
			p.emit(depth, "parallel seq scan %s (as %s) workers=%d%s: %d row(s)",
				t.table.Name, t.qual, t.workers, gatherNote, t.table.liveCount())
		}
		if t.pred != nil {
			p.emit(depth+1, "fused filter %s", t.pred.String())
		}
	case *ordScanOp:
		col := t.table.Columns[t.idx.Column].Name
		dir := ""
		if t.desc {
			dir = " desc"
		}
		if analyzed {
			p.extra = scanAnnotation(t.scanned, t.tombSkipped)
		}
		if t.spec.bounded() {
			p.emit(depth, "ordered index range scan %s (as %s) by %s%s: %s",
				t.table.Name, t.qual, col, dir, t.spec.describe(col))
		} else {
			p.emit(depth, "ordered index scan %s (as %s) by %s%s", t.table.Name, t.qual, col, dir)
		}
	case *corrProbeScanOp:
		via := "transient hash memo"
		if t.fromIdx {
			via = "index"
		}
		if analyzed {
			p.extra = fmt.Sprintf("scanned=%d", t.scanned)
		}
		p.emit(depth, "correlated probe %s (as %s) on %s = %s (via %s)",
			t.table.Name, t.qual, t.colE.String(), t.keyE.String(), via)
	case *valuesOp:
		p.emit(depth, "materialised rows: %d", len(t.rows))
		if t.src != nil {
			p.describe(t.src, depth+1)
		}
	case *filterOp:
		p.emit(depth, "filter %s", t.pred.String())
		p.describeSubplans(t.pred, depth+1, t.env)
		p.describe(t.child, depth+1)
	case *hashJoinOp:
		side := "right"
		if t.buildIsLeft {
			side = "left"
		}
		buildNote := ""
		if t.buildWorkers > 0 {
			buildNote = fmt.Sprintf(", parallel build workers=%d", t.buildWorkers)
		}
		p.emit(depth, "hash join on %s = %s (build %s: %d key(s)%s)%s",
			t.leftKey.String(), t.rightKey.String(), side, t.nKeys, buildNote, residualNote(t.residualE))
		p.describe(t.probe, depth+1)
		p.emit(depth+1, "build side: %d column(s)", len(t.buildCols))
		if t.buildSrc != nil {
			p.describe(t.buildSrc, depth+2)
		}
	case *mergeJoinOp:
		if analyzed {
			p.extra = scanAnnotation(t.scanned, t.tombSkipped)
		}
		p.emit(depth, "merge join on %s = %s%s",
			t.leftKeyE.String(), t.rightKeyE.String(), residualNote(t.residualE))
		p.emit(depth+1, "ordered index scan %s by %s", t.leftTable.Name,
			t.leftTable.Columns[t.leftIdx.Column].Name)
		p.emit(depth+1, "ordered index scan %s by %s", t.rightTable.Name,
			t.rightTable.Columns[t.rightIdx.Column].Name)
	case *indexJoinOp:
		sideNote := ""
		if !t.probeIsLeft {
			sideNote = ", probing right input"
		}
		p.emit(depth, "index nested loop join on %s = %s (index %s on %s%s)%s",
			t.probeKeyE.String(), t.idxKeyE.String(), t.idx.Name, t.table.Name,
			sideNote, residualNote(t.residualE))
		p.describe(t.probe, depth+1)
	case *nestedLoopJoinOp:
		kind := "nested loop join"
		if t.on == nil {
			kind = "cross join"
		}
		p.emit(depth, "%s (right side: %d row(s))", kind, len(t.rightRows))
		p.describe(t.left, depth+1)
		if t.rightSrc != nil {
			p.describe(t.rightSrc, depth+2)
		}
	default:
		p.emit(depth, "%T", op)
	}
}

// describeSubplans renders the plan of every subquery appearing in an
// expression (EXISTS, IN, scalar), noting whether the subplan cache
// applies: a cacheable subplan is compiled once per statement and
// re-pulled with only the outer row rebound per probe (compile.go).
//
// Under EXPLAIN ANALYZE the subplan that actually executed is looked up
// in the recorder and rendered with its real counts plus per-subplan
// probe and cache-hit totals. Plain EXPLAIN rebuilds the subplan for
// display; the enclosing operator's environment supplies the outer scope
// so correlated references resolve during the display build.
func (p *planPrinter) describeSubplans(e Expr, depth int, env *evalEnv) {
	walkExpr(e, func(x Expr) bool {
		var sel *SelectStmt
		switch t := x.(type) {
		case *Subquery:
			sel = t.Select
		case *ExistsExpr:
			sel = t.Select
		case *InList:
			sel = t.Sub
		}
		if sel == nil {
			return true
		}
		note := "rebuilt per probe"
		if subplanCacheable(sel) {
			note = "compiled once, outer row rebound per probe"
		}
		if p.rec != nil {
			sp := p.rec.subplans[sel]
			if sp == nil {
				p.emit(depth, "subplan (%s): not compiled", note)
				return false
			}
			p.emit(depth, "subplan (%s) [probes=%d hits=%d misses=%d]:",
				note, sp.probes, sp.hits, sp.misses)
			if sp.root != nil {
				p.describe(sp.root, depth+1)
			} else {
				p.emit(depth+1, "never executed")
			}
			return false
		}
		root, _, err := buildSelectPlan(sel, env.db, env.params, env, false, nil)
		if err != nil {
			p.emit(depth, "subplan (%s): error: %v", note, err)
			return false
		}
		p.emit(depth, "subplan (%s):", note)
		p.describe(root, depth+1)
		return false
	})
}

// scanAnnotation renders an access path's EXPLAIN ANALYZE extras: rows
// actually read, plus the tombstoned (deleted, not yet compacted) slots
// it stepped over when there were any.
func scanAnnotation(scanned, tombSkipped uint64) string {
	if tombSkipped > 0 {
		return fmt.Sprintf("scanned=%d tombstones=%d", scanned, tombSkipped)
	}
	return fmt.Sprintf("scanned=%d", scanned)
}

func residualNote(residual Expr) string {
	if residual == nil {
		return ""
	}
	return " residual " + residual.String()
}
