package sqldb

import (
	"fmt"
	"strings"
)

// Explain describes the execution plan of a SELECT statement without
// running it to completion: which scans use indexes, which joins hash and
// which fall back to nested loops, and the post-processing stages
// (aggregate, distinct, sort, limit). Join build sides are materialised
// during planning (they are part of plan construction in this engine), so
// Explain's cost is bounded by the build sides, not the probe side.
func (db *Database) Explain(sql string, params ...any) ([]string, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, errf(ErrMisuse, "sql: EXPLAIN supports SELECT statements, got %T", stmt)
	}
	vals := bindParams(params)
	db.mu.RLock()
	defer db.mu.RUnlock()
	// topLevel mirrors Query's planning so EXPLAIN shows the plan that
	// would actually run.
	src, where, err := buildFrom(sel, db, vals, nil, true, nil)
	if err != nil {
		return nil, err
	}
	var lines []string
	emit := func(depth int, format string, args ...any) {
		lines = append(lines, strings.Repeat("  ", depth)+fmt.Sprintf(format, args...))
	}

	depth := 0
	if sel.Limit != nil || sel.Offset != nil {
		emit(depth, "limit/offset")
		depth++
	}
	if len(sel.OrderBy) > 0 {
		keys := make([]string, len(sel.OrderBy))
		for i, ob := range sel.OrderBy {
			keys[i] = ob.String()
		}
		emit(depth, "sort by %s", strings.Join(keys, ", "))
		depth++
	}
	if sel.Distinct {
		emit(depth, "distinct")
		depth++
	}
	aggregate := len(sel.GroupBy) > 0 || sel.Having != nil
	if !aggregate {
		for _, it := range sel.Items {
			if exprContainsAggregate(it.Expr) {
				aggregate = true
				break
			}
		}
	}
	if aggregate {
		if len(sel.GroupBy) > 0 {
			groups := make([]string, len(sel.GroupBy))
			for i, g := range sel.GroupBy {
				groups[i] = g.String()
			}
			emit(depth, "hash aggregate by %s", strings.Join(groups, ", "))
		} else {
			emit(depth, "aggregate (single group)")
		}
		depth++
	}
	emit(depth, "project %d column(s)", len(sel.Items))
	depth++
	if where != nil {
		emit(depth, "filter %s", where.String())
		depth++
	}
	describeOperator(src, depth, emit)
	return lines, nil
}

// describeOperator walks the operator tree emitting one line per node.
func describeOperator(op operator, depth int, emit func(int, string, ...any)) {
	switch t := op.(type) {
	case *scanOp:
		if t.ids != nil {
			emit(depth, "index scan %s (as %s): %d candidate row(s)", t.table.Name, t.qual, len(t.ids))
		} else {
			emit(depth, "seq scan %s (as %s): %d row(s)", t.table.Name, t.qual, len(t.table.rows))
		}
	case *valuesOp:
		emit(depth, "materialised rows: %d", len(t.rows))
	case *filterOp:
		emit(depth, "filter %s", t.pred.String())
		describeOperator(t.child, depth+1, emit)
	case *hashJoinOp:
		side := "right"
		if t.buildIsLeft {
			side = "left"
		}
		emit(depth, "hash join on %s = %s (build %s: %d key(s))%s",
			t.leftKey.String(), t.rightKey.String(), side, len(t.buckets), residualNote(t.residualE))
		describeOperator(t.probe, depth+1, emit)
		emit(depth+1, "build side: %d column(s)", len(t.buildCols))
	case *indexJoinOp:
		sideNote := ""
		if !t.probeIsLeft {
			sideNote = ", probing right input"
		}
		emit(depth, "index nested loop join on %s = %s (index %s on %s%s)%s",
			t.probeKeyE.String(), t.idxKeyE.String(), t.idx.Name, t.table.Name,
			sideNote, residualNote(t.residualE))
		describeOperator(t.probe, depth+1, emit)
	case *nestedLoopJoinOp:
		kind := "nested loop join"
		if t.on == nil {
			kind = "cross join"
		}
		emit(depth, "%s (right side: %d row(s))", kind, len(t.rightRows))
		describeOperator(t.left, depth+1, emit)
	default:
		emit(depth, "%T", op)
	}
}

func residualNote(residual Expr) string {
	if residual == nil {
		return ""
	}
	return " residual " + residual.String()
}
