package sqldb

// This file implements the vectorized executor built on the kernels of
// vector.go: a batch-at-a-time scan with the WHERE conjuncts fused in,
// plus the planner hooks that swap it in under projections and
// aggregations. The operator keeps the row-at-a-time `operator` contract
// towards the rest of the tree — it emits the surviving rows one by one —
// while internally gathering heap rows (or decoding sealed column
// segments, segment.go) a batch at a time and running the compiled
// predicate kernels over whole batches.
//
// Accounting is emission-driven so it stays bit-identical to the serial
// scanOp+filterOp stack even when a LIMIT stops the plan early: gathered
// rows and the tombstones stepped over before them are counted only when
// the emission cursor passes them, exactly where the row engine's pull
// would have counted them.

// vectorEnabled switches the vectorized executor on. Package-level so the
// equivalence and metamorphic suites can force the row engine and compare
// the two row for row.
var vectorEnabled = true

// vecMinRows is the minimum live-row count before a pure-heap scan is
// worth batching (sealed tables always vectorize). Mirrors
// parallelMinRows; a variable so tests can lower it.
var vecMinRows = 4096

// vecScanOp scans one base table batch-at-a-time with the filter stack's
// conjuncts compiled to predicate kernels. It replaces an unrestricted
// filter-over-seq-scan chain; index and range access paths keep the row
// scan (their id lists are the win already).
type vecScanOp struct {
	table  *Table
	qual   string
	cols   []colInfo
	preds  []Expr // fused conjuncts, retained for EXPLAIN
	vpreds []vecPredFn
	need   []bool // column ordinals the compiled kernels read
	qc     *queryCtx

	// needRows: emitted rows must be real full-width rows (row-projection
	// or aggregation consumers). The vectorized projection path clears it:
	// items are read from batch columns, so sealed blocks skip row
	// materialisation and decode only the needed columns.
	needRows bool
	// curBlk is the sealed block behind the current batch (nil for heap
	// stretches). Kept so materializeRow can decode columns the kernels
	// did not need lazily — once per batch, and only for batches that
	// actually discover a new aggregation group.
	curBlk *segBlock
	matSeq uint64    // batch generation matBuf belongs to
	matBuf [][]Value // lazily decoded full columns, indexed by ordinal

	inited  bool
	counted bool
	done    bool
	snap    *snapshot
	arr     []*rowSlot
	n       int
	segs    []*segment
	slotPos int
	carry   int64 // tombstones stepped over since the previous gathered row

	b       vecBatch
	seq     uint64 // batch generation, for consumers caching kernel results
	have    bool   // b holds an unconsumed batch
	emitPos int    // next batch ordinal to account/emit
	lastIdx int    // batch ordinal of the row the last next() returned

	arena  rowArena
	colBuf [][]Value
	rowBuf []Row

	scanned     uint64 // per-operator counters (EXPLAIN ANALYZE)
	tombSkipped uint64
	segScans    uint64
	decBlocks   uint64
	batches     uint64
}

func (s *vecScanOp) columns() []colInfo { return s.cols }

func (s *vecScanOp) reset() {
	s.done = false
	s.have = false
	s.slotPos = 0
	s.carry = 0
	s.emitPos = 0
	// inited and counted persist: the snapshot, slot array and access-path
	// record are per-operator, as in scanOp.
}

func (s *vecScanOp) next() (Row, bool, error) {
	b, i, ok, err := s.emitNext()
	if err != nil || !ok {
		return nil, false, err
	}
	if b.rows != nil {
		return b.rows[i], true, nil
	}
	// Row-free batch (fully vectorized projection): the consumer reads
	// batch columns via lastIdx, not the returned row.
	return nil, true, nil
}

// emitNext advances the emission cursor to the next filter-surviving row,
// folding the counters of every row and tombstone it passes — the lazy
// walk that keeps totals identical to the row engine under early stops.
func (s *vecScanOp) emitNext() (*vecBatch, int, bool, error) {
	if !s.inited {
		s.inited = true
		if s.qc != nil {
			s.snap = s.qc.snap
		}
		s.arr, s.n = s.table.loadSlots()
		if !debugDisableTombstoneSkip {
			s.segs = s.table.loadSegs()
		}
		s.colBuf = make([][]Value, len(s.table.Columns))
		s.b.cols = make([]vecCol, len(s.table.Columns))
		s.b.pre = make([]int32, vecBatchRows)
	}
	if s.qc != nil {
		if !s.counted {
			s.counted = true
			s.qc.fullScans++
		}
		if err := s.qc.tickCancelled(); err != nil {
			return nil, 0, false, err
		}
	}
	for {
		if s.have {
			for s.emitPos < s.b.n {
				i := s.emitPos
				s.emitPos++
				if p := s.b.pre[i]; p > 0 {
					s.tombSkipped += uint64(p)
					if s.qc != nil {
						s.qc.tombstonesSkipped += uint64(p)
					}
				}
				s.scanned++
				if s.qc != nil {
					s.qc.rowsScanned++
				}
				if s.b.sel.get(i) {
					s.lastIdx = i
					return &s.b, i, true, nil
				}
			}
			s.have = false
		}
		if s.done {
			return nil, 0, false, nil
		}
		if err := s.loadBatch(); err != nil {
			return nil, 0, false, err
		}
	}
}

// loadBatch fills the next non-empty batch, or flushes the trailing
// tombstone carry and marks the scan done. One sealed block becomes one
// batch; heap stretches gather up to vecBatchRows visible rows, stopping
// at sealed-block boundaries so batches never straddle storage formats.
func (s *vecScanOp) loadBatch() error {
	for {
		if s.slotPos >= s.n {
			// End of the slot array: trailing tombstones are only billed
			// when the consumer actually drained the scan this far —
			// exactly when the row engine would have walked them.
			if s.carry > 0 {
				s.tombSkipped += uint64(s.carry)
				if s.qc != nil {
					s.qc.tombstonesSkipped += uint64(s.carry)
				}
				s.carry = 0
			}
			s.done = true
			return nil
		}
		var n int
		var err error
		if seg := s.coveringSeg(); seg != nil {
			n, err = s.loadSealed(seg)
		} else {
			n = s.loadHeap()
		}
		if err != nil {
			return err
		}
		if n == 0 {
			continue
		}
		s.b.n = n
		s.b.sel = maskTo(n)
		for _, p := range s.vpreds {
			var t, nl vecBitset
			p(&s.b, &t, &nl)
			for w := range s.b.sel {
				s.b.sel[w] &= t[w] // false and NULL both drop, as filterOp
			}
		}
		s.seq++
		s.b.seq = s.seq
		s.have = true
		s.emitPos = 0
		s.batches++
		if s.qc != nil {
			s.qc.vectorBatches++
		}
		return nil
	}
}

// coveringSeg returns the sealed segment covering the current position,
// when the position sits on a block boundary.
func (s *vecScanOp) coveringSeg() *segment {
	if s.segs == nil || s.slotPos%segBlockSlots != 0 {
		return nil
	}
	return findSeg(s.segs, s.slotPos)
}

// loadSealed decodes one sealed block into the batch. Sealed blocks hold
// no tombstones by construction, so pre stays zero except for the carry
// from a preceding heap stretch.
func (s *vecScanOp) loadSealed(seg *segment) (int, error) {
	blk := seg.block(s.slotPos)
	s.slotPos += segBlockSlots
	s.decBlocks++
	if s.qc != nil {
		s.qc.decodedBlocks++
		if s.segScans == 0 {
			s.qc.segmentScans++
		}
	}
	s.segScans++
	nr := blk.nrows
	if nr == 0 {
		return 0, nil
	}
	s.curBlk = blk
	width := len(s.table.Columns)
	for c := 0; c < width; c++ {
		if !s.needRows && !s.need[c] {
			s.b.cols[c] = vecCol{}
			continue
		}
		buf := s.colBuf[c]
		if cap(buf) < nr {
			buf = make([]Value, vecBatchRows)
			s.colBuf[c] = buf
		}
		if err := blk.cols[c].decode(nr, buf[:nr]); err != nil {
			return 0, err
		}
		s.b.cols[c] = vecCol{vals: buf[:nr], kinds: blk.cols[c].kinds}
	}
	if s.needRows {
		if s.rowBuf == nil {
			s.rowBuf = make([]Row, vecBatchRows)
		}
		for j := 0; j < nr; j++ {
			r := s.arena.alloc(width)
			for c := 0; c < width; c++ {
				r[c] = s.b.cols[c].vals[j]
			}
			s.rowBuf[j] = r
		}
		s.b.rows = s.rowBuf[:nr]
	} else {
		s.b.rows = nil
	}
	for j := 0; j < nr; j++ {
		s.b.pre[j] = 0
	}
	s.b.pre[0] = int32(s.carry)
	s.carry = 0
	return nr, nil
}

// loadHeap gathers visible heap rows into the batch, mirroring scanOp's
// per-slot walk: versionless slots pass silently, invisible versions
// accumulate into the carry attached to the next gathered row.
func (s *vecScanOp) loadHeap() int {
	if s.rowBuf == nil {
		s.rowBuf = make([]Row, vecBatchRows)
	}
	s.curBlk = nil
	n := 0
	for n < vecBatchRows && s.slotPos < s.n {
		if s.segs != nil && s.slotPos%segBlockSlots == 0 &&
			findSeg(s.segs, s.slotPos) != nil {
			break // next block is sealed: close the batch at the boundary
		}
		head := s.arr[s.slotPos].head.Load()
		s.slotPos++
		if head == nil {
			continue
		}
		var r Row
		switch {
		case debugDisableTombstoneSkip:
			r = head.row
		case s.snap == nil:
			r = latestRow(head)
		default:
			r = visibleVersion(head, s.snap)
		}
		if r == nil {
			s.carry++
			continue
		}
		s.b.pre[n] = int32(s.carry)
		s.carry = 0
		s.rowBuf[n] = r
		n++
	}
	if n == 0 {
		return 0
	}
	s.b.rows = s.rowBuf[:n]
	for c, needed := range s.need {
		if !needed {
			s.b.cols[c] = vecCol{}
			continue
		}
		buf := s.colBuf[c]
		if cap(buf) < n {
			buf = make([]Value, vecBatchRows)
			s.colBuf[c] = buf
		}
		for j := 0; j < n; j++ {
			buf[j] = s.rowBuf[j][c]
		}
		s.b.cols[c].setVals(buf[:n])
	}
	return n
}

// materializeRow builds a full-width row for a batch position: heap
// batches hand back the original row; sealed batches read the eagerly
// decoded kernel columns and decode the rest on demand, once per batch —
// aggregation pays for columns outside its kernels only when a batch
// actually discovers a new group.
func (s *vecScanOp) materializeRow(b *vecBatch, i int) Row {
	if b.rows != nil {
		return b.rows[i].Clone()
	}
	width := len(s.table.Columns)
	r := make(Row, width)
	for c := 0; c < width; c++ {
		if col := &b.cols[c]; col.vals != nil {
			r[c] = col.vals[i]
			continue
		}
		r[c] = s.lazyCol(b, c)[i]
	}
	return r
}

// lazyCol decodes one column the kernels did not need from the current
// sealed block, caching it for the batch's lifetime. Decode failures are
// impossible for blocks this process sealed (segment_test.go fuzzes the
// corruption paths); a hypothetical one degrades to NULLs rather than a
// panic, since the heap still holds the truth for every covered row.
func (s *vecScanOp) lazyCol(b *vecBatch, c int) []Value {
	if s.matBuf == nil {
		s.matBuf = make([][]Value, len(s.table.Columns))
	}
	if s.matSeq != b.seq {
		s.matSeq = b.seq
		for i := range s.matBuf {
			s.matBuf[i] = nil
		}
	}
	if s.matBuf[c] == nil {
		buf := make([]Value, b.n)
		if s.curBlk == nil || s.curBlk.cols[c].decode(b.n, buf) != nil {
			for i := range buf {
				buf[i] = Null
			}
		}
		s.matBuf[c] = buf
	}
	return s.matBuf[c]
}

// ---------------------------------------------------------------------------
// Planner hooks

// tryVectorize replaces an unrestricted filter-over-seq-scan chain with a
// vecScanOp when every conjunct compiles to predicate kernels. Returns
// the (possibly unchanged) source and, on success, the compiler — the
// caller reuses it (and its need-column tracking) to vectorize the
// projection or aggregation above. A chain whose shape qualified but
// whose expressions did not compile counts a row fallback.
func tryVectorize(src operator, db *Database, params []Value, qc *queryCtx) (operator, *vecCompiler) {
	if !vectorEnabled {
		return src, nil
	}
	sc, preds := parallelScanTarget(src)
	if sc == nil || sc.ids != nil || sc.rangeIdx != nil {
		return src, nil
	}
	// Size gate: below vecMinRows a pure-heap scan pays batch setup with
	// nothing to amortize it over, so small tables stay row-at-a-time.
	// Tables with sealed segments always qualify — decoding columns
	// batch-at-a-time is the segments' native access path. This is a size
	// gate, not a compile fallback, so rowFallbacks does not tick.
	if sc.table.sealedRows.Load() == 0 && sc.table.liveCount() < vecMinRows {
		return src, nil
	}
	vc := newVecCompiler(sc.cols, db, params)
	vpreds := make([]vecPredFn, len(preds))
	for i, p := range preds {
		vp, ok := vc.compilePred(p)
		if !ok {
			if qc != nil {
				qc.rowFallbacks++
			}
			return src, nil
		}
		vpreds[i] = vp
	}
	return &vecScanOp{
		table: sc.table, qual: sc.qual, cols: sc.cols,
		preds: preds, vpreds: vpreds, need: vc.need, qc: qc,
		needRows: true,
	}, vc
}

// vecProjPlan is a fully vectorized projection: every select item
// compiled to a kernel, read from the scan's batches by ordinal.
type vecProjPlan struct {
	src    *vecScanOp
	vitems []vecExprFn

	seq   uint64
	cache []*vecCol
}

// tryVectorizeProj compiles the select items against the vectorized
// scan's compiler. All-or-nothing: a single non-compilable item keeps the
// whole projection row-at-a-time (the scan stays vectorized), and the
// compiler's need marks are rolled back so the scan does not gather
// columns only the abandoned kernels would have read.
func tryVectorizeProj(vsc *vecScanOp, vc *vecCompiler, items []SelectItem, qc *queryCtx) *vecProjPlan {
	saved := append([]bool(nil), vc.need...)
	vitems := make([]vecExprFn, len(items))
	for i, it := range items {
		f, ok := vc.compileExpr(it.Expr)
		if !ok {
			copy(vc.need, saved)
			if qc != nil {
				qc.rowFallbacks++
			}
			return nil
		}
		vitems[i] = f
	}
	vsc.needRows = false
	return &vecProjPlan{src: vsc, vitems: vitems, cache: make([]*vecCol, len(items))}
}

// itemCols returns the kernel results for the batch the scan's last
// emitted row belongs to, re-evaluating once per batch.
func (vp *vecProjPlan) itemCols() []*vecCol {
	b := &vp.src.b
	if b.seq != vp.seq {
		vp.seq = b.seq
		for i, f := range vp.vitems {
			vp.cache[i] = f(b)
		}
	}
	return vp.cache
}

// vecAggPlan is a vectorized aggregation input: group keys and aggregate
// arguments compiled to kernels over the scan's batches.
type vecAggPlan struct {
	src        *vecScanOp
	groupKerns []vecExprFn
	argKerns   []vecExprFn // indexed like aggs; nil for COUNT(*) / no-arg

	seq       uint64
	groupCols []*vecCol
	argCols   []*vecCol
}

// tryVectorizeAgg compiles the GROUP BY keys and aggregate arguments
// against the vectorized scan's compiler. All-or-nothing, like the
// projection. The scan drops needRows — batches carry only the kernel
// columns, and the representative row a first-seen group needs is
// materialised lazily (materializeRow).
func tryVectorizeAgg(vsc *vecScanOp, vc *vecCompiler, stmt *SelectStmt, aggs []*FuncCall, qc *queryCtx) *vecAggPlan {
	saved := append([]bool(nil), vc.need...)
	fail := func() *vecAggPlan {
		copy(vc.need, saved)
		if qc != nil {
			qc.rowFallbacks++
		}
		return nil
	}
	groupKerns := make([]vecExprFn, len(stmt.GroupBy))
	for i, ge := range stmt.GroupBy {
		f, ok := vc.compileExpr(ge)
		if !ok {
			return fail()
		}
		groupKerns[i] = f
	}
	argKerns := make([]vecExprFn, len(aggs))
	for i, fc := range aggs {
		if fc.Star || len(fc.Args) == 0 {
			continue
		}
		f, ok := vc.compileExpr(fc.Args[0])
		if !ok {
			return fail()
		}
		argKerns[i] = f
	}
	vsc.needRows = false
	return &vecAggPlan{
		src: vsc, groupKerns: groupKerns, argKerns: argKerns,
		groupCols: make([]*vecCol, len(groupKerns)),
		argCols:   make([]*vecCol, len(argKerns)),
	}
}

// kernelCols re-evaluates the group/argument kernels once per batch.
func (vp *vecAggPlan) kernelCols() ([]*vecCol, []*vecCol) {
	b := &vp.src.b
	if b.seq != vp.seq {
		vp.seq = b.seq
		for i, f := range vp.groupKerns {
			vp.groupCols[i] = f(b)
		}
		for i, f := range vp.argKerns {
			if f != nil {
				vp.argCols[i] = f(b)
			}
		}
	}
	return vp.groupCols, vp.argCols
}

// runAggregationVec is runAggregation's vectorized twin: it drains the
// (instrumented) child — which bottoms out in the plan's vecScanOp — and
// folds each surviving row into GROUP BY partitions, reading key and
// argument values from per-batch kernel results instead of per-row
// closures. Group discovery order, key encoding, representative rows and
// accumulator folds all match the row drain exactly.
func runAggregationVec(stmt *SelectStmt, vp *vecAggPlan, src operator, aggs []*FuncCall) ([]*aggGroup, error) {
	newStates := func() ([]aggState, error) {
		states := make([]aggState, len(aggs))
		for i, fc := range aggs {
			st, err := newAggState(fc)
			if err != nil {
				return nil, err
			}
			states[i] = st
		}
		return states, nil
	}

	index := make(map[string]int)
	var groups []*aggGroup
	keyVals := make([]Value, len(stmt.GroupBy))
	var kb []byte
	for {
		_, ok, err := src.next() // through statOp wrappers; row may be nil
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		i := vp.src.lastIdx
		groupCols, argCols := vp.kernelCols()
		kb = kb[:0]
		for gi, c := range groupCols {
			v := c.at(i)
			keyVals[gi] = v
			kb = appendValueKey(kb, v)
		}
		gi, seen := index[string(kb)]
		if !seen {
			states, err := newStates()
			if err != nil {
				return nil, err
			}
			g := &aggGroup{
				keys:   append([]Value{}, keyVals...),
				states: states,
				repRow: vp.src.materializeRow(&vp.src.b, i),
			}
			gi = len(groups)
			groups = append(groups, g)
			index[string(kb)] = gi
		}
		g := groups[gi]
		for ai, fc := range aggs {
			if fc.Star {
				g.states[ai].add(Int(1))
				continue
			}
			if vp.argKerns[ai] == nil {
				continue
			}
			g.states[ai].add(argCols[ai].at(i))
		}
	}
	if len(stmt.GroupBy) == 0 && len(groups) == 0 {
		states, err := newStates()
		if err != nil {
			return nil, err
		}
		repRow := make(Row, len(vp.src.cols))
		for i := range repRow {
			repRow[i] = Null
		}
		groups = append(groups, &aggGroup{states: states, repRow: repRow})
	}
	return groups, nil
}
