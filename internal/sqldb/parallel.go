package sqldb

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements morsel-driven intra-query parallelism in the style
// of Leis et al.'s HyPer scheduler: the row-id space of a base-table scan
// is split into fixed-size morsels that a bounded pool of workers claims
// through an atomic counter, so fast workers steal work from slow ones
// without any static partitioning. Three operators parallelize:
//
//   - parScanOp: heap / index / index-range scans with the pushed-down
//     filter fused into the workers, gathered in morsel order so the
//     output is bit-identical to the serial scan (safe under LIMIT
//     truncation and for the plan-equivalence property tests).
//   - partial aggregation (runAggregationParallel): each worker folds its
//     morsels into private GROUP BY states; the gather merges the partial
//     states and restores serial first-seen group order by tracking the
//     minimal scan ordinal at which each group appeared.
//   - hash-join build (hashJoinOp.buildParallel): workers evaluate and
//     encode build keys per morsel, then one worker per partition builds
//     its shard's buckets in global build-row order.
//
// Eligibility is decided at plan time (parallelEligible, parallelSafeExpr):
// only top-level, single-table, order-insensitive paths with expressions
// free of subqueries and function calls (the registry cannot distinguish
// builtins from user/LM UDFs, so all calls stay serial), and only above a
// row-count threshold so small scans never pay pool overhead. Ordered
// (sort-eliding) scans, merge joins, and correlated probes stay serial.
//
// Accounting: workers never touch the shared queryCtx. Each morsel result
// carries its own counters, which the gather — always the query's owner
// goroutine — folds into the per-query recorder, so the EXPLAIN ANALYZE
// accounting property (per-operator sums == per-query totals) holds
// unchanged under parallel execution.

// morselSize is the number of row ids one worker claims at a time. Large
// enough to amortise the claim + channel handoff, small enough to
// load-balance skewed filters.
const morselSize = 1024

// parallelMaxWorkers caps the default pool size; WithMaxWorkers can raise
// it explicitly.
const parallelMaxWorkers = 8

// parallelMinRows is the minimum estimated input size before the planner
// considers a parallel operator. Package variable so property tests can
// lower it to push their small corpora through the parallel paths.
var parallelMinRows = 4096

// parallelWorkersActive counts live worker goroutines engine-wide. Test
// instrumentation: the cancellation/leak tests assert it returns to zero
// after Rows.Close.
var parallelWorkersActive atomic.Int64

// defaultMaxWorkers sizes a database's pool from the runtime: GOMAXPROCS
// capped at parallelMaxWorkers. Under GOMAXPROCS=1 every plan stays
// serial, which is what keeps single-core executions bit-identical.
func defaultMaxWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > parallelMaxWorkers {
		n = parallelMaxWorkers
	}
	if n < 1 {
		n = 1
	}
	return n
}

// parallelSafeExpr reports whether an expression may be evaluated on a
// worker goroutine: no subqueries (they execute subplans against shared
// planner state) and no function calls (the registry cannot tell builtins
// from registered UDFs — including LM UDFs — so every call stays on the
// owner goroutine). Plain column refs, parameters, literals, arithmetic,
// comparisons, CASE, BETWEEN, IN (value list), LIKE and IS NULL are safe.
func parallelSafeExpr(e Expr) bool {
	safe := true
	walkExpr(e, func(x Expr) bool {
		switch t := x.(type) {
		case *Subquery, *ExistsExpr, *FuncCall:
			safe = false
		case *InList:
			if t.Sub != nil {
				safe = false
			}
		}
		return safe
	})
	return safe
}

// morselSource is the row-id space a parallel operator partitions: either
// an explicit id list (equality/range index access) or the heap [0, n).
// The slot array and snapshot are captured once on the owner goroutine;
// workers evaluate visibility against them with no lock held, exactly as
// the serial scanOp does.
type morselSource struct {
	table *Table
	ids   []int // nil = full heap scan
	arr   []*rowSlot
	n     int
	snap  *snapshot
	segs  []*segment // sealed column segments (segment.go); nil = none
}

// newMorselSource captures the scan's iteration space: the id list when
// one was materialised, otherwise the heap slot array, plus the
// statement snapshot rows are judged against. Full heap scans also
// capture the published segment list so fully sealed morsels decode
// their block instead of chasing version pointers; morselSize equals
// segBlockSlots, so a morsel is always entirely sealed or entirely heap.
func newMorselSource(t *Table, ids []int, snap *snapshot) morselSource {
	m := morselSource{table: t, ids: ids, snap: snap}
	if ids == nil {
		m.arr, m.n = t.loadSlots()
		if !debugDisableTombstoneSkip {
			m.segs = t.loadSegs()
		}
	}
	return m
}

// sealedBlockRows decodes the sealed block covering morsel idx into
// freshly materialised full-width rows (slot order, zero tombstones), or
// reports false when the morsel is not a fully sealed block. Decode
// errors cannot occur for blocks this process sealed; fail closed to the
// heap walk anyway.
func (m morselSource) sealedBlockRows(idx int) ([]Row, bool) {
	if m.segs == nil {
		return nil, false
	}
	lo := idx * morselSize
	seg := findSeg(m.segs, lo)
	if seg == nil {
		return nil, false
	}
	blk := seg.block(lo)
	width := len(m.table.Columns)
	rows := make([]Row, blk.nrows)
	if blk.nrows == 0 {
		return rows, true
	}
	cols := make([][]Value, width)
	for c := range cols {
		buf := make([]Value, blk.nrows)
		if err := blk.cols[c].decode(blk.nrows, buf); err != nil {
			return nil, false
		}
		cols[c] = buf
	}
	vals := make([]Value, blk.nrows*width)
	for j := range rows {
		r := vals[j*width : (j+1)*width : (j+1)*width]
		for c := 0; c < width; c++ {
			r[c] = cols[c][j]
		}
		rows[j] = r
	}
	return rows, true
}

func (m morselSource) total() int {
	if m.ids != nil {
		return len(m.ids)
	}
	return m.n
}

func (m morselSource) morsels() int {
	return (m.total() + morselSize - 1) / morselSize
}

// morselRow resolves one source position to its snapshot-visible row,
// mirroring scanOp's per-row logic: nil row plus skip=true means a slot
// holding only invisible versions (a tombstone the counters record);
// nil plus skip=false means a slot with no versions at all (vacuumed or
// rolled-back insert), stepped over silently.
func (m morselSource) morselRow(pos int) (Row, bool) {
	if m.ids != nil {
		r := scanRow(m.table, m.ids[pos], m.snap)
		return r, r == nil
	}
	head := m.arr[pos].head.Load()
	if head == nil {
		return nil, false
	}
	var r Row
	switch {
	case debugDisableTombstoneSkip:
		r = head.row
	case m.snap == nil:
		r = latestRow(head)
	default:
		r = visibleVersion(head, m.snap)
	}
	return r, r == nil
}

// scanMorsel runs one morsel's scan+filter loop: positions [lo, hi) of
// the source, predicate pred (nil = all rows), appending matches to out.
// Returns the rows, the number scanned, tombstones stepped over, and
// sealed blocks decoded. Heap-order iteration inside the morsel keeps the
// gathered stream bit-identical to the serial scan; a fully sealed morsel
// decodes its column block instead (same rows, same order, no
// tombstones).
func (m morselSource) scanMorsel(idx int, pred compiledExpr, env *evalEnv, out []Row) ([]Row, uint64, uint64, uint64, error) {
	var scanned, tombSkipped uint64
	if rows, ok := m.sealedBlockRows(idx); ok {
		for _, r := range rows {
			scanned++
			if pred != nil {
				env.row = r
				v, err := pred()
				if err != nil {
					return out, scanned, 0, 1, err
				}
				if v.IsNull() || !v.AsBool() {
					continue
				}
			}
			out = append(out, r)
		}
		return out, scanned, 0, 1, nil
	}
	lo := idx * morselSize
	hi := lo + morselSize
	if t := m.total(); hi > t {
		hi = t
	}
	for pos := lo; pos < hi; pos++ {
		r, skip := m.morselRow(pos)
		if r == nil {
			if skip {
				tombSkipped++
			}
			continue
		}
		scanned++
		if pred != nil {
			env.row = r
			v, err := pred()
			if err != nil {
				return out, scanned, tombSkipped, 0, err
			}
			if v.IsNull() || !v.AsBool() {
				continue
			}
		}
		out = append(out, r)
	}
	return out, scanned, tombSkipped, 0, nil
}

// countAccessPath records the access path once, mirroring scanOp.
func (m morselSource) countAccessPath(fromRange bool, qc *queryCtx) {
	if qc == nil {
		return
	}
	switch {
	case fromRange:
		qc.indexRangeScans++
	case m.ids != nil:
		qc.indexScans++
	default:
		qc.fullScans++
	}
}

// ---------------------------------------------------------------------------
// Parallel scan with ordered gather

// parMorsel is one worker's result for one morsel.
type parMorsel struct {
	idx         int
	rows        []Row
	scanned     uint64
	tombSkipped uint64
	decoded     uint64 // sealed blocks decoded (0 or 1)
	err         error
}

// parScanOp scans a base table with the pushed-down predicate fused into
// a pool of workers. The gather emits morsel results strictly in morsel
// order, so downstream operators see exactly the serial scan's stream —
// parallelism changes wall-clock, never semantics. Workers are throttled
// by a ticket semaphore to at most a few morsels ahead of the gather, so
// an abandoned or LIMIT-stopped cursor buffers O(workers) morsels, not
// the table. qc.stopWorkers (registered at start) stops and joins the
// pool before the cursor's snapshot reference is released.
type parScanOp struct {
	table    *Table
	qual     string
	cols     []colInfo
	ids      []int // nil = heap scan unless rangeIdx materialises below
	rangeIdx *Index
	spec     rangeSpec
	pred     Expr // fused filter; nil = none
	db       *Database
	params   []Value
	workers  int
	qc       *queryCtx
	// unordered: the consumer is provably order-insensitive (aggregation
	// without ORDER BY, gated by aggOrderInsensitive), so the gather
	// consumes morsels in completion order instead of stashing them back
	// into morsel order — slow morsels never stall fast ones.
	unordered bool

	started bool
	stopped bool
	src     morselSource
	claim   *atomic.Int64
	abort   *atomic.Bool
	stopCh  chan struct{}
	tickets chan struct{}
	results chan parMorsel
	wg      sync.WaitGroup

	nextIdx  int
	nMorsels int
	stash    map[int]parMorsel
	cur      []Row
	pos      int
	curErr   error // error carried by the current morsel, surfaced after its rows
	pendErr  error // sticky terminal error

	// Workers that abort record their error here too: a worker that
	// claimed a morsel and then saw the abort flag exits without
	// delivering it, so the gather may never reach the erroring morsel
	// through the ordered stream — it recovers the error from this slot
	// when the results channel closes.
	errMu       sync.Mutex
	workerErr   error
	workerErrID int

	scanned     uint64 // merged per-operator counters (EXPLAIN ANALYZE)
	tombSkipped uint64
	decBlocks   uint64
	segCounted  bool
}

func (s *parScanOp) columns() []colInfo { return s.cols }

func (s *parScanOp) reset() {
	s.stopPool()
	s.started = false
	s.stopped = false
	s.nextIdx = 0
	s.stash = nil
	s.cur = nil
	s.pos = 0
	s.curErr = nil
	s.pendErr = nil
	if s.rangeIdx != nil {
		s.ids = nil // re-materialise on next start
	}
}

// start materialises range ids, records the access path, and spawns the
// pool. Runs on the owner goroutine; workers inherit the statement's
// snapshot through the morsel source and never take a lock.
func (s *parScanOp) start() {
	s.started = true
	var snap *snapshot
	if s.qc != nil {
		snap = s.qc.snap
	}
	fromRange := s.rangeIdx != nil
	if fromRange && s.ids == nil {
		var skipped uint64
		s.ids, skipped = collectRangeIDs(s.table, s.rangeIdx.Column,
			s.rangeIdx.orderedEntries(), s.spec, snap)
		s.tombSkipped += skipped
		if s.qc != nil {
			s.qc.tombstonesSkipped += skipped
		}
	}
	s.src = newMorselSource(s.table, s.ids, snap)
	s.src.countAccessPath(fromRange, s.qc)
	s.nMorsels = s.src.morsels()
	s.claim = &atomic.Int64{}
	s.abort = &atomic.Bool{}
	s.stopCh = make(chan struct{})
	s.stash = make(map[int]parMorsel)
	nw := s.workers
	if nw > s.nMorsels {
		nw = s.nMorsels
	}
	if nw < 1 {
		nw = 1
	}
	// Tickets bound how far claims may run ahead of the gather. Claims
	// are monotonic, so the outstanding morsels are always the smallest
	// unconsumed indices and the gather's next morsel is among them — no
	// deadlock.
	maxAhead := nw * 4
	s.tickets = make(chan struct{}, maxAhead)
	for i := 0; i < maxAhead; i++ {
		s.tickets <- struct{}{}
	}
	s.results = make(chan parMorsel, maxAhead)
	if s.qc != nil {
		s.qc.addFinalizer(s.stopPool)
	}
	// Per-worker environments and predicates are compiled here, on the
	// owner goroutine, so workers never touch shared planner state.
	for w := 0; w < nw; w++ {
		env := newEvalEnv(s.cols, s.db, s.params, nil, nil)
		var pred compiledExpr
		if s.pred != nil {
			p, err := compileExpr(s.pred, env)
			if err != nil {
				// The serial plan compiled this same expression already;
				// failure here is unreachable, but fail closed.
				s.pendErr = err
				s.nMorsels = 0
				break
			}
			pred = p
		}
		s.wg.Add(1)
		parallelWorkersActive.Add(1)
		go s.worker(env, pred)
	}
	go func() {
		s.wg.Wait()
		close(s.results)
	}()
}

func (s *parScanOp) worker(env *evalEnv, pred compiledExpr) {
	defer func() {
		parallelWorkersActive.Add(-1)
		s.wg.Done()
	}()
	for {
		select {
		case <-s.tickets:
		case <-s.stopCh:
			return
		}
		idx := int(s.claim.Add(1)) - 1
		if idx >= s.nMorsels || s.abort.Load() {
			return
		}
		if s.qc != nil {
			// cancelled() reads only the immutable context — safe off
			// the owner goroutine, unlike tickCancelled.
			if s.qc.cancelled() != nil {
				return
			}
		}
		rows, scanned, tombSkipped, decoded, err := s.src.scanMorsel(idx, pred, env, nil)
		res := parMorsel{idx: idx, rows: rows, scanned: scanned, tombSkipped: tombSkipped, decoded: decoded, err: err}
		if err != nil {
			s.errMu.Lock()
			if s.workerErr == nil || idx < s.workerErrID {
				s.workerErr, s.workerErrID = err, idx
			}
			s.errMu.Unlock()
			s.abort.Store(true)
		}
		select {
		case s.results <- res:
		case <-s.stopCh:
			return
		}
		if err != nil {
			return
		}
	}
}

// fold merges one morsel's counters into the per-query and per-operator
// totals. Owner goroutine only.
func (s *parScanOp) fold(m parMorsel) {
	s.scanned += m.scanned
	s.tombSkipped += m.tombSkipped
	s.decBlocks += m.decoded
	if s.qc != nil {
		s.qc.rowsScanned += m.scanned
		s.qc.tombstonesSkipped += m.tombSkipped
		s.qc.decodedBlocks += m.decoded
		if m.decoded > 0 && !s.segCounted {
			s.segCounted = true
			s.qc.segmentScans++
		}
	}
}

func (s *parScanOp) next() (Row, bool, error) {
	if s.pendErr != nil {
		return nil, false, s.pendErr
	}
	if !s.started {
		s.start()
		if s.pendErr != nil {
			return nil, false, s.pendErr
		}
	}
	for {
		if s.pos < len(s.cur) {
			r := s.cur[s.pos]
			s.pos++
			return r, true, nil
		}
		if s.curErr != nil {
			s.pendErr = s.curErr
			return nil, false, s.pendErr
		}
		if s.nextIdx >= s.nMorsels {
			return nil, false, nil
		}
		if s.qc != nil {
			if err := s.qc.tickCancelled(); err != nil {
				s.pendErr = err
				return nil, false, err
			}
		}
		m, ok := s.stash[s.nextIdx]
		if ok {
			delete(s.stash, s.nextIdx)
		} else {
			res, open := <-s.results
			if !open {
				// Workers exited without delivering the next morsel:
				// cancellation, or an abort whose erroring morsel the
				// ordered stream will never reach.
				if s.qc != nil {
					if err := s.qc.cancelled(); err != nil {
						s.pendErr = err
						return nil, false, err
					}
				}
				s.errMu.Lock()
				err := s.workerErr
				s.errMu.Unlock()
				if err != nil {
					s.pendErr = err
					return nil, false, err
				}
				return nil, false, nil
			}
			// The ordered gather stashes out-of-order morsels until their
			// turn; the unordered gather consumes completion order directly
			// (nextIdx then just counts consumed morsels).
			if !s.unordered && res.idx != s.nextIdx {
				s.stash[res.idx] = res
				continue
			}
			m = res
		}
		s.fold(m)
		s.tickets <- struct{}{}
		s.nextIdx++
		s.cur = m.rows
		s.pos = 0
		s.curErr = m.err // emitted rows first, then the error — as serial would
	}
}

// stopPool aborts and joins the worker pool, folding the counters of any
// undelivered-but-completed morsels so Stats reflects work actually done.
// Idempotent; owner goroutine only. Registered as a qc finalizer so it
// runs before the statement's read lock is released.
func (s *parScanOp) stopPool() {
	if !s.started || s.stopped {
		return
	}
	s.stopped = true
	s.abort.Store(true)
	close(s.stopCh)
	for res := range s.results { // drains until the closer closes it
		s.fold(res)
	}
	for _, res := range s.stash {
		s.fold(res)
	}
	s.stash = nil
}

// ---------------------------------------------------------------------------
// Planner hooks

// parallelScanTarget walks a filter stack down to its scanOp and collects
// the predicates along the way. Returns nil when the chain does not
// bottom out in a plain scan.
func parallelScanTarget(src operator) (*scanOp, []Expr) {
	var preds []Expr
	cur := src
	for {
		if f, ok := cur.(*filterOp); ok {
			preds = append(preds, f.pred)
			cur = f.child
			continue
		}
		break
	}
	sc, ok := cur.(*scanOp)
	if !ok {
		return nil, nil
	}
	return sc, preds
}

// parallelEligible applies the planner's gates shared by the parallel
// scan and parallel aggregation: a pool to run on, a statement shape the
// gather can preserve, worker-safe predicates, and enough rows to pay
// for the pool.
func parallelEligible(db *Database, qc *queryCtx, sc *scanOp, preds []Expr) bool {
	if db == nil || db.maxWorkers <= 1 || qc == nil || sc == nil {
		return false
	}
	for _, p := range preds {
		if !parallelSafeExpr(p) {
			return false
		}
	}
	est := sc.table.liveCount()
	if sc.ids != nil {
		est = len(sc.ids)
	}
	// Range scans estimate by table size: bounds are not yet
	// materialised, and a small range costs one morsel anyway.
	return est >= parallelMinRows
}

// tryParallelScan replaces a filter-stack-over-scan chain with a fused
// parScanOp when eligible. Non-aggregate statements only; the caller has
// already ruled out joins, elided orders, and bare-LIMIT windows (where
// scan-ahead would waste work the limit never reads).
func tryParallelScan(src operator, db *Database, params []Value, qc *queryCtx) operator {
	sc, preds := parallelScanTarget(src)
	if !parallelEligible(db, qc, sc, preds) {
		return src
	}
	return &parScanOp{
		table: sc.table, qual: sc.qual, cols: sc.cols,
		ids: sc.ids, rangeIdx: sc.rangeIdx, spec: sc.spec,
		pred: joinConjuncts(preds), db: db, params: params,
		workers: db.maxWorkers, qc: qc,
	}
}

// tryParallelScanUnordered feeds an order-insensitive serial aggregation
// from a parallel scan gathered in completion order. Only when the
// statement provably cannot observe morsel arrival order: a single output
// group (no GROUP BY — first-seen group order would leak scheduling), no
// ORDER BY, aggregates whose folds are commutative for every value kind
// (COUNT/MIN/MAX, DISTINCT included since the dedup set is order-free),
// and no bare column refs outside aggregate arguments (those read the
// group's representative row, which is arrival-order-dependent).
func tryParallelScanUnordered(stmt *SelectStmt, items []SelectItem, src operator,
	aggs []*FuncCall, db *Database, params []Value, qc *queryCtx) operator {
	if !aggOrderInsensitive(stmt, items, aggs) {
		return src
	}
	sc, preds := parallelScanTarget(src)
	if !parallelEligible(db, qc, sc, preds) {
		return src
	}
	return &parScanOp{
		table: sc.table, qual: sc.qual, cols: sc.cols,
		ids: sc.ids, rangeIdx: sc.rangeIdx, spec: sc.spec,
		pred: joinConjuncts(preds), db: db, params: params,
		workers: db.maxWorkers, qc: qc, unordered: true,
	}
}

// aggOrderInsensitive reports whether an aggregate statement's result is
// invariant under any permutation of its input rows — the licence for the
// unordered gather above.
func aggOrderInsensitive(stmt *SelectStmt, items []SelectItem, aggs []*FuncCall) bool {
	if len(stmt.GroupBy) != 0 || len(stmt.OrderBy) != 0 {
		return false
	}
	for _, fc := range aggs {
		switch fc.Name {
		case "COUNT", "MIN", "MAX":
		default:
			// SUM/AVG/TOTAL float folds and GROUP_CONCAT are defined in
			// scan order; the ordered gather keeps them deterministic.
			return false
		}
	}
	for _, it := range items {
		if bareRefsOutsideAggs(it.Expr) {
			return false
		}
	}
	return !bareRefsOutsideAggs(stmt.Having)
}

// bareRefsOutsideAggs reports whether e reads a column outside any
// aggregate argument — such reads come from the single group's
// representative row, which is whichever matching row arrived first.
// Subqueries are treated as bare: walkExpr does not descend into their
// statements, so correlated refs inside them would go unseen.
func bareRefsOutsideAggs(e Expr) bool {
	bare := false
	walkExpr(e, func(x Expr) bool {
		switch t := x.(type) {
		case *FuncCall:
			if isAggregateName(t.Name) {
				return false // prune: refs inside aggregate args are fine
			}
		case *ColumnRef:
			bare = true
		case *Subquery, *ExistsExpr:
			bare = true
		case *InList:
			if t.Sub != nil {
				bare = true
			}
		}
		return !bare
	})
	return bare
}

// ---------------------------------------------------------------------------
// Parallel partial aggregation

// parAggPlan is the fused scan+filter+partial-aggregate a groupOp runs
// instead of draining its child serially. The child chain is retained on
// the groupOp for EXPLAIN display; merged scan counters are written back
// into its scanOp so the accounting property holds.
type parAggPlan struct {
	sc      *scanOp
	pred    Expr
	workers int
}

// mergeableAggregates reports whether every collected aggregate can be
// computed as per-worker partials and merged without divergence from the
// engine's defined fold order:
//
//   - COUNT, MIN, MAX: always order-insensitive.
//   - SUM / AVG / TOTAL: integer partial sums merge exactly; float sums
//     are kept per-morsel and folded in ascending morsel order (agg.go
//     morselAdder), so the result is left-to-right within each morsel,
//     then morsel by morsel — a deterministic function of the data and
//     morselSize, independent of worker count and scheduling.
//   - GROUP_CONCAT: order-sensitive across workers — never parallel.
//   - DISTINCT aggregates: the dedup set cannot be merged — serial.
func mergeableAggregates(aggs []*FuncCall) bool {
	for _, fc := range aggs {
		if fc.Distinct {
			return false
		}
		switch fc.Name {
		case "COUNT", "MIN", "MAX":
		case "SUM", "AVG", "TOTAL":
			if len(fc.Args) != 1 {
				return false
			}
		default:
			return false
		}
		if !fc.Star {
			for _, a := range fc.Args {
				if !parallelSafeExpr(a) {
					return false
				}
			}
		}
	}
	return true
}

// tryParallelAgg decides whether an aggregate statement's input can run
// as fused parallel partial aggregation, returning the plan or nil.
func tryParallelAgg(stmt *SelectStmt, src operator, aggs []*FuncCall, db *Database, qc *queryCtx) *parAggPlan {
	sc, preds := parallelScanTarget(src)
	if !parallelEligible(db, qc, sc, preds) {
		return nil
	}
	for _, ge := range stmt.GroupBy {
		if !parallelSafeExpr(ge) {
			return nil
		}
	}
	if !mergeableAggregates(aggs) {
		return nil
	}
	return &parAggPlan{sc: sc, pred: joinConjuncts(preds), workers: db.maxWorkers}
}

// parAggGroup is one worker's (and after merging, the gather's) partial
// GROUP BY state, carrying the minimal scan ordinal at which the group
// was first seen so merged groups can be restored to serial first-seen
// order.
type parAggGroup struct {
	keys    []Value
	states  []aggState
	repRow  Row
	firstID int
}

// runAggregationParallel is the fork-join parallel counterpart of
// runAggregation: workers claim morsels, filter, and fold rows into
// private group maps; the owner joins them, merges the partial states,
// and returns groups in exactly the serial first-seen order. Workers are
// spawned and joined inside this call — no pool outlives it.
func runAggregationParallel(stmt *SelectStmt, par *parAggPlan, aggs []*FuncCall,
	db *Database, params []Value, qc *queryCtx) ([]*aggGroup, error) {

	sc := par.sc
	var snap *snapshot
	if qc != nil {
		snap = qc.snap
	}
	fromRange := sc.rangeIdx != nil
	ids := sc.ids
	var rangeSkipped uint64
	if fromRange && ids == nil {
		ids, rangeSkipped = collectRangeIDs(sc.table, sc.rangeIdx.Column,
			sc.rangeIdx.orderedEntries(), sc.spec, snap)
	}
	src := newMorselSource(sc.table, ids, snap)
	src.countAccessPath(fromRange, qc)
	if qc != nil {
		qc.tombstonesSkipped += rangeSkipped
	}
	nMorsels := src.morsels()
	nw := par.workers
	if nw > nMorsels {
		nw = nMorsels
	}
	if nw < 1 {
		nw = 1
	}

	type workerResult struct {
		groups      map[string]*parAggGroup
		scanned     uint64
		tombSkipped uint64
		decoded     uint64
		errID       int
		err         error
	}
	results := make([]workerResult, nw)
	var claim atomic.Int64
	var abort atomic.Bool
	var wg sync.WaitGroup

	// Compile every worker's expressions on the owner goroutine.
	type workerExprs struct {
		env        *evalEnv
		pred       compiledExpr
		groupExprs []compiledExpr
		argExprs   []compiledExpr
	}
	exprs := make([]workerExprs, nw)
	for w := 0; w < nw; w++ {
		env := newEvalEnv(sc.cols, db, params, nil, nil)
		we := workerExprs{env: env}
		if par.pred != nil {
			p, err := compileExpr(par.pred, env)
			if err != nil {
				return nil, err
			}
			we.pred = p
		}
		we.groupExprs = make([]compiledExpr, len(stmt.GroupBy))
		for i, ge := range stmt.GroupBy {
			c, err := compileExpr(ge, env)
			if err != nil {
				return nil, err
			}
			we.groupExprs[i] = c
		}
		we.argExprs = make([]compiledExpr, len(aggs))
		for i, fc := range aggs {
			if fc.Star || len(fc.Args) == 0 {
				continue
			}
			c, err := compileExpr(fc.Args[0], env)
			if err != nil {
				return nil, err
			}
			we.argExprs[i] = c
		}
		exprs[w] = we
	}

	total := src.total()
	for w := 0; w < nw; w++ {
		wg.Add(1)
		parallelWorkersActive.Add(1)
		go func(w int) {
			defer func() {
				parallelWorkersActive.Add(-1)
				wg.Done()
			}()
			we := exprs[w]
			res := &results[w]
			res.groups = make(map[string]*parAggGroup)
			res.errID = -1
			keyVals := make([]Value, len(stmt.GroupBy))
			var kb []byte
			fail := func(ordinal int, err error) {
				res.errID, res.err = ordinal, err
				abort.Store(true)
			}
			// foldRow filters and folds one visible row into the worker's
			// partial groups. pos is the row's scan ordinal (slot position
			// for heap rows, lo+j for sealed rows — both monotone in slot
			// order, so first-seen ordering merges identically). Returns
			// false after fail().
			foldRow := func(r Row, pos, idx int) bool {
				res.scanned++
				we.env.row = r
				if we.pred != nil {
					v, err := we.pred()
					if err != nil {
						fail(pos, err)
						return false
					}
					if v.IsNull() || !v.AsBool() {
						return true
					}
				}
				kb = kb[:0]
				for i, ge := range we.groupExprs {
					v, err := ge()
					if err != nil {
						fail(pos, err)
						return false
					}
					keyVals[i] = v
					kb = appendValueKey(kb, v)
				}
				g, ok := res.groups[string(kb)]
				if !ok {
					states := make([]aggState, len(aggs))
					for i, fc := range aggs {
						st, err := newAggState(fc)
						if err != nil {
							fail(pos, err)
							return false
						}
						states[i] = st
					}
					g = &parAggGroup{
						keys:    append([]Value{}, keyVals...),
						states:  states,
						repRow:  r.Clone(),
						firstID: pos,
					}
					res.groups[string(kb)] = g
				}
				for i, fc := range aggs {
					if fc.Star {
						g.states[i].add(Int(1))
						continue
					}
					if we.argExprs[i] == nil {
						continue
					}
					v, err := we.argExprs[i]()
					if err != nil {
						fail(pos, err)
						return false
					}
					// Order-sensitive float states take the morsel
					// ordinal so partial sums fold in morsel order.
					if ma, ok := g.states[i].(morselAdder); ok {
						ma.addMorsel(v, idx)
					} else {
						g.states[i].add(v)
					}
				}
				return true
			}
			for {
				idx := int(claim.Add(1)) - 1
				if idx >= nMorsels || abort.Load() {
					return
				}
				if qc != nil && qc.cancelled() != nil {
					return
				}
				lo := idx * morselSize
				if rows, ok := src.sealedBlockRows(idx); ok {
					res.decoded++
					for j, r := range rows {
						if !foldRow(r, lo+j, idx) {
							return
						}
					}
					continue
				}
				hi := lo + morselSize
				if hi > total {
					hi = total
				}
				for pos := lo; pos < hi; pos++ {
					r, skip := src.morselRow(pos)
					if r == nil {
						if skip {
							res.tombSkipped++
						}
						continue
					}
					if !foldRow(r, pos, idx) {
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Owner-side merge: counters first, then errors/cancellation, then
	// the partial states keyed by group, keeping per group the identity
	// (keys, repRow) of its smallest scan ordinal — the row the serial
	// fold would have seen first.
	var scanned, tombSkipped, decoded uint64
	for w := range results {
		scanned += results[w].scanned
		tombSkipped += results[w].tombSkipped
		decoded += results[w].decoded
	}
	if qc != nil {
		qc.rowsScanned += scanned
		qc.tombstonesSkipped += tombSkipped
		qc.decodedBlocks += decoded
		if decoded > 0 {
			qc.segmentScans++
		}
	}
	// Merged counters land on the (never-pulled) scanOp retained for
	// EXPLAIN, so treeScanned and the scanned= annotation stay truthful.
	sc.scanned += scanned
	sc.tombSkipped += tombSkipped + rangeSkipped
	if qc != nil {
		if err := qc.cancelled(); err != nil {
			return nil, err
		}
	}
	var firstErr error
	firstErrID := -1
	for w := range results {
		if results[w].err != nil && (firstErrID < 0 || results[w].errID < firstErrID) {
			firstErr, firstErrID = results[w].err, results[w].errID
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	merged := make(map[string]*parAggGroup)
	for w := range results {
		for key, g := range results[w].groups {
			m, ok := merged[key]
			if !ok {
				merged[key] = g
				continue
			}
			if g.firstID < m.firstID {
				m.keys, m.repRow, m.firstID = g.keys, g.repRow, g.firstID
			}
			for i := range m.states {
				m.states[i].(mergeableAggState).merge(g.states[i])
			}
		}
	}
	ordered := make([]*parAggGroup, 0, len(merged))
	for _, g := range merged {
		ordered = append(ordered, g)
	}
	sortParAggGroups(ordered)
	groups := make([]*aggGroup, len(ordered))
	for i, g := range ordered {
		groups[i] = &aggGroup{keys: g.keys, states: g.states, repRow: g.repRow}
	}
	if len(stmt.GroupBy) == 0 && len(groups) == 0 {
		states := make([]aggState, len(aggs))
		for i, fc := range aggs {
			st, err := newAggState(fc)
			if err != nil {
				return nil, err
			}
			states[i] = st
		}
		repRow := make(Row, len(sc.cols))
		for i := range repRow {
			repRow[i] = Null
		}
		groups = append(groups, &aggGroup{states: states, repRow: repRow})
	}
	return groups, nil
}

// sortParAggGroups restores merged groups to serial first-seen order by
// their minimal scan ordinals (which are unique — one row founds one
// group).
func sortParAggGroups(gs []*parAggGroup) {
	sort.Slice(gs, func(a, b int) bool { return gs[a].firstID < gs[b].firstID })
}

// keyPartition assigns an encoded join key to one of n build partitions
// (FNV-1a).
func keyPartition(b []byte, n int) int {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return int(h % uint32(n))
}

// ---------------------------------------------------------------------------
// Parallel hash-join build

// nullPart marks a build row whose key evaluated to NULL (never joins).
const nullPart = 255

// buildParallel hashes the build side with a two-phase partitioned build.
// Phase 1: workers claim morsels of the build rows and evaluate + encode
// each row's key into per-row slots of shared arrays — disjoint indices,
// so no synchronisation beyond the morsel claim. Phase 2: one worker per
// partition walks the arrays in global row order inserting its
// partition's rows, so within every bucket the row order — and therefore
// every probe result — is identical to the serial build. Fork-join: all
// workers are joined before this returns.
func (h *hashJoinOp) buildParallel(buildRows []Row, buildKeyE Expr,
	db *Database, params []Value, outer *evalEnv) error {

	n := len(buildRows)
	nMorsels := (n + morselSize - 1) / morselSize
	nw := db.maxWorkers
	if nw > nMorsels {
		nw = nMorsels
	}
	if nw < 2 {
		nw = 2
	}
	if nw > nullPart-1 {
		nw = nullPart - 1 // partition ids must fit uint8 below the NULL mark
	}
	nParts := nw

	keys := make([][]byte, n)
	parts := make([]uint8, n)

	// Phase 1: key evaluation. Each worker compiles its own copy of the
	// key expression (here, on the owner goroutine) and writes only the
	// row indices it claimed. Key bytes go into a per-worker append
	// buffer; grown buffers reallocate, which leaves previously taken
	// subslices pointing at the old backing array — still valid.
	type keyErr struct {
		idx int
		err error
	}
	preds := make([]compiledExpr, nw)
	envs := make([]*evalEnv, nw)
	for w := 0; w < nw; w++ {
		env := newEvalEnv(h.buildCols, db, params, outer, nil)
		p, err := compileExpr(buildKeyE, env)
		if err != nil {
			return err
		}
		envs[w], preds[w] = env, p
	}
	errSlots := make([]keyErr, nw)
	var claim atomic.Int64
	var abort atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		parallelWorkersActive.Add(1)
		go func(w int) {
			defer func() {
				parallelWorkersActive.Add(-1)
				wg.Done()
			}()
			env, key := envs[w], preds[w]
			errSlots[w].idx = -1
			var buf []byte
			for {
				m := int(claim.Add(1)) - 1
				if m >= nMorsels || abort.Load() {
					return
				}
				lo, hi := m*morselSize, (m+1)*morselSize
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					env.row = buildRows[i]
					k, err := key()
					if err != nil {
						errSlots[w] = keyErr{idx: i, err: err}
						abort.Store(true)
						return
					}
					if k.IsNull() {
						parts[i] = nullPart
						continue
					}
					start := len(buf)
					buf = appendValueKey(buf, k)
					keys[i] = buf[start:len(buf):len(buf)]
					parts[i] = uint8(keyPartition(keys[i], nParts))
				}
			}
		}(w)
	}
	wg.Wait()
	firstErr, firstIdx := error(nil), -1
	for w := range errSlots {
		if errSlots[w].err != nil && (firstIdx < 0 || errSlots[w].idx < firstIdx) {
			firstErr, firstIdx = errSlots[w].err, errSlots[w].idx
		}
	}
	if firstErr != nil {
		return firstErr
	}

	// Phase 2: per-partition builds. Each worker owns one shard and scans
	// the full parts array — a cheap sequential byte read — inserting its
	// rows in global order.
	h.shards = make([]hashJoinShard, nParts)
	wg = sync.WaitGroup{}
	for p := 0; p < nParts; p++ {
		wg.Add(1)
		parallelWorkersActive.Add(1)
		go func(p int) {
			defer func() {
				parallelWorkersActive.Add(-1)
				wg.Done()
			}()
			sh := &h.shards[p]
			sh.keyIndex = make(map[string]int)
			for i := 0; i < n; i++ {
				if parts[i] != uint8(p) {
					continue
				}
				b, ok := sh.keyIndex[string(keys[i])]
				if !ok {
					b = len(sh.buckets)
					sh.buckets = append(sh.buckets, nil)
					sh.keyIndex[string(keys[i])] = b
				}
				sh.buckets[b] = append(sh.buckets[b], buildRows[i])
			}
		}(p)
	}
	wg.Wait()
	for p := range h.shards {
		h.nKeys += len(h.shards[p].keyIndex)
	}
	h.buildWorkers = nw
	h.lookup = func(key []byte) int {
		sh := &h.shards[keyPartition(key, nParts)]
		if i, ok := sh.keyIndex[string(key)]; ok {
			h.curBucket = sh.buckets[i]
			return len(h.curBucket)
		}
		h.curBucket = nil
		return 0
	}
	return nil
}

// equalFold is a tiny ASCII-insensitive comparison used on identifier
// paths hot enough to avoid strings.EqualFold's full case folding.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
