package sqldb

import (
	"errors"
	"go/ast"
	goparser "go/parser"
	gotoken "go/token"
	"regexp"
	"strconv"
	"testing"
)

// The SQLSTATE mapping is wire contract: clients branch on the five
// characters in an ErrorResponse code field, so the mapping must be total
// (no classified code unmapped), injective (each code its own state), and
// frozen (states never silently change). This test enforces all three
// structurally: it enumerates the ErrorCode constants from the source of
// errors.go, so adding a new code without extending both sqlStates and
// the golden table below fails the build gate, not a customer.

// errorCodeConsts parses errors.go and returns every declared ErrorCode
// constant as name → string value.
func errorCodeConsts(t *testing.T) map[string]ErrorCode {
	t.Helper()
	fset := gotoken.NewFileSet()
	file, err := goparser.ParseFile(fset, "errors.go", nil, 0)
	if err != nil {
		t.Fatalf("parse errors.go: %v", err)
	}
	consts := make(map[string]ErrorCode)
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != gotoken.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			ident, ok := vs.Type.(*ast.Ident)
			if !ok || ident.Name != "ErrorCode" {
				continue
			}
			for i, name := range vs.Names {
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != gotoken.STRING {
					t.Fatalf("%s: ErrorCode const is not a string literal", name.Name)
				}
				val, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("%s: unquote %s: %v", name.Name, lit.Value, err)
				}
				consts[name.Name] = ErrorCode(val)
			}
		}
	}
	if len(consts) == 0 {
		t.Fatal("found no ErrorCode constants in errors.go; did the decl style change?")
	}
	return consts
}

// TestSQLStateMappingComplete: every classified ErrorCode maps to exactly
// the pinned SQLSTATE; no code is missing, none has drifted, and no two
// share a state. ErrUnknown is the deliberate exception — unclassified
// errors report the generic internal class via the fallback, not the map.
func TestSQLStateMappingComplete(t *testing.T) {
	golden := map[string]string{
		"ErrParse":      "42601",
		"ErrNoTable":    "42P01",
		"ErrNoColumn":   "42703",
		"ErrAmbiguous":  "42702",
		"ErrNoFunction": "42883",
		"ErrType":       "42804",
		"ErrConstraint": "23000",
		"ErrSchema":     "42P07",
		"ErrMisuse":     "42000",
		"ErrParams":     "08P01",
		"ErrCanceled":   "57014",
		"ErrCursor":     "24000",
		"ErrInternal":   "XX000",
		"ErrIO":         "58030",
	}
	stateShape := regexp.MustCompile(`^[0-9A-Z]{5}$`)

	consts := errorCodeConsts(t)
	for name, code := range consts {
		if name == "ErrUnknown" {
			continue
		}
		want, pinned := golden[name]
		if !pinned {
			t.Errorf("%s is a new ErrorCode with no pinned SQLSTATE: map it in sqlStates and pin it here", name)
			continue
		}
		if _, ok := sqlStates[code]; !ok {
			t.Errorf("%s (%q) is missing from sqlStates: unmapped codes leak as XX000", name, code)
			continue
		}
		if got := code.SQLState(); got != want {
			t.Errorf("%s: SQLSTATE drifted from pinned contract: got %q, want %q", name, got, want)
		}
		if !stateShape.MatchString(code.SQLState()) {
			t.Errorf("%s: %q is not a well-formed SQLSTATE", name, code.SQLState())
		}
	}
	// The pin table may not reference codes that no longer exist.
	for name := range golden {
		if _, ok := consts[name]; !ok {
			t.Errorf("pinned code %s no longer declared in errors.go", name)
		}
	}
	// Injective: no two codes share a state.
	seen := make(map[string]ErrorCode)
	for code, state := range sqlStates {
		if prev, dup := seen[state]; dup {
			t.Errorf("SQLSTATE %q assigned to both %q and %q", state, prev, code)
		}
		seen[state] = code
	}
	// sqlStates may not contain entries for undeclared codes.
	declared := make(map[ErrorCode]bool, len(consts))
	for _, code := range consts {
		declared[code] = true
	}
	for code := range sqlStates {
		if !declared[code] {
			t.Errorf("sqlStates maps %q, which is not a declared ErrorCode", code)
		}
	}
}

// TestSQLStateFallback: everything unclassified — ErrUnknown, foreign
// errors, nil-adjacent junk — reports the generic internal class rather
// than a misleading specific state.
func TestSQLStateFallback(t *testing.T) {
	if got := ErrUnknown.SQLState(); got != "XX000" {
		t.Errorf("ErrUnknown: got %q, want XX000", got)
	}
	if got := ErrorCode("never_registered").SQLState(); got != "XX000" {
		t.Errorf("unregistered code: got %q, want XX000", got)
	}
	if got := SQLStateFor(errors.New("not an engine error")); got != "XX000" {
		t.Errorf("foreign error: got %q, want XX000", got)
	}
	// And a real engine error routes through its code's state.
	db := NewDatabase()
	defer db.Close()
	_, err := db.Query(`SELEC broken`)
	if err == nil {
		t.Fatal("expected a parse error")
	}
	if got := SQLStateFor(err); got != "42601" {
		t.Errorf("parse error: got %q, want 42601", got)
	}
}
