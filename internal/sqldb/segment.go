package sqldb

import (
	"encoding/binary"
	"math"
	"math/bits"
	"sort"
)

// This file implements the cold half of the hybrid storage layout:
// immutable compressed column segments sealed off the MVCC row heap.
//
// The row heap (catalog.go) stays the hot store and the single source of
// truth — every version chain, index, DML path and the WAL are untouched.
// A background sealer freezes *cold* rows — slots whose single committed
// version lies below the vacuum horizon, i.e. is visible to every current
// and future snapshot — into column-major blocks of segBlockSlots slots,
// compressed per column (zigzag-delta varints for ints, byte-aligned XOR
// for floats, dictionary coding for strings, bitmaps for bools, and a raw
// fallback for mixed-kind columns). Vectorized scans (vecops.go) and
// parallel morsels (parallel.go) decode a block at a time instead of
// chasing version pointers; everything else keeps reading the heap.
//
// Because segments are redundant with the heap, correctness never depends
// on them: DML that touches a covered slot simply drops the covering
// segment (the "unseal" — the heap already holds the truth) *before* the
// change is published at tm.finish, so any snapshot that can see the
// change can no longer observe the stale segment. Slot ids are never
// reused and appends only land past the sealed range, so a published
// segment stays bit-identical to what every snapshot sees until it is
// dropped.

// segBlockSlots is the number of heap slots one sealed block spans. It
// equals morselSize so a parallel morsel is always either fully sealed or
// fully heap-resident.
const segBlockSlots = morselSize

// segMaxBlocks bounds the blocks per segment so unsealing on DML drops a
// bounded range.
const segMaxBlocks = 64

// sealThreshold is the number of newly inserted rows that wakes the
// background sealer.
const sealThreshold = 4 * segBlockSlots

// Column encodings. Chosen per (block, column) by the kinds present.
const (
	segEncRaw   byte = iota // mixed kinds: appendWalValue stream
	segEncInt               // all-int: zigzag delta varints
	segEncFloat             // all-float: byte-aligned XOR vs previous
	segEncText              // all-text: dictionary + varint indexes
	segEncBool              // all-bool: bitmap
)

// Kind masks, shared with the vector engine (vector.go).
const (
	kmNull  = 1 << uint16(KindNull)
	kmBool  = 1 << uint16(KindBool)
	kmInt   = 1 << uint16(KindInt)
	kmFloat = 1 << uint16(KindFloat)
	kmText  = 1 << uint16(KindText)
)

// segCol is one compressed column of one block: a null bitmap over the
// block's rows followed by the encoded non-null values.
type segCol struct {
	enc   byte
	kinds uint16 // mask of kinds present (incl. kmNull), for kernel dispatch
	data  []byte
}

// segBlock holds segBlockSlots consecutive heap slots' live rows in slot
// order. Empty slots contribute nothing (exactly like the heap scan, which
// passes them silently), and sealability guarantees zero tombstones.
type segBlock struct {
	nrows int
	cols  []segCol
}

// segment is a run of consecutive sealed blocks covering slot ids
// [lo, hi). Immutable once published.
type segment struct {
	lo, hi int
	blocks []*segBlock
}

// block returns the sealed block covering slot lo (a multiple of
// segBlockSlots inside [s.lo, s.hi)).
func (s *segment) block(lo int) *segBlock {
	return s.blocks[(lo-s.lo)/segBlockSlots]
}

// loadSegs returns the table's published segment list (sorted by lo,
// non-overlapping), or nil.
func (t *Table) loadSegs() []*segment {
	if p := t.segs.Load(); p != nil {
		return *p
	}
	return nil
}

// findSeg returns the segment covering slot id, or nil.
func findSeg(segs []*segment, id int) *segment {
	i := sort.Search(len(segs), func(i int) bool { return segs[i].hi > id })
	if i < len(segs) && segs[i].lo <= id {
		return segs[i]
	}
	return nil
}

// dropSegFor unseals the segment covering slot id, if any: the covering
// segment is removed copy-on-write (writeMu held — DML is the only
// caller) and readers atomically stop seeing it. The heap never stopped
// holding the rows, so no data moves.
func (t *Table) dropSegFor(id int) {
	segs := t.loadSegs()
	if segs == nil {
		return
	}
	s := findSeg(segs, id)
	if s == nil {
		return
	}
	kept := make([]*segment, 0, len(segs)-1)
	for _, o := range segs {
		if o != s {
			kept = append(kept, o)
		}
	}
	t.segs.Store(&kept)
	for _, b := range s.blocks {
		t.sealedRows.Add(-int64(b.nrows))
	}
}

// ---------------------------------------------------------------------------
// Sealing

// maybeSeal wakes the background sealer when enough rows have been
// inserted since the last pass. Single-flight, like maybeVacuum.
func (db *Database) maybeSeal() {
	if db.closed.Load() || db.sealDebt.Load() < sealThreshold {
		return
	}
	if !db.sealing.CompareAndSwap(false, true) {
		return
	}
	db.vacWG.Add(1)
	go func() {
		defer db.vacWG.Done()
		defer db.sealing.Store(false)
		db.seal()
	}()
}

// Seal synchronously freezes every currently cold full block into
// compressed column segments and returns how many rows were newly sealed.
// The background sealer runs the same pass; this entry point exists for
// tests, benchmarks, and embedders that want deterministic sealing.
func (db *Database) Seal() int {
	return db.seal()
}

// seal runs one sealing pass over every table under the single-writer
// latch (writers pause; lock-free readers do not).
func (db *Database) seal() int {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	db.sealDebt.Store(0)
	h := db.tm.horizon()
	rows, nsegs := 0, 0
	for _, t := range db.tableMap() {
		r, s := t.seal(h)
		rows, nsegs = rows+r, nsegs+s
	}
	if nsegs > 0 {
		db.stats.segmentsSealed.Add(uint64(nsegs))
	}
	return rows
}

// seal freezes this table's cold full blocks. A block is sealable when
// every slot in its range either holds no versions at all or holds exactly
// one committed version with no deleter and xmin below the horizon — such
// a block reads identically for every current and future snapshot, with
// zero tombstones, until DML drops it. Only full blocks are sealed:
// appends land past n, so a full block's slot population is final.
// Returns (rows sealed, segments created).
func (t *Table) seal(h uint64) (int, int) {
	arr, n := t.loadSlots()
	nb := n / segBlockSlots
	if nb == 0 {
		return 0, 0
	}
	old := t.loadSegs()
	var created []*segment
	var cur *segment
	rows := 0
	for b := 0; b < nb; b++ {
		lo := b * segBlockSlots
		if findSeg(old, lo) != nil {
			cur = nil
			continue
		}
		blk := sealBlock(arr, lo, len(t.Columns), h)
		if blk == nil {
			cur = nil
			continue
		}
		if cur == nil || len(cur.blocks) >= segMaxBlocks {
			cur = &segment{lo: lo, hi: lo}
			created = append(created, cur)
		}
		cur.blocks = append(cur.blocks, blk)
		cur.hi = lo + segBlockSlots
		rows += blk.nrows
	}
	if len(created) == 0 {
		return 0, 0
	}
	merged := make([]*segment, 0, len(old)+len(created))
	merged = append(merged, old...)
	merged = append(merged, created...)
	sort.Slice(merged, func(i, j int) bool { return merged[i].lo < merged[j].lo })
	t.segs.Store(&merged)
	t.sealedRows.Add(int64(rows))
	return rows, len(created)
}

// sealBlock encodes the live rows of slots [lo, lo+segBlockSlots), or
// returns nil when the block is not sealable.
func sealBlock(arr []*rowSlot, lo, width int, h uint64) *segBlock {
	rows := make([]Row, 0, segBlockSlots)
	for id := lo; id < lo+segBlockSlots; id++ {
		head := arr[id].head.Load()
		if head == nil {
			continue // permanently empty slot
		}
		if head.next.Load() != nil || head.xmax.Load() != 0 ||
			head.xmin == invalidXID || head.xmin >= h || head.row == nil {
			return nil
		}
		rows = append(rows, head.row)
	}
	blk := &segBlock{nrows: len(rows), cols: make([]segCol, width)}
	vals := make([]Value, len(rows))
	for c := 0; c < width; c++ {
		for i, r := range rows {
			vals[i] = r[c]
		}
		blk.cols[c] = sealColumn(vals)
	}
	return blk
}

// sealColumn picks the tightest encoding the column's kinds allow and
// encodes: null bitmap first, then the non-null values.
func sealColumn(vals []Value) segCol {
	n := len(vals)
	var kinds uint16
	for _, v := range vals {
		kinds |= 1 << uint16(v.kind)
	}
	data := make([]byte, (n+7)/8)
	nonNull := 0
	for i, v := range vals {
		if v.kind == KindNull {
			data[i/8] |= 1 << (i % 8)
		} else {
			nonNull++
		}
	}
	enc := segEncRaw
	if nonNull > 0 {
		switch kinds &^ kmNull {
		case kmInt:
			enc = segEncInt
		case kmFloat:
			enc = segEncFloat
		case kmText:
			enc = segEncText
		case kmBool:
			enc = segEncBool
		}
	}
	switch enc {
	case segEncInt:
		prev := int64(0)
		for _, v := range vals {
			if v.kind == KindNull {
				continue
			}
			// Delta in mod-2^64 arithmetic, zigzagged: exact for the full
			// int64 range including wraparound-sized gaps.
			d := uint64(v.i) - uint64(prev)
			data = binary.AppendUvarint(data, zigzag(int64(d)))
			prev = v.i
		}
	case segEncFloat:
		prev := uint64(0)
		for _, v := range vals {
			if v.kind == KindNull {
				continue
			}
			b := math.Float64bits(v.f)
			data = appendXORFloat(data, b^prev)
			prev = b
		}
	case segEncText:
		dict := make(map[string]int)
		var order []string
		idxs := make([]int, 0, nonNull)
		for _, v := range vals {
			if v.kind == KindNull {
				continue
			}
			di, ok := dict[v.s]
			if !ok {
				di = len(order)
				dict[v.s] = di
				order = append(order, v.s)
			}
			idxs = append(idxs, di)
		}
		data = binary.AppendUvarint(data, uint64(len(order)))
		for _, s := range order {
			data = binary.AppendUvarint(data, uint64(len(s)))
			data = append(data, s...)
		}
		for _, di := range idxs {
			data = binary.AppendUvarint(data, uint64(di))
		}
	case segEncBool:
		bm := make([]byte, (nonNull+7)/8)
		j := 0
		for _, v := range vals {
			if v.kind == KindNull {
				continue
			}
			if v.b {
				bm[j/8] |= 1 << (j % 8)
			}
			j++
		}
		data = append(data, bm...)
	default:
		for _, v := range vals {
			if v.kind == KindNull {
				continue
			}
			data = appendWalValue(data, v)
		}
	}
	return segCol{enc: enc, kinds: kinds, data: data}
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendXORFloat writes one XOR'd float64 bit pattern byte-aligned: a
// control byte (leadingZeroBytes<<4 | significantBytes) followed by the
// significant middle bytes, little-endian. Similar consecutive floats
// share sign/exponent/leading-mantissa bits (high bytes) and often have
// zero mantissa tails (low bytes), so x is usually a short middle run.
func appendXORFloat(data []byte, x uint64) []byte {
	if x == 0 {
		return append(data, 0x80) // lz=8, sig=0
	}
	lz := bits.LeadingZeros64(x) / 8
	tz := bits.TrailingZeros64(x) / 8
	sig := 8 - lz - tz
	data = append(data, byte(lz<<4|sig))
	v := x >> (tz * 8)
	for i := 0; i < sig; i++ {
		data = append(data, byte(v>>(8*i)))
	}
	return data
}

// ---------------------------------------------------------------------------
// Decoding

// decode reconstructs the column's n row values into dst (len >= n),
// bit-identical to the values sealed. Errors indicate corruption and are
// impossible for blocks this process sealed; they exist for the fuzz
// harness, which feeds arbitrary bytes.
func (c *segCol) decode(n int, dst []Value) error {
	d := c.data
	bmLen := (n + 7) / 8
	if len(d) < bmLen {
		return errf(ErrInternal, "sql: segment column truncated")
	}
	bm, body := d[:bmLen], d[bmLen:]
	isNull := func(i int) bool { return bm[i/8]&(1<<(i%8)) != 0 }
	switch c.enc {
	case segEncInt:
		prev := int64(0)
		for i := 0; i < n; i++ {
			if isNull(i) {
				dst[i] = Null
				continue
			}
			u, sz := binary.Uvarint(body)
			if sz <= 0 {
				return errf(ErrInternal, "sql: segment int column truncated")
			}
			body = body[sz:]
			prev = int64(uint64(prev) + uint64(unzigzag(u)))
			dst[i] = Int(prev)
		}
	case segEncFloat:
		prev := uint64(0)
		for i := 0; i < n; i++ {
			if isNull(i) {
				dst[i] = Null
				continue
			}
			if len(body) == 0 {
				return errf(ErrInternal, "sql: segment float column truncated")
			}
			ctl := body[0]
			body = body[1:]
			lz, sig := int(ctl>>4), int(ctl&0xF)
			if lz > 8 || sig > 8 || lz+sig > 8 || len(body) < sig {
				return errf(ErrInternal, "sql: segment float column corrupt")
			}
			var x uint64
			for j := 0; j < sig; j++ {
				x |= uint64(body[j]) << (8 * j)
			}
			body = body[sig:]
			if sig > 0 {
				x <<= uint(8-lz-sig) * 8
			}
			prev ^= x
			dst[i] = Float(math.Float64frombits(prev))
		}
	case segEncText:
		nd, sz := binary.Uvarint(body)
		if sz <= 0 || nd > uint64(len(body)) {
			return errf(ErrInternal, "sql: segment dictionary corrupt")
		}
		body = body[sz:]
		dictVals := make([]Value, nd)
		for j := range dictVals {
			l, sz := binary.Uvarint(body)
			if sz <= 0 || l > uint64(len(body)-sz) {
				return errf(ErrInternal, "sql: segment dictionary corrupt")
			}
			body = body[sz:]
			dictVals[j] = Text(string(body[:l]))
			body = body[l:]
		}
		for i := 0; i < n; i++ {
			if isNull(i) {
				dst[i] = Null
				continue
			}
			di, sz := binary.Uvarint(body)
			if sz <= 0 || di >= nd {
				return errf(ErrInternal, "sql: segment text column corrupt")
			}
			body = body[sz:]
			dst[i] = dictVals[di]
		}
	case segEncBool:
		j := 0
		for i := 0; i < n; i++ {
			if isNull(i) {
				dst[i] = Null
				continue
			}
			if j/8 >= len(body) {
				return errf(ErrInternal, "sql: segment bool column truncated")
			}
			dst[i] = Bool(body[j/8]&(1<<(j%8)) != 0)
			j++
		}
	case segEncRaw:
		dec := walDecoder{b: body}
		for i := 0; i < n; i++ {
			if isNull(i) {
				dst[i] = Null
				continue
			}
			dst[i] = dec.value()
			if dec.err != nil {
				return errf(ErrInternal, "sql: segment raw column corrupt")
			}
		}
	default:
		return errf(ErrInternal, "sql: unknown segment encoding %d", c.enc)
	}
	return nil
}
