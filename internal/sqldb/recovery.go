package sqldb

import (
	"bytes"
	"context"
	"hash/crc32"
	"path/filepath"
	"sort"
	"sync"
)

// This file implements recovery-on-open: discover the newest complete
// snapshot generation, load it, replay every WAL generation at or above
// it in ascending order (applying only fully-committed units), truncate
// any torn tail off the active log, and arm the writer. The crash-point
// matrix in wal_crash_test.go drives every step of this code through
// every failure point a crashFS can inject.

// Debug switches that deliberately break recovery, so the fault-injection
// harness can prove it would catch a real bug (the PR 5 pattern: a
// property harness is only trusted once it has been seen to fail).
// Never set outside tests.
var (
	// debugWALApplyDanglingFrame applies a transaction frame that has a
	// begin record but no commit record — exactly the torn-tail case
	// recovery exists to drop. With this set, a crash mid-frame makes the
	// partial transaction visible after reopen.
	debugWALApplyDanglingFrame = false
	// debugWALSkipSync makes every WAL fsync a no-op, silently breaking
	// the SyncAlways contract: commits acknowledged as durable are lost
	// by a power-loss (faultCrashLose) crash.
	debugWALSkipSync = false
)

// openWAL opens the durability layer on a freshly constructed database:
// recovery first (unarmed, so replay is not re-logged), then the writer
// is armed. Called from OpenContext with db.durPath/db.durOpts set.
func (db *Database) openWAL(ctx context.Context) error {
	opts := db.durOpts
	fs := opts.fs
	if fs == nil {
		fs = osFS{}
	}
	dir := db.durPath
	if err := fs.MkdirAll(dir); err != nil {
		return wrapIOErr(err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return wrapIOErr(err)
	}
	var snapGens, walGens []uint64
	for _, name := range names {
		if g, ok := parseGen(name, "snap-", ".sql"); ok {
			snapGens = append(snapGens, g)
		}
		if g, ok := parseGen(name, "wal-", ".log"); ok {
			walGens = append(walGens, g)
		}
		// A .tmp snapshot is an interrupted checkpoint that never reached
		// its commit point (the rename): discard it.
		if filepath.Ext(name) == ".tmp" {
			_ = fs.Remove(filepath.Join(dir, name))
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] < snapGens[j] })
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })

	// Load the newest snapshot. A snapshot file is complete by
	// construction (it is renamed into place only after an fsync), so a
	// failure to load it is corruption, not a crash artifact.
	var base uint64
	if len(snapGens) > 0 {
		base = snapGens[len(snapGens)-1]
		data, err := fs.ReadFile(walSnapName(dir, base))
		if err != nil {
			return wrapIOErr(err)
		}
		if err := db.LoadScript(string(data)); err != nil {
			return &Error{Code: ErrIO, Msg: "sql: corrupt snapshot generation " + walSnapName(dir, base) + ": " + err.Error(), Cause: err}
		}
	}

	// Replay WAL generations >= base, ascending. Generations below base
	// are superseded leftovers of a checkpoint whose cleanup did not
	// finish; they are already folded into the snapshot.
	activeGen := base
	activeValid := int64(len(walMagic))
	haveActive := false
	for _, g := range walGens {
		if g < base {
			continue
		}
		data, err := fs.ReadFile(walLogName(dir, g))
		if err != nil {
			return wrapIOErr(err)
		}
		validOff, torn, err := db.replayWAL(ctx, data)
		if err != nil {
			return err
		}
		if torn {
			db.stats.tornDropped.Add(1)
		}
		activeGen, activeValid, haveActive = g, validOff, true
	}

	// Open (or create) the active log for appending, dropping any torn
	// tail so the next append lands on a record boundary.
	w := &walWriter{db: db, fs: fs, dir: dir, opts: opts}
	w.syncCond = sync.NewCond(&w.syncMu)
	if haveActive {
		f, size, err := fs.OpenAppend(walLogName(dir, activeGen))
		if err != nil {
			return wrapIOErr(err)
		}
		if size > activeValid {
			if err := f.Truncate(activeValid); err != nil {
				_ = f.Close()
				return wrapIOErr(err)
			}
			size = activeValid
		}
		if size < int64(len(walMagic)) {
			// Created but never (fully) headed — e.g. a crash between
			// Create and the magic write. Start it fresh.
			if err := f.Truncate(0); err != nil {
				_ = f.Close()
				return wrapIOErr(err)
			}
			if _, err := f.Write(walMagic); err != nil {
				_ = f.Close()
				return wrapIOErr(err)
			}
			size = int64(len(walMagic))
		}
		w.f, w.gen, w.off = f, activeGen, size
	} else {
		f, err := fs.Create(walLogName(dir, activeGen))
		if err != nil {
			return wrapIOErr(err)
		}
		if _, err := f.Write(walMagic); err != nil {
			_ = f.Close()
			return wrapIOErr(err)
		}
		w.f, w.gen, w.off = f, activeGen, int64(len(walMagic))
	}
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close()
		return wrapIOErr(err)
	}
	w.sGen, w.synced = w.gen, w.off // the open sync made the prefix durable
	if opts.Sync == SyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop()
	}
	w.armed.Store(true)
	db.wal = w
	return nil
}

// replayWAL applies one WAL file's fully-committed units to the
// database. It returns the byte offset of the last applied unit's end
// (the valid truncation point), whether a torn tail was dropped, and a
// hard error for corruption that cannot be a crash artifact (a record
// whose checksum passes but whose content is malformed, a frame protocol
// violation in the middle of the file) or for context cancellation.
func (db *Database) replayWAL(ctx context.Context, data []byte) (validOff int64, torn bool, err error) {
	// Header.
	if len(data) < len(walMagic) {
		if bytes.HasPrefix(walMagic, data) {
			return 0, len(data) > 0, nil // torn magic write
		}
		return 0, false, errf(ErrIO, "sql: wal header corrupt")
	}
	if !bytes.Equal(data[:len(walMagic)], walMagic) {
		return 0, false, errf(ErrIO, "sql: wal header corrupt")
	}
	off := int64(len(walMagic))
	validOff = off

	var pending []walOp
	inFrame := false
	tornRec := false
	for int(off) < len(data) {
		if err := ctx.Err(); err != nil {
			return validOff, false, &Error{Code: ErrCanceled, Msg: "sql: recovery canceled: " + err.Error(), Cause: err}
		}
		rest := data[off:]
		if len(rest) < 8 {
			tornRec = true // torn header
			break
		}
		plen := int64(uint32(rest[0]) | uint32(rest[1])<<8 | uint32(rest[2])<<16 | uint32(rest[3])<<24)
		crc := uint32(rest[4]) | uint32(rest[5])<<8 | uint32(rest[6])<<16 | uint32(rest[7])<<24
		if plen > walMaxRecord || int64(len(rest)) < 8+plen {
			tornRec = true // torn length or payload
			break
		}
		payload := rest[8 : 8+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			tornRec = true // torn or corrupt record: drop the tail
			break
		}
		recEnd := off + 8 + plen

		d := &walDecoder{b: payload}
		kind := d.byte()
		switch kind {
		case 'S':
			if inFrame {
				return validOff, false, errf(ErrIO, "sql: wal frame protocol violation ('S' inside frame)")
			}
			sql := d.str()
			if d.err != nil {
				return validOff, false, d.err
			}
			if err := db.applyRecoveredUnit(ctx, []walOp{{kind: 'S', sql: sql}}); err != nil {
				return validOff, false, err
			}
			validOff = recEnd
		case 'T':
			if inFrame {
				return validOff, false, errf(ErrIO, "sql: wal frame protocol violation ('T' inside frame)")
			}
			d.u64() // seq
			n := int(d.u32())
			ops := make([]walOp, 0, n)
			for i := 0; i < n; i++ {
				ops = append(ops, d.op())
			}
			if d.err != nil {
				return validOff, false, d.err
			}
			if err := db.applyRecoveredUnit(ctx, ops); err != nil {
				return validOff, false, err
			}
			validOff = recEnd
		case 'B':
			if inFrame {
				return validOff, false, errf(ErrIO, "sql: wal frame protocol violation (nested 'B')")
			}
			d.u64() // seq
			if d.err != nil {
				return validOff, false, d.err
			}
			inFrame = true
			pending = pending[:0]
		case 'O':
			if !inFrame {
				return validOff, false, errf(ErrIO, "sql: wal frame protocol violation ('O' outside frame)")
			}
			op := d.op()
			if d.err != nil {
				return validOff, false, d.err
			}
			pending = append(pending, op)
		case 'C':
			if !inFrame {
				return validOff, false, errf(ErrIO, "sql: wal frame protocol violation ('C' outside frame)")
			}
			d.u64() // seq
			if d.err != nil {
				return validOff, false, d.err
			}
			if err := db.applyRecoveredUnit(ctx, pending); err != nil {
				return validOff, false, err
			}
			inFrame = false
			validOff = recEnd
		default:
			return validOff, false, errf(ErrIO, "sql: wal record kind %q unknown", kind)
		}
		off = recEnd
	}
	if inFrame {
		// The file ends inside a frame — at a clean EOF or at a torn
		// record, either way the transaction never committed. Drop it —
		// unless the test harness deliberately broke us.
		if debugWALApplyDanglingFrame {
			if err := db.applyRecoveredUnit(ctx, pending); err != nil {
				return validOff, false, err
			}
			return off, tornRec, nil
		}
		return validOff, true, nil
	}
	return validOff, tornRec, nil
}

// applyRecoveredUnit applies one committed unit (autocommit statement,
// transaction frame, or standalone DDL) under the single-writer latch,
// as an autocommit-style transaction. The writer is not yet armed, so
// nothing here is re-logged.
func (db *Database) applyRecoveredUnit(ctx context.Context, ops []walOp) error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	xid := db.tm.begin()
	tx := &Txn{db: db, xid: xid, auto: true, wrote: true}
	defer db.tm.finish(xid)
	for _, op := range ops {
		if err := ctx.Err(); err != nil {
			return &Error{Code: ErrCanceled, Msg: "sql: recovery canceled: " + err.Error(), Cause: err}
		}
		if err := db.applyRecoveredOp(op, tx); err != nil {
			return err
		}
	}
	db.stats.recoveredTxns.Add(1)
	return nil
}

// applyRecoveredOp applies one logical op. Row-image ops are content-
// addressed: the image matches the lowest-id current row equal to it,
// which reproduces the original slot assignment (DML visits matching
// rows in ascending id order, and compaction preserves relative live-row
// order — see wal.go).
func (db *Database) applyRecoveredOp(op walOp, tx *Txn) error {
	switch op.kind {
	case 'S':
		return db.applyRecoveredDDL(op.sql, tx)
	case 'I':
		t, err := db.lookupTable(op.table)
		if err != nil {
			return recoveryCorrupt(err.Error())
		}
		if err := t.insertRow(op.row, nil, tx); err != nil {
			return recoveryCorrupt("replayed INSERT rejected: " + err.Error())
		}
		return nil
	case 'D':
		t, err := db.lookupTable(op.table)
		if err != nil {
			return recoveryCorrupt(err.Error())
		}
		id, ok := findRowByImage(t, op.row)
		if !ok {
			return recoveryCorrupt("no row matches logged DELETE image in " + op.table)
		}
		t.deleteRow(id, tx)
		return nil
	case 'U':
		t, err := db.lookupTable(op.table)
		if err != nil {
			return recoveryCorrupt(err.Error())
		}
		id, ok := findRowByImage(t, op.row)
		if !ok {
			return recoveryCorrupt("no row matches logged UPDATE image in " + op.table)
		}
		t.updateRow(id, op.row2, nil, tx)
		return nil
	default:
		return recoveryCorrupt("unknown op kind")
	}
}

func recoveryCorrupt(msg string) error {
	return errf(ErrIO, "sql: wal recovery: %s", msg)
}

// applyRecoveredDDL replays one logged DDL statement inside the recovery
// transaction.
func (db *Database) applyRecoveredDDL(sql string, tx *Txn) error {
	stmts, err := ParseAll(sql)
	if err != nil {
		return recoveryCorrupt("logged DDL does not parse: " + err.Error())
	}
	for _, stmt := range stmts {
		switch t := stmt.(type) {
		case *CreateTableStmt:
			err = db.createTable(t, tx)
		case *CreateIndexStmt:
			err = db.createIndex(t, tx)
		case *DropTableStmt:
			err = db.dropTable(t, tx)
		default:
			err = recoveryCorrupt("logged DDL has unexpected statement kind")
		}
		if err != nil {
			return wrapErr(ErrIO, err)
		}
	}
	return nil
}

// findRowByImage returns the lowest row id whose current row is exactly
// (kind- and bit-level) equal to img. Under writeMu, so "current" is
// unambiguous.
func findRowByImage(t *Table, img Row) (int, bool) {
	// An indexed column can narrow the scan; correctness only needs
	// ascending ids, which both paths provide.
	for _, idx := range t.idxs() {
		if idx.Column >= len(img) {
			continue
		}
		for _, id := range idx.copyIDs(img[idx.Column].Key()) {
			r := latestRow(t.head(id))
			if r != nil && rowsExactEqual(r, img) {
				return id, true
			}
		}
		return 0, false
	}
	arr, n := t.loadSlots()
	for id := 0; id < n; id++ {
		r := latestRow(arr[id].head.Load())
		if r != nil && rowsExactEqual(r, img) {
			return id, true
		}
	}
	return 0, false
}

// rowsExactEqual compares rows for exact (kind-sensitive, bit-level)
// equality — stricter than Value.Compare, which treats 1 and 1.0 as
// equal. Replay must match the very row the original statement touched.
func rowsExactEqual(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !valuesExactEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func valuesExactEqual(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindNull:
		return true
	case KindBool:
		return a.b == b.b
	case KindInt:
		return a.i == b.i
	case KindFloat:
		return a.f == b.f || (a.f != a.f && b.f != b.f) // NaN matches NaN
	case KindText:
		return a.s == b.s
	default:
		return false
	}
}
