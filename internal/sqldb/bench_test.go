package sqldb

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// Microbenchmarks for the executor hot paths. Run with:
//
//	go test ./internal/sqldb -run xxx -bench . -benchmem
//
// Every benchmark reports allocations; the compiled-execution refactor is
// judged on allocs/op as much as ns/op.

// benchDB builds a two-table database: `items` (n rows, indexed primary
// key) and `cats` (n/10 rows) joinable on cat_id.
func benchDB(b *testing.B, n int, opts ...Option) *Database {
	b.Helper()
	db := NewDatabase(opts...)
	db.MustExec(`CREATE TABLE items (
		id INTEGER PRIMARY KEY,
		cat_id INTEGER,
		name TEXT,
		price REAL,
		qty INTEGER
	)`)
	db.MustExec("CREATE TABLE cats (id INTEGER PRIMARY KEY, label TEXT)")
	r := rand.New(rand.NewSource(42))
	ncats := n / 10
	if ncats == 0 {
		ncats = 1
	}
	catRows := make([][]any, 0, ncats)
	for i := 0; i < ncats; i++ {
		catRows = append(catRows, []any{i, fmt.Sprintf("cat-%d", i)})
	}
	if err := db.InsertRows("cats", catRows); err != nil {
		b.Fatal(err)
	}
	rows := make([][]any, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []any{
			i,
			r.Intn(ncats),
			fmt.Sprintf("item-%d", i),
			float64(r.Intn(10000)) / 100,
			r.Intn(50),
		})
	}
	if err := db.InsertRows("items", rows); err != nil {
		b.Fatal(err)
	}
	return db
}

func benchQuery(b *testing.B, db *Database, sql string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFilter(b *testing.B) {
	db := benchDB(b, 2000)
	benchQuery(b, db, "SELECT name, price FROM items WHERE price > 50 AND qty < 25")
}

func BenchmarkHashJoin(b *testing.B) {
	db := benchDB(b, 2000)
	// cats.id is indexed, so force a hash join by joining on the
	// un-indexed cat_id from the probe side's perspective only.
	benchQuery(b, db, "SELECT items.name, cats.label FROM cats JOIN items ON cats.id = items.cat_id")
}

func BenchmarkIndexJoin(b *testing.B) {
	db := benchDB(b, 2000)
	// items JOIN cats ON items.cat_id = cats.id: cats.id is the indexed
	// primary key, so the planner uses an index nested loop.
	benchQuery(b, db, "SELECT items.name, cats.label FROM items JOIN cats ON items.cat_id = cats.id")
}

func BenchmarkGroupByAggregate(b *testing.B) {
	db := benchDB(b, 2000)
	benchQuery(b, db, "SELECT cat_id, COUNT(*), SUM(price), AVG(qty) FROM items GROUP BY cat_id")
}

func BenchmarkOrderBy(b *testing.B) {
	db := benchDB(b, 2000)
	benchQuery(b, db, "SELECT name, price FROM items ORDER BY price DESC, name")
}

func BenchmarkDistinct(b *testing.B) {
	db := benchDB(b, 2000)
	benchQuery(b, db, "SELECT DISTINCT cat_id, qty FROM items")
}

func BenchmarkPointLookup(b *testing.B) {
	db := benchDB(b, 2000)
	benchQuery(b, db, "SELECT name FROM items WHERE id = 1234")
}

// BenchmarkOrderByLimit: ORDER BY on an indexed column under a LIMIT.
// The order-aware planner serves this from index order and reads O(k)
// rows; without it the whole table is scanned, sorted, and sliced.
func BenchmarkOrderByLimit(b *testing.B) {
	db := benchDB(b, 50000)
	db.MustExec("CREATE INDEX idx_items_price ON items (price)")
	benchQuery(b, db, "SELECT name, price FROM items ORDER BY price LIMIT 5")
}

// BenchmarkRangeScan: a range predicate over an indexed column. A range
// index scan touches only the matching rows; a naive plan scans the heap.
func BenchmarkRangeScan(b *testing.B) {
	db := benchDB(b, 50000)
	benchQuery(b, db, "SELECT COUNT(*) FROM items WHERE id BETWEEN 1000 AND 1200")
}

// BenchmarkInterleavedReadWrite is the write-heavy workload the
// incremental index maintenance targets: every iteration inserts a row,
// deletes the oldest one, and then runs the two ordered consumers
// (ORDER BY k LIMIT 5 and a BETWEEN range count) against a 20k-row table
// whose indexed column is high-cardinality. Under wholesale invalidation
// each iteration pays a full O(n log n) ordered-view rebuild plus an
// O(n) hash-map rebuild per DML; with incremental maintenance the insert
// is a binary-search splice, the delete a tombstone, and the ordered
// queries stream straight off the maintained view.
func BenchmarkInterleavedReadWrite(b *testing.B) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE ev (id INTEGER PRIMARY KEY, k INTEGER, note TEXT)")
	db.MustExec("CREATE INDEX idx_ev_k ON ev (k)")
	const n = 20000
	r := rand.New(rand.NewSource(9))
	rows := make([][]any, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, []any{i, r.Intn(1 << 30), "x"})
	}
	if err := db.InsertRows("ev", rows); err != nil {
		b.Fatal(err)
	}
	// Warm the ordered view so iteration 0 is not charged the cold build.
	if _, err := db.Query("SELECT id FROM ev ORDER BY k LIMIT 1"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.MustExec("INSERT INTO ev VALUES (?, ?, 'y')", n+i, r.Intn(1<<30))
		db.MustExec("DELETE FROM ev WHERE id = ?", i)
		if _, err := db.Query("SELECT id, k FROM ev ORDER BY k LIMIT 5"); err != nil {
			b.Fatal(err)
		}
		lo := r.Intn(1 << 29)
		if _, err := db.Query("SELECT COUNT(*) FROM ev WHERE k BETWEEN ? AND ?", lo, lo+(1<<24)); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel-execution benchmarks: each runs the same statement against a
// single-worker and a pooled database, so the morsel-parallel scan,
// partial aggregation, and partitioned hash-join build are measured
// against their serial twins. On a single-CPU host the pooled numbers
// show coordination overhead, not speedup; with real cores they show the
// fan-out win. Tables are sized above the default parallelMinRows so the
// pooled runs genuinely take the parallel paths.

func benchWorkers(b *testing.B, run func(b *testing.B, workers int)) {
	b.Helper()
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { run(b, w) })
	}
}

func BenchmarkParallelScan(b *testing.B) {
	benchWorkers(b, func(b *testing.B, w int) {
		db := benchDB(b, 50000, WithMaxWorkers(w))
		benchQuery(b, db, "SELECT name, price FROM items WHERE price > 90 AND qty < 5")
	})
}

func BenchmarkParallelAgg(b *testing.B) {
	benchWorkers(b, func(b *testing.B, w int) {
		db := benchDB(b, 50000, WithMaxWorkers(w))
		benchQuery(b, db, "SELECT cat_id, COUNT(*), SUM(qty), MIN(price), MAX(price) FROM items GROUP BY cat_id")
	})
}

func BenchmarkParallelJoinBuild(b *testing.B) {
	benchWorkers(b, func(b *testing.B, w int) {
		db := benchDB(b, 50000, WithMaxWorkers(w))
		// Right side (items, 50k rows) is the hash-join build side and
		// sits above the parallel-build threshold.
		benchQuery(b, db, "SELECT items.name, cats.label FROM cats JOIN items ON cats.id = items.cat_id")
	})
}

// BenchmarkPreparedVsParsed quantifies what the plan cache and Prepare
// save: sub-benchmark "parsed" clears the cache every iteration, "cached"
// uses Database.Query's LRU, "prepared" holds a *Stmt.
func BenchmarkPreparedVsParsed(b *testing.B) {
	const sql = "SELECT cat_id, COUNT(*) FROM items WHERE price > 10 GROUP BY cat_id ORDER BY 2 DESC LIMIT 5"
	b.Run("parsed", func(b *testing.B) {
		db := benchDB(b, 500)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.plans = newPlanCache() // defeat the cache: full parse every time
			if _, err := db.Query(sql); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		db := benchDB(b, 500)
		benchQuery(b, db, sql)
	})
	b.Run("prepared", func(b *testing.B) {
		db := benchDB(b, 500)
		stmt, err := db.Prepare(sql)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := stmt.Query(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Vectorized-execution benchmarks: each statement runs on the same data
// under all four storage x engine combinations — the heap vs sealed
// column segments underneath, and the row-at-a-time vs vectorized
// executor on top — with a single-worker pool so the comparison isolates
// batch execution from morsel parallelism. sealed/vec is the tentpole
// configuration; heap/row is the old engine.
// unsealAll drops every published segment so the "heap" variants measure
// pure heap scans. The bulk load is big enough to wake the background
// sealer, so it is waited out first — otherwise it could republish
// segments mid-benchmark.
func unsealAll(db *Database) {
	for db.sealing.Load() {
		time.Sleep(time.Millisecond)
	}
	for _, t := range db.tableMap() {
		empty := []*segment{}
		t.segs.Store(&empty)
		t.sealedRows.Store(0)
	}
}

func benchVector(b *testing.B, sql string) {
	b.Helper()
	for _, storage := range []string{"heap", "sealed"} {
		for _, engine := range []string{"row", "vec"} {
			b.Run(storage+"/"+engine, func(b *testing.B) {
				db := benchDB(b, 64*1024, WithMaxWorkers(1))
				unsealAll(db)
				if storage == "sealed" {
					if db.Seal() == 0 {
						b.Fatal("Seal() froze nothing")
					}
				}
				old := vectorEnabled
				vectorEnabled = engine == "vec"
				defer func() { vectorEnabled = old }()
				benchQuery(b, db, sql)
			})
		}
	}
}

func BenchmarkVectorScan(b *testing.B) {
	benchVector(b, "SELECT id, price FROM items WHERE price > 90.0")
}

func BenchmarkVectorFilter(b *testing.B) {
	benchVector(b, "SELECT COUNT(*) FROM items WHERE price > 50.0 AND qty < 25")
}

func BenchmarkVectorAgg(b *testing.B) {
	benchVector(b, "SELECT COUNT(*), SUM(price), AVG(qty), MIN(price), MAX(price) FROM items WHERE qty < 40")
}

// BenchmarkVectorGroupBy is the vectorized executor's worst case on
// sealed storage: cat_id has n/10 distinct values, so nearly every batch
// discovers new groups and pays the lazy representative-row decode.
func BenchmarkVectorGroupBy(b *testing.B) {
	benchVector(b, "SELECT cat_id, COUNT(*), SUM(qty), MIN(price), MAX(price) FROM items GROUP BY cat_id")
}
