package sqldb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Streaming vs materialised equivalence

// collectViaRows drains a streaming cursor into rows-of-strings.
func collectViaRows(t *testing.T, db *Database, sql string) ([]string, [][]string) {
	t.Helper()
	rows, err := db.QueryRows(context.Background(), sql)
	if err != nil {
		t.Fatalf("QueryRows(%q): %v", sql, err)
	}
	defer rows.Close()
	var out []Row
	for rows.Next() {
		out = append(out, rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Rows.Err(%q): %v", sql, err)
	}
	return rows.Columns(), rowsToStrings(out)
}

// TestRowsMatchesResultOverPlanCorpus re-runs the plan-equivalence corpus
// through both query surfaces: the streaming cursor must produce exactly
// the rows and ordering of the materialised Result, on the indexed and
// the plain database alike.
func TestRowsMatchesResultOverPlanCorpus(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	indexed, plain := propTables(t, r)
	shapes := []func(*rand.Rand) string{
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT id, a, c FROM t1 WHERE %s ORDER BY id", randPred(r))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf(
				"SELECT t1.id, t1.a, t2.d FROM t1 JOIN t2 ON t1.id = t2.t1_id WHERE %s ORDER BY t1.id, t2.id",
				randPred(r))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf(
				"SELECT t1.id, t2.d FROM t1 LEFT JOIN t2 ON t1.id = t2.t1_id WHERE %s ORDER BY t1.id, t2.id",
				randPred(r))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf(
				"SELECT a, COUNT(*), SUM(c) FROM t1 WHERE %s GROUP BY a HAVING COUNT(*) > 1 ORDER BY a", randPred(r))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf(
				"SELECT DISTINCT t1.a FROM t1 JOIN t2 ON t1.id = t2.t1_id ORDER BY t1.a LIMIT %d",
				1+r.Intn(6))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf(
				"SELECT id FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE t2.t1_id = t1.id AND t2.d > %d) ORDER BY id",
				r.Intn(20))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT id, b FROM t1 WHERE %s LIMIT %d OFFSET %d",
				randPred(r), r.Intn(10), r.Intn(5))
		},
	}
	for i := 0; i < 210; i++ {
		sql := shapes[i%len(shapes)](r)
		for name, db := range map[string]*Database{"indexed": indexed, "plain": plain} {
			res, err := db.Query(sql)
			if err != nil {
				t.Fatalf("%s Query(%q): %v", name, sql, err)
			}
			cols, streamed := collectViaRows(t, db, sql)
			if !reflect.DeepEqual(cols, res.Columns) {
				t.Fatalf("%s columns disagree on %q: rows %v vs result %v", name, sql, cols, res.Columns)
			}
			if !reflect.DeepEqual(streamed, rowsToStrings(res.Rows)) {
				t.Fatalf("streaming disagrees with materialised on %s %q:\nrows   %v\nresult %v",
					name, sql, streamed, rowsToStrings(res.Rows))
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Early termination (the acceptance criterion: LIMIT k reads O(k) rows)

func bigDB(t testing.TB, n int) *Database {
	db := NewDatabase()
	db.MustExec("CREATE TABLE big (id INTEGER PRIMARY KEY, grp INTEGER, v REAL)")
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{i, i % 50, float64(i % 997)}
	}
	if err := db.InsertRows("big", rows); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLimitScansOnlyLimitRows(t *testing.T) {
	db := bigDB(t, 100000)
	before := db.Stats()
	res, err := db.Query("SELECT id FROM big LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
	scanned := db.Stats().RowsScanned - before.RowsScanned
	if scanned != 5 {
		t.Errorf("LIMIT 5 scanned %d rows, want exactly 5", scanned)
	}

	// OFFSET widens the window but stays O(k).
	before = db.Stats()
	if _, err := db.Query("SELECT id FROM big LIMIT 5 OFFSET 7"); err != nil {
		t.Fatal(err)
	}
	if scanned := db.Stats().RowsScanned - before.RowsScanned; scanned != 12 {
		t.Errorf("LIMIT 5 OFFSET 7 scanned %d rows, want 12", scanned)
	}

	// DISTINCT streams too: stop once the window fills.
	before = db.Stats()
	if _, err := db.Query("SELECT DISTINCT grp FROM big LIMIT 3"); err != nil {
		t.Fatal(err)
	}
	if scanned := db.Stats().RowsScanned - before.RowsScanned; scanned != 3 {
		t.Errorf("DISTINCT LIMIT 3 scanned %d rows, want 3", scanned)
	}

	// An ORDER BY is a pipeline breaker: the whole table must be read.
	before = db.Stats()
	if _, err := db.Query("SELECT id FROM big ORDER BY v LIMIT 5"); err != nil {
		t.Fatal(err)
	}
	if scanned := db.Stats().RowsScanned - before.RowsScanned; scanned != 100000 {
		t.Errorf("ORDER BY LIMIT scanned %d rows, want 100000", scanned)
	}
}

func TestExistsStopsAtFirstMatch(t *testing.T) {
	db := bigDB(t, 100000)
	before := db.Stats()
	res, err := db.Query("SELECT EXISTS (SELECT 1 FROM big WHERE grp = 0)")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsBool(); !got {
		t.Fatalf("EXISTS = %v, want true", got)
	}
	// grp = 0 matches the very first row; the subplan must stop there.
	if scanned := db.Stats().RowsScanned - before.RowsScanned; scanned != 1 {
		t.Errorf("EXISTS scanned %d rows, want 1", scanned)
	}
}

// ---------------------------------------------------------------------------
// Context cancellation

func TestQueryContextCancelledMidScan(t *testing.T) {
	db := bigDB(t, 50000)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryRows(ctx, "SELECT id FROM big")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for i := 0; i < 10; i++ {
		if !rows.Next() {
			t.Fatalf("Next() = false after %d rows: %v", i, rows.Err())
		}
	}
	cancel()
	if rows.Next() {
		t.Fatal("Next() = true after cancellation")
	}
	err = rows.Err()
	var se *Error
	if !errors.As(err, &se) || se.Code != ErrCanceled {
		t.Fatalf("Err() = %v, want *Error{ErrCanceled}", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v does not unwrap to context.Canceled", err)
	}
}

func TestQueryContextCancelledInsidePipelineBreaker(t *testing.T) {
	// Cancellation is observed inside a materialising stage (aggregation
	// drains the scan on the first Next), not just between result rows.
	db := bigDB(t, 50000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx, "SELECT grp, COUNT(*) FROM big GROUP BY grp")
	if CodeOf(err) != ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestExecContextCancelledMidUpdate(t *testing.T) {
	db := bigDB(t, 50000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExecContext(ctx, "UPDATE big SET v = v + 1 WHERE grp < 100")
	if CodeOf(err) != ErrCanceled {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// ---------------------------------------------------------------------------
// Cursor lifecycle: leaks, auto-close, locking

// TestRowsLeakIsObservableAndWritersProceed pins the MVCC contract that
// replaced cursor read locks: an open cursor never blocks a writer, the
// committed write is invisible to the cursor's snapshot, and Close
// releases the snapshot reference (observable via the live-snapshot
// count, which is what lets the vacuum horizon advance).
func TestRowsLeakIsObservableAndWritersProceed(t *testing.T) {
	db := bigDB(t, 1000)
	base := db.tm.liveSnapshots()
	rows, err := db.QueryRows(context.Background(), "SELECT id FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("expected a first row")
	}
	if got := db.Stats().OpenCursors; got != 1 {
		t.Fatalf("OpenCursors = %d with an open cursor, want 1", got)
	}
	if got := db.tm.liveSnapshots(); got != base+1 {
		t.Fatalf("liveSnapshots = %d with an open cursor, want %d", got, base+1)
	}

	// A writer completes while the cursor is open: readers hold a
	// snapshot, not a lock.
	wrote := make(chan error, 1)
	go func() {
		_, err := db.Exec("INSERT INTO big VALUES (1000001, 0, 0)")
		wrote <- err
	}()
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatalf("write under an open cursor: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write blocked by an open cursor")
	}

	// The commit landed mid-iteration, so it is invisible to this
	// cursor's snapshot: exactly the original 1000 rows stream out.
	n := 1 // the row already fetched
	for rows.Next() {
		n++
	}
	if n != 1000 || rows.Err() != nil {
		t.Fatalf("cursor saw %d rows (err %v), want its snapshot's 1000", n, rows.Err())
	}
	// Next's exhaustion auto-closed the cursor and released its snapshot.
	if got := db.Stats().OpenCursors; got != 0 {
		t.Fatalf("OpenCursors = %d after exhaustion, want 0", got)
	}
	if got := db.tm.liveSnapshots(); got != base {
		t.Fatalf("liveSnapshots = %d after close, want %d (snapshot released)", got, base)
	}
	// A fresh statement sees the concurrent commit.
	var cnt int
	res, err := db.Query("SELECT COUNT(*) FROM big")
	if err != nil {
		t.Fatal(err)
	}
	cnt = int(res.Rows[0][0].AsInt())
	if cnt != 1001 {
		t.Fatalf("post-close count = %d, want 1001", cnt)
	}
	// Close is idempotent.
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRowsAutoCloseOnExhaustion(t *testing.T) {
	db := bigDB(t, 10)
	rows, err := db.QueryRows(context.Background(), "SELECT id FROM big")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if n != 10 || rows.Err() != nil {
		t.Fatalf("drained %d rows, err %v", n, rows.Err())
	}
	if got := db.Stats().OpenCursors; got != 0 {
		t.Fatalf("OpenCursors = %d after exhaustion, want 0 (auto-close)", got)
	}
	// The database accepts writes again without an explicit Close.
	if _, err := db.Exec("DELETE FROM big WHERE id = 0"); err != nil {
		t.Fatal(err)
	}
}

func TestRowsScanConversions(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (i INTEGER, f REAL, s TEXT, b BOOLEAN)")
	db.MustExec("INSERT INTO t VALUES (42, 2.5, 'hi', TRUE)")
	rows, err := db.QueryRows(context.Background(), "SELECT i, f, s, b FROM t")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()

	if err := rows.Scan(); CodeOf(err) != ErrCursor {
		t.Fatalf("Scan before Next: %v, want ErrCursor", err)
	}
	if !rows.Next() {
		t.Fatal("no row")
	}
	var i int
	var f float64
	var s string
	var b bool
	if err := rows.Scan(&i, &f, &s, &b); err != nil {
		t.Fatal(err)
	}
	if i != 42 || f != 2.5 || s != "hi" || !b {
		t.Fatalf("scanned (%d, %v, %q, %v)", i, f, s, b)
	}
	if err := rows.Scan(&i); CodeOf(err) != ErrCursor {
		t.Fatalf("arity mismatch: %v, want ErrCursor", err)
	}
	var ch chan int
	if err := rows.Scan(&i, &f, &s, &ch); CodeOf(err) != ErrCursor {
		t.Fatalf("bad destination: %v, want ErrCursor", err)
	}
	var anyV any
	if err := rows.Scan(nil, nil, &anyV, nil); err != nil || anyV != "hi" {
		t.Fatalf("any/nil destinations: %v %v", anyV, err)
	}
}

func TestStmtQueryRows(t *testing.T) {
	db := bigDB(t, 100)
	stmt, err := db.Prepare("SELECT id FROM big WHERE grp = ? LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := stmt.QueryRows(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []int64
	for rows.Next() {
		var id int64
		if err := rows.Scan(&id); err != nil {
			t.Fatal(err)
		}
		got = append(got, id)
	}
	if !reflect.DeepEqual(got, []int64{3, 53}) {
		t.Fatalf("got %v, want [3 53]", got)
	}
}

// ---------------------------------------------------------------------------
// Typed errors

func TestTypedErrorCodes(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (a INTEGER)")
	cases := []struct {
		sql  string
		code ErrorCode
	}{
		{"SELEC a FROM t", ErrParse},
		{"SELECT a FROM missing", ErrNoTable},
		{"SELECT nope FROM t", ErrNoColumn},
		{"SELECT NOSUCHFN(a) FROM t", ErrNoFunction},
		{"SELECT SUM(a), MAX(SUM(a)) FROM t", ErrMisuse},
		{"SELECT ? FROM t", ErrParams},
		{"CREATE TABLE t (a INTEGER)", ErrSchema},
	}
	for _, tc := range cases {
		var err error
		if tc.code == ErrSchema {
			_, err = db.Exec(tc.sql)
		} else {
			_, err = db.Query(tc.sql)
		}
		if err == nil {
			t.Errorf("%q: no error, want %s", tc.sql, tc.code)
			continue
		}
		var se *Error
		if !errors.As(err, &se) {
			t.Errorf("%q: error %T is not errors.As-matchable to *Error: %v", tc.sql, err, err)
			continue
		}
		if se.Code != tc.code {
			t.Errorf("%q: code %s, want %s (%v)", tc.sql, se.Code, tc.code, err)
		}
		// Code-only probes via errors.Is.
		if !errors.Is(err, &Error{Code: tc.code}) {
			t.Errorf("%q: errors.Is code probe failed for %s", tc.sql, tc.code)
		}
	}
	// Constraint violations surface from DML.
	if _, err := db.Exec("CREATE TABLE u (k INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	db.MustExec("INSERT INTO u VALUES (1)")
	if _, err := db.Exec("INSERT INTO u VALUES (1)"); CodeOf(err) != ErrConstraint {
		t.Errorf("duplicate PK: %v, want ErrConstraint", err)
	}
	// Parse errors still expose the positioned *ParseError as the cause.
	_, err := db.Query("SELEC a")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Errorf("parse error does not unwrap to *ParseError: %v", err)
	}
}

// ---------------------------------------------------------------------------
// Stats

func TestStatsCounters(t *testing.T) {
	db := bigDB(t, 1000)
	base := db.Stats()

	for i := 0; i < 3; i++ {
		if _, err := db.Query("SELECT COUNT(*) FROM big"); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if got := st.Queries - base.Queries; got != 3 {
		t.Errorf("Queries delta = %d, want 3", got)
	}
	if hits := st.PlanCacheHits - base.PlanCacheHits; hits != 2 {
		t.Errorf("PlanCacheHits delta = %d, want 2", hits)
	}
	if misses := st.PlanCacheMisses - base.PlanCacheMisses; misses != 1 {
		t.Errorf("PlanCacheMisses delta = %d, want 1", misses)
	}
	if scanned := st.RowsScanned - base.RowsScanned; scanned != 3000 {
		t.Errorf("RowsScanned delta = %d, want 3000", scanned)
	}
	if emitted := st.RowsEmitted - base.RowsEmitted; emitted != 3 {
		t.Errorf("RowsEmitted delta = %d, want 3", emitted)
	}
	if full := st.FullScans - base.FullScans; full != 3 {
		t.Errorf("FullScans delta = %d, want 3", full)
	}

	// A point lookup on the primary key is an index scan.
	before := db.Stats()
	if _, err := db.Query("SELECT grp FROM big WHERE id = 7"); err != nil {
		t.Fatal(err)
	}
	st = db.Stats()
	if idx := st.IndexScans - before.IndexScans; idx != 1 {
		t.Errorf("IndexScans delta = %d, want 1", idx)
	}
	if scanned := st.RowsScanned - before.RowsScanned; scanned != 1 {
		t.Errorf("point lookup scanned %d rows, want 1", scanned)
	}

	// DDL/DML land in Execs.
	before = db.Stats()
	db.MustExec("CREATE TABLE side (x INTEGER)")
	db.MustExec("INSERT INTO side VALUES (1)")
	if got := db.Stats().Execs - before.Execs; got != 2 {
		t.Errorf("Execs delta = %d, want 2", got)
	}
}

// ---------------------------------------------------------------------------
// DML early-exit consistency (regression: an error or cancellation
// mid-loop must not leave stale indexes or a half-compacted heap)

func TestUpdateErrorMidLoopKeepsIndexesConsistent(t *testing.T) {
	db := NewDatabase()
	db.Funcs().Register("BOOM_IF", func(args []Value) (Value, error) {
		if args[0].AsInt() == args[1].AsInt() {
			return Null, errf(ErrMisuse, "boom")
		}
		return Bool(true), nil
	})
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
	rows := make([][]any, 10)
	for i := range rows {
		rows[i] = []any{i, i}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	// Rows 0..4 update their PRIMARY KEY (indexed) before row 5 errors.
	_, err := db.Exec("UPDATE t SET id = id + 100 WHERE BOOM_IF(v, 5)")
	if CodeOf(err) != ErrMisuse {
		t.Fatalf("err = %v, want the UDF error", err)
	}
	// The index must serve the post-update keys for the rows that changed.
	for _, id := range []int{100, 101, 102, 103, 104, 5, 6, 7, 8, 9} {
		res, qerr := db.Query("SELECT v FROM t WHERE id = ?", id)
		if qerr != nil {
			t.Fatal(qerr)
		}
		if len(res.Rows) != 1 {
			t.Errorf("index lookup id=%d found %d rows, want 1", id, len(res.Rows))
		}
	}
}

func TestDeleteErrorMidLoopKeepsHeapConsistent(t *testing.T) {
	db := NewDatabase()
	db.Funcs().Register("DEL_OR_BOOM", func(args []Value) (Value, error) {
		v := args[0].AsInt()
		if v == 6 {
			return Null, errf(ErrMisuse, "boom")
		}
		return Bool(v < 3), nil
	})
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
	rows := make([][]any, 10)
	for i := range rows {
		rows[i] = []any{i, i}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}
	// v 0..2 are deleted, then v=6 errors mid-compaction.
	_, err := db.Exec("DELETE FROM t WHERE DEL_OR_BOOM(v)")
	if CodeOf(err) != ErrMisuse {
		t.Fatalf("err = %v, want the UDF error", err)
	}
	res, err := db.Query("SELECT v FROM t ORDER BY v")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range res.Rows {
		got = append(got, r[0].AsText())
	}
	want := []string{"3", "4", "5", "6", "7", "8", "9"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("heap after mid-delete error: %v, want %v", got, want)
	}
	// Index lookups agree with the heap (no duplicates, no stale ids).
	for id := 3; id <= 9; id++ {
		res, qerr := db.Query("SELECT v FROM t WHERE id = ?", id)
		if qerr != nil {
			t.Fatal(qerr)
		}
		if len(res.Rows) != 1 {
			t.Errorf("index lookup id=%d found %d rows, want 1", id, len(res.Rows))
		}
	}
}
