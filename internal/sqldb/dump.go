package sqldb

import (
	"fmt"
	"io"
	"strings"
)

// Dump writes the database as a SQL script (CREATE TABLE + INSERT
// statements) that LoadScript can replay — the engine's persistence story.
// Tables are emitted in sorted order; rows in storage order. Indexes
// created by CREATE INDEX are re-emitted after the data so reloads rebuild
// them.
func (db *Database) Dump(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if _, err := io.WriteString(w, db.schemaSQLLocked()); err != nil {
		return err
	}
	for _, name := range db.tableNamesLocked() {
		t := db.tables[strings.ToLower(name)]
		for id, row := range t.rows {
			if t.isDead(id) {
				continue
			}
			var b strings.Builder
			b.WriteString("INSERT INTO " + quoteIdent(t.Name) + " VALUES (")
			for i, v := range row {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(v.String())
			}
			b.WriteString(");\n")
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
		}
		// Secondary (non-automatic) indexes.
		for _, idx := range t.indexes {
			if strings.HasPrefix(idx.Name, "auto_") {
				continue
			}
			unique := ""
			if idx.Unique {
				unique = "UNIQUE "
			}
			stmt := fmt.Sprintf("CREATE %sINDEX %s ON %s (%s);\n",
				unique, quoteIdent(idx.Name), quoteIdent(t.Name),
				quoteIdent(t.Columns[idx.Column].Name))
			if _, err := io.WriteString(w, stmt); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadScript executes a multi-statement SQL script (as produced by Dump).
func (db *Database) LoadScript(src string) error {
	_, err := db.Exec(src)
	return err
}

// schemaSQLLocked is SchemaSQL without re-taking the lock.
func (db *Database) schemaSQLLocked() string {
	names := db.tableNamesLocked()
	var b strings.Builder
	for _, n := range names {
		t := db.tables[strings.ToLower(n)]
		b.WriteString("CREATE TABLE " + quoteIdent(t.Name) + " (")
		for i, c := range t.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(quoteIdent(c.Name) + " " + c.DeclType)
			if c.PrimaryKey {
				b.WriteString(" PRIMARY KEY")
			}
			if c.NotNull && !c.PrimaryKey {
				b.WriteString(" NOT NULL")
			}
			if c.Unique && !c.PrimaryKey {
				b.WriteString(" UNIQUE")
			}
		}
		b.WriteString(");\n")
	}
	return b.String()
}

func (db *Database) tableNamesLocked() []string {
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sortStrings(names)
	return names
}

// sortStrings is a tiny insertion sort to avoid re-importing sort here.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
