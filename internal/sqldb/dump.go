package sqldb

import (
	"fmt"
	"io"
	"strings"
)

// Dump writes the database as a SQL script (CREATE TABLE + INSERT
// statements) that LoadScript can replay — the engine's persistence story.
// Tables are emitted in sorted order; rows in storage order. Indexes
// created by CREATE INDEX are re-emitted after the data so reloads rebuild
// them. Dump iterates under a registered MVCC snapshot: it emits exactly
// the committed state as of the call, and concurrent writers are neither
// blocked nor reflected mid-script.
func (db *Database) Dump(w io.Writer) error {
	snap, release := db.beginRead(nil)
	defer release()
	return db.dumpSnapshot(w, snap)
}

// dumpSnapshot renders the state visible to snap as a SQL script. Output is
// deterministic for a given snapshot: tables sorted by name, rows in storage
// order, secondary indexes sorted by name — so two dumps of identical states
// are bit-identical (the crash harness and checkpointing rely on this).
func (db *Database) dumpSnapshot(w io.Writer, snap *snapshot) error {
	tables := db.tableMap()
	if _, err := io.WriteString(w, dumpSchemaSQL(tables)); err != nil {
		return err
	}
	for _, name := range sortedTableNames(tables) {
		t := tables[strings.ToLower(name)]
		arr, n := t.loadSlots()
		for id := 0; id < n; id++ {
			head := arr[id].head.Load()
			if head == nil {
				continue
			}
			row := visibleVersion(head, snap)
			if row == nil {
				continue
			}
			var b strings.Builder
			b.WriteString("INSERT INTO " + quoteIdent(t.Name) + " VALUES (")
			for i, v := range row {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(v.String())
			}
			b.WriteString(");\n")
			if _, err := io.WriteString(w, b.String()); err != nil {
				return err
			}
		}
		// Secondary (non-automatic) indexes, sorted by name for
		// deterministic output.
		var stmts []string
		for _, idx := range t.idxs() {
			if strings.HasPrefix(idx.Name, "auto_") {
				continue
			}
			unique := ""
			if idx.Unique {
				unique = "UNIQUE "
			}
			stmts = append(stmts, fmt.Sprintf("CREATE %sINDEX %s ON %s (%s);\n",
				unique, quoteIdent(idx.Name), quoteIdent(t.Name),
				quoteIdent(t.Columns[idx.Column].Name)))
		}
		sortStrings(stmts)
		for _, stmt := range stmts {
			if _, err := io.WriteString(w, stmt); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadScript executes a multi-statement SQL script (as produced by Dump)
// atomically: the whole script runs inside one transaction, so a
// mid-script error leaves the database untouched. DDL participates in the
// transaction and is rolled back with everything else.
func (db *Database) LoadScript(src string) error {
	tx := db.Begin()
	if _, err := tx.Exec(src); err != nil {
		_ = tx.Rollback()
		return err
	}
	return tx.Commit()
}

// dumpSchemaSQL renders Dump's compact one-line CREATE TABLE form for a
// catalog snapshot.
func dumpSchemaSQL(tables map[string]*Table) string {
	names := sortedTableNames(tables)
	var b strings.Builder
	for _, n := range names {
		t := tables[strings.ToLower(n)]
		b.WriteString("CREATE TABLE " + quoteIdent(t.Name) + " (")
		for i, c := range t.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(quoteIdent(c.Name) + " " + c.DeclType)
			if c.PrimaryKey {
				b.WriteString(" PRIMARY KEY")
			}
			if c.NotNull && !c.PrimaryKey {
				b.WriteString(" NOT NULL")
			}
			if c.Unique && !c.PrimaryKey {
				b.WriteString(" UNIQUE")
			}
		}
		b.WriteString(");\n")
	}
	return b.String()
}

func sortedTableNames(tables map[string]*Table) []string {
	names := make([]string, 0, len(tables))
	for _, t := range tables {
		names = append(names, t.Name)
	}
	sortStrings(names)
	return names
}

// sortStrings is a tiny insertion sort to avoid re-importing sort here.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
