package sqldb

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenType enumerates lexical token classes produced by the lexer.
type tokenType uint8

const (
	tokEOF tokenType = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // punctuation and operators: ( ) , ; . = != < <= > >= + - * / % ||
	tokParam // ? placeholder
)

// token is one lexical unit with its source position (byte offset).
type token struct {
	typ tokenType
	// text holds the token text. Keywords are upper-cased; identifiers and
	// strings preserve their original spelling (quotes stripped).
	text string
	pos  int
}

// keywords is the set of reserved words recognised by the parser. Words not
// listed here lex as identifiers even if they look special.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "NULL": true, "IS": true, "IN": true,
	"LIKE": true, "BETWEEN": true, "DISTINCT": true, "ASC": true, "DESC": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true,
	"CROSS": true, "ON": true, "CREATE": true, "TABLE": true, "INDEX": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "DROP": true, "PRIMARY": true, "KEY": true, "UNIQUE": true,
	"TRUE": true, "FALSE": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "EXISTS": true, "CAST": true, "UNION": true,
	"ALL": true, "IF": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "TRANSACTION": true,
}

// lexError reports a lexical error with byte position context.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("sql: lex error at offset %d: %s", e.pos, e.msg)
}

// lex tokenises a SQL string. It never panics; malformed input yields an
// error identifying the offending offset.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			// Line comment.
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, &lexError{pos: i, msg: "unterminated block comment"}
			}
			i += end + 4
		case c == '\'':
			s, next, err := lexString(src, i, '\'')
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{typ: tokString, text: s, pos: i})
			i = next
		case c == '"' || c == '`':
			// Quoted identifier. An empty one is rejected: nothing can be
			// named "", and it cannot round-trip through rendering.
			s, next, err := lexString(src, i, rune(c))
			if err != nil {
				return nil, err
			}
			if s == "" {
				return nil, &lexError{pos: i, msg: "empty quoted identifier"}
			}
			toks = append(toks, token{typ: tokIdent, text: s, pos: i})
			i = next
		case c == '[':
			// Bracket-quoted identifier (SQLite/T-SQL style).
			end := strings.IndexByte(src[i+1:], ']')
			if end < 0 {
				return nil, &lexError{pos: i, msg: "unterminated [identifier]"}
			}
			if end == 0 {
				return nil, &lexError{pos: i, msg: "empty quoted identifier"}
			}
			toks = append(toks, token{typ: tokIdent, text: src[i+1 : i+1+end], pos: i})
			i += end + 2
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			seenDot := false
			seenExp := false
			for i < n {
				d := src[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < n && (src[i] == '+' || src[i] == '-') {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, token{typ: tokNumber, text: src[start:i], pos: start})
		case identStartWidth(src[i:]) > 0:
			// Identifiers decode as UTF-8 (an identifier byte sequence that
			// is not valid UTF-8 is rejected, never smuggled through as
			// Latin-1: case normalisation downstream would mangle it into
			// U+FFFD and the statement would no longer round-trip — found
			// by FuzzParse).
			start := i
			i += identStartWidth(src[i:])
			for i < n {
				w := identPartWidth(src[i:])
				if w == 0 {
					break
				}
				i += w
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{typ: tokKeyword, text: up, pos: start})
			} else {
				toks = append(toks, token{typ: tokIdent, text: word, pos: start})
			}
		case c == '?':
			toks = append(toks, token{typ: tokParam, text: "?", pos: i})
			i++
		default:
			op, width, err := lexOp(src, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{typ: tokOp, text: op, pos: i})
			i += width
		}
	}
	toks = append(toks, token{typ: tokEOF, text: "", pos: n})
	return toks, nil
}

// lexString scans a quoted literal starting at src[start] (which must be the
// opening quote). Doubled quotes escape themselves. It returns the unescaped
// contents and the index just past the closing quote.
func lexString(src string, start int, quote rune) (string, int, error) {
	var b strings.Builder
	i := start + 1
	n := len(src)
	for i < n {
		c := rune(src[i])
		if c == quote {
			if i+1 < n && rune(src[i+1]) == quote {
				b.WriteRune(quote)
				i += 2
				continue
			}
			return b.String(), i + 1, nil
		}
		b.WriteByte(src[i])
		i++
	}
	return "", 0, &lexError{pos: start, msg: "unterminated string literal"}
}

// lexOp scans a one- or two-character operator at src[i].
func lexOp(src string, i int) (string, int, error) {
	two := ""
	if i+1 < len(src) {
		two = src[i : i+2]
	}
	switch two {
	case "<=", ">=", "!=", "<>", "||":
		return two, 2, nil
	}
	switch src[i] {
	case '(', ')', ',', ';', '.', '=', '<', '>', '+', '-', '*', '/', '%':
		return string(src[i]), 1, nil
	}
	return "", 0, &lexError{pos: i, msg: fmt.Sprintf("unexpected character %q", src[i])}
}

// identStartWidth reports the byte width of a valid identifier-start rune
// at the head of s, or 0. Invalid UTF-8 never starts an identifier.
func identStartWidth(s string) int {
	r, w := utf8.DecodeRuneInString(s)
	if r == utf8.RuneError && w <= 1 {
		return 0
	}
	if r == '_' || unicode.IsLetter(r) {
		return w
	}
	return 0
}

// identPartWidth is identStartWidth for continuation runes ($ and digits
// also allowed).
func identPartWidth(s string) int {
	r, w := utf8.DecodeRuneInString(s)
	if r == utf8.RuneError && w <= 1 {
		return 0
	}
	if r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r) {
		return w
	}
	return 0
}
