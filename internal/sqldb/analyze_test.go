package sqldb

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Tests for EXPLAIN ANALYZE and the per-query stats recorder: annotated
// plan rendering, per-operator attribution, and the accounting property
// that ties the three layers (per-operator counts, per-query QueryStats,
// engine-wide Stats) together exactly.

func TestExplainAnalyzeAnnotatesPlan(t *testing.T) {
	db := bigDB(t, 10000)
	aq, err := db.ExplainAnalyze(context.Background(),
		"SELECT id FROM big WHERE id > 100 ORDER BY id LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	out := strings.Join(aq.Plan, "\n")
	if !strings.Contains(out, "ordered index range scan big") {
		t.Errorf("expected the ordered range access path:\n%s", out)
	}
	if !strings.Contains(out, "scanned=5") {
		t.Errorf("ordered LIMIT 5 should report exactly 5 scanned rows:\n%s", out)
	}
	if !strings.Contains(out, "rows=5") || !strings.Contains(out, "time=") {
		t.Errorf("per-operator annotations missing:\n%s", out)
	}
	if aq.Stats.RowsScanned != 5 || aq.Stats.RowsEmitted != 5 {
		t.Errorf("per-query totals = %+v, want 5 scanned / 5 emitted", aq.Stats)
	}
	if aq.Stats.OrderedIndexOrders != 1 || aq.Stats.IndexRangeScans != 1 {
		t.Errorf("access-path totals = %+v, want 1 ordered order and 1 range scan", aq.Stats)
	}

	// The bounded sort path annotates in-vs-kept.
	aq, err = db.ExplainAnalyze(context.Background(),
		"SELECT id FROM big ORDER BY v LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	out = strings.Join(aq.Plan, "\n")
	if !strings.Contains(out, "in=10000 kept=3") {
		t.Errorf("top-k sort should report in=10000 kept=3:\n%s", out)
	}
}

func TestExplainAnalyzeSubplanAnnotations(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE o (id INTEGER PRIMARY KEY)")
	db.MustExec("CREATE TABLE i (oid INTEGER, v INTEGER)")
	for k := 0; k < 20; k++ {
		db.MustExec("INSERT INTO o VALUES (?)", k)
		if k%2 == 0 {
			db.MustExec("INSERT INTO i VALUES (?, ?)", k, k*3)
		}
	}
	aq, err := db.ExplainAnalyze(context.Background(),
		"SELECT id FROM o WHERE EXISTS (SELECT 1 FROM i WHERE i.oid = o.id)")
	if err != nil {
		t.Fatal(err)
	}
	out := strings.Join(aq.Plan, "\n")
	if !strings.Contains(out, "subplan (compiled once, outer row rebound per probe) [probes=20 hits=19 misses=1]:") {
		t.Errorf("cached subplan should report probe and cache counts:\n%s", out)
	}
	if !strings.Contains(out, "correlated probe i (as i)") {
		t.Errorf("the executed correlated probe should render:\n%s", out)
	}
	if aq.Stats.SubplanCacheHits != 19 || aq.Stats.SubplanCacheMisses != 1 {
		t.Errorf("subplan totals = %+v, want 19/1", aq.Stats)
	}

	// A scalar subquery in the projection renders with its counts too.
	aq, err = db.ExplainAnalyze(context.Background(),
		"SELECT id, (SELECT MAX(v) FROM i WHERE i.oid = o.id) FROM o")
	if err != nil {
		t.Fatal(err)
	}
	out = strings.Join(aq.Plan, "\n")
	if !strings.Contains(out, "subplan") || !strings.Contains(out, "probes=20") {
		t.Errorf("projection subplan should render with probe counts:\n%s", out)
	}
}

// TestExplainAnalyzeRecorderBounded: a non-cacheable subplan rebuilds
// its tree once per outer row; the recorder must fold and forget each
// discarded tree instead of pinning O(outer rows) trees (and their
// materialised derived-table rows) for the whole execution.
func TestExplainAnalyzeRecorderBounded(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE o (id INTEGER PRIMARY KEY)")
	db.MustExec("CREATE TABLE i (oid INTEGER)")
	for k := 0; k < 200; k++ {
		db.MustExec("INSERT INTO o VALUES (?)", k)
		db.MustExec("INSERT INTO i VALUES (?)", k%50)
	}
	aq, err := db.ExplainAnalyze(context.Background(),
		"SELECT id FROM o WHERE EXISTS (SELECT 1 FROM (SELECT oid FROM i) d WHERE d.oid = o.id)")
	if err != nil {
		t.Fatal(err)
	}
	var rec *subplanRec
	for _, s := range aq.rec.subplans {
		rec = s
	}
	if rec == nil || rec.probes != 200 || rec.misses != 200 {
		t.Fatalf("non-cacheable subplan record = %+v, want 200 probes / 200 misses", rec)
	}
	// Main tree plus one retained subplan tree: a few dozen operators at
	// most, never O(probes) of them.
	if got := len(aq.rec.stats); got > 40 {
		t.Errorf("recorder retains %d operator records — discarded per-probe trees are being pinned", got)
	}
}

func TestExplainAnalyzeRequiresSelect(t *testing.T) {
	db := testDB(t)
	_, err := db.ExplainAnalyze(context.Background(), "DELETE FROM movies")
	if CodeOf(err) != ErrMisuse {
		t.Errorf("EXPLAIN ANALYZE of DML: err = %v, want ErrMisuse", err)
	}
}

// analyzeCorpus is the plan corpus for the accounting property: every
// operator and access path the planner can produce, including cacheable
// and non-cacheable (derived-table) subplans, merge joins, ordered and
// range scans, and correlated probes.
func analyzeCorpus(r *rand.Rand) []string {
	return []string{
		fmt.Sprintf("SELECT id, a, c FROM t1 WHERE %s ORDER BY id", randPred(r)),
		fmt.Sprintf("SELECT t1.id, t1.a, t2.d FROM t1 JOIN t2 ON t1.id = t2.t1_id WHERE %s ORDER BY t1.id, t2.id", randPred(r)),
		fmt.Sprintf("SELECT t1.id, t2.d FROM t1 LEFT JOIN t2 ON t1.id = t2.t1_id WHERE %s ORDER BY t1.id, t2.id", randPred(r)),
		fmt.Sprintf("SELECT a, COUNT(*), SUM(c) FROM t1 WHERE %s GROUP BY a HAVING COUNT(*) > 1 ORDER BY a", randPred(r)),
		fmt.Sprintf("SELECT DISTINCT t1.a FROM t1 JOIN t2 ON t1.id = t2.t1_id ORDER BY t1.a LIMIT %d", 1+r.Intn(6)),
		fmt.Sprintf("SELECT id FROM t1 WHERE EXISTS (SELECT 1 FROM t2 WHERE t2.t1_id = t1.id AND t2.d > %d) ORDER BY id", r.Intn(20)),
		fmt.Sprintf("SELECT id, b FROM t1 WHERE %s LIMIT %d OFFSET %d", randPred(r), r.Intn(10), r.Intn(5)),
		fmt.Sprintf("SELECT id, a, b FROM t1 WHERE %s ORDER BY id DESC LIMIT %d", randPred(r), 1+r.Intn(10)),
		fmt.Sprintf("SELECT t1.id, t2.d FROM t1 JOIN t2 ON t1.id = t2.id WHERE %s ORDER BY t1.id", randPred(r)),
		fmt.Sprintf("SELECT id, (SELECT MAX(d) FROM t2 WHERE t2.t1_id = t1.id) FROM t1 WHERE %s ORDER BY id", randPred(r)),
		fmt.Sprintf("SELECT id FROM t1 WHERE a IN (SELECT d FROM t2 WHERE t2.t1_id = t1.id) OR %s ORDER BY id", randPred(r)),
		// Derived tables: in FROM (materialised during planning) and in a
		// subquery (forces the rebuilt-per-probe path and its carry logic).
		fmt.Sprintf("SELECT x.id FROM (SELECT id, a FROM t1 WHERE %s) x WHERE x.a > %d ORDER BY x.id", randPred(r), r.Intn(4)),
		fmt.Sprintf("SELECT id FROM t1 WHERE EXISTS (SELECT 1 FROM (SELECT t1_id FROM t2 WHERE d > %d) dd WHERE dd.t1_id = t1.id) ORDER BY id", r.Intn(15)),
		"SELECT COUNT(*) FROM t1 a JOIN t1 b ON a.a > b.a",
	}
}

// TestExplainAnalyzeCountsMatchEngineStats is the acceptance property:
// for every statement in the plan corpus, (1) the per-query recorder's
// totals equal the delta they caused in the engine-wide Stats() counters,
// (2) the per-operator scanned counts over all executed trees (main tree,
// materialised build/derived subtrees, every compiled subplan including
// rebuilt-and-discarded ones) sum exactly to the query's RowsScanned, and
// (3) the plan root's row count equals RowsEmitted.
func TestExplainAnalyzeCountsMatchEngineStats(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	indexed, plain := propTables(t, r)
	ctx := context.Background()
	for round := 0; round < 12; round++ {
		for _, sql := range analyzeCorpus(r) {
			for name, db := range map[string]*Database{"indexed": indexed, "plain": plain} {
				before := db.Stats()
				aq, err := db.ExplainAnalyze(ctx, sql)
				if err != nil {
					t.Fatalf("%s ExplainAnalyze(%q): %v", name, sql, err)
				}
				after := db.Stats()
				qs := aq.Stats
				deltas := []struct {
					field string
					stats uint64
					query uint64
				}{
					{"Queries", after.Queries - before.Queries, 1},
					{"RowsScanned", after.RowsScanned - before.RowsScanned, qs.RowsScanned},
					{"RowsEmitted", after.RowsEmitted - before.RowsEmitted, qs.RowsEmitted},
					{"IndexScans", after.IndexScans - before.IndexScans, qs.IndexScans},
					{"FullScans", after.FullScans - before.FullScans, qs.FullScans},
					{"IndexRangeScans", after.IndexRangeScans - before.IndexRangeScans, qs.IndexRangeScans},
					{"OrderedIndexOrders", after.OrderedIndexOrders - before.OrderedIndexOrders, qs.OrderedIndexOrders},
					{"SubplanCacheHits", after.SubplanCacheHits - before.SubplanCacheHits, qs.SubplanCacheHits},
					{"SubplanCacheMisses", after.SubplanCacheMisses - before.SubplanCacheMisses, qs.SubplanCacheMisses},
				}
				for _, d := range deltas {
					if d.stats != d.query {
						t.Fatalf("%s %q: engine %s delta %d != per-query %d",
							name, sql, d.field, d.stats, d.query)
					}
				}
				if got := aq.scannedTotal(); got != qs.RowsScanned {
					t.Fatalf("%s %q: per-operator scanned sum %d != query RowsScanned %d\n%s",
						name, sql, got, qs.RowsScanned, strings.Join(aq.Plan, "\n"))
				}
				if got := aq.rootRows(); got != qs.RowsEmitted {
					t.Fatalf("%s %q: root rows %d != RowsEmitted %d",
						name, sql, got, qs.RowsEmitted)
				}
			}
		}
	}
}

// TestExecSelectCountsEmittedRows: a SELECT routed through Exec streams
// its rows to /dev/null but still emits them — the aggregation invariant
// (engine-wide Stats is the sum of per-query recorders, every counter
// included) must hold for this path too.
func TestExecSelectCountsEmittedRows(t *testing.T) {
	db := bigDB(t, 100)
	before := db.Stats()
	n, err := db.Exec("SELECT id FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("Exec(SELECT) = %d rows, want 100", n)
	}
	after := db.Stats()
	if got := after.RowsEmitted - before.RowsEmitted; got != 100 {
		t.Errorf("RowsEmitted delta = %d, want 100", got)
	}
	if got := after.Queries - before.Queries; got != 1 {
		t.Errorf("Queries delta = %d, want 1", got)
	}
}

// TestRowsStatsPerQuery: each cursor's recorder covers exactly its own
// execution — interleaved cursors never bleed counts into one another,
// and their totals sum to the engine-wide delta once both close.
func TestRowsStatsPerQuery(t *testing.T) {
	db := bigDB(t, 10000)
	ctx := context.Background()
	before := db.Stats()

	full, err := db.QueryRows(ctx, "SELECT id FROM big")
	if err != nil {
		t.Fatal(err)
	}
	limited, err := db.QueryRows(ctx, "SELECT id FROM big LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	// Interleave: drain the limited cursor while the full one is mid-scan.
	for i := 0; i < 100; i++ {
		if !full.Next() {
			t.Fatal("full cursor ended early")
		}
	}
	// With a worker pool (GOMAXPROCS > 1) the scan legitimately runs ahead
	// of the cursor by a bounded number of morsels, so RowsScanned is >=
	// RowsEmitted mid-flight rather than equal. Isolation is pinned by the
	// limited cursor's exact 7/7 and the engine-delta sum below.
	mid := full.Stats()
	if mid.RowsScanned < 100 || mid.RowsEmitted != 100 {
		t.Errorf("mid-flight stats = %+v, want emitted 100 and scanned >= 100", mid)
	}
	for limited.Next() {
	}
	if err := limited.Err(); err != nil {
		t.Fatal(err)
	}
	ls := limited.Stats()
	if ls.RowsScanned != 7 || ls.RowsEmitted != 7 {
		t.Errorf("limited cursor stats = %+v, want exactly its own 7/7", ls)
	}
	for full.Next() {
	}
	if err := full.Err(); err != nil {
		t.Fatal(err)
	}
	fs := full.Stats()
	if fs.RowsScanned != 10000 || fs.RowsEmitted != 10000 {
		t.Errorf("full cursor stats = %+v, want 10000/10000", fs)
	}
	full.Close()
	limited.Close()

	after := db.Stats()
	if got := after.RowsScanned - before.RowsScanned; got != fs.RowsScanned+ls.RowsScanned {
		t.Errorf("engine RowsScanned delta %d != sum of per-query recorders %d",
			got, fs.RowsScanned+ls.RowsScanned)
	}
	if got := after.RowsEmitted - before.RowsEmitted; got != fs.RowsEmitted+ls.RowsEmitted {
		t.Errorf("engine RowsEmitted delta %d != sum of per-query recorders %d",
			got, fs.RowsEmitted+ls.RowsEmitted)
	}
	if got := after.Queries - before.Queries; got != 2 {
		t.Errorf("Queries delta = %d, want 2", got)
	}
}
