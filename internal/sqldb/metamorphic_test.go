package sqldb

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// SQLancer-style metamorphic properties over a generated query corpus,
// interleaved with random DML so the incremental index maintenance
// (in-place ordered-view splices, tombstone skipping, compaction) is
// exercised at every step. Unlike the plan-equivalence tests, these need
// no second engine or reference executor: each property rewrites a query
// into a form the optimizer cannot serve the same way and demands the
// same answer.
//
//   - NoREC (Non-optimizing Reference Engine Construction): the number of
//     rows satisfying WHERE P must equal the number of TRUE values of
//     SELECT (P) over the unfiltered table. The filtered form goes
//     through access-path selection (equality/range index, tombstone
//     skipping); the projected form evaluates P row by row over a heap
//     scan. Any divergence is an optimizer bug — this property found the
//     `col = NULL` equality-index bug pinned in ordidx_test.go.
//   - TLP (Ternary Logic Partitioning): every row satisfies exactly one
//     of P, NOT P, P IS NULL, so the three partitions' multiset union
//     must equal the unfiltered result.
//
// Both run over an indexed and a plain database executing the same DML,
// so the properties hold on every access path the planner can choose.

// metamorphicDBs builds the mutable corpus table with and without
// indexes. Options (e.g. WithMaxWorkers) apply to both databases.
func metamorphicDBs(opts ...Option) (indexed, plain *Database) {
	indexed = NewDatabase(opts...)
	plain = NewDatabase(opts...)
	indexed.MustExec("CREATE TABLE m (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER, c TEXT)")
	indexed.MustExec("CREATE INDEX idx_m_a ON m (a)")
	plain.MustExec("CREATE TABLE m (id INTEGER, a INTEGER, b INTEGER, c TEXT)")
	return indexed, plain
}

// metamorphicPred generates a random predicate over m's columns: NULL-prone
// comparisons, equality and range shapes over the indexed column (so the
// filtered form takes index access paths), IS NULL, LIKE, IN, and
// NULL-comparand equalities, composed with AND/OR/NOT.
func metamorphicPred(r *rand.Rand) string {
	atoms := []string{
		fmt.Sprintf("a = %d", r.Intn(30)),
		fmt.Sprintf("a > %d", r.Intn(30)),
		fmt.Sprintf("a BETWEEN %d AND %d", r.Intn(15), 15+r.Intn(15)),
		fmt.Sprintf("a <= %d AND a >= %d", 20+r.Intn(10), r.Intn(10)),
		"a = NULL", // never true; the index path must agree
		"a IS NULL",
		"a IS NOT NULL",
		fmt.Sprintf("b > %d", r.Intn(50)),
		fmt.Sprintf("b * 2 < %d", r.Intn(60)),
		"b IS NULL",
		fmt.Sprintf("c LIKE '%%%c%%'", 'a'+rune(r.Intn(5))),
		fmt.Sprintf("c IN ('ant', 'bee', '%c')", 'a'+rune(r.Intn(5))),
		fmt.Sprintf("id %% %d = %d", 2+r.Intn(5), r.Intn(3)),
	}
	p := atoms[r.Intn(len(atoms))]
	for r.Intn(3) == 0 {
		op := "AND"
		if r.Intn(2) == 0 {
			op = "OR"
		}
		next := atoms[r.Intn(len(atoms))]
		if r.Intn(4) == 0 {
			next = "NOT (" + next + ")"
		}
		p = fmt.Sprintf("(%s %s %s)", p, op, next)
	}
	return p
}

// checkNoREC asserts the NoREC property for predicate p on db.
func checkNoREC(db *Database, pred string) error {
	filtered, err := db.Query("SELECT COUNT(*) FROM m WHERE " + pred)
	if err != nil {
		return fmt.Errorf("NoREC filtered query (%s): %v", pred, err)
	}
	optimized := filtered.Rows[0][0].AsInt()
	projected, err := db.Query("SELECT (" + pred + ") FROM m")
	if err != nil {
		return fmt.Errorf("NoREC projected query (%s): %v", pred, err)
	}
	var unoptimized int64
	for _, row := range projected.Rows {
		if !row[0].IsNull() && row[0].AsBool() {
			unoptimized++
		}
	}
	if optimized != unoptimized {
		return fmt.Errorf("NoREC violated for %q: WHERE count %d != per-row count %d",
			pred, optimized, unoptimized)
	}
	return nil
}

// rowMultiset renders a result as a sorted multiset of row strings.
func rowMultiset(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		s := ""
		for j, v := range r {
			if j > 0 {
				s += "|"
			}
			if v.IsNull() {
				s += "NULL"
			} else {
				s += v.AsText()
			}
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

// checkTLP asserts the ternary-logic-partitioning property for p on db.
func checkTLP(db *Database, pred string) error {
	full, err := db.Query("SELECT id, a, b, c FROM m")
	if err != nil {
		return fmt.Errorf("TLP full query: %v", err)
	}
	var parts []string
	for _, where := range []string{
		"(" + pred + ")",
		"NOT (" + pred + ")",
		"(" + pred + ") IS NULL",
	} {
		res, err := db.Query("SELECT id, a, b, c FROM m WHERE " + where)
		if err != nil {
			return fmt.Errorf("TLP partition %q: %v", where, err)
		}
		parts = append(parts, rowMultiset(res)...)
	}
	sort.Strings(parts)
	want := rowMultiset(full)
	if len(parts) != len(want) {
		return fmt.Errorf("TLP violated for %q: partitions sum to %d rows, table has %d",
			pred, len(parts), len(want))
	}
	for i := range want {
		if parts[i] != want[i] {
			return fmt.Errorf("TLP violated for %q: partition union diverges at %q vs %q",
				pred, parts[i], want[i])
		}
	}
	return nil
}

// metamorphicProperty runs the interleaved DML + NoREC/TLP loop and
// reports the first violation. Exported to the fault-injection tests
// below via its error return.
func metamorphicProperty(r *rand.Rand, steps int, opts ...Option) error {
	indexed, plain := metamorphicDBs(opts...)
	words := []string{"ant", "bee", "cat", "dge", "eel"}
	nextID := 0
	for i := 0; i < 60; i++ { // seed rows so early predicates see data
		var a any = r.Intn(30)
		if r.Intn(7) == 0 {
			a = nil
		}
		for _, db := range []*Database{indexed, plain} {
			db.MustExec("INSERT INTO m VALUES (?, ?, ?, ?)", nextID, a, r.Intn(50), words[r.Intn(len(words))])
		}
		nextID++
	}
	for step := 0; step < steps; step++ {
		// One random mutation, applied identically to both databases, so
		// every property check below runs against freshly maintained
		// indexes (spliced inserts, moved updates, tombstoned deletes).
		var dml string
		var params []any
		switch r.Intn(5) {
		case 0, 1:
			var a any = r.Intn(30)
			if r.Intn(7) == 0 {
				a = nil
			}
			dml, params = "INSERT INTO m VALUES (?, ?, ?, ?)",
				[]any{nextID, a, r.Intn(50), words[r.Intn(len(words))]}
			nextID++
		case 2:
			dml = fmt.Sprintf("UPDATE m SET a = %d WHERE id %% 7 = %d", r.Intn(30), r.Intn(7))
		case 3:
			dml, params = "DELETE FROM m WHERE id = ?", []any{r.Intn(nextID + 1)}
		default:
			dml = fmt.Sprintf("DELETE FROM m WHERE a BETWEEN %d AND %d", r.Intn(28), r.Intn(4))
		}
		ni, erri := indexed.Exec(dml, params...)
		np, errp := plain.Exec(dml, params...)
		if (erri == nil) != (errp == nil) || ni != np {
			return fmt.Errorf("step %d: DML diverged on %q: indexed (%d, %v) vs plain (%d, %v)",
				step, dml, ni, erri, np, errp)
		}
		pred := metamorphicPred(r)
		for _, db := range []*Database{indexed, plain} {
			if err := checkNoREC(db, pred); err != nil {
				return fmt.Errorf("step %d: %v", step, err)
			}
			if err := checkTLP(db, pred); err != nil {
				return fmt.Errorf("step %d: %v", step, err)
			}
		}
	}
	return nil
}

// metamorphicTxnProperty runs the NoREC/TLP checks inside explicit
// transactions. Each step picks a commit or rollback leg, applies one
// mutation under BEGIN on both databases, and asserts the properties
// MID-TRANSACTION — reads inside the transaction must see its own
// uncommitted writes coherently on every access path. The rollback leg
// additionally pins bit-identical abort: the table's full multiset after
// ROLLBACK equals the one captured before BEGIN.
func metamorphicTxnProperty(r *rand.Rand, steps int, opts ...Option) error {
	indexed, plain := metamorphicDBs(opts...)
	words := []string{"ant", "bee", "cat", "dge", "eel"}
	nextID := 0
	for i := 0; i < 60; i++ {
		var a any = r.Intn(30)
		if r.Intn(7) == 0 {
			a = nil
		}
		for _, db := range []*Database{indexed, plain} {
			db.MustExec("INSERT INTO m VALUES (?, ?, ?, ?)", nextID, a, r.Intn(50), words[r.Intn(len(words))])
		}
		nextID++
	}
	fullSet := func(db *Database) ([]string, error) {
		res, err := db.Query("SELECT id, a, b, c FROM m")
		if err != nil {
			return nil, err
		}
		return rowMultiset(res), nil
	}
	for step := 0; step < steps; step++ {
		rollback := r.Intn(2) == 0
		wasInsert := false
		var dml string
		var params []any
		switch r.Intn(4) {
		case 0, 1:
			var a any = r.Intn(30)
			if r.Intn(7) == 0 {
				a = nil
			}
			dml, params = "INSERT INTO m VALUES (?, ?, ?, ?)",
				[]any{nextID, a, r.Intn(50), words[r.Intn(len(words))]}
			nextID++
			wasInsert = true
		case 2:
			dml = fmt.Sprintf("UPDATE m SET a = %d WHERE id %% 5 = %d", r.Intn(30), r.Intn(5))
		default:
			dml = fmt.Sprintf("DELETE FROM m WHERE a BETWEEN %d AND %d", r.Intn(28), r.Intn(6))
		}
		pred := metamorphicPred(r)
		for _, db := range []*Database{indexed, plain} {
			before, err := fullSet(db)
			if err != nil {
				return fmt.Errorf("step %d: pre-BEGIN read: %v", step, err)
			}
			if _, err := db.Exec("BEGIN"); err != nil {
				return fmt.Errorf("step %d: BEGIN: %v", step, err)
			}
			if _, err := db.Exec(dml, params...); err != nil {
				return fmt.Errorf("step %d: DML %q in txn: %v", step, dml, err)
			}
			// The properties must hold mid-transaction: these reads join
			// the session transaction and see its uncommitted writes.
			if err := checkNoREC(db, pred); err != nil {
				return fmt.Errorf("step %d (in txn): %v", step, err)
			}
			if err := checkTLP(db, pred); err != nil {
				return fmt.Errorf("step %d (in txn): %v", step, err)
			}
			if rollback {
				if _, err := db.Exec("ROLLBACK"); err != nil {
					return fmt.Errorf("step %d: ROLLBACK: %v", step, err)
				}
				after, err := fullSet(db)
				if err != nil {
					return fmt.Errorf("step %d: post-ROLLBACK read: %v", step, err)
				}
				if len(after) != len(before) {
					return fmt.Errorf("step %d: ROLLBACK left %d rows, had %d before BEGIN",
						step, len(after), len(before))
				}
				for i := range before {
					if after[i] != before[i] {
						return fmt.Errorf("step %d: ROLLBACK not bit-identical: %q vs %q",
							step, after[i], before[i])
					}
				}
			} else {
				if _, err := db.Exec("COMMIT"); err != nil {
					return fmt.Errorf("step %d: COMMIT: %v", step, err)
				}
			}
			// The properties must also hold after the transaction ends.
			if err := checkNoREC(db, pred); err != nil {
				return fmt.Errorf("step %d (post txn): %v", step, err)
			}
		}
		if rollback && wasInsert {
			nextID-- // an insert that was rolled back may reuse its id
		}
	}
	return nil
}

// TestMetamorphicNoRECAndTLPInTransactions runs the metamorphic suite
// through explicit-transaction commit and rollback legs.
func TestMetamorphicNoRECAndTLPInTransactions(t *testing.T) {
	if err := metamorphicTxnProperty(rand.New(rand.NewSource(53)), 120); err != nil {
		t.Fatal(err)
	}
}

func TestMetamorphicNoRECAndTLP(t *testing.T) {
	if err := metamorphicProperty(rand.New(rand.NewSource(47)), 400); err != nil {
		t.Fatal(err)
	}
}

// TestMetamorphicNoRECAndTLPParallel re-runs the NoREC/TLP suite with a
// forced worker pool and the parallel threshold lowered below the corpus
// size, so the filtered/projected/partitioned queries take the morsel-
// parallel scan and parallel aggregation paths (COUNT(*) goes through
// runAggregationParallel) while the same DML churns the table.
func TestMetamorphicNoRECAndTLPParallel(t *testing.T) {
	lowerParallelMinRows(t, 8)
	if err := metamorphicProperty(rand.New(rand.NewSource(47)), 400, WithMaxWorkers(4)); err != nil {
		t.Fatal(err)
	}
}

// TestMetamorphicCatchesBrokenTombstoneSkip: with tombstone skipping
// disabled, index-served access paths (eagerly maintained, so free of
// deleted ids) disagree with heap scans (which now emit deleted rows) —
// NoREC or TLP must notice.
func TestMetamorphicCatchesBrokenTombstoneSkip(t *testing.T) {
	debugDisableTombstoneSkip = true
	defer func() { debugDisableTombstoneSkip = false }()
	if err := metamorphicProperty(rand.New(rand.NewSource(47)), 400); err == nil {
		t.Fatal("metamorphic suite did not detect disabled tombstone skipping")
	}
}
