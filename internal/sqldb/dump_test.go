package sqldb

import (
	"reflect"
	"strings"
	"testing"
)

func TestDumpLoadRoundTrip(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE INDEX idx_genre ON movies (genre)")

	var buf strings.Builder
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	script := buf.String()
	for _, frag := range []string{
		"CREATE TABLE movies",
		"INSERT INTO movies VALUES (1, 'Titanic', 'Romance', 2257.8, 1997);",
		"CREATE INDEX idx_genre ON movies (genre);",
	} {
		if !strings.Contains(script, frag) {
			t.Errorf("dump missing %q:\n%s", frag, script)
		}
	}

	restored := NewDatabase()
	if err := restored.LoadScript(script); err != nil {
		t.Fatalf("LoadScript: %v\nscript:\n%s", err, script)
	}
	for _, q := range []string{
		"SELECT COUNT(*) FROM movies",
		"SELECT title FROM movies WHERE genre = 'Romance' ORDER BY revenue DESC",
		"SELECT m.title, COUNT(r.id) FROM movies m LEFT JOIN reviews r ON m.id = r.movie_id GROUP BY m.title ORDER BY 2 DESC, m.title",
	} {
		a := queryStrings(t, db, q)
		b := queryStrings(t, restored, q)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("query %q differs after reload:\n%v\nvs\n%v", q, a, b)
		}
	}
}

func TestDumpNullAndQuoting(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (a TEXT, b REAL)")
	db.MustExec("INSERT INTO t VALUES ('it''s \"quoted\"', NULL)")
	var buf strings.Builder
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewDatabase()
	if err := restored.LoadScript(buf.String()); err != nil {
		t.Fatalf("reload: %v\n%s", err, buf.String())
	}
	res, err := restored.Query("SELECT a, b FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsText() != `it's "quoted"` || !res.Rows[0][1].IsNull() {
		t.Errorf("round trip lost values: %v", res.Rows[0])
	}
}

func TestDumpBenchmarkDomainRoundTrips(t *testing.T) {
	// The full codebase_community domain survives a dump/reload cycle.
	db := NewDatabase()
	db.MustExec("CREATE TABLE posts (Id INTEGER PRIMARY KEY, Title TEXT, ViewCount INTEGER)")
	for i := 1; i <= 50; i++ {
		db.MustExec("INSERT INTO posts VALUES (?, ?, ?)", i, strings.Repeat("t", i%7+1), i*13%101)
	}
	var buf strings.Builder
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewDatabase()
	if err := restored.LoadScript(buf.String()); err != nil {
		t.Fatal(err)
	}
	a := queryStrings(t, db, "SELECT * FROM posts ORDER BY Id")
	b := queryStrings(t, restored, "SELECT * FROM posts ORDER BY Id")
	if !reflect.DeepEqual(a, b) {
		t.Error("domain did not round trip")
	}
}
