package sqldb

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// Tests for MVCC snapshot isolation: explicit transactions (SQL and API),
// rollback bit-identity, snapshot lifecycle on every cursor/error path
// (the vacuum-horizon leak tests), the background/explicit vacuum, and
// the concurrent reader/writer isolation property.

// dumpString renders the whole database as its SQL script — the
// bit-identity witness for rollback tests.
func dumpString(t *testing.T, db *Database) string {
	t.Helper()
	var b strings.Builder
	if err := db.Dump(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestBeginRollbackLeavesQueriesBitIdentical is the PR's acceptance
// criterion: BEGIN → DML → ROLLBACK must leave every subsequent query —
// and the full dump — exactly as before the transaction.
func TestBeginRollbackLeavesQueriesBitIdentical(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, s TEXT)")
	db.MustExec("CREATE INDEX idx_t_k ON t (k)")
	for i := 0; i < 50; i++ {
		db.MustExec("INSERT INTO t VALUES (?, ?, ?)", i, i%7, fmt.Sprintf("s%d", i))
	}
	probes := []string{
		"SELECT id, k, s FROM t ORDER BY id",
		"SELECT id FROM t WHERE k = 3 ORDER BY id",
		"SELECT id FROM t WHERE k BETWEEN 2 AND 5 ORDER BY k, id",
		"SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k",
		"SELECT id FROM t ORDER BY k LIMIT 5",
	}
	before := make([][][]string, len(probes))
	for i, q := range probes {
		before[i] = queryStrings(t, db, q)
	}
	dumpBefore := dumpString(t, db)

	db.MustExec("BEGIN")
	db.MustExec("INSERT INTO t VALUES (101, 1, 'new')")
	db.MustExec("UPDATE t SET k = k + 10 WHERE id < 20")
	db.MustExec("DELETE FROM t WHERE id % 5 = 0")
	// Inside the transaction the writes are visible to its own reads.
	in := queryStrings(t, db, "SELECT COUNT(*) FROM t WHERE id = 101")
	if !reflect.DeepEqual(in, [][]string{{"1"}}) {
		t.Fatalf("own insert invisible inside transaction: %v", in)
	}
	db.MustExec("ROLLBACK")

	for i, q := range probes {
		if got := queryStrings(t, db, q); !reflect.DeepEqual(got, before[i]) {
			t.Errorf("after rollback, %q = %v, want %v", q, got, before[i])
		}
	}
	if got := dumpString(t, db); got != dumpBefore {
		t.Errorf("dump after rollback differs from before:\n--- before ---\n%s--- after ---\n%s", dumpBefore, got)
	}
	// A vacuum pass after rollback must not change anything either
	// (rolled-back versions were already unlinked).
	db.Vacuum()
	for i, q := range probes {
		if got := queryStrings(t, db, q); !reflect.DeepEqual(got, before[i]) {
			t.Errorf("after rollback+vacuum, %q = %v, want %v", q, got, before[i])
		}
	}
}

// TestTxnAPIVisibilityAndIsolation: the Txn handle's writes are visible
// to its own reads, invisible to concurrent snapshots until Commit, and
// visible to snapshots captured after.
func TestTxnAPIVisibilityAndIsolation(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER)")
	db.MustExec("INSERT INTO t VALUES (1, 10)")

	// A cursor opened before the transaction pins the pre-txn state.
	pre, err := db.QueryRows(context.Background(), "SELECT id FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	defer pre.Close()

	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO t VALUES (2, 20)"); err != nil {
		t.Fatal(err)
	}
	res, err := tx.Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 2 {
		t.Errorf("txn sees %d rows of its own state, want 2", got)
	}

	n := 0
	for pre.Next() {
		n++
	}
	if n != 1 || pre.Err() != nil {
		t.Errorf("pre-txn cursor saw %d rows (err %v), want its snapshot's 1", n, pre.Err())
	}

	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	post := queryStrings(t, db, "SELECT id FROM t ORDER BY id")
	if !reflect.DeepEqual(post, [][]string{{"1"}, {"2"}}) {
		t.Errorf("post-commit rows = %v, want [[1] [2]]", post)
	}
}

// TestTxnCursorOutlivesCommit: a cursor opened inside a transaction holds
// its own snapshot reference and stays consistent after the transaction
// commits.
func TestTxnCursorOutlivesCommit(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY)")
	for i := 0; i < 20; i++ {
		db.MustExec("INSERT INTO t VALUES (?)", i)
	}
	tx := db.Begin()
	if _, err := tx.Exec("DELETE FROM t WHERE id >= 10"); err != nil {
		t.Fatal(err)
	}
	rows, err := tx.QueryRows(context.Background(), "SELECT id FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// More DML after commit; the cursor must still see exactly the
	// transaction's view (10 survivors).
	db.MustExec("DELETE FROM t WHERE id < 5")
	n := 0
	for rows.Next() {
		n++
	}
	if n != 10 || rows.Err() != nil {
		t.Errorf("txn cursor saw %d rows (err %v), want 10", n, rows.Err())
	}
}

// TestTxnMisuseErrors pins the ErrMisuse surface of the transaction API.
func TestTxnMisuseErrors(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (id INTEGER)")

	if _, err := db.Exec("COMMIT"); CodeOf(err) != ErrMisuse {
		t.Errorf("COMMIT without txn: %v, want ErrMisuse", err)
	}
	if _, err := db.Exec("ROLLBACK"); CodeOf(err) != ErrMisuse {
		t.Errorf("ROLLBACK without txn: %v, want ErrMisuse", err)
	}
	db.MustExec("BEGIN")
	if _, err := db.Exec("BEGIN"); CodeOf(err) != ErrMisuse {
		t.Errorf("nested BEGIN: %v, want ErrMisuse", err)
	}
	db.MustExec("COMMIT")

	tx := db.Begin()
	if _, err := tx.Exec("BEGIN"); CodeOf(err) != ErrMisuse {
		t.Errorf("BEGIN inside Txn: %v, want ErrMisuse", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); CodeOf(err) != ErrMisuse {
		t.Errorf("double Commit: %v, want ErrMisuse", err)
	}
	if err := tx.Rollback(); CodeOf(err) != ErrMisuse {
		t.Errorf("Rollback after Commit: %v, want ErrMisuse", err)
	}
	if _, err := tx.Query("SELECT * FROM t"); CodeOf(err) != ErrMisuse {
		t.Errorf("Query on finished Txn: %v, want ErrMisuse", err)
	}
}

// TestTxnStatsCounters: Begins/Commits/Rollbacks/ActiveTxns move with the
// transaction lifecycle, through both the SQL and API surfaces.
func TestTxnStatsCounters(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (id INTEGER)")
	base := db.Stats()

	tx := db.Begin()
	s := db.Stats()
	if s.Begins != base.Begins+1 || s.ActiveTxns != base.ActiveTxns+1 {
		t.Errorf("after Begin: Begins=%d ActiveTxns=%d, want +1/+1 over %d/%d",
			s.Begins, s.ActiveTxns, base.Begins, base.ActiveTxns)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	db.MustExec("BEGIN")
	db.MustExec("INSERT INTO t VALUES (1)")
	db.MustExec("ROLLBACK")
	s = db.Stats()
	if s.Begins != base.Begins+2 || s.Commits != base.Commits+1 ||
		s.Rollbacks != base.Rollbacks+1 || s.ActiveTxns != base.ActiveTxns {
		t.Errorf("counters = begins %d commits %d rollbacks %d active %d, want %d/%d/%d/%d",
			s.Begins, s.Commits, s.Rollbacks, s.ActiveTxns,
			base.Begins+2, base.Commits+1, base.Rollbacks+1, base.ActiveTxns)
	}
}

// ---------------------------------------------------------------------------
// Snapshot lifecycle: every path that captures a registered snapshot must
// release it, or the vacuum horizon never advances. These mirror the PR-6
// parallelWorkersActive leak tests, with tm.liveSnapshots as the witness.

// TestSnapshotReleasedOnEveryCursorPath: normal drain, early Close,
// mid-iteration error, ExplainAnalyze, Explain, Dump, and a failed
// ExecContext all return the live-snapshot count to its baseline.
func TestSnapshotReleasedOnEveryCursorPath(t *testing.T) {
	db := bigDB(t, 2000)
	base := db.tm.liveSnapshots()
	ctx := context.Background()

	// Drain to exhaustion.
	rows, err := db.QueryRows(ctx, "SELECT id FROM big WHERE grp = 3")
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if got := db.tm.liveSnapshots(); got != base {
		t.Errorf("after drain: liveSnapshots = %d, want %d", got, base)
	}

	// Abandon mid-iteration via Close.
	rows, err = db.QueryRows(ctx, "SELECT id FROM big")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	rows.Close()
	if got := db.tm.liveSnapshots(); got != base {
		t.Errorf("after early Close: liveSnapshots = %d, want %d", got, base)
	}

	// Cancellation mid-iteration: the cursor errors out partway and must
	// still release its snapshot.
	cctx, cancel := context.WithCancel(ctx)
	rows, err = db.QueryRows(cctx, "SELECT id FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("expected a first row before cancel")
	}
	cancel()
	for rows.Next() {
	}
	if CodeOf(rows.Err()) != ErrCanceled {
		t.Fatalf("after cancel: rows.Err() = %v, want ErrCanceled", rows.Err())
	}
	if got := db.tm.liveSnapshots(); got != base {
		t.Errorf("after canceled cursor: liveSnapshots = %d, want %d", got, base)
	}

	// DML statement error mid-loop (unique violation partway through).
	if _, err := db.ExecContext(ctx, "UPDATE big SET id = 1"); err == nil {
		t.Fatal("expected UPDATE constraint error")
	}
	if got := db.tm.liveSnapshots(); got != base {
		t.Errorf("after exec error: liveSnapshots = %d, want %d", got, base)
	}

	// ExplainAnalyze and Explain.
	if _, err := db.ExplainAnalyze(ctx, "SELECT grp, COUNT(*) FROM big GROUP BY grp"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Explain("SELECT id FROM big WHERE grp = 1"); err != nil {
		t.Fatal(err)
	}
	if got := db.tm.liveSnapshots(); got != base {
		t.Errorf("after explain paths: liveSnapshots = %d, want %d", got, base)
	}

	// Dump.
	var b strings.Builder
	if err := db.Dump(&b); err != nil {
		t.Fatal(err)
	}
	if got := db.tm.liveSnapshots(); got != base {
		t.Errorf("after Dump: liveSnapshots = %d, want %d", got, base)
	}
}

// TestOpenCursorPinsVacuumHorizon: versions visible to an open cursor's
// snapshot survive a vacuum pass; once the cursor closes, the next pass
// reclaims them.
func TestOpenCursorPinsVacuumHorizon(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY)")
	for i := 0; i < 100; i++ {
		db.MustExec("INSERT INTO t VALUES (?)", i)
	}
	rows, err := db.QueryRows(context.Background(), "SELECT id FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("expected a first row")
	}
	db.MustExec("DELETE FROM t WHERE id >= 50")
	if got := db.Vacuum(); got != 0 {
		t.Errorf("vacuum under an open cursor reclaimed %d versions, want 0 (horizon pinned)", got)
	}
	n := 1
	for rows.Next() {
		n++
	}
	if n != 100 || rows.Err() != nil {
		t.Fatalf("pinned cursor saw %d rows (err %v), want all 100", n, rows.Err())
	}
	if got := db.Vacuum(); got != 50 {
		t.Errorf("vacuum after Close reclaimed %d versions, want 50", got)
	}
}

// ---------------------------------------------------------------------------
// Concurrent readers and writers

// TestConcurrentReadersWritersEachSeeTheirSnapshot is the reader/writer
// isolation property: N readers iterate long cursors while M writers
// commit interleaved DML. Writers keep the total row count invariant
// (every transaction inserts one row and deletes one row), so every
// reader — whichever snapshot it captured — must see exactly the same
// count, and no torn (partially applied) transaction. Run under -race in
// both GOMAXPROCS matrix legs.
func TestConcurrentReadersWritersEachSeeTheirSnapshot(t *testing.T) {
	const nRows = 500
	const readers = 4
	const writers = 3
	const writerTxns = 40

	db := NewDatabase()
	db.MustExec("CREATE TABLE t (id INTEGER PRIMARY KEY, gen INTEGER)")
	rows := make([][]any, nRows)
	for i := range rows {
		rows[i] = []any{i, 0}
	}
	if err := db.InsertRows("t", rows); err != nil {
		t.Fatal(err)
	}

	var writerWG, readerWG sync.WaitGroup
	errc := make(chan error, readers+writers)
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			r := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < writerTxns; i++ {
				tx := db.Begin()
				// One insert + one point delete from the writer's private
				// stripe of seed rows per transaction: the live count is
				// nRows in every committed state.
				newID := 1_000_000 + w*writerTxns + i
				oldID := w*writerTxns + i
				if _, err := tx.Exec("INSERT INTO t VALUES (?, ?)", newID, i); err != nil {
					tx.Rollback()
					errc <- fmt.Errorf("writer %d insert: %v", w, err)
					return
				}
				if _, err := tx.Exec("DELETE FROM t WHERE id = ?", oldID); err != nil {
					tx.Rollback()
					errc <- fmt.Errorf("writer %d delete: %v", w, err)
					return
				}
				// A random fraction aborts instead — also count-neutral.
				if r.Intn(5) == 0 {
					if err := tx.Rollback(); err != nil {
						errc <- fmt.Errorf("writer %d rollback: %v", w, err)
						return
					}
				} else if err := tx.Commit(); err != nil {
					errc <- fmt.Errorf("writer %d commit: %v", w, err)
					return
				}
			}
		}(w)
	}

	for rd := 0; rd < readers; rd++ {
		readerWG.Add(1)
		go func(rd int) {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := db.QueryRows(context.Background(), "SELECT id, gen FROM t")
				if err != nil {
					errc <- fmt.Errorf("reader %d open: %v", rd, err)
					return
				}
				n := 0
				for rows.Next() {
					n++
				}
				if err := rows.Err(); err != nil {
					errc <- fmt.Errorf("reader %d iterate: %v", rd, err)
					return
				}
				if n != nRows {
					errc <- fmt.Errorf("reader %d saw %d rows, want %d (torn snapshot)", rd, n, nRows)
					return
				}
			}
		}(rd)
	}

	writerDone := make(chan struct{})
	go func() {
		writerWG.Wait()
		close(writerDone)
	}()
	stopOnce := sync.OnceFunc(func() { close(stop) })
	defer readerWG.Wait()
	defer stopOnce()
	select {
	case err := <-errc:
		t.Fatal(err)
	case <-writerDone:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent reader/writer property timed out")
	}
	stopOnce()
	readerWG.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if got := queryStrings(t, db, "SELECT COUNT(*) FROM t"); !reflect.DeepEqual(got, [][]string{{fmt.Sprint(nRows)}}) {
		t.Fatalf("final count = %v, want %d", got, nRows)
	}
	if got := db.Stats().ActiveTxns; got != 0 {
		t.Fatalf("ActiveTxns = %d after all writers finished, want 0", got)
	}
}
