package sqldb

import (
	"strings"
	"testing"
)

func explainJoined(t *testing.T, lines []string) string {
	t.Helper()
	return strings.Join(lines, "\n")
}

func TestExplainSeqScan(t *testing.T) {
	db := testDB(t)
	lines, err := db.Explain("SELECT title FROM movies WHERE genre = 'Romance'")
	if err != nil {
		t.Fatal(err)
	}
	out := explainJoined(t, lines)
	if !strings.Contains(out, "seq scan movies") {
		t.Errorf("expected seq scan:\n%s", out)
	}
	if !strings.Contains(out, "filter") {
		t.Errorf("expected filter stage:\n%s", out)
	}
}

func TestExplainIndexScan(t *testing.T) {
	db := testDB(t)
	lines, err := db.Explain("SELECT title FROM movies WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	out := explainJoined(t, lines)
	if !strings.Contains(out, "index scan movies") {
		t.Errorf("primary-key equality should use the index:\n%s", out)
	}
	if strings.Contains(out, "filter") {
		t.Errorf("index-served predicate should be removed from the filter:\n%s", out)
	}
}

func TestExplainHashJoin(t *testing.T) {
	db := testDB(t)
	lines, err := db.Explain("SELECT m.title FROM movies m JOIN reviews r ON m.id = r.movie_id")
	if err != nil {
		t.Fatal(err)
	}
	out := explainJoined(t, lines)
	if !strings.Contains(out, "hash join") {
		t.Errorf("equi-join should hash:\n%s", out)
	}
}

func TestExplainNestedLoopAndCross(t *testing.T) {
	db := testDB(t)
	lines, err := db.Explain("SELECT COUNT(*) FROM movies a JOIN movies b ON a.revenue > b.revenue")
	if err != nil {
		t.Fatal(err)
	}
	out := explainJoined(t, lines)
	if !strings.Contains(out, "nested loop join") {
		t.Errorf("non-equi join should nest:\n%s", out)
	}
	if !strings.Contains(out, "aggregate") {
		t.Errorf("COUNT should aggregate:\n%s", out)
	}
	lines, err = db.Explain("SELECT * FROM movies, reviews")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explainJoined(t, lines), "cross join") {
		t.Errorf("comma join should be cross:\n%s", explainJoined(t, lines))
	}
}

func TestExplainStages(t *testing.T) {
	db := testDB(t)
	lines, err := db.Explain(`SELECT DISTINCT genre FROM movies
		GROUP BY genre ORDER BY genre LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	out := explainJoined(t, lines)
	for _, stage := range []string{"limit/offset", "sort by", "distinct", "hash aggregate"} {
		if !strings.Contains(out, stage) {
			t.Errorf("missing stage %q:\n%s", stage, out)
		}
	}
	// Stage order: limit outermost, then sort, distinct, aggregate.
	li := strings.Index(out, "limit/offset")
	si := strings.Index(out, "sort by")
	ai := strings.Index(out, "hash aggregate")
	if !(li < si && si < ai) {
		t.Errorf("stage order wrong:\n%s", out)
	}
}

func TestExplainErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Explain("INSERT INTO movies VALUES (99, 'x', 'y', 1, 2000)"); err == nil {
		t.Error("EXPLAIN of non-SELECT must fail")
	}
	if _, err := db.Explain("SELECT nope FROM nowhere"); err == nil {
		t.Error("EXPLAIN of invalid query must fail")
	}
}
