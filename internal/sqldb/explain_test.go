package sqldb

import (
	"strings"
	"testing"
)

func explainJoined(t *testing.T, lines []string) string {
	t.Helper()
	return strings.Join(lines, "\n")
}

func TestExplainSeqScan(t *testing.T) {
	db := testDB(t)
	lines, err := db.Explain("SELECT title FROM movies WHERE genre = 'Romance'")
	if err != nil {
		t.Fatal(err)
	}
	out := explainJoined(t, lines)
	if !strings.Contains(out, "seq scan movies") {
		t.Errorf("expected seq scan:\n%s", out)
	}
	if !strings.Contains(out, "filter") {
		t.Errorf("expected filter stage:\n%s", out)
	}
}

func TestExplainIndexScan(t *testing.T) {
	db := testDB(t)
	lines, err := db.Explain("SELECT title FROM movies WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	out := explainJoined(t, lines)
	if !strings.Contains(out, "index scan movies") {
		t.Errorf("primary-key equality should use the index:\n%s", out)
	}
	if strings.Contains(out, "filter") {
		t.Errorf("index-served predicate should be removed from the filter:\n%s", out)
	}
}

func TestExplainHashJoin(t *testing.T) {
	db := testDB(t)
	// reviews.movie_id has no index and there is no ORDER BY (so the
	// planner cannot flip sides onto movies' primary key): plain hash join
	// building the right input.
	lines, err := db.Explain("SELECT m.title FROM movies m JOIN reviews r ON m.id = r.movie_id")
	if err != nil {
		t.Fatal(err)
	}
	out := explainJoined(t, lines)
	if !strings.Contains(out, "hash join") {
		t.Errorf("equi-join should hash:\n%s", out)
	}
	if !strings.Contains(out, "build right") {
		t.Errorf("default hash join should report building the right side:\n%s", out)
	}
}

func TestExplainHashJoinBuildSide(t *testing.T) {
	// With an ORDER BY imposing the final order, the planner builds the
	// smaller input. small (3 rows) JOIN big (60 rows) on un-indexed keys
	// should build the left side.
	db := NewDatabase()
	db.MustExec("CREATE TABLE small (k INTEGER)")
	db.MustExec("CREATE TABLE big (k INTEGER, v INTEGER)")
	for i := 0; i < 3; i++ {
		db.MustExec("INSERT INTO small VALUES (?)", i)
	}
	for i := 0; i < 60; i++ {
		db.MustExec("INSERT INTO big VALUES (?, ?)", i%3, i)
	}
	lines, err := db.Explain("SELECT big.v FROM small JOIN big ON small.k = big.k ORDER BY big.v")
	if err != nil {
		t.Fatal(err)
	}
	out := explainJoined(t, lines)
	if !strings.Contains(out, "hash join") || !strings.Contains(out, "build left") {
		t.Errorf("small left input should become the build side:\n%s", out)
	}
	// Without ORDER BY, flipping would change output order: keep right.
	lines, err = db.Explain("SELECT big.v FROM small JOIN big ON small.k = big.k")
	if err != nil {
		t.Fatal(err)
	}
	if out := explainJoined(t, lines); !strings.Contains(out, "build right") {
		t.Errorf("order-sensitive plan must build right:\n%s", out)
	}
}

func TestExplainIndexJoin(t *testing.T) {
	db := testDB(t)
	db.MustExec("CREATE INDEX idx_reviews_movie ON reviews (movie_id)")
	// The right side's join column is indexed: no build phase at all.
	lines, err := db.Explain("SELECT m.title FROM movies m JOIN reviews r ON m.id = r.movie_id")
	if err != nil {
		t.Fatal(err)
	}
	out := explainJoined(t, lines)
	if !strings.Contains(out, "index nested loop join") {
		t.Errorf("indexed right join key should use index nested loop:\n%s", out)
	}
	if strings.Contains(out, "hash join") {
		t.Errorf("index join should replace hash join:\n%s", out)
	}
	// Flipped: only the LEFT side's key (movies.id, the primary key) is
	// indexed. With an ORDER BY the planner probes the right input.
	lines, err = db.Explain("SELECT r.stars FROM movies m JOIN reviews r ON m.id = r.stars ORDER BY r.stars")
	if err != nil {
		t.Fatal(err)
	}
	out = explainJoined(t, lines)
	if !strings.Contains(out, "index nested loop join") || !strings.Contains(out, "probing right input") {
		t.Errorf("indexed left key under ORDER BY should flip the probe side:\n%s", out)
	}
}

func TestExplainNestedLoopAndCross(t *testing.T) {
	db := testDB(t)
	lines, err := db.Explain("SELECT COUNT(*) FROM movies a JOIN movies b ON a.revenue > b.revenue")
	if err != nil {
		t.Fatal(err)
	}
	out := explainJoined(t, lines)
	if !strings.Contains(out, "nested loop join") {
		t.Errorf("non-equi join should nest:\n%s", out)
	}
	if !strings.Contains(out, "aggregate") {
		t.Errorf("COUNT should aggregate:\n%s", out)
	}
	lines, err = db.Explain("SELECT * FROM movies, reviews")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explainJoined(t, lines), "cross join") {
		t.Errorf("comma join should be cross:\n%s", explainJoined(t, lines))
	}
}

func TestExplainStages(t *testing.T) {
	db := testDB(t)
	lines, err := db.Explain(`SELECT DISTINCT genre FROM movies
		GROUP BY genre ORDER BY genre LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	out := explainJoined(t, lines)
	for _, stage := range []string{"limit/offset", "sort by", "distinct", "hash aggregate"} {
		if !strings.Contains(out, stage) {
			t.Errorf("missing stage %q:\n%s", stage, out)
		}
	}
	// Stage order: limit outermost, then sort, distinct, aggregate.
	li := strings.Index(out, "limit/offset")
	si := strings.Index(out, "sort by")
	ai := strings.Index(out, "hash aggregate")
	if !(li < si && si < ai) {
		t.Errorf("stage order wrong:\n%s", out)
	}
}

func TestExplainErrors(t *testing.T) {
	db := testDB(t)
	if _, err := db.Explain("INSERT INTO movies VALUES (99, 'x', 'y', 1, 2000)"); err == nil {
		t.Error("EXPLAIN of non-SELECT must fail")
	}
	if _, err := db.Explain("SELECT nope FROM nowhere"); err == nil {
		t.Error("EXPLAIN of invalid query must fail")
	}
}
