package sqldb

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// This file defines the small filesystem seam the durability layer writes
// through. Every byte the WAL and checkpoint machinery touches goes
// through a walFS, so tests can substitute an in-memory filesystem
// (memFS) that models the volatile/durable distinction a real disk has —
// written bytes are not durable until Sync — and a fault-injecting
// wrapper (crashFS) that fails or "crashes the process" at the Nth
// mutating operation. That seam is what makes the crash-point matrix in
// wal_crash_test.go deterministic: the same workload always issues the
// same operation sequence, so every injection point is reproducible.

// walFS is the filesystem surface the durability layer needs. The
// production implementation is osFS; tests inject memFS / crashFS.
type walFS interface {
	// MkdirAll ensures the database directory exists.
	MkdirAll(dir string) error
	// ReadDir lists the file names (not paths) in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the full contents of the file at path.
	ReadFile(path string) ([]byte, error)
	// Create opens path for writing, truncating any existing file.
	Create(path string) (walFile, error)
	// OpenAppend opens path for appending, creating it if absent, and
	// reports its current size.
	OpenAppend(path string) (walFile, int64, error)
	// Rename atomically replaces newPath with oldPath's file.
	Rename(oldPath, newPath string) error
	// Remove deletes the file at path.
	Remove(path string) error
}

// walFile is an open file handle. Write appends (for OpenAppend handles)
// or extends (for Create handles); Sync makes previously written bytes
// durable; Truncate discards bytes past size.
type walFile interface {
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// ---------------------------------------------------------------------------
// osFS: the real filesystem.

// osFS implements walFS over the os package. Rename also syncs the parent
// directory (best effort) so the rename itself survives a crash — the
// checkpoint protocol relies on "snapshot file present" implying
// "snapshot file complete".
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Create(path string) (walFile, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (osFS) OpenAppend(path string) (walFile, int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}

func (osFS) Rename(oldPath, newPath string) error {
	if err := os.Rename(oldPath, newPath); err != nil {
		return err
	}
	// Persist the directory entry; ignore platforms where directory
	// fsync is unsupported.
	if d, err := os.Open(filepath.Dir(newPath)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

func (osFS) Remove(path string) error { return os.Remove(path) }

// ---------------------------------------------------------------------------
// memFS: in-memory filesystem with a durability model.

// memFile models one file as the full byte content written so far (what a
// crash-free reader sees) plus the prefix length guaranteed durable (what
// survives a power loss: bytes covered by the last Sync).
type memFile struct {
	data   []byte
	synced int
}

// memFS is an in-memory walFS for tests and benchmarks. It tracks, per
// file, which bytes have been fsynced, so crashFS can compute the two
// interesting post-crash states: "everything written survived" and "only
// synced bytes survived". Rename and Remove are modelled as immediately
// durable metadata operations (the osFS implementation syncs the
// directory to approximate the same contract).
type memFS struct {
	mu    sync.Mutex
	files map[string]*memFile
}

func newMemFS() *memFS {
	return &memFS{files: make(map[string]*memFile)}
}

func (m *memFS) MkdirAll(string) error { return nil }

func (m *memFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for p := range m.files {
		if strings.HasPrefix(p, prefix) {
			rest := strings.TrimPrefix(p, prefix)
			if !strings.Contains(rest, "/") {
				names = append(names, rest)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *memFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return nil, errors.New("memfs: no such file: " + path)
	}
	return append([]byte(nil), f.data...), nil
}

func (m *memFS) Create(path string) (walFile, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[path] = f
	return &memHandle{fs: m, f: f}, nil
}

func (m *memFS) OpenAppend(path string) (walFile, int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		f = &memFile{}
		m.files[path] = f
	}
	return &memHandle{fs: m, f: f}, int64(len(f.data)), nil
}

func (m *memFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldPath]
	if !ok {
		return errors.New("memfs: no such file: " + oldPath)
	}
	delete(m.files, oldPath)
	m.files[newPath] = f
	return nil
}

func (m *memFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return errors.New("memfs: no such file: " + path)
	}
	delete(m.files, path)
	return nil
}

// syncedLen reports the durable prefix length of a file (test probe for
// the fsync-policy tests).
func (m *memFS) syncedLen(path string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[path]; ok {
		return f.synced
	}
	return -1
}

// memHandle is an open handle on a memFile.
type memHandle struct {
	fs *memFS
	f  *memFile
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if int(size) < len(h.f.data) {
		h.f.data = h.f.data[:size]
	}
	if h.f.synced > int(size) {
		h.f.synced = int(size)
	}
	return nil
}

func (h *memHandle) Close() error { return nil }

// ---------------------------------------------------------------------------
// crashFS: deterministic fault injection.

// Fault modes for crashFS. The first two model recoverable I/O errors
// (the process survives, the call fails); the crash modes model the
// process dying at that operation, with the two bracketing disk
// outcomes for unsynced data.
const (
	// faultENOSPC fails the target operation with a no-space error; no
	// bytes are written.
	faultENOSPC = iota
	// faultShortWrite applies half of the target write, then fails.
	faultShortWrite
	// faultCrashTear kills the process at the target operation. All
	// bytes written before the crash survive (the kernel flushed them),
	// and the crashing write itself lands a torn half.
	faultCrashTear
	// faultCrashLose kills the process at the target operation. Only
	// explicitly synced bytes survive; everything else is lost.
	faultCrashLose
)

// errSimCrash is what every operation returns once the simulated process
// has died. The crash harness uses it to stop the workload.
var errSimCrash = errors.New("crashfs: simulated crash")

// errNoSpace simulates ENOSPC.
var errNoSpace = errors.New("crashfs: no space left on device")

// crashFS wraps a memFS and injects one fault at the Nth mutating
// operation (Create, Rename, Remove, Write, Sync, Truncate — the
// operations whose failure or interruption a durable engine must
// survive). Operation numbering is 1-based; failAt = 0 injects nothing.
// After a crash-mode fault fires, every subsequent operation fails with
// errSimCrash, and afterCrash() produces the filesystem state a restarted
// process would observe.
type crashFS struct {
	inner *memFS
	mode  int

	mu      sync.Mutex
	op      int
	failAt  int
	crashed bool
}

func newCrashFS(failAt, mode int) *crashFS {
	return &crashFS{inner: newMemFS(), failAt: failAt, mode: mode}
}

// ops reports how many mutating operations have been issued (used by the
// harness to size the injection matrix from a fault-free run).
func (c *crashFS) ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.op
}

// step advances the operation counter and reports whether this operation
// is the injection point. The injected error (for non-write operations)
// is returned alongside.
func (c *crashFS) step() (inject bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return false, errSimCrash
	}
	c.op++
	if c.failAt == 0 || c.op != c.failAt {
		return false, nil
	}
	switch c.mode {
	case faultENOSPC, faultShortWrite:
		return true, errNoSpace
	default:
		c.crashed = true
		return true, errSimCrash
	}
}

// afterCrash returns the durable filesystem state a restarted process
// sees: for faultCrashTear every written byte (including the torn half of
// the crashing write); for faultCrashLose only synced bytes. Valid in
// the non-crash modes too, where it is simply the current state.
func (c *crashFS) afterCrash() *memFS {
	c.inner.mu.Lock()
	defer c.inner.mu.Unlock()
	out := newMemFS()
	for p, f := range c.inner.files {
		data := f.data
		if c.mode == faultCrashLose {
			data = f.data[:f.synced]
		}
		out.files[p] = &memFile{data: append([]byte(nil), data...), synced: len(data)}
	}
	return out
}

func (c *crashFS) MkdirAll(dir string) error { return c.inner.MkdirAll(dir) }

func (c *crashFS) ReadDir(dir string) ([]string, error) {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		return nil, errSimCrash
	}
	return c.inner.ReadDir(dir)
}

func (c *crashFS) ReadFile(path string) ([]byte, error) {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		return nil, errSimCrash
	}
	return c.inner.ReadFile(path)
}

func (c *crashFS) Create(path string) (walFile, error) {
	if _, err := c.step(); err != nil {
		return nil, err
	}
	f, err := c.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &crashHandle{fs: c, f: f}, nil
}

func (c *crashFS) OpenAppend(path string) (walFile, int64, error) {
	c.mu.Lock()
	dead := c.crashed
	c.mu.Unlock()
	if dead {
		return nil, 0, errSimCrash
	}
	f, size, err := c.inner.OpenAppend(path)
	if err != nil {
		return nil, 0, err
	}
	return &crashHandle{fs: c, f: f}, size, nil
}

func (c *crashFS) Rename(oldPath, newPath string) error {
	if _, err := c.step(); err != nil {
		return err
	}
	return c.inner.Rename(oldPath, newPath)
}

func (c *crashFS) Remove(path string) error {
	if _, err := c.step(); err != nil {
		return err
	}
	return c.inner.Remove(path)
}

// crashHandle wraps a memFS handle with the shared fault state.
type crashHandle struct {
	fs *crashFS
	f  walFile
}

func (h *crashHandle) Write(p []byte) (int, error) {
	inject, err := h.fs.step()
	if !inject {
		if err != nil {
			return 0, err
		}
		return h.f.Write(p)
	}
	switch h.fs.mode {
	case faultENOSPC:
		return 0, errNoSpace
	case faultShortWrite:
		n, _ := h.f.Write(p[:len(p)/2])
		return n, errNoSpace
	case faultCrashTear:
		// The torn half lands on disk; the process is gone.
		_, _ = h.f.Write(p[:len(p)/2])
		return 0, errSimCrash
	default: // faultCrashLose: the write never reached the disk.
		return 0, errSimCrash
	}
}

func (h *crashHandle) Sync() error {
	inject, err := h.fs.step()
	if err != nil && !inject {
		return err
	}
	if inject {
		// A failed or crashed fsync leaves durability of the pending
		// bytes undefined; the harness's acceptance set covers both
		// outcomes. Nothing is promoted to synced here.
		return err
	}
	return h.f.Sync()
}

func (h *crashHandle) Truncate(size int64) error {
	inject, err := h.fs.step()
	if err != nil {
		_ = inject
		return err
	}
	return h.f.Truncate(size)
}

func (h *crashHandle) Close() error { return h.f.Close() }
