package sqldb

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Tests for the vectorized executor (vector.go, vecops.go): the
// row-vs-vector equivalence property over a randomized plan corpus with
// interleaved DML and forced sealing, the EXPLAIN / EXPLAIN ANALYZE
// surface, the accounting property through vecScanOp, the
// broken-kernel fault proof, and the unordered-gather aggregation path.

// forceVector pins the vectorized executor on or off for one test.
func forceVector(t testing.TB, v bool) {
	t.Helper()
	old := vectorEnabled
	vectorEnabled = v
	t.Cleanup(func() { vectorEnabled = old })
}

// lowerVecMinRows lets a test exercise the vectorized path on tables far
// smaller than the production size gate would allow.
func lowerVecMinRows(t testing.TB, n int) {
	t.Helper()
	old := vecMinRows
	vecMinRows = n
	t.Cleanup(func() { vecMinRows = old })
}

// vecPred generates a random single-table predicate over v's columns,
// mixing shapes the kernel compiler accepts (comparisons, arithmetic,
// IS NULL, column-column) with shapes it must reject (modulo, LIKE) so
// the corpus exercises the row fallback alongside the kernels.
func vecPred(r *rand.Rand) string {
	atoms := []string{
		fmt.Sprintf("a > %d", r.Intn(40)),
		fmt.Sprintf("a = %d", r.Intn(40)),
		fmt.Sprintf("a <= %d", r.Intn(40)),
		fmt.Sprintf("f < %d.5", r.Intn(100)),
		fmt.Sprintf("f >= %d.25", r.Intn(100)),
		"f > a",
		"a IS NULL",
		"a IS NOT NULL",
		"f IS NULL",
		"ok",
		"NOT ok",
		fmt.Sprintf("a + 3 < %d", r.Intn(45)),
		fmt.Sprintf("a * 2 >= %d", r.Intn(80)),
		fmt.Sprintf("c = '%s'", []string{"ant", "bee", "cat"}[r.Intn(3)]),
		fmt.Sprintf("c < '%c'", 'b'+rune(r.Intn(3))),
		fmt.Sprintf("id %% %d = %d", 2+r.Intn(4), r.Intn(2)),
		fmt.Sprintf("c LIKE '%%%c%%'", 'a'+rune(r.Intn(5))),
		fmt.Sprintf("LENGTH(c) > %d", r.Intn(4)), // FuncCall: forces the row fallback
	}
	p := atoms[r.Intn(len(atoms))]
	for r.Intn(3) == 0 {
		op := "AND"
		if r.Intn(2) == 0 {
			op = "OR"
		}
		next := atoms[r.Intn(len(atoms))]
		if r.Intn(4) == 0 {
			next = "NOT (" + next + ")"
		}
		p = fmt.Sprintf("(%s %s %s)", p, op, next)
	}
	return p
}

// vecShapes is the plan corpus: bare scans, kernel-heavy projections,
// plain and grouped aggregation, LIMIT/OFFSET early stops (the lazy
// accounting), sorts and DISTINCT above the vectorized scan.
var vecShapes = []func(r *rand.Rand, pred string) string{
	func(r *rand.Rand, pred string) string {
		return "SELECT id, a, c FROM v WHERE " + pred
	},
	func(r *rand.Rand, pred string) string {
		return "SELECT a + id * 2, f, c FROM v WHERE " + pred
	},
	func(r *rand.Rand, pred string) string {
		return "SELECT COUNT(*), MIN(a), MAX(id), SUM(a), AVG(f) FROM v WHERE " + pred
	},
	func(r *rand.Rand, pred string) string {
		return "SELECT c, COUNT(*), SUM(id), MIN(f) FROM v WHERE " + pred + " GROUP BY c"
	},
	func(r *rand.Rand, pred string) string {
		return fmt.Sprintf("SELECT id, a FROM v WHERE %s LIMIT %d", pred, 1+r.Intn(30))
	},
	func(r *rand.Rand, pred string) string {
		return fmt.Sprintf("SELECT f * 2, c FROM v WHERE %s LIMIT %d OFFSET %d",
			pred, 1+r.Intn(20), r.Intn(10))
	},
	func(r *rand.Rand, pred string) string {
		return fmt.Sprintf("SELECT id, c FROM v WHERE %s ORDER BY id LIMIT %d", pred, 1+r.Intn(15))
	},
	func(r *rand.Rand, pred string) string {
		return "SELECT DISTINCT ok, c FROM v WHERE " + pred
	},
}

func vecQueryStrings(db *Database, q string) ([][]string, error) {
	res, err := db.Query(q)
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = make([]string, len(r))
		for j, v := range r {
			if v.IsNull() {
				out[i][j] = "NULL"
			} else {
				out[i][j] = v.AsText()
			}
		}
	}
	return out, nil
}

// vectorRowProperty is the tentpole's core guarantee: over a randomized
// corpus of plans, with DML interleaved and cold blocks force-sealed
// mid-run, the vectorized executor and the row engine return
// row-for-row identical results and bit-identical accounting
// (RowsScanned, RowsEmitted, TombstonesSkipped — including under LIMIT
// early stops), and the per-operator EXPLAIN ANALYZE sums reconcile
// with the per-query totals on both engines.
func vectorRowProperty(r *rand.Rand, steps int) error {
	defer func(v bool) { vectorEnabled = v }(vectorEnabled)
	db := NewDatabase()
	db.MustExec("CREATE TABLE v (id INTEGER, a INTEGER, f FLOAT, c TEXT, ok BOOL)")
	words := []string{"ant", "bee", "cat", "dge", "eel"}
	nextID := 0
	mkRow := func() []any {
		var a any = r.Intn(40)
		if r.Intn(9) == 0 {
			a = nil
		}
		var fv any = float64(r.Intn(400)) / 4
		if r.Intn(11) == 0 {
			fv = nil
		}
		row := []any{nextID, a, fv, words[r.Intn(len(words))], r.Intn(2) == 1}
		nextID++
		return row
	}
	seed := make([][]any, 0, 2*segBlockSlots+100)
	for i := 0; i < 2*segBlockSlots+100; i++ {
		seed = append(seed, mkRow())
	}
	if err := db.InsertRows("v", seed); err != nil {
		return err
	}
	db.Seal() // the corpus starts against two sealed blocks plus a heap tail

	run := func(q string) ([][]string, QueryStats, uint64, error) {
		rows, err := vecQueryStrings(db, q)
		if err != nil {
			return nil, QueryStats{}, 0, err
		}
		a, err := db.ExplainAnalyze(context.Background(), q)
		if err != nil {
			return nil, QueryStats{}, 0, err
		}
		if got, want := a.scannedTotal(), a.Stats.RowsScanned; got != want {
			return nil, QueryStats{}, 0, fmt.Errorf(
				"accounting property violated for %q: per-operator scans %d != RowsScanned %d\n%s",
				q, got, want, strings.Join(a.Plan, "\n"))
		}
		return rows, a.Stats, a.rootRows(), nil
	}
	for step := 0; step < steps; step++ {
		switch r.Intn(6) {
		case 0, 1:
			if err := db.InsertRows("v", [][]any{mkRow(), mkRow()}); err != nil {
				return err
			}
		case 2:
			db.MustExec(fmt.Sprintf("UPDATE v SET a = %d WHERE id %% 13 = %d", r.Intn(40), r.Intn(13)))
		case 3:
			db.MustExec("DELETE FROM v WHERE id = ?", r.Intn(nextID))
		case 4:
			db.MustExec(fmt.Sprintf("UPDATE v SET f = f + 1 WHERE a = %d", r.Intn(40)))
		}
		if step%37 == 17 {
			db.Seal() // re-freeze whatever went cold since the last pass
		}
		q := vecShapes[step%len(vecShapes)](r, vecPred(r))

		vectorEnabled = false
		rowRes, rowStats, rowRoot, err := run(q)
		if err != nil {
			return fmt.Errorf("step %d (row engine): %v", step, err)
		}
		vectorEnabled = true
		vecRes, vecStats, vecRoot, err := run(q)
		if err != nil {
			return fmt.Errorf("step %d (vectorized): %v", step, err)
		}

		// Result rows are MVCC-stable, so they must match unconditionally.
		if len(rowRes) != len(vecRes) {
			return fmt.Errorf("step %d: %q returned %d rows vectorized, %d rows row-engine",
				step, q, len(vecRes), len(rowRes))
		}
		for i := range rowRes {
			if strings.Join(rowRes[i], "|") != strings.Join(vecRes[i], "|") {
				return fmt.Errorf("step %d: %q row %d diverged: vec %v vs row %v",
					step, q, i, vecRes[i], rowRes[i])
			}
		}
		// Accounting can legitimately shift while a background vacuum pass
		// clears dead versions (a reclaimed slot stops counting as a
		// tombstone). Bracket the vectorized run with a second row-engine
		// run: when the environment was stable across the window, the
		// vectorized counters must be bit-identical to the row engine's.
		vectorEnabled = false
		_, rowStats2, rowRoot2, err := run(q)
		if err != nil {
			return fmt.Errorf("step %d (row engine, bracket): %v", step, err)
		}
		vectorEnabled = true
		if rowStats != rowStats2 || rowRoot != rowRoot2 {
			continue // vacuum moved under us; skip the counter comparison
		}
		if rowStats.RowsScanned != vecStats.RowsScanned ||
			rowStats.RowsEmitted != vecStats.RowsEmitted ||
			rowStats.TombstonesSkipped != vecStats.TombstonesSkipped ||
			rowStats.FullScans != vecStats.FullScans ||
			rowRoot != vecRoot {
			return fmt.Errorf(
				"step %d: %q accounting diverged: vec {scanned %d emitted %d tomb %d full %d root %d} vs row {scanned %d emitted %d tomb %d full %d root %d}",
				step, q,
				vecStats.RowsScanned, vecStats.RowsEmitted, vecStats.TombstonesSkipped, vecStats.FullScans, vecRoot,
				rowStats.RowsScanned, rowStats.RowsEmitted, rowStats.TombstonesSkipped, rowStats.FullScans, rowRoot)
		}
	}
	return nil
}

func TestVectorRowEquivalence(t *testing.T) {
	lowerVecMinRows(t, 1) // DML can drain every segment; keep vec live on the heap tail
	if err := vectorRowProperty(rand.New(rand.NewSource(21)), 160); err != nil {
		t.Fatal(err)
	}
}

// TestVectorEquivalenceCatchesBrokenKernel proves the property has
// teeth: with the comparison kernels deliberately inverted, the
// vectorized executor must diverge from the row engine and the property
// must report it.
func TestVectorEquivalenceCatchesBrokenKernel(t *testing.T) {
	lowerVecMinRows(t, 1)
	debugBreakVectorKernel = true
	defer func() { debugBreakVectorKernel = false }()
	if err := vectorRowProperty(rand.New(rand.NewSource(21)), 160); err == nil {
		t.Fatal("equivalence property did not detect inverted comparison kernels")
	}
}

// TestMetamorphicNoRECAndTLPVectorized / ...RowEngine run the SQLancer
// metamorphic suite (NoREC + TLP with interleaved DML) with the
// vectorized executor forced on and forced off: the properties must hold
// on whichever engine serves each access path.
func TestMetamorphicNoRECAndTLPVectorized(t *testing.T) {
	forceVector(t, true)
	lowerVecMinRows(t, 1) // the metamorphic corpus uses small tables
	if err := metamorphicProperty(rand.New(rand.NewSource(61)), 250); err != nil {
		t.Fatal(err)
	}
}

func TestMetamorphicNoRECAndTLPRowEngine(t *testing.T) {
	forceVector(t, false)
	if err := metamorphicProperty(rand.New(rand.NewSource(61)), 250); err != nil {
		t.Fatal(err)
	}
}

// TestVectorExplainShapes pins the plan surface: EXPLAIN shows the
// vectorized scan with its fused filters and marks vectorized
// projections and aggregations; EXPLAIN ANALYZE adds batch and
// segment-decode counts once blocks are sealed.
func TestVectorExplainShapes(t *testing.T) {
	forceVector(t, true)
	db := sealedTestDB(t, 2)

	plan := func(q string) string {
		lines, err := db.Explain(q)
		if err != nil {
			t.Fatalf("Explain(%q): %v", q, err)
		}
		return strings.Join(lines, "\n")
	}
	scanPlan := plan("SELECT id, a FROM s WHERE a > 10 AND c = 'ant'")
	if !strings.Contains(scanPlan, "vectorized seq scan") {
		t.Fatalf("plan missing vectorized seq scan:\n%s", scanPlan)
	}
	if !strings.Contains(scanPlan, "fused filter") {
		t.Fatalf("plan missing fused filter:\n%s", scanPlan)
	}
	if !strings.Contains(plan("SELECT a + 1, f FROM s WHERE a > 10"), "(vectorized)") {
		t.Fatal("vectorized projection not marked in plan")
	}
	if !strings.Contains(plan("SELECT c, COUNT(*), MIN(a) FROM s WHERE a > 10 GROUP BY c"), "(vectorized)") {
		t.Fatal("vectorized aggregation not marked in plan")
	}

	a, err := db.ExplainAnalyze(context.Background(), "SELECT COUNT(*) FROM s WHERE a < 50")
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(a.Plan, "\n")
	if !strings.Contains(text, "batches=") {
		t.Fatalf("analyzed plan missing batches=:\n%s", text)
	}
	if !strings.Contains(text, "decoded_blocks=2") {
		t.Fatalf("analyzed plan missing decoded_blocks=2:\n%s", text)
	}
	if a.Stats.VectorBatches == 0 || a.Stats.SegmentScans != 1 || a.Stats.DecodedBlocks != 2 {
		t.Fatalf("analyzed stats = %+v, want vector batches and 2 decoded blocks", a.Stats)
	}
	if got, want := a.scannedTotal(), a.Stats.RowsScanned; got != want {
		t.Fatalf("scannedTotal %d != RowsScanned %d", got, want)
	}

	// The row engine must leave no vectorized markers behind.
	forceVector(t, false)
	rowPlan := plan("SELECT id, a FROM s WHERE a > 10")
	if strings.Contains(rowPlan, "vectorized") {
		t.Fatalf("row-engine plan mentions vectorized:\n%s", rowPlan)
	}
}

// TestVectorRowFallbackCounter: a plan whose shape qualifies but whose
// expressions cannot compile to kernels must fall back to the row tree
// and count the fallback.
func TestVectorRowFallbackCounter(t *testing.T) {
	forceVector(t, true)
	db := sealedTestDB(t, 1)
	before := db.Stats().RowFallbacks
	rows := queryStrings(t, db, "SELECT COUNT(*) FROM s WHERE LENGTH(c) > 2")
	if rows[0][0] == "0" {
		t.Fatal("fallback query returned no rows")
	}
	if after := db.Stats().RowFallbacks; after <= before {
		t.Fatalf("RowFallbacks did not advance: %d -> %d", before, after)
	}
}

// ---------------------------------------------------------------------------
// Unordered gather

// TestUnorderedGatherAggEquivalence: a DISTINCT aggregate cannot merge
// partial states (so partial aggregation bows out), but COUNT/MIN/MAX
// consumers are order-insensitive, so the scan still parallelizes with
// morsels gathered in completion order. The results must equal the
// serial engine's on every run regardless of worker scheduling.
func TestUnorderedGatherAggEquivalence(t *testing.T) {
	lowerParallelMinRows(t, 8)
	par := NewDatabase(WithMaxWorkers(4))
	ser := NewDatabase(WithMaxWorkers(1))
	r := rand.New(rand.NewSource(31))
	words := []string{"ant", "bee", "cat", "dge", "eel"}
	rows := make([][]any, 0, 3000)
	for i := 0; i < 3000; i++ {
		var a any = r.Intn(50)
		if r.Intn(8) == 0 {
			a = nil
		}
		rows = append(rows, []any{i, a, words[r.Intn(len(words))], r.Intn(2) == 1})
	}
	for _, db := range []*Database{par, ser} {
		db.MustExec("CREATE TABLE u (id INTEGER, a INTEGER, c TEXT, ok BOOL)")
		if err := db.InsertRows("u", rows); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		"SELECT COUNT(DISTINCT a) FROM u",
		"SELECT COUNT(DISTINCT c), MIN(a), MAX(a) FROM u WHERE a < 40",
		"SELECT COUNT(DISTINCT a), MAX(DISTINCT c) FROM u WHERE ok",
		"SELECT MIN(DISTINCT a), COUNT(DISTINCT id) FROM u WHERE a IS NOT NULL",
	}
	plan, err := par.Explain(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if text := strings.Join(plan, "\n"); !strings.Contains(text, "unordered gather") {
		t.Fatalf("parallel DISTINCT-aggregate plan missing unordered gather:\n%s", text)
	}
	for round := 0; round < 8; round++ {
		for _, q := range queries {
			want := strings.Join(queryStrings(t, ser, q)[0], "|")
			got := strings.Join(queryStrings(t, par, q)[0], "|")
			if got != want {
				t.Fatalf("round %d: %q diverged: parallel %q vs serial %q", round, q, got, want)
			}
		}
		// Churn between rounds so later rounds see tombstones and fresh rows.
		dml := fmt.Sprintf("UPDATE u SET a = %d WHERE id %% 17 = %d", r.Intn(50), r.Intn(17))
		par.MustExec(dml)
		ser.MustExec(dml)
	}
	assertNoWorkerLeak(t)
}

// TestUnorderedGatherGate pins the refusals: GROUP BY, ORDER BY,
// order-sensitive aggregates and bare column refs outside aggregates
// must all keep the ordered gather (or stay serial).
func TestUnorderedGatherGate(t *testing.T) {
	lowerParallelMinRows(t, 8)
	db := NewDatabase(WithMaxWorkers(4))
	db.MustExec("CREATE TABLE u (id INTEGER, a INTEGER, c TEXT, ok BOOL)")
	rows := make([][]any, 0, 600)
	for i := 0; i < 600; i++ {
		rows = append(rows, []any{i, i % 40, "w", i%2 == 0})
	}
	if err := db.InsertRows("u", rows); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"SELECT ok, COUNT(DISTINCT a) FROM u GROUP BY ok",
		"SELECT COUNT(DISTINCT a) FROM u ORDER BY 1",
		"SELECT SUM(DISTINCT a) FROM u",
		"SELECT GROUP_CONCAT(c) FROM u",
	} {
		lines, err := db.Explain(q)
		if err != nil {
			t.Fatalf("Explain(%q): %v", q, err)
		}
		if text := strings.Join(lines, "\n"); strings.Contains(text, "unordered gather") {
			t.Fatalf("%q must not take the unordered gather:\n%s", q, text)
		}
	}
	assertNoWorkerLeak(t)
}
