package sqldb

import (
	"sort"
	"strings"
	"sync/atomic"
)

// This file implements the ordered half of the dual-structure Index
// (catalog.go) and the operators that exploit it. The hash map's postings
// are the source of truth; the ordered view — distinct values sorted by
// Value.Compare, each with its row ids ascending — is derived from them
// lazily and then maintained incrementally by DML while it is live. Under
// MVCC both structures are supersets of what any one snapshot can see, so
// every consumer here re-checks each candidate id: fetch the version
// visible to the scan's snapshot, emit only if its indexed value equals
// the entry's value. On top of the view sit:
//
//	ordScanOp     streams a table in index order (optionally bounded),
//	              letting ORDER BY ... LIMIT k read exactly O(k) rows
//	              and range predicates skip the heap entirely
//	collectRangeIDs  materialises a range as heap-ordered row ids for
//	              plans that need scan order preserved (no ORDER BY)
//	mergeJoinOp   equi-joins two tables by walking both ordered views
//	              in lockstep, with no build phase and no hashing
//
// Order equivalence is exact, not approximate: within one entry the ids
// are ascending heap positions, so "walk entries in Compare order, ids
// within" yields precisely what a stable sort of the heap scan on that
// column yields — per snapshot, because the recheck pins each visible row
// to exactly one entry. The planner relies on this to drop sortOp without
// changing any observable ordering, including ties.
//
// Concurrency: readers load the published view pointer once per scan and
// entry id lists atomically per entry; they take no lock. Writers (under
// the single-writer latch, holding the index latch) maintain the live
// view copy-on-write — replacing an entry's id slice for an existing
// value, publishing a fresh entry array for a new one — so a reader's
// loaded view stays internally consistent for its whole iteration.

// ordEntry is one distinct value of an ordered index view. The id list is
// replaced copy-on-write by maintenance; entries themselves are immutable
// apart from that pointer.
type ordEntry struct {
	val Value
	ids atomic.Pointer[[]int]
}

// entryIDs loads the entry's current id list (ascending).
func (e *ordEntry) entryIDs() []int { return *e.ids.Load() }

// Fault-injection switches for the metamorphic/property test layer: each
// deliberately breaks one maintenance/visibility invariant so the suites
// can prove they would catch such a bug (scans emitting deleted rows,
// ordered views going stale). Never set outside tests.
var (
	debugDisableTombstoneSkip bool // scans ignore visibility: deleted rows reappear
	debugBreakOrdMaintain     bool // DML leaves live ordered views stale
)

// scanRow fetches the row a snapshot-filtered consumer should see for id
// — or, under the debugDisableTombstoneSkip fault, the newest version
// regardless of visibility.
func scanRow(t *Table, id int, snap *snapshot) Row {
	if debugDisableTombstoneSkip {
		arrp := t.slots.Load()
		if arrp == nil || id >= len(*arrp) {
			return nil
		}
		if v := (*arrp)[id].head.Load(); v != nil {
			return v.row
		}
		return nil
	}
	return t.visibleRow(id, snap)
}

// orderedEntries returns the index's ordered view, building it from the
// hash map under the index latch on first ordered access after wholesale
// invalidation (CREATE INDEX, vacuum sweep). The double-checked fast path
// is a single atomic load; builders and maintainers serialise on idx.mu.
// Entry id slices are copied at build — they are never shared with the
// postings.
func (idx *Index) orderedEntries() []*ordEntry {
	if entp := idx.ord.Load(); entp != nil {
		return *entp
	}
	idx.mu.Lock()
	defer idx.mu.Unlock()
	if entp := idx.ord.Load(); entp != nil {
		return *entp
	}
	entries := make([]*ordEntry, 0, len(idx.m))
	for _, p := range idx.m {
		e := &ordEntry{val: p.val}
		ids := append([]int(nil), p.ids...)
		e.ids.Store(&ids)
		entries = append(entries, e)
	}
	sort.Slice(entries, func(a, b int) bool {
		return entries[a].val.Compare(entries[b].val) < 0
	})
	idx.ord.Store(&entries)
	return entries
}

// ordAdd maintains a live ordered view for one added (id, value) pair:
// binary search for the value's entry, then copy-on-write the entry's id
// list, or publish a fresh entry array with the new value spliced in at
// its sorted position. Caller holds idx.mu. A nil view stays nil — the
// next ordered access builds it from the hash map for free. Reports
// whether a live view was maintained.
func (idx *Index) ordAdd(v Value, id int) bool {
	entp := idx.ord.Load()
	if entp == nil || debugBreakOrdMaintain {
		return false
	}
	entries := *entp
	pos := sort.Search(len(entries), func(i int) bool { return entries[i].val.Compare(v) >= 0 })
	if pos < len(entries) && entries[pos].val.Compare(v) == 0 {
		ids := entries[pos].entryIDs()
		cp := make([]int, len(ids), len(ids)+1)
		copy(cp, ids)
		cp = spliceID(cp, id)
		entries[pos].ids.Store(&cp)
		return true
	}
	grown := make([]*ordEntry, len(entries)+1)
	copy(grown, entries[:pos])
	e := &ordEntry{val: v}
	eids := []int{id}
	e.ids.Store(&eids)
	grown[pos] = e
	copy(grown[pos+1:], entries[pos:])
	idx.ord.Store(&grown)
	return true
}

// rangeBound is one end of a key range: the bounding value and whether
// the bound itself is included.
type rangeBound struct {
	val  Value
	incl bool
}

// rangeSpec is a one-column key range extracted from WHERE conjuncts
// (col > x, col <= y, BETWEEN). The zero value means "unbounded".
type rangeSpec struct {
	lo, hi *rangeBound
}

func (s rangeSpec) bounded() bool { return s.lo != nil || s.hi != nil }

// describe renders the range as SQL-ish text for EXPLAIN.
func (s rangeSpec) describe(col string) string {
	var parts []string
	if s.lo != nil {
		op := ">"
		if s.lo.incl {
			op = ">="
		}
		parts = append(parts, col+" "+op+" "+s.lo.val.String())
	}
	if s.hi != nil {
		op := "<"
		if s.hi.incl {
			op = "<="
		}
		parts = append(parts, col+" "+op+" "+s.hi.val.String())
	}
	if parts == nil {
		return col + " unbounded"
	}
	return strings.Join(parts, " AND ")
}

// tightenLo returns the stricter of two lower bounds (nil = unbounded).
// On equal values the exclusive bound is tighter.
func tightenLo(cur, nb *rangeBound) *rangeBound {
	if cur == nil {
		return nb
	}
	if nb == nil {
		return cur
	}
	c := nb.val.Compare(cur.val)
	if c > 0 || (c == 0 && !nb.incl) {
		return nb
	}
	return cur
}

// tightenHi returns the stricter of two upper bounds.
func tightenHi(cur, nb *rangeBound) *rangeBound {
	if cur == nil {
		return nb
	}
	if nb == nil {
		return cur
	}
	c := nb.val.Compare(cur.val)
	if c < 0 || (c == 0 && !nb.incl) {
		return nb
	}
	return cur
}

// rangeStart returns the first entry index inside the lower bound. With
// no lower bound NULL entries are still skipped: SQL range predicates
// are never true of NULL, and NULLs sort first under Compare.
func rangeStart(entries []*ordEntry, lo *rangeBound) int {
	if lo == nil {
		return sort.Search(len(entries), func(i int) bool { return !entries[i].val.IsNull() })
	}
	if lo.incl {
		return sort.Search(len(entries), func(i int) bool { return entries[i].val.Compare(lo.val) >= 0 })
	}
	return sort.Search(len(entries), func(i int) bool { return entries[i].val.Compare(lo.val) > 0 })
}

// rangeEnd returns one past the last entry index inside the upper bound.
func rangeEnd(entries []*ordEntry, hi *rangeBound) int {
	if hi == nil {
		return len(entries)
	}
	if hi.incl {
		return sort.Search(len(entries), func(i int) bool { return entries[i].val.Compare(hi.val) > 0 })
	}
	return sort.Search(len(entries), func(i int) bool { return entries[i].val.Compare(hi.val) >= 0 })
}

// collectRangeIDs gathers the row ids inside the range that are visible
// to snap, in ascending heap order, so an unordered range scan emits rows
// exactly as a filtered full scan would (the property plan-equivalence
// tests rely on this under LIMIT truncation). Ids whose visible version
// no longer carries the entry's value — superset leftovers, deleted or
// not-yet-visible rows — are skipped and counted in the second return.
// Always returns a non-nil slice.
func collectRangeIDs(t *Table, col int, entries []*ordEntry, spec rangeSpec, snap *snapshot) ([]int, uint64) {
	lo, hi := rangeStart(entries, spec.lo), rangeEnd(entries, spec.hi)
	ids := make([]int, 0, 16)
	var skipped uint64
	for i := lo; i < hi; i++ {
		e := entries[i]
		key := e.val.Key()
		for _, id := range e.entryIDs() {
			r := scanRow(t, id, snap)
			if r == nil || r[col].Key() != key {
				skipped++
				continue
			}
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, skipped
}

// entryRows materialises the rows of one ordered-view entry visible to
// snap (superset recheck applied); the second return counts skipped ids.
func entryRows(t *Table, col int, e *ordEntry, snap *snapshot) ([]Row, uint64) {
	ids := e.entryIDs()
	rows := make([]Row, 0, len(ids))
	var skipped uint64
	key := e.val.Key()
	for _, id := range ids {
		r := scanRow(t, id, snap)
		if r == nil || r[col].Key() != key {
			skipped++
			continue
		}
		rows = append(rows, r)
	}
	return rows, skipped
}

// ---------------------------------------------------------------------------
// Ordered index scan

// ordScanOp streams a base table in the order of one of its indexes,
// optionally restricted to a key range. Because entries stream lazily in
// Compare order with heap-ordered ids inside each entry, the output is
// bit-identical to "heap scan, then stable sort on the column" — which is
// what lets the planner drop sortOp and makes ORDER BY col LIMIT k read
// exactly k rows. With bounds it is also the range access path for
// ordered queries. NULLs participate in a pure ordered scan (they sort
// first ascending, last descending, exactly as sortOp places them) but
// are excluded by any range. The view pointer is loaded once per scan and
// every id is rechecked against the scan's snapshot — no lock is held
// while the cursor iterates.
type ordScanOp struct {
	table *Table
	idx   *Index
	qual  string
	cols  []colInfo
	spec  rangeSpec
	desc  bool
	qc    *queryCtx

	built       bool
	snap        *snapshot
	entries     []*ordEntry
	eids        []int // current entry's id list
	ekey        string
	lo, hi      int // [lo, hi) window of entries inside the range
	epos        int // current entry
	ipos        int // current position within the entry's ids
	counted     bool
	scanned     uint64 // rows this scan read (per-operator EXPLAIN ANALYZE)
	tombSkipped uint64 // invisible/superseded ids stepped over (EXPLAIN ANALYZE)
}

func (s *ordScanOp) columns() []colInfo { return s.cols }

func (s *ordScanOp) reset() { s.built = false }

// loadEntry caches the current entry's id list and key.
func (s *ordScanOp) loadEntry() {
	e := s.entries[s.epos]
	s.eids = e.entryIDs()
	s.ekey = e.val.Key()
	s.ipos = 0
}

func (s *ordScanOp) next() (Row, bool, error) {
	if !s.built {
		if s.qc != nil {
			s.snap = s.qc.snap
		}
		s.entries = s.idx.orderedEntries()
		if s.spec.bounded() {
			s.lo, s.hi = rangeStart(s.entries, s.spec.lo), rangeEnd(s.entries, s.spec.hi)
			if s.hi < s.lo {
				s.hi = s.lo
			}
		} else {
			s.lo, s.hi = 0, len(s.entries)
		}
		if s.desc {
			s.epos = s.hi - 1
		} else {
			s.epos = s.lo
		}
		if s.epos >= s.lo && s.epos < s.hi {
			s.loadEntry()
		}
		s.built = true
		if s.qc != nil && !s.counted {
			s.counted = true
			s.qc.orderedOrders++
			if s.spec.bounded() {
				s.qc.indexRangeScans++
			} else {
				s.qc.indexScans++
			}
		}
	}
	if s.qc != nil {
		if err := s.qc.tickCancelled(); err != nil {
			return nil, false, err
		}
	}
	for {
		if s.desc {
			if s.epos < s.lo {
				return nil, false, nil
			}
		} else if s.epos >= s.hi {
			return nil, false, nil
		}
		for s.ipos < len(s.eids) {
			id := s.eids[s.ipos]
			s.ipos++
			r := scanRow(s.table, id, s.snap)
			if r == nil || r[s.idx.Column].Key() != s.ekey {
				s.tombSkipped++
				if s.qc != nil {
					s.qc.tombstonesSkipped++
				}
				continue
			}
			if s.qc != nil {
				s.qc.rowsScanned++
				s.scanned++
			}
			return r, true, nil
		}
		if s.desc {
			s.epos--
		} else {
			s.epos++
		}
		if s.epos >= s.lo && s.epos < s.hi {
			s.loadEntry()
		}
	}
}

// ---------------------------------------------------------------------------
// Sort-merge join

// mergeJoinOp equi-joins two base tables by walking both join columns'
// ordered index views in lockstep: no build phase, no hashing, O(left +
// right + output). Each ordered view has one entry per distinct value, so
// a key match is a single cross product of the two entries' visible rows
// (left-major, heap order inside). Output therefore arrives in join-key
// order — the planner only picks this operator when a top-level ORDER BY
// re-sorts the untruncated result, the same safety condition as flipping
// hash-join build sides. NULL keys never join and their entries are
// skipped via the range helpers.
type mergeJoinOp struct {
	leftTable, rightTable *Table
	leftIdx, rightIdx     *Index
	cols                  []colInfo
	leftKeyE, rightKeyE   Expr // retained for EXPLAIN
	residualE             Expr // retained for EXPLAIN
	residual              compiledExpr
	pairEnv               *evalEnv
	arena                 rowArena
	qc                    *queryCtx

	built       bool
	counted     bool
	scanned     uint64 // rows read off both ordered views (EXPLAIN ANALYZE)
	tombSkipped uint64 // invisible/superseded ids stepped over (EXPLAIN ANALYZE)
	snap        *snapshot
	le, re      []*ordEntry
	li, ri      int
	// current match block: the visible rows of an equal key
	lrows, rrows []Row
	lp, rp       int
	inBlock      bool
}

func newMergeJoinOp(lt, rt *Table, lidx, ridx *Index, leftCols, rightCols []colInfo,
	leftKeyE, rightKeyE, residual Expr,
	db *Database, params []Value, outer *evalEnv, qc *queryCtx) (*mergeJoinOp, error) {

	cols := append(append([]colInfo{}, leftCols...), rightCols...)
	m := &mergeJoinOp{
		leftTable: lt, rightTable: rt, leftIdx: lidx, rightIdx: ridx,
		cols: cols, leftKeyE: leftKeyE, rightKeyE: rightKeyE, residualE: residual,
		qc: qc,
	}
	m.pairEnv = newEvalEnv(cols, db, params, outer, qc)
	if residual != nil {
		var err error
		if m.residual, err = compileExpr(residual, m.pairEnv); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *mergeJoinOp) columns() []colInfo { return m.cols }

func (m *mergeJoinOp) reset() {
	m.built = false
	m.inBlock = false
}

func (m *mergeJoinOp) next() (Row, bool, error) {
	if !m.built {
		if m.qc != nil {
			m.snap = m.qc.snap
		}
		m.le = m.leftIdx.orderedEntries()
		m.re = m.rightIdx.orderedEntries()
		// Skip NULL entries: NULL keys never join.
		m.li = rangeStart(m.le, nil)
		m.ri = rangeStart(m.re, nil)
		m.inBlock = false
		m.built = true
		if m.qc != nil && !m.counted {
			m.counted = true
			m.qc.indexScans += 2
		}
	}
	if m.qc != nil {
		if err := m.qc.tickCancelled(); err != nil {
			return nil, false, err
		}
	}
	for {
		if m.inBlock {
			for m.lp < len(m.lrows) {
				lrow := m.lrows[m.lp]
				if m.rp < len(m.rrows) {
					rrow := m.rrows[m.rp]
					m.rp++
					out := m.arena.alloc(len(m.cols))
					n := copy(out, lrow)
					copy(out[n:], rrow)
					if m.residual != nil {
						m.pairEnv.row = out
						v, err := m.residual()
						if err != nil {
							return nil, false, err
						}
						if v.IsNull() || !v.AsBool() {
							continue
						}
					}
					return out, true, nil
				}
				m.rp = 0
				m.lp++
			}
			m.inBlock = false
			m.li++
			m.ri++
		}
		if m.li >= len(m.le) || m.ri >= len(m.re) {
			return nil, false, nil
		}
		c := m.le[m.li].val.Compare(m.re[m.ri].val)
		switch {
		case c < 0:
			m.li++
		case c > 0:
			m.ri++
		default:
			var lskip, rskip uint64
			m.lrows, lskip = entryRows(m.leftTable, m.leftIdx.Column, m.le[m.li], m.snap)
			m.rrows, rskip = entryRows(m.rightTable, m.rightIdx.Column, m.re[m.ri], m.snap)
			m.lp, m.rp = 0, 0
			m.inBlock = true
			m.tombSkipped += lskip + rskip
			if m.qc != nil {
				m.qc.tombstonesSkipped += lskip + rskip
				m.qc.rowsScanned += uint64(len(m.lrows) + len(m.rrows))
				m.scanned += uint64(len(m.lrows) + len(m.rrows))
			}
		}
	}
}
